// Package repro's benchmark harness: one benchmark family per paper
// artifact, mirroring the experiment index in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// F2.1  BenchmarkFig21Classify
// F4.1  BenchmarkFig41InsertRewrite
// F4.2  BenchmarkFig42DeleteRewrite
// T3    BenchmarkSubsumption
// T5.1  BenchmarkTheorem51 / BenchmarkKlug (the paper's comparison)
// T5.2  BenchmarkLocalTestReductions
// T5.3  BenchmarkRACompile / BenchmarkRALocalTest
// F6.1  BenchmarkIntervalDatalog / BenchmarkIntervalSweep (ablation)
// D1    BenchmarkDistributedStaged / BenchmarkDistributedNaive
// D-net BenchmarkNetDistLoopback (wire protocol + coordinator,
//
//	sequential vs pipelined arms)
//
// Pipe  BenchmarkServePipeline (conflict-aware apply scheduler behind
//
//	the decision server, 1/2/4/8 workers, low vs high conflict)
//
// plus substrate micro-benchmarks (solver, evaluator, SAT).
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/icq"
	"repro/internal/incremental"
	"repro/internal/ineq"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/subsume"
	"repro/internal/workload"
)

// --- F2.1 ----------------------------------------------------------------

func BenchmarkFig21Classify(b *testing.B) {
	progs := []*ast.Program{
		parser.MustParseProgram("panic :- emp(E,sales) & emp(E,accounting)."),
		parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D) & S < 100."),
		parser.MustParseProgram(`panic :- boss(E,E).
			boss(E,M) :- emp(E,D,S) & manager(D,M).
			boss(E,F) :- boss(E,G) & boss(G,F).`),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			_ = classify.Classify(p)
		}
	}
}

// --- F4.1 / F4.2 -----------------------------------------------------------

func BenchmarkFig41InsertRewrite(b *testing.B) {
	c := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D).")
	t := relation.Strs("toy")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.Insert(c, "dept", t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig42DeleteRewrite(b *testing.B) {
	c := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D).")
	t := relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))
	b.Run("arith", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.DeleteArith(c, "emp", t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("neg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.DeleteNeg(c, "emp", t); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- T3 --------------------------------------------------------------------

func BenchmarkSubsumption(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("subgoals=%d", k), func(b *testing.B) {
			c := ast.NewProgram(workload.ChainCQC(k))
			set := []*ast.Program{ast.NewProgram(workload.ChainCQC(k))}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := subsume.Subsumes(c, set)
				if err != nil || res.Verdict != subsume.Yes {
					b.Fatalf("unexpected: %+v %v", res, err)
				}
			}
		})
	}
}

// --- T5.1: Theorem 5.1 vs Klug ----------------------------------------------

func BenchmarkTheorem51(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("dupPreds=%d", k), func(b *testing.B) {
			c1, c2 := workload.ChainCQC(k), workload.ChainCQC(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := containment.Theorem51(c1, c2)
				if err != nil || !ok {
					b.Fatalf("unexpected: %v %v", ok, err)
				}
			}
		})
	}
}

func BenchmarkKlug(b *testing.B) {
	// Klug's enumeration grows with the ordered Bell numbers of 2k
	// variables; k=4 already means millions of orders, so the sweep stops
	// earlier than Theorem 5.1's.
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("dupPreds=%d", k), func(b *testing.B) {
			c1, c2 := workload.ChainCQC(k), workload.ChainCQC(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := containment.Klug(c1, c2)
				if err != nil || !ok {
					b.Fatalf("unexpected: %v %v", ok, err)
				}
			}
		})
	}
}

// --- T5.2 --------------------------------------------------------------------

func BenchmarkLocalTestReductions(b *testing.B) {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("L=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			L := workload.Intervals(rng, n, 20, 200)
			ins := relation.Ints(50, 60)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reduction.LocalTest(cqc, ins, L); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T5.3 --------------------------------------------------------------------

func BenchmarkRACompile(b *testing.B) {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Y,W) & s(W,X).")
	ins := relation.Ints(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reduction.CompileRA(rule, "l", ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRALocalTest(b *testing.B) {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Y,W) & s(W,X).")
	ins := relation.Ints(3, 4)
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("L=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			db := store.New()
			for i := 0; i < n; i++ {
				if _, err := db.Insert("l", relation.Ints(rng.Int63n(50), rng.Int63n(50))); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reduction.RALocalTest(rule, "l", ins, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- F6.1 ablation -------------------------------------------------------------

func intervalAnalysis(b *testing.B) *icq.Analysis {
	b.Helper()
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		b.Fatal(err)
	}
	a, err := icq.Analyze(cqc)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func BenchmarkIntervalDatalog(b *testing.B) {
	// The paper's nonlinear Fig 6.1 program materializes O(|L|^2) merged
	// intervals through a derived×derived join; sizes stay small.
	a := intervalAnalysis(b)
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("L=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			db := store.New()
			for _, t := range workload.Intervals(rng, n, 20, 200) {
				if _, err := db.Insert("l", t); err != nil {
					b.Fatal(err)
				}
			}
			ins := relation.Ints(50, 60)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CertifyInsertDatalog(ins, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIntervalDatalogLinear(b *testing.B) {
	// Ablation: the linear merge variant (derived×basis join) scales much
	// further than the paper's nonlinear rule while answering identically.
	a := intervalAnalysis(b)
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("L=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			db := store.New()
			for _, t := range workload.Intervals(rng, n, 20, 200) {
				if _, err := db.Insert("l", t); err != nil {
					b.Fatal(err)
				}
			}
			ins := relation.Ints(50, 60)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CertifyInsertDatalogLinear(ins, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIntervalSweep(b *testing.B) {
	a := intervalAnalysis(b)
	for _, n := range []int{8, 32, 128, 1024, 8192} {
		b.Run(fmt.Sprintf("L=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			L := workload.Intervals(rng, n, 20, 200)
			ins := relation.Ints(50, 60)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CertifyInsert(ins, L); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- D1 --------------------------------------------------------------------

func benchDistributed(b *testing.B, naive bool) {
	rngSeed := int64(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(rngSeed))
		db := store.New()
		for _, t := range workload.Intervals(rng, 40, 20, 200) {
			if _, err := db.Insert("l", t); err != nil {
				b.Fatal(err)
			}
		}
		for j := int64(0); j < 100; j++ {
			if _, err := db.Insert("r", relation.Ints(10000+j)); err != nil {
				b.Fatal(err)
			}
		}
		opts := core.Options{LocalRelations: []string{"l"}}
		if naive {
			opts.DisableUpdateOnly = true
			opts.DisableLocalData = true
		}
		sys := dist.NewWithOptions(db, opts, dist.DefaultCost)
		if err := sys.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			b.Fatal(err)
		}
		updates := workload.IntervalInserts(rng, 20, 10, 200, "l")
		b.StartTimer()
		for _, u := range updates {
			if _, err := sys.Apply(u); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(sys.Stats().RemoteTuples), "remote-tuples/op")
		b.StartTimer()
	}
}

func BenchmarkDistributedStaged(b *testing.B) { benchDistributed(b, false) }
func BenchmarkDistributedNaive(b *testing.B)  { benchDistributed(b, true) }

// benchNetDistLoopback is the D-net counterpart of
// BenchmarkDistributedStaged: the same interval workload, but the remote
// relation answers through the netdist wire protocol (frame codec and
// all) over the in-process loopback transport. The gap between the
// sequential arm and BenchmarkDistributedStaged is the real marshalling
// cost of going remote; the gap between the sequential and pipelined
// arms is what the conflict-aware scheduler recovers by overlapping
// independent updates' checks and round trips, which grows with the
// injected wire latency.
func benchNetDistLoopback(b *testing.B, workers int, latency time.Duration) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(42))
		remote := store.New()
		for j := int64(0); j < 50; j++ {
			if _, err := remote.Insert("r", relation.Ints(10000+j)); err != nil {
				b.Fatal(err)
			}
		}
		lb := netdist.NewLoopback()
		lb.AddSite("siteR", netdist.NewServer(remote, []string{"r"}))
		if latency > 0 {
			lb.SetLatency("siteR", latency)
		}
		local := store.New()
		for _, tu := range workload.Intervals(rng, 40, 20, 200) {
			if _, err := local.Insert("l", tu); err != nil {
				b.Fatal(err)
			}
		}
		co, err := netdist.New(local, []netdist.SiteSpec{{Site: "siteR", Relations: []string{"r"}}}, lb,
			netdist.Options{Checker: core.Options{LocalRelations: []string{"l"}}})
		if err != nil {
			b.Fatal(err)
		}
		if err := co.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			b.Fatal(err)
		}
		updates := workload.IntervalInserts(rng, 20, 10, 200, "l")
		b.StartTimer()
		for _, r := range co.ApplyStream(updates, workers) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		b.StopTimer()
		st := co.Stats()
		b.ReportMetric(float64(st.WireTuples), "wire-tuples/op")
		b.ReportMetric(float64(st.RoundTrips), "round-trips/op")
		b.StartTimer()
	}
}

func BenchmarkNetDistLoopback(b *testing.B) {
	b.Run("arm=sequential", func(b *testing.B) { benchNetDistLoopback(b, 1, 0) })
	b.Run("arm=pipelined8", func(b *testing.B) { benchNetDistLoopback(b, 8, 0) })
	b.Run("arm=sequential/latency=500us", func(b *testing.B) { benchNetDistLoopback(b, 1, 500*time.Microsecond) })
	b.Run("arm=pipelined8/latency=500us", func(b *testing.B) { benchNetDistLoopback(b, 8, 500*time.Microsecond) })

	// Scale-out arms (BENCH_shard.json): the referential workload against
	// a dept relation placed whole on one site, hash-sharded across 4 and
	// 16 sites, and sharded with routing disabled (pure scatter-gather).
	// Uniform keys; every update's probe is key-covered, so the sharded
	// arms route it to the single owning shard.
	b.Run("shard/sites=1/place=whole/lat=0us", func(b *testing.B) { benchNetDistShard(b, 1, "whole", 0) })
	b.Run("shard/sites=4/place=whole/lat=0us", func(b *testing.B) { benchNetDistShard(b, 4, "whole", 0) })
	b.Run("shard/sites=4/place=sharded/lat=0us", func(b *testing.B) { benchNetDistShard(b, 4, "sharded", 0) })
	b.Run("shard/sites=4/place=scatter/lat=0us", func(b *testing.B) { benchNetDistShard(b, 4, "scatter", 0) })
	b.Run("shard/sites=16/place=sharded/lat=0us", func(b *testing.B) { benchNetDistShard(b, 16, "sharded", 0) })
	b.Run("shard/sites=1/place=whole/lat=500us", func(b *testing.B) { benchNetDistShard(b, 1, "whole", 500*time.Microsecond) })
	b.Run("shard/sites=4/place=sharded/lat=500us", func(b *testing.B) { benchNetDistShard(b, 4, "sharded", 500*time.Microsecond) })
	b.Run("shard/sites=16/place=sharded/lat=500us", func(b *testing.B) { benchNetDistShard(b, 16, "sharded", 500*time.Microsecond) })
}

// benchNetDistShard measures horizontal scale-out: 64 emp inserts, each
// checked against a remotely-placed dept of 200 keys by the referential
// constraint, streamed through 8 apply workers. The whole-relation
// placement refreshes all of dept (one scan, ~200 tuples) per update —
// more sites do not help it. The sharded placement's residual probe is
// key-covered, so each update ships one key group from its owning shard;
// scatter mode keeps the partitioning but disables routing, paying one
// scan per shard instead. wire-tuples/op is the shipped-bytes story;
// routed/scatter count the routing decisions.
func benchNetDistShard(b *testing.B, sites int, mode string, latency time.Duration) {
	const deptKeys, updates, workers = 200, 64, 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(7))
		lb := netdist.NewLoopback()
		rp := netdist.RelPlacement{KeyCol: 0}
		stores := make([]*store.Store, sites)
		for s := range stores {
			site := fmt.Sprintf("site%d", s)
			stores[s] = store.New()
			lb.AddSite(site, netdist.NewServer(stores[s], []string{"dept"}))
			if latency > 0 {
				lb.SetLatency(site, latency)
			}
			rp.Shards = append(rp.Shards, netdist.ShardSpec{Leader: site})
		}
		if mode == "whole" {
			rp = netdist.RelPlacement{Shards: rp.Shards[:1]}
		}
		place := netdist.Placement{"dept": rp}
		for k := int64(0); k < deptKeys; k++ {
			tu := relation.Ints(k)
			si := 0
			if rp.Sharded() {
				si = place.ShardOf("dept", tu[0])
			}
			if _, err := stores[si].Insert("dept", tu); err != nil {
				b.Fatal(err)
			}
		}
		co, err := netdist.NewPlaced(store.New(), place, lb, netdist.Options{
			Checker:             core.Options{LocalRelations: []string{"emp"}},
			DisableShardRouting: mode == "scatter",
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := co.Checker.AddConstraintSource("ref", "panic :- emp(E, D) & not dept(D)."); err != nil {
			b.Fatal(err)
		}
		us := make([]store.Update, updates)
		for j := range us {
			us[j] = store.Ins("emp", relation.Ints(int64(10_000+j), rng.Int63n(deptKeys)))
		}
		b.StartTimer()
		for _, r := range co.ApplyStream(us, workers) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if !r.Report.Applied {
				b.Fatal("admissible emp insert rejected")
			}
		}
		b.StopTimer()
		st := co.Stats()
		b.ReportMetric(float64(st.WireTuples), "wire-tuples/op")
		b.ReportMetric(float64(st.RoundTrips), "round-trips/op")
		b.ReportMetric(float64(st.ShardRouted), "routed/op")
		b.ReportMetric(float64(st.ShardScatter), "scatter/op")
		b.StartTimer()
	}
}

// --- Pipe: conflict-aware apply scheduling ----------------------------------

// benchServePipeline drives 16 concurrent closed-loop clients against a
// decision server fronting the loopback D-net deployment with 300µs of
// wire latency on the r-site. Every admitted l-insert refreshes r over
// the wire before its global phase, so the sequential arm (workers=1)
// waits out one round trip per update while the pipelined arm overlaps
// the round trips of non-conflicting updates. One benchmark op is the
// whole 64-update stream.
//
// The low-conflict stream inserts 64 distinct l intervals — pairwise
// independent footprints (distinct write fingerprints, read-read on r).
// The high-conflict stream churns one l tuple — every update conflicts
// with its predecessor, so the scheduler must degrade to admission-order
// sequential behaviour and the pipelined arm buys nothing.
func benchServePipeline(b *testing.B, workers int, conflict bool) {
	const n, clients = 64, 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		remote := store.New()
		for j := int64(0); j < 50; j++ {
			if _, err := remote.Insert("r", relation.Ints(10000+j)); err != nil {
				b.Fatal(err)
			}
		}
		lb := netdist.NewLoopback()
		lb.AddSite("siteR", netdist.NewServer(remote, []string{"r"}))
		lb.SetLatency("siteR", 300*time.Microsecond)
		rng := rand.New(rand.NewSource(42))
		local := store.New()
		for _, tu := range workload.Intervals(rng, 40, 20, 200) {
			if _, err := local.Insert("l", tu); err != nil {
				b.Fatal(err)
			}
		}
		co, err := netdist.New(local, []netdist.SiteSpec{{Site: "siteR", Relations: []string{"r"}}}, lb,
			netdist.Options{Checker: core.Options{LocalRelations: []string{"l"}}})
		if err != nil {
			b.Fatal(err)
		}
		if err := co.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			b.Fatal(err)
		}
		srv := serve.New(netdist.ServeBackend{Co: co}, serve.Config{ApplyWorkers: workers, QueueDepth: 256})
		updates := make([]store.Update, n)
		for k := range updates {
			if conflict {
				tu := relation.Ints(300, 301)
				if k%2 == 0 {
					updates[k] = store.Ins("l", tu)
				} else {
					updates[k] = store.Del("l", tu)
				}
			} else {
				lo := int64(300 + 2*k)
				updates[k] = store.Ins("l", relation.Ints(lo, lo+1))
			}
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for k := c; k < n; k += clients {
					if _, err := srv.Apply(fmt.Sprintf("c%d", c), updates[k]); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		b.StopTimer()
		st := srv.Stats()
		srv.Close()
		b.ReportMetric(float64(st.SchedConflictStalls), "stalls/op")
		b.StartTimer()
	}
	b.ReportMetric(n, "updates/op")
}

func BenchmarkServePipeline(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchServePipeline(b, 1, false) })
	b.Run("workers=2", func(b *testing.B) { benchServePipeline(b, 2, false) })
	b.Run("workers=4", func(b *testing.B) { benchServePipeline(b, 4, false) })
	b.Run("workers=8", func(b *testing.B) { benchServePipeline(b, 8, false) })
	b.Run("workers=8/conflict", func(b *testing.B) { benchServePipeline(b, 8, true) })
}

// --- pipeline: parallel dispatch + decision cache ----------------------------

// applyParallelConstraints is the ≥8-constraint set for the pipeline
// benchmark: the paper's running employee constraints plus satisfiable
// extras over every relation the mixed workload touches.
func applyParallelConstraints() map[string]string {
	cons := workload.StandardEmployeeConstraints()
	cons["cap"] = "panic :- emp(E,D,S) & S > 2000."
	cons["floor"] = "panic :- emp(E,D,S) & S < 0."
	cons["range-ref"] = "panic :- salRange(D,Low,High) & not dept(D)."
	cons["range-order"] = "panic :- salRange(D,Low,High) & Low > High."
	cons["blocked"] = "panic :- emp(E,D,S) & blocked(E)."
	cons["closed"] = "panic :- dept(D) & closed(D)."
	return cons
}

func benchApplyParallel(b *testing.B, opts core.Options) {
	b.Helper()
	cons := applyParallelConstraints()
	names := make([]string, 0, len(cons))
	for n := range cons {
		names = append(names, n)
	}
	sort.Strings(names)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(9))
		db := store.New()
		if err := workload.EmployeeDB(rng, db, 6, 200); err != nil {
			b.Fatal(err)
		}
		db.MustEnsure("blocked", 1)
		db.MustEnsure("closed", 1)
		c := core.New(db, opts)
		for _, n := range names {
			if err := c.AddConstraintSource(n, cons[n]); err != nil {
				b.Fatal(err)
			}
		}
		updates := workload.EmployeeUpdates(rng, 60, 6, 0.1)
		b.StartTimer()
		for _, u := range updates {
			if _, err := c.Apply(u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkApplyParallel drives a mixed update stream through ≥8
// constraints: the seed configuration (one worker, no decision cache)
// against the cached serial and cached parallel pipelines.
func BenchmarkApplyParallel(b *testing.B) {
	b.Run("workers=1/seed", func(b *testing.B) {
		benchApplyParallel(b, core.Options{Workers: 1, DisableCache: true})
	})
	b.Run("workers=1/cached", func(b *testing.B) {
		benchApplyParallel(b, core.Options{Workers: 1})
	})
	b.Run(fmt.Sprintf("workers=%d/cached", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchApplyParallel(b, core.Options{})
	})
}

// --- compile-once: plan cache A/B -------------------------------------------

// benchApplyD1 drives the D1 interval stream — every local l-insert
// followed by a remote-side r-insert — through a checker with the given
// options; the plan-cache and residual A/Bs below share this body.
func benchApplyD1(b *testing.B, opts core.Options) {
	b.Helper()
	opts.LocalRelations = []string{"l"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(42))
		db := store.New()
		for _, t := range workload.Intervals(rng, 40, 20, 200) {
			if _, err := db.Insert("l", t); err != nil {
				b.Fatal(err)
			}
		}
		for j := int64(0); j < 100; j++ {
			if _, err := db.Insert("r", relation.Ints(10000+j)); err != nil {
				b.Fatal(err)
			}
		}
		c := core.New(db, opts)
		if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			b.Fatal(err)
		}
		var updates []store.Update
		for k, u := range workload.IntervalInserts(rng, 20, 10, 200, "l") {
			updates = append(updates, u,
				store.Ins("r", relation.Ints(20000+int64(k))))
		}
		b.StartTimer()
		for _, u := range updates {
			if _, err := c.Apply(u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchApplyCompiled runs the D1 stream with the cheap early phases and
// residual dispatch disabled, so each update runs the phase-4 global
// evaluation the plan cache targets. The compiled arm reuses one cached
// plan per (program, store shape) across the whole stream; the
// noplancache arm re-derives validation, stratification and join plans
// on every evaluation, which is exactly what the seed evaluator did.
func benchApplyCompiled(b *testing.B, opts core.Options) {
	b.Helper()
	opts.DisableUpdateOnly = true
	opts.DisableLocalData = true
	opts.DisableResidual = true
	benchApplyD1(b, opts)
}

// BenchmarkApplyCompiled is the compile-once A/B recorded in
// BENCH_plan.json: identical workloads, plan cache on vs off
// (ccheck -noplancache).
func BenchmarkApplyCompiled(b *testing.B) {
	b.Run("compiled", func(b *testing.B) {
		benchApplyCompiled(b, core.Options{})
	})
	b.Run("noplancache", func(b *testing.B) {
		benchApplyCompiled(b, core.Options{DisablePlanCache: true})
	})
}

// --- residual compilation: update-pattern A/B -------------------------------

// BenchmarkApplyResidual is the residual-dispatch A/B recorded in
// BENCH_residual.json: the default arm decides every D1 update with the
// pattern-compiled residual VM (two compilations for the whole stream —
// one per update pattern — then cache hits), while the noresidual arm
// is ccheck -noresidual: each update falls through the staged pipeline
// to the phase-4 global evaluation.
func BenchmarkApplyResidual(b *testing.B) {
	b.Run("residual", func(b *testing.B) {
		benchApplyD1(b, core.Options{})
	})
	b.Run("noresidual", func(b *testing.B) {
		benchApplyD1(b, core.Options{DisableResidual: true})
	})
}

// --- observability: tracing overhead ----------------------------------------

// benchTraceOverhead drives the D1 interval stream through a checker
// wired with the given tracer; the off/disabled/on sub-benchmarks below
// bound the cost of the always-compiled-in trace hooks.
func benchTraceOverhead(b *testing.B, tracer func() obs.Tracer) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(42))
		db := store.New()
		for _, t := range workload.Intervals(rng, 40, 20, 200) {
			if _, err := db.Insert("l", t); err != nil {
				b.Fatal(err)
			}
		}
		for j := int64(0); j < 50; j++ {
			if _, err := db.Insert("r", relation.Ints(10000+j)); err != nil {
				b.Fatal(err)
			}
		}
		c := core.New(db, core.Options{LocalRelations: []string{"l"}, Tracer: tracer()})
		if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			b.Fatal(err)
		}
		updates := workload.IntervalInserts(rng, 20, 10, 200, "l")
		b.StartTimer()
		for _, u := range updates {
			if _, err := c.Apply(u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTraceOverhead is the EXPERIMENTS.md tracing-overhead
// benchmark: "off" has no tracer at all, "disabled" pays only the
// Enabled() checks (the production default), "on" buffers every event.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchTraceOverhead(b, func() obs.Tracer { return nil })
	})
	b.Run("disabled", func(b *testing.B) {
		benchTraceOverhead(b, func() obs.Tracer { return obs.Disabled })
	})
	b.Run("on", func(b *testing.B) {
		benchTraceOverhead(b, func() obs.Tracer { return obs.NewBufferTracer(64) })
	})
}

// benchSpanOverhead replays the BenchmarkTraceOverhead D1 stream with
// the span layer in a given state. sampled controls whether each update
// runs under an active root span; withStore whether finished spans are
// retained in a tail-sampling TraceStore.
func benchSpanOverhead(b *testing.B, installed, sampled, withStore bool) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(42))
		db := store.New()
		for _, t := range workload.Intervals(rng, 40, 20, 200) {
			if _, err := db.Insert("l", t); err != nil {
				b.Fatal(err)
			}
		}
		for j := int64(0); j < 50; j++ {
			if _, err := db.Insert("r", relation.Ints(10000+j)); err != nil {
				b.Fatal(err)
			}
		}
		var spans *obs.SpanTracer
		var bridge *obs.SpanBridge
		opts := core.Options{LocalRelations: []string{"l"}}
		if installed {
			var st *obs.TraceStore
			if withStore {
				st = obs.NewTraceStore(64)
			}
			spans = obs.NewSpanTracer("bench", st, 1)
			bridge = obs.NewSpanBridge(spans)
			opts.Tracer = bridge
		}
		c := core.New(db, opts)
		if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			b.Fatal(err)
		}
		updates := workload.IntervalInserts(rng, 20, 10, 200, "l")
		b.StartTimer()
		for _, u := range updates {
			var sp *obs.Span
			if sampled {
				sp = spans.StartRoot("bench.apply", obs.SpanContext{})
				bridge.SetActive(sp)
			}
			_, err := c.Apply(u)
			if sampled {
				bridge.SetActive(nil)
				sp.End()
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSpanOverhead is the EXPERIMENTS.md span-overhead benchmark
// (BENCH_obs.json): "off" has no span layer at all, "idle" installs the
// bridge but never activates a span (the spans-disabled production
// state the ≤2% acceptance bound applies to), "sampled" runs every
// update under a root span, and "sampled+store" additionally retains
// the finished traces.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchSpanOverhead(b, false, false, false) })
	b.Run("idle", func(b *testing.B) { benchSpanOverhead(b, true, false, false) })
	b.Run("sampled", func(b *testing.B) { benchSpanOverhead(b, true, true, false) })
	b.Run("sampled+store", func(b *testing.B) { benchSpanOverhead(b, true, true, true) })
}

// --- substrate micro-benchmarks ----------------------------------------------

func BenchmarkIneqImplies(b *testing.B) {
	z := ast.V("Z")
	premise := []ast.Comparison{
		ast.NewComparison(ast.CInt(4), ast.Le, z),
		ast.NewComparison(z, ast.Le, ast.CInt(8)),
	}
	disjuncts := [][]ast.Comparison{
		{ast.NewComparison(ast.CInt(3), ast.Le, z), ast.NewComparison(z, ast.Le, ast.CInt(6))},
		{ast.NewComparison(ast.CInt(5), ast.Le, z), ast.NewComparison(z, ast.Le, ast.CInt(10))},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ineq.Implies(premise, disjuncts) {
			b.Fatal("implication lost")
		}
	}
}

// BenchmarkImpliesAblation compares the lazy DPLL-style implication
// checker against the textbook DNF expansion on a many-disjunct interval
// instance — the design-choice ablation called out in DESIGN.md.
func BenchmarkImpliesAblation(b *testing.B) {
	z := ast.V("Z")
	mk := func(n int) ([]ast.Comparison, [][]ast.Comparison) {
		premise := []ast.Comparison{
			ast.NewComparison(ast.CInt(0), ast.Le, z),
			ast.NewComparison(z, ast.Le, ast.CInt(int64(2*n))),
		}
		var disjuncts [][]ast.Comparison
		for i := 0; i < n; i++ {
			disjuncts = append(disjuncts, []ast.Comparison{
				ast.NewComparison(ast.CInt(int64(2*i)), ast.Le, z),
				ast.NewComparison(z, ast.Le, ast.CInt(int64(2*i+3))),
			})
		}
		return premise, disjuncts
	}
	for _, n := range []int{4, 8, 12} {
		premise, disjuncts := mk(n)
		b.Run(fmt.Sprintf("dpll/disjuncts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !ineq.Implies(premise, disjuncts) {
					b.Fatal("implication lost")
				}
			}
		})
		b.Run(fmt.Sprintf("dnf/disjuncts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !ineq.ImpliesDNF(premise, disjuncts) {
					b.Fatal("implication lost")
				}
			}
		})
	}
}

func BenchmarkEvalTransitiveClosure(b *testing.B) {
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			db := store.New()
			for i := 0; i < n; i++ {
				if _, err := db.Insert("edge", relation.Ints(int64(i), int64(i+1))); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(prog, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalIndexed measures the hash-index layer on a selective
// three-way join: the first join column is unselective (100 tuples per
// X) while the full bound signature (X,Y) is unique, so the indexed arm
// probes ~1 tuple where the scan arm filters ~100 per binding. The scan
// arm (Options{DisableIndexes: true}) is the seed evaluator: textual
// atom order, single-column first-constant lookup, per-tuple filtering.
func BenchmarkEvalIndexed(b *testing.B) {
	prog := parser.MustParseProgram("hit(X,Z) :- head(X,Y) & detail(X,Y,Z) & audit(Z).")
	db := store.New()
	for i := int64(0); i < 1000; i++ {
		if _, err := db.Insert("head", relation.Ints(i%10, i)); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Insert("detail", relation.Ints(i%10, i, i)); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Insert("audit", relation.Ints(i)); err != nil {
			b.Fatal(err)
		}
	}
	for _, arm := range []struct {
		name string
		opts eval.Options
	}{
		{"indexed", eval.Options{}},
		{"scan", eval.Options{DisableIndexes: true}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.EvalWith(prog, db, arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				if n := len(res.Tuples("hit")); n != 1000 {
					b.Fatalf("hit = %d tuples, want 1000", n)
				}
			}
		})
	}
}

func BenchmarkNegationContainment(b *testing.B) {
	c1 := parser.MustParseConstraint("panic :- emp(E,D) & vip(E) & not dept(D).")
	c2 := parser.MustParseConstraint("panic :- emp(E,D) & not dept(D).")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := containment.ContainsWithNegation(c1, c2)
		if err != nil || !ok {
			b.Fatalf("unexpected: %v %v", ok, err)
		}
	}
}

// BenchmarkGlobalPhase compares the two global-phase implementations —
// full re-evaluation vs DRed incremental maintenance (Gupta [1994]) — in
// both regimes: a tiny database with churny updates (recompute wins: the
// fixpoint is cheap and DRed bookkeeping is pure overhead) and a large
// materialization with localized updates (incremental wins: recompute
// pays the whole transitive closure on every update).
func BenchmarkGlobalPhase(b *testing.B) {
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).
		panic :- reach(X,X).`)
	seedChain := func(db *store.Store, n int) {
		for i := 0; i < n; i++ {
			if _, err := db.Insert("edge", relation.Ints(int64(i), int64(i+1))); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Updates toggle a pendant edge off the end of the chain: a small,
	// localized change to a large reach materialization.
	toggle := func(n int) []store.Update {
		var out []store.Update
		for i := 0; i < 10; i++ {
			out = append(out,
				store.Ins("edge", relation.Ints(int64(n), int64(n+1))),
				store.Del("edge", relation.Ints(int64(n), int64(n+1))))
		}
		return out
	}
	for _, n := range []int{8, 48, 128} {
		b.Run(fmt.Sprintf("recompute/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := store.New()
				seedChain(db, n)
				updates := toggle(n)
				b.StartTimer()
				for _, u := range updates {
					if err := u.Apply(db); err != nil {
						b.Fatal(err)
					}
					if _, err := eval.Eval(prog, db); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := store.New()
				seedChain(db, n)
				m, err := incremental.Materialize(prog, db)
				if err != nil {
					b.Fatal(err)
				}
				updates := toggle(n)
				b.StartTimer()
				for _, u := range updates {
					if err := m.Apply(u); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
