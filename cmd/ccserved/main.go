// Command ccserved is the decision server: a long-lived HTTP/JSON
// daemon exposing the staged checking pipeline to online traffic.
//
// Usage:
//
//	ccserved -listen :8080 -constraints c.dl [-data d.dl] [-local emp]
//	         [-queue 1024] [-rate 0 -burst 0] [-apply-workers 8]
//	         [-decision-log d.jsonl] [-sites host:port=rel1,rel2]...
//	         [-trace-sample 0.1]
//
// Endpoints (one listener serves them all):
//
//	POST /v1/check   decide an update without applying it
//	POST /v1/apply   decide and, when admitted, apply
//	POST /v1/batch   a sequence in one request; "atomic" all-or-nothing
//	GET  /v1/stats   pipeline + server statistics
//	/metrics /healthz /readyz /debug/vars /debug/pprof /debug/traces
//
// Requests carry updates as {"op":"insert","relation":"r","tuple":[1,"x"]};
// the per-client admission buckets key on the X-Client-ID header. A full
// request queue answers 429 with Retry-After; on SIGINT/SIGTERM the
// daemon flips /readyz to 503 (load balancers drain it), stops
// accepting, answers what it already admitted, flushes the decision log
// and exits.
//
// With -sites flags (repeatable, the ccheck/ccsited spec syntax) the
// daemon fronts a multi-site netdist system: decisions run against a
// local mirror, remote relations are refreshed before global phases, and
// admitted writes propagate to the owning ccsited.
//
// Distributed tracing is on by default at -trace-sample 0.1: sampled
// requests (and any request carrying a sampled traceparent header)
// become traces — HTTP root, queue wait, decision, checker phases, and
// per-site RPCs with site-side spans echoed back — stored in a
// tail-sampling ring served at /debug/traces, exportable as OTLP JSON on
// shutdown with -trace-otlp. -trace-sample 0 turns spans off.
//
// Constraint files hold blank-line-separated constraint programs (each
// defines panic), data files hold facts — the same formats ccheck reads.
// -noindex, -noplancache and -noresidual are the usual A/B escape
// hatches; -workers sizes the checker's dispatch pool.
//
// -apply-workers N (default 1) turns on the conflict-aware pipelined
// arm: N workers apply non-conflicting queued updates concurrently
// while conflicting ones keep admission order, so verdicts and state
// match the sequential arm exactly (see DESIGN.md, "Conflict-aware
// apply scheduling"). With -sites it also pipelines the coordinator's
// atomic batches.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/serve"
	"repro/internal/store"
)

// config is everything main parses from flags.
type config struct {
	listen       string
	constraints  string
	data         string
	local        string
	queue        int
	rate         float64
	burst        float64
	maxBatch     int
	logPath      string
	logDepth     int
	workers      int
	applyWorkers int
	noindex      bool
	noplancache  bool
	noresidual   bool
	verbose      bool

	sites        []string
	shards       []string
	replicas     []string
	noShardRoute bool
	siteTimeout  time.Duration
	siteRetries  int

	traceSample float64
	traceStore  int
	traceOTLP   string
}

// appendFlag collects a repeatable string flag (-sites, -shard,
// -replica).
type appendFlag struct{ dst *[]string }

func (f appendFlag) String() string { return "" }
func (f appendFlag) Set(v string) error {
	*f.dst = append(*f.dst, v)
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", ":8080", "address to serve on")
	flag.StringVar(&cfg.constraints, "constraints", "", "path to constraint programs (blank-line separated; required)")
	flag.StringVar(&cfg.data, "data", "", "path to initial facts")
	flag.StringVar(&cfg.local, "local", "", "comma-separated local relations (default: all local)")
	flag.IntVar(&cfg.queue, "queue", 0, "request queue depth (0: 1024); a full queue answers 429")
	flag.Float64Var(&cfg.rate, "rate", 0, "per-client admission rate in requests/second (0: unlimited)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-client token-bucket burst (0: max(rate,1))")
	flag.IntVar(&cfg.maxBatch, "maxbatch", 0, "updates accepted per batch request (0: 1024)")
	flag.StringVar(&cfg.logPath, "decision-log", "", "append one JSON line per decision to this file (empty: off)")
	flag.IntVar(&cfg.logDepth, "decision-log-depth", 0, "decision-log buffer in records (0: 1024); overflow drops and counts")
	flag.IntVar(&cfg.workers, "workers", 0, "worker goroutines for constraint dispatch (default: one per CPU)")
	flag.IntVar(&cfg.applyWorkers, "apply-workers", 1, "apply workers behind the request queue (1: sequential; >1: conflict-aware pipelined applies)")
	flag.BoolVar(&cfg.noindex, "noindex", false, "disable hash-index probes and bound-first join planning (A/B escape hatch)")
	flag.BoolVar(&cfg.noplancache, "noplancache", false, "disable the compiled evaluation plan cache (A/B escape hatch)")
	flag.BoolVar(&cfg.noresidual, "noresidual", false, "disable residual check compilation (A/B escape hatch)")
	flag.BoolVar(&cfg.verbose, "v", false, "log the served constraints at startup")
	flag.Var(appendFlag{&cfg.sites}, "sites", "remote site spec host:port=rel1,rel2 (repeatable; fronts a netdist system)")
	flag.Var(appendFlag{&cfg.shards}, "shard", "hash-sharded relation spec rel@keycol=site1,site2,... (repeatable)")
	flag.Var(appendFlag{&cfg.replicas}, "replica", "read-replica spec rel/shard=site for a -sites or -shard relation (repeatable)")
	flag.BoolVar(&cfg.noShardRoute, "no-shard-routing", false, "scatter-gather every sharded read instead of routing key-covered probes to the owning shard (A/B escape hatch)")
	flag.DurationVar(&cfg.siteTimeout, "site-timeout", 2*time.Second, "per-request deadline for -sites round trips")
	flag.IntVar(&cfg.siteRetries, "site-retries", 0, "retries per failed site round trip (0: default of 3, negative: none)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0.1, "head-sampling probability for distributed traces (0 disables spans)")
	flag.IntVar(&cfg.traceStore, "trace-store", 512, "completed traces retained in memory (plus the tail-kept slow/violation ones)")
	flag.StringVar(&cfg.traceOTLP, "trace-otlp", "", "write retained traces to this file as OTLP JSON on shutdown")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	var logSink io.WriteCloser
	if cfg.logPath != "" {
		f, err := os.OpenFile(cfg.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-decision-log: %w", err)
		}
		logSink = f
		defer f.Close()
	}
	srv, chk, spans, err := setup(cfg, logSink)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	start := time.Now()
	// /readyz flips to 503 the moment the drain starts — before the
	// listener stops accepting — so load balancers stop routing here
	// while in-flight requests still complete.
	var notReady atomic.Bool
	ready := func() bool { return !notReady.Load() && !srv.Draining() }
	httpSrv := &http.Server{Handler: srv.Handler("ccserved", func() map[string]any {
		return map[string]any{
			"uptime_seconds": int64(time.Since(start).Seconds()),
			"constraints":    chk.Constraints(),
			"queue_depth":    srv.Stats().QueueDepth,
			"draining":       srv.Draining(),
		}
	}, ready)}
	fmt.Printf("ccserved: serving on http://%s/v1/check\n", l.Addr())
	if aw := srv.ApplyWorkers(); aw > 1 {
		fmt.Printf("ccserved: pipelined apply arm, %d workers\n", aw)
	} else if cfg.applyWorkers > 1 {
		fmt.Println("ccserved: -apply-workers ignored: backend refuses concurrent applies, sequential arm")
	}
	if cfg.verbose {
		for _, name := range chk.Constraints() {
			fmt.Printf("ccserved:   constraint %s\n", name)
		}
	}
	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go httpSrv.Serve(l)
	<-done
	notReady.Store(true)
	// Graceful drain: stop accepting connections and wait for in-flight
	// handlers (whose queued requests the worker will answer), then close
	// the serve queue and flush the decision log.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ccserved: shutdown:", err)
	}
	srv.Close()
	if cfg.traceOTLP != "" && spans != nil {
		if err := exportOTLP(cfg.traceOTLP, spans.Store()); err != nil {
			fmt.Fprintln(os.Stderr, "ccserved: trace export:", err)
		}
	}
	fmt.Print(renderStats(srv.Stats()))
	return nil
}

// exportOTLP writes the store's retained traces as one OTLP-JSON file.
func exportOTLP(path string, store *obs.TraceStore) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteOTLP(f, store.Traces()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// setup builds the backend (direct checker, or netdist coordinator when
// -sites is given) and the server from the config. Split from run for
// testing. The returned tracer is nil when -trace-sample is 0.
func setup(cfg config, logSink io.Writer) (*serve.Server, *core.Checker, *obs.SpanTracer, error) {
	if cfg.constraints == "" {
		return nil, nil, nil, fmt.Errorf("-constraints is required")
	}
	db := store.New()
	if cfg.data != "" {
		src, err := os.ReadFile(cfg.data)
		if err != nil {
			return nil, nil, nil, err
		}
		facts, err := parser.ParseProgram(string(src))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("data: %w", err)
		}
		if err := db.LoadFacts(facts); err != nil {
			return nil, nil, nil, err
		}
	}
	reg := obs.NewRegistry()
	var spans *obs.SpanTracer
	var bridge *obs.SpanBridge
	if cfg.traceSample > 0 {
		spans = obs.NewSpanTracer("ccserved", obs.NewTraceStore(cfg.traceStore), cfg.traceSample)
		bridge = obs.NewSpanBridge(spans)
	}
	opts := core.Options{
		Workers:          cfg.workers,
		DisableIndexes:   cfg.noindex,
		DisablePlanCache: cfg.noplancache,
		DisableResidual:  cfg.noresidual,
		Metrics:          reg,
	}
	if bridge != nil {
		opts.Tracer = bridge
	}
	if cfg.local != "" {
		for _, r := range strings.Split(cfg.local, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				return nil, nil, nil, fmt.Errorf("-local has an empty name in %q", cfg.local)
			}
			opts.LocalRelations = append(opts.LocalRelations, r)
		}
	}
	var backend serve.Backend
	var chk *core.Checker
	if len(cfg.sites) > 0 || len(cfg.shards) > 0 {
		place, err := buildPlacement(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		co, err := netdist.NewPlaced(db, place, netdist.NewTCPTransport(), netdist.Options{
			Checker:             opts,
			Timeout:             cfg.siteTimeout,
			Retries:             cfg.siteRetries,
			ApplyWorkers:        cfg.applyWorkers,
			DisableShardRouting: cfg.noShardRoute,
			Metrics:             reg,
			Spans:               bridge,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		chk = co.Checker
		backend = netdist.ServeBackend{Co: co}
	} else if len(cfg.replicas) > 0 {
		return nil, nil, nil, fmt.Errorf("-replica needs the relation placed first via -sites or -shard")
	} else {
		chk = core.New(db, opts)
		backend = chk
	}
	csrc, err := os.ReadFile(cfg.constraints)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, block := range splitBlocks(string(csrc)) {
		name := fmt.Sprintf("c%d", i+1)
		if err := chk.AddConstraintSource(name, block); err != nil {
			return nil, nil, nil, fmt.Errorf("constraint %s: %w", name, err)
		}
	}
	srv := serve.New(backend, serve.Config{
		QueueDepth:       cfg.queue,
		RatePerClient:    cfg.rate,
		Burst:            cfg.burst,
		MaxBatch:         cfg.maxBatch,
		ApplyWorkers:     cfg.applyWorkers,
		DecisionLog:      logSink,
		DecisionLogDepth: cfg.logDepth,
		Metrics:          reg,
		Spans:            spans,
		SpanBridge:       bridge,
	})
	return srv, chk, spans, nil
}

// buildPlacement combines -sites (whole-relation ownership), -shard
// (hash-partitioned relations) and -replica (per-shard read replicas)
// into one placement. A relation may be placed by -sites or -shard but
// not both.
func buildPlacement(cfg config) (netdist.Placement, error) {
	place := netdist.Placement{}
	claimed := map[string]string{}
	for _, s := range cfg.sites {
		spec, err := netdist.ParseSiteSpec(s)
		if err != nil {
			return nil, err
		}
		for _, rel := range spec.Relations {
			if by, dup := claimed[rel]; dup {
				return nil, fmt.Errorf("relation %s placed twice (%s and %s)", rel, by, spec.Site)
			}
			claimed[rel] = spec.Site
			place[rel] = netdist.RelPlacement{Shards: []netdist.ShardSpec{{Leader: spec.Site}}}
		}
	}
	for _, s := range cfg.shards {
		rel, rp, err := netdist.ParseShardSpec(s)
		if err != nil {
			return nil, err
		}
		if by, dup := claimed[rel]; dup {
			return nil, fmt.Errorf("relation %s placed twice (%s and -shard %s)", rel, by, s)
		}
		claimed[rel] = "-shard " + s
		place[rel] = rp
	}
	for _, s := range cfg.replicas {
		rel, shard, site, err := netdist.ParseReplicaSpec(s)
		if err != nil {
			return nil, err
		}
		rp, ok := place[rel]
		if !ok {
			return nil, fmt.Errorf("-replica %s: relation %s is not placed by -sites or -shard", s, rel)
		}
		if shard >= len(rp.Shards) {
			return nil, fmt.Errorf("-replica %s: relation %s has %d shard(s)", s, rel, len(rp.Shards))
		}
		rp.Shards[shard].Replicas = append(rp.Shards[shard].Replicas, site)
		place[rel] = rp
	}
	return place, nil
}

// splitBlocks splits a constraint file into blank-line-separated
// programs (the ccheck file format).
func splitBlocks(src string) []string {
	var out []string
	for _, block := range strings.Split(src, "\n\n") {
		if strings.TrimSpace(block) != "" {
			out = append(out, block)
		}
	}
	return out
}

// renderStats formats the daemon's accounting for shutdown.
func renderStats(st serve.Stats) string {
	var sb strings.Builder
	endpoints := make([]string, 0, len(st.Requests))
	var total int64
	for e, n := range st.Requests {
		endpoints = append(endpoints, e)
		total += n
	}
	sort.Strings(endpoints)
	fmt.Fprintf(&sb, "ccserved: %d requests served\n", total)
	for _, e := range endpoints {
		fmt.Fprintf(&sb, "ccserved:   %-6s %d\n", e, st.Requests[e])
	}
	reasons := make([]string, 0, len(st.Rejections))
	for r := range st.Rejections {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		if st.Rejections[r] > 0 {
			fmt.Fprintf(&sb, "ccserved:   rejected %s: %d\n", r, st.Rejections[r])
		}
	}
	if st.DecisionLogDrops > 0 {
		fmt.Fprintf(&sb, "ccserved:   decision-log drops: %d\n", st.DecisionLogDrops)
	}
	if st.ApplyWorkers > 1 {
		fmt.Fprintf(&sb, "ccserved:   apply workers %d: %d scheduled, %d conflict stalls\n",
			st.ApplyWorkers, st.SchedTasks, st.SchedConflictStalls)
	}
	return sb.String()
}
