package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSetupServesConstraintFile(t *testing.T) {
	dir := t.TempDir()
	cpath := writeFile(t, dir, "c.dl",
		"panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.\n\npanic :- r(X) & X < 0.\n")
	dpath := writeFile(t, dir, "d.dl", "l(0,10).\nl(50,60).\n")

	srv, chk, spans, err := setup(config{
		constraints: cpath,
		data:        dpath,
		local:       "l",
		queue:       16,
		traceSample: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if spans == nil {
		t.Fatal("traceSample 1 should build a span tracer")
	}

	if got := chk.Constraints(); len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Fatalf("constraints = %v, want [c1 c2]", got)
	}

	ts := httptest.NewServer(srv.Handler("", nil, nil))
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/check", "application/json",
		strings.NewReader(`{"update":{"op":"insert","relation":"r","tuple":[5]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	var buf [1024]byte
	n, _ := resp.Body.Read(buf[:])
	if body := string(buf[:n]); !strings.Contains(body, `"violation"`) || !strings.Contains(body, `"c1"`) {
		t.Fatalf("check body = %s", body)
	}
}

func TestSetupErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, _, err := setup(config{}, nil); err == nil {
		t.Fatal("missing -constraints should fail")
	}
	bad := writeFile(t, dir, "bad.dl", "panic :- r(X) &&& nope\n")
	if _, _, _, err := setup(config{constraints: bad}, nil); err == nil {
		t.Fatal("unparsable constraint should fail")
	}
	good := writeFile(t, dir, "good.dl", "panic :- r(X) & X < 0.\n")
	if _, _, _, err := setup(config{constraints: good, local: "r,,"}, nil); err == nil {
		t.Fatal("empty -local entry should fail")
	}
	if _, _, _, err := setup(config{constraints: good, sites: []string{"nope"}}, nil); err == nil {
		t.Fatal("malformed -sites spec should fail")
	}
}

func TestSplitBlocks(t *testing.T) {
	blocks := splitBlocks("a :- b.\n\n\nc :- d.\ne :- f.\n\n")
	if len(blocks) != 2 {
		t.Fatalf("blocks = %q", blocks)
	}
	if !strings.Contains(blocks[1], "e :- f.") {
		t.Fatalf("second block = %q", blocks[1])
	}
	if got := splitBlocks("  \n\n \n"); len(got) != 0 {
		t.Fatalf("all-blank input gave %q", got)
	}
}

func TestRenderStats(t *testing.T) {
	out := renderStats(serve.Stats{
		Requests:         map[string]int64{serve.EndpointCheck: 3, serve.EndpointApply: 2},
		Rejections:       map[string]int64{serve.ReasonQueueFull: 1, serve.ReasonRateLimited: 0},
		DecisionLogDrops: 4,
	})
	for _, want := range []string{"5 requests served", "check  3", "apply  2", "rejected queue_full: 1", "decision-log drops: 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("renderStats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rate_limited") {
		t.Fatalf("zero-count rejection should be omitted:\n%s", out)
	}
}
