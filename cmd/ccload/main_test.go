package main

import (
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("check=70,apply=25,batch=5")
	if err != nil {
		t.Fatal(err)
	}
	if w[armCheck] != 70 || w[armApply] != 25 || w[armBatch] != 5 {
		t.Fatalf("weights = %v", w)
	}
	if w, err = parseMix("apply=1"); err != nil || w[armApply] != 1 || w[armCheck] != 0 {
		t.Fatalf("single arm: %v %v", w, err)
	}
	for _, bad := range []string{"", "check", "check=x", "check=-1", "bogus=1", "check=0,apply=0,batch=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) should fail", bad)
		}
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.50); q != 5 {
		t.Fatalf("p50 = %v", q)
	}
	if q := quantile(sorted, 0.99); q != 9 {
		t.Fatalf("p99 = %v", q)
	}
	if q := quantile([]float64{7}, 0.99); q != 7 {
		t.Fatalf("single sample = %v", q)
	}
}

// TestRunSelfServeSmoke is the wiring smoke test CI runs in spirit: a
// short self-served load with all three arms must finish with zero
// errors and produce the full record set.
func TestRunSelfServeSmoke(t *testing.T) {
	cfg := loadConfig{
		streams:  8,
		duration: 300 * time.Millisecond,
		mix:      "check=50,apply=40,batch=10",
		batch:    4,
		conns:    8,
		queue:    1024,
		density:  20,
		seed:     42,
		commit:   "test",
		date:     "2026-01-01T00:00:00Z",
	}
	recs, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != armCount+1 {
		t.Fatalf("got %d records, want %d", len(recs), armCount+1)
	}
	names := map[string]record{}
	var totalOps int64
	for _, r := range recs {
		names[r.Name] = r
		if r.Errors > 0 {
			t.Fatalf("%s saw %d errors", r.Name, r.Errors)
		}
		if r.Commit != "test" || r.Date != "2026-01-01T00:00:00Z" {
			t.Fatalf("%s stamp = %q/%q", r.Name, r.Commit, r.Date)
		}
	}
	for _, want := range []string{"ServeLoad/check", "ServeLoad/apply", "ServeLoad/batch", "ServeLoad/total"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing record %q in %v", want, recs)
		}
	}
	total := names["ServeLoad/total"]
	totalOps = names["ServeLoad/check"].Ops + names["ServeLoad/apply"].Ops + names["ServeLoad/batch"].Ops
	if total.Ops == 0 || total.Ops != totalOps {
		t.Fatalf("total ops = %d, arms sum to %d", total.Ops, totalOps)
	}
	if total.P99US < total.P50US || total.P50US <= 0 {
		t.Fatalf("quantiles p50=%d p99=%d", total.P50US, total.P99US)
	}
	if total.ThroughputPerS <= 0 {
		t.Fatalf("throughput = %v", total.ThroughputPerS)
	}
	// The contended check band must have produced at least one violation
	// verdict — proof the pipeline is actually deciding, not rubber-stamping.
	if names["ServeLoad/check"].Violations == 0 {
		t.Fatal("check arm produced no violation verdicts")
	}
}
