// Command ccload is the sustained-load generator for the decision
// server: it drives thousands of concurrent client streams of mixed
// check/apply/batch traffic against a ccserved instance over loopback
// HTTP and reports per-arm p50/p99 latency and throughput as JSON (the
// BENCH_serve.json format; scripts/bench.sh stamps commit and date via
// -commit/-date).
//
// Usage:
//
//	ccload -streams 10000 -duration 5s                 # self-served
//	ccload -addr http://127.0.0.1:8080 -streams 1000   # external daemon
//
// Without -addr, ccload starts an in-process ccserved-equivalent (the
// same serve.Server over a real 127.0.0.1 listener) loaded with the D1
// forbidden-interval workload, so a single command exercises the whole
// stack: HTTP decode, admission, queue, staged pipeline, encode.
//
// Streams are closed-loop: each waits for its response before issuing
// the next request. -mix weights the arms ("check=70,apply=25,batch=5"),
// -ramp staggers stream starts, -conns caps the client connection pool
// (10k streams multiplex over it — the file-descriptor budget stays
// bounded). Deliberate 429s (queue full, rate limited) are counted
// separately from errors; any true error makes ccload exit non-zero, so
// CI can use a short run as a wiring smoke test.
//
// A -trace fraction of requests carries a freshly minted sampled
// traceparent; the report counts responses whose X-Request-ID echoed the
// sent trace id (traced) against the rest (untraced), so a load run
// doubles as a propagation health check of the serving stack.
//
// -apply-workers N (self-serve) selects the server's apply arm:
// sequential at 1, conflict-aware pipelined above. -conflict F makes the
// first F fraction of streams write one shared key band so their apply
// traffic collides tuple-for-tuple (scheduler conflicts); the total
// record carries the run's apply_workers and sched_conflict_stalls
// deltas from /v1/stats, so a sequential-vs-pipelined A/B at varying
// -conflict quantifies the scheduler's stall behaviour.
//
// -shards N (self-serve) hash-partitions r across N loopback sites
// behind a netdist coordinator, and -skew S (Zipf exponent, > 1) draws
// apply keys from one shared skewed band instead of per-stream uniform
// bands — hot keys concentrate their writes on few shards, so the
// per-shard footprint serialization shows up as conflict stalls. The
// total record carries the run's shard_routed/shard_scatter deltas, so
// uniform-vs-skewed arms quantify shard fanout under load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/serve/sdk"
	"repro/internal/store"
	"repro/internal/workload"
)

// loadConfig is everything main parses from flags.
type loadConfig struct {
	addr     string
	streams  int
	duration time.Duration
	ramp     time.Duration
	mix      string
	batch    int
	conns    int
	queue    int
	rate     float64
	density  int
	seed     int64
	trace    float64
	conflict float64
	skew     float64
	shards   int
	workers  int
	out      string
	commit   string
	date     string
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running ccserved (empty: self-serve on 127.0.0.1)")
	flag.IntVar(&cfg.streams, "streams", 10000, "concurrent client streams")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured load duration")
	flag.DurationVar(&cfg.ramp, "ramp", 0, "stagger stream starts across this window")
	flag.StringVar(&cfg.mix, "mix", "check=70,apply=25,batch=5", "arm weights")
	flag.IntVar(&cfg.batch, "batch", 8, "updates per batch request")
	flag.IntVar(&cfg.conns, "conns", 512, "client connection-pool cap (streams multiplex over it)")
	flag.IntVar(&cfg.queue, "queue", 4096, "self-serve request queue depth")
	flag.Float64Var(&cfg.rate, "rate", 0, "self-serve per-client admission rate (0: unlimited)")
	flag.IntVar(&cfg.density, "density", 200, "self-serve seed intervals in l")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.Float64Var(&cfg.trace, "trace", 0.05, "fraction of requests carrying a sampled traceparent (0: none)")
	flag.Float64Var(&cfg.conflict, "conflict", 0, "fraction of streams whose apply traffic writes one shared key band (conflicting updates; the rest write disjoint bands)")
	flag.Float64Var(&cfg.skew, "skew", 0, "Zipf exponent (>1) for apply-arm key choice: all streams draw keys from one skewed band, concentrating writes on hot shard keys (0: uniform per-stream bands)")
	flag.IntVar(&cfg.shards, "shards", 0, "self-serve: hash-shard r across this many loopback sites (0 or 1: local r as before); the total record carries shard_routed/shard_scatter deltas")
	flag.IntVar(&cfg.workers, "apply-workers", 1, "self-serve apply workers (1: sequential arm; >1: conflict-aware pipelined arm)")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here (empty: stdout)")
	flag.StringVar(&cfg.commit, "commit", "unknown", "git commit stamp for the report")
	flag.StringVar(&cfg.date, "date", "", "UTC date stamp for the report (empty: now)")
	flag.Parse()

	report, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccload:", err)
		os.Exit(1)
	}
	var sink io.Writer = os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccload:", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	enc.Encode(report)
	for _, rec := range report {
		fmt.Fprintf(os.Stderr, "ccload: %-18s ops=%-8d p50=%-8s p99=%-8s %.0f ops/s (429s=%d, violations=%d, errors=%d)\n",
			rec.Name, rec.Ops, time.Duration(rec.P50US*1000), time.Duration(rec.P99US*1000),
			rec.ThroughputPerS, rec.Rejected429, rec.Violations, rec.Errors)
		if rec.Traced+rec.Untraced > 0 {
			fmt.Fprintf(os.Stderr, "ccload: trace propagation: %d traced, %d untraced responses\n",
				rec.Traced, rec.Untraced)
		}
		if rec.ApplyWorkers > 1 {
			fmt.Fprintf(os.Stderr, "ccload: pipelined arm: %d apply workers, %d scheduled, %d conflict stalls (conflict=%.2f)\n",
				rec.ApplyWorkers, rec.SchedTasks, rec.ConflictStalls, rec.Conflict)
		}
		if rec.Shards > 1 {
			fmt.Fprintf(os.Stderr, "ccload: sharded arm: %d shards, %d routed, %d scatter (skew=%.2f)\n",
				rec.Shards, rec.ShardRouted, rec.ShardScatter, rec.Skew)
		}
		if rec.Errors > 0 {
			os.Exit(1)
		}
	}
}

// record is one BENCH_serve.json entry.
type record struct {
	Name           string  `json:"name"`
	Streams        int     `json:"streams"`
	Conns          int     `json:"conns"`
	DurationS      float64 `json:"duration_s"`
	Ops            int64   `json:"ops"`
	Errors         int64   `json:"errors"`
	Rejected429    int64   `json:"rejected_429"`
	Violations     int64   `json:"violations"`
	P50US          int64   `json:"p50_us"`
	P99US          int64   `json:"p99_us"`
	ThroughputPerS float64 `json:"throughput_per_s"`
	Traced         int64   `json:"traced,omitempty"`
	Untraced       int64   `json:"untraced,omitempty"`
	ApplyWorkers   int     `json:"apply_workers,omitempty"`
	Conflict       float64 `json:"conflict,omitempty"`
	Skew           float64 `json:"skew,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	SchedTasks     int64   `json:"sched_tasks,omitempty"`
	ConflictStalls int64   `json:"sched_conflict_stalls,omitempty"`
	ShardRouted    int     `json:"shard_routed,omitempty"`
	ShardScatter   int     `json:"shard_scatter,omitempty"`
	Commit         string  `json:"commit"`
	Date           string  `json:"date"`
}

// armAgg accumulates one arm's measurements across streams.
type armAgg struct {
	lat                        []float64 // seconds
	ops, errs, rejected, viols int64
}

const (
	armCheck = iota
	armApply
	armBatch
	armCount
)

var armNames = [armCount]string{"check", "apply", "batch"}

func run(cfg loadConfig) ([]record, error) {
	weights, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	if cfg.skew != 0 && cfg.skew <= 1 {
		return nil, fmt.Errorf("-skew %v: the Zipf exponent must exceed 1 (0 disables)", cfg.skew)
	}
	if cfg.shards > 1 && cfg.addr != "" {
		return nil, fmt.Errorf("-shards is a self-serve knob; it cannot reshape an external -addr server")
	}
	addr := cfg.addr
	if addr == "" {
		stop, selfAddr, err := selfServe(cfg)
		if err != nil {
			return nil, err
		}
		defer stop()
		addr = selfAddr
	}
	transport := &http.Transport{
		MaxIdleConns:        cfg.conns,
		MaxIdleConnsPerHost: cfg.conns,
		MaxConnsPerHost:     cfg.conns,
		IdleConnTimeout:     90 * time.Second,
	}
	client, err := sdk.New(sdk.Config{
		URL:        addr,
		HTTPClient: &http.Client{Transport: transport, Timeout: 60 * time.Second},
		ClientID:   "ccload",
		// Mint a fresh sampled trace context for a -trace fraction of
		// requests (the global rand source is concurrency-safe); the rest
		// go out bare and count as untraced.
		Trace: func() obs.SpanContext {
			if cfg.trace <= 0 || rand.Float64() >= cfg.trace {
				return obs.SpanContext{}
			}
			return obs.NewSpanContext(true)
		},
	})
	if err != nil {
		return nil, err
	}

	// Snapshot the server's scheduler counters around the run so the
	// report carries this arm's conflict-stall delta.
	pre, preErr := client.Stats()

	var mu sync.Mutex
	var agg [armCount]armAgg
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for i := 0; i < cfg.streams; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if cfg.ramp > 0 {
				time.Sleep(time.Duration(int64(cfg.ramp) * int64(id) / int64(cfg.streams)))
			}
			local := stream(client, id, cfg, weights, deadline)
			mu.Lock()
			for a := 0; a < armCount; a++ {
				agg[a].lat = append(agg[a].lat, local[a].lat...)
				agg[a].ops += local[a].ops
				agg[a].errs += local[a].errs
				agg[a].rejected += local[a].rejected
				agg[a].viols += local[a].viols
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	date := cfg.date
	if date == "" {
		date = time.Now().UTC().Format(time.RFC3339)
	}
	var out []record
	var total armAgg
	for a := 0; a < armCount; a++ {
		total.lat = append(total.lat, agg[a].lat...)
		total.ops += agg[a].ops
		total.errs += agg[a].errs
		total.rejected += agg[a].rejected
		total.viols += agg[a].viols
		out = append(out, makeRecord("ServeLoad/"+armNames[a], agg[a], cfg, elapsed, date))
	}
	tot := makeRecord("ServeLoad/total", total, cfg, elapsed, date)
	tot.Traced, tot.Untraced = client.TraceCounts()
	tot.Conflict = cfg.conflict
	tot.Skew = cfg.skew
	tot.Shards = cfg.shards
	if post, err := client.Stats(); err == nil && preErr == nil {
		tot.ApplyWorkers = post.Server.ApplyWorkers
		tot.SchedTasks = post.Server.SchedTasks - pre.Server.SchedTasks
		tot.ConflictStalls = post.Server.SchedConflictStalls - pre.Server.SchedConflictStalls
		tot.ShardRouted = post.Server.ShardRouted - pre.Server.ShardRouted
		tot.ShardScatter = post.Server.ShardScatter - pre.Server.ShardScatter
	}
	out = append(out, tot)
	return out, nil
}

func makeRecord(name string, a armAgg, cfg loadConfig, elapsed float64, date string) record {
	rec := record{
		Name: name, Streams: cfg.streams, Conns: cfg.conns, DurationS: elapsed,
		Ops: a.ops, Errors: a.errs, Rejected429: a.rejected, Violations: a.viols,
		Commit: cfg.commit, Date: date,
	}
	if len(a.lat) > 0 {
		sort.Float64s(a.lat)
		rec.P50US = int64(quantile(a.lat, 0.50) * 1e6)
		rec.P99US = int64(quantile(a.lat, 0.99) * 1e6)
	}
	if elapsed > 0 {
		rec.ThroughputPerS = float64(a.ops) / elapsed
	}
	return rec
}

// quantile reads q from sorted samples.
func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// stream is one closed-loop client: it issues requests until the
// deadline, recording latency per arm. Apply and batch traffic works in
// a per-stream coordinate band far above the seeded intervals (always
// safe) and alternates inserts with deletes so the store stays bounded;
// check traffic probes the contended band and collects real violation
// verdicts.
func stream(client *sdk.SDK, id int, cfg loadConfig, weights [armCount]int, deadline time.Time) [armCount]armAgg {
	var agg [armCount]armAgg
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	totalWeight := weights[armCheck] + weights[armApply] + weights[armBatch]
	base := int64(1_000_000_000) + int64(id)*1_000_000
	// -skew: every stream draws apply keys from one shared Zipf-skewed
	// band, so hot keys (and, with -shards, their owning shards) soak up
	// most of the write traffic.
	var zipf *rand.Zipf
	if cfg.skew > 1 {
		zipf = rand.NewZipf(rng, cfg.skew, 1, 1023)
	}
	// The first -conflict fraction of streams shares one narrow key band:
	// their apply writes collide tuple-for-tuple across streams (same
	// fingerprint → scheduler conflicts), while the rest keep per-stream
	// disjoint bands and pipeline freely.
	shared := cfg.conflict > 0 && float64(id) < cfg.conflict*float64(cfg.streams)
	next := int64(0)
	var pendingApply, pendingBatch []store.Update
	for time.Now().Before(deadline) {
		arm := armCheck
		for w, acc := rng.Intn(totalWeight), 0; arm < armBatch; arm++ {
			acc += weights[arm]
			if w < acc {
				break
			}
		}
		var err error
		var decided, violated bool
		startOp := time.Now()
		switch arm {
		case armCheck:
			var u store.Update
			if rng.Intn(2) == 0 {
				lo := rng.Int63n(200)
				u = store.Ins("l", relation.Ints(lo, lo+1+rng.Int63n(20)))
			} else {
				u = store.Ins("r", relation.Ints(rng.Int63n(200)))
			}
			var d serve.Decision
			d, err = client.Check(u)
			decided, violated = err == nil, err == nil && !d.OK()
		case armApply:
			var u store.Update
			if len(pendingApply) > 0 {
				u = invert(pendingApply[len(pendingApply)-1])
				pendingApply = pendingApply[:len(pendingApply)-1]
			} else {
				key := base + next
				if shared {
					key = 2_000_000_000 + next%32
				}
				if zipf != nil {
					key = 3_000_000_000 + int64(zipf.Uint64())
				}
				u = store.Ins("r", relation.Ints(key))
				next++
				pendingApply = append(pendingApply, u)
			}
			var d serve.Decision
			d, err = client.Apply(u)
			decided, violated = err == nil, err == nil && !d.OK()
		case armBatch:
			var us []store.Update
			if len(pendingBatch) > 0 {
				for i := len(pendingBatch) - 1; i >= 0; i-- {
					us = append(us, invert(pendingBatch[i]))
				}
				pendingBatch = nil
			} else {
				for k := 0; k < cfg.batch; k++ {
					u := store.Ins("r", relation.Ints(base+next))
					next++
					us = append(us, u)
					pendingBatch = append(pendingBatch, u)
				}
			}
			var res serve.BatchResult
			res, err = client.Batch(us, true)
			decided, violated = err == nil, err == nil && res.Applied < len(us)
			if err != nil || res.Applied < len(us) {
				// The batch did not land; don't try to invert it next round.
				pendingBatch = nil
			}
		}
		dur := time.Since(startOp).Seconds()
		a := &agg[arm]
		switch {
		case decided:
			a.ops++
			a.lat = append(a.lat, dur)
			if violated {
				a.viols++
			}
		default:
			if _, busy := sdk.IsBusy(err); busy {
				a.rejected++
			} else {
				a.errs++
			}
		}
	}
	return agg
}

func invert(u store.Update) store.Update {
	if u.Insert {
		return store.Del(u.Relation, u.Tuple)
	}
	return store.Ins(u.Relation, u.Tuple)
}

// parseMix parses "check=70,apply=25,batch=5".
func parseMix(mix string) ([armCount]int, error) {
	var weights [armCount]int
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return weights, fmt.Errorf("bad -mix entry %q (want arm=weight)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return weights, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "check":
			weights[armCheck] = n
		case "apply":
			weights[armApply] = n
		case "batch":
			weights[armBatch] = n
		default:
			return weights, fmt.Errorf("unknown -mix arm %q", name)
		}
	}
	if weights[armCheck]+weights[armApply]+weights[armBatch] <= 0 {
		return weights, fmt.Errorf("-mix %q has no positive weight", mix)
	}
	return weights, nil
}

// selfServe starts the in-process decision server on loopback, loaded
// with the D1 forbidden-interval workload, and returns its base URL.
// With -shards > 1 the r relation is hash-partitioned by its key across
// that many loopback sites behind a netdist coordinator, so a single
// command exercises the sharded scale-out stack under sustained load.
func selfServe(cfg loadConfig) (stop func(), addr string, err error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	db := store.New()
	for _, t := range workload.Intervals(rng, cfg.density, 20, 200) {
		if _, err := db.Insert("l", t); err != nil {
			return nil, "", err
		}
	}
	reg := obs.NewRegistry()
	spans := obs.NewSpanTracer("ccload-serve", obs.NewTraceStore(256), 0)
	bridge := obs.NewSpanBridge(spans)
	chkOpts := core.Options{LocalRelations: []string{"l"}, Metrics: reg, Tracer: bridge}
	var backend serve.Backend
	var chk *core.Checker
	if cfg.shards > 1 {
		rp := netdist.RelPlacement{KeyCol: 0}
		lb := netdist.NewLoopback()
		siteDBs := make([]*store.Store, cfg.shards)
		for i := range siteDBs {
			site := fmt.Sprintf("shard%d", i)
			siteDBs[i] = store.New()
			lb.AddSite(site, netdist.NewServer(siteDBs[i], []string{"r"}))
			rp.Shards = append(rp.Shards, netdist.ShardSpec{Leader: site})
		}
		place := netdist.Placement{"r": rp}
		for i := int64(0); i < 50; i++ {
			t := relation.Ints(10_000 + i)
			if _, err := siteDBs[place.ShardOf("r", t[0])].Insert("r", t); err != nil {
				return nil, "", err
			}
		}
		co, err := netdist.NewPlaced(db, place, lb, netdist.Options{
			Checker:      chkOpts,
			Timeout:      time.Second,
			ApplyWorkers: cfg.workers,
			Metrics:      reg,
			Spans:        bridge,
		})
		if err != nil {
			return nil, "", err
		}
		chk = co.Checker
		backend = netdist.ServeBackend{Co: co}
	} else {
		for i := int64(0); i < 50; i++ {
			if _, err := db.Insert("r", relation.Ints(10_000+i)); err != nil {
				return nil, "", err
			}
		}
		chk = core.New(db, chkOpts)
		backend = chk
	}
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		return nil, "", err
	}
	// Rate 0: only requests that arrive with a sampled traceparent get
	// spans, so -trace controls sampling end to end in self-serve mode.
	srv := serve.New(backend, serve.Config{
		QueueDepth:    cfg.queue,
		RatePerClient: cfg.rate,
		ApplyWorkers:  cfg.workers,
		Metrics:       reg,
		Spans:         spans,
		SpanBridge:    bridge,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler("ccload", nil, nil)}
	go httpSrv.Serve(l)
	stop = func() {
		l.Close()
		srv.Close()
	}
	return stop, "http://" + l.Addr().String(), nil
}
