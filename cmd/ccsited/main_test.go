package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netdist"
)

func TestSetupAndServe(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "site.dl")
	if err := os.WriteFile(data, []byte("r(1). r(2). secret(9)."), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, l, err := setup("127.0.0.1:0", data, "r")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	tr := netdist.NewTCPTransport()
	defer tr.Close()
	resp, err := tr.RoundTrip(l.Addr().String(), &netdist.Request{ID: 1, Type: netdist.OpScan, Relation: "r"}, time.Second)
	if err != nil || !resp.OK || len(resp.Tuples) != 2 {
		t.Fatalf("scan against ccsited: resp=%+v err=%v", resp, err)
	}
	if resp, err := tr.RoundTrip(l.Addr().String(), &netdist.Request{ID: 2, Type: netdist.OpScan, Relation: "secret"}, time.Second); err != nil || resp.OK {
		t.Fatalf("unserved relation leaked: resp=%+v err=%v", resp, err)
	}

	out := renderStats(srv.Stats())
	if !strings.Contains(out, "2 requests served (1 errors)") || !strings.Contains(out, "r: 2 tuples shipped") {
		t.Errorf("stats rendering:\n%s", out)
	}
}

func TestSetupErrors(t *testing.T) {
	if _, _, err := setup("127.0.0.1:0", filepath.Join(t.TempDir(), "missing.dl"), ""); err == nil {
		t.Error("missing data file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dl")
	if err := os.WriteFile(bad, []byte("r(X) :- s(X)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup("127.0.0.1:0", bad, ""); err == nil {
		t.Error("non-fact data file accepted")
	}
	good := filepath.Join(dir, "good.dl")
	if err := os.WriteFile(good, []byte("r(1)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup("127.0.0.1:0", good, "r,,s"); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, _, err := setup("256.256.256.256:99999", good, ""); err == nil {
		t.Error("unlistenable address accepted")
	}
}
