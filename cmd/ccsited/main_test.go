package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netdist"
)

func TestSetupAndServe(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "site.dl")
	if err := os.WriteFile(data, []byte("r(1). r(2). secret(9)."), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, l, err := setup("127.0.0.1:0", data, "r")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	tr := netdist.NewTCPTransport()
	defer tr.Close()
	resp, err := tr.RoundTrip(l.Addr().String(), &netdist.Request{ID: 1, Type: netdist.OpScan, Relation: "r"}, time.Second)
	if err != nil || !resp.OK || len(resp.Tuples) != 2 {
		t.Fatalf("scan against ccsited: resp=%+v err=%v", resp, err)
	}
	if resp, err := tr.RoundTrip(l.Addr().String(), &netdist.Request{ID: 2, Type: netdist.OpScan, Relation: "secret"}, time.Second); err != nil || resp.OK {
		t.Fatalf("unserved relation leaked: resp=%+v err=%v", resp, err)
	}

	out := renderStats(srv.Stats())
	if !strings.Contains(out, "2 requests served (1 errors)") || !strings.Contains(out, "r: 2 tuples shipped") {
		t.Errorf("stats rendering:\n%s", out)
	}
}

// TestLiveEndpoints drives the -http mux against a served site: the
// /metrics exposition must agree with the shutdown accounting report and
// /healthz must name the served relations.
func TestLiveEndpoints(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "site.dl")
	if err := os.WriteFile(data, []byte("r(1). r(2). r(3)."), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, l, err := setup("127.0.0.1:0", data, "r")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	live := true
	mux := liveMux(srv, time.Now(), func() bool { return live })

	tr := netdist.NewTCPTransport()
	defer tr.Close()
	for i := 0; i < 2; i++ {
		if resp, err := tr.RoundTrip(l.Addr().String(), &netdist.Request{ID: uint64(i), Type: netdist.OpScan, Relation: "r"}, time.Second); err != nil || !resp.OK {
			t.Fatalf("scan %d: resp=%+v err=%v", i, resp, err)
		}
	}
	if resp, err := tr.RoundTrip(l.Addr().String(), &netdist.Request{ID: 9, Type: netdist.OpScan, Relation: "hidden"}, time.Second); err != nil || resp.OK {
		t.Fatalf("unserved scan: resp=%+v err=%v", resp, err)
	}

	get := func(path string) string {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec.Body.String()
	}

	metrics := get("/metrics")
	st := srv.Stats()
	var total int64
	for _, n := range st.Requests {
		total += n
	}
	// Counters and the latency histogram must sum to the accounting
	// report's totals.
	for _, want := range []string{
		fmt.Sprintf(`cc_site_requests_total{op="scan"} %d`, st.Requests[netdist.OpScan]),
		fmt.Sprintf(`cc_site_tuples_sent_total{relation="r"} %d`, st.TuplesSent["r"]),
		fmt.Sprintf("cc_site_errors_total %d", st.Errors),
		fmt.Sprintf(`cc_site_request_seconds_count{op="scan"} %d`, st.Requests[netdist.OpScan]),
		"cc_site_request_seconds_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if int64(st.Requests[netdist.OpScan]) != total {
		// All three requests were scans; the per-op counter is the total.
		t.Errorf("request accounting: per-op %d, total %d", st.Requests[netdist.OpScan], total)
	}

	health := get("/healthz")
	if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, `"relations":["r"]`) {
		t.Errorf("/healthz payload: %s", health)
	}

	if body := get("/readyz"); !strings.Contains(body, `"ready":true`) {
		t.Errorf("/readyz while live: %s", body)
	}
	live = false
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), `"ready":false`) {
		t.Errorf("/readyz after shutdown began: status %d body %s", rec.Code, rec.Body.String())
	}
}

func TestSetupErrors(t *testing.T) {
	if _, _, err := setup("127.0.0.1:0", filepath.Join(t.TempDir(), "missing.dl"), ""); err == nil {
		t.Error("missing data file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dl")
	if err := os.WriteFile(bad, []byte("r(X) :- s(X)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup("127.0.0.1:0", bad, ""); err == nil {
		t.Error("non-fact data file accepted")
	}
	good := filepath.Join(dir, "good.dl")
	if err := os.WriteFile(good, []byte("r(1)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup("127.0.0.1:0", good, "r,,s"); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, _, err := setup("256.256.256.256:99999", good, ""); err == nil {
		t.Error("unlistenable address accepted")
	}
}
