// Command ccsited is the site daemon of the networked multi-site
// runtime: it loads one site's facts into a store and serves them over
// the netdist wire protocol (length-prefixed JSON frames over TCP) so a
// ccheck coordinator can reach them with -sites.
//
// Usage:
//
//	ccsited -listen :7070 -data site.dl [-relations r,s] [-v]
//
// With -relations only the named relations are visible; otherwise every
// relation in the data file is served. The daemon runs until killed; on
// SIGINT/SIGTERM it prints its accounting (requests handled, tuples
// shipped per relation) and exits.
//
// Eval subqueries run with hash-index probes and bound-first join
// planning and reuses compiled evaluation plans across requests;
// -noindex falls back to scan-and-filter evaluation and -noplancache to
// per-request re-planning.
//
// With -http the daemon also serves live endpoints on a second address:
// /metrics (Prometheus text format: per-op request counters and latency
// histograms, tuples shipped per relation, frame bytes), /healthz (JSON
// status with uptime and served relations), /readyz (503 once shutdown
// has begun — wired to the wire listener's liveness), /debug/vars
// (expvar, the same metrics as a JSON snapshot), /debug/pprof and
// /debug/traces (the site's side of sampled coordinator traces).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/eval"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/store"
)

func main() {
	var (
		listen      = flag.String("listen", ":7070", "address to serve on")
		dataPath    = flag.String("data", "", "path to this site's facts")
		relations   = flag.String("relations", "", "comma-separated served relations (default: all in -data)")
		httpAddr    = flag.String("http", "", "address for live endpoints (/metrics, /healthz, /debug/pprof); empty disables")
		verbose     = flag.Bool("v", false, "log each served relation at startup")
		noindex     = flag.Bool("noindex", false, "disable hash-index probes and bound-first join planning in Eval subqueries (A/B escape hatch)")
		noplancache = flag.Bool("noplancache", false, "disable the compiled evaluation plan cache for Eval subqueries (A/B escape hatch)")
		role        = flag.String("role", "leader", "site role: leader (owns its tuples) or replica (additionally accepts coordinator resyncs)")
		// Residual dispatch lives in the coordinator's checker, not in the
		// site's subquery evaluator; the flag exists for command-line
		// parity with ccheck and is accepted (and ignored) here.
		_ = flag.Bool("noresidual", false, "accepted for flag parity with ccheck; sites serve subqueries and never run residual dispatch")
	)
	flag.Parse()
	srv, l, err := setup(*listen, *dataPath, *relations)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsited:", err)
		os.Exit(1)
	}
	evalOpts := eval.Options{DisableIndexes: *noindex}
	if !*noplancache {
		evalOpts.Cache = eval.NewPlanCache()
	}
	srv.SetEvalOptions(evalOpts)
	if *role != "leader" && *role != "replica" {
		fmt.Fprintf(os.Stderr, "ccsited: -role %q is neither leader nor replica\n", *role)
		os.Exit(1)
	}
	srv.SetRole(*role)
	fmt.Printf("ccsited: serving on %s (%s)\n", l.Addr(), *role)
	// Readiness tracks the wire listener: true while it accepts site
	// RPCs, flipped before it closes so load balancers stop routing.
	var live atomic.Bool
	live.Store(true)
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccsited: -http:", err)
			os.Exit(1)
		}
		mux := liveMux(srv, time.Now(), live.Load)
		go http.Serve(hl, mux)
		fmt.Printf("ccsited: live endpoints on http://%s/metrics\n", hl.Addr())
	}
	if *verbose {
		rels := srv.ServedRelations()
		names := make([]string, 0, len(rels))
		for n := range rels {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("ccsited:   %s/%d\n", n, rels[n])
		}
	}
	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go srv.Serve(l)
	<-done
	live.Store(false)
	l.Close()
	fmt.Print(renderStats(srv.Stats()))
}

// setup parses the site's data and opens the listener. Split from main
// for testing.
func setup(listen, dataPath, relations string) (*netdist.Server, net.Listener, error) {
	db := store.New()
	if dataPath != "" {
		src, err := os.ReadFile(dataPath)
		if err != nil {
			return nil, nil, err
		}
		facts, err := parser.ParseProgram(string(src))
		if err != nil {
			return nil, nil, fmt.Errorf("data: %w", err)
		}
		if err := db.LoadFacts(facts); err != nil {
			return nil, nil, err
		}
	}
	var rels []string
	if relations != "" {
		for _, r := range strings.Split(relations, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				return nil, nil, fmt.Errorf("-relations has an empty name in %q", relations)
			}
			rels = append(rels, r)
		}
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, nil, err
	}
	return netdist.NewServer(db, rels), l, nil
}

// liveMux instruments the server with a fresh registry and a span
// tracer, then builds the live-endpoint mux: /metrics, /healthz (uptime
// + served relations), /readyz (wired to ready, the wire listener's
// liveness), /debug/vars, /debug/pprof and /debug/traces (the site's
// side of sampled coordinator RPCs). Split from main for testing.
func liveMux(srv *netdist.Server, start time.Time, ready func() bool) *http.ServeMux {
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	spans := obs.NewSpanTracer("ccsited", obs.NewTraceStore(256), 1)
	srv.InstrumentSpans(spans)
	return obs.NewServeMux(reg, "ccsited", func() map[string]any {
		rels := srv.ServedRelations()
		names := make([]string, 0, len(rels))
		for n := range rels {
			names = append(names, n)
		}
		sort.Strings(names)
		return map[string]any{
			"uptime_seconds": int64(time.Since(start).Seconds()),
			"relations":      names,
		}
	}, ready, spans.Store())
}

// renderStats formats the daemon's accounting for shutdown.
func renderStats(st netdist.ServerStats) string {
	var sb strings.Builder
	var total int64
	types := make([]string, 0, len(st.Requests))
	for t, n := range st.Requests {
		types = append(types, t)
		total += n
	}
	sort.Strings(types)
	fmt.Fprintf(&sb, "ccsited: %d requests served (%d errors)\n", total, st.Errors)
	for _, t := range types {
		fmt.Fprintf(&sb, "ccsited:   %-6s %d\n", t, st.Requests[t])
	}
	rels := make([]string, 0, len(st.TuplesSent))
	for r := range st.TuplesSent {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	for _, r := range rels {
		fmt.Fprintf(&sb, "ccsited:   %s: %d tuples shipped\n", r, st.TuplesSent[r])
	}
	return sb.String()
}
