package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run feeds lines to a fresh shell and returns the combined output.
func run(t *testing.T, lines ...string) string {
	t.Helper()
	var sb strings.Builder
	sh := newShell(&sb)
	for _, line := range lines {
		if sh.exec(line) {
			break
		}
	}
	return sb.String()
}

func TestShellScenario(t *testing.T) {
	dir := t.TempDir()
	facts := filepath.Join(dir, "facts.dl")
	if err := os.WriteFile(facts, []byte("dept(toy). emp(ann,toy)."), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t,
		":load "+facts,
		":constraint ri panic :- emp(E,D) & not dept(D).",
		":constraints",
		"+dept(shoe)",
		"+emp(bob,shoe)",
		"+emp(eve,ghost)",
		"? emp(E,D) & dept(D)",
		":check",
		":stats",
		":dump",
	)
	for _, want := range []string{
		"loaded 2 facts",
		"constraint ri registered",
		"ri\n",
		"applied",
		"REJECTED [ri]",
		"(ann,toy)",
		"(bob,shoe)",
		"all constraints hold",
		"updates=3 rejected=1",
		"dept(shoe).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "eve") {
		t.Errorf("rejected tuple leaked into state:\n%s", out)
	}
}

func TestShellQueryForms(t *testing.T) {
	out := run(t,
		"+p(1)",
		"? p(1)",
		"? p(2)",
		"? p(X) & X > 0",
	)
	if !strings.Contains(out, "yes") {
		t.Errorf("ground query: %q", out)
	}
	if !strings.Contains(out, "no") {
		t.Errorf("failing query: %q", out)
	}
	if !strings.Contains(out, "(1)") {
		t.Errorf("binding query: %q", out)
	}
}

func TestShellErrors(t *testing.T) {
	out := run(t,
		":load /nonexistent/file.dl",
		":constraint bad q(X) :- p(X).",
		"+notground(X)",
		"? p(X",
		":bogus",
		"junk",
	)
	if got := strings.Count(out, "error:"); got < 4 {
		t.Errorf("expected at least 4 errors, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "unknown command") || !strings.Contains(out, "unrecognized input") {
		t.Errorf("missing dispatch messages:\n%s", out)
	}
}

func TestShellRedundant(t *testing.T) {
	out := run(t,
		":constraint mid panic :- r(Z) & 4 <= Z & Z <= 8.",
		":constraint left panic :- r(Z) & 3 <= Z & Z <= 6.",
		":constraint right panic :- r(Z) & 5 <= Z & Z <= 10.",
		":redundant",
	)
	if !strings.Contains(out, "mid") {
		t.Errorf("redundant constraint not reported:\n%s", out)
	}
}

func TestShellExplain(t *testing.T) {
	if out := run(t, ":explain"); !strings.Contains(out, "no update to explain yet") {
		t.Errorf("empty :explain output: %q", out)
	}
	out := run(t,
		":constraint ri panic :- emp(E,D) & not dept(D).",
		"+dept(toy)",
		"+emp(eve,ghost)",
		":explain",
	)
	// :explain replays only the most recent update: the rejected hire,
	// decided by the compiled residual with its pattern-cache status.
	for _, want := range []string{
		"== +emp(eve,ghost)",
		"ri",
		"residual",
		"cache=",
		"decided: VIOLATED",
		"=> REJECTED [ri]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf(":explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "== +dept(toy)") {
		t.Errorf(":explain replayed an earlier update:\n%s", out)
	}
}

func TestShellQuit(t *testing.T) {
	var sb strings.Builder
	sh := newShell(&sb)
	if !sh.exec(":quit") {
		t.Error(":quit did not end the session")
	}
	if sh.exec("% comment") {
		t.Error("comment ended the session")
	}
}

func TestShellMultiRuleConstraint(t *testing.T) {
	out := run(t,
		":constraint range panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.;panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.",
		"+salRange(toy,10,60)",
		"+emp(ann,toy,50)",
		"+emp(bob,toy,99)",
	)
	if !strings.Contains(out, "constraint range registered") {
		t.Errorf("multi-rule constraint rejected:\n%s", out)
	}
	if !strings.Contains(out, "REJECTED [range]") {
		t.Errorf("out-of-range hire not rejected:\n%s", out)
	}
}
