// Command ccshell is an interactive constraint-checking shell: load
// facts, register constraints, push updates through the staged pipeline,
// and run ad-hoc queries.
//
//	$ go run ./cmd/ccshell
//	>> :load examples.dl
//	>> :constraint ri panic :- emp(E,D) & not dept(D).
//	>> +dept(toy)
//	applied        ri: polarity
//	>> +emp(ann,ghost)
//	REJECTED [ri]
//	>> ? emp(E,D) & dept(D)
//	(ann,toy)
//
// Commands:
//
//	:load <file>              load facts from a file
//	:constraint <name> <src>  register a constraint (rules separated by ';')
//	:constraints              list constraints
//	:redundant                Section 3: constraints subsumed by the rest
//	:check                    fully evaluate every constraint
//	:stats                    phase statistics
//	:explain                  replay the last update's decision trace
//	:trace                    render the last update's span tree
//	:dump                     print the database as facts
//	:quit                     exit
//	+rel(t…) / -rel(t…)       apply an update through the pipeline
//	? <conjunction>           evaluate an ad-hoc query, print bindings
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func main() {
	sh := newShell(os.Stdout)
	in := bufio.NewScanner(os.Stdin)
	fmt.Print(">> ")
	for in.Scan() {
		if sh.exec(in.Text()) {
			return
		}
		fmt.Print(">> ")
	}
}

// shell holds interactive state; exec processes one line and reports
// whether the session should end. Every update is traced into a small
// ring buffer so :explain can replay the latest decision after the
// fact, and into a span store so :trace can render the span tree with
// per-phase timing.
type shell struct {
	out    io.Writer
	chk    *core.Checker
	trace  *obs.BufferTracer
	spans  *obs.SpanTracer
	bridge *obs.SpanBridge
}

func newShell(out io.Writer) *shell {
	trace := obs.NewBufferTracer(8)
	spans := obs.NewSpanTracer("ccshell", obs.NewTraceStore(64), 1)
	bridge := obs.NewSpanBridge(spans)
	return &shell{
		out:    out,
		chk:    core.New(store.New(), core.Options{Tracer: obs.MultiTracer(trace, bridge)}),
		trace:  trace,
		spans:  spans,
		bridge: bridge,
	}
}

func (sh *shell) printf(format string, args ...any) {
	fmt.Fprintf(sh.out, format, args...)
}

func (sh *shell) exec(line string) (quit bool) {
	line = strings.TrimSpace(line)
	switch {
	case line == "" || strings.HasPrefix(line, "%"):
		return false
	case line == ":quit" || line == ":q":
		return true
	case strings.HasPrefix(line, ":"):
		sh.command(line)
	case line[0] == '+' || line[0] == '-':
		sh.update(line)
	case line[0] == '?':
		sh.query(strings.TrimSpace(line[1:]))
	default:
		sh.printf("unrecognized input; see :help\n")
	}
	return false
}

func (sh *shell) command(line string) {
	fields := strings.SplitN(line, " ", 3)
	switch fields[0] {
	case ":help":
		sh.printf(":load <file> | :constraint <name> <rules> | :constraints | :redundant | :check | :stats | :explain | :trace | :dump | :quit | +atom | -atom | ? <conj>\n")
	case ":load":
		if len(fields) < 2 {
			sh.printf("usage: :load <file>\n")
			return
		}
		src, err := os.ReadFile(strings.TrimSpace(strings.Join(fields[1:], " ")))
		if err != nil {
			sh.printf("error: %v\n", err)
			return
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			sh.printf("error: %v\n", err)
			return
		}
		if err := sh.chk.DB().LoadFacts(prog); err != nil {
			sh.printf("error: %v\n", err)
			return
		}
		sh.printf("loaded %d facts\n", len(prog.Rules))
	case ":constraint":
		if len(fields) < 3 {
			sh.printf("usage: :constraint <name> <rules separated by ';'>\n")
			return
		}
		name := fields[1]
		src := strings.ReplaceAll(fields[2], ";", "\n")
		if err := sh.chk.AddConstraintSource(name, src); err != nil {
			sh.printf("error: %v\n", err)
			return
		}
		sh.printf("constraint %s registered\n", name)
	case ":constraints":
		for _, n := range sh.chk.Constraints() {
			sh.printf("%s\n", n)
		}
	case ":redundant":
		red, err := sh.chk.RedundantConstraints()
		if err != nil {
			sh.printf("error: %v\n", err)
			return
		}
		if len(red) == 0 {
			sh.printf("none\n")
			return
		}
		sh.printf("%s\n", strings.Join(red, " "))
	case ":check":
		bad, err := sh.chk.CheckAll()
		if err != nil {
			sh.printf("error: %v\n", err)
			return
		}
		if len(bad) == 0 {
			sh.printf("all constraints hold\n")
		} else {
			sh.printf("VIOLATED: %s\n", strings.Join(bad, " "))
		}
	case ":stats":
		st := sh.chk.Stats()
		sh.printf("updates=%d rejected=%d\n", st.Updates, st.Rejected)
		var phases []core.Phase
		for p := range st.ByPhase {
			phases = append(phases, p)
		}
		sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
		for _, p := range phases {
			sh.printf("  %-12s %d\n", p, st.ByPhase[p])
		}
	case ":explain":
		events := sh.trace.Last()
		if len(events) == 0 {
			sh.printf("no update to explain yet\n")
			return
		}
		obs.WriteText(sh.out, events)
	case ":trace":
		traces := sh.spans.Store().Traces()
		if len(traces) == 0 {
			sh.printf("no update to trace yet\n")
			return
		}
		obs.WriteSpanTree(sh.out, traces[0])
	case ":dump":
		sh.printf("%s", sh.chk.DB().Dump())
	default:
		sh.printf("unknown command %s; see :help\n", fields[0])
	}
}

func (sh *shell) update(line string) {
	atom, err := parser.ParseAtom(strings.TrimSpace(line[1:]))
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	t, err := relation.TermsToTuple(atom.Args)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	u := store.Update{Insert: line[0] == '+', Relation: atom.Pred, Tuple: t}
	sp := sh.spans.StartRoot("shell.apply", obs.SpanContext{})
	sp.SetAttr("update", fmt.Sprint(u))
	sh.bridge.SetActive(sp)
	rep, err := sh.chk.Apply(u)
	sh.bridge.SetActive(nil)
	if err != nil {
		sp.SetError(err.Error())
	}
	sp.End()
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	if !rep.Applied {
		sh.printf("REJECTED %v\n", rep.Violations())
		return
	}
	var parts []string
	for _, d := range rep.Decisions {
		parts = append(parts, fmt.Sprintf("%s: %s", d.Constraint, d.Phase))
	}
	sh.printf("applied")
	if len(parts) > 0 {
		sh.printf("        %s", strings.Join(parts, ", "))
	}
	sh.printf("\n")
}

// query evaluates an ad-hoc conjunction: the distinct variables of the
// body become the answer columns.
func (sh *shell) query(body string) {
	rule, err := parser.ParseRule("panic :- " + body)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	vars := rule.Vars()
	head := ast.Atom{Pred: "query$"}
	for _, v := range vars {
		head.Args = append(head.Args, ast.V(v))
	}
	prog := ast.NewProgram(&ast.Rule{Head: head, Body: rule.Body})
	if err := prog.Validate(); err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	res, err := eval.Eval(prog, sh.chk.DB())
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	rows := res.Tuples("query$")
	if len(rows) == 0 {
		sh.printf("no\n")
		return
	}
	if len(vars) == 0 {
		sh.printf("yes\n")
		return
	}
	sh.printf("%s\n", strings.Join(vars, ","))
	for _, t := range rows {
		sh.printf("%s\n", t)
	}
}
