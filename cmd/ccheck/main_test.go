package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"encoding/json"

	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/store"
)

func TestParseUpdates(t *testing.T) {
	src := `
% a comment
+emp(jones, shoe, 50)
-dept(toy)
// another comment
+l(3,6)
`
	us, err := ParseUpdates(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 3 {
		t.Fatalf("parsed %d updates, want 3", len(us))
	}
	if !us[0].Insert || us[0].Relation != "emp" || len(us[0].Tuple) != 3 {
		t.Errorf("update 0 = %v", us[0])
	}
	if us[1].Insert || us[1].Relation != "dept" {
		t.Errorf("update 1 = %v", us[1])
	}
}

func TestParseUpdatesErrors(t *testing.T) {
	bad := []string{
		"emp(a)",  // missing sign
		"+emp(X)", // non-ground
		"+emp(a) junk",
	}
	for _, src := range bad {
		if _, err := ParseUpdates(src); err == nil {
			t.Errorf("ParseUpdates(%q) accepted", src)
		}
	}
}

// mustConfig builds a config the way main does, failing the test on
// validation errors.
func mustConfig(t *testing.T, constraints, data, updates, local string, workers int, verbose bool, save string, sites ...string) config {
	t.Helper()
	cfg, err := buildConfig(flags{
		constraints: constraints, data: data, updates: updates, local: local,
		workers: workers, workersSet: workers != 0, verbose: verbose, save: save,
		timeout: 2 * time.Second, retries: 3, sites: sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestBuildConfigValidation(t *testing.T) {
	ok := func(err error, msg string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: accepted", msg)
		}
	}
	base := flags{constraints: "c.dl", updates: "u.txt", timeout: time.Second, retries: 3}
	_, err := buildConfig(flags{updates: "u.txt", timeout: time.Second, retries: 3})
	ok(err, "missing -constraints")
	_, err = buildConfig(flags{constraints: "c.dl", timeout: time.Second, retries: 3})
	ok(err, "missing -updates")
	f := base
	f.workersSet = true
	_, err = buildConfig(f)
	ok(err, "explicit -workers 0")
	f.workers = -2
	_, err = buildConfig(f)
	ok(err, "negative -workers")
	f = base
	f.sites = []string{"hostonly"}
	_, err = buildConfig(f)
	ok(err, "malformed -sites spec")
	f.sites = []string{"h:1=r", "h:2=r"}
	_, err = buildConfig(f)
	ok(err, "relation claimed by two sites")
	f.sites = []string{"h:1=r"}
	f.local = "r,s"
	_, err = buildConfig(f)
	ok(err, "relation both local and remote")

	cfg, err := buildConfig(flags{
		constraints: "c.dl", data: "d.dl", updates: "u.txt", local: "emp",
		verbose: true, save: "out.dl", timeout: time.Second, retries: 3,
		sites: []string{"h:1=dept", "h:2=salRange,cap"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.sites) != 2 || cfg.sites[1].Site != "h:2" || len(cfg.sites[1].Relations) != 2 {
		t.Errorf("parsed sites = %+v", cfg.sites)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	constraints := write("c.dl", `panic :- emp(E,D,S) & not dept(D).

panic :- emp(E,D,S) & S > 100.`)
	data := write("d.dl", "dept(toy). emp(ann,toy,50).")
	updates := write("u.txt", `
+dept(shoe)
+emp(bob,shoe,60)
+emp(eve,ghost,70)
+emp(zed,toy,900)
-emp(ann,toy,50)
`)
	saved := filepath.Join(dir, "out.dl")
	if err := run(mustConfig(t, constraints, data, updates, "emp,dept", 0, true, saved)); err != nil {
		t.Fatal(err)
	}
	dump, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "emp(bob,shoe,60).") {
		t.Errorf("saved dump missing applied tuple:\n%s", dump)
	}
	if strings.Contains(string(dump), "ghost") || strings.Contains(string(dump), "zed") {
		t.Errorf("saved dump contains rejected tuples:\n%s", dump)
	}
	if strings.Contains(string(dump), "emp(ann,toy,50).") {
		t.Errorf("saved dump contains deleted tuple:\n%s", dump)
	}
	// Violated constraint at load time must error.
	badData := write("bad.dl", "emp(x,ghost,5).")
	if err := run(mustConfig(t, constraints, badData, updates, "", 2, false, "")); err == nil {
		t.Error("initially-violated database accepted")
	}
	// Missing file.
	if err := run(mustConfig(t, filepath.Join(dir, "missing.dl"), data, updates, "", 1, false, "")); err == nil {
		t.Error("missing constraints file accepted")
	}
}

// TestRunTraceAndStats drives run() with the observability flags on: the
// JSONL trace must hold one bracketed event group per update and the
// stats file must carry the per-phase counts and the cache hit rate.
func TestRunTraceAndStats(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	constraints := write("c.dl", "panic :- emp(E,D,S) & S > 100.")
	data := write("d.dl", "emp(ann,toy,50).")
	updates := write("u.txt", "+emp(bob,toy,60)\n+emp(zed,toy,900)\n")
	traceOut := filepath.Join(dir, "trace.jsonl")
	statsOut := filepath.Join(dir, "stats.json")

	cfg := mustConfig(t, constraints, data, updates, "", 0, false, "")
	cfg.trace = true
	cfg.traceOut = traceOut
	cfg.statsJSON = statsOut
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var events []obs.Event
	for _, line := range lines {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		events = append(events, e)
	}
	begins, ends := 0, 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindUpdateBegin:
			begins++
		case obs.KindUpdateEnd:
			ends++
		}
	}
	if begins != 2 || ends != 2 {
		t.Errorf("trace has %d begins / %d ends, want 2 / 2", begins, ends)
	}
	last := events[len(events)-1]
	if last.Applied || len(last.Rejected) != 1 {
		t.Errorf("rejected update's end event = %+v", last)
	}

	var doc map[string]any
	raw, err = os.ReadFile(statsOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	checker, ok := doc["checker"].(map[string]any)
	if !ok {
		t.Fatalf("stats JSON missing checker section: %v", doc)
	}
	if checker["updates"] != float64(2) || checker["rejected"] != float64(1) {
		t.Errorf("checker stats = %v", checker)
	}
	if _, ok := checker["cache_hit_rate"]; !ok {
		t.Error("stats JSON missing cache_hit_rate")
	}
	byPhase, ok := checker["by_phase"].(map[string]any)
	if !ok || len(byPhase) == 0 {
		t.Errorf("stats JSON by_phase = %v", checker["by_phase"])
	}
	if _, ok := doc["dist"]; !ok {
		t.Error("stats JSON missing dist section for a -sites-less run")
	}
}

// TestRunWithSites drives run() against a real ccsited-style TCP site:
// dept lives remotely, emp locally, and the referential constraint must
// reject the hire into a department the site doesn't know.
func TestRunWithSites(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	siteDB := store.New()
	facts, err := parser.ParseProgram("dept(toy). dept(shoe).")
	if err != nil {
		t.Fatal(err)
	}
	if err := siteDB.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go netdist.NewServer(siteDB, []string{"dept"}).Serve(l)

	constraints := write("c.dl", "panic :- emp(E,D,S) & not dept(D).")
	data := write("d.dl", "emp(ann,toy,50).")
	updates := write("u.txt", "+emp(bob,shoe,60)\n+emp(eve,ghost,70)\n")
	saved := filepath.Join(dir, "out.dl")
	cfg := mustConfig(t, constraints, data, updates, "emp", 0, true, saved,
		l.Addr().String()+"=dept")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	dump, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "emp(bob,shoe,60).") {
		t.Errorf("valid hire missing from dump:\n%s", dump)
	}
	if strings.Contains(string(dump), "ghost") {
		t.Errorf("invalid hire committed:\n%s", dump)
	}
	// An unreachable site must surface as an error, not a hang or crash.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	cfg, err = buildConfig(flags{
		constraints: constraints, data: data, updates: updates, local: "emp",
		timeout: 200 * time.Millisecond, retries: -1, sites: []string{deadAddr + "=dept"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(cfg); err == nil {
		t.Error("run against a dead site succeeded")
	}
}

// TestRunRepeatAndResidualStats: -repeat replays the script with
// counters reset between runs, so the final stats describe one
// warm-cache run — residual hits high, compilations zero (they happened
// in run one). -noresidual zeroes the residual family entirely.
func TestRunRepeatAndResidualStats(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	constraints := write("c.dl", "panic :- emp(E,D,S) & S > 100.")
	data := write("d.dl", "emp(ann,toy,50).")
	updates := write("u.txt", "+emp(bob,toy,60)\n+emp(cid,toy,70)\n+emp(dot,toy,80)\n")
	statsOut := filepath.Join(dir, "stats.json")

	load := func() map[string]any {
		t.Helper()
		raw, err := os.ReadFile(statsOut)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		checker, ok := doc["checker"].(map[string]any)
		if !ok {
			t.Fatalf("stats JSON missing checker section: %v", doc)
		}
		return checker
	}

	cfg := mustConfig(t, constraints, data, updates, "", 0, false, "")
	cfg.statsJSON = statsOut
	cfg.repeat = 3
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	checker := load()
	// The last run sees only the warmed pattern cache: every update hits,
	// nothing compiles, and updates/decisions count one run, not three.
	if checker["updates"] != float64(3) {
		t.Errorf("updates = %v, want 3 (last run only)", checker["updates"])
	}
	if checker["residual_hits"] != float64(3) || checker["residual_compiled"] != float64(0) {
		t.Errorf("warm run residual counters = hits:%v compiled:%v, want 3/0",
			checker["residual_hits"], checker["residual_compiled"])
	}
	if checker["residual_entries"] == float64(0) {
		t.Error("warm run has no cached residuals")
	}

	cfg = mustConfig(t, constraints, data, updates, "", 0, false, "")
	cfg.statsJSON = statsOut
	cfg.noresidual = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	checker = load()
	for _, key := range []string{"residual_hits", "residual_misses", "residual_compiled", "residual_entries"} {
		if checker[key] != float64(0) {
			t.Errorf("-noresidual left %s = %v", key, checker[key])
		}
	}
	byPhase, ok := checker["by_phase"].(map[string]any)
	if !ok || byPhase["residual"] != nil {
		t.Errorf("-noresidual by_phase = %v", checker["by_phase"])
	}
}
