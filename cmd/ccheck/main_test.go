package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseUpdates(t *testing.T) {
	src := `
% a comment
+emp(jones, shoe, 50)
-dept(toy)
// another comment
+l(3,6)
`
	us, err := ParseUpdates(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 3 {
		t.Fatalf("parsed %d updates, want 3", len(us))
	}
	if !us[0].Insert || us[0].Relation != "emp" || len(us[0].Tuple) != 3 {
		t.Errorf("update 0 = %v", us[0])
	}
	if us[1].Insert || us[1].Relation != "dept" {
		t.Errorf("update 1 = %v", us[1])
	}
}

func TestParseUpdatesErrors(t *testing.T) {
	bad := []string{
		"emp(a)",  // missing sign
		"+emp(X)", // non-ground
		"+emp(a) junk",
	}
	for _, src := range bad {
		if _, err := ParseUpdates(src); err == nil {
			t.Errorf("ParseUpdates(%q) accepted", src)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	constraints := write("c.dl", `panic :- emp(E,D,S) & not dept(D).

panic :- emp(E,D,S) & S > 100.`)
	data := write("d.dl", "dept(toy). emp(ann,toy,50).")
	updates := write("u.txt", `
+dept(shoe)
+emp(bob,shoe,60)
+emp(eve,ghost,70)
+emp(zed,toy,900)
-emp(ann,toy,50)
`)
	saved := filepath.Join(dir, "out.dl")
	if err := run(constraints, data, updates, "emp,dept", 0, true, saved); err != nil {
		t.Fatal(err)
	}
	dump, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "emp(bob,shoe,60).") {
		t.Errorf("saved dump missing applied tuple:\n%s", dump)
	}
	if strings.Contains(string(dump), "ghost") || strings.Contains(string(dump), "zed") {
		t.Errorf("saved dump contains rejected tuples:\n%s", dump)
	}
	if strings.Contains(string(dump), "emp(ann,toy,50).") {
		t.Errorf("saved dump contains deleted tuple:\n%s", dump)
	}
	// Violated constraint at load time must error.
	badData := write("bad.dl", "emp(x,ghost,5).")
	if err := run(constraints, badData, updates, "", 2, false); err == nil {
		t.Error("initially-violated database accepted")
	}
	// Missing file.
	if err := run(filepath.Join(dir, "missing.dl"), data, updates, "", 1, false); err == nil {
		t.Error("missing constraints file accepted")
	}
}
