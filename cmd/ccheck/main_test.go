package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netdist"
	"repro/internal/parser"
	"repro/internal/store"
)

func TestParseUpdates(t *testing.T) {
	src := `
% a comment
+emp(jones, shoe, 50)
-dept(toy)
// another comment
+l(3,6)
`
	us, err := ParseUpdates(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 3 {
		t.Fatalf("parsed %d updates, want 3", len(us))
	}
	if !us[0].Insert || us[0].Relation != "emp" || len(us[0].Tuple) != 3 {
		t.Errorf("update 0 = %v", us[0])
	}
	if us[1].Insert || us[1].Relation != "dept" {
		t.Errorf("update 1 = %v", us[1])
	}
}

func TestParseUpdatesErrors(t *testing.T) {
	bad := []string{
		"emp(a)",  // missing sign
		"+emp(X)", // non-ground
		"+emp(a) junk",
	}
	for _, src := range bad {
		if _, err := ParseUpdates(src); err == nil {
			t.Errorf("ParseUpdates(%q) accepted", src)
		}
	}
}

// mustConfig builds a config the way main does, failing the test on
// validation errors.
func mustConfig(t *testing.T, constraints, data, updates, local string, workers int, verbose bool, save string, sites ...string) config {
	t.Helper()
	cfg, err := buildConfig(constraints, data, updates, local, workers, workers != 0, verbose, save, 2*time.Second, 3, sites)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestBuildConfigValidation(t *testing.T) {
	ok := func(err error, msg string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s: accepted", msg)
		}
	}
	_, err := buildConfig("", "", "u.txt", "", 0, false, false, "", time.Second, 3, nil)
	ok(err, "missing -constraints")
	_, err = buildConfig("c.dl", "", "", "", 0, false, false, "", time.Second, 3, nil)
	ok(err, "missing -updates")
	_, err = buildConfig("c.dl", "", "u.txt", "", 0, true, false, "", time.Second, 3, nil)
	ok(err, "explicit -workers 0")
	_, err = buildConfig("c.dl", "", "u.txt", "", -2, true, false, "", time.Second, 3, nil)
	ok(err, "negative -workers")
	_, err = buildConfig("c.dl", "", "u.txt", "", 0, false, false, "", time.Second, 3, []string{"hostonly"})
	ok(err, "malformed -sites spec")
	_, err = buildConfig("c.dl", "", "u.txt", "", 0, false, false, "", time.Second, 3, []string{"h:1=r", "h:2=r"})
	ok(err, "relation claimed by two sites")
	_, err = buildConfig("c.dl", "", "u.txt", "r,s", 0, false, false, "", time.Second, 3, []string{"h:1=r"})
	ok(err, "relation both local and remote")

	cfg, err := buildConfig("c.dl", "d.dl", "u.txt", "emp", 0, false, true, "out.dl", time.Second, 3,
		[]string{"h:1=dept", "h:2=salRange,cap"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.sites) != 2 || cfg.sites[1].Site != "h:2" || len(cfg.sites[1].Relations) != 2 {
		t.Errorf("parsed sites = %+v", cfg.sites)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	constraints := write("c.dl", `panic :- emp(E,D,S) & not dept(D).

panic :- emp(E,D,S) & S > 100.`)
	data := write("d.dl", "dept(toy). emp(ann,toy,50).")
	updates := write("u.txt", `
+dept(shoe)
+emp(bob,shoe,60)
+emp(eve,ghost,70)
+emp(zed,toy,900)
-emp(ann,toy,50)
`)
	saved := filepath.Join(dir, "out.dl")
	if err := run(mustConfig(t, constraints, data, updates, "emp,dept", 0, true, saved)); err != nil {
		t.Fatal(err)
	}
	dump, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "emp(bob,shoe,60).") {
		t.Errorf("saved dump missing applied tuple:\n%s", dump)
	}
	if strings.Contains(string(dump), "ghost") || strings.Contains(string(dump), "zed") {
		t.Errorf("saved dump contains rejected tuples:\n%s", dump)
	}
	if strings.Contains(string(dump), "emp(ann,toy,50).") {
		t.Errorf("saved dump contains deleted tuple:\n%s", dump)
	}
	// Violated constraint at load time must error.
	badData := write("bad.dl", "emp(x,ghost,5).")
	if err := run(mustConfig(t, constraints, badData, updates, "", 2, false, "")); err == nil {
		t.Error("initially-violated database accepted")
	}
	// Missing file.
	if err := run(mustConfig(t, filepath.Join(dir, "missing.dl"), data, updates, "", 1, false, "")); err == nil {
		t.Error("missing constraints file accepted")
	}
}

// TestRunWithSites drives run() against a real ccsited-style TCP site:
// dept lives remotely, emp locally, and the referential constraint must
// reject the hire into a department the site doesn't know.
func TestRunWithSites(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	siteDB := store.New()
	facts, err := parser.ParseProgram("dept(toy). dept(shoe).")
	if err != nil {
		t.Fatal(err)
	}
	if err := siteDB.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go netdist.NewServer(siteDB, []string{"dept"}).Serve(l)

	constraints := write("c.dl", "panic :- emp(E,D,S) & not dept(D).")
	data := write("d.dl", "emp(ann,toy,50).")
	updates := write("u.txt", "+emp(bob,shoe,60)\n+emp(eve,ghost,70)\n")
	saved := filepath.Join(dir, "out.dl")
	cfg := mustConfig(t, constraints, data, updates, "emp", 0, true, saved,
		l.Addr().String()+"=dept")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	dump, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "emp(bob,shoe,60).") {
		t.Errorf("valid hire missing from dump:\n%s", dump)
	}
	if strings.Contains(string(dump), "ghost") {
		t.Errorf("invalid hire committed:\n%s", dump)
	}
	// An unreachable site must surface as an error, not a hang or crash.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	cfg, err = buildConfig(constraints, data, updates, "emp", 0, false, false, "", 200*time.Millisecond, -1,
		[]string{deadAddr + "=dept"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(cfg); err == nil {
		t.Error("run against a dead site succeeded")
	}
}
