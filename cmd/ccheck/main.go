// Command ccheck loads constraints and data, applies an update script
// through the staged partial-information pipeline, and reports — per
// update — which phase decided each constraint and at what data cost.
//
// Usage:
//
//	ccheck -constraints c.dl -data d.dl -updates u.txt [-local emp,dept]
//	ccheck -constraints c.dl -data d.dl -updates u.txt \
//	       -local emp -sites 127.0.0.1:7070=dept,salRange
//
// Constraint files hold one or more constraint programs separated by
// blank lines (each must define panic). Data files hold facts. Update
// scripts hold one update per line: +emp(jones,shoe,50) or -dept(toy);
// '%' comments and blank lines are ignored.
//
// Without -sites the "remote" relations are simulated by the dist cost
// model. Each -sites flag (repeatable) names a ccsited daemon and the
// relations it owns; ccheck then runs the netdist coordinator, fetching
// those relations over TCP during global phases, and the report shows
// measured wire traffic instead of modeled cost.
//
// Observability: -trace prints a per-update decision trace (every phase
// attempt, cache hits, remote relations consulted); -trace-out file
// appends the same events as JSON lines; -stats-json file dumps the
// final pipeline statistics — per-phase decision counts, cache hit rate,
// and the deployment's data-access accounting — as JSON. -spans file
// additionally records every update as a distributed trace (a root span
// with phase children and, under -sites, per-RPC and site-side spans)
// and writes the collected traces as OTLP-JSON at exit.
//
// Global evaluations use hash-index probes with bound-first join
// planning and reuse compiled evaluation plans across the update stream;
// -noindex falls back to scan-and-filter evaluation and -noplancache to
// per-call re-planning for A/B comparison (see BenchmarkEvalIndexed and
// BenchmarkApplyCompiled). Eligible (constraint, update-pattern) pairs
// are additionally served by compiled residual checks cached per pattern
// (see internal/residual and BenchmarkApplyResidual); -noresidual forces
// every constraint through the staged pipeline instead. -repeat N
// replays the update script N times with counters reset between runs, so
// the reported statistics describe a warm-cache run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

// config is everything main parses from flags; run consumes it.
type config struct {
	constraints string
	data        string
	updates     string
	local       string
	workers     int
	noindex     bool
	noplancache bool
	noresidual  bool
	repeat      int
	verbose     bool
	save        string
	sites       []netdist.SiteSpec
	timeout     time.Duration
	retries     int
	trace       bool
	traceOut    string
	statsJSON   string
	spansOut    string
}

// flags is the raw flag surface buildConfig validates into a config.
type flags struct {
	constraints string
	data        string
	updates     string
	local       string
	workers     int
	workersSet  bool
	noindex     bool
	noplancache bool
	noresidual  bool
	repeat      int
	verbose     bool
	save        string
	timeout     time.Duration
	retries     int
	sites       []string
	trace       bool
	traceOut    string
	statsJSON   string
	spansOut    string
}

// siteFlags collects repeated -sites values.
type siteFlags []string

func (s *siteFlags) String() string { return strings.Join(*s, " ") }
func (s *siteFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		constraintsPath = flag.String("constraints", "", "path to constraint programs (blank-line separated)")
		dataPath        = flag.String("data", "", "path to initial facts")
		updatesPath     = flag.String("updates", "", "path to update script (+rel(...) / -rel(...) per line)")
		localList       = flag.String("local", "", "comma-separated local relations (default: all local)")
		workers         = flag.Int("workers", 0, "worker goroutines for constraint dispatch (default: one per CPU)")
		noindex         = flag.Bool("noindex", false, "disable hash-index probes and bound-first join planning in global evaluations (A/B escape hatch)")
		noplancache     = flag.Bool("noplancache", false, "disable the compiled evaluation plan cache: re-derive stratification and join plans on every global evaluation (A/B escape hatch)")
		noresidual      = flag.Bool("noresidual", false, "disable residual check compilation: run every constraint through the staged phase pipeline (A/B escape hatch)")
		repeat          = flag.Int("repeat", 1, "apply the update script this many times; checker counters reset between runs so the final statistics describe the last (warm-cache) run")
		verbose         = flag.Bool("v", false, "print per-update decisions")
		savePath        = flag.String("save", "", "write the final database to this file as facts")
		timeout         = flag.Duration("timeout", 2*time.Second, "per-request deadline for -sites round trips")
		retries         = flag.Int("retries", 3, "retry budget per -sites round trip")
		trace           = flag.Bool("trace", false, "print the per-update decision trace (which phase decided each constraint and why)")
		traceOut        = flag.String("trace-out", "", "append the decision trace to this file as JSON lines")
		statsJSON       = flag.String("stats-json", "", "write the final pipeline statistics to this file as JSON")
		spansOut        = flag.String("spans", "", "record every update as a distributed trace and write OTLP-JSON here at exit")
		sites           siteFlags
	)
	flag.Var(&sites, "sites", "site daemon spec host:port=rel1,rel2 (repeatable)")
	flag.Parse()
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	cfg, err := buildConfig(flags{
		constraints: *constraintsPath, data: *dataPath, updates: *updatesPath,
		local: *localList, workers: *workers, workersSet: workersSet, noindex: *noindex,
		noplancache: *noplancache, noresidual: *noresidual, repeat: *repeat,
		verbose: *verbose, save: *savePath, timeout: *timeout, retries: *retries,
		sites: sites, trace: *trace, traceOut: *traceOut, statsJSON: *statsJSON,
		spansOut: *spansOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccheck:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ccheck:", err)
		os.Exit(1)
	}
}

// buildConfig validates the raw flag values into a runnable config: the
// required paths must be present, an explicitly-set -workers must be
// positive (leaving it unset keeps the one-per-CPU default), every
// -sites spec must parse, and no relation may be claimed twice or
// listed both local and remote.
func buildConfig(f flags) (config, error) {
	cfg := config{
		constraints: f.constraints, data: f.data, updates: f.updates, local: f.local,
		workers: f.workers, noindex: f.noindex, noplancache: f.noplancache,
		noresidual: f.noresidual, repeat: f.repeat,
		verbose: f.verbose, save: f.save, timeout: f.timeout, retries: f.retries,
		trace: f.trace, traceOut: f.traceOut, statsJSON: f.statsJSON,
		spansOut: f.spansOut,
	}
	if f.constraints == "" || f.updates == "" {
		return cfg, fmt.Errorf("-constraints and -updates are required")
	}
	// The zero value (flags built programmatically) means the default of
	// one run; an explicit non-positive -repeat is an error.
	if f.repeat < 0 {
		return cfg, fmt.Errorf("-repeat must be at least 1 (got %d)", f.repeat)
	}
	if f.repeat == 0 {
		cfg.repeat = 1
	}
	if f.workersSet && f.workers <= 0 {
		return cfg, fmt.Errorf("-workers must be positive (got %d); omit it for one per CPU", f.workers)
	}
	if !f.workersSet && f.workers < 0 {
		return cfg, fmt.Errorf("-workers must be positive (got %d)", f.workers)
	}
	claimed := map[string]string{}
	for _, s := range f.sites {
		spec, err := netdist.ParseSiteSpec(s)
		if err != nil {
			return cfg, err
		}
		for _, rel := range spec.Relations {
			if other, ok := claimed[rel]; ok {
				return cfg, fmt.Errorf("-sites: relation %s claimed by both %s and %s", rel, other, spec.Site)
			}
			claimed[rel] = spec.Site
		}
		cfg.sites = append(cfg.sites, spec)
	}
	for _, rel := range splitList(f.local) {
		if site, ok := claimed[rel]; ok {
			return cfg, fmt.Errorf("relation %s is both -local and served by %s", rel, site)
		}
	}
	return cfg, nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// applier is the surface shared by dist.System and netdist.Coordinator.
type applier interface {
	Apply(u store.Update) (core.Report, error)
	Report() string
}

func run(cfg config) error {
	db := store.New()
	if cfg.data != "" {
		src, err := os.ReadFile(cfg.data)
		if err != nil {
			return err
		}
		facts, err := parser.ParseProgram(string(src))
		if err != nil {
			return fmt.Errorf("data: %w", err)
		}
		if err := db.LoadFacts(facts); err != nil {
			return err
		}
	}
	opts := core.Options{
		LocalRelations:   splitList(cfg.local),
		Workers:          cfg.workers,
		DisableIndexes:   cfg.noindex,
		DisablePlanCache: cfg.noplancache,
		DisableResidual:  cfg.noresidual,
	}

	// Decision tracing: -trace renders to stdout as updates run,
	// -trace-out appends the same events as JSON lines; both may be on.
	var tracers []obs.Tracer
	if cfg.trace {
		tracers = append(tracers, obs.NewTextTracer(os.Stdout))
	}
	var jsonl *obs.JSONLTracer
	if cfg.traceOut != "" {
		f, err := os.OpenFile(cfg.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer f.Close()
		jsonl = obs.NewJSONLTracer(f)
		tracers = append(tracers, jsonl)
	}
	// -spans: every update becomes a sampled trace whose phase events the
	// bridge converts into child spans; under -sites the coordinator adds
	// per-RPC spans and sites echo their side back. Dumped as OTLP-JSON
	// at exit.
	var spans *obs.SpanTracer
	var bridge *obs.SpanBridge
	if cfg.spansOut != "" {
		spans = obs.NewSpanTracer("ccheck", obs.NewTraceStore(1024), 1)
		bridge = obs.NewSpanBridge(spans)
		tracers = append(tracers, bridge)
	}
	switch len(tracers) {
	case 0:
	case 1:
		opts.Tracer = tracers[0]
	default:
		opts.Tracer = obs.MultiTracer(tracers...)
	}

	var sys applier
	var checker *core.Checker
	if len(cfg.sites) > 0 {
		co, err := netdist.New(db, cfg.sites, netdist.NewTCPTransport(), netdist.Options{
			Checker: opts,
			Timeout: cfg.timeout,
			Retries: cfg.retries,
			Spans:   bridge,
		})
		if err != nil {
			return err
		}
		sys, checker = co, co.Checker
	} else {
		ds := dist.NewWithOptions(db, opts, dist.DefaultCost)
		sys, checker = ds, ds.Checker
	}

	csrc, err := os.ReadFile(cfg.constraints)
	if err != nil {
		return err
	}
	for i, block := range splitBlocks(string(csrc)) {
		name := fmt.Sprintf("c%d", i+1)
		if err := checker.AddConstraintSource(name, block); err != nil {
			return fmt.Errorf("constraint %s: %w", name, err)
		}
	}
	db.ResetReads()

	usrc, err := os.ReadFile(cfg.updates)
	if err != nil {
		return err
	}
	updates, err := ParseUpdates(string(usrc))
	if err != nil {
		return err
	}
	for run := 0; run < cfg.repeat; run++ {
		if run > 0 {
			// Each -repeat run reports its own rates: zero the checker's
			// counter families (decision, plan and residual caches keep
			// their entries — measuring warm caches is the point) and the
			// store's read accounting.
			checker.ResetStats()
			db.ResetReads()
		}
		for _, u := range updates {
			var sp *obs.Span
			if spans != nil {
				sp = spans.StartRoot("ccheck.apply", obs.SpanContext{})
				sp.SetAttr("update", fmt.Sprint(u))
				bridge.SetActive(sp)
			}
			rep, err := sys.Apply(u)
			if spans != nil {
				bridge.SetActive(nil)
				if err != nil {
					sp.SetError(err.Error())
				}
				sp.End()
			}
			if err != nil {
				return fmt.Errorf("update %v: %w", u, err)
			}
			if cfg.verbose && run == cfg.repeat-1 {
				status := "applied"
				if !rep.Applied {
					status = "REJECTED (" + strings.Join(rep.Violations(), ",") + ")"
				}
				fmt.Printf("%-30s %s\n", u, status)
				for _, d := range rep.Decisions {
					fmt.Printf("    %-10s decided by %s: %s\n", d.Constraint, d.Phase, d.Verdict)
				}
			}
		}
	}
	fmt.Print(sys.Report())
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if cfg.statsJSON != "" {
		if err := writeStatsJSON(cfg.statsJSON, checker, sys); err != nil {
			return fmt.Errorf("stats-json: %w", err)
		}
	}
	if cfg.spansOut != "" {
		f, err := os.Create(cfg.spansOut)
		if err != nil {
			return fmt.Errorf("spans: %w", err)
		}
		traces := spans.Store().Traces()
		if err := obs.WriteOTLP(f, traces); err != nil {
			f.Close()
			return fmt.Errorf("spans: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("spans: %w", err)
		}
		fmt.Printf("wrote %d traces (OTLP-JSON) to %s\n", len(traces), cfg.spansOut)
	}
	if cfg.save != "" {
		if err := os.WriteFile(cfg.save, []byte(db.Dump()), 0o644); err != nil {
			return fmt.Errorf("save: %w", err)
		}
	}
	return nil
}

// phaseNames converts a by-phase counter map to phase-name keys for JSON.
func phaseNames(m map[core.Phase]int) map[string]int {
	out := make(map[string]int, len(m))
	for p, n := range m {
		out[p.String()] = n
	}
	return out
}

// writeStatsJSON dumps the checker's and the deployment's final
// statistics as one JSON document: the staged pipeline's per-phase
// decision counts and cache effectiveness, plus either the dist cost
// model's entries or the netdist coordinator's measured wire accounting.
func writeStatsJSON(path string, checker *core.Checker, sys applier) error {
	cs := checker.Stats()
	doc := map[string]any{
		"checker": map[string]any{
			"updates":        cs.Updates,
			"rejected":       cs.Rejected,
			"decisions":      cs.Decisions,
			"by_phase":       phaseNames(cs.ByPhase),
			"cache_hits":     cs.CacheHits,
			"cache_misses":   cs.CacheMisses,
			"cache_hit_rate": cs.CacheHitRate(),
			// Evaluation machinery counters: the relation layer's
			// process-wide index accounting (the same values the obs
			// gauges cc_index_builds/cc_index_probes sample), the compiled
			// plan cache, and the intern pool size.
			"index_builds":       relation.IndexBuilds(),
			"index_probes":       relation.IndexProbes(),
			"plan_cache_hits":    cs.PlanHits,
			"plan_cache_misses":  cs.PlanMisses,
			"plan_cache_entries": cs.PlanEntries,
			"intern_size":        relation.InternSize(),
			// Residual dispatch: pattern-cache effectiveness and how many
			// compiled residuals are live (zero under -noresidual).
			"residual_hits":     cs.ResidualHits,
			"residual_misses":   cs.ResidualMisses,
			"residual_compiled": cs.ResidualCompiled,
			"residual_entries":  cs.ResidualEntries,
		},
	}
	switch s := sys.(type) {
	case *dist.System:
		ds := s.Stats()
		doc["dist"] = map[string]any{
			"updates":         ds.Updates,
			"rejected":        ds.Rejected,
			"by_phase":        phaseNames(ds.ByPhase),
			"remote_tuples":   ds.RemoteTuples,
			"remote_trips":    ds.RemoteTrips,
			"local_tuples":    ds.LocalTuples,
			"decided_locally": ds.DecidedLocally,
			"cost":            ds.Cost,
		}
	case *netdist.Coordinator:
		ns := s.Stats()
		doc["net"] = map[string]any{
			"updates":             ns.Updates,
			"rejected":            ns.Rejected,
			"unavailable":         ns.Unavailable,
			"by_phase":            phaseNames(ns.ByPhase),
			"decided_locally":     ns.DecidedLocally,
			"round_trips":         ns.RoundTrips,
			"retries":             ns.Retries,
			"retries_by_site":     ns.RetriesBySite,
			"unavailable_by_site": ns.UnavailableBySite,
			"wire_tuples":         ns.WireTuples,
			"net_time_seconds":    ns.NetTime.Seconds(),
			"sync_trips":          ns.SyncTrips,
			"sync_tuples":         ns.SyncTuples,
		}
	}
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

// splitBlocks splits a file into blank-line-separated program blocks.
func splitBlocks(src string) []string {
	var out []string
	for _, block := range strings.Split(src, "\n\n") {
		if strings.TrimSpace(block) != "" {
			out = append(out, block)
		}
	}
	return out
}

// ParseUpdates parses an update script: one +atom or -atom per line.
func ParseUpdates(src string) ([]store.Update, error) {
	var out []store.Update
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		insert := true
		switch line[0] {
		case '+':
		case '-':
			insert = false
		default:
			return nil, fmt.Errorf("line %d: update must start with + or -: %q", ln+1, line)
		}
		atom, err := parser.ParseAtom(strings.TrimSpace(line[1:]))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		t, err := relation.TermsToTuple(atom.Args)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		u := store.Update{Insert: insert, Relation: atom.Pred, Tuple: t}
		out = append(out, u)
	}
	return out, nil
}
