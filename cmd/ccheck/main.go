// Command ccheck loads constraints and data, applies an update script
// through the staged partial-information pipeline, and reports — per
// update — which phase decided each constraint and at what data cost.
//
// Usage:
//
//	ccheck -constraints c.dl -data d.dl -updates u.txt [-local emp,dept]
//
// Constraint files hold one or more constraint programs separated by
// blank lines (each must define panic). Data files hold facts. Update
// scripts hold one update per line: +emp(jones,shoe,50) or -dept(toy);
// '%' comments and blank lines are ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func main() {
	var (
		constraintsPath = flag.String("constraints", "", "path to constraint programs (blank-line separated)")
		dataPath        = flag.String("data", "", "path to initial facts")
		updatesPath     = flag.String("updates", "", "path to update script (+rel(...) / -rel(...) per line)")
		localList       = flag.String("local", "", "comma-separated local relations (default: all local)")
		workers         = flag.Int("workers", 0, "worker goroutines for constraint dispatch (0: one per CPU, 1: serial)")
		verbose         = flag.Bool("v", false, "print per-update decisions")
		savePath        = flag.String("save", "", "write the final database to this file as facts")
	)
	flag.Parse()
	if *constraintsPath == "" || *updatesPath == "" {
		fmt.Fprintln(os.Stderr, "ccheck: -constraints and -updates are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*constraintsPath, *dataPath, *updatesPath, *localList, *workers, *verbose, *savePath); err != nil {
		fmt.Fprintln(os.Stderr, "ccheck:", err)
		os.Exit(1)
	}
}

func run(constraintsPath, dataPath, updatesPath, localList string, workers int, verbose bool, savePath ...string) error {
	db := store.New()
	if dataPath != "" {
		src, err := os.ReadFile(dataPath)
		if err != nil {
			return err
		}
		facts, err := parser.ParseProgram(string(src))
		if err != nil {
			return fmt.Errorf("data: %w", err)
		}
		if err := db.LoadFacts(facts); err != nil {
			return err
		}
	}
	var locals []string
	if localList != "" {
		locals = strings.Split(localList, ",")
	}
	sys := dist.NewWithOptions(db, core.Options{LocalRelations: locals, Workers: workers}, dist.DefaultCost)

	csrc, err := os.ReadFile(constraintsPath)
	if err != nil {
		return err
	}
	for i, block := range splitBlocks(string(csrc)) {
		name := fmt.Sprintf("c%d", i+1)
		if err := sys.Checker.AddConstraintSource(name, block); err != nil {
			return fmt.Errorf("constraint %s: %w", name, err)
		}
	}
	db.ResetReads()

	usrc, err := os.ReadFile(updatesPath)
	if err != nil {
		return err
	}
	updates, err := ParseUpdates(string(usrc))
	if err != nil {
		return err
	}
	for _, u := range updates {
		rep, err := sys.Apply(u)
		if err != nil {
			return fmt.Errorf("update %v: %w", u, err)
		}
		if verbose {
			status := "applied"
			if !rep.Applied {
				status = "REJECTED (" + strings.Join(rep.Violations(), ",") + ")"
			}
			fmt.Printf("%-30s %s\n", u, status)
			for _, d := range rep.Decisions {
				fmt.Printf("    %-10s decided by %s: %s\n", d.Constraint, d.Phase, d.Verdict)
			}
		}
	}
	fmt.Print(sys.Report())
	if len(savePath) > 0 && savePath[0] != "" {
		if err := os.WriteFile(savePath[0], []byte(db.Dump()), 0o644); err != nil {
			return fmt.Errorf("save: %w", err)
		}
	}
	return nil
}

// splitBlocks splits a file into blank-line-separated program blocks.
func splitBlocks(src string) []string {
	var out []string
	for _, block := range strings.Split(src, "\n\n") {
		if strings.TrimSpace(block) != "" {
			out = append(out, block)
		}
	}
	return out
}

// ParseUpdates parses an update script: one +atom or -atom per line.
func ParseUpdates(src string) ([]store.Update, error) {
	var out []store.Update
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		insert := true
		switch line[0] {
		case '+':
		case '-':
			insert = false
		default:
			return nil, fmt.Errorf("line %d: update must start with + or -: %q", ln+1, line)
		}
		atom, err := parser.ParseAtom(strings.TrimSpace(line[1:]))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		t, err := relation.TermsToTuple(atom.Args)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		u := store.Update{Insert: insert, Relation: atom.Pred, Tuple: t}
		out = append(out, u)
	}
	return out, nil
}
