// Command ccheck loads constraints and data, applies an update script
// through the staged partial-information pipeline, and reports — per
// update — which phase decided each constraint and at what data cost.
//
// Usage:
//
//	ccheck -constraints c.dl -data d.dl -updates u.txt [-local emp,dept]
//	ccheck -constraints c.dl -data d.dl -updates u.txt \
//	       -local emp -sites 127.0.0.1:7070=dept,salRange
//
// Constraint files hold one or more constraint programs separated by
// blank lines (each must define panic). Data files hold facts. Update
// scripts hold one update per line: +emp(jones,shoe,50) or -dept(toy);
// '%' comments and blank lines are ignored.
//
// Without -sites the "remote" relations are simulated by the dist cost
// model. Each -sites flag (repeatable) names a ccsited daemon and the
// relations it owns; ccheck then runs the netdist coordinator, fetching
// those relations over TCP during global phases, and the report shows
// measured wire traffic instead of modeled cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/netdist"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

// config is everything main parses from flags; run consumes it.
type config struct {
	constraints string
	data        string
	updates     string
	local       string
	workers     int
	verbose     bool
	save        string
	sites       []netdist.SiteSpec
	timeout     time.Duration
	retries     int
}

// siteFlags collects repeated -sites values.
type siteFlags []string

func (s *siteFlags) String() string { return strings.Join(*s, " ") }
func (s *siteFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		constraintsPath = flag.String("constraints", "", "path to constraint programs (blank-line separated)")
		dataPath        = flag.String("data", "", "path to initial facts")
		updatesPath     = flag.String("updates", "", "path to update script (+rel(...) / -rel(...) per line)")
		localList       = flag.String("local", "", "comma-separated local relations (default: all local)")
		workers         = flag.Int("workers", 0, "worker goroutines for constraint dispatch (default: one per CPU)")
		verbose         = flag.Bool("v", false, "print per-update decisions")
		savePath        = flag.String("save", "", "write the final database to this file as facts")
		timeout         = flag.Duration("timeout", 2*time.Second, "per-request deadline for -sites round trips")
		retries         = flag.Int("retries", 3, "retry budget per -sites round trip")
		sites           siteFlags
	)
	flag.Var(&sites, "sites", "site daemon spec host:port=rel1,rel2 (repeatable)")
	flag.Parse()
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	cfg, err := buildConfig(*constraintsPath, *dataPath, *updatesPath, *localList, *workers, workersSet, *verbose, *savePath, *timeout, *retries, sites)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccheck:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ccheck:", err)
		os.Exit(1)
	}
}

// buildConfig validates the raw flag values into a runnable config: the
// required paths must be present, an explicitly-set -workers must be
// positive (leaving it unset keeps the one-per-CPU default), every
// -sites spec must parse, and no relation may be claimed twice or
// listed both local and remote.
func buildConfig(constraints, data, updates, local string, workers int, workersSet, verbose bool, save string, timeout time.Duration, retries int, sites []string) (config, error) {
	cfg := config{
		constraints: constraints, data: data, updates: updates, local: local,
		workers: workers, verbose: verbose, save: save, timeout: timeout, retries: retries,
	}
	if constraints == "" || updates == "" {
		return cfg, fmt.Errorf("-constraints and -updates are required")
	}
	if workersSet && workers <= 0 {
		return cfg, fmt.Errorf("-workers must be positive (got %d); omit it for one per CPU", workers)
	}
	if !workersSet && workers < 0 {
		return cfg, fmt.Errorf("-workers must be positive (got %d)", workers)
	}
	claimed := map[string]string{}
	for _, s := range sites {
		spec, err := netdist.ParseSiteSpec(s)
		if err != nil {
			return cfg, err
		}
		for _, rel := range spec.Relations {
			if other, ok := claimed[rel]; ok {
				return cfg, fmt.Errorf("-sites: relation %s claimed by both %s and %s", rel, other, spec.Site)
			}
			claimed[rel] = spec.Site
		}
		cfg.sites = append(cfg.sites, spec)
	}
	for _, rel := range splitList(local) {
		if site, ok := claimed[rel]; ok {
			return cfg, fmt.Errorf("relation %s is both -local and served by %s", rel, site)
		}
	}
	return cfg, nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// applier is the surface shared by dist.System and netdist.Coordinator.
type applier interface {
	Apply(u store.Update) (core.Report, error)
	Report() string
}

func run(cfg config) error {
	db := store.New()
	if cfg.data != "" {
		src, err := os.ReadFile(cfg.data)
		if err != nil {
			return err
		}
		facts, err := parser.ParseProgram(string(src))
		if err != nil {
			return fmt.Errorf("data: %w", err)
		}
		if err := db.LoadFacts(facts); err != nil {
			return err
		}
	}
	opts := core.Options{LocalRelations: splitList(cfg.local), Workers: cfg.workers}

	var sys applier
	var checker *core.Checker
	if len(cfg.sites) > 0 {
		co, err := netdist.New(db, cfg.sites, netdist.NewTCPTransport(), netdist.Options{
			Checker: opts,
			Timeout: cfg.timeout,
			Retries: cfg.retries,
		})
		if err != nil {
			return err
		}
		sys, checker = co, co.Checker
	} else {
		ds := dist.NewWithOptions(db, opts, dist.DefaultCost)
		sys, checker = ds, ds.Checker
	}

	csrc, err := os.ReadFile(cfg.constraints)
	if err != nil {
		return err
	}
	for i, block := range splitBlocks(string(csrc)) {
		name := fmt.Sprintf("c%d", i+1)
		if err := checker.AddConstraintSource(name, block); err != nil {
			return fmt.Errorf("constraint %s: %w", name, err)
		}
	}
	db.ResetReads()

	usrc, err := os.ReadFile(cfg.updates)
	if err != nil {
		return err
	}
	updates, err := ParseUpdates(string(usrc))
	if err != nil {
		return err
	}
	for _, u := range updates {
		rep, err := sys.Apply(u)
		if err != nil {
			return fmt.Errorf("update %v: %w", u, err)
		}
		if cfg.verbose {
			status := "applied"
			if !rep.Applied {
				status = "REJECTED (" + strings.Join(rep.Violations(), ",") + ")"
			}
			fmt.Printf("%-30s %s\n", u, status)
			for _, d := range rep.Decisions {
				fmt.Printf("    %-10s decided by %s: %s\n", d.Constraint, d.Phase, d.Verdict)
			}
		}
	}
	fmt.Print(sys.Report())
	if cfg.save != "" {
		if err := os.WriteFile(cfg.save, []byte(db.Dump()), 0o644); err != nil {
			return fmt.Errorf("save: %w", err)
		}
	}
	return nil
}

// splitBlocks splits a file into blank-line-separated program blocks.
func splitBlocks(src string) []string {
	var out []string
	for _, block := range strings.Split(src, "\n\n") {
		if strings.TrimSpace(block) != "" {
			out = append(out, block)
		}
	}
	return out
}

// ParseUpdates parses an update script: one +atom or -atom per line.
func ParseUpdates(src string) ([]store.Update, error) {
	var out []store.Update
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		insert := true
		switch line[0] {
		case '+':
		case '-':
			insert = false
		default:
			return nil, fmt.Errorf("line %d: update must start with + or -: %q", ln+1, line)
		}
		atom, err := parser.ParseAtom(strings.TrimSpace(line[1:]))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		t, err := relation.TermsToTuple(atom.Args)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		u := store.Update{Insert: insert, Relation: atom.Pred, Tuple: t}
		out = append(out, u)
	}
	return out, nil
}
