package main

import "testing"

// TestRunQuickArtifacts smoke-runs each artifact in quick mode; the
// underlying experiments are validated in internal/experiments.
func TestRunQuickArtifacts(t *testing.T) {
	for _, id := range []string{"2.1", "4.1", "4.2", "6.1", "ex4.1", "t3", "t52", "t53", "dnet", "obs"} {
		if err := run(id, true); err != nil {
			t.Errorf("run(%q): %v", id, err)
		}
	}
}
