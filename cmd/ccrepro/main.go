// Command ccrepro regenerates the paper's figures and this repository's
// experiments as text tables.
//
// Usage:
//
//	ccrepro            # everything
//	ccrepro -only 2.1  # one artifact: 2.1, 4.1, 4.2, 6.1, ex4.1,
//	                   # t3, t51, t52, t53, t61, d1, dnet, obs, plan,
//	                   # resid, serve, span
//	ccrepro -quick     # smaller parameter sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "regenerate a single artifact (2.1, 4.1, 4.2, 6.1, ex4.1, t3, t51, t52, t53, t61, d1, dnet, obs, plan, resid, serve, span)")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	flag.Parse()
	if err := run(*only, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "ccrepro:", err)
		os.Exit(1)
	}
}

func run(only string, quick bool) error {
	want := func(id string) bool { return only == "" || only == id }
	p := func(t experiments.Table) { fmt.Println(t.Render()) }

	if want("2.1") {
		p(experiments.Fig21())
	}
	if want("4.1") {
		p(experiments.Fig41())
	}
	if want("4.2") {
		p(experiments.Fig42())
	}
	if want("6.1") {
		gen, paper, err := experiments.Fig61Program()
		if err != nil {
			return err
		}
		fmt.Println("Fig 6.1 — the paper's program:")
		fmt.Println(paper)
		fmt.Println()
		fmt.Println("Generated (generalized to open/closed/infinite endpoints, target [4,8]):")
		fmt.Println(gen)
		fmt.Println()
		demo, err := experiments.Fig61Demo()
		if err != nil {
			return err
		}
		p(demo)
	}
	if want("ex4.1") {
		t, err := experiments.ExpExample41()
		if err != nil {
			return err
		}
		p(t)
	}
	if want("t3") {
		sizes := []int{1, 2, 3, 4, 5}
		if quick {
			sizes = []int{1, 2, 3}
		}
		p(experiments.ExpSubsumption(sizes))
	}
	if want("t51") {
		ks := []int{1, 2, 3, 4, 5}
		if quick {
			ks = []int{1, 2, 3}
		}
		p(experiments.ExpTheorem51VsKlug(ks))
		trials := 300
		if quick {
			trials = 60
		}
		p(experiments.ExpTheorem51VsKlugRandom(trials, 17))
	}
	if want("t52") {
		sizes := []int{5, 20, 50, 100, 200}
		if quick {
			sizes = []int{5, 20}
		}
		t, err := experiments.ExpLocalTest(sizes, 9)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("t53") {
		sizes := []int{10, 100, 1000, 10000}
		if quick {
			sizes = []int{10, 100}
		}
		t, err := experiments.ExpRACompile(sizes, 9)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("t61") {
		sizes := []int{5, 10, 20, 40}
		if quick {
			sizes = []int{5, 10}
		}
		t, err := experiments.ExpIntervalAblation(sizes, 9)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("d1") {
		densities := []int{10, 50, 150, 400}
		updates := 100
		if quick {
			densities = []int{10, 50}
			updates = 30
		}
		t, err := experiments.ExpDistributed(densities, updates, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("obs") {
		density, updates, rounds := 50, 100, 5
		if quick {
			updates, rounds = 30, 2
		}
		t, err := experiments.ExpTraceOverhead(density, updates, rounds, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("span") {
		density, updates, rounds := 50, 100, 5
		if quick {
			updates, rounds = 30, 2
		}
		t, err := experiments.ExpSpanOverhead(density, updates, rounds, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("plan") {
		density, updates, rounds := 50, 100, 5
		if quick {
			updates, rounds = 30, 2
		}
		t, err := experiments.ExpPlanCache(density, updates, rounds, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("resid") {
		density, updates, rounds := 50, 100, 5
		if quick {
			updates, rounds = 30, 2
		}
		t, err := experiments.ExpResidual(density, updates, rounds, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("serve") {
		density, updates, rounds := 50, 200, 3
		if quick {
			updates, rounds = 50, 1
		}
		t, err := experiments.ExpServe(density, updates, rounds, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	if want("dnet") {
		densities := []int{10, 50, 150}
		updates, latency := 100, time.Millisecond
		if quick {
			densities = []int{10, 50}
			updates = 30
		}
		t, err := experiments.ExpNetDistributed(densities, updates, latency, 5)
		if err != nil {
			return err
		}
		p(t)
	}
	return nil
}
