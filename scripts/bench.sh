#!/usr/bin/env bash
# Runs the key pipeline benchmarks (-count=5 each) and emits
# BENCH_pipeline.json: one record per benchmark run with name, iterations
# and ns/op, suitable for diffing across commits.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_pipeline.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
  -bench 'BenchmarkDistributedStaged$|BenchmarkTheorem51$|BenchmarkApplyParallel$' \
  -count="$COUNT" -benchmem . | tee "$TMP"

awk '
  BEGIN { print "[" }
  /^Benchmark/ {
    name = $1; iters = $2; ns = $3
    printf "%s  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s}", (n++ ? ",\n" : ""), name, iters, ns
  }
  END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") runs)"
