#!/usr/bin/env bash
# Runs the benchmark families (-count=5 each) and emits one JSON file
# per family: BENCH_pipeline.json (conflict-aware apply scheduling:
# BenchmarkServePipeline's sequential-vs-pipelined arms plus the
# BenchmarkNetDistLoopback arms — the evidence for the ≥2.5x pipelined
# apply-throughput claim), BENCH_staged.json (the staged checking
# pipeline: Theorem51 / DistributedStaged / ApplyParallel),
# BENCH_net.json (networked runtime), BENCH_obs.json (tracing
# overhead), BENCH_eval.json (indexed joins), BENCH_plan.json (plan
# cache), BENCH_residual.json (residual dispatch), BENCH_shard.json
# (horizontal scale-out: BenchmarkNetDistLoopback's shard arms at
# 1/4/16 sites × whole/sharded/scatter × 0/500us, with a
# scaling-efficiency summary), and the
# sustained-load decision-server run (BENCH_serve.json via ccload): one
# record per benchmark run with name, iterations, ns/op, B/op and
# allocs/op, plus the git commit and UTC date the run was taken at,
# suitable for diffing across commits. The obs file is the evidence for
# EXPERIMENTS.md's claims that the disabled tracer costs ≤5% and the
# idle span layer ≤2% on the D1 workload (spans-enabled vs -disabled
# arms of BenchmarkSpanOverhead, with BenchmarkApplyResidual/residual (the D1 stream) as the
# hot-path reference); the eval file is the evidence for the indexed-vs-scan
# speedup claim; the plan file is the evidence for the compile-once
# speedup/allocation claim; the residual file is the evidence for the
# residual-vs-pipeline speedup claim; the serve file records per-arm
# p50/p99 latency and throughput under SERVE_STREAMS concurrent client
# streams on loopback.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# bench_to_json BENCH_REGEX OUT_FILE
bench_to_json() {
  local regex="$1" out="$2"
  go test -run '^$' -bench "$regex" -count="$COUNT" -benchmem . | tee "$TMP"
  # B/op and allocs/op are located by their unit, not by position: lines
  # carrying ReportMetric extras (remote-tuples/op, wire-tuples/op, …)
  # shift the -benchmem columns.
  awk -v commit="$COMMIT" -v date="$DATE" '
    BEGIN { print "[" }
    /^Benchmark/ {
      name = $1; iters = $2; ns = $3; bytes = 0; allocs = 0
      for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
      }
      printf "%s  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s,\"commit\":\"%s\",\"date\":\"%s\"}", \
        (n++ ? ",\n" : ""), name, iters, ns, bytes, allocs, commit, date
    }
    END { print "\n]" }
  ' "$TMP" > "$out"
  echo "wrote $out ($(grep -c '"name"' "$out") runs)"
}

PIPE_JSON="${OUT:-BENCH_pipeline.json}"
bench_to_json 'BenchmarkServePipeline$|BenchmarkNetDistLoopback/arm=' "$PIPE_JSON"

# Sequential-vs-pipelined summary: mean ns/op per arm read back from the
# records just written, plus the headline speedup (ServePipeline is one
# 64-update stream per op, so ns/op ratios are throughput ratios).
awk -F'"' '
  $2 == "name" && $4 ~ /ServePipeline|NetDistLoopback/ {
    if (match($0, /"ns_per_op":[0-9]+/)) {
      ns = substr($0, RSTART + 12, RLENGTH - 12)
      sum[$4] += ns; cnt[$4]++
    }
  }
  END {
    for (n in sum) {
      m = sum[n] / cnt[n]
      printf "  %-58s %12.0f ns/op\n", n, m
      if (n ~ /ServePipeline\/workers=1(-[0-9]+)?$/) seq = m
      if (n ~ /ServePipeline\/workers=8(-[0-9]+)?$/) pipe = m
    }
    if (seq > 0 && pipe > 0)
      printf "  pipelined apply throughput: %.2fx sequential (ServePipeline workers=8 vs workers=1)\n", seq / pipe
  }' "$PIPE_JSON" | sort

bench_to_json 'BenchmarkDistributedStaged$|BenchmarkTheorem51$|BenchmarkApplyParallel$' \
  "${STAGED_OUT:-BENCH_staged.json}"
bench_to_json 'BenchmarkNetDistLoopback/arm=|BenchmarkDistributedStaged$' \
  "${NET_OUT:-BENCH_net.json}"
bench_to_json 'BenchmarkTraceOverhead$|BenchmarkSpanOverhead$|BenchmarkApplyResidual/residual$' \
  "${OBS_OUT:-BENCH_obs.json}"
bench_to_json 'BenchmarkEvalIndexed$' \
  "${EVAL_OUT:-BENCH_eval.json}"
bench_to_json 'BenchmarkApplyCompiled$' \
  "${PLAN_OUT:-BENCH_plan.json}"
bench_to_json 'BenchmarkApplyResidual$' \
  "${RESID_OUT:-BENCH_residual.json}"

# Horizontal scale-out: BenchmarkNetDistLoopback's shard arms (1/4/16
# sites × whole/sharded/scatter placement × 0/500us link latency) —
# the evidence for the ≥2.5x 4-site-sharded vs 1-site-whole throughput
# claim and the routed-vs-scatter wire reduction.
SHARD_JSON="${SHARD_OUT:-BENCH_shard.json}"
bench_to_json 'BenchmarkNetDistLoopback/shard/' "$SHARD_JSON"

# Scaling-efficiency summary: per-arm mean ns/op, then the headline
# ratios (each op is one 64-update stream, so ns/op ratios are
# throughput ratios; efficiency = speedup / site count).
awk -F'"' '
  $2 == "name" && match($0, /"ns_per_op":[0-9]+/) {
    ns = substr($0, RSTART + 12, RLENGTH - 12)
    sum[$4] += ns; cnt[$4]++
  }
  END {
    for (n in sum) {
      m = sum[n] / cnt[n]
      printf "  %-66s %12.0f ns/op\n", n, m
      if (n ~ /sites=1\/place=whole\/lat=0us/)    whole1 = m
      if (n ~ /sites=4\/place=sharded\/lat=0us/)  shard4 = m
      if (n ~ /sites=16\/place=sharded\/lat=0us/) shard16 = m
      if (n ~ /sites=4\/place=scatter\/lat=0us/)  scat4 = m
    }
    if (whole1 > 0 && shard4 > 0)
      printf "  scale-out: 4-site sharded %.2fx 1-site whole (efficiency %.0f%%)\n", \
        whole1 / shard4, 100 * whole1 / shard4 / 4
    if (whole1 > 0 && shard16 > 0)
      printf "  scale-out: 16-site sharded %.2fx 1-site whole (efficiency %.0f%%)\n", \
        whole1 / shard16, 100 * whole1 / shard16 / 16
    if (scat4 > 0 && shard4 > 0)
      printf "  routing: shard-routed probes %.2fx scatter-gather at 4 sites\n", scat4 / shard4
  }' "$SHARD_JSON" | sort

# Sustained-load decision-server run: ccload self-serves a loopback
# ccserved over the D1 workload and reports per-arm p50/p99/throughput.
SERVE_JSON="${SERVE_OUT:-BENCH_serve.json}"
go run ./cmd/ccload \
  -streams "${SERVE_STREAMS:-10000}" -duration "${SERVE_DURATION:-5s}" \
  -ramp "${SERVE_RAMP:-1s}" -conns "${SERVE_CONNS:-512}" \
  -apply-workers "${SERVE_APPLY_WORKERS:-1}" -conflict "${SERVE_CONFLICT:-0}" \
  -commit "$COMMIT" -date "$DATE" -out "$SERVE_JSON"
echo "wrote $SERVE_JSON ($(grep -c '"name"' "$SERVE_JSON") records)"
