package dist

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
)

// TestReportZeroUpdates: with nothing applied, Report must not divide
// by zero and must render zeroed counters.
func TestReportZeroUpdates(t *testing.T) {
	sys := New(store.New(), nil, DefaultCost)
	out := sys.Report()
	if !strings.Contains(out, "updates: 0  rejected: 0  decided-locally: 0 (0.0%)") {
		t.Errorf("zero-update report:\n%s", out)
	}
	if !strings.Contains(out, "remote: 0 trips, 0 tuples, cost 0") {
		t.Errorf("zero-update report:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	for _, tc := range []struct {
		a, b int
		want float64
	}{
		{0, 0, 0}, // division guard
		{5, 0, 0},
		{1, 2, 50},
		{3, 3, 100},
		{0, 7, 0},
	} {
		if got := pct(tc.a, tc.b); got != tc.want {
			t.Errorf("pct(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// reportSystem runs a tiny workload with one rejection and one
// remote-phase decision so the report has something to count.
func reportSystem(t *testing.T) *System {
	t.Helper()
	db := store.New()
	if _, err := db.Insert("l", relation.Ints(20, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", relation.Ints(35)); err != nil {
		t.Fatal(err)
	}
	// Pin the staged pipeline's phase mix (local-data then global);
	// residual dispatch would collapse both updates into one phase.
	sys := NewWithOptions(db, core.Options{
		LocalRelations:  []string{"l"},
		DisableResidual: true,
	}, DefaultCost)
	if err := sys.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	db.ResetReads()
	// Decided locally (covered by l(20,30)); accepted.
	if _, err := sys.Apply(store.Ins("l", relation.Ints(22, 28))); err != nil {
		t.Fatal(err)
	}
	// Needs the remote site and is rejected: r(35) ∈ [10,40].
	rep, err := sys.Apply(store.Ins("l", relation.Ints(10, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating insert accepted; fixture broken")
	}
	return sys
}

func TestReportAccounting(t *testing.T) {
	sys := reportSystem(t)
	st := sys.Stats()
	if st.Updates != 2 || st.Rejected != 1 || st.DecidedLocally != 1 {
		t.Fatalf("stats = %+v", st)
	}
	out := sys.Report()
	if !strings.Contains(out, "updates: 2  rejected: 1  decided-locally: 1 (50.0%)") {
		t.Errorf("report header:\n%s", out)
	}
	if !strings.Contains(out, "remote: 1 trips") {
		t.Errorf("report remote line:\n%s", out)
	}
}

// TestReportPhaseOrdering: phase lines appear in pipeline order, not
// map-iteration order, so repeated renders are identical.
func TestReportPhaseOrdering(t *testing.T) {
	sys := reportSystem(t)
	out := sys.Report()
	local := strings.Index(out, core.PhaseLocalData.String())
	global := strings.Index(out, core.PhaseGlobal.String())
	if local < 0 || global < 0 {
		t.Fatalf("expected both phases in report:\n%s", out)
	}
	if local > global {
		t.Errorf("phases out of pipeline order:\n%s", out)
	}
	for i := 0; i < 5; i++ {
		if again := sys.Report(); again != out {
			t.Fatalf("report rendering unstable:\n%s\nvs\n%s", out, again)
		}
	}
}

// TestStatsIsACopy: mutating the ByPhase map a caller got back must not
// corrupt the live counters (Stats used to leak the internal map).
func TestStatsIsACopy(t *testing.T) {
	sys := reportSystem(t)
	st := sys.Stats()
	for p := range st.ByPhase {
		st.ByPhase[p] = 999
	}
	st.ByPhase[core.PhaseUnaffected] = 777
	if fresh := sys.Stats(); fresh.ByPhase[core.PhaseUnaffected] == 777 {
		t.Error("Stats leaked its internal ByPhase map")
	}
	for p, n := range sys.Stats().ByPhase {
		if n == 999 {
			t.Errorf("phase %s counter corrupted via returned map", p)
		}
	}
}
