// Package dist simulates the paper's motivating scenario: a database
// split between a local site (where updates arrive) and remote sites
// whose data is expensive to reach. It wraps the core.Checker pipeline
// with a network cost model and per-update accounting, so experiments can
// measure exactly the quantity the paper optimizes — remote data touched
// per update — under different checking strategies.
package dist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/store"
)

// CostModel prices remote access in abstract cost units.
type CostModel struct {
	// RemoteLatency is charged once per update that needs any remote
	// round trip (the global phase).
	RemoteLatency float64
	// RemotePerTuple is charged per remote tuple transferred.
	RemotePerTuple float64
}

// DefaultCost is a conventional wide-area setting: a round trip costs as
// much as shipping 100 tuples.
var DefaultCost = CostModel{RemoteLatency: 100, RemotePerTuple: 1}

// Stats aggregates the simulation.
type Stats struct {
	Updates        int
	Rejected       int
	ByPhase        map[core.Phase]int // decisions per deciding phase
	RemoteTuples   int64              // remote tuples read in total
	RemoteTrips    int                // updates that touched remote data
	Cost           float64            // per CostModel
	LocalTuples    int64              // local tuples read in total
	DecidedLocally int                // updates decided without remote access
}

// System is a simulated two-tier deployment.
type System struct {
	Checker *core.Checker
	db      *store.Store
	local   map[string]bool
	cost    CostModel
	stats   Stats
}

// New builds a system over db with the given local relations; all other
// relations are remote.
func New(db *store.Store, localRelations []string, cost CostModel) *System {
	return &System{
		Checker: core.New(db, core.Options{LocalRelations: localRelations}),
		db:      db,
		local:   toSet(localRelations),
		cost:    cost,
		stats:   Stats{ByPhase: map[core.Phase]int{}},
	}
}

// NewWithOptions builds a system with explicit checker options;
// opts.LocalRelations defines the site split, opts.DisableUpdateOnly /
// DisableLocalData select ablation strategies, and opts.Workers sizes the
// checker's dispatch pool (the staged pipeline runs phases 1–3 and the
// global evaluations across constraints on it).
func NewWithOptions(db *store.Store, opts core.Options, cost CostModel) *System {
	return &System{
		Checker: core.New(db, opts),
		db:      db,
		local:   toSet(opts.LocalRelations),
		cost:    cost,
		stats:   Stats{ByPhase: map[core.Phase]int{}},
	}
}

func toSet(names []string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Stats returns the accumulated statistics. The ByPhase map is a copy:
// mutating it does not touch the system's live counters.
func (s *System) Stats() Stats {
	st := s.stats
	st.ByPhase = make(map[core.Phase]int, len(s.stats.ByPhase))
	for p, n := range s.stats.ByPhase {
		st.ByPhase[p] = n
	}
	return st
}

// Apply pushes one update through the pipeline, accounting local and
// remote reads.
func (s *System) Apply(u store.Update) (core.Report, error) {
	before := s.snapshotReads()
	rep, err := s.Checker.Apply(u)
	if err != nil {
		return rep, err
	}
	s.stats.Updates++
	if !rep.Applied {
		s.stats.Rejected++
	}
	var remote, local int64
	for name, delta := range s.readDeltas(before) {
		if s.local[name] {
			local += delta
		} else {
			remote += delta
		}
	}
	s.stats.LocalTuples += local
	s.stats.RemoteTuples += remote
	// A global-phase decision is a remote round trip even when the
	// remote relations turn out to be empty: the site must still be
	// asked.
	usedGlobal := false
	for _, d := range rep.Decisions {
		s.stats.ByPhase[d.Phase]++
		if d.Phase == core.PhaseGlobal {
			usedGlobal = true
		}
	}
	if remote > 0 || usedGlobal {
		s.stats.RemoteTrips++
		s.stats.Cost += s.cost.RemoteLatency + float64(remote)*s.cost.RemotePerTuple
	} else {
		s.stats.DecidedLocally++
	}
	return rep, nil
}

func (s *System) snapshotReads() map[string]int64 {
	out := map[string]int64{}
	for _, n := range s.db.Names() {
		out[n] = s.db.Reads(n)
	}
	return out
}

func (s *System) readDeltas(before map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for _, n := range s.db.Names() {
		if d := s.db.Reads(n) - before[n]; d > 0 {
			out[n] = d
		}
	}
	return out
}

// Report renders the statistics as a small table.
func (s *System) Report() string {
	st := s.stats
	var sb strings.Builder
	fmt.Fprintf(&sb, "updates: %d  rejected: %d  decided-locally: %d (%.1f%%)\n",
		st.Updates, st.Rejected, st.DecidedLocally, pct(st.DecidedLocally, st.Updates))
	fmt.Fprintf(&sb, "remote: %d trips, %d tuples, cost %.0f\n", st.RemoteTrips, st.RemoteTuples, st.Cost)
	fmt.Fprintf(&sb, "local tuples read: %d\n", st.LocalTuples)
	var phases []core.Phase
	for p := range st.ByPhase {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		fmt.Fprintf(&sb, "  decided by %-12s %d\n", p.String()+":", st.ByPhase[p])
	}
	return sb.String()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
