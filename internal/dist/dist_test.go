package dist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

func TestLocalCertificationAvoidsRemote(t *testing.T) {
	db := store.New()
	for _, tu := range []relation.Tuple{relation.Ints(0, 50), relation.Ints(40, 100)} {
		if _, err := db.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(200); i < 210; i++ {
		if _, err := db.Insert("r", relation.Ints(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The assertions pin the staged pipeline's locality model: residual
	// dispatch would decide covered insertions too, but by probing r.
	sys := NewWithOptions(db, core.Options{
		LocalRelations:  []string{"l"},
		DisableResidual: true,
	}, DefaultCost)
	if err := sys.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	db.ResetReads()
	// Covered insertions: all certified locally, zero remote cost.
	for _, u := range []store.Update{
		store.Ins("l", relation.Ints(5, 20)),
		store.Ins("l", relation.Ints(10, 60)),
		store.Ins("l", relation.Ints(45, 95)),
	} {
		rep, err := sys.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Applied {
			t.Fatalf("covered insertion %v rejected", u)
		}
	}
	st := sys.Stats()
	if st.RemoteTuples != 0 || st.RemoteTrips != 0 || st.Cost != 0 {
		t.Errorf("remote access on locally-certifiable stream: %+v", st)
	}
	if st.DecidedLocally != 3 {
		t.Errorf("DecidedLocally = %d, want 3", st.DecidedLocally)
	}
	// An uncovered insertion forces a remote trip.
	if _, err := sys.Apply(store.Ins("l", relation.Ints(150, 160))); err != nil {
		t.Fatal(err)
	}
	st = sys.Stats()
	if st.RemoteTrips != 1 || st.RemoteTuples == 0 {
		t.Errorf("uncovered insertion did not reach remote: %+v", st)
	}
	if st.Cost < DefaultCost.RemoteLatency {
		t.Errorf("cost %v below one latency charge", st.Cost)
	}
}

func TestAblationLocalPhase(t *testing.T) {
	// With the local-data phase disabled, the same covered stream must
	// pay remote costs — the measurable value of Sections 5–6.
	mk := func(disableLocal bool) Stats {
		db := store.New()
		for _, tu := range workload.Intervals(rand.New(rand.NewSource(1)), 40, 20, 100) {
			if _, err := db.Insert("l", tu); err != nil {
				t.Fatal(err)
			}
		}
		// Remote points far outside the spread, so no update violates.
		for i := int64(0); i < 20; i++ {
			if _, err := db.Insert("r", relation.Ints(1000+i)); err != nil {
				t.Fatal(err)
			}
		}
		sys := NewWithOptions(db, core.Options{
			LocalRelations:   []string{"l"},
			DisableLocalData: disableLocal,
			DisableResidual:  true,
		}, DefaultCost)
		if err := sys.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			t.Fatal(err)
		}
		db.ResetReads()
		rng := rand.New(rand.NewSource(2))
		for _, u := range workload.IntervalInserts(rng, 30, 10, 100, "l") {
			if _, err := sys.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
		return sys.Stats()
	}
	withLocal := mk(false)
	withoutLocal := mk(true)
	if withLocal.DecidedLocally <= withoutLocal.DecidedLocally {
		t.Errorf("local phase gained nothing: with=%d without=%d",
			withLocal.DecidedLocally, withoutLocal.DecidedLocally)
	}
	if withLocal.Cost >= withoutLocal.Cost {
		t.Errorf("local phase did not reduce cost: with=%.0f without=%.0f",
			withLocal.Cost, withoutLocal.Cost)
	}
}

func TestEmployeeWorkloadEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := store.New()
	if err := workload.EmployeeDB(rng, db, 4, 30); err != nil {
		t.Fatal(err)
	}
	sys := New(db, []string{"emp", "dept", "salRange"}, DefaultCost)
	for name, src := range workload.StandardEmployeeConstraints() {
		if err := sys.Checker.AddConstraintSource(name, src); err != nil {
			t.Fatal(err)
		}
	}
	db.ResetReads()
	for _, u := range workload.EmployeeUpdates(rng, 60, 4, 0.2) {
		if _, err := sys.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Updates != 60 {
		t.Errorf("updates = %d", st.Updates)
	}
	if st.Rejected == 0 {
		t.Error("violating stream produced no rejections")
	}
	// The store must satisfy every constraint afterwards.
	for name, src := range workload.StandardEmployeeConstraints() {
		bad, err := eval.PanicHolds(parser.MustParseProgram(src), db)
		if err != nil {
			t.Fatal(err)
		}
		if bad {
			t.Errorf("constraint %s violated after simulation", name)
		}
	}
	if sys.Report() == "" {
		t.Error("empty report")
	}
}
