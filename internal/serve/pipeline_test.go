package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
)

// pipelineFixture builds the D1 forbidden-interval fixture with a few
// seeded intervals and points so the randomized stream produces a mix
// of admitted and violating updates.
func pipelineFixture(t *testing.T) *core.Checker {
	t.Helper()
	db := store.New()
	for _, iv := range [][2]int64{{0, 10}, {20, 30}, {40, 50}} {
		if _, err := db.Insert("l", relation.Ints(iv[0], iv[1])); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []int64{15, 35, 60} {
		if _, err := db.Insert("r", relation.Ints(p)); err != nil {
			t.Fatal(err)
		}
	}
	chk := core.New(db, core.Options{})
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return chk
}

// randomStream generates updates over a deliberately small coordinate
// band so conflicting patterns (same tuples, interacting relations) are
// common.
func randomStream(seed int64, n int) []store.Update {
	rng := rand.New(rand.NewSource(seed))
	us := make([]store.Update, n)
	for i := range us {
		if rng.Intn(2) == 0 {
			lo := int64(rng.Intn(80))
			u := store.Ins("l", relation.Ints(lo, lo+int64(rng.Intn(10))))
			if rng.Intn(3) == 0 {
				u = store.Del("l", u.Tuple)
			}
			us[i] = u
		} else {
			u := store.Ins("r", relation.Ints(int64(rng.Intn(100))))
			if rng.Intn(3) == 0 {
				u = store.Del("r", u.Tuple)
			}
			us[i] = u
		}
	}
	return us
}

// dump renders the store deterministically (sorted relations, sorted
// tuples) for exact cross-arm comparison.
func dump(db *store.Store) string {
	var b strings.Builder
	for _, name := range db.Names() {
		var tuples []string
		for _, tp := range db.Tuples(name) {
			tuples = append(tuples, tp.String())
		}
		sort.Strings(tuples)
		fmt.Fprintf(&b, "%s: %s\n", name, strings.Join(tuples, " "))
	}
	return b.String()
}

// verdicts flattens a batch outcome's per-update verdicts.
func verdicts(out BatchOutcome) []bool {
	vs := make([]bool, len(out.Reports))
	for i, rep := range out.Reports {
		vs[i] = rep.Applied
	}
	return vs
}

// TestPipelineAgreement is the randomized agreement test: the same
// stream, submitted as one non-atomic batch (so the admission order is
// fixed), must produce identical per-update verdicts and an identical
// final store under the sequential arm and the scheduler at 4 and 8
// workers.
func TestPipelineAgreement(t *testing.T) {
	const n = 300
	for _, seed := range []int64{1, 7, 42} {
		stream := randomStream(seed, n)

		var wantVerdicts []bool
		var wantDump string
		for _, workers := range []int{1, 4, 8} {
			chk := pipelineFixture(t)
			s := New(chk, Config{ApplyWorkers: workers, QueueDepth: 16, MaxBatch: n})
			if workers > 1 && s.ApplyWorkers() != workers {
				t.Fatalf("seed %d: pipelined arm fell back to sequential", seed)
			}
			out, err := s.Batch("agree", stream, false)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			s.Close()
			vs, d := verdicts(out), dump(chk.DB())
			if workers == 1 {
				wantVerdicts, wantDump = vs, d
				continue
			}
			for i := range vs {
				if vs[i] != wantVerdicts[i] {
					t.Fatalf("seed %d workers %d: verdict diverged at update %d (%v): got applied=%v, sequential=%v",
						seed, workers, i, stream[i], vs[i], wantVerdicts[i])
				}
			}
			if d != wantDump {
				t.Fatalf("seed %d workers %d: final store diverged\npipelined:\n%s\nsequential:\n%s", seed, workers, d, wantDump)
			}
		}
	}
}

// TestPipelineConflictOrder is the directed admission-order test: an
// insert and a delete of the same tuple conflict (same write
// fingerprint), so the scheduler must apply them in admission order —
// the tuple must be absent afterwards, every time.
func TestPipelineConflictOrder(t *testing.T) {
	for round := 0; round < 50; round++ {
		chk := pipelineFixture(t)
		s := New(chk, Config{ApplyWorkers: 8, QueueDepth: 64})
		tup := relation.Ints(70, 75)

		// A non-atomic batch decomposes into two concurrent scheduler
		// tasks, admitted insert-first. They write the same fingerprint,
		// so the scheduler must serialize them in that order: the tuple
		// ends up absent. A scheduler that reordered them would run the
		// delete as a no-op and leave the insert behind.
		out, err := s.Batch("order", []store.Update{store.Ins("l", tup), store.Del("l", tup)}, false)
		if err != nil {
			t.Fatal(err)
		}
		if out.Applied != 2 {
			t.Fatalf("round %d: applied %d/2", round, out.Applied)
		}
		s.Close()
		if chk.DB().Contains("l", tup) {
			t.Fatalf("round %d: insert and delete ran out of admission order", round)
		}
	}
}

// TestPipelineConcurrentClients hammers the pipelined server from many
// goroutines (run with -race) and cross-checks the final store against
// a sequential replay of the per-client streams in some serialization —
// here each client's updates target distinct tuples, so the final store
// is independent of interleaving.
func TestPipelineConcurrentClients(t *testing.T) {
	chk := pipelineFixture(t)
	s := New(chk, Config{ApplyWorkers: 4, QueueDepth: 256})

	const clients, per = 8, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := int64(1000 + c*100)
			for i := 0; i < per; i++ {
				tup := relation.Ints(base+int64(i), base+int64(i))
				if _, err := s.Apply(fmt.Sprintf("c%d", c), store.Ins("l", tup)); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.SchedTasks < clients*per {
		t.Fatalf("sched tasks = %d, want >= %d", st.SchedTasks, clients*per)
	}
	s.Close()
	for c := 0; c < clients; c++ {
		base := int64(1000 + c*100)
		for i := 0; i < per; i++ {
			if !chk.DB().Contains("l", relation.Ints(base+int64(i), base+int64(i))) {
				t.Fatalf("client %d update %d missing from final store", c, i)
			}
		}
	}
}

// TestPipelineFallsBackWithoutFootprints: a plain Backend (no footprint
// support) must run on the sequential arm even when ApplyWorkers asks
// for more.
func TestPipelineFallsBackWithoutFootprints(t *testing.T) {
	chk := pipelineFixture(t)
	s := New(opaqueBackend{chk}, Config{ApplyWorkers: 8})
	defer s.Close()
	if got := s.ApplyWorkers(); got != 1 {
		t.Fatalf("effective workers = %d, want sequential fallback 1", got)
	}
	if _, err := s.Apply("fb", store.Ins("l", relation.Ints(200, 201))); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineIncrementalFallsBack: a checker configuration that
// forbids concurrent applies must also land on the sequential arm.
func TestPipelineIncrementalFallsBack(t *testing.T) {
	db := store.New()
	chk := core.New(db, core.Options{Incremental: true})
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	s := New(chk, Config{ApplyWorkers: 8})
	defer s.Close()
	if got := s.ApplyWorkers(); got != 1 {
		t.Fatalf("effective workers = %d, want 1 for incremental mode", got)
	}
}

// opaqueBackend hides the checker's footprint methods behind the plain
// Backend surface.
type opaqueBackend struct{ chk *core.Checker }

func (o opaqueBackend) Check(u store.Update) (core.Report, error) { return o.chk.Check(u) }
func (o opaqueBackend) Apply(u store.Update) (core.Report, error) { return o.chk.Apply(u) }
func (o opaqueBackend) Stats() core.Stats                         { return o.chk.Stats() }
func (o opaqueBackend) ApplyBatch(us []store.Update) (core.BatchReport, error) {
	return o.chk.ApplyBatch(us)
}
