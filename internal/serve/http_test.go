package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestHTTPCheckApplyEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	chk := newTestChecker(t, reg)
	s := New(chk, Config{Metrics: reg})
	defer s.Close()
	ts := httptest.NewServer(s.Handler("test-ccserved", nil, nil))
	defer ts.Close()

	// A safe check decides ok but applies nothing.
	resp, body := postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d: %s", resp.StatusCode, body)
	}
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.OK() || d.Applied {
		t.Fatalf("check decision = %+v, want ok/not-applied", d)
	}
	if len(d.Decisions) != 1 || d.Decisions[0].Constraint != "fi" {
		t.Fatalf("decisions = %+v", d.Decisions)
	}
	if chk.DB().Contains("r", relation.Ints(100)) {
		t.Fatal("/v1/check mutated the store")
	}

	// A violating check reports the constraint.
	_, body = postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[5]}}`, nil)
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Verdict != VerdictViolation || len(d.Violations) != 1 || d.Violations[0] != "fi" {
		t.Fatalf("violating check decision = %+v", d)
	}

	// Apply admits and keeps the update.
	_, body = postJSON(t, ts, "/v1/apply", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`, nil)
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.OK() || !d.Applied {
		t.Fatalf("apply decision = %+v, want ok/applied", d)
	}
	if !chk.DB().Contains("r", relation.Ints(100)) {
		t.Fatal("/v1/apply did not apply")
	}

	// Malformed updates are 400s, not queue traffic.
	resp, _ = postJSON(t, ts, "/v1/apply", `{"update":{"op":"upsert","relation":"r","tuple":[1]}}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/apply", `{"update":`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBatchAndStats(t *testing.T) {
	reg := obs.NewRegistry()
	chk := newTestChecker(t, reg)
	s := New(chk, Config{Metrics: reg})
	defer s.Close()
	ts := httptest.NewServer(s.Handler("test-ccserved-batch", nil, nil))
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/batch",
		`{"atomic":true,"updates":[
			{"op":"insert","relation":"r","tuple":[100]},
			{"op":"insert","relation":"r","tuple":[5]}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, body)
	}
	var br BatchResult
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Applied != 0 || br.FailedAt != 1 || !br.Atomic {
		t.Fatalf("batch result = %+v, want atomic rollback at 1", br)
	}
	if chk.DB().Contains("r", relation.Ints(100)) {
		t.Fatal("atomic batch rollback left +r(100)")
	}

	resp, body = postJSON(t, ts, "/v1/batch", `{"updates":[{"op":"bad"}]}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch member status = %d: %s", resp.StatusCode, body)
	}

	r, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats StatsPayload
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Updates == 0 || stats.Server.Requests[EndpointBatch] != 1 {
		t.Fatalf("stats payload = %+v", stats)
	}

	// The obs endpoints ride the same listener.
	mr, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(expo), "cc_serve_requests_total") {
		t.Fatalf("/metrics missing cc_serve_requests_total:\n%s", expo)
	}
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(hb), `"status":"ok"`) {
		t.Fatalf("/healthz = %s", hb)
	}
}

func TestHTTPRateLimit429(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{RatePerClient: 0.001, Burst: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler("", nil, nil))
	defer ts.Close()

	hdr := map[string]string{ClientHeader: "hot-client"}
	resp, _ := postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429: %s", resp.StatusCode, body)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want >= 1 second", resp.Header.Get("Retry-After"))
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("429 body = %s", body)
	}
	// Another client is unaffected.
	resp, _ = postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`,
		map[string]string{ClientHeader: "cold-client"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold client status = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPDraining503(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{})
	ts := httptest.NewServer(s.Handler("", nil, nil))
	defer ts.Close()

	// Before the drain the default readiness probe says yes.
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil || ready.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain = %v %v, want 200", ready.StatusCode, err)
	}
	ready.Body.Close()

	s.Close()
	resp, _ := postJSON(t, ts, "/v1/apply", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	// /readyz flips with the drain so load balancers stop routing here,
	// while /healthz keeps answering 200 (the process is alive).
	ready, err = http.Get(ts.URL + "/readyz")
	if err != nil || ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %v %v, want 503", ready.StatusCode, err)
	}
	ready.Body.Close()
	alive, err := http.Get(ts.URL + "/healthz")
	if err != nil || alive.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %v %v, want 200", alive.StatusCode, err)
	}
	alive.Body.Close()
}

func TestWireValueCodec(t *testing.T) {
	cases := []struct {
		in   any
		want ast.Value
	}{
		{json.Number("42"), ast.Int(42)},
		{json.Number("2.5"), ast.Rat(5, 2)},
		{json.Number("-7"), ast.Int(-7)},
		{float64(3), ast.Int(3)},
		{"#3/2", ast.Rat(3, 2)},
		{"$shoe", ast.Str("shoe")},
		{"shoe", ast.Str("shoe")},
	}
	for _, c := range cases {
		got, err := DecodeWireValue(c.in)
		if err != nil {
			t.Fatalf("DecodeWireValue(%v): %v", c.in, err)
		}
		if !got.Equal(c.want) {
			t.Fatalf("DecodeWireValue(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := DecodeWireValue(true); err == nil {
		t.Fatal("DecodeWireValue(true) should fail")
	}
	if _, err := DecodeWireValue(json.Number("x")); err == nil {
		t.Fatal("DecodeWireValue(bad number) should fail")
	}

	// FromUpdate/ToUpdate round-trips exactly, non-integer rationals and
	// awkward symbols included.
	u := store.Ins("emp", relation.Tuple{ast.Str("jones"), ast.Rat(7, 3), ast.Int(50), ast.Str("#odd")})
	w := FromUpdate(u)
	// Push through JSON like a real request would.
	b, err := json.Marshal(CheckRequest{Update: w})
	if err != nil {
		t.Fatal(err)
	}
	var req CheckRequest
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		t.Fatal(err)
	}
	got, err := req.Update.ToUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != u.String() || !got.Tuple.Equal(u.Tuple) {
		t.Fatalf("round trip %v -> %v", u, got)
	}
	if _, err := (WireUpdate{Op: "insert"}).ToUpdate(); err == nil {
		t.Fatal("missing relation should fail")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, c := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1}, {10 * time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Fatalf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
