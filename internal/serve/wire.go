// Wire types of the decision API: the JSON shapes POST /v1/check,
// /v1/apply, /v1/batch and GET /v1/stats exchange, and the tuple value
// codec. The SDK's HTTP arm reuses these types verbatim, so both arms
// of the service speak exactly one dialect.
package serve

import (
	"encoding/json"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/netdist"
	"repro/internal/relation"
	"repro/internal/store"
)

// WireUpdate is one update on the wire. Tuple elements are JSON numbers
// (decoded exactly — parse requests with json.Decoder.UseNumber) or
// strings: "#<rational>" and "$<symbol>" use the store's canonical key
// syntax (the netdist wire encoding, exact for non-integer rationals),
// any other string is taken as a symbol directly, so handwritten curl
// bodies stay natural.
type WireUpdate struct {
	Op       string `json:"op"` // "insert" | "delete" (aliases "+" | "-")
	Relation string `json:"relation"`
	Tuple    []any  `json:"tuple"`
}

// ToUpdate decodes the wire form.
func (w WireUpdate) ToUpdate() (store.Update, error) {
	var insert bool
	switch w.Op {
	case "insert", "+":
		insert = true
	case "delete", "-":
	default:
		return store.Update{}, fmt.Errorf(`serve: op must be "insert" or "delete", got %q`, w.Op)
	}
	if w.Relation == "" {
		return store.Update{}, fmt.Errorf("serve: update has no relation")
	}
	t := make(relation.Tuple, len(w.Tuple))
	for i, el := range w.Tuple {
		v, err := DecodeWireValue(el)
		if err != nil {
			return store.Update{}, fmt.Errorf("serve: tuple[%d]: %w", i, err)
		}
		t[i] = v
	}
	return store.Update{Insert: insert, Relation: w.Relation, Tuple: t}, nil
}

// FromUpdate encodes an update for the wire: integer numbers as JSON
// numbers, non-integer rationals as "#p/q", symbols as "$sym" (the
// unambiguous canonical form — a symbol may itself start with "#").
func FromUpdate(u store.Update) WireUpdate {
	op := "delete"
	if u.Insert {
		op = "insert"
	}
	tuple := make([]any, len(u.Tuple))
	for i, v := range u.Tuple {
		tuple[i] = encodeWireValue(v)
	}
	return WireUpdate{Op: op, Relation: u.Relation, Tuple: tuple}
}

func encodeWireValue(v ast.Value) any {
	if v.Kind == ast.NumberValue {
		if v.Num.IsInt() {
			return json.Number(v.Num.Num().String())
		}
		return netdist.EncodeValue(v)
	}
	return "$" + v.Str
}

// DecodeWireValue maps one decoded JSON tuple element onto a constant.
// Values are funneled through the intern pool, like netdist's decoder,
// so service traffic arrives pre-interned for fingerprinting.
func DecodeWireValue(el any) (ast.Value, error) {
	switch v := el.(type) {
	case json.Number:
		r := new(big.Rat)
		if _, ok := r.SetString(v.String()); !ok {
			return ast.Value{}, fmt.Errorf("bad number %q", v.String())
		}
		return relation.Canonical(ast.Value{Kind: ast.NumberValue, Num: r}), nil
	case float64:
		// A decoder without UseNumber hands numbers over as float64; the
		// exact path is json.Number, but accept the lossy one for
		// programmatic callers building []any by hand.
		return relation.Canonical(ast.Float(v)), nil
	case string:
		if strings.HasPrefix(v, "#") || strings.HasPrefix(v, "$") {
			return netdist.DecodeValue(v)
		}
		return relation.Canonical(ast.Str(v)), nil
	}
	return ast.Value{}, fmt.Errorf("bad tuple element %T (want number or string)", el)
}

// CheckRequest is the body of POST /v1/check and /v1/apply.
type CheckRequest struct {
	Update WireUpdate `json:"update"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Updates []WireUpdate `json:"updates"`
	// Atomic makes the batch all-or-nothing: the first rejected update
	// rolls back everything the batch already applied.
	Atomic bool `json:"atomic"`
}

// PhaseDecision is one constraint's dispatch in a Decision.
type PhaseDecision struct {
	Constraint string `json:"constraint"`
	Phase      string `json:"phase"`
	Verdict    string `json:"verdict"`
}

// Decision is the wire verdict for one update.
type Decision struct {
	// Verdict is "ok" when every constraint holds, "violation" otherwise.
	Verdict string `json:"verdict"`
	// Applied reports whether the update is now in the store: always
	// false for /v1/check (a decided-but-not-applied probe answers
	// Verdict "ok"), and false for rejected or rolled-back updates.
	Applied    bool            `json:"applied"`
	Violations []string        `json:"violations,omitempty"`
	Decisions  []PhaseDecision `json:"decisions,omitempty"`
}

// OK reports whether the update passed every constraint.
func (d Decision) OK() bool { return d.Verdict == VerdictOK }

// Decision verdict values.
const (
	VerdictOK        = "ok"
	VerdictViolation = "violation"
)

// DecisionFrom renders a checker report as a wire decision. mutated
// distinguishes /v1/apply (true: an admitted update stays in the store)
// from /v1/check and rolled-back batch members (false).
func DecisionFrom(rep core.Report, mutated bool) Decision {
	d := Decision{Verdict: VerdictOK, Applied: rep.Applied && mutated}
	if !rep.Applied {
		d.Verdict = VerdictViolation
		d.Violations = rep.Violations()
	}
	for _, dec := range rep.Decisions {
		d.Decisions = append(d.Decisions, PhaseDecision{
			Constraint: dec.Constraint,
			Phase:      dec.Phase.String(),
			Verdict:    dec.Verdict.String(),
		})
	}
	return d
}

// BatchResult is the body of a /v1/batch response.
type BatchResult struct {
	Atomic bool `json:"atomic"`
	// Applied counts the updates left applied in the store.
	Applied int `json:"applied"`
	// FailedAt is the index of the update that rolled an atomic batch
	// back; -1 otherwise.
	FailedAt int        `json:"failed_at"`
	Results  []Decision `json:"results"`
}

// BatchResultFrom renders a worker batch outcome for the wire.
func BatchResultFrom(out BatchOutcome) BatchResult {
	res := BatchResult{Atomic: out.Atomic, Applied: out.Applied, FailedAt: out.FailedAt}
	rolledBack := out.Atomic && out.FailedAt >= 0
	for _, rep := range out.Reports {
		res.Results = append(res.Results, DecisionFrom(rep, !rolledBack))
	}
	return res
}

// StatsPayload is the body of GET /v1/stats: the wrapped checker's
// pipeline statistics plus the server-level accounting.
type StatsPayload struct {
	Updates   int            `json:"updates"`
	Rejected  int            `json:"rejected"`
	Decisions int            `json:"decisions"`
	ByPhase   map[string]int `json:"by_phase"`
	Server    Stats          `json:"server"`
}

// StatsPayloadFrom merges the two snapshots.
func StatsPayloadFrom(cs core.Stats, ss Stats) StatsPayload {
	p := StatsPayload{
		Updates:   cs.Updates,
		Rejected:  cs.Rejected,
		Decisions: cs.Decisions,
		ByPhase:   map[string]int{},
		Server:    ss,
	}
	for phase, n := range cs.ByPhase {
		p.ByPhase[phase.String()] = n
	}
	return p
}

// ErrorBody is the JSON error envelope non-2xx responses carry.
type ErrorBody struct {
	Error string `json:"error"`
}
