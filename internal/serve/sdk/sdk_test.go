package sdk

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/store"
)

// newChecker builds one instance of the shared fixture: l(0,10), l(50,60)
// and the forbidden-interval constraint over r.
func newChecker(t *testing.T) *core.Checker {
	t.Helper()
	db := store.New()
	for _, iv := range [][2]int64{{0, 10}, {50, 60}} {
		if _, err := db.Insert("l", relation.Ints(iv[0], iv[1])); err != nil {
			t.Fatal(err)
		}
	}
	chk := core.New(db, core.Options{LocalRelations: []string{"l"}})
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return chk
}

// TestArmAgreement is the acceptance test for the SDK: a randomized
// stream of check/apply/batch operations run against three arms — the
// HTTP SDK, the in-process SDK, and direct core.Checker calls — must
// produce identical verdicts at every step and identical stores at the
// end.
func TestArmAgreement(t *testing.T) {
	direct := newChecker(t)

	inprocChk := newChecker(t)
	inproc, err := New(Config{Checker: inprocChk, ClientID: "agreement"})
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()

	httpChk := newChecker(t)
	httpSrv := serve.New(httpChk, serve.Config{})
	defer httpSrv.Close()
	ts := httptest.NewServer(httpSrv.Handler("", nil, nil))
	defer ts.Close()
	remote, err := New(Config{URL: ts.URL, HTTPClient: ts.Client(), ClientID: "agreement"})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// directDecision mirrors the server's dispatch for the reference arm.
	directDecision := func(u store.Update, apply bool) serve.Decision {
		t.Helper()
		var (
			rep  core.Report
			rerr error
		)
		if apply {
			rep, rerr = direct.Apply(u)
		} else {
			rep, rerr = direct.Check(u)
		}
		if rerr != nil {
			t.Fatalf("direct %v: %v", u, rerr)
		}
		return serve.DecisionFrom(rep, apply)
	}

	rng := rand.New(rand.NewSource(7))
	randomUpdate := func() store.Update {
		// Mix safe and violating coordinates; mix inserts and deletes so
		// deletes sometimes hit existing tuples.
		v := rng.Int63n(120)
		if rng.Intn(2) == 0 {
			return store.Ins("r", relation.Ints(v))
		}
		return store.Del("r", relation.Ints(v))
	}

	sameDecision := func(step int, a, b serve.Decision, arm string) {
		t.Helper()
		if a.Verdict != b.Verdict || a.Applied != b.Applied {
			t.Fatalf("step %d: %s decision {%s applied=%v} != direct {%s applied=%v}",
				step, arm, b.Verdict, b.Applied, a.Verdict, a.Applied)
		}
		if len(a.Violations) != len(b.Violations) {
			t.Fatalf("step %d: %s violations %v != direct %v", step, arm, b.Violations, a.Violations)
		}
	}

	const steps = 300
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // check
			u := randomUpdate()
			want := directDecision(u, false)
			for arm, s := range map[string]*SDK{"inproc": inproc, "http": remote} {
				got, err := s.Check(u)
				if err != nil {
					t.Fatalf("step %d: %s check %v: %v", i, arm, u, err)
				}
				sameDecision(i, want, got, arm)
			}
		case 3, 4, 5, 6: // apply
			u := randomUpdate()
			want := directDecision(u, true)
			for arm, s := range map[string]*SDK{"inproc": inproc, "http": remote} {
				got, err := s.Apply(u)
				if err != nil {
					t.Fatalf("step %d: %s apply %v: %v", i, arm, u, err)
				}
				sameDecision(i, want, got, arm)
			}
		default: // batch, alternating atomic
			n := 1 + rng.Intn(4)
			us := make([]store.Update, n)
			for j := range us {
				us[j] = randomUpdate()
			}
			atomic := rng.Intn(2) == 0
			var want serve.BatchResult
			if atomic {
				br, err := direct.ApplyBatch(us)
				if err != nil {
					t.Fatalf("step %d: direct batch: %v", i, err)
				}
				applied := 0
				if br.Applied {
					applied = len(us)
				}
				want = serve.BatchResultFrom(serve.BatchOutcome{
					Reports: br.Reports, Atomic: true, Applied: applied, FailedAt: br.FailedAt,
				})
			} else {
				out := serve.BatchOutcome{Atomic: false, FailedAt: -1}
				for _, u := range us {
					rep, err := direct.Apply(u)
					if err != nil {
						t.Fatalf("step %d: direct apply %v: %v", i, u, err)
					}
					out.Reports = append(out.Reports, rep)
					if rep.Applied {
						out.Applied++
					}
				}
				want = serve.BatchResultFrom(out)
			}
			for arm, s := range map[string]*SDK{"inproc": inproc, "http": remote} {
				got, err := s.Batch(us, atomic)
				if err != nil {
					t.Fatalf("step %d: %s batch: %v", i, arm, err)
				}
				if got.Applied != want.Applied || got.FailedAt != want.FailedAt || got.Atomic != want.Atomic {
					t.Fatalf("step %d: %s batch {applied=%d failedAt=%d atomic=%v} != direct {applied=%d failedAt=%d atomic=%v}",
						i, arm, got.Applied, got.FailedAt, got.Atomic, want.Applied, want.FailedAt, want.Atomic)
				}
				if len(got.Results) != len(want.Results) {
					t.Fatalf("step %d: %s batch results %d != direct %d", i, arm, len(got.Results), len(want.Results))
				}
				for j := range want.Results {
					sameDecision(i, want.Results[j], got.Results[j], arm)
				}
			}
		}
	}

	// After an identical stream, the three stores must be identical.
	ref := direct.DB().Dump()
	if got := inprocChk.DB().Dump(); got != ref {
		t.Fatalf("in-process store diverged:\n--- direct ---\n%s--- inproc ---\n%s", ref, got)
	}
	if got := httpChk.DB().Dump(); got != ref {
		t.Fatalf("HTTP store diverged:\n--- direct ---\n%s--- http ---\n%s", ref, got)
	}

	// And the checkers must have seen the same number of updates.
	ds, _ := direct.Stats(), error(nil)
	is, err := inproc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	hs, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if is.Updates != ds.Updates || hs.Updates != ds.Updates {
		t.Fatalf("update counts diverged: direct=%d inproc=%d http=%d", ds.Updates, is.Updates, hs.Updates)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no arm selected should fail")
	}
	chk := newChecker(t)
	srv := serve.New(chk, serve.Config{})
	defer srv.Close()
	if _, err := New(Config{URL: "http://x", Server: srv}); err == nil {
		t.Fatal("two arms selected should fail")
	}
	s, err := New(Config{Server: srv})
	if err != nil {
		t.Fatal(err)
	}
	// Close must not drain a shared server.
	s.Close()
	if srv.Draining() {
		t.Fatal("Close drained a server the SDK does not own")
	}
}

func TestIsBusy(t *testing.T) {
	chk := newChecker(t)
	s, err := New(Config{Checker: chk, ServeConfig: serve.Config{RatePerClient: 0.001, Burst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Check(store.Ins("r", relation.Ints(200))); err != nil {
		t.Fatal(err)
	}
	_, err = s.Check(store.Ins("r", relation.Ints(200)))
	if d, ok := IsBusy(err); !ok || d <= 0 {
		t.Fatalf("IsBusy(%v) = %v,%v; want busy with positive delay", err, d, ok)
	}

	// The HTTP arm's 429 is recognized too.
	srv := serve.New(newChecker(t), serve.Config{RatePerClient: 0.001, Burst: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler("", nil, nil))
	defer ts.Close()
	r, err := New(Config{URL: ts.URL, HTTPClient: ts.Client(), ClientID: "limited"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Check(store.Ins("r", relation.Ints(200))); err != nil {
		t.Fatal(err)
	}
	_, err = r.Check(store.Ins("r", relation.Ints(200)))
	if d, ok := IsBusy(err); !ok || d <= 0 {
		t.Fatalf("IsBusy(http %v) = %v,%v; want busy with positive delay", err, d, ok)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
		t.Fatalf("expected 429 HTTPError, got %v", err)
	}
}

// TestSharedServerHTTPAndInProcess drives one server over both arms at
// once: an in-process SDK sharing the server that also backs an HTTP
// listener. Both see each other's writes.
func TestSharedServerHTTPAndInProcess(t *testing.T) {
	chk := newChecker(t)
	srv := serve.New(chk, serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler("", nil, nil))
	defer ts.Close()

	local, err := New(Config{Server: srv, ClientID: "local"})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New(Config{URL: ts.URL, HTTPClient: ts.Client(), ClientID: "remote"})
	if err != nil {
		t.Fatal(err)
	}

	if d, err := local.Apply(store.Ins("r", relation.Ints(300))); err != nil || !d.Applied {
		t.Fatalf("local apply: %+v %v", d, err)
	}
	// The remote arm sees the tuple: deleting it reports a change.
	d, err := remote.Apply(store.Del("r", relation.Ints(300)))
	if err != nil || !d.Applied {
		t.Fatalf("remote delete: %+v %v", d, err)
	}
	if chk.DB().Contains("r", relation.Ints(300)) {
		t.Fatal("delete over HTTP did not land")
	}
	st, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Requests[serve.EndpointApply] != 2 {
		t.Fatalf("shared server apply count = %d, want 2", st.Server.Requests[serve.EndpointApply])
	}
}

// TestTraceCounts drives the HTTP arm with a Trace hook that alternates
// between sending a sampled context and sending nothing, and checks the
// SDK's traced/untraced split matches — the signal ccload reports as
// trace-propagation health.
func TestTraceCounts(t *testing.T) {
	srv := serve.New(newChecker(t), serve.Config{
		Spans:      obs.NewSpanTracer("sdk-test", obs.NewTraceStore(64), 0),
		SpanBridge: nil,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler("", nil, nil))
	defer ts.Close()

	var calls int
	s, err := New(Config{URL: ts.URL, HTTPClient: ts.Client(), Trace: func() obs.SpanContext {
		calls++
		if calls%2 == 0 {
			return obs.SpanContext{} // even calls: no traceparent sent
		}
		return obs.NewSpanContext(true)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 10; i++ {
		if _, err := s.Check(store.Ins("r", relation.Ints(100))); err != nil {
			t.Fatal(err)
		}
	}
	traced, untraced := s.TraceCounts()
	if traced != 5 || untraced != 5 {
		t.Fatalf("TraceCounts() = %d traced, %d untraced; want 5/5", traced, untraced)
	}

	// An SDK without a Trace hook leaves the counters idle.
	plain, err := New(Config{URL: ts.URL, HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Check(store.Ins("r", relation.Ints(100))); err != nil {
		t.Fatal(err)
	}
	if tr, un := plain.TraceCounts(); tr != 0 || un != 0 {
		t.Fatalf("plain TraceCounts() = %d/%d, want 0/0", tr, un)
	}
}
