// Package sdk is the embeddable client of the decision service: one
// interface — Check, Apply, Batch, Stats — backed by either arm.
//
//   - In-process: the SDK drives a serve.Server directly (its own,
//     built over a core.Checker you hand it, or one you share with an
//     HTTP listener). Decisions never cross a socket but still pass
//     through the same queue, admission control and decision log as
//     service traffic.
//   - HTTP: the SDK speaks the /v1/* wire protocol to a remote ccserved.
//
// Both arms return serve.Decision values produced by the same
// conversion from checker reports, so a caller can switch deployment
// shapes (library today, service tomorrow) without changing a line.
package sdk

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// Config selects and tunes an arm. Exactly one of URL, Server and
// Checker must be set.
type Config struct {
	// URL selects the HTTP arm: the base address of a ccserved instance,
	// e.g. "http://127.0.0.1:8080".
	URL string
	// HTTPClient overrides the default client of the HTTP arm (pool
	// sizing matters under high stream counts; see cmd/ccload).
	HTTPClient *http.Client

	// Server selects the in-process arm against an existing server. The
	// caller keeps ownership; Close will not drain it.
	Server *serve.Server
	// Checker selects the in-process arm with a private server the SDK
	// owns (built with ServeConfig and drained by Close).
	Checker     *core.Checker
	ServeConfig serve.Config

	// ClientID keys admission control: sent as X-Client-ID over HTTP,
	// passed to the server directly in-process. Empty means
	// serve.ClientAnonymous.
	ClientID string

	// Trace, when non-nil, is consulted per HTTP request for the outgoing
	// trace context: a non-zero context is sent as the traceparent header
	// (obs.NewSpanContext mints fresh ones; the zero context sends
	// nothing). The SDK counts responses whose X-Request-ID echoes the
	// sent trace id (traced) against the rest (untraced) — see
	// TraceCounts. The in-process arm ignores it.
	Trace func() obs.SpanContext
}

// SDK is a handle on one arm. Safe for concurrent use.
type SDK struct {
	client string

	url   string
	hc    *http.Client
	trace func() obs.SpanContext

	traced   atomic.Int64
	untraced atomic.Int64

	srv   *serve.Server
	owned bool
}

// TraceCounts reports, for the HTTP arm, how many responses carried an
// X-Request-ID matching the trace id the SDK sent (traced) versus the
// rest (no traceparent sent, or no matching echo) — the propagation
// health of a load run.
func (s *SDK) TraceCounts() (traced, untraced int64) {
	return s.traced.Load(), s.untraced.Load()
}

// New builds an SDK from the config.
func New(cfg Config) (*SDK, error) {
	set := 0
	for _, on := range []bool{cfg.URL != "", cfg.Server != nil, cfg.Checker != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("sdk: exactly one of URL, Server and Checker must be set")
	}
	s := &SDK{client: cfg.ClientID}
	if s.client == "" {
		s.client = serve.ClientAnonymous
	}
	switch {
	case cfg.URL != "":
		s.url = cfg.URL
		s.hc = cfg.HTTPClient
		s.trace = cfg.Trace
		if s.hc == nil {
			s.hc = &http.Client{Timeout: 30 * time.Second}
		}
	case cfg.Server != nil:
		s.srv = cfg.Server
	default:
		s.srv = serve.New(cfg.Checker, cfg.ServeConfig)
		s.owned = true
	}
	return s, nil
}

// Close drains the SDK-owned in-process server; it leaves shared
// servers and HTTP remotes alone.
func (s *SDK) Close() {
	if s.owned {
		s.srv.Close()
	}
}

// Check decides the update without applying it.
func (s *SDK) Check(u store.Update) (serve.Decision, error) {
	if s.srv != nil {
		rep, err := s.srv.Check(s.client, u)
		if err != nil {
			return serve.Decision{}, err
		}
		return serve.DecisionFrom(rep, false), nil
	}
	var d serve.Decision
	err := s.post("/v1/check", serve.CheckRequest{Update: serve.FromUpdate(u)}, &d)
	return d, err
}

// Apply decides the update and, when admitted, applies it.
func (s *SDK) Apply(u store.Update) (serve.Decision, error) {
	if s.srv != nil {
		rep, err := s.srv.Apply(s.client, u)
		if err != nil {
			return serve.Decision{}, err
		}
		return serve.DecisionFrom(rep, true), nil
	}
	var d serve.Decision
	err := s.post("/v1/apply", serve.CheckRequest{Update: serve.FromUpdate(u)}, &d)
	return d, err
}

// Batch runs the updates in one request; atomic makes it
// all-or-nothing.
func (s *SDK) Batch(us []store.Update, atomic bool) (serve.BatchResult, error) {
	if s.srv != nil {
		out, err := s.srv.Batch(s.client, us, atomic)
		if err != nil {
			return serve.BatchResult{}, err
		}
		return serve.BatchResultFrom(out), nil
	}
	req := serve.BatchRequest{Atomic: atomic, Updates: make([]serve.WireUpdate, len(us))}
	for i, u := range us {
		req.Updates[i] = serve.FromUpdate(u)
	}
	var res serve.BatchResult
	err := s.post("/v1/batch", req, &res)
	return res, err
}

// Stats fetches the merged checker + server statistics.
func (s *SDK) Stats() (serve.StatsPayload, error) {
	if s.srv != nil {
		cs, err := s.srv.CheckerStats()
		if err != nil {
			return serve.StatsPayload{}, err
		}
		return serve.StatsPayloadFrom(cs, s.srv.Stats()), nil
	}
	httpReq, err := http.NewRequest(http.MethodGet, s.url+"/v1/stats", nil)
	if err != nil {
		return serve.StatsPayload{}, err
	}
	var p serve.StatsPayload
	err = s.roundTrip(httpReq, &p)
	return p, err
}

// HTTPError is a non-2xx response from the HTTP arm. 429s carry the
// server's Retry-After advice.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("sdk: %s (HTTP %d)", e.Msg, e.Status)
}

// IsBusy reports whether the error is a load-shedding rejection — a
// serve.BusyError from the in-process arm or a 429 from the HTTP arm —
// and the advised retry delay.
func IsBusy(err error) (time.Duration, bool) {
	var busy *serve.BusyError
	if errors.As(err, &busy) {
		return busy.RetryAfter, true
	}
	var he *HTTPError
	if errors.As(err, &he) && he.Status == http.StatusTooManyRequests {
		return he.RetryAfter, true
	}
	return 0, false
}

func (s *SDK) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, s.url+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return s.roundTrip(req, out)
}

func (s *SDK) roundTrip(req *http.Request, out any) error {
	if s.client != "" {
		req.Header.Set(serve.ClientHeader, s.client)
	}
	var sentTrace string
	if s.trace != nil {
		if sc := s.trace(); !sc.IsZero() {
			req.Header.Set(serve.TraceparentHeader, sc.Traceparent())
			sentTrace = sc.TraceID.String()
		}
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if s.trace != nil {
		if sentTrace != "" && resp.Header.Get(serve.RequestIDHeader) == sentTrace {
			s.traced.Add(1)
		} else {
			s.untraced.Add(1)
		}
	}
	if resp.StatusCode != http.StatusOK {
		he := &HTTPError{Status: resp.StatusCode}
		var eb serve.ErrorBody
		if b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil {
			if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
				he.Msg = eb.Error
			} else {
				he.Msg = string(bytes.TrimSpace(b))
			}
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
		return he
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	return dec.Decode(out)
}
