package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// newTestChecker builds the D1 forbidden-interval fixture: l(0,10) and
// the constraint that no r point may land inside an l interval. +r(5)
// violates, +r(100) is safe.
func newTestChecker(t *testing.T, reg *obs.Registry) *core.Checker {
	t.Helper()
	db := store.New()
	if _, err := db.Insert("l", relation.Ints(0, 10)); err != nil {
		t.Fatal(err)
	}
	chk := core.New(db, core.Options{LocalRelations: []string{"l"}, Metrics: reg})
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return chk
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueFullReturnsBusy(t *testing.T) {
	gate := make(chan struct{})
	chk := newTestChecker(t, nil)
	s := New(chk, Config{QueueDepth: 1, workerGate: gate})
	defer func() {
		close(gate)
		s.Close()
	}()

	results := make(chan error, 2)
	go func() { _, err := s.Check("a", store.Ins("r", relation.Ints(100))); results <- err }()
	// The worker holds the first request at the gate; the queue is empty
	// again once it has been dequeued.
	waitFor(t, "worker to hold request 1", func() bool {
		return len(s.queue) == 0 && s.requests[opCheck].Load() == 1
	})
	go func() { _, err := s.Check("a", store.Ins("r", relation.Ints(101))); results <- err }()
	waitFor(t, "request 2 to queue", func() bool { return len(s.queue) == 1 })

	// Queue full: the third request must shed immediately.
	_, err := s.Check("a", store.Ins("r", relation.Ints(102)))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("expected BusyError, got %v", err)
	}
	if busy.Reason != ReasonQueueFull {
		t.Fatalf("reason = %q, want %q", busy.Reason, ReasonQueueFull)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", busy.RetryAfter)
	}
	if got := s.Stats().Rejections[ReasonQueueFull]; got != 1 {
		t.Fatalf("queue_full rejections = %d, want 1", got)
	}

	// Draining the gate answers both held requests.
	gate <- struct{}{}
	gate <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("held request %d failed: %v", i, err)
		}
	}
}

func TestRateLimitsAreIndependentPerClient(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{RatePerClient: 1, Burst: 1})
	defer s.Close()
	now := time.Now()
	s.clock = func() time.Time { return now } // freeze refill

	if _, err := s.Check("alice", store.Ins("r", relation.Ints(100))); err != nil {
		t.Fatalf("alice request 1: %v", err)
	}
	_, err := s.Check("alice", store.Ins("r", relation.Ints(100)))
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Reason != ReasonRateLimited {
		t.Fatalf("alice request 2: want rate_limited BusyError, got %v", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", busy.RetryAfter)
	}
	// bob's bucket is untouched by alice's exhaustion.
	if _, err := s.Check("bob", store.Ins("r", relation.Ints(100))); err != nil {
		t.Fatalf("bob request 1: %v", err)
	}
	// Advancing the clock refills alice.
	now = now.Add(2 * time.Second)
	if _, err := s.Check("alice", store.Ins("r", relation.Ints(100))); err != nil {
		t.Fatalf("alice after refill: %v", err)
	}
}

func TestGracefulDrainAnswersQueuedRejectsNew(t *testing.T) {
	gate := make(chan struct{})
	chk := newTestChecker(t, nil)
	s := New(chk, Config{QueueDepth: 8, workerGate: gate})

	const held = 3
	results := make(chan error, held)
	for i := 0; i < held; i++ {
		v := int64(100 + i)
		go func() { _, err := s.Apply("a", store.Ins("r", relation.Ints(v))); results <- err }()
	}
	waitFor(t, "requests to queue", func() bool { return s.requests[opApply].Load() == held })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	waitFor(t, "draining to begin", s.Draining)

	// New traffic is rejected while the drain is in progress.
	if _, err := s.Check("a", store.Ins("r", relation.Ints(200))); !errors.Is(err, ErrDraining) {
		t.Fatalf("expected ErrDraining, got %v", err)
	}
	if got := s.Stats().Rejections[ReasonDraining]; got != 1 {
		t.Fatalf("draining rejections = %d, want 1", got)
	}

	// Everything admitted before the drain still gets an answer.
	for i := 0; i < held; i++ {
		gate <- struct{}{}
	}
	for i := 0; i < held; i++ {
		if err := <-results; err != nil {
			t.Fatalf("drained request %d failed: %v", i, err)
		}
	}
	<-closed
	for i := int64(100); i < 100+held; i++ {
		if !chk.DB().Contains("r", relation.Ints(i)) {
			t.Fatalf("drained apply +r(%d) not in store", i)
		}
	}
}

// slowWriter blocks every Write until released, simulating a sink that
// cannot keep up.
type slowWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	release chan struct{}
}

func (w *slowWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestDecisionLogDropsUnderSlowSink(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &slowWriter{release: make(chan struct{})}
	chk := newTestChecker(t, nil)
	s := New(chk, Config{DecisionLog: sink, DecisionLogDepth: 1, Metrics: reg})

	const n = 10
	for i := int64(0); i < n; i++ {
		if _, err := s.Apply("a", store.Ins("r", relation.Ints(100+i))); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	// With the writer stuck on record 1 and a one-record buffer, most of
	// the stream must have been dropped rather than stalling the worker.
	drops := s.DecisionLogDrops()
	if drops < n-2 {
		t.Fatalf("decision-log drops = %d, want >= %d", drops, n-2)
	}
	snap := reg.Snapshot()
	if got := snap["cc_serve_decision_log_drops_total"]; got != drops {
		t.Fatalf("cc_serve_decision_log_drops_total = %v, want %d", got, drops)
	}

	close(sink.release) // un-stick the sink, then flush via Close
	s.Close()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	var lines int
	sc := bufio.NewScanner(&sink.buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec["op"] != "apply" || rec["applied"] != true {
			t.Fatalf("unexpected record %v", rec)
		}
		if !strings.HasPrefix(rec["update"].(string), "+r(") {
			t.Fatalf("unexpected update %v", rec["update"])
		}
		lines++
	}
	if int64(lines)+drops != n {
		t.Fatalf("written %d + dropped %d != %d issued", lines, drops, n)
	}
}

func TestCheckDecidesWithoutApplying(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{})
	defer s.Close()

	rep, err := s.Check("a", store.Ins("r", relation.Ints(100)))
	if err != nil || !rep.Applied {
		t.Fatalf("safe check: applied=%v err=%v", rep.Applied, err)
	}
	if chk.DB().Contains("r", relation.Ints(100)) {
		t.Fatal("check left the update applied")
	}
	rep, err = s.Check("a", store.Ins("r", relation.Ints(5)))
	if err != nil || rep.Applied {
		t.Fatalf("violating check: applied=%v err=%v", rep.Applied, err)
	}
	if vs := rep.Violations(); len(vs) != 1 || vs[0] != "fi" {
		t.Fatalf("violations = %v, want [fi]", vs)
	}
	// A checked delete of an existing tuple is restored too.
	if _, err := s.Apply("a", store.Ins("r", relation.Ints(200))); err != nil {
		t.Fatal(err)
	}
	if rep, err = s.Check("a", store.Del("r", relation.Ints(200))); err != nil || !rep.Applied {
		t.Fatalf("delete check: applied=%v err=%v", rep.Applied, err)
	}
	if !chk.DB().Contains("r", relation.Ints(200)) {
		t.Fatal("check left the delete applied")
	}
}

func TestBatchAtomicVsIndependent(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{})
	defer s.Close()

	// Atomic: the violating member rolls the whole batch back.
	out, err := s.Batch("a", []store.Update{
		store.Ins("r", relation.Ints(100)),
		store.Ins("r", relation.Ints(5)),
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 0 || out.FailedAt != 1 {
		t.Fatalf("atomic: applied=%d failedAt=%d, want 0/1", out.Applied, out.FailedAt)
	}
	if chk.DB().Contains("r", relation.Ints(100)) {
		t.Fatal("atomic batch left +r(100) applied after rollback")
	}
	// Independent: the safe member stays.
	out, err = s.Batch("a", []store.Update{
		store.Ins("r", relation.Ints(100)),
		store.Ins("r", relation.Ints(5)),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 1 || out.FailedAt != -1 {
		t.Fatalf("independent: applied=%d failedAt=%d, want 1/-1", out.Applied, out.FailedAt)
	}
	if !chk.DB().Contains("r", relation.Ints(100)) {
		t.Fatal("independent batch lost +r(100)")
	}
}

func TestBatchTooLarge(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{MaxBatch: 2})
	defer s.Close()
	us := []store.Update{
		store.Ins("r", relation.Ints(100)),
		store.Ins("r", relation.Ints(101)),
		store.Ins("r", relation.Ints(102)),
	}
	if _, err := s.Batch("a", us, false); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("expected ErrBatchTooLarge, got %v", err)
	}
}

func TestServeMetricsAndStats(t *testing.T) {
	reg := obs.NewRegistry()
	chk := newTestChecker(t, reg)
	s := New(chk, Config{Metrics: reg})
	defer s.Close()

	if _, err := s.Apply("a", store.Ins("r", relation.Ints(100))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Check("a", store.Ins("r", relation.Ints(5))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Requests[EndpointApply] != 1 || st.Requests[EndpointCheck] != 1 {
		t.Fatalf("stats requests = %v", st.Requests)
	}
	var expo strings.Builder
	reg.WritePrometheus(&expo)
	text := expo.String()
	for _, want := range []string{
		`cc_serve_requests_total{endpoint="apply"} 1`,
		`cc_serve_requests_total{endpoint="check"} 1`,
		`cc_serve_request_seconds_count{endpoint="check",verdict="violation"} 1`,
		"cc_serve_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	cs, err := s.CheckerStats()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Updates != 2 {
		t.Fatalf("checker updates = %d, want 2", cs.Updates)
	}
}

// TestConcurrentClients hammers one server from many goroutines under
// -race: the checker itself must only ever be touched by the worker.
func TestConcurrentClients(t *testing.T) {
	chk := newTestChecker(t, nil)
	s := New(chk, Config{QueueDepth: 64})
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				u := store.Ins("r", relation.Ints(int64(1000+g*10+i)))
				if _, err := s.Apply(fmt.Sprintf("client-%d", g), u); err != nil {
					var busy *BusyError
					if !errors.As(err, &busy) {
						errs <- err
					}
				}
				if _, err := s.Check("probe", store.Ins("r", relation.Ints(5))); err != nil {
					var busy *BusyError
					if !errors.As(err, &busy) {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var _ io.Writer = (*slowWriter)(nil)
