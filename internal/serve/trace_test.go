package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// newTracedServer builds a D1 server whose checker routes phase events
// through a span bridge. rate is the head-sampling probability for
// requests without an upstream trace context.
func newTracedServer(t *testing.T, rate float64) (*Server, *obs.SpanTracer, *bytes.Buffer) {
	t.Helper()
	db := store.New()
	if _, err := db.Insert("l", relation.Ints(0, 10)); err != nil {
		t.Fatal(err)
	}
	spans := obs.NewSpanTracer("serve-test", obs.NewTraceStore(64), rate)
	bridge := obs.NewSpanBridge(spans)
	chk := core.New(db, core.Options{LocalRelations: []string{"l"}, Tracer: bridge})
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	var dlog bytes.Buffer
	s := New(chk, Config{Spans: spans, SpanBridge: bridge, DecisionLog: &dlog})
	return s, spans, &dlog
}

func TestHTTPTraceparentEchoAndSpanTree(t *testing.T) {
	s, spans, _ := newTracedServer(t, 0) // rate 0: only upstream-sampled requests trace
	defer s.Close()
	ts := httptest.NewServer(s.Handler("", nil, nil))
	defer ts.Close()

	sc := obs.NewSpanContext(true)
	resp, _ := postJSON(t, ts, "/v1/apply", `{"update":{"op":"insert","relation":"r","tuple":[5]}}`,
		map[string]string{TraceparentHeader: sc.Traceparent()})
	if got := resp.Header.Get(RequestIDHeader); got != sc.TraceID.String() {
		t.Fatalf("X-Request-ID = %q, want the sent trace id %q", got, sc.TraceID)
	}

	tr := spans.Store().Trace(sc.TraceID)
	if tr == nil {
		t.Fatal("request trace not stored")
	}
	if tr.Root.Name != "serve.apply" || tr.Root.Parent != sc.SpanID {
		t.Fatalf("root = %+v, want serve.apply parented to the client span", tr.Root)
	}
	if !tr.Violation {
		t.Fatal("rejected apply not flagged violating")
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"serve.apply", "queue.wait", "decide", "phase.residual"} {
		if !names[want] {
			t.Fatalf("span %q missing; trace has %v", want, names)
		}
	}
	if tr.Root.Attrs["client"] != ClientAnonymous || tr.Root.Attrs["verdict"] != VerdictViolation {
		t.Fatalf("root attrs = %v", tr.Root.Attrs)
	}

	// Rate 0 + no upstream context: untraced, no request id to echo.
	resp, _ = postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`, nil)
	if got := resp.Header.Get(RequestIDHeader); got != "" {
		t.Fatalf("unsampled response carries X-Request-ID %q", got)
	}

	// An unsampled upstream context is echoed (log correlation) but not
	// stored.
	un := obs.NewSpanContext(false)
	resp, _ = postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`,
		map[string]string{TraceparentHeader: un.Traceparent()})
	if got := resp.Header.Get(RequestIDHeader); got != un.TraceID.String() {
		t.Fatalf("unsampled echo = %q, want %q", got, un.TraceID)
	}
	if spans.Store().Trace(un.TraceID) != nil {
		t.Fatal("unsampled request was stored")
	}
}

// TestDecisionLogCarriesTraceAndClient is the ISSUE 8 satellite: every
// decision-log line parses as JSON and carries the request's trace id
// and client id.
func TestDecisionLogCarriesTraceAndClient(t *testing.T) {
	s, _, dlog := newTracedServer(t, 0)
	ts := httptest.NewServer(s.Handler("", nil, nil))

	sc := obs.NewSpanContext(true)
	postJSON(t, ts, "/v1/apply", `{"update":{"op":"insert","relation":"r","tuple":[100]}}`,
		map[string]string{TraceparentHeader: sc.Traceparent(), ClientHeader: "alice"})
	postJSON(t, ts, "/v1/batch", `{"updates":[{"op":"insert","relation":"r","tuple":[101]},{"op":"insert","relation":"r","tuple":[102]}]}`,
		map[string]string{TraceparentHeader: sc.Traceparent(), ClientHeader: "alice"})
	postJSON(t, ts, "/v1/check", `{"update":{"op":"insert","relation":"r","tuple":[103]}}`,
		map[string]string{ClientHeader: "bob"})

	ts.Close()
	s.Close() // drains the decision-log worker

	var lines []logRecord
	scan := bufio.NewScanner(dlog)
	for scan.Scan() {
		var rec logRecord
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("decision-log line does not parse: %v: %s", err, scan.Text())
		}
		lines = append(lines, rec)
	}
	if len(lines) != 4 { // apply + 2 batch updates + check
		t.Fatalf("decision log has %d lines, want 4", len(lines))
	}
	for i, rec := range lines[:3] {
		if rec.Client != "alice" || rec.TraceID != sc.TraceID.String() {
			t.Errorf("line %d: client=%q trace_id=%q, want alice/%s", i, rec.Client, rec.TraceID, sc.TraceID)
		}
	}
	if rec := lines[3]; rec.Client != "bob" || rec.TraceID != "" {
		t.Errorf("untraced line: client=%q trace_id=%q, want bob with no trace id", rec.Client, rec.TraceID)
	}
}

// TestCrossProcessTraceReassembly is the ISSUE 8 acceptance test: one
// HTTP request into a serve.Server backed by a two-site netdist
// coordinator must come out the other end as a single stored trace —
// every span sharing one trace id, forming one rooted tree with no
// orphaned parents, spanning all three services, with per-span self
// times summing to the end-to-end latency within 5%.
func TestCrossProcessTraceReassembly(t *testing.T) {
	// Sites: r1 on siteA, r2 on siteB, l local to the coordinator.
	siteA, siteB := store.New(), store.New()
	for i := int64(0); i < 20; i++ {
		if _, err := siteA.Insert("r1", relation.Ints(10000+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := siteB.Insert("r2", relation.Ints(20000+i)); err != nil {
			t.Fatal(err)
		}
	}
	lb := netdist.NewLoopback()
	srvA, srvB := netdist.NewServer(siteA, []string{"r1"}), netdist.NewServer(siteB, []string{"r2"})
	srvA.InstrumentSpans(obs.NewSpanTracer("site-a", obs.NewTraceStore(16), 1))
	srvB.InstrumentSpans(obs.NewSpanTracer("site-b", obs.NewTraceStore(16), 1))
	lb.AddSite("siteA", srvA)
	lb.AddSite("siteB", srvB)

	local := store.New()
	if _, err := local.Insert("l", relation.Ints(0, 10)); err != nil {
		t.Fatal(err)
	}
	spans := obs.NewSpanTracer("coord", obs.NewTraceStore(64), 0)
	bridge := obs.NewSpanBridge(spans)
	co, err := netdist.New(local,
		[]netdist.SiteSpec{{Site: "siteA", Relations: []string{"r1"}}, {Site: "siteB", Relations: []string{"r2"}}},
		lb, netdist.Options{
			Checker: core.Options{LocalRelations: []string{"l"}, Tracer: bridge},
			Timeout: time.Second,
			Spans:   bridge,
		})
	if err != nil {
		t.Fatal(err)
	}
	// Two constraints so the global phase consults both sites.
	if err := co.Checker.AddConstraintSource("c1", "panic :- l(X,Y) & r1(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("c2", "panic :- l(X,Y) & r2(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}

	s := New(&netdist.ServeBackend{Co: co}, Config{Spans: spans, SpanBridge: bridge})
	defer s.Close()
	ts := httptest.NewServer(s.Handler("", nil, nil))
	defer ts.Close()

	sc := obs.NewSpanContext(true)
	resp, body := postJSON(t, ts, "/v1/apply", `{"update":{"op":"insert","relation":"l","tuple":[50,60]}}`,
		map[string]string{TraceparentHeader: sc.Traceparent()})
	if resp.StatusCode != 200 {
		t.Fatalf("apply status = %d: %s", resp.StatusCode, body)
	}

	tr := spans.Store().Trace(sc.TraceID)
	if tr == nil {
		t.Fatal("no stored trace for the request")
	}

	// One trace id across every span; all three services present.
	services := map[string]bool{}
	ids := map[obs.SpanID]bool{}
	for _, sp := range tr.Spans {
		if sp.TraceID != sc.TraceID {
			t.Fatalf("span %s carries trace id %s, want %s", sp.Name, sp.TraceID, sc.TraceID)
		}
		services[sp.Service] = true
		ids[sp.SpanID] = true
	}
	for _, want := range []string{"coord", "site-a", "site-b"} {
		if !services[want] {
			t.Fatalf("service %s missing from trace; have %v (spans %d)", want, services, len(tr.Spans))
		}
	}

	// Single rooted tree: exactly one span without an in-trace parent
	// (the serve root, whose parent is the client's remote span), and
	// every other span's parent present.
	var roots, rpcs, siteSpans int
	for _, sp := range tr.Spans {
		switch {
		case sp.SpanID == tr.Root.SpanID:
			roots++
			if sp.Parent != sc.SpanID {
				t.Fatalf("root parent = %s, want the client span %s", sp.Parent, sc.SpanID)
			}
		case !ids[sp.Parent]:
			t.Fatalf("orphan span %s (%s): parent %s not in trace", sp.Name, sp.Service, sp.Parent)
		}
		if strings.HasPrefix(sp.Name, "rpc.") {
			rpcs++
		}
		if strings.HasPrefix(sp.Name, "site.") {
			siteSpans++
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want exactly 1", roots)
	}
	if rpcs == 0 || siteSpans == 0 || rpcs != siteSpans {
		t.Fatalf("rpc spans = %d, site spans = %d, want equal and nonzero", rpcs, siteSpans)
	}

	// Latency attribution: self times telescope to the root duration.
	var selfSum time.Duration
	for _, self := range obs.SelfTimes(tr) {
		selfSum += self
	}
	if e2e := tr.Root.Duration; math.Abs(float64(selfSum-e2e)) > 0.05*float64(e2e) {
		t.Fatalf("self times sum to %v, end-to-end %v (>5%% apart)", selfSum, e2e)
	}
}
