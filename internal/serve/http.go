// HTTP layer of the decision service: request decoding, client
// identification, and the mapping from admission errors onto status
// codes (BusyError → 429 + Retry-After, ErrDraining → 503). The
// endpoints ride the same mux as the obs live endpoints, so one
// listener serves /v1/*, /metrics, /healthz and /debug/pprof.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// ClientHeader names the request header carrying the client id the
// per-client token buckets key on. Absent means ClientAnonymous.
const ClientHeader = "X-Client-ID"

// ClientAnonymous is the admission bucket for requests without a client
// id.
const ClientAnonymous = "anonymous"

// TraceparentHeader names the W3C trace-context header the decision
// endpoints honor: a request carrying it joins the caller's trace.
const TraceparentHeader = "traceparent"

// RequestIDHeader echoes the request's trace id back to the caller, so
// clients can correlate a response with server-side traces and decision
// log lines without parsing anything else.
const RequestIDHeader = "X-Request-ID"

// Routes registers the decision API onto mux.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/check", func(w http.ResponseWriter, r *http.Request) {
		s.decide(w, r, false)
	})
	mux.HandleFunc("POST /v1/apply", func(w http.ResponseWriter, r *http.Request) {
		s.decide(w, r, true)
	})
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
}

// Handler builds the daemon's full mux: the decision API plus, when the
// server carries a registry, the shared obs live endpoints published
// under expvarName. health augments /healthz (may be nil). ready backs
// /readyz; nil defaults to "ready until draining". When the server
// traces, its store rides along as /debug/traces.
func (s *Server) Handler(expvarName string, health func() map[string]any, ready func() bool) http.Handler {
	if ready == nil {
		ready = func() bool { return !s.Draining() }
	}
	var mux *http.ServeMux
	if s.cfg.Metrics != nil {
		mux = obs.NewServeMux(s.cfg.Metrics, expvarName, health, ready, s.cfg.Spans.Store())
	} else {
		mux = obs.NewServeMux(nil, "", health, ready, s.cfg.Spans.Store())
	}
	s.Routes(mux)
	return mux
}

// traceStart begins the request's root span from the incoming
// traceparent (if any) and echoes the trace id. It returns a nil span
// for unsampled requests; traceID is non-empty whenever the request has
// an id worth logging — a span of its own or an upstream context.
func (s *Server) traceStart(w http.ResponseWriter, r *http.Request, endpoint string) (*obs.Span, string) {
	var parent obs.SpanContext
	if h := r.Header.Get(TraceparentHeader); h != "" {
		if sc, err := obs.ParseTraceparent(h); err == nil {
			parent = sc
		}
	}
	sp := s.cfg.Spans.StartRoot("serve."+endpoint, parent)
	var traceID string
	switch {
	case sp != nil:
		traceID = sp.Context().TraceID.String()
	case !parent.IsZero():
		traceID = parent.TraceID.String()
	}
	if traceID != "" {
		w.Header().Set(RequestIDHeader, traceID)
	}
	return sp, traceID
}

// clientID extracts the admission-control key from the request.
func clientID(r *http.Request) string {
	if id := r.Header.Get(ClientHeader); id != "" {
		return id
	}
	return ClientAnonymous
}

// decodeBody JSON-decodes the request body with exact number handling.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

// decide serves /v1/check (apply=false) and /v1/apply (apply=true).
func (s *Server) decide(w http.ResponseWriter, r *http.Request, apply bool) {
	endpoint := EndpointCheck
	if apply {
		endpoint = EndpointApply
	}
	sp, traceID := s.traceStart(w, r, endpoint)
	defer sp.End()
	var req CheckRequest
	if err := decodeBody(r, &req); err != nil {
		sp.SetError(err.Error())
		writeError(w, http.StatusBadRequest, err)
		return
	}
	u, err := req.Update.ToUpdate()
	if err != nil {
		sp.SetError(err.Error())
		writeError(w, http.StatusBadRequest, err)
		return
	}
	client := clientID(r)
	sp.SetAttr("client", client)
	var rep core.Report
	if apply {
		rep, err = s.applyTraced(client, u, sp, traceID)
	} else {
		rep, err = s.checkTraced(client, u, sp, traceID)
	}
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DecisionFrom(rep, apply))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sp, traceID := s.traceStart(w, r, EndpointBatch)
	defer sp.End()
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		sp.SetError(err.Error())
		writeError(w, http.StatusBadRequest, err)
		return
	}
	updates := make([]store.Update, len(req.Updates))
	for i, wu := range req.Updates {
		u, err := wu.ToUpdate()
		if err != nil {
			sp.SetError(err.Error())
			writeError(w, http.StatusBadRequest, fmt.Errorf("updates[%d]: %w", i, err))
			return
		}
		updates[i] = u
	}
	client := clientID(r)
	sp.SetAttr("client", client)
	sp.SetAttr("updates", strconv.Itoa(len(updates)))
	out, err := s.batchTraced(client, updates, req.Atomic, sp, traceID)
	if err != nil {
		if errors.Is(err, ErrBatchTooLarge) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResultFrom(out))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs, err := s.CheckerStats()
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StatsPayloadFrom(cs, s.Stats()))
}

// writeAdmissionError maps server-level errors onto status codes.
func writeAdmissionError(w http.ResponseWriter, err error) {
	var busy *BusyError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(busy.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// retryAfterSeconds renders a delay as whole seconds, at least 1 (a
// Retry-After of 0 reads as "retry immediately", defeating the point).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		return 1
	}
	return s
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
