package serve

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// This file is the pipelined arm of the server (Config.ApplyWorkers >
// 1): instead of one worker goroutine draining the queue inline, a
// dispatcher footprints every task and submits it to the conflict-aware
// scheduler. The scheduler guarantees that conflicting tasks run in
// admission order, so the arm answers every request with the same
// verdict — and leaves the store in the same final state — as the
// sequential arm would for the same admitted stream; only the
// interleaving of *independent* requests (and therefore throughput)
// changes. One semantic caveat is documented on submitBatch.

// dispatcher drains the queue, turning each task into one scheduler
// submission (non-atomic batches become one submission per update).
// When Close closes the queue it drains the scheduler, preserving the
// answer-everything-queued guarantee.
func (s *Server) dispatcher() {
	defer close(s.workerDone)
	for t := range s.queue {
		t := t
		if t.op == opBatch && !t.atomic {
			s.submitBatch(t)
			continue
		}
		s.sched.Submit(s.footprintFor(t), func(info sched.Info) { s.runTask(t, info) })
	}
	s.sched.Close()
}

// footprintFor derives the scheduler footprint of one task. Check
// includes the tuple write even though it undoes it: the transient
// mutation must not interleave with a reader of the relation. Stats is
// a barrier so the snapshot reflects a quiescent backend, exactly like
// the sequential arm's queue position did.
func (s *Server) footprintFor(t *task) sched.Footprint {
	switch t.op {
	case opCheck, opApply:
		return s.fpb.Footprints().Update(t.u)
	case opBatch: // atomic: one all-or-nothing task
		return s.fpb.Footprints().Batch(t.us)
	}
	return sched.Barrier()
}

// runTask executes one scheduled task — the pipelined counterpart of
// the worker loop body. The span bridge is single-flight by design, so
// the checker runs untraced here; requests instead carry a sched.wait
// child span whenever the task stalled behind a conflicting one.
func (s *Server) runTask(t *task, info sched.Info) {
	if s.cfg.workerGate != nil {
		<-s.cfg.workerGate
	}
	if s.met != nil {
		s.met.queueDepth.Set(int64(len(s.queue)))
	}
	start := time.Now()
	var decide *obs.Span
	if t.span != nil {
		s.cfg.Spans.RecordChild(t.span, "queue.wait", t.enqueued, start.Sub(t.enqueued), nil, "")
		if info.Conflicts > 0 {
			s.cfg.Spans.RecordChild(t.span, "sched.wait", start.Add(-info.Wait), info.Wait,
				map[string]string{"conflicts": strconv.Itoa(info.Conflicts)}, "")
		}
		if t.op != opStats {
			decide = s.cfg.Spans.StartChild(t.span, "decide")
		}
	}
	var res taskResult
	switch t.op {
	case opCheck:
		res.rep, res.err = s.chk.Check(t.u)
	case opApply:
		res.rep, res.err = s.chk.Apply(t.u)
	case opBatch:
		res.batch, res.err = s.runBatch(t.us, t.atomic)
	case opStats:
		res.stats = s.chk.Stats()
	}
	if decide != nil {
		if res.err != nil {
			decide.SetError(res.err.Error())
		}
		decide.End()
	}
	dur := time.Since(start)
	s.observeEWMA(dur)
	if t.op != opStats {
		s.logTask(t, res, dur)
	}
	t.reply <- res
}

// submitBatch decomposes a non-atomic batch into one scheduler task per
// update, so independent updates of the same batch pipeline like
// independent requests; the reply is assembled by whichever task
// finishes last. Verdicts and final state match the sequential arm for
// error-free streams; the one divergence is a backend *error* (not a
// violation) mid-batch, after which the sequential arm stops attempting
// the remaining updates while this arm has already dispatched them —
// the outcome still reports the first error at its index, and every
// update's fate is in the decision log either way.
func (s *Server) submitBatch(t *task) {
	n := len(t.us)
	if n == 0 {
		t.reply <- taskResult{batch: BatchOutcome{FailedAt: -1}}
		return
	}
	start := time.Now()
	if t.span != nil {
		s.cfg.Spans.RecordChild(t.span, "queue.wait", t.enqueued, start.Sub(t.enqueued), nil, "")
	}
	reports := make([]core.Report, n)
	errs := make([]error, n)
	var remaining atomic.Int64
	remaining.Store(int64(n))
	ix := s.fpb.Footprints()
	for i, u := range t.us {
		i, u := i, u
		s.sched.Submit(ix.Update(u), func(sched.Info) {
			if s.cfg.workerGate != nil {
				<-s.cfg.workerGate
			}
			reports[i], errs[i] = s.chk.Apply(u)
			if remaining.Add(-1) == 0 {
				s.finishBatch(t, reports, errs, start)
			}
		})
	}
}

// finishBatch assembles the non-atomic batch outcome in request order —
// identical aggregation to the sequential loop — and replies.
func (s *Server) finishBatch(t *task, reports []core.Report, errs []error, start time.Time) {
	var res taskResult
	res.batch = BatchOutcome{FailedAt: -1}
	for i := range reports {
		if errs[i] != nil {
			res.err = errs[i]
			break
		}
		res.batch.Reports = append(res.batch.Reports, reports[i])
		if reports[i].Applied {
			res.batch.Applied++
		}
	}
	dur := time.Since(start)
	if t.span != nil {
		s.cfg.Spans.RecordChild(t.span, "decide", start, dur,
			map[string]string{"batch": strconv.Itoa(len(t.us))}, "")
	}
	s.observeEWMA(dur)
	s.logTask(t, res, dur)
	t.reply <- res
}
