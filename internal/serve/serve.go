// Package serve is the decision-service subsystem: a long-lived front
// end that exposes the staged checking pipeline to real traffic. A
// Server wraps one core.Checker behind a bounded request queue drained
// either by a single worker (the sequential arm, Config.ApplyWorkers <=
// 1) or by a conflict-aware apply scheduler (internal/sched) that runs
// non-conflicting requests concurrently while serializing conflicting
// ones in admission order — same verdicts, same final store, higher
// throughput. Either way the server provides
//
//   - backpressure: a full queue rejects immediately with a BusyError
//     carrying a Retry-After estimate derived from the queue depth and
//     an EWMA of recent per-request service time;
//   - admission control: per-client token buckets (client = the
//     X-Client-ID header over HTTP, or the SDK's configured id) so one
//     hot client cannot starve the rest;
//   - a decision log: a buffered JSONL sink on its own writer goroutine
//     that counts drops instead of blocking the worker when the sink
//     falls behind;
//   - graceful drain: Close stops admitting, answers everything already
//     queued, then flushes the log;
//   - cc_serve_* metrics on the shared obs registry.
//
// The HTTP layer (http.go) and the embeddable SDK (internal/serve/sdk)
// are thin shells over the same Check/Apply/Batch entry points, so both
// arms return byte-identical decisions for the same stream.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// Admission-rejection reasons, used in BusyError.Reason, the
// cc_serve_admission_rejections_total metric and the stats payload.
const (
	ReasonQueueFull   = "queue_full"
	ReasonRateLimited = "rate_limited"
	ReasonDraining    = "draining"
)

// ErrDraining rejects requests that arrive after Close began: the
// server answers what it already queued and admits nothing new.
var ErrDraining = errors.New("serve: server is draining")

// ErrBatchTooLarge rejects a batch exceeding Config.MaxBatch.
var ErrBatchTooLarge = errors.New("serve: batch exceeds the configured maximum")

// BusyError is a load-shedding rejection: the request was not queued,
// and the client should retry after the advised delay. The HTTP layer
// renders it as 429 with a Retry-After header.
type BusyError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// Config tunes a Server. The zero value serves: a 1024-deep queue, no
// per-client rate limit, 1024-update batches, no decision log, no
// metrics.
type Config struct {
	// QueueDepth bounds the request queue; a request arriving on a full
	// queue is rejected with BusyError{ReasonQueueFull}. 0 means 1024.
	QueueDepth int
	// RatePerClient is the steady per-client admission rate in
	// requests/second, enforced by a token bucket per client id; 0
	// disables admission control entirely.
	RatePerClient float64
	// Burst is the token-bucket capacity (how far a client may run ahead
	// of its steady rate); 0 means max(RatePerClient, 1).
	Burst float64
	// MaxBatch bounds the updates accepted in one batch request. 0 means
	// 1024.
	MaxBatch int
	// DecisionLog, when non-nil, receives one JSON line per decided
	// update (and per update inside a batch). Writes happen on a
	// dedicated goroutine behind a DecisionLogDepth-deep buffer; when the
	// sink falls behind, records are dropped and counted rather than
	// stalling the worker.
	DecisionLog io.Writer
	// DecisionLogDepth is the decision-log buffer, in records. 0 means
	// 1024.
	DecisionLogDepth int
	// Metrics, when non-nil, receives the cc_serve_* families.
	Metrics *obs.Registry
	// Spans, when non-nil, turns on distributed tracing: each sampled
	// request becomes a trace rooted at the HTTP handler, with queue
	// wait, the decision itself, bridged checker phases and (behind a
	// coordinator backend) per-site RPCs as child spans. Completed
	// traces land in Spans.Store().
	Spans *obs.SpanTracer
	// SpanBridge, when non-nil alongside Spans, is the bridge installed
	// as the checker's Tracer: the worker points it at the active
	// request's decision span before driving the backend and clears it
	// after, so checker phase events nest under the right request. The
	// bridge is single-flight by design, so only the sequential arm uses
	// it; with ApplyWorkers > 1 the checker runs untraced and requests
	// carry sched.wait/decide envelope spans instead.
	SpanBridge *obs.SpanBridge

	// ApplyWorkers sizes the conflict-aware apply scheduler: requests
	// whose footprints do not conflict are decided concurrently by this
	// many workers, conflicting ones run in admission order. 0 or 1
	// keeps the sequential single-worker arm (the A/B baseline).
	// Values > 1 require a backend that exposes footprints and admits
	// concurrent applies (FootprintBackend — *core.Checker and
	// netdist.ServeBackend both qualify); otherwise the server falls
	// back to the sequential arm.
	ApplyWorkers int

	// workerGate, when non-nil, is received from before each task is
	// executed — a test hook to hold the worker mid-queue.
	workerGate chan struct{}
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 1024
	}
	return c.QueueDepth
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 1024
	}
	return c.MaxBatch
}

func (c Config) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	return math.Max(c.RatePerClient, 1)
}

// Endpoint names, used as metric label values and stats keys.
const (
	EndpointCheck = "check"
	EndpointApply = "apply"
	EndpointBatch = "batch"
	EndpointStats = "stats"
)

type opKind int

const (
	opCheck opKind = iota
	opApply
	opBatch
	opStats
)

func (o opKind) endpoint() string {
	switch o {
	case opCheck:
		return EndpointCheck
	case opApply:
		return EndpointApply
	case opBatch:
		return EndpointBatch
	}
	return EndpointStats
}

// task is one queued request; reply is buffered so the worker never
// blocks on an abandoned caller.
type task struct {
	op     opKind
	client string
	u      store.Update
	us     []store.Update
	atomic bool
	reply  chan taskResult

	// span is the request's root span (nil when untraced); traceID is
	// set whenever the request carries a trace id — sampled or not — so
	// decision-log lines join against client-side traces either way.
	span     *obs.Span
	traceID  string
	enqueued time.Time
}

type taskResult struct {
	rep   core.Report
	batch BatchOutcome
	stats core.Stats
	err   error
}

// BatchOutcome is the worker-level result of a batch request.
type BatchOutcome struct {
	// Reports holds one report per attempted update, in order; an atomic
	// batch stops at the first rejection, so it may be shorter than the
	// request.
	Reports []core.Report
	// Atomic echoes the request mode.
	Atomic bool
	// Applied counts the updates left applied in the store: every
	// admitted one when non-atomic, all-or-nothing when atomic.
	Applied int
	// FailedAt is the index of the rejected update that rolled an atomic
	// batch back, -1 otherwise.
	FailedAt int
}

// Backend is the decision engine a Server fronts. *core.Checker
// satisfies it directly (the single-checker deployment);
// netdist.ServeBackend adapts a distributed Coordinator so the same
// server can front a multi-site system. On the sequential arm the
// server drives the backend only from its single worker goroutine; the
// pipelined arm (Config.ApplyWorkers > 1) requires FootprintBackend.
type Backend interface {
	Check(store.Update) (core.Report, error)
	Apply(store.Update) (core.Report, error)
	ApplyBatch([]store.Update) (core.BatchReport, error)
	Stats() core.Stats
}

// FootprintBackend is a Backend that can be driven by more than one
// apply worker: it derives per-update footprints for conflict detection
// and guarantees that concurrent calls for non-conflicting updates are
// equivalent to some sequential order. *core.Checker and
// netdist.ServeBackend implement it.
type FootprintBackend interface {
	Backend
	// Footprints returns the backend's current footprint index; called
	// per request, so constraint-set changes are picked up.
	Footprints() *sched.Index
	// ConcurrentApplySafe reports whether the backend's configuration
	// admits concurrent applies at all (core.Checker's incremental mode
	// does not).
	ConcurrentApplySafe() bool
}

// Server is the decision service. All exported methods are safe for
// concurrent use; the wrapped checker is only ever driven from the
// worker goroutine.
type Server struct {
	chk Backend
	cfg Config

	// fpb and sched are set on the pipelined arm (effective
	// ApplyWorkers > 1): the dispatcher footprints each task through fpb
	// and submits it to the scheduler instead of running it inline.
	fpb          FootprintBackend
	sched        *sched.Scheduler
	applyWorkers int // effective worker count (1 on the sequential arm)

	mu       sync.RWMutex // excludes enqueue vs Close's queue close
	draining bool
	queue    chan *task

	workerDone chan struct{}
	closeOnce  sync.Once

	limMu   sync.Mutex
	buckets map[string]*bucket
	clock   func() time.Time // injected in tests

	dlog *decisionLog

	// ewmaNanos tracks recent per-task service time for Retry-After
	// estimation (α = 1/8; updated only by the worker).
	ewmaNanos atomic.Int64

	requests   [4]atomic.Int64          // by opKind
	rejections map[string]*atomic.Int64 // by reason
	met        *serveMetrics
}

// New builds a Server over chk and starts its worker. The caller owns
// chk and must not drive it concurrently with the server; Close stops
// the worker and flushes the decision log.
func New(chk Backend, cfg Config) *Server {
	s := &Server{
		chk:        chk,
		cfg:        cfg,
		queue:      make(chan *task, cfg.queueDepth()),
		workerDone: make(chan struct{}),
		buckets:    map[string]*bucket{},
		clock:      time.Now,
		rejections: map[string]*atomic.Int64{
			ReasonQueueFull:   new(atomic.Int64),
			ReasonRateLimited: new(atomic.Int64),
			ReasonDraining:    new(atomic.Int64),
		},
	}
	s.ewmaNanos.Store(int64(50 * time.Microsecond))
	if cfg.Metrics != nil {
		s.met = newServeMetrics(cfg.Metrics)
	}
	if cfg.DecisionLog != nil {
		s.dlog = newDecisionLog(cfg.DecisionLog, cfg.DecisionLogDepth)
	}
	s.applyWorkers = 1
	if cfg.ApplyWorkers > 1 {
		if fb, ok := chk.(FootprintBackend); ok && fb.ConcurrentApplySafe() {
			s.fpb = fb
			s.applyWorkers = cfg.ApplyWorkers
			s.sched = sched.New(sched.Options{
				Workers: cfg.ApplyWorkers,
				Metrics: sched.NewMetrics(cfg.Metrics, "serve"),
			})
			go s.dispatcher()
			return s
		}
		// No footprints (or a configuration that forbids concurrent
		// applies): fall back to the sequential arm rather than fail.
	}
	go s.worker()
	return s
}

// ApplyWorkers returns the effective apply-pool width (1 on the
// sequential arm, including fallbacks from an unsatisfiable
// Config.ApplyWorkers).
func (s *Server) ApplyWorkers() int { return s.applyWorkers }

// Check decides the update without applying it.
func (s *Server) Check(client string, u store.Update) (core.Report, error) {
	return s.checkTraced(client, u, nil, "")
}

func (s *Server) checkTraced(client string, u store.Update, sp *obs.Span, traceID string) (core.Report, error) {
	res, err := s.do(&task{op: opCheck, client: client, u: u, span: sp, traceID: traceID})
	return res.rep, err
}

// Apply decides the update and, when admitted, applies it.
func (s *Server) Apply(client string, u store.Update) (core.Report, error) {
	return s.applyTraced(client, u, nil, "")
}

func (s *Server) applyTraced(client string, u store.Update, sp *obs.Span, traceID string) (core.Report, error) {
	res, err := s.do(&task{op: opApply, client: client, u: u, span: sp, traceID: traceID})
	return res.rep, err
}

// Batch runs the updates in one queue slot: atomically (all-or-nothing,
// core.ApplyBatch) or independently (rejected updates are skipped, the
// rest stay applied).
func (s *Server) Batch(client string, us []store.Update, atomic bool) (BatchOutcome, error) {
	return s.batchTraced(client, us, atomic, nil, "")
}

func (s *Server) batchTraced(client string, us []store.Update, atomic bool, sp *obs.Span, traceID string) (BatchOutcome, error) {
	if len(us) > s.cfg.maxBatch() {
		return BatchOutcome{}, ErrBatchTooLarge
	}
	res, err := s.do(&task{op: opBatch, client: client, us: us, atomic: atomic, span: sp, traceID: traceID})
	return res.batch, err
}

// CheckerStats snapshots the wrapped checker's statistics through the
// queue (the checker's counters are not safe to read mid-Apply).
func (s *Server) CheckerStats() (core.Stats, error) {
	res, err := s.do(&task{op: opStats})
	return res.stats, err
}

// do admits, enqueues, and waits for the worker's answer.
func (s *Server) do(t *task) (taskResult, error) {
	// Stats requests skip the token bucket: they are cheap, and load
	// shedding that blinds the operator is self-defeating.
	if t.op != opStats {
		if err := s.admit(t.client); err != nil {
			s.reject(ReasonRateLimited)
			return taskResult{}, err
		}
	}
	t.reply = make(chan taskResult, 1)
	start := s.clock()
	t.enqueued = time.Now()
	if err := s.enqueue(t); err != nil {
		if t.span != nil {
			t.span.SetError(err.Error())
		}
		return taskResult{}, err
	}
	res := <-t.reply
	verdict := verdictLabel(t, res)
	if s.met != nil {
		s.met.latency.With(t.op.endpoint(), verdict).Observe(time.Since(start).Seconds())
	}
	if t.span != nil {
		t.span.SetAttr("verdict", verdict)
		if res.err != nil {
			t.span.SetError(res.err.Error())
		}
	}
	return res, res.err
}

// verdictLabel classifies a finished request for the latency histogram.
func verdictLabel(t *task, res taskResult) string {
	switch {
	case res.err != nil:
		return "error"
	case t.op == opCheck || t.op == opApply:
		if res.rep.Applied {
			return "ok"
		}
		return "violation"
	case t.op == opBatch:
		if res.batch.Applied == len(t.us) {
			return "ok"
		}
		return "violation"
	}
	return "ok"
}

// enqueue places the task on the queue unless the server is draining or
// the queue is full. It holds the read lock across the send so Close
// cannot close the queue under an in-flight send.
func (s *Server) enqueue(t *task) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		s.reject(ReasonDraining)
		return ErrDraining
	}
	select {
	case s.queue <- t:
		s.requests[t.op].Add(1)
		if s.met != nil {
			s.met.queueDepth.Set(int64(len(s.queue)))
			s.met.requests.With(t.op.endpoint()).Inc()
		}
		return nil
	default:
		s.reject(ReasonQueueFull)
		return &BusyError{Reason: ReasonQueueFull, RetryAfter: s.retryAfter()}
	}
}

// retryAfter estimates how long the full queue needs to drain: depth ×
// recent per-task service time, clamped to [10ms, 5s].
func (s *Server) retryAfter() time.Duration {
	d := time.Duration(len(s.queue)) * time.Duration(s.ewmaNanos.Load())
	return min(max(d, 10*time.Millisecond), 5*time.Second)
}

func (s *Server) reject(reason string) {
	s.rejections[reason].Add(1)
	if s.met != nil {
		s.met.rejections.With(reason).Inc()
	}
}

// worker drains the queue until Close closes it, answering every queued
// task (the drain guarantee).
func (s *Server) worker() {
	defer close(s.workerDone)
	for t := range s.queue {
		if s.cfg.workerGate != nil {
			<-s.cfg.workerGate
		}
		if s.met != nil {
			s.met.queueDepth.Set(int64(len(s.queue)))
		}
		start := time.Now()
		var decide *obs.Span
		if t.span != nil {
			s.cfg.Spans.RecordChild(t.span, "queue.wait", t.enqueued, start.Sub(t.enqueued), nil, "")
			if t.op != opStats {
				decide = s.cfg.Spans.StartChild(t.span, "decide")
				s.cfg.SpanBridge.SetActive(decide)
			}
		}
		var res taskResult
		switch t.op {
		case opCheck:
			res.rep, res.err = s.chk.Check(t.u)
		case opApply:
			res.rep, res.err = s.chk.Apply(t.u)
		case opBatch:
			res.batch, res.err = s.runBatch(t.us, t.atomic)
		case opStats:
			res.stats = s.chk.Stats()
		}
		if decide != nil {
			s.cfg.SpanBridge.SetActive(nil)
			if res.err != nil {
				decide.SetError(res.err.Error())
			}
			decide.End()
		}
		dur := time.Since(start)
		s.observeEWMA(dur)
		if t.op != opStats {
			s.logTask(t, res, dur)
		}
		t.reply <- res
	}
}

// observeEWMA folds one task's service time into the Retry-After
// estimate (α = 1/8). CAS because pipelined apply workers observe
// concurrently; the sequential worker is just the uncontended case.
func (s *Server) observeEWMA(dur time.Duration) {
	for {
		prev := s.ewmaNanos.Load()
		next := prev - prev/8 + int64(dur)/8
		if s.ewmaNanos.CompareAndSwap(prev, next) {
			return
		}
	}
}

func (s *Server) runBatch(us []store.Update, atomic bool) (BatchOutcome, error) {
	out := BatchOutcome{Atomic: atomic, FailedAt: -1}
	if atomic {
		br, err := s.chk.ApplyBatch(us)
		out.Reports = br.Reports
		out.FailedAt = br.FailedAt
		if err != nil {
			return out, err
		}
		if br.Applied {
			out.Applied = len(us)
		}
		return out, nil
	}
	for _, u := range us {
		rep, err := s.chk.Apply(u)
		if err != nil {
			return out, err
		}
		out.Reports = append(out.Reports, rep)
		if rep.Applied {
			out.Applied++
		}
	}
	return out, nil
}

// Close drains the server: no new request is admitted (ErrDraining),
// every already-queued request is answered, then the decision log is
// flushed and closed. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.closeOnce.Do(func() { close(s.queue) })
	}
	<-s.workerDone
	if s.dlog != nil {
		s.dlog.close()
	}
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// bucket is one client's token bucket; tokens refill continuously at
// Config.RatePerClient up to Config.Burst.
type bucket struct {
	tokens float64
	last   time.Time
}

// admit charges one token from the client's bucket, or returns a
// BusyError advising when the next token lands.
func (s *Server) admit(client string) error {
	rate := s.cfg.RatePerClient
	if rate <= 0 {
		return nil
	}
	burst := s.cfg.burst()
	now := s.clock()
	s.limMu.Lock()
	defer s.limMu.Unlock()
	b := s.buckets[client]
	if b == nil {
		b = &bucket{tokens: burst, last: now}
		s.buckets[client] = b
	}
	b.tokens = math.Min(burst, b.tokens+now.Sub(b.last).Seconds()*rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	return &BusyError{Reason: ReasonRateLimited, RetryAfter: wait}
}

// Stats is the server-level accounting snapshot (the checker's own
// statistics travel separately, through CheckerStats).
type Stats struct {
	Requests         map[string]int64 `json:"requests"`
	Rejections       map[string]int64 `json:"rejections"`
	QueueDepth       int              `json:"queue_depth"`
	DecisionLogDrops int64            `json:"decision_log_drops"`
	Draining         bool             `json:"draining"`
	// ApplyWorkers is the effective apply-pool width (1 = sequential
	// arm). The sched_* counters are zero on the sequential arm.
	ApplyWorkers        int   `json:"apply_workers"`
	SchedTasks          int64 `json:"sched_tasks"`
	SchedConflictStalls int64 `json:"sched_conflict_stalls"`
	SchedInflight       int   `json:"sched_inflight"`
	// Shard* and ReplicaReads surface the backend's scale-out wire
	// accounting when it implements ShardStatser (zero otherwise).
	ShardRouted  int `json:"shard_routed,omitempty"`
	ShardScatter int `json:"shard_scatter,omitempty"`
	ReplicaReads int `json:"replica_reads,omitempty"`
}

// ShardStatser is an optional Backend refinement for scale-out
// deployments: how many sharded-relation reads were routed to a single
// owning shard, how many scatter-gathered every shard, and how many
// shard reads a fresh replica served. netdist.ServeBackend implements
// it; single-checker backends simply don't.
type ShardStatser interface {
	ShardStats() (routed, scatter, replicaReads int)
}

// Stats snapshots the server-level counters without touching the queue.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:     map[string]int64{},
		Rejections:   map[string]int64{},
		QueueDepth:   len(s.queue),
		Draining:     s.Draining(),
		ApplyWorkers: s.applyWorkers,
	}
	if s.sched != nil {
		ss := s.sched.Stats()
		st.SchedTasks = ss.Tasks
		st.SchedConflictStalls = ss.ConflictStalls
		st.SchedInflight = ss.Inflight
	}
	if sh, ok := s.chk.(ShardStatser); ok {
		st.ShardRouted, st.ShardScatter, st.ReplicaReads = sh.ShardStats()
	}
	for op := opCheck; op <= opStats; op++ {
		st.Requests[op.endpoint()] = s.requests[op].Load()
	}
	for reason, n := range s.rejections {
		st.Rejections[reason] = n.Load()
	}
	if s.dlog != nil {
		st.DecisionLogDrops = s.dlog.drops.Load()
	}
	return st
}

// DecisionLogDrops returns the dropped-record count (0 without a log).
func (s *Server) DecisionLogDrops() int64 {
	if s.dlog == nil {
		return 0
	}
	return s.dlog.drops.Load()
}

// logTask emits decision-log records for a finished task: one per
// update, batches included.
func (s *Server) logTask(t *task, res taskResult, dur time.Duration) {
	if s.dlog == nil {
		return
	}
	ts := s.clock().UTC().Format(time.RFC3339Nano)
	emit := func(u store.Update, rep core.Report, err error) {
		rec := logRecord{
			Time:      ts,
			Client:    t.client,
			TraceID:   t.traceID,
			Op:        t.op.endpoint(),
			Update:    u.String(),
			LatencyUS: dur.Microseconds(),
		}
		if err != nil {
			rec.Err = err.Error()
		} else {
			rec.Applied = rep.Applied
			rec.Violations = rep.Violations()
		}
		if !s.dlog.emit(rec) && s.met != nil {
			s.met.logDrops.Inc()
		}
	}
	switch t.op {
	case opCheck, opApply:
		emit(t.u, res.rep, res.err)
	case opBatch:
		for i, rep := range res.batch.Reports {
			emit(t.us[i], rep, nil)
		}
		if res.err != nil && len(res.batch.Reports) < len(t.us) {
			emit(t.us[len(res.batch.Reports)], core.Report{}, res.err)
		}
	}
}

// logRecord is one decision-log line (JSONL). TraceID joins the line
// against the stored trace (and the client's own spans) whenever the
// request carried or minted a trace id.
type logRecord struct {
	Time       string   `json:"ts"`
	Client     string   `json:"client,omitempty"`
	TraceID    string   `json:"trace_id,omitempty"`
	Op         string   `json:"op"`
	Update     string   `json:"update"`
	Applied    bool     `json:"applied"`
	Violations []string `json:"violations,omitempty"`
	LatencyUS  int64    `json:"latency_us"`
	Err        string   `json:"error,omitempty"`
}

// decisionLog is the buffered JSONL sink: emit never blocks (drops are
// counted), the writer goroutine owns the io.Writer, close flushes.
type decisionLog struct {
	ch    chan logRecord
	drops atomic.Int64
	done  chan struct{}
}

func newDecisionLog(w io.Writer, depth int) *decisionLog {
	if depth <= 0 {
		depth = 1024
	}
	l := &decisionLog{ch: make(chan logRecord, depth), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		enc := json.NewEncoder(w)
		for rec := range l.ch {
			// A failing sink cannot stall the worker; the error surfaces
			// as missing lines, which the drop counter does not cover —
			// operators watch the sink's own health for that.
			_ = enc.Encode(rec)
		}
	}()
	return l
}

func (l *decisionLog) emit(rec logRecord) bool {
	select {
	case l.ch <- rec:
		return true
	default:
		l.drops.Add(1)
		return false
	}
}

func (l *decisionLog) close() {
	close(l.ch)
	<-l.done
}

// serveMetrics holds the cc_serve_* handles.
type serveMetrics struct {
	requests   *obs.CounterVec
	latency    *obs.HistogramVec
	queueDepth *obs.Gauge
	rejections *obs.CounterVec
	logDrops   *obs.Counter
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		requests: reg.CounterVec("cc_serve_requests_total",
			"Requests admitted to the decision queue, by endpoint.", "endpoint"),
		latency: reg.HistogramVec("cc_serve_request_seconds",
			"Request latency from admission to reply (queue wait included), by endpoint and verdict.",
			nil, "endpoint", "verdict"),
		queueDepth: reg.Gauge("cc_serve_queue_depth",
			"Requests currently queued for the decision worker."),
		rejections: reg.CounterVec("cc_serve_admission_rejections_total",
			"Requests shed before queueing, by reason (queue_full, rate_limited, draining).", "reason"),
		logDrops: reg.Counter("cc_serve_decision_log_drops_total",
			"Decision-log records dropped because the sink fell behind."),
	}
}
