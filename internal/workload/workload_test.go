package workload

import (
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/containment"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/store"
)

func TestIntervalsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := Intervals(rng, 50, 10, 100)
	if len(ts) != 50 {
		t.Fatalf("len = %d", len(ts))
	}
	for _, tu := range ts {
		if tu[0].Compare(tu[1]) >= 0 {
			t.Errorf("degenerate interval %v", tu)
		}
	}
}

func TestIntervalsDeterministic(t *testing.T) {
	a := Intervals(rand.New(rand.NewSource(7)), 20, 5, 50)
	b := Intervals(rand.New(rand.NewSource(7)), 20, 5, 50)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("generator not deterministic under fixed seed")
		}
	}
}

func TestChainCQC(t *testing.T) {
	for k := 1; k <= 5; k++ {
		r := ChainCQC(k)
		if err := r.CheckSafe(); err != nil {
			t.Errorf("ChainCQC(%d) unsafe: %v", k, err)
		}
		if got := len(r.PositiveAtoms()); got != k {
			t.Errorf("ChainCQC(%d) has %d atoms", k, got)
		}
		// Normal form for Theorem 5.1: distinct variables throughout.
		if _, err := containment.Theorem51(r, r.Clone()); err != nil {
			t.Errorf("ChainCQC(%d) not in Theorem 5.1 form: %v", k, err)
		}
	}
	// Self-containment must hold.
	ok, err := containment.Theorem51(ChainCQC(3), ChainCQC(3))
	if err != nil || !ok {
		t.Errorf("chain not self-contained: %v %v", ok, err)
	}
}

func TestRandomCQCWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		r := RandomCQC(rng, []string{"r", "s"}, 2, 1+rng.Intn(3), rng.Intn(4))
		if err := r.CheckSafe(); err != nil {
			t.Fatalf("unsafe random CQC: %v", err)
		}
		prog := parser.MustParseProgram(r.String())
		if c := classify.Classify(prog); c.Negation {
			t.Fatal("random CQC has negation")
		}
	}
}

func TestEmployeeDBConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := store.New()
	if err := EmployeeDB(rng, db, 5, 40); err != nil {
		t.Fatal(err)
	}
	for name, src := range StandardEmployeeConstraints() {
		bad, err := eval.PanicHolds(parser.MustParseProgram(src), db)
		if err != nil {
			t.Fatal(err)
		}
		if bad {
			t.Errorf("seeded database violates %s", name)
		}
	}
}

func TestEmployeeUpdatesViolationFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	us := EmployeeUpdates(rng, 200, 4, 0.5)
	if len(us) != 200 {
		t.Fatalf("len = %d", len(us))
	}
	ghosts := 0
	for _, u := range us {
		if u.Relation == "emp" && u.Tuple[1].Str == "ghost" {
			ghosts++
		}
	}
	if ghosts == 0 {
		t.Error("no ghost-department hires in a 50% violating stream")
	}
}
