// Package workload generates the synthetic databases, constraints and
// update streams used by the examples and the experiment benchmarks. The
// generators are deterministic given a seed, so every experiment is
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

// Intervals generates n local interval tuples (lo, lo+width…) whose low
// ends are spread over [0, spread). Larger n·width relative to spread
// yields denser coverage and a higher local-certification rate.
func Intervals(rng *rand.Rand, n int, width, spread int64) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		lo := rng.Int63n(spread)
		out[i] = relation.Ints(lo, lo+1+rng.Int63n(width))
	}
	return out
}

// IntervalInserts generates an update stream of new intervals with the
// same distribution.
func IntervalInserts(rng *rand.Rand, n int, width, spread int64, rel string) []store.Update {
	out := make([]store.Update, n)
	for i, t := range Intervals(rng, n, width, spread) {
		out[i] = store.Ins(rel, t)
	}
	return out
}

// ChainCQC builds a conjunctive query constraint with k copies of the
// binary predicate r — the duplicate-predicate multiplicity that drives
// the number of containment mappings in the Theorem 5.1 vs Klug
// experiment:
//
//	panic :- r(U1,V1) & … & r(Uk,Vk) & V1<=U2 & … & V(k-1)<=Uk & U1 <= Vk
func ChainCQC(k int) *ast.Rule {
	r := &ast.Rule{Head: ast.NewAtom(ast.PanicPred)}
	for i := 1; i <= k; i++ {
		r.Body = append(r.Body, ast.Pos(ast.NewAtom("r",
			ast.V(fmt.Sprintf("U%d", i)), ast.V(fmt.Sprintf("V%d", i)))))
	}
	for i := 1; i < k; i++ {
		r.Body = append(r.Body, ast.Cmp(ast.NewComparison(
			ast.V(fmt.Sprintf("V%d", i)), ast.Le, ast.V(fmt.Sprintf("U%d", i+1)))))
	}
	if k >= 1 {
		r.Body = append(r.Body, ast.Cmp(ast.NewComparison(ast.V("U1"), ast.Le, ast.V(fmt.Sprintf("V%d", k)))))
	}
	return r
}

// RandomCQC draws a random conjunctive query with comparisons in
// Theorem 5.1 normal form: natoms ordinary subgoals over preds (each
// variable used once), and ncomps comparisons over the variables and
// small integer constants.
func RandomCQC(rng *rand.Rand, preds []string, arity, natoms, ncomps int) *ast.Rule {
	r := &ast.Rule{Head: ast.NewAtom(ast.PanicPred)}
	var vars []ast.Term
	for i := 0; i < natoms; i++ {
		args := make([]ast.Term, arity)
		for j := range args {
			v := ast.V(fmt.Sprintf("X%d_%d", i, j))
			args[j] = v
			vars = append(vars, v)
		}
		r.Body = append(r.Body, ast.Pos(ast.Atom{Pred: preds[rng.Intn(len(preds))], Args: args}))
	}
	ops := []ast.CompOp{ast.Lt, ast.Le, ast.Eq, ast.Ge, ast.Gt}
	term := func() ast.Term {
		if len(vars) == 0 || rng.Intn(4) == 0 {
			return ast.CInt(int64(rng.Intn(6)))
		}
		return vars[rng.Intn(len(vars))]
	}
	for i := 0; i < ncomps; i++ {
		l := term()
		rt := term()
		if l.IsConst() && rt.IsConst() && len(vars) > 0 {
			rt = vars[rng.Intn(len(vars))]
		}
		r.Body = append(r.Body, ast.Cmp(ast.NewComparison(l, ops[rng.Intn(len(ops))], rt)))
	}
	return r
}

// EmployeeDB seeds a store with depts departments, each with a salary
// range, and n employees placed consistently (so the standard constraints
// hold initially).
func EmployeeDB(rng *rand.Rand, db *store.Store, depts, n int) error {
	for d := 0; d < depts; d++ {
		name := deptName(d)
		if _, err := db.Insert("dept", relation.Strs(name)); err != nil {
			return err
		}
		low := int64(10 * (d + 1))
		if _, err := db.Insert("salRange", relation.TupleOf(ast.Str(name), ast.Int(low), ast.Int(low+50))); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		d := rng.Intn(depts)
		low := int64(10 * (d + 1))
		sal := low + rng.Int63n(51)
		t := relation.TupleOf(ast.Str(fmt.Sprintf("e%d", i)), ast.Str(deptName(d)), ast.Int(sal))
		if _, err := db.Insert("emp", t); err != nil {
			return err
		}
	}
	return nil
}

// EmployeeUpdates draws an update stream: mostly valid hires, a tunable
// fraction of violating ones (ghost departments or out-of-range
// salaries), plus department inserts.
func EmployeeUpdates(rng *rand.Rand, n, depts int, violateFrac float64) []store.Update {
	out := make([]store.Update, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			out = append(out, store.Ins("dept", relation.Strs(deptName(depts+rng.Intn(3)))))
			continue
		}
		d := rng.Intn(depts)
		low := int64(10 * (d + 1))
		sal := low + rng.Int63n(51)
		dept := deptName(d)
		if rng.Float64() < violateFrac {
			if rng.Intn(2) == 0 {
				dept = "ghost"
			} else {
				sal = low + 1000
			}
		}
		out = append(out, store.Ins("emp",
			relation.TupleOf(ast.Str(fmt.Sprintf("h%d", i)), ast.Str(dept), ast.Int(sal))))
	}
	return out
}

func deptName(d int) string { return fmt.Sprintf("dept%02d", d) }

// StandardEmployeeConstraints returns the paper's running constraints
// (Examples 2.2 and 2.3) as named sources.
func StandardEmployeeConstraints() map[string]string {
	return map[string]string{
		"referential": "panic :- emp(E,D,S) & not dept(D).",
		"range-low":   "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.",
		"range-high":  "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.",
	}
}
