package store

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
)

func TestEnsureArityConflict(t *testing.T) {
	s := New()
	if _, err := s.Ensure("emp", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ensure("emp", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ensure("emp", 2); err == nil {
		t.Error("arity conflict accepted")
	}
}

func TestInsertDeleteContains(t *testing.T) {
	s := New()
	tu := relation.Strs("jones", "shoe")
	if ok, err := s.Insert("emp", tu); err != nil || !ok {
		t.Fatalf("Insert: %v %v", ok, err)
	}
	if !s.Contains("emp", tu) {
		t.Error("tuple missing")
	}
	if !s.Delete("emp", tu) {
		t.Error("delete failed")
	}
	if s.Delete("absent", tu) {
		t.Error("delete from absent relation reported change")
	}
}

func TestReadAccounting(t *testing.T) {
	s := New()
	for i := int64(0); i < 10; i++ {
		if _, err := s.Insert("r", relation.Ints(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Tuples("r")
	if got := s.Reads("r"); got != 10 {
		t.Errorf("Reads = %d, want 10", got)
	}
	s.Lookup("r", 0, ast.Int(3))
	if got := s.Reads("r"); got != 11 {
		t.Errorf("Reads = %d, want 11", got)
	}
	if got := s.TotalReads(); got != 11 {
		t.Errorf("TotalReads = %d, want 11", got)
	}
	s.ResetReads()
	if got := s.TotalReads(); got != 0 {
		t.Errorf("TotalReads after reset = %d", got)
	}
	// Contains must not charge reads: membership probes are free index
	// hits, which matters for the simulator's accounting.
	s.Contains("r", relation.Ints(1))
	if got := s.TotalReads(); got != 0 {
		t.Errorf("Contains charged reads: %d", got)
	}
}

func TestLoadFacts(t *testing.T) {
	s := New()
	prog := parser.MustParseProgram(`dept(toy). dept(shoe). emp(jones, shoe, 50).`)
	if err := s.LoadFacts(prog); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("dept", relation.Strs("toy")) {
		t.Error("dept(toy) missing")
	}
	if !s.Contains("emp", relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))) {
		t.Error("emp fact missing")
	}
	bad := parser.MustParseProgram("p(X) :- q(X).")
	if err := s.LoadFacts(bad); err == nil {
		t.Error("non-fact accepted by LoadFacts")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	if _, err := s.Insert("r", relation.Ints(1)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if _, err := c.Insert("r", relation.Ints(2)); err != nil {
		t.Fatal(err)
	}
	if s.Contains("r", relation.Ints(2)) {
		t.Error("clone mutation leaked into original")
	}
}

func TestUpdateApply(t *testing.T) {
	s := New()
	ins := Ins("dept", relation.Strs("toy"))
	if err := ins.Apply(s); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("dept", relation.Strs("toy")) {
		t.Error("insert update not applied")
	}
	del := Del("dept", relation.Strs("toy"))
	if err := del.Apply(s); err != nil {
		t.Fatal(err)
	}
	if s.Contains("dept", relation.Strs("toy")) {
		t.Error("delete update not applied")
	}
	if got := ins.String(); got != "+dept(toy)" {
		t.Errorf("String = %q", got)
	}
	if got := del.String(); got != "-dept(toy)" {
		t.Errorf("String = %q", got)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	s := New()
	if err := s.LoadFacts(parser.MustParseProgram(`
		dept(toy). dept("New York").
		emp(jones, shoe, 50). emp(ann, toy, 4.5).`)); err != nil {
		t.Fatal(err)
	}
	dump := s.Dump()
	s2 := New()
	if err := s2.LoadFacts(parser.MustParseProgram(dump)); err != nil {
		t.Fatalf("reload of dump failed: %v\n%s", err, dump)
	}
	for _, name := range s.Names() {
		a, b := s.Relation(name), s2.Relation(name)
		if b == nil || !a.Equal(b) {
			t.Errorf("relation %s did not round-trip", name)
		}
	}
	// Symbols needing quotes must be quoted in the dump.
	if !strings.Contains(dump, `"New York"`) {
		t.Errorf("dump lacks quoted symbol:\n%s", dump)
	}
}

func TestProbeAndMustEnsureAndString(t *testing.T) {
	s := New()
	s.MustEnsure("r", 1)
	if _, err := s.Insert("r", relation.Ints(1)); err != nil {
		t.Fatal(err)
	}
	if !s.Probe("r", relation.Ints(1)) || s.Probe("r", relation.Ints(2)) {
		t.Error("Probe membership wrong")
	}
	if got := s.Reads("r"); got != 2 {
		t.Errorf("Probe charged %d reads, want 2", got)
	}
	if s.Probe("absent", relation.Ints(1)) {
		t.Error("Probe on absent relation")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEnsure arity conflict did not panic")
		}
	}()
	s.MustEnsure("r", 3)
}

func TestReplace(t *testing.T) {
	s := New()
	if _, err := s.Insert("r", relation.Ints(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("r", relation.Ints(3, 4)); err != nil {
		t.Fatal(err)
	}
	s.Tuples("r") // charge some reads
	// Replace swaps contents without touching counters.
	if err := s.Replace("r", 2, []relation.Tuple{relation.Ints(5, 6)}); err != nil {
		t.Fatal(err)
	}
	if s.Contains("r", relation.Ints(1, 2)) || !s.Contains("r", relation.Ints(5, 6)) {
		t.Errorf("Replace did not swap contents: %s", s)
	}
	if got := s.Reads("r"); got != 2 {
		t.Errorf("Replace charged reads: got %d, want 2 (the pre-replace scan)", got)
	}
	// Replace creates absent relations.
	if err := s.Replace("fresh", 1, []relation.Tuple{relation.Ints(7)}); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("fresh", relation.Ints(7)) {
		t.Error("Replace did not create the relation")
	}
	// Replace to empty empties.
	if err := s.Replace("r", 2, nil); err != nil {
		t.Fatal(err)
	}
	if n := s.Relation("r").Len(); n != 0 {
		t.Errorf("Replace to empty left %d tuples", n)
	}
	// Arity conflicts are rejected, both against the existing relation and
	// within the tuple list.
	if err := s.Replace("r", 3, nil); err == nil {
		t.Error("Replace with conflicting arity accepted")
	}
	if err := s.Replace("r", 2, []relation.Tuple{relation.Ints(1)}); err == nil {
		t.Error("Replace with mis-sized tuple accepted")
	}
}

func TestLookupColsCharging(t *testing.T) {
	s := New()
	for i := int64(0); i < 10; i++ {
		if _, err := s.Insert("r", relation.Ints(i%2, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A multi-column probe charges only the tuples it returns — that is
	// the whole point of indexed evaluation under read accounting.
	ts := s.LookupCols("r", []int{0, 1}, []ast.Value{ast.Int(1), ast.Int(3)})
	if len(ts) != 1 {
		t.Fatalf("LookupCols = %d tuples, want 1", len(ts))
	}
	if got := s.Reads("r"); got != 1 {
		t.Errorf("Reads = %d, want 1", got)
	}
	// Probing an absent relation returns nil and charges nothing.
	if ts := s.LookupCols("absent", []int{0}, []ast.Value{ast.Int(1)}); ts != nil {
		t.Errorf("LookupCols on absent relation = %v", ts)
	}
	if got := s.Reads("absent"); got != 0 {
		t.Errorf("absent relation charged %d reads", got)
	}
}

func TestReplaceCarriesIndexSignatures(t *testing.T) {
	s := New()
	if _, err := s.Insert("r", relation.Ints(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Build an index through a probe, then Replace: the fresh relation
	// must come up with the same signature already warm (the netdist
	// coordinator refreshes its mirror with Replace before every global
	// evaluation).
	s.LookupCols("r", []int{0, 1}, []ast.Value{ast.Int(1), ast.Int(2)})
	if err := s.Replace("r", 2, []relation.Tuple{relation.Ints(3, 4)}); err != nil {
		t.Fatal(err)
	}
	sigs := s.Relation("r").IndexSignatures()
	found := false
	for _, cols := range sigs {
		if len(cols) == 2 && cols[0] == 0 && cols[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Replace dropped index signatures: %v", sigs)
	}
	if ts := s.LookupCols("r", []int{0, 1}, []ast.Value{ast.Int(3), ast.Int(4)}); len(ts) != 1 {
		t.Fatalf("probe after Replace = %d tuples, want 1", len(ts))
	}
}

func TestReplaceKey(t *testing.T) {
	s := New()
	for _, ts := range [][]int64{{1, 10}, {1, 11}, {2, 20}} {
		if _, err := s.Insert("d", relation.Ints(ts...)); err != nil {
			t.Fatal(err)
		}
	}
	ver := s.SchemaVersion()

	// Swap key group 1: {1,10},{1,11} -> {1,12}; group 2 untouched.
	if err := s.ReplaceKey("d", 2, 0, ast.Int(1), []relation.Tuple{relation.Ints(1, 12)}); err != nil {
		t.Fatal(err)
	}
	got := s.Relation("d").Tuples()
	want := map[string]bool{relation.Ints(1, 12).Key(): true, relation.Ints(2, 20).Key(): true}
	if len(got) != len(want) {
		t.Fatalf("after ReplaceKey: %v", got)
	}
	for _, tu := range got {
		if !want[tu.Key()] {
			t.Fatalf("unexpected tuple %s after ReplaceKey", tu)
		}
	}
	if s.SchemaVersion() != ver {
		t.Fatal("ReplaceKey must not advance the schema version (data-only change)")
	}

	// Emptying a group deletes all its tuples.
	if err := s.ReplaceKey("d", 2, 0, ast.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	if s.Contains("d", relation.Ints(2, 20)) {
		t.Fatal("ReplaceKey with empty group left the old tuples")
	}

	// Creating an absent relation works; arity and key mismatches fail.
	if err := s.ReplaceKey("fresh", 1, 0, ast.Int(7), []relation.Tuple{relation.Ints(7)}); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceKey("d", 2, 0, ast.Int(1), []relation.Tuple{relation.Ints(9, 9)}); err == nil {
		t.Fatal("tuple not carrying the key value must be rejected")
	}
	if err := s.ReplaceKey("d", 2, 5, ast.Int(1), nil); err == nil {
		t.Fatal("out-of-range key column must be rejected")
	}
}
