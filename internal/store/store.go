// Package store provides a named-relation database with update
// application, snapshots, and per-relation access accounting. The access
// counters are what the distributed simulator (internal/dist) uses to
// measure how much remote data a checking strategy touches.
//
// A Store is safe for concurrent use: relation creation is guarded by an
// RWMutex, the relations themselves are internally synchronized (see
// internal/relation), and the access counters sit behind their own mutex
// so concurrent readers charge reads without racing.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/relation"
)

// nextStoreID hands out process-unique store identities (see Store.ID).
var nextStoreID atomic.Uint64

// Store is a mutable database: a set of named relations. The zero value
// is not usable; call New.
type Store struct {
	id uint64 // process-unique, for plan-cache keying

	mu   sync.RWMutex
	rels map[string]*relation.Relation
	// schema counts structural changes — relation creation, Replace
	// swaps, index availability changes via EnsureIndex — so compiled
	// evaluation plans (internal/eval.PlanCache) can key on the store
	// shape and drop stale plans without subscribing to the store.
	schema  atomic.Uint64
	readsMu sync.Mutex
	reads   map[string]int64 // tuples handed out per relation
}

// New creates an empty store.
func New() *Store {
	return &Store{
		id:    nextStoreID.Add(1),
		rels:  map[string]*relation.Relation{},
		reads: map[string]int64{},
	}
}

// ID returns the store's process-unique identity. Two stores never share
// an ID, so (ID, SchemaVersion) globally identifies a store shape —
// the plan cache uses the pair as part of its key.
func (s *Store) ID() uint64 { return s.id }

// SchemaVersion returns a counter that advances on every structural
// change: relation creation, Replace, and EnsureIndex. Data-only changes
// (Insert/Delete) do not advance it — compiled plans only depend on
// which relations exist, their arities, and their index availability.
func (s *Store) SchemaVersion() uint64 { return s.schema.Load() }

// get returns the named relation or nil, under the read lock.
func (s *Store) get(name string) *relation.Relation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rels[name]
}

// charge adds n tuple reads to the named relation's counter.
func (s *Store) charge(name string, n int64) {
	s.readsMu.Lock()
	s.reads[name] += n
	s.readsMu.Unlock()
}

// Ensure returns the relation named name, creating it with the given
// arity if absent. It fails if the relation exists with another arity.
func (s *Store) Ensure(name string, arity int) (*relation.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rels[name]; ok {
		if r.Arity() != arity {
			return nil, fmt.Errorf("store: relation %s has arity %d, requested %d", name, r.Arity(), arity)
		}
		return r, nil
	}
	r := relation.New(name, arity)
	s.rels[name] = r
	s.schema.Add(1)
	return r, nil
}

// MustEnsure is Ensure that panics on arity conflicts.
func (s *Store) MustEnsure(name string, arity int) *relation.Relation {
	r, err := s.Ensure(name, arity)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil if absent.
func (s *Store) Relation(name string) *relation.Relation { return s.get(name) }

// Names returns the sorted relation names.
func (s *Store) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Insert adds a tuple, creating the relation on first use.
func (s *Store) Insert(name string, t relation.Tuple) (bool, error) {
	r, err := s.Ensure(name, len(t))
	if err != nil {
		return false, err
	}
	return r.Insert(t), nil
}

// Delete removes a tuple; deleting from an absent relation is a no-op.
func (s *Store) Delete(name string, t relation.Tuple) bool {
	r := s.get(name)
	if r == nil {
		return false
	}
	return r.Delete(t)
}

// Contains reports whether the named relation holds t.
func (s *Store) Contains(name string, t relation.Tuple) bool {
	r := s.get(name)
	return r != nil && r.Contains(t)
}

// Tuples returns a snapshot of the named relation's tuples and charges
// the read counter. Absent relations are empty.
func (s *Store) Tuples(name string) []relation.Tuple {
	r := s.get(name)
	if r == nil {
		return nil
	}
	ts := r.Tuples()
	s.charge(name, int64(len(ts)))
	return ts
}

// TuplesAppend appends a snapshot of the named relation's tuples to dst,
// charging only the appended tuples — the allocation-free variant of
// Tuples for evaluators holding a reusable buffer.
func (s *Store) TuplesAppend(dst []relation.Tuple, name string) []relation.Tuple {
	r := s.get(name)
	if r == nil {
		return dst
	}
	before := len(dst)
	dst = r.TuplesAppend(dst)
	s.charge(name, int64(len(dst)-before))
	return dst
}

// Lookup returns the tuples of the named relation whose column col equals
// v, charging the read counter for the tuples returned.
func (s *Store) Lookup(name string, col int, v ast.Value) []relation.Tuple {
	r := s.get(name)
	if r == nil {
		return nil
	}
	ts := r.Lookup(col, v)
	s.charge(name, int64(len(ts)))
	return ts
}

// LookupCols returns the tuples of the named relation whose projection
// onto cols equals vals, probing (and lazily building) the relation's
// hash index on that column set. Only the tuples actually returned are
// charged to the read counter, so an indexed probe never reads more
// store tuples than the scan-and-filter it replaces.
func (s *Store) LookupCols(name string, cols []int, vals []ast.Value) []relation.Tuple {
	r := s.get(name)
	if r == nil {
		return nil
	}
	ts := r.LookupCols(cols, vals)
	s.charge(name, int64(len(ts)))
	return ts
}

// LookupColsAppend is LookupCols appending into dst, charging only the
// appended tuples.
func (s *Store) LookupColsAppend(dst []relation.Tuple, name string, cols []int, vals []ast.Value) []relation.Tuple {
	r := s.get(name)
	if r == nil {
		return dst
	}
	before := len(dst)
	dst = r.LookupColsAppend(dst, cols, vals)
	s.charge(name, int64(len(dst)-before))
	return dst
}

// EnsureIndex warms the hash index on the named relation's column set,
// advancing the schema version: index availability is part of the store
// shape compiled plans depend on.
func (s *Store) EnsureIndex(name string, cols ...int) error {
	r := s.get(name)
	if r == nil {
		return fmt.Errorf("store: EnsureIndex on absent relation %s", name)
	}
	r.EnsureIndex(cols...)
	s.schema.Add(1)
	return nil
}

// Probe reports membership of t in the named relation, charging one read
// (unlike Contains, which is a free structural check). Evaluators use
// Probe so that negated-subgoal checks are accounted.
func (s *Store) Probe(name string, t relation.Tuple) bool {
	s.charge(name, 1)
	r := s.get(name)
	return r != nil && r.Contains(t)
}

// Reads returns the cumulative number of tuples read from the named
// relation via Tuples/Lookup/Probe.
func (s *Store) Reads(name string) int64 {
	s.readsMu.Lock()
	defer s.readsMu.Unlock()
	return s.reads[name]
}

// TotalReads sums the read counters over the given relation names (all
// relations when none are given).
func (s *Store) TotalReads(names ...string) int64 {
	if len(names) == 0 {
		names = s.Names()
	}
	s.readsMu.Lock()
	defer s.readsMu.Unlock()
	var sum int64
	for _, n := range names {
		sum += s.reads[n]
	}
	return sum
}

// ResetReads zeroes all read counters.
func (s *Store) ResetReads() {
	s.readsMu.Lock()
	s.reads = map[string]int64{}
	s.readsMu.Unlock()
}

// Replace atomically swaps the named relation's contents for the given
// tuples, creating the relation if absent. No read counters are charged:
// Replace is bulk state transfer (mirror refresh from a remote site, bulk
// load), not query evaluation. It fails if the relation exists with a
// different arity or a tuple has the wrong arity.
func (s *Store) Replace(name string, arity int, ts []relation.Tuple) error {
	for _, t := range ts {
		if len(t) != arity {
			return fmt.Errorf("store: replace %s/%d: tuple %s has arity %d", name, arity, t, len(t))
		}
	}
	fresh := relation.New(name, arity)
	for _, t := range ts {
		fresh.Insert(t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rels[name]; ok {
		if r.Arity() != arity {
			return fmt.Errorf("store: relation %s has arity %d, requested %d", name, r.Arity(), arity)
		}
		// Carry the old relation's index signatures onto the fresh one, so
		// repeated Replace cycles (mirror refreshes before every global
		// evaluation) keep the evaluator's probe indexes warm instead of
		// rebuilding them lazily mid-join.
		for _, cols := range r.IndexSignatures() {
			fresh.EnsureIndex(cols...)
		}
	}
	s.rels[name] = fresh
	s.schema.Add(1)
	return nil
}

// ReplaceKey swaps one key group of the named relation: every stored
// tuple whose column col equals val is replaced by ts (each of which
// must carry val at col). Like Replace it is bulk state transfer — no
// read counters are charged — but unlike Replace it mutates the
// relation in place via Insert/Delete, so the schema version does not
// advance and compiled plans stay valid. The relation is created when
// absent. Tuple-at-a-time mutation means a concurrent reader may see a
// partially swapped group; callers (the netdist coordinator's sharded
// mirror refresh) serialize refreshes against readers of the same key
// group through the scheduler's shard-granular footprints.
func (s *Store) ReplaceKey(name string, arity, col int, val ast.Value, ts []relation.Tuple) error {
	if col < 0 || col >= arity {
		return fmt.Errorf("store: replace key %s/%d: column %d out of range", name, arity, col)
	}
	for _, t := range ts {
		if len(t) != arity {
			return fmt.Errorf("store: replace key %s/%d: tuple %s has arity %d", name, arity, t, len(t))
		}
		if !t[col].Equal(val) {
			return fmt.Errorf("store: replace key %s: tuple %s does not carry %s at column %d", name, t, val, col)
		}
	}
	r, err := s.Ensure(name, arity)
	if err != nil {
		return err
	}
	fresh := map[string]bool{}
	for _, t := range ts {
		fresh[t.Key()] = true
	}
	for _, old := range r.Lookup(col, val) {
		if !fresh[old.Key()] {
			r.Delete(old)
		}
	}
	for _, t := range ts {
		r.Insert(t)
	}
	return nil
}

// Clone returns a deep copy of the store with zeroed counters.
func (s *Store) Clone() *Store {
	out := New()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n, r := range s.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// LoadFacts inserts every fact (bodiless ground rule) of prog into the
// store and rejects non-fact rules.
func (s *Store) LoadFacts(prog *ast.Program) error {
	for _, r := range prog.Rules {
		if !r.IsFact() {
			return fmt.Errorf("store: rule %s is not a fact", r)
		}
		t, err := relation.TermsToTuple(r.Head.Args)
		if err != nil {
			return fmt.Errorf("store: fact %s: %v", r, err)
		}
		if _, err := s.Insert(r.Head.Pred, t); err != nil {
			return err
		}
	}
	return nil
}

// String renders the store contents sorted by relation name.
func (s *Store) String() string {
	var parts []string
	for _, n := range s.Names() {
		parts = append(parts, s.get(n).String())
	}
	return strings.Join(parts, "\n")
}

// Update is an insertion or deletion of one tuple, the update granularity
// of Section 4 and 5 of the paper.
type Update struct {
	Insert   bool
	Relation string
	Tuple    relation.Tuple
}

// Ins builds an insertion update.
func Ins(rel string, t relation.Tuple) Update { return Update{Insert: true, Relation: rel, Tuple: t} }

// Del builds a deletion update.
func Del(rel string, t relation.Tuple) Update { return Update{Relation: rel, Tuple: t} }

// Apply performs the update on the store.
func (u Update) Apply(s *Store) error {
	if u.Insert {
		_, err := s.Insert(u.Relation, u.Tuple)
		return err
	}
	s.Delete(u.Relation, u.Tuple)
	return nil
}

// String renders the update as +rel(t) or -rel(t).
func (u Update) String() string {
	sign := "-"
	if u.Insert {
		sign = "+"
	}
	return sign + u.Relation + u.Tuple.String()
}

// Dump renders the store as a facts program — one fact per tuple, sorted
// by relation name, in the parser's syntax — so a store round-trips
// through Dump → parser.ParseProgram → LoadFacts. Tuples appear in
// insertion order within each relation.
func (s *Store) Dump() string {
	var sb strings.Builder
	for _, name := range s.Names() {
		r := s.get(name)
		for _, t := range r.Tuples() {
			sb.WriteString(ast.Fact(ast.Atom{Pred: name, Args: t.Terms()}).String())
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
