// Package ra provides relational algebra expression trees and their
// evaluator. Theorem 5.3 of the paper compiles an arithmetic-free CQC
// and an inserted tuple into an expression of this algebra whose
// nonemptiness is the complete local test; expressing tests in the
// algebra is what makes them runnable inside any database system's query
// language (Section 1, "Tests Using the Query Language").
package ra

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

// Expr is a relational algebra expression.
type Expr interface {
	// Arity is the width of the result.
	Arity() int
	// Eval computes the expression over the store.
	Eval(db *store.Store) (*relation.Relation, error)
	// String renders the expression in a compact algebra syntax.
	String() string
}

// Operand is one side of a selection condition: a column reference
// (Const == nil) or a constant.
type Operand struct {
	Col   int
	Const *ast.Value
}

// ColRef returns a column operand (0-based, written #n).
func ColRef(i int) Operand { return Operand{Col: i} }

// ConstOp returns a constant operand.
func ConstOp(v ast.Value) Operand { return Operand{Col: -1, Const: &v} }

func (o Operand) value(t relation.Tuple) ast.Value {
	if o.Const != nil {
		return *o.Const
	}
	return t[o.Col]
}

func (o Operand) String() string {
	if o.Const != nil {
		return o.Const.String()
	}
	return fmt.Sprintf("#%d", o.Col+1)
}

// Cond is one selection condition.
type Cond struct {
	Left  Operand
	Op    ast.CompOp
	Right Operand
}

func (c Cond) eval(t relation.Tuple) bool { return c.Op.Eval(c.Left.value(t), c.Right.value(t)) }

func (c Cond) String() string { return c.Left.String() + c.Op.String() + c.Right.String() }

// Rel is a base-relation reference.
type Rel struct {
	Name  string
	Width int
}

// NewRel references the named base relation with the given arity.
func NewRel(name string, arity int) *Rel { return &Rel{Name: name, Width: arity} }

func (r *Rel) Arity() int { return r.Width }

func (r *Rel) Eval(db *store.Store) (*relation.Relation, error) {
	out := relation.New(r.Name, r.Width)
	for _, t := range db.Tuples(r.Name) {
		if len(t) != r.Width {
			return nil, fmt.Errorf("ra: relation %s has arity %d, expression expects %d", r.Name, len(t), r.Width)
		}
		out.Insert(t)
	}
	return out, nil
}

func (r *Rel) String() string { return r.Name }

// Select filters the input by a conjunction of conditions.
type Select struct {
	Conds []Cond
	Input Expr
}

// NewSelect builds a selection.
func NewSelect(input Expr, conds ...Cond) *Select { return &Select{Conds: conds, Input: input} }

func (s *Select) Arity() int { return s.Input.Arity() }

func (s *Select) Eval(db *store.Store) (*relation.Relation, error) {
	in, err := s.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Conds {
		for _, o := range []Operand{c.Left, c.Right} {
			if o.Const == nil && (o.Col < 0 || o.Col >= s.Input.Arity()) {
				return nil, fmt.Errorf("ra: selection column #%d out of range (arity %d)", o.Col+1, s.Input.Arity())
			}
		}
	}
	out := relation.New("σ", in.Arity())
	in.Each(func(t relation.Tuple) bool {
		for _, c := range s.Conds {
			if !c.eval(t) {
				return true
			}
		}
		out.Insert(t)
		return true
	})
	return out, nil
}

func (s *Select) String() string {
	parts := make([]string, len(s.Conds))
	for i, c := range s.Conds {
		parts[i] = c.String()
	}
	return "σ[" + strings.Join(parts, " ∧ ") + "](" + s.Input.String() + ")"
}

// Project keeps the listed columns in order (duplicates allowed).
type Project struct {
	Cols  []int
	Input Expr
}

// NewProject builds a projection.
func NewProject(input Expr, cols ...int) *Project { return &Project{Cols: cols, Input: input} }

func (p *Project) Arity() int { return len(p.Cols) }

func (p *Project) Eval(db *store.Store) (*relation.Relation, error) {
	in, err := p.Input.Eval(db)
	if err != nil {
		return nil, err
	}
	for _, c := range p.Cols {
		if c < 0 || c >= in.Arity() {
			return nil, fmt.Errorf("ra: projection column #%d out of range (arity %d)", c+1, in.Arity())
		}
	}
	out := relation.New("π", len(p.Cols))
	in.Each(func(t relation.Tuple) bool {
		nt := make(relation.Tuple, len(p.Cols))
		for i, c := range p.Cols {
			nt[i] = t[c]
		}
		out.Insert(nt)
		return true
	})
	return out, nil
}

func (p *Project) String() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = fmt.Sprintf("#%d", c+1)
	}
	return "π[" + strings.Join(parts, ",") + "](" + p.Input.String() + ")"
}

// Product is the cartesian product of two expressions.
type Product struct {
	Left, Right Expr
}

// NewProduct builds a product.
func NewProduct(l, r Expr) *Product { return &Product{Left: l, Right: r} }

func (x *Product) Arity() int { return x.Left.Arity() + x.Right.Arity() }

func (x *Product) Eval(db *store.Store) (*relation.Relation, error) {
	l, err := x.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := x.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	out := relation.New("×", x.Arity())
	l.Each(func(lt relation.Tuple) bool {
		r.Each(func(rt relation.Tuple) bool {
			nt := make(relation.Tuple, 0, len(lt)+len(rt))
			nt = append(nt, lt...)
			nt = append(nt, rt...)
			out.Insert(nt)
			return true
		})
		return true
	})
	return out, nil
}

func (x *Product) String() string { return "(" + x.Left.String() + " × " + x.Right.String() + ")" }

// Union is set union of same-arity expressions.
type Union struct {
	Inputs []Expr
}

// NewUnion builds an n-ary union; it panics on arity mismatch.
func NewUnion(inputs ...Expr) *Union {
	if len(inputs) == 0 {
		panic("ra: empty union (use Empty)")
	}
	for _, in := range inputs[1:] {
		if in.Arity() != inputs[0].Arity() {
			panic("ra: union arity mismatch")
		}
	}
	return &Union{Inputs: inputs}
}

func (u *Union) Arity() int { return u.Inputs[0].Arity() }

func (u *Union) Eval(db *store.Store) (*relation.Relation, error) {
	out := relation.New("∪", u.Arity())
	for _, in := range u.Inputs {
		r, err := in.Eval(db)
		if err != nil {
			return nil, err
		}
		r.Each(func(t relation.Tuple) bool { out.Insert(t); return true })
	}
	return out, nil
}

func (u *Union) String() string {
	parts := make([]string, len(u.Inputs))
	for i, in := range u.Inputs {
		parts[i] = in.String()
	}
	return "(" + strings.Join(parts, " ∪ ") + ")"
}

// Diff is set difference Left − Right.
type Diff struct {
	Left, Right Expr
}

// NewDiff builds a difference; it panics on arity mismatch.
func NewDiff(l, r Expr) *Diff {
	if l.Arity() != r.Arity() {
		panic("ra: difference arity mismatch")
	}
	return &Diff{Left: l, Right: r}
}

func (d *Diff) Arity() int { return d.Left.Arity() }

func (d *Diff) Eval(db *store.Store) (*relation.Relation, error) {
	l, err := d.Left.Eval(db)
	if err != nil {
		return nil, err
	}
	r, err := d.Right.Eval(db)
	if err != nil {
		return nil, err
	}
	out := relation.New("−", d.Arity())
	l.Each(func(t relation.Tuple) bool {
		if !r.Contains(t) {
			out.Insert(t)
		}
		return true
	})
	return out, nil
}

func (d *Diff) String() string { return "(" + d.Left.String() + " − " + d.Right.String() + ")" }

// Literal is a constant relation.
type Literal struct {
	Width  int
	Tuples []relation.Tuple
}

// NewLiteral builds a constant relation of the given arity.
func NewLiteral(arity int, tuples ...relation.Tuple) *Literal {
	return &Literal{Width: arity, Tuples: tuples}
}

// Empty returns an empty constant relation. A Theorem 5.3 test compiles
// to Empty's complement semantics: an always-false test is Empty, an
// always-true test is a one-tuple 0-ary literal.
func Empty(arity int) *Literal { return &Literal{Width: arity} }

// TrueExpr is the 0-ary relation holding the empty tuple: nonempty, so a
// nonemptiness test on it is always true.
func TrueExpr() *Literal { return NewLiteral(0, relation.Tuple{}) }

func (l *Literal) Arity() int { return l.Width }

func (l *Literal) Eval(*store.Store) (*relation.Relation, error) {
	out := relation.New("lit", l.Width)
	for _, t := range l.Tuples {
		if len(t) != l.Width {
			return nil, fmt.Errorf("ra: literal tuple arity %d, expression expects %d", len(t), l.Width)
		}
		out.Insert(t)
	}
	return out, nil
}

func (l *Literal) String() string {
	if len(l.Tuples) == 0 {
		return "∅"
	}
	parts := make([]string, len(l.Tuples))
	for i, t := range l.Tuples {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// NonEmpty evaluates e and reports whether its result holds any tuple —
// the verdict form of the Theorem 5.3 complete local test.
func NonEmpty(e Expr, db *store.Store) (bool, error) {
	r, err := e.Eval(db)
	if err != nil {
		return false, err
	}
	return r.Len() > 0, nil
}
