package ra

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

// genDB draws a small store with two binary relations a and b.
type genDB struct{ db *store.Store }

func (genDB) Generate(rng *rand.Rand, _ int) reflect.Value {
	db := store.New()
	for _, rel := range []string{"a", "b"} {
		db.MustEnsure(rel, 2)
		for i := 0; i < rng.Intn(6); i++ {
			if _, err := db.Insert(rel, relation.Ints(int64(rng.Intn(4)), int64(rng.Intn(4)))); err != nil {
				panic(err)
			}
		}
	}
	return reflect.ValueOf(genDB{db})
}

// genCond draws a selection condition over two columns and small constants.
type genCond struct{ c Cond }

func (genCond) Generate(rng *rand.Rand, _ int) reflect.Value {
	ops := []ast.CompOp{ast.Lt, ast.Le, ast.Eq, ast.Ne, ast.Ge, ast.Gt}
	operand := func() Operand {
		if rng.Intn(2) == 0 {
			return ColRef(rng.Intn(2))
		}
		return ConstOp(ast.Int(int64(rng.Intn(4))))
	}
	return reflect.ValueOf(genCond{Cond{Left: operand(), Op: ops[rng.Intn(len(ops))], Right: operand()}})
}

func eq(t *testing.T, x, y Expr, db *store.Store) bool {
	t.Helper()
	rx, err := x.Eval(db)
	if err != nil {
		t.Fatalf("eval %s: %v", x, err)
	}
	ry, err := y.Eval(db)
	if err != nil {
		t.Fatalf("eval %s: %v", y, err)
	}
	return rx.Equal(ry)
}

// TestQuickSelectDistributesOverUnion: σ(A ∪ B) = σ(A) ∪ σ(B).
func TestQuickSelectDistributesOverUnion(t *testing.T) {
	f := func(g genDB, c genCond) bool {
		a, b := NewRel("a", 2), NewRel("b", 2)
		lhs := NewSelect(NewUnion(a, b), c.c)
		rhs := NewUnion(NewSelect(a, c.c), NewSelect(b, c.c))
		return eq(t, lhs, rhs, g.db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestQuickSelectCommutes: σc1(σc2(A)) = σc2(σc1(A)) = σ[c1∧c2](A).
func TestQuickSelectCommutes(t *testing.T) {
	f := func(g genDB, c1, c2 genCond) bool {
		a := NewRel("a", 2)
		x := NewSelect(NewSelect(a, c1.c), c2.c)
		y := NewSelect(NewSelect(a, c2.c), c1.c)
		z := NewSelect(a, c1.c, c2.c)
		return eq(t, x, y, g.db) && eq(t, x, z, g.db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiffLaws: A − A = ∅ and (A − B) ⊆ A.
func TestQuickDiffLaws(t *testing.T) {
	f := func(g genDB) bool {
		a, b := NewRel("a", 2), NewRel("b", 2)
		empty, err := NewDiff(a, a).Eval(g.db)
		if err != nil || empty.Len() != 0 {
			return false
		}
		diff, err := NewDiff(a, b).Eval(g.db)
		if err != nil {
			return false
		}
		full, err := a.Eval(g.db)
		if err != nil {
			return false
		}
		ok := true
		diff.Each(func(tu relation.Tuple) bool {
			if !full.Contains(tu) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectIdempotent: π[cols](π[cols](A)) = π[cols](A) for a
// permutation-free projection.
func TestQuickProjectIdempotent(t *testing.T) {
	f := func(g genDB) bool {
		a := NewRel("a", 2)
		p1 := NewProject(a, 0)
		p2 := NewProject(p1, 0)
		return eq(t, p1, p2, g.db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionCommutativeAssociative.
func TestQuickUnionLaws(t *testing.T) {
	f := func(g genDB) bool {
		a, b := NewRel("a", 2), NewRel("b", 2)
		return eq(t, NewUnion(a, b), NewUnion(b, a), g.db) &&
			eq(t, NewUnion(NewUnion(a, b), a), NewUnion(a, b), g.db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
