package ra

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

func db3(t *testing.T) *store.Store {
	t.Helper()
	db := store.New()
	for _, tu := range []relation.Tuple{
		relation.Ints(1, 10),
		relation.Ints(2, 20),
		relation.Ints(3, 30),
	} {
		if _, err := db.Insert("r", tu); err != nil {
			t.Fatal(err)
		}
	}
	for _, tu := range []relation.Tuple{relation.Ints(2), relation.Ints(4)} {
		if _, err := db.Insert("s", tu); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestRelEval(t *testing.T) {
	db := db3(t)
	r, err := NewRel("r", 2).Eval(db)
	if err != nil || r.Len() != 3 {
		t.Fatalf("Rel eval: len=%d err=%v", r.Len(), err)
	}
	if _, err := NewRel("r", 3).Eval(db); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Absent relation evaluates empty.
	e, err := NewRel("absent", 1).Eval(db)
	if err != nil || e.Len() != 0 {
		t.Errorf("absent relation: len=%d err=%v", e.Len(), err)
	}
}

func TestSelectColConst(t *testing.T) {
	db := db3(t)
	sel := NewSelect(NewRel("r", 2), Cond{ColRef(1), ast.Gt, ConstOp(ast.Int(15))})
	r, err := sel.Eval(db)
	if err != nil || r.Len() != 2 {
		t.Fatalf("select: len=%d err=%v", r.Len(), err)
	}
}

func TestSelectColCol(t *testing.T) {
	db := store.New()
	if _, err := db.Insert("p", relation.Ints(5, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("p", relation.Ints(5, 6)); err != nil {
		t.Fatal(err)
	}
	sel := NewSelect(NewRel("p", 2), Cond{ColRef(0), ast.Eq, ColRef(1)})
	r, err := sel.Eval(db)
	if err != nil || r.Len() != 1 {
		t.Fatalf("select #1=#2: len=%d err=%v", r.Len(), err)
	}
	if !r.Contains(relation.Ints(5, 5)) {
		t.Error("wrong tuple selected")
	}
}

func TestSelectColumnRangeError(t *testing.T) {
	db := db3(t)
	sel := NewSelect(NewRel("r", 2), Cond{ColRef(7), ast.Eq, ConstOp(ast.Int(1))})
	if _, err := sel.Eval(db); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestProject(t *testing.T) {
	db := db3(t)
	p := NewProject(NewRel("r", 2), 1)
	r, err := p.Eval(db)
	if err != nil || r.Len() != 3 || r.Arity() != 1 {
		t.Fatalf("project: len=%d arity=%d err=%v", r.Len(), r.Arity(), err)
	}
	// Projection deduplicates.
	db2 := store.New()
	for i := int64(0); i < 5; i++ {
		if _, err := db2.Insert("q", relation.Ints(i, 99)); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := NewProject(NewRel("q", 2), 1).Eval(db2)
	if err != nil || r2.Len() != 1 {
		t.Fatalf("dedup project: len=%d err=%v", r2.Len(), err)
	}
}

func TestProductJoinViaSelect(t *testing.T) {
	db := db3(t)
	// r ⋈ s on r.#1 = s.#1 expressed as σ[#1=#3](r × s).
	join := NewSelect(NewProduct(NewRel("r", 2), NewRel("s", 1)), Cond{ColRef(0), ast.Eq, ColRef(2)})
	r, err := join.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Contains(relation.Ints(2, 20, 2)) {
		t.Errorf("join result: %v", r)
	}
}

func TestUnionDiff(t *testing.T) {
	db := db3(t)
	u := NewUnion(NewRel("s", 1), NewProject(NewRel("r", 2), 0))
	r, err := u.Eval(db)
	if err != nil || r.Len() != 4 { // {2,4} ∪ {1,2,3}
		t.Fatalf("union: len=%d err=%v", r.Len(), err)
	}
	d := NewDiff(NewProject(NewRel("r", 2), 0), NewRel("s", 1))
	r2, err := d.Eval(db)
	if err != nil || r2.Len() != 2 { // {1,3}
		t.Fatalf("diff: len=%d err=%v", r2.Len(), err)
	}
	if r2.Contains(relation.Ints(2)) {
		t.Error("diff kept removed tuple")
	}
}

func TestLiteralTrueEmpty(t *testing.T) {
	db := store.New()
	ok, err := NonEmpty(TrueExpr(), db)
	if err != nil || !ok {
		t.Errorf("TrueExpr: %v %v", ok, err)
	}
	ok, err = NonEmpty(Empty(2), db)
	if err != nil || ok {
		t.Errorf("Empty: %v %v", ok, err)
	}
}

func TestExample54Expression(t *testing.T) {
	// Example 5.4: inserting (a,b,b) into L, the complete local test is
	// σ[#1=a ∧ #2=b ∧ #2=#3](L) nonempty.
	db := store.New()
	if _, err := db.Insert("l", relation.Strs("a", "b", "b")); err != nil {
		t.Fatal(err)
	}
	test := NewSelect(NewRel("l", 3),
		Cond{ColRef(0), ast.Eq, ConstOp(ast.Str("a"))},
		Cond{ColRef(1), ast.Eq, ConstOp(ast.Str("b"))},
		Cond{ColRef(1), ast.Eq, ColRef(2)},
	)
	ok, err := NonEmpty(test, db)
	if err != nil || !ok {
		t.Errorf("Example 5.4 test should pass when the tuple exists: %v %v", ok, err)
	}
	db2 := store.New()
	if _, err := db2.Insert("l", relation.Strs("a", "c", "c")); err != nil {
		t.Fatal(err)
	}
	ok, err = NonEmpty(test, db2)
	if err != nil || ok {
		t.Errorf("Example 5.4 test should fail without the tuple: %v %v", ok, err)
	}
}

func TestStringRendering(t *testing.T) {
	e := NewSelect(NewRel("l", 2), Cond{ColRef(0), ast.Eq, ConstOp(ast.Int(3))})
	if got := e.String(); got != "σ[#1=3](l)" {
		t.Errorf("String = %q", got)
	}
	u := NewUnion(NewRel("a", 1), NewRel("b", 1))
	if got := u.String(); got != "(a ∪ b)" {
		t.Errorf("String = %q", got)
	}
}

func TestUnionArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch union did not panic")
		}
	}()
	NewUnion(NewRel("a", 1), NewRel("b", 2))
}

func TestMoreStringRendering(t *testing.T) {
	p := NewProject(NewRel("r", 2), 1)
	if got := p.String(); got != "π[#2](r)" {
		t.Errorf("project String = %q", got)
	}
	x := NewProduct(NewRel("a", 1), NewRel("b", 1))
	if got := x.String(); got != "(a × b)" {
		t.Errorf("product String = %q", got)
	}
	d := NewDiff(NewRel("a", 1), NewRel("b", 1))
	if got := d.String(); got != "(a − b)" {
		t.Errorf("diff String = %q", got)
	}
	if got := Empty(2).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	lit := NewLiteral(1, relation.Ints(3))
	if got := lit.String(); got != "{(3)}" {
		t.Errorf("literal String = %q", got)
	}
	if lit.Arity() != 1 || TrueExpr().Arity() != 0 {
		t.Error("literal arity wrong")
	}
	// Literal with mismatched tuple arity errors at eval.
	bad := NewLiteral(2, relation.Ints(1))
	if _, err := bad.Eval(store.New()); err == nil {
		t.Error("arity-mismatched literal accepted")
	}
}

func TestDiffArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("diff arity mismatch did not panic")
		}
	}()
	NewDiff(NewRel("a", 1), NewRel("b", 2))
}
