package icq

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/relation"
)

// IsICQ reports whether the CQC is independently constrained (Section 6):
// every comparison other than an equality involves at most one remote
// variable.
func IsICQ(c *ast.CQC) bool {
	remote := map[string]bool{}
	for _, v := range c.RemoteVars() {
		remote[v] = true
	}
	for _, cmp := range c.Rule.Comparisons() {
		if cmp.Op == ast.Eq {
			continue
		}
		n := 0
		for _, v := range cmp.Vars(nil) {
			if remote[v] {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// Analysis is the compiled form of a single-remote-variable ICQ: for each
// local tuple it can produce the forbidden interval(s) of the remote
// variable.
type Analysis struct {
	CQC       *ast.CQC
	RemoteVar string
	// colOf maps each local variable to its column in the local relation.
	colOf map[string]int
	// bounds on the remote variable: each is (term, op) read as
	// "term op Z" for lower bounds and "Z op term" for upper bounds.
	lowers  []boundTerm      // term < Z or term <= Z (or Z = term)
	uppers  []boundTerm      // Z < term or Z <= term (or Z = term)
	nes     []ast.Term       // Z <> term
	filters []ast.Comparison // comparisons not involving the remote var
	unsat   bool             // a vacuously false comparison (Z < Z): nothing is ever forbidden
}

type boundTerm struct {
	term   ast.Term
	strict bool
}

// Analyze compiles a normal-form ICQ with exactly one remote atom whose
// constrained variable is the single comparison-constrained remote
// variable. Other remote variables may exist in the same atom but must be
// unconstrained (they are irrelevant to the interval logic). Constraints
// with several remote atoms or several constrained remote variables are
// rejected — they fall outside the canonical Section 6 construction and
// are handled by the general Theorem 5.2 test instead.
func Analyze(c *ast.CQC) (*Analysis, error) {
	if !IsICQ(c) {
		return nil, fmt.Errorf("icq: constraint is not independently constrained: %s", c)
	}
	if n := len(c.RemoteAtoms()); n != 1 {
		return nil, fmt.Errorf("icq: canonical analysis requires exactly one remote subgoal, found %d", n)
	}
	remote := map[string]bool{}
	for _, v := range c.RemoteVars() {
		remote[v] = true
	}
	a := &Analysis{CQC: c, colOf: map[string]int{}}
	for i, t := range c.LocalAtom().Args {
		a.colOf[t.Var] = i
	}
	// Find the constrained remote variable.
	constrained := map[string]bool{}
	for _, cmp := range c.Rule.Comparisons() {
		for _, v := range cmp.Vars(nil) {
			if remote[v] {
				constrained[v] = true
			}
		}
	}
	switch len(constrained) {
	case 0:
		// No comparison touches any remote variable: the forbidden
		// region is everything whenever the filters hold. Model as an
		// unconstrained pseudo-variable.
		a.RemoteVar = ""
	case 1:
		for v := range constrained {
			a.RemoteVar = v
		}
	default:
		return nil, fmt.Errorf("icq: canonical analysis requires one constrained remote variable, found %d", len(constrained))
	}
	for _, cmp := range c.Rule.Comparisons() {
		lz := cmp.Left.IsVar() && cmp.Left.Var == a.RemoteVar
		rz := cmp.Right.IsVar() && cmp.Right.Var == a.RemoteVar
		switch {
		case lz && rz:
			if cmp.Op == ast.Ne || cmp.Op == ast.Lt || cmp.Op == ast.Gt {
				// Z <> Z or Z < Z: unsatisfiable — nothing ever forbidden.
				a.unsat = true
			}
			// Z = Z, Z <= Z: vacuous.
		case lz: // Z op term
			a.addBound(cmp.Op, cmp.Right)
		case rz: // term op Z == Z flip(op) term
			a.addBound(cmp.Op.Flip(), cmp.Left)
		default:
			a.filters = append(a.filters, cmp)
		}
	}
	return a, nil
}

// addBound records "Z op term".
func (a *Analysis) addBound(op ast.CompOp, term ast.Term) {
	switch op {
	case ast.Lt:
		a.uppers = append(a.uppers, boundTerm{term: term, strict: true})
	case ast.Le:
		a.uppers = append(a.uppers, boundTerm{term: term})
	case ast.Gt:
		a.lowers = append(a.lowers, boundTerm{term: term, strict: true})
	case ast.Ge:
		a.lowers = append(a.lowers, boundTerm{term: term})
	case ast.Eq:
		a.lowers = append(a.lowers, boundTerm{term: term})
		a.uppers = append(a.uppers, boundTerm{term: term})
	case ast.Ne:
		a.nes = append(a.nes, term)
	}
}

// termValue resolves a bound term against a local tuple.
func (a *Analysis) termValue(t relation.Tuple, term ast.Term) (ast.Value, error) {
	if term.IsConst() {
		return term.Const, nil
	}
	col, ok := a.colOf[term.Var]
	if !ok {
		return ast.Value{}, fmt.Errorf("icq: comparison variable %s is neither local nor the remote variable", term.Var)
	}
	return t[col], nil
}

// IntervalsFor returns the forbidden intervals the local tuple imposes on
// the remote variable: the intersection of all bounds, minus the <>
// points, subject to the tuple passing the local-only filters. The result
// may be empty (the tuple forbids nothing).
func (a *Analysis) IntervalsFor(t relation.Tuple) ([]Interval, error) {
	if len(t) != a.CQC.LocalAtom().Arity() {
		return nil, fmt.Errorf("icq: tuple arity %d does not match local atom", len(t))
	}
	if a.unsat {
		return nil, nil
	}
	for _, f := range a.filters {
		lv, err := a.termValue(t, f.Left)
		if err != nil {
			return nil, err
		}
		rv, err := a.termValue(t, f.Right)
		if err != nil {
			return nil, err
		}
		if !f.Op.Eval(lv, rv) {
			return nil, nil // filters fail: nothing forbidden
		}
	}
	iv := Interval{Lo: Unbounded(), Hi: Unbounded()}
	for _, b := range a.lowers {
		v, err := a.termValue(t, b.term)
		if err != nil {
			return nil, err
		}
		iv = iv.Intersect(Interval{Lo: Endpoint{Value: v, Open: b.strict}, Hi: Unbounded()})
	}
	for _, b := range a.uppers {
		v, err := a.termValue(t, b.term)
		if err != nil {
			return nil, err
		}
		iv = iv.Intersect(Interval{Lo: Unbounded(), Hi: Endpoint{Value: v, Open: b.strict}})
	}
	out := []Interval{iv}
	for _, ne := range a.nes {
		v, err := a.termValue(t, ne)
		if err != nil {
			return nil, err
		}
		var next []Interval
		for _, piece := range out {
			next = append(next, piece.SubtractPoint(v)...)
		}
		out = next
	}
	var live []Interval
	for _, piece := range out {
		if !piece.Empty() {
			live = append(live, piece)
		}
	}
	return live, nil
}

// CertifyInsert is the complete local test, direct route: inserting t is
// safe (cannot newly violate the constraint, which held before) iff every
// forbidden interval of t is covered by the union of the forbidden
// intervals of the existing local tuples L.
func (a *Analysis) CertifyInsert(t relation.Tuple, L []relation.Tuple) (bool, error) {
	targets, err := a.IntervalsFor(t)
	if err != nil {
		return false, err
	}
	if len(targets) == 0 {
		return true, nil
	}
	var existing []Interval
	for _, s := range L {
		ivs, err := a.IntervalsFor(s)
		if err != nil {
			return false, err
		}
		existing = append(existing, ivs...)
	}
	for _, target := range targets {
		if !Covers(existing, target) {
			return false, nil
		}
	}
	return true, nil
}
