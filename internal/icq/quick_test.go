package icq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// genInterval draws a random small-integer interval, possibly open or
// half-infinite.
type genInterval Interval

func (genInterval) Generate(rng *rand.Rand, _ int) reflect.Value {
	mk := func() Endpoint {
		if rng.Intn(8) == 0 {
			return Unbounded()
		}
		return Endpoint{Value: ast.Int(int64(rng.Intn(12))), Open: rng.Intn(2) == 0}
	}
	return reflect.ValueOf(genInterval{Lo: mk(), Hi: mk()})
}

func TestQuickCoversMonotoneInSet(t *testing.T) {
	// Adding intervals to the covering set never loses coverage.
	f := func(a, b, c genInterval, tgt genInterval) bool {
		set := []Interval{Interval(a), Interval(b)}
		target := Interval(tgt)
		if Covers(set, target) {
			return Covers(append(set, Interval(c)), target)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoversSelf(t *testing.T) {
	// Every interval covers itself.
	f := func(a genInterval) bool {
		return Covers([]Interval{Interval(a)}, Interval(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoversIntersectionInside(t *testing.T) {
	// a ∩ b is covered by {a} (and by {b}).
	f := func(a, b genInterval) bool {
		x := Interval(a).Intersect(Interval(b))
		return Covers([]Interval{Interval(a)}, x) && Covers([]Interval{Interval(b)}, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionPreservesCoverage(t *testing.T) {
	// The normalized union covers exactly what the raw set covers, for
	// sampled targets.
	f := func(a, b, c genInterval, tgt genInterval) bool {
		set := []Interval{Interval(a), Interval(b), Interval(c)}
		u := Union(set)
		target := Interval(tgt)
		return Covers(set, target) == Covers(u, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsConsistentWithEmpty(t *testing.T) {
	// An interval is empty iff it contains no grid point (half-integer
	// grid is dense enough for integer endpoints within range).
	f := func(a genInterval) bool {
		iv := Interval(a)
		any := false
		for z := int64(-4); z <= 28; z++ {
			if iv.Contains(ast.Rat(z, 2)) {
				any = true
				break
			}
		}
		if iv.Lo.Inf || iv.Hi.Inf {
			// Half-infinite intervals always contain far-out points.
			return !iv.Empty()
		}
		return any == !iv.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractPointNeverContainsPoint(t *testing.T) {
	f := func(a genInterval, p uint8) bool {
		v := ast.Int(int64(p % 12))
		for _, piece := range Interval(a).SubtractPoint(v) {
			if piece.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
