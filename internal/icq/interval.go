// Package icq implements Section 6 of the paper: independently
// constrained queries and their complete local tests. For the canonical
// single-remote-variable case it provides
//
//   - interval analysis: the forbidden interval(s) a local tuple imposes
//     on the remote variable, with open, closed and infinite endpoints
//     (the generalizations called out in the proof of Theorem 6.1);
//   - a direct sort-and-sweep coverage decision (the engineered
//     equivalent of the paper's construction);
//   - a generator for the recursive datalog program of Fig 6.1,
//     generalized to open/closed/infinite endpoints, evaluated by
//     internal/eval (Theorem 6.1's constructive route).
package icq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Endpoint is one end of an interval over the dense constant order.
// Inf means the end is at (-∞ for a low end, +∞ for a high end);
// otherwise Value carries the finite endpoint and Open whether the
// endpoint itself is excluded.
type Endpoint struct {
	Inf   bool
	Value ast.Value
	Open  bool
}

// Closed returns a finite closed endpoint.
func Closed(v ast.Value) Endpoint { return Endpoint{Value: v} }

// Open returns a finite open endpoint.
func Open(v ast.Value) Endpoint { return Endpoint{Value: v, Open: true} }

// Unbounded returns an infinite endpoint.
func Unbounded() Endpoint { return Endpoint{Inf: true} }

// Interval is a (possibly empty, possibly half-infinite) interval.
type Interval struct {
	Lo, Hi Endpoint
}

// IntervalCC is the closed interval [lo, hi].
func IntervalCC(lo, hi ast.Value) Interval { return Interval{Lo: Closed(lo), Hi: Closed(hi)} }

// Empty reports whether the interval contains no point of the dense
// order.
func (iv Interval) Empty() bool {
	if iv.Lo.Inf || iv.Hi.Inf {
		return false
	}
	c := iv.Lo.Value.Compare(iv.Hi.Value)
	if c > 0 {
		return true
	}
	if c == 0 {
		return iv.Lo.Open || iv.Hi.Open
	}
	return false
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v ast.Value) bool {
	if !iv.Lo.Inf {
		c := iv.Lo.Value.Compare(v)
		if c > 0 || c == 0 && iv.Lo.Open {
			return false
		}
	}
	if !iv.Hi.Inf {
		c := v.Compare(iv.Hi.Value)
		if c > 0 || c == 0 && iv.Hi.Open {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: maxLo(iv.Lo, other.Lo), Hi: minHi(iv.Hi, other.Hi)}
}

// maxLo picks the more restrictive (larger) of two low endpoints.
func maxLo(a, b Endpoint) Endpoint {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	}
	c := a.Value.Compare(b.Value)
	switch {
	case c > 0:
		return a
	case c < 0:
		return b
	default:
		if a.Open || b.Open {
			return Endpoint{Value: a.Value, Open: true}
		}
		return a
	}
}

// minHi picks the more restrictive (smaller) of two high endpoints.
func minHi(a, b Endpoint) Endpoint {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	}
	c := a.Value.Compare(b.Value)
	switch {
	case c < 0:
		return a
	case c > 0:
		return b
	default:
		if a.Open || b.Open {
			return Endpoint{Value: a.Value, Open: true}
		}
		return a
	}
}

// SubtractPoint removes one point from the interval, yielding up to two
// pieces (used to eliminate <> comparisons, per the Theorem 6.1 proof).
func (iv Interval) SubtractPoint(v ast.Value) []Interval {
	if iv.Empty() || !iv.Contains(v) {
		if iv.Empty() {
			return nil
		}
		return []Interval{iv}
	}
	var out []Interval
	left := Interval{Lo: iv.Lo, Hi: Open(v)}
	right := Interval{Lo: Open(v), Hi: iv.Hi}
	if !left.Empty() {
		out = append(out, left)
	}
	if !right.Empty() {
		out = append(out, right)
	}
	return out
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	var sb strings.Builder
	if iv.Lo.Inf {
		sb.WriteString("(-inf")
	} else if iv.Lo.Open {
		sb.WriteString("(" + iv.Lo.Value.String())
	} else {
		sb.WriteString("[" + iv.Lo.Value.String())
	}
	sb.WriteString(",")
	if iv.Hi.Inf {
		sb.WriteString("+inf)")
	} else if iv.Hi.Open {
		sb.WriteString(iv.Hi.Value.String() + ")")
	} else {
		sb.WriteString(iv.Hi.Value.String() + "]")
	}
	return sb.String()
}

// cut is a position in the dense order used by the coverage sweep: all
// points strictly below value, plus the value itself when inclusive, are
// covered. negInf marks "nothing covered yet"; posInf "everything".
type cut struct {
	negInf    bool
	posInf    bool
	value     ast.Value
	inclusive bool
}

// reaches reports whether coverage up to c suffices to cover everything
// up to (and per openness, including) the target high endpoint.
func (c cut) reaches(hi Endpoint) bool {
	if c.posInf {
		return true
	}
	if c.negInf {
		return false
	}
	if hi.Inf {
		return false
	}
	cmp := c.value.Compare(hi.Value)
	if cmp > 0 {
		return true
	}
	if cmp < 0 {
		return false
	}
	return c.inclusive || hi.Open
}

// connects reports whether an interval starting at lo continues coverage
// from c without a gap (its low end does not leave uncovered points).
func (c cut) connects(lo Endpoint) bool {
	if lo.Inf {
		return true
	}
	if c.posInf {
		return true
	}
	if c.negInf {
		return false
	}
	cmp := lo.Value.Compare(c.value)
	if cmp < 0 {
		return true
	}
	if cmp > 0 {
		return false
	}
	// Equal values: covered so far up to value (inclusive?); the next
	// interval starts at value (open?). A gap appears only when the
	// frontier excludes the point and the interval's low end excludes it
	// too.
	return c.inclusive || !lo.Open
}

// extend advances the frontier to the interval's high end if further.
func (c cut) extend(hi Endpoint) cut {
	if hi.Inf {
		return cut{posInf: true}
	}
	if c.posInf {
		return c
	}
	n := cut{value: hi.Value, inclusive: !hi.Open}
	if c.negInf {
		return n
	}
	cmp := c.value.Compare(hi.Value)
	switch {
	case cmp > 0:
		return c
	case cmp < 0:
		return n
	default:
		return cut{value: c.value, inclusive: c.inclusive || n.inclusive}
	}
}

// startCut is the frontier just before the target's low end: everything
// strictly below is irrelevant.
func startCut(lo Endpoint) cut {
	if lo.Inf {
		return cut{negInf: true}
	}
	// Covered "up to but excluding lo" when lo is closed (the point lo
	// still needs covering); covered "up to and including lo" when lo is
	// open (the point itself is not needed).
	return cut{value: lo.Value, inclusive: lo.Open}
}

// Covers reports whether the union of the given intervals includes every
// point of target, by a sort-and-sweep over the dense order. An empty
// target is covered vacuously.
func Covers(set []Interval, target Interval) bool {
	if target.Empty() {
		return true
	}
	live := make([]Interval, 0, len(set))
	for _, iv := range set {
		if !iv.Empty() {
			live = append(live, iv)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return loLess(live[i].Lo, live[j].Lo) })
	frontier := startCut(target.Lo)
	for _, iv := range live {
		if frontier.reaches(target.Hi) {
			return true
		}
		if !frontier.connects(iv.Lo) {
			// Sorted by low end: every later interval starts at or after
			// this one, so the gap at the frontier is permanent.
			return false
		}
		frontier = frontier.extend(iv.Hi)
	}
	return frontier.reaches(target.Hi)
}

// loLess orders low endpoints: -∞ first, then by value, open after
// closed (an open start covers less).
func loLess(a, b Endpoint) bool {
	if a.Inf || b.Inf {
		return a.Inf && !b.Inf
	}
	c := a.Value.Compare(b.Value)
	if c != 0 {
		return c < 0
	}
	return !a.Open && b.Open
}

// Union normalizes a set of intervals into disjoint maximal intervals in
// ascending order (exported for diagnostics and the distributed example).
func Union(set []Interval) []Interval {
	live := make([]Interval, 0, len(set))
	for _, iv := range set {
		if !iv.Empty() {
			live = append(live, iv)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return loLess(live[i].Lo, live[j].Lo) })
	var out []Interval
	for _, iv := range live {
		if len(out) == 0 {
			out = append(out, iv)
			continue
		}
		last := &out[len(out)-1]
		frontier := cut{negInf: true}.extend(last.Hi)
		if frontier.connects(iv.Lo) {
			last.Hi = maxHi(last.Hi, iv.Hi)
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// maxHi picks the more generous (larger) of two high endpoints.
func maxHi(a, b Endpoint) Endpoint {
	if a.Inf || b.Inf {
		return Endpoint{Inf: true}
	}
	c := a.Value.Compare(b.Value)
	switch {
	case c > 0:
		return a
	case c < 0:
		return b
	default:
		if !a.Open || !b.Open {
			return Endpoint{Value: a.Value}
		}
		return a
	}
}

var _ = fmt.Stringer(Interval{})
