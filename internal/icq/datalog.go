package icq

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/store"
)

// Datalog predicate names for the covered-interval relations. Following
// the proof of Theorem 6.1 there are up to eight interval predicates: one
// per combination of endpoint kinds (closed/open/infinite at each end,
// minus the double-infinite split). '$' keeps them outside the parseable
// user namespace.
const (
	predCC = "iv$cc" // [X,Y]
	predCO = "iv$co" // [X,Y)
	predOC = "iv$oc" // (X,Y]
	predOO = "iv$oo" // (X,Y)
	predNC = "iv$nc" // (-inf,Y]
	predNO = "iv$no" // (-inf,Y)
	predCN = "iv$cn" // [X,+inf)
	predON = "iv$on" // (X,+inf)
	predNN = "iv$nn" // (-inf,+inf)
	predOK = "ok$"   // the complete local test's goal
)

func finitePred(leftOpen, rightOpen bool) string {
	switch {
	case !leftOpen && !rightOpen:
		return predCC
	case !leftOpen:
		return predCO
	case !rightOpen:
		return predOC
	default:
		return predOO
	}
}

func leftInfPred(rightOpen bool) string {
	if rightOpen {
		return predNO
	}
	return predNC
}

func rightInfPred(leftOpen bool) string {
	if leftOpen {
		return predON
	}
	return predCN
}

// predNames selects the predicate vocabulary a rule generator writes
// into: the derived iv$* family or the basis-only ivb$* family used by
// the linear program variant.
type predNames struct {
	finite   func(leftOpen, rightOpen bool) string
	leftInf  func(rightOpen bool) string
	rightInf func(leftOpen bool) string
	nn       string
}

var derivedNames = predNames{finitePred, leftInfPred, rightInfPred, predNN}

var basisNames = predNames{
	finite:   func(l, r bool) string { return "ivb$" + finitePred(l, r)[3:] },
	leftInf:  func(r bool) string { return "ivb$" + leftInfPred(r)[3:] },
	rightInf: func(l bool) string { return "ivb$" + rightInfPred(l)[3:] },
	nn:       "ivb$nn",
}

// GenerateProgram builds the recursive datalog program of Fig 6.1,
// generalized to open/closed/infinite endpoints and to several competing
// bounds (one basis rule per choice of dominating lower and upper bound,
// with subgoals checking the presumed order, exactly as the Theorem 6.1
// proof prescribes). The program derives the covered-interval predicates
// from the local relation; AddCoverageQuery attaches the ok$ rule for a
// concrete inserted tuple.
//
// Constraints whose remote variable carries <> comparisons are rejected
// here (their forbidden regions are unions of intervals; the proof
// eliminates <> by splitting the ICQ — use the direct CertifyInsert,
// which performs that split).
func (a *Analysis) GenerateProgram() (*ast.Program, error) {
	prog, err := a.generateBasis(derivedNames)
	if err != nil {
		return nil, err
	}
	prog.Rules = append(prog.Rules, mergeRules(derivedNames)...)
	return prog, nil
}

// GenerateProgramLinear is the engineered variant of Fig 6.1 used for
// the ablation benchmark: basis intervals land in separate ivb$*
// predicates, and the merge rules extend a derived interval by a basis
// interval only (linear recursion) instead of merging two derived
// intervals (the paper's nonlinear rule (2)). Coverage answers are
// identical — a chain of basis intervals covering the target is absorbed
// left to right, so every prefix hull is derivable — but the recursive
// join shrinks from derived×derived to derived×basis.
func (a *Analysis) GenerateProgramLinear() (*ast.Program, error) {
	prog, err := a.generateBasis(basisNames)
	if err != nil {
		return nil, err
	}
	// Copy rules: every basis interval is a covered interval.
	x, y := ast.V("X"), ast.V("Y")
	bools := []bool{false, true}
	for _, b1 := range bools {
		for _, b2 := range bools {
			prog.Rules = append(prog.Rules, ast.NewRule(
				ast.NewAtom(finitePred(b1, b2), x, y),
				ast.Pos(ast.NewAtom(basisNames.finite(b1, b2), x, y))))
		}
		prog.Rules = append(prog.Rules,
			ast.NewRule(ast.NewAtom(leftInfPred(b1), y), ast.Pos(ast.NewAtom(basisNames.leftInf(b1), y))),
			ast.NewRule(ast.NewAtom(rightInfPred(b1), x), ast.Pos(ast.NewAtom(basisNames.rightInf(b1), x))))
	}
	prog.Rules = append(prog.Rules, ast.NewRule(ast.NewAtom(predNN), ast.Pos(ast.NewAtom(basisNames.nn))))
	prog.Rules = append(prog.Rules, mergeRules(basisNames)...)
	return prog, nil
}

// generateBasis emits the basis rules (rule (1) of Fig 6.1, generalized):
// one rule per choice of dominating lower and upper bound, writing heads
// into the given predicate vocabulary.
func (a *Analysis) generateBasis(names predNames) (*ast.Program, error) {
	if a.unsat {
		return nil, fmt.Errorf("icq: constraint can never fire; no program needed")
	}
	if len(a.nes) > 0 {
		return nil, fmt.Errorf("icq: datalog generation does not support <> on the remote variable; use CertifyInsert")
	}
	prog := &ast.Program{}
	local := a.CQC.LocalAtom()

	type choice struct {
		term   ast.Term
		strict bool
		used   bool
	}
	lowerChoices := []choice{{used: false}}
	if len(a.lowers) > 0 {
		lowerChoices = nil
		for i := range a.lowers {
			lowerChoices = append(lowerChoices, choice{term: a.lowers[i].term, strict: a.lowers[i].strict, used: true})
		}
	}
	upperChoices := []choice{{used: false}}
	if len(a.uppers) > 0 {
		upperChoices = nil
		for i := range a.uppers {
			upperChoices = append(upperChoices, choice{term: a.uppers[i].term, strict: a.uppers[i].strict, used: true})
		}
	}
	// dominance returns the subgoals asserting that the chosen bound is
	// the effective one among all candidates.
	dominance := func(chosen choice, all []boundTerm, lower bool) []ast.Literal {
		var out []ast.Literal
		for _, other := range all {
			if other.term.Equal(chosen.term) && other.strict == chosen.strict {
				continue
			}
			// For lower bounds the effective bound is the max; ties go to
			// the strict (open) one. For upper bounds, the min.
			var op ast.CompOp
			if chosen.strict || !other.strict {
				op = ast.Ge // chosen >= other suffices on ties
			} else {
				op = ast.Gt
			}
			if !lower {
				op = op.Flip()
			}
			out = append(out, ast.Cmp(ast.NewComparison(chosen.term, op, other.term)))
		}
		return out
	}
	for _, lc := range lowerChoices {
		for _, uc := range upperChoices {
			body := []ast.Literal{ast.Pos(local)}
			for _, f := range a.filters {
				body = append(body, ast.Cmp(f))
			}
			body = append(body, dominance(lc, a.lowers, true)...)
			body = append(body, dominance(uc, a.uppers, false)...)
			var head ast.Atom
			switch {
			case lc.used && uc.used:
				head = ast.Atom{Pred: names.finite(lc.strict, uc.strict), Args: []ast.Term{lc.term, uc.term}}
			case uc.used:
				head = ast.Atom{Pred: names.leftInf(uc.strict), Args: []ast.Term{uc.term}}
			case lc.used:
				head = ast.Atom{Pred: names.rightInf(lc.strict), Args: []ast.Term{lc.term}}
			default:
				head = ast.Atom{Pred: names.nn}
			}
			prog.Rules = append(prog.Rules, &ast.Rule{Head: head, Body: body})
		}
	}
	return prog, nil
}

// mergeRules is the generalized rule (2) of Fig 6.1: overlapping or
// compatibly touching covered intervals merge into their hull. Two
// intervals I1 (ending at W, openness b2) and I2 (starting at Z, openness
// b3) merge when Z < W, or Z = W and at least one of the meeting
// endpoints is closed. The first operand and the head use the derived
// vocabulary; the second operand uses the given one (derived for the
// paper's nonlinear program, basis for the linear variant).
func mergeRules(second predNames) []*ast.Rule {
	x, y, z, w := ast.V("X"), ast.V("Y"), ast.V("Z"), ast.V("W")
	var rules []*ast.Rule
	bools := []bool{false, true}
	overlapVariants := func(b2, b3 bool) [][]ast.Literal {
		variants := [][]ast.Literal{
			{ast.Cmp(ast.NewComparison(z, ast.Lt, w))},
		}
		if !b2 || !b3 {
			variants = append(variants, []ast.Literal{ast.Cmp(ast.NewComparison(z, ast.Eq, w))})
		}
		return variants
	}
	// finite + finite -> finite
	for _, b1 := range bools {
		for _, b2 := range bools {
			for _, b3 := range bools {
				for _, b4 := range bools {
					for _, ov := range overlapVariants(b2, b3) {
						body := []ast.Literal{
							ast.Pos(ast.NewAtom(finitePred(b1, b2), x, w)),
							ast.Pos(ast.NewAtom(second.finite(b3, b4), z, y)),
						}
						body = append(body, ov...)
						rules = append(rules, &ast.Rule{
							Head: ast.NewAtom(finitePred(b1, b4), x, y),
							Body: body,
						})
					}
				}
			}
		}
	}
	// left-infinite + finite -> left-infinite
	for _, b2 := range bools {
		for _, b3 := range bools {
			for _, b4 := range bools {
				for _, ov := range overlapVariants(b2, b3) {
					body := []ast.Literal{
						ast.Pos(ast.NewAtom(leftInfPred(b2), w)),
						ast.Pos(ast.NewAtom(second.finite(b3, b4), z, y)),
					}
					body = append(body, ov...)
					rules = append(rules, &ast.Rule{Head: ast.NewAtom(leftInfPred(b4), y), Body: body})
				}
			}
		}
	}
	// finite + right-infinite -> right-infinite
	for _, b1 := range bools {
		for _, b2 := range bools {
			for _, b3 := range bools {
				for _, ov := range overlapVariants(b2, b3) {
					body := []ast.Literal{
						ast.Pos(ast.NewAtom(finitePred(b1, b2), x, w)),
						ast.Pos(ast.NewAtom(second.rightInf(b3), z)),
					}
					body = append(body, ov...)
					rules = append(rules, &ast.Rule{Head: ast.NewAtom(rightInfPred(b1), x), Body: body})
				}
			}
		}
	}
	// left-infinite + right-infinite -> everything
	for _, b2 := range bools {
		for _, b3 := range bools {
			for _, ov := range overlapVariants(b2, b3) {
				body := []ast.Literal{
					ast.Pos(ast.NewAtom(leftInfPred(b2), w)),
					ast.Pos(ast.NewAtom(second.rightInf(b3), z)),
				}
				body = append(body, ov...)
				rules = append(rules, &ast.Rule{Head: ast.NewAtom(predNN), Body: body})
			}
		}
	}
	return rules
}

// AddCoverageQuery appends the rule (3) of Fig 6.1 for a concrete target
// interval: ok$ holds iff some derived covered interval includes the
// target. The comparisons are chosen from the endpoint opennesses so
// that open/closed boundaries match exactly.
func AddCoverageQuery(prog *ast.Program, target Interval) {
	x, y := ast.V("X"), ast.V("Y")
	leftCond := func(b1 bool) ast.Literal {
		op := ast.Lt
		if !b1 || target.Lo.Open {
			op = ast.Le
		}
		return ast.Cmp(ast.NewComparison(x, op, ast.C(target.Lo.Value)))
	}
	rightCond := func(b2 bool) ast.Literal {
		op := ast.Lt
		if !b2 || target.Hi.Open {
			op = ast.Le
		}
		return ast.Cmp(ast.NewComparison(ast.C(target.Hi.Value), op, y))
	}
	ok := ast.NewAtom(predOK)
	bools := []bool{false, true}
	switch {
	case target.Lo.Inf && target.Hi.Inf:
		// only iv$nn covers
	case target.Lo.Inf:
		for _, b2 := range bools {
			prog.Rules = append(prog.Rules, &ast.Rule{Head: ok, Body: []ast.Literal{
				ast.Pos(ast.NewAtom(leftInfPred(b2), y)), rightCond(b2),
			}})
		}
	case target.Hi.Inf:
		for _, b1 := range bools {
			prog.Rules = append(prog.Rules, &ast.Rule{Head: ok, Body: []ast.Literal{
				ast.Pos(ast.NewAtom(rightInfPred(b1), x)), leftCond(b1),
			}})
		}
	default:
		for _, b1 := range bools {
			for _, b2 := range bools {
				prog.Rules = append(prog.Rules, &ast.Rule{Head: ok, Body: []ast.Literal{
					ast.Pos(ast.NewAtom(finitePred(b1, b2), x, y)), leftCond(b1), rightCond(b2),
				}})
			}
			prog.Rules = append(prog.Rules, &ast.Rule{Head: ok, Body: []ast.Literal{
				ast.Pos(ast.NewAtom(leftInfPred(b1), y)), rightCond(b1),
			}})
			prog.Rules = append(prog.Rules, &ast.Rule{Head: ok, Body: []ast.Literal{
				ast.Pos(ast.NewAtom(rightInfPred(b1), x)), leftCond(b1),
			}})
		}
	}
	prog.Rules = append(prog.Rules, &ast.Rule{Head: ok, Body: []ast.Literal{
		ast.Pos(ast.NewAtom(predNN)),
	}})
}

// CertifyInsertDatalog runs the Theorem 6.1 complete local test through
// the generated recursive datalog program (the paper's nonlinear Fig 6.1
// form), evaluated bottom-up over the store holding the (pre-insertion)
// local relation. It must agree with CertifyInsert everywhere it applies.
func (a *Analysis) CertifyInsertDatalog(t relation.Tuple, db *store.Store) (bool, error) {
	return a.certifyDatalog(t, db, (*Analysis).GenerateProgram)
}

// CertifyInsertDatalogLinear is CertifyInsertDatalog over the linear
// program variant (the ablation of the nonlinear merge rule).
func (a *Analysis) CertifyInsertDatalogLinear(t relation.Tuple, db *store.Store) (bool, error) {
	return a.certifyDatalog(t, db, (*Analysis).GenerateProgramLinear)
}

func (a *Analysis) certifyDatalog(t relation.Tuple, db *store.Store, gen func(*Analysis) (*ast.Program, error)) (bool, error) {
	targets, err := a.IntervalsFor(t)
	if err != nil {
		return false, err
	}
	if len(targets) == 0 {
		return true, nil
	}
	base, err := gen(a)
	if err != nil {
		return false, err
	}
	for _, target := range targets {
		prog := base.Clone()
		AddCoverageQuery(prog, target)
		res, err := eval.Eval(prog, db)
		if err != nil {
			return false, err
		}
		if !res.Holds(predOK) {
			return false, nil
		}
	}
	return true, nil
}
