package icq

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func iv(lo, hi int64) Interval { return IntervalCC(ast.Int(lo), ast.Int(hi)) }

func TestIntervalBasics(t *testing.T) {
	if iv(3, 6).Empty() {
		t.Error("[3,6] empty")
	}
	if !iv(6, 3).Empty() {
		t.Error("[6,3] not empty")
	}
	half := Interval{Lo: Closed(ast.Int(3)), Hi: Open(ast.Int(3))}
	if !half.Empty() {
		t.Error("[3,3) not empty")
	}
	point := iv(3, 3)
	if point.Empty() || !point.Contains(ast.Int(3)) {
		t.Error("[3,3] wrong")
	}
	open := Interval{Lo: Open(ast.Int(3)), Hi: Open(ast.Int(6))}
	if open.Contains(ast.Int(3)) || open.Contains(ast.Int(6)) || !open.Contains(ast.Int(4)) {
		t.Error("(3,6) membership wrong")
	}
	inf := Interval{Lo: Unbounded(), Hi: Closed(ast.Int(0))}
	if !inf.Contains(ast.Int(-1000)) || inf.Contains(ast.Int(1)) {
		t.Error("(-inf,0] membership wrong")
	}
}

func TestIntervalIntersectSubtract(t *testing.T) {
	got := iv(3, 10).Intersect(iv(5, 20))
	if got.Lo.Value.Compare(ast.Int(5)) != 0 || got.Hi.Value.Compare(ast.Int(10)) != 0 {
		t.Errorf("intersection = %v", got)
	}
	// Mixed openness at equal values: open wins.
	a := Interval{Lo: Closed(ast.Int(3)), Hi: Closed(ast.Int(6))}
	b := Interval{Lo: Open(ast.Int(3)), Hi: Unbounded()}
	if x := a.Intersect(b); !x.Lo.Open {
		t.Errorf("intersection low end should be open: %v", x)
	}
	pieces := iv(3, 6).SubtractPoint(ast.Int(4))
	if len(pieces) != 2 || !pieces[0].Hi.Open || !pieces[1].Lo.Open {
		t.Errorf("SubtractPoint = %v", pieces)
	}
	if got := iv(3, 3).SubtractPoint(ast.Int(3)); len(got) != 0 {
		t.Errorf("subtracting the only point: %v", got)
	}
	if got := iv(3, 6).SubtractPoint(ast.Int(9)); len(got) != 1 {
		t.Errorf("subtracting outside point: %v", got)
	}
}

func TestCoversExample53(t *testing.T) {
	set := []Interval{iv(3, 6), iv(5, 10)}
	if !Covers(set, iv(4, 8)) {
		t.Error("[3,6] ∪ [5,10] must cover [4,8]")
	}
	if Covers([]Interval{iv(3, 6), iv(7, 10)}, iv(4, 8)) {
		t.Error("coverage across gap (6,7)")
	}
}

func TestCoversTouchingEndpoints(t *testing.T) {
	// [1,2) ∪ [2,3] covers [1,3]; (1,2) ∪ (2,3) leaves 2 uncovered.
	a := Interval{Lo: Closed(ast.Int(1)), Hi: Open(ast.Int(2))}
	b := Interval{Lo: Closed(ast.Int(2)), Hi: Closed(ast.Int(3))}
	if !Covers([]Interval{a, b}, iv(1, 3)) {
		t.Error("half-open chain must cover")
	}
	c := Interval{Lo: Open(ast.Int(1)), Hi: Open(ast.Int(2))}
	d := Interval{Lo: Open(ast.Int(2)), Hi: Open(ast.Int(3))}
	target := Interval{Lo: Open(ast.Int(1)), Hi: Open(ast.Int(3))}
	if Covers([]Interval{c, d}, target) {
		t.Error("open intervals leave the touching point uncovered")
	}
	// Adding the point interval [2,2] fixes it.
	if !Covers([]Interval{c, d, iv(2, 2)}, target) {
		t.Error("point interval must close the gap")
	}
}

func TestCoversInfinite(t *testing.T) {
	all := Interval{Lo: Unbounded(), Hi: Unbounded()}
	if !Covers([]Interval{all}, iv(-100, 100)) {
		t.Error("full line covers everything")
	}
	left := Interval{Lo: Unbounded(), Hi: Closed(ast.Int(0))}
	right := Interval{Lo: Closed(ast.Int(0)), Hi: Unbounded()}
	if !Covers([]Interval{left, right}, all) {
		t.Error("two half-lines cover the line")
	}
	rightOpen := Interval{Lo: Open(ast.Int(0)), Hi: Unbounded()}
	leftOpen := Interval{Lo: Unbounded(), Hi: Open(ast.Int(0))}
	if Covers([]Interval{leftOpen, rightOpen}, all) {
		t.Error("open half-lines leave 0 uncovered")
	}
}

func TestCoversOpenTarget(t *testing.T) {
	// (3,6) is covered by [4,6] ∪ (3,4]; and by (3,6) itself.
	target := Interval{Lo: Open(ast.Int(3)), Hi: Open(ast.Int(6))}
	if !Covers([]Interval{{Lo: Open(ast.Int(3)), Hi: Closed(ast.Int(4))}, iv(4, 6)}, target) {
		t.Error("open target not covered by matching pieces")
	}
	if Covers([]Interval{iv(4, 6)}, target) {
		t.Error("(3,4) region uncovered but claimed")
	}
}

func TestUnionNormalization(t *testing.T) {
	set := []Interval{iv(5, 10), iv(3, 6), iv(12, 14), iv(20, 20)}
	u := Union(set)
	if len(u) != 3 {
		t.Fatalf("Union = %v", u)
	}
	if u[0].Lo.Value.Compare(ast.Int(3)) != 0 || u[0].Hi.Value.Compare(ast.Int(10)) != 0 {
		t.Errorf("first merged = %v", u[0])
	}
}

func mustCQC(t *testing.T, src, local string) *ast.CQC {
	t.Helper()
	rule := parser.MustParseConstraint(src)
	c, err := ast.NewCQC(rule, local)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIsICQ(t *testing.T) {
	good := mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.", "l")
	if !IsICQ(good) {
		t.Error("forbidden intervals constraint not recognized as ICQ")
	}
	// Two remote variables compared with each other: not an ICQ.
	bad := mustCQC(t, "panic :- l(X) & r(Z,W) & Z < W & X <= Z.", "l")
	if IsICQ(bad) {
		t.Error("Z < W across remote variables accepted as ICQ")
	}
	// Equality between remote variables is allowed by the definition.
	eq := mustCQC(t, "panic :- l(X) & r(Z,W) & Z = W & X <= Z.", "l")
	if !IsICQ(eq) {
		t.Error("remote equality rejected")
	}
}

func TestAnalyzeIntervalsFor(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := a.IntervalsFor(relation.Ints(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].String() != "[3,6]" {
		t.Errorf("IntervalsFor(3,6) = %v", ivs)
	}
	// Inverted tuple: empty region.
	ivs, err = a.IntervalsFor(relation.Ints(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Errorf("IntervalsFor(6,3) = %v", ivs)
	}
}

func TestAnalyzeOpenAndHalfInfinite(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X) & r(Z) & X < Z.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := a.IntervalsFor(relation.Ints(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].String() != "(5,+inf)" {
		t.Errorf("IntervalsFor = %v", ivs)
	}
}

func TestAnalyzeEqualityAndNe(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X) & r(Z) & Z = X.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := a.IntervalsFor(relation.Ints(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].String() != "[7,7]" {
		t.Errorf("point region = %v", ivs)
	}
	b, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & Z <> X.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err = b.IntervalsFor(relation.Ints(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].String() != "(3,6]" {
		t.Errorf("ne-split region = %v", ivs)
	}
}

func TestAnalyzeFilters(t *testing.T) {
	// The X < Y filter must gate the tuple's contribution.
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & X < Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := a.IntervalsFor(relation.Ints(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Errorf("filtered tuple contributed %v", ivs)
	}
}

func TestCertifyInsertExample53(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	L := []relation.Tuple{relation.Ints(3, 6), relation.Ints(5, 10)}
	ok, err := a.CertifyInsert(relation.Ints(4, 8), L)
	if err != nil || !ok {
		t.Errorf("covered insertion: %v %v", ok, err)
	}
	ok, err = a.CertifyInsert(relation.Ints(2, 8), L)
	if err != nil || ok {
		t.Errorf("uncovered insertion certified: %v %v", ok, err)
	}
}

func TestDatalogAgainstDirect(t *testing.T) {
	// The Fig 6.1 datalog route and the direct sweep must agree across
	// randomized interval workloads, including open bounds.
	consts := []string{
		"panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.",
		"panic :- l(X,Y) & r(Z) & X < Z & Z <= Y.",
		"panic :- l(X,Y) & r(Z) & X <= Z & Z < Y.",
		"panic :- l(X,Y) & r(Z) & X < Z & Z < Y.",
		"panic :- l(X) & r(Z) & X <= Z.",
		"panic :- l(X) & r(Z) & Z < X.",
	}
	rng := rand.New(rand.NewSource(99))
	for _, src := range consts {
		a, err := Analyze(mustCQC(t, src, "l"))
		if err != nil {
			t.Fatal(err)
		}
		arity := a.CQC.LocalAtom().Arity()
		for trial := 0; trial < 30; trial++ {
			db := store.New()
			var L []relation.Tuple
			for i := 0; i < rng.Intn(5); i++ {
				var tu relation.Tuple
				if arity == 2 {
					lo := int64(rng.Intn(10))
					tu = relation.Ints(lo, lo+int64(rng.Intn(6)))
				} else {
					tu = relation.Ints(int64(rng.Intn(10)))
				}
				L = append(L, tu)
				if _, err := db.Insert("l", tu); err != nil {
					t.Fatal(err)
				}
			}
			var ins relation.Tuple
			if arity == 2 {
				ins = relation.Ints(int64(rng.Intn(10)), int64(rng.Intn(14)))
			} else {
				ins = relation.Ints(int64(rng.Intn(10)))
			}
			want, err := a.CertifyInsert(ins, L)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.CertifyInsertDatalog(ins, db)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: datalog=%v direct=%v (L=%v ins=%v)", src, got, want, L, ins)
			}
		}
	}
}

func TestDatalogMultipleBounds(t *testing.T) {
	// Two lower bounds: the effective interval is [max(X1,X2), Y]. The
	// generated program must carry one basis rule per dominating choice.
	a, err := Analyze(mustCQC(t, "panic :- l(X1,X2,Y) & r(Z) & X1 <= Z & X2 <= Z & Z <= Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := a.IntervalsFor(relation.Ints(2, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].String() != "[5,9]" {
		t.Errorf("max of lower bounds wrong: %v", ivs)
	}
	db := store.New()
	for _, tu := range []relation.Tuple{relation.Ints(2, 5, 9), relation.Ints(8, 1, 12)} {
		if _, err := db.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	// Effective intervals: [5,9] and [8,12]: their union covers [6,11].
	ok, err := a.CertifyInsertDatalog(relation.Ints(6, 6, 11), db)
	if err != nil || !ok {
		t.Errorf("multi-bound datalog certification: %v %v", ok, err)
	}
	// [6,13] escapes past 12.
	ok, err = a.CertifyInsertDatalog(relation.Ints(6, 6, 13), db)
	if err != nil || ok {
		t.Errorf("escaping interval certified: %v %v", ok, err)
	}
}

func TestDatalogRejectsNe(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y & Z <> X.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.GenerateProgram(); err == nil {
		t.Error("<> on remote variable accepted by datalog generator")
	}
	// But the direct route handles it.
	ok, err := a.CertifyInsert(relation.Ints(4, 8),
		[]relation.Tuple{relation.Ints(3, 6), relation.Ints(5, 10)})
	if err != nil || !ok {
		t.Errorf("direct route with <>: %v %v", ok, err)
	}
}

func TestGeneratedProgramShape(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.GenerateProgram()
	if err != nil {
		t.Fatal(err)
	}
	// One basis rule (both endpoints closed) plus the merge rules.
	basis := 0
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsPos() && l.Atom.Pred == "l" {
				basis++
			}
		}
	}
	if basis != 1 {
		t.Errorf("basis rules = %d, want 1", basis)
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("generated program invalid: %v", err)
	}
}

func TestCoversRandomizedAgainstPointSampling(t *testing.T) {
	// Property test: Covers agrees with dense point sampling on a
	// half-integer grid (sufficient for integer-endpoint intervals).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		var set []Interval
		for i := 0; i < rng.Intn(5); i++ {
			lo := int64(rng.Intn(12))
			hi := lo + int64(rng.Intn(8))
			in := Interval{
				Lo: Endpoint{Value: ast.Int(lo), Open: rng.Intn(2) == 0},
				Hi: Endpoint{Value: ast.Int(hi), Open: rng.Intn(2) == 0},
			}
			set = append(set, in)
		}
		tlo := int64(rng.Intn(12))
		thi := tlo + int64(rng.Intn(8))
		target := Interval{
			Lo: Endpoint{Value: ast.Int(tlo), Open: rng.Intn(2) == 0},
			Hi: Endpoint{Value: ast.Int(thi), Open: rng.Intn(2) == 0},
		}
		got := Covers(set, target)
		want := true
		for zz := int64(-2); zz <= 44; zz++ {
			z := ast.Rat(zz, 2)
			if !target.Contains(z) {
				continue
			}
			inSet := false
			for _, in := range set {
				if in.Contains(z) {
					inSet = true
					break
				}
			}
			if !inSet {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: Covers=%v sampling=%v (set=%v target=%v)", trial, got, want, set, target)
		}
	}
}

func TestDatalogLinearAgainstNonlinear(t *testing.T) {
	// The linear ablation variant must agree with the paper's nonlinear
	// program (and hence with the direct sweep) everywhere.
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		db := store.New()
		var L []relation.Tuple
		for i := 0; i < rng.Intn(6); i++ {
			lo := int64(rng.Intn(12))
			tu := relation.Ints(lo, lo+int64(rng.Intn(6)))
			L = append(L, tu)
			if _, err := db.Insert("l", tu); err != nil {
				t.Fatal(err)
			}
		}
		ins := relation.Ints(int64(rng.Intn(12)), int64(rng.Intn(16)))
		nonlinear, err := a.CertifyInsertDatalog(ins, db)
		if err != nil {
			t.Fatal(err)
		}
		linear, err := a.CertifyInsertDatalogLinear(ins, db)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := a.CertifyInsert(ins, L)
		if err != nil {
			t.Fatal(err)
		}
		if nonlinear != linear || linear != direct {
			t.Fatalf("trial %d: nonlinear=%v linear=%v direct=%v (L=%v ins=%v)",
				trial, nonlinear, linear, direct, L, ins)
		}
	}
}

func TestDatalogLinearOpenBounds(t *testing.T) {
	a, err := Analyze(mustCQC(t, "panic :- l(X,Y) & r(Z) & X < Z & Z < Y.", "l"))
	if err != nil {
		t.Fatal(err)
	}
	db := store.New()
	L := []relation.Tuple{relation.Ints(0, 5), relation.Ints(4, 9)}
	for _, tu := range L {
		if _, err := db.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	// Forbidden: (0,5) ∪ (4,9) = (0,9); inserting (1,8) → (1,8) covered.
	ok, err := a.CertifyInsertDatalogLinear(relation.Ints(1, 8), db)
	if err != nil || !ok {
		t.Errorf("linear open-bounds coverage: %v %v", ok, err)
	}
	// (0,10) escapes past 9.
	ok, err = a.CertifyInsertDatalogLinear(relation.Ints(0, 10), db)
	if err != nil || ok {
		t.Errorf("linear open-bounds escape: %v %v", ok, err)
	}
}
