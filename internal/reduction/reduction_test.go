package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

// intervalCQC returns the forbidden-intervals constraint of Example 5.3:
// panic :- l(X,Y) & r(Z) & X<=Z & Z<=Y.
func intervalCQC(t *testing.T) *ast.CQC {
	t.Helper()
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	c, err := ast.NewCQC(rule, "l")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReduceExample53(t *testing.T) {
	c := intervalCQC(t)
	red, err := Reduce(c, relation.Ints(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	want := "panic :- r(Z) & 3 <= Z & Z <= 6."
	if got := red.String(); got != want {
		t.Errorf("RED((3,6)) = %q, want %q", got, want)
	}
}

func TestLocalTestExample53(t *testing.T) {
	// With L = {(3,6),(5,10)}, inserting (4,8) is safe; inserting (2,8)
	// or (4,12) is not.
	c := intervalCQC(t)
	L := []relation.Tuple{relation.Ints(3, 6), relation.Ints(5, 10)}
	ok, err := LocalTest(c, relation.Ints(4, 8), L)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("insertion of covered interval (4,8) not certified")
	}
	for _, bad := range []relation.Tuple{relation.Ints(2, 8), relation.Ints(4, 12), relation.Ints(11, 12)} {
		ok, err := LocalTest(c, bad, L)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("uncovered interval %v wrongly certified", bad)
		}
	}
}

func TestLocalTestEmptyInterval(t *testing.T) {
	// An empty interval (low > high) can never trap a remote value: safe
	// even with empty L (the reduction's comparisons are unsatisfiable).
	c := intervalCQC(t)
	ok, err := LocalTest(c, relation.Ints(9, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("empty interval not certified")
	}
}

// TestLocalTestSoundAndComplete cross-validates Theorem 5.2 against
// ground truth: the test certifies an insertion iff NO remote relation
// state violates the constraint after the update (given it held before).
// For the interval constraint the dangerous remote states are single
// points, so completeness is checkable by sweeping a grid of points.
func TestLocalTestSoundAndComplete(t *testing.T) {
	c := intervalCQC(t)
	rule := c.Rule
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Random local state.
		var L []relation.Tuple
		for i := 0; i < rng.Intn(4); i++ {
			lo := int64(rng.Intn(20))
			L = append(L, relation.Ints(lo, lo+int64(rng.Intn(10))))
		}
		ins := relation.Ints(int64(rng.Intn(20)), int64(rng.Intn(20)))
		got, err := LocalTest(c, ins, L)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: is there a remote point z (integers and
		// midpoints over the range) violating after insert but not
		// before? The constraint held before for those z not in any L
		// interval; after insert, z in ins-interval violates.
		danger := false
		for zz := int64(-2); zz <= 70 && !danger; zz++ {
			z := ast.Rat(zz, 2) // half-integer grid catches open gaps
			inOld := false
			for _, s := range L {
				if s[0].Compare(z) <= 0 && z.Compare(s[1]) <= 0 {
					inOld = true
					break
				}
			}
			if inOld {
				continue // constraint did not hold before for this z
			}
			if ins[0].Compare(z) <= 0 && z.Compare(ins[1]) <= 0 {
				danger = true
			}
		}
		if got == danger {
			t.Fatalf("trial %d: LocalTest=%v but danger=%v (L=%v, ins=%v)", trial, got, danger, L, ins)
		}
		// Double-check soundness against the evaluator for a sampled
		// remote state.
		if got {
			db := store.New()
			for _, s := range L {
				mustIns(t, db, "l", s)
			}
			mustIns(t, db, "l", ins)
			// Any remote point inside some old interval keeps the
			// constraint violated before AND after — skip those; pick a
			// point inside the inserted interval if the grid has one not
			// in old intervals: soundness says there is none.
			for zz := int64(-2); zz <= 70; zz++ {
				z := ast.Rat(zz, 2)
				inOld := false
				for _, s := range L {
					if s[0].Compare(z) <= 0 && z.Compare(s[1]) <= 0 {
						inOld = true
						break
					}
				}
				if inOld {
					continue
				}
				db2 := db.Clone()
				mustIns(t, db2, "r", relation.TupleOf(z))
				bad, err := eval.PanicHolds(ast.NewProgram(rule), db2)
				if err != nil {
					t.Fatal(err)
				}
				if bad {
					t.Fatalf("trial %d: certified insertion violated by remote z=%v", trial, z)
				}
			}
		}
	}
}

func mustIns(t *testing.T, db *store.Store, rel string, tu relation.Tuple) {
	t.Helper()
	if _, err := db.Insert(rel, tu); err != nil {
		t.Fatal(err)
	}
}

func TestLocalTestMulti(t *testing.T) {
	// A second constraint with a wider reach can certify an insertion
	// that the first alone cannot: C traps Z in [X,Y]; C2 traps Z in
	// [X-1, Y+1]... expressed as another interval constraint with shifted
	// bounds via comparisons.
	c := intervalCQC(t)
	// C2: panic :- l(X,Y) & r(Z) & X <= Z & Z <= W ... needs same local
	// pred; use a wider constraint: panic :- l(X,Y) & r(Z) & X-?: the
	// language has no arithmetic terms, so use a second constraint that
	// traps points NEAR the interval using strict bounds instead.
	rule2 := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z < Y.")
	c2, err := ast.NewCQC(rule2, "l")
	if err != nil {
		t.Fatal(err)
	}
	// L covers [0,10); inserting (0,10) is NOT certified by c alone
	// (point 10 escapes), and IS certified once c2's reductions join —
	// wait, c2's reductions are weaker. Instead verify the API: adding
	// others never flips a certified test to uncertified.
	L := []relation.Tuple{relation.Ints(0, 10)}
	ins := relation.Ints(2, 8)
	alone, err := LocalTest(c, ins, L)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := LocalTestMulti(c, []*ast.CQC{c2}, ins, L)
	if err != nil {
		t.Fatal(err)
	}
	if alone && !multi {
		t.Error("adding constraints lost a certification")
	}
	// Mismatched local predicates must be rejected.
	rule3 := parser.MustParseConstraint("panic :- m(X) & r(Z) & X <= Z.")
	c3, err := ast.NewCQC(rule3, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LocalTestMulti(c, []*ast.CQC{c3}, ins, L); err == nil {
		t.Error("mismatched local predicate accepted")
	}
}

func TestCompileRAExample54(t *testing.T) {
	// Example 5.4: C1: panic :- l(X,Y,Y) & r(Y,Z,X).
	rule := parser.MustParseConstraint("panic :- l(X,Y,Y) & r(Y,Z,X).")
	// Inserting (a,b,c): no unification with l(X,Y,Y) — trivially true.
	expr, err := CompileRA(rule, "l", relation.Strs("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := expr.Eval(store.New())
	if err != nil {
		t.Fatal(err)
	}
	if ok.Len() == 0 {
		t.Error("non-unifiable insertion must compile to a constantly true test")
	}
	// Inserting (a,b,b): the test is σ[#1=a ∧ #2=b ∧ #2=#3](L).
	expr, err = CompileRA(rule, "l", relation.Strs("a", "b", "b"))
	if err != nil {
		t.Fatal(err)
	}
	db := store.New()
	mustIns(t, db, "l", relation.Strs("a", "b", "b"))
	got, err := expr.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Errorf("test %s must pass when the tuple already exists", expr)
	}
	db2 := store.New()
	mustIns(t, db2, "l", relation.Strs("a", "c", "c"))
	got, err = expr.Eval(db2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("test %s must fail without the tuple", expr)
	}
}

// TestCompileRAAgainstGroundTruth cross-validates the compiled RA test
// against direct evaluation over randomized local and remote states: a
// certified insertion must never create a violation, and an uncertified
// one must have a violating remote state (completeness), which for
// arithmetic-free constraints we can verify by checking that the
// uncovered reduction's canonical remote state violates.
func TestCompileRAAgainstGroundTruth(t *testing.T) {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Y,W) & s(W,X).")
	prog := ast.NewProgram(rule)
	rng := rand.New(rand.NewSource(21))
	vals := []string{"a", "b", "c"}
	rv := func() ast.Value { return ast.Str(vals[rng.Intn(len(vals))]) }
	for trial := 0; trial < 300; trial++ {
		db := store.New()
		nL := rng.Intn(4)
		var L []relation.Tuple
		for i := 0; i < nL; i++ {
			tu := relation.TupleOf(rv(), rv())
			L = append(L, tu)
			mustIns(t, db, "l", tu)
		}
		ins := relation.TupleOf(rv(), rv())
		certified, err := RALocalTest(rule, "l", ins, db)
		if err != nil {
			t.Fatal(err)
		}
		// Soundness: for every remote state over the value pool where the
		// constraint held before the insert, it must hold after.
		if certified {
			for i := 0; i < 20; i++ {
				rdb := db.Clone()
				for j := 0; j < rng.Intn(4); j++ {
					mustIns(t, rdb, "r", relation.TupleOf(rv(), rv()))
					mustIns(t, rdb, "s", relation.TupleOf(rv(), rv()))
				}
				before, err := eval.PanicHolds(prog, rdb)
				if err != nil {
					t.Fatal(err)
				}
				if before {
					continue
				}
				mustIns(t, rdb, "l", ins)
				after, err := eval.PanicHolds(prog, rdb)
				if err != nil {
					t.Fatal(err)
				}
				if after {
					t.Fatalf("trial %d: certified insert %v violated (L=%v, db=%s)", trial, ins, L, rdb)
				}
			}
			continue
		}
		// Completeness: build the canonical dangerous remote state for
		// the inserted tuple — r(y,w0) and s(w0,x) with a fresh w0 — and
		// check it violates after the insert but not before.
		rdb := db.Clone()
		w0 := ast.Str("w$fresh")
		mustIns(t, rdb, "r", relation.TupleOf(ins[1], w0))
		mustIns(t, rdb, "s", relation.TupleOf(w0, ins[0]))
		before, err := eval.PanicHolds(prog, rdb)
		if err != nil {
			t.Fatal(err)
		}
		if before {
			continue // the dangerous state already violates pre-insert; not a countercase
		}
		mustIns(t, rdb, "l", ins)
		after, err := eval.PanicHolds(prog, rdb)
		if err != nil {
			t.Fatal(err)
		}
		if !after {
			t.Fatalf("trial %d: uncertified insert %v has no violating canonical remote state (L=%v)", trial, ins, L)
		}
	}
}

func TestCompileRARejectsArithmetic(t *testing.T) {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z.")
	if _, err := CompileRA(rule, "l", relation.Ints(1, 2)); err == nil {
		t.Error("arithmetic constraint accepted by Theorem 5.3 compiler")
	}
}

func TestCompileRANoRemote(t *testing.T) {
	// A purely local constraint: inserting t violates iff the reduction
	// is nonempty… with no remote subgoals, RED(t) has an empty body, so
	// it is contained in RED(s) for any s matching the pattern — the test
	// is just the pattern selection (any matching tuple). With no
	// L tuples matching, the test fails (insertion may violate — indeed
	// panic fires as soon as l holds any tuple).
	rule := parser.MustParseConstraint("panic :- l(X,X).")
	db := store.New()
	ok, err := RALocalTest(rule, "l", relation.Ints(3, 3), db)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("diagonal insertion into empty l certified; it violates immediately")
	}
	// Non-diagonal tuples never match l(X,X): trivially safe.
	ok, err = RALocalTest(rule, "l", relation.Ints(3, 4), db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("non-matching insertion not certified")
	}
}

func TestReduceArityMismatch(t *testing.T) {
	c := intervalCQC(t)
	if _, err := Reduce(c, relation.Ints(1, 2, 3)); err == nil {
		t.Error("arity mismatch accepted")
	}
}
