// Package reduction implements the Section 5 machinery for complete
// local tests: the reduction RED(t, l, C) of a conjunctive-query
// constraint by a tuple of its local relation, the Theorem 5.2 complete
// local test (containment of the inserted tuple's reduction in the union
// of reductions over the local relation), and the Theorem 5.3 compiler
// from an arithmetic-free CQC to a relational-algebra expression whose
// nonemptiness is the complete local test.
package reduction

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/containment"
	"repro/internal/ra"
	"repro/internal/relation"
	"repro/internal/store"
)

// Reduce computes RED(t, l, C) for a normal-form CQC: the components of
// t are substituted for the variables of the local subgoal, which is then
// eliminated (Example 5.3). In normal form the local variables occur only
// in the comparisons, so the remote subgoals are untouched and the result
// is again in Theorem 5.1 normal form.
func Reduce(c *ast.CQC, t relation.Tuple) (*ast.Rule, error) {
	local := c.LocalAtom()
	if len(t) != local.Arity() {
		return nil, fmt.Errorf("reduction: tuple arity %d does not match %s", len(t), local)
	}
	s := ast.Subst{}
	for i, arg := range local.Args {
		s[arg.Var] = ast.C(t[i])
	}
	var body []ast.Literal
	for _, l := range c.Rule.Body {
		if l.IsPos() && l.Atom.Pred == c.LocalPred {
			continue
		}
		body = append(body, l.Apply(s))
	}
	return &ast.Rule{Head: c.Rule.Head, Body: body}, nil
}

// LocalTest runs the Theorem 5.2 complete local test for the insertion
// of t into the local relation holding the tuples L: the constraint c
// (assumed to hold before the update) still holds afterwards iff
// RED(t,l,C) ⊑ ∪_{s∈L} RED(s,l,C), decided by the union extension of
// Theorem 5.1. A true result is a guarantee; a false result means some
// state of the remote relations would violate the constraint
// (completeness), so the caller must consult remote data.
func LocalTest(c *ast.CQC, t relation.Tuple, L []relation.Tuple) (bool, error) {
	return LocalTestMulti(c, nil, t, L)
}

// LocalTestMulti extends LocalTest with other constraints known to hold
// before the update (each a CQC over the same local predicate): their
// reductions by every tuple of L join the union on the right, as the
// remark after Theorem 5.2 prescribes.
func LocalTestMulti(c *ast.CQC, others []*ast.CQC, t relation.Tuple, L []relation.Tuple) (bool, error) {
	redT, err := Reduce(c, t)
	if err != nil {
		return false, err
	}
	var union []*ast.Rule
	for _, s := range L {
		r, err := Reduce(c, s)
		if err != nil {
			return false, err
		}
		union = append(union, r)
	}
	for _, o := range others {
		if o.LocalPred != c.LocalPred {
			return false, fmt.Errorf("reduction: constraint %s has local predicate %s, want %s", o, o.LocalPred, c.LocalPred)
		}
		for _, s := range L {
			r, err := Reduce(o, s)
			if err != nil {
				return false, err
			}
			union = append(union, r)
		}
	}
	return containment.Theorem51Union(redT, union)
}

// CompileRA implements Theorem 5.3: for an arithmetic-free CQC (given as
// a raw conjunctive panic rule over the local predicate; constants and
// repeated variables ARE allowed here) and an inserted tuple t, it
// produces a relational algebra expression over the local relation whose
// nonemptiness is the complete local test. The expression is built once
// per (constraint, tuple) pair in time independent of the data.
//
// Construction (following the proof sketch and Example 5.4): let τ be a
// tuple of fresh column variables for L. RED(τ,l,C) carries the pattern
// constraints of the local subgoal (column=constant for constants,
// column=column for repeated variables). Each containment mapping from
// RED(τ,l,C) into the frozen RED(t,l,C) contributes one selection over
// L: the pattern constraints plus column=value for every τ column the
// mapping sends to a constant; mappings that send a τ column to a
// remote variable of RED(t) are rejected (a stored tuple's component is
// a constant and can never map onto a variable). The final test is the
// union of these selections; with no valid mapping the test is the empty
// expression (never satisfied), and when RED(t,l,C) does not exist —
// the insertion cannot unify with the local subgoal, as with t=(a,b,c)
// against l(X,Y,Y) — the test is constantly true.
func CompileRA(rule *ast.Rule, localPred string, t relation.Tuple) (ra.Expr, error) {
	if rule.HasComparison() || rule.HasNegation() {
		return nil, fmt.Errorf("reduction: Theorem 5.3 applies to arithmetic-free CQCs only")
	}
	if rule.Head.Pred != ast.PanicPred || rule.Head.Arity() != 0 {
		return nil, fmt.Errorf("reduction: constraint head must be 0-ary %s", ast.PanicPred)
	}
	var local *ast.Atom
	var remotes []ast.Atom
	for _, a := range rule.PositiveAtoms() {
		if a.Pred == localPred {
			if local != nil {
				return nil, fmt.Errorf("reduction: more than one local subgoal in %s", rule)
			}
			la := a
			local = &la
			continue
		}
		remotes = append(remotes, a)
	}
	if local == nil {
		return nil, fmt.Errorf("reduction: no subgoal over local predicate %s in %s", localPred, rule)
	}
	if len(t) != local.Arity() {
		return nil, fmt.Errorf("reduction: tuple arity %d does not match %s", len(t), local)
	}

	// RED(t,l,C): unify the local pattern with t. Failure means the
	// insertion is irrelevant — the complete local test is "true".
	sT, ok := ast.Unify(local.Args, t.Terms(), nil)
	if !ok {
		return ra.TrueExpr(), nil
	}
	redT := make([]ast.Atom, len(remotes))
	for i, a := range remotes {
		redT[i] = a.Apply(sT)
	}

	// RED(τ,l,C): fresh column variables; pattern constraints.
	tau := make([]ast.Term, local.Arity())
	for i := range tau {
		tau[i] = ast.V(fmt.Sprintf("A$%d", i))
	}
	var pattern []ra.Cond
	sTau := ast.Subst{}
	firstCol := map[string]int{}
	for i, arg := range local.Args {
		switch {
		case arg.IsConst():
			pattern = append(pattern, ra.Cond{Left: ra.ColRef(i), Op: ast.Eq, Right: ra.ConstOp(arg.Const)})
		default:
			if j, seen := firstCol[arg.Var]; seen {
				pattern = append(pattern, ra.Cond{Left: ra.ColRef(j), Op: ast.Eq, Right: ra.ColRef(i)})
			} else {
				firstCol[arg.Var] = i
				sTau[arg.Var] = tau[i]
			}
		}
	}
	// The s-side copy of the remote subgoals, renamed apart on the purely
	// remote variables.
	redTau := make([]ast.Atom, len(remotes))
	for i, a := range remotes {
		args := make([]ast.Term, len(a.Args))
		for j, arg := range a.Args {
			if arg.IsConst() {
				args[j] = arg
				continue
			}
			if _, isLocal := firstCol[arg.Var]; isLocal {
				args[j] = sTau.Resolve(arg)
			} else {
				args[j] = ast.V(arg.Var + "~s")
			}
		}
		redTau[i] = ast.Atom{Pred: a.Pred, Args: args}
	}

	// Enumerate containment mappings from redTau into the frozen redT.
	src := &ast.Rule{Head: rule.Head}
	for _, a := range redTau {
		src.Body = append(src.Body, ast.Pos(a))
	}
	dst := &ast.Rule{Head: rule.Head}
	for _, a := range redT {
		dst.Body = append(dst.Body, ast.Pos(a))
	}
	mappings := containment.Mappings(src, dst)

	L := ra.NewRel(localPred, local.Arity())
	var branches []ra.Expr
	colOfTau := map[string]int{}
	for i, v := range tau {
		colOfTau[v.Var] = i
	}
	for _, h := range mappings {
		conds := append([]ra.Cond{}, pattern...)
		valid := true
		vars := make([]string, 0, len(h))
		for v := range h {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			target := h[v]
			col, isTau := colOfTau[v]
			if !isTau {
				continue // purely remote variable of the s-side copy
			}
			if target.IsVar() {
				// A stored component is a constant; it can never map
				// onto a remote variable of RED(t).
				valid = false
				break
			}
			conds = append(conds, ra.Cond{Left: ra.ColRef(col), Op: ast.Eq, Right: ra.ConstOp(target.Const)})
		}
		if valid {
			branches = append(branches, ra.NewSelect(L, conds...))
		}
	}
	if len(branches) == 0 {
		return ra.Empty(local.Arity()), nil
	}
	if len(branches) == 1 {
		return branches[0], nil
	}
	return ra.NewUnion(branches...), nil
}

// RALocalTest compiles and evaluates the Theorem 5.3 test against the
// store holding the local relation (pre-insertion state): true certifies
// that inserting t cannot violate the constraint.
func RALocalTest(rule *ast.Rule, localPred string, t relation.Tuple, db *store.Store) (bool, error) {
	expr, err := CompileRA(rule, localPred, t)
	if err != nil {
		return false, err
	}
	return ra.NonEmpty(expr, db)
}
