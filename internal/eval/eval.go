package eval

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

// Result holds the derived (IDB) relations of one evaluation.
type Result struct {
	idb map[string]*relation.Relation
}

// Relation returns the derived relation for pred (nil when the predicate
// derived nothing and is unknown).
func (r *Result) Relation(pred string) *relation.Relation { return r.idb[pred] }

// Tuples returns the derived tuples for pred.
func (r *Result) Tuples(pred string) []relation.Tuple {
	rel := r.idb[pred]
	if rel == nil {
		return nil
	}
	return rel.Tuples()
}

// Holds reports whether the 0-ary predicate pred was derived.
func (r *Result) Holds(pred string) bool {
	rel := r.idb[pred]
	return rel != nil && rel.Len() > 0
}

// Options tune the evaluation strategy. The zero value is the fast
// default: bound-first join planning and multi-column indexed probes.
type Options struct {
	// DisableIndexes restores the pre-index evaluator for A/B comparison
	// (ccheck -noindex): body atoms are joined in textual order and
	// candidate tuples are fetched by scan-plus-filter (at best a
	// single-column lookup on the first constant argument) instead of a
	// hash probe on the full bound-column signature.
	DisableIndexes bool
}

// Eval computes the stratified fixpoint of prog over the extensional
// database db with default options. The store is read (charging its
// access counters) but never written. Rules must be safe and the program
// stratifiable.
func Eval(prog *ast.Program, db *store.Store) (*Result, error) {
	return EvalWith(prog, db, Options{})
}

// EvalWith is Eval with explicit evaluation options.
func EvalWith(prog *ast.Program, db *store.Store, opts Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, err := Stratify(prog)
	if err != nil {
		return nil, err
	}
	ev, res, err := newEvaluator(prog, db, opts)
	if err != nil {
		return nil, err
	}
	for _, layer := range strata {
		if err := ev.evalStratum(layer); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// newEvaluator allocates evaluation state (empty IDB relations) for prog.
func newEvaluator(prog *ast.Program, db *store.Store, opts Options) (*evaluator, *Result, error) {
	arity := prog.Preds()
	res := &Result{idb: map[string]*relation.Relation{}}
	for pred := range prog.IDBPreds() {
		res.idb[pred] = relation.New(pred, arity[pred])
	}
	return &evaluator{prog: prog, db: db, res: res, opts: opts}, res, nil
}

// PanicHolds evaluates the constraint program and reports whether panic
// is derived, i.e. whether the database VIOLATES the constraint.
func PanicHolds(prog *ast.Program, db *store.Store) (bool, error) {
	res, err := Eval(prog, db)
	if err != nil {
		return false, err
	}
	return res.Holds(ast.PanicPred), nil
}

// evaluator carries evaluation state for one Eval call.
type evaluator struct {
	prog  *ast.Program
	db    *store.Store
	res   *Result
	opts  Options
	plans map[*ast.Rule]*rulePlan
	// stopWhenNonEmpty, when set, aborts evaluation with errGoalDerived
	// as soon as the named predicate derives a tuple (GoalHolds).
	stopWhenNonEmpty string
}

func (ev *evaluator) planFor(r *ast.Rule) (*rulePlan, error) {
	if ev.plans == nil {
		ev.plans = map[*ast.Rule]*rulePlan{}
	}
	if p, ok := ev.plans[r]; ok {
		return p, nil
	}
	p, err := planRule(r, !ev.opts.DisableIndexes)
	if err != nil {
		return nil, err
	}
	// Validate subgoal arities once, here: a stored relation whose arity
	// disagrees with the atom can never match it (Insert enforces uniform
	// arity within a relation), so the step is marked empty and the join
	// loop needs no per-tuple length check. IDB and delta relations are
	// allocated from the program's own arity map and cannot disagree.
	idb := ev.prog.IDBPreds()
	for i := range p.steps {
		st := &p.steps[i]
		if !st.lit.IsPos() || idb[st.lit.Atom.Pred] {
			continue
		}
		if rel := ev.db.Relation(st.lit.Atom.Pred); rel != nil && rel.Arity() != len(st.lit.Atom.Args) {
			st.empty = true
		}
	}
	ev.plans[r] = p
	return p, nil
}

// evalStratum computes the fixpoint of the (possibly mutually recursive)
// predicates in layer. Lower strata are complete; negation may refer only
// to them or to EDB relations.
func (ev *evaluator) evalStratum(layer []string) error {
	inLayer := map[string]bool{}
	for _, p := range layer {
		inLayer[p] = true
	}
	var rules []*ast.Rule
	for _, p := range layer {
		rules = append(rules, ev.prog.RulesFor(p)...)
	}
	recursive := false
	for _, r := range rules {
		for _, l := range r.Body {
			if !l.IsComp() && inLayer[l.Atom.Pred] {
				recursive = true
			}
		}
	}
	if !recursive {
		for _, r := range rules {
			if err := ev.applyRule(r, nil, -1, nil); err != nil {
				return err
			}
		}
		return nil
	}
	// Semi-naive iteration. delta holds the tuples new in the previous
	// round, per layer predicate.
	delta := map[string]*relation.Relation{}
	for _, p := range layer {
		delta[p] = relation.New(p, ev.res.idb[p].Arity())
	}
	// Round 0: evaluate every rule with no delta restriction; everything
	// derived seeds the delta.
	for _, r := range rules {
		if err := ev.applyRule(r, delta, -1, nil); err != nil {
			return err
		}
	}
	for {
		next := map[string]*relation.Relation{}
		for _, p := range layer {
			next[p] = relation.New(p, ev.res.idb[p].Arity())
		}
		any := false
		for _, r := range rules {
			// One pass per occurrence of a layer predicate: occurrence i
			// reads the previous delta, occurrences before i read the
			// full current relation, and so do occurrences after i (the
			// standard semi-naive rewriting over-approximates slightly
			// by using full relations on both sides; it remains correct
			// and terminates because results are deduplicated).
			occ := 0
			for bi, l := range r.Body {
				if l.IsComp() || l.IsNeg() || !inLayer[l.Atom.Pred] {
					continue
				}
				if err := ev.applyRule(r, next, bi, delta); err != nil {
					return err
				}
				occ++
			}
			if occ == 0 {
				continue // non-recursive rule: already applied in round 0
			}
		}
		for _, p := range layer {
			if next[p].Len() > 0 {
				any = true
			}
		}
		if !any {
			return nil
		}
		delta = next
	}
}

// applyRule evaluates rule r and inserts derived head tuples into the
// result. When deltaPos >= 0, the positive body literal at that index
// ranges over delta[pred] instead of the full relation. Newly derived
// tuples (not already present) are also added to newOut when non-nil.
func (ev *evaluator) applyRule(r *ast.Rule, newOut map[string]*relation.Relation, deltaPos int, delta map[string]*relation.Relation) error {
	plan, err := ev.planFor(r)
	if err != nil {
		return err
	}
	emit := func(s ast.Subst) error {
		head := r.Head.Apply(s)
		t, err := relation.TermsToTuple(head.Args)
		if err != nil {
			return fmt.Errorf("eval: derived non-ground head %s (unsafe rule?)", head)
		}
		if ev.res.idb[r.Head.Pred].Insert(t) {
			if newOut != nil {
				if d, ok := newOut[r.Head.Pred]; ok {
					d.Insert(t)
				}
			}
			if r.Head.Pred == ev.stopWhenNonEmpty {
				return errGoalDerived
			}
		}
		return nil
	}
	return ev.joinLoop(plan, 0, ast.Subst{}, deltaPos, delta, emit)
}

// rulePlan is an evaluation order for the body: positive atoms
// most-bound-first (or in original order under DisableIndexes), with
// each comparison and negated atom scheduled at the earliest point where
// its variables are bound. steps[i].bodyIndex remembers the literal's
// original position for delta bookkeeping.
type rulePlan struct {
	steps []planStep
}

type planStep struct {
	lit       ast.Literal
	bodyIndex int
	// probeCols are the argument positions of a positive atom that are
	// ground when the step runs (textual constants plus variables bound
	// by earlier steps) — the bound-column signature of the indexed
	// probe. Computed at plan time: the bound-variable set evolves
	// deterministically along the plan order.
	probeCols []int
	// empty marks a positive atom over a stored relation whose arity
	// disagrees with the atom: it can never match, so the step yields
	// nothing (set by planFor, which can see the database).
	empty bool
}

// boundScore counts the atom's argument positions ground under the given
// bound-variable set — the number of columns an indexed probe can pin.
func boundScore(a ast.Atom, bound map[string]bool) int {
	n := 0
	for _, t := range a.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Var]) {
			n++
		}
	}
	return n
}

// probeColsFor lists the atom's positions ground under bound, skipping
// repeated occurrences of a variable first bound within this same atom
// (those are checked tuple-by-tuple, not probed).
func probeColsFor(a ast.Atom, bound map[string]bool) []int {
	var cols []int
	for i, t := range a.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Var]) {
			cols = append(cols, i)
		}
	}
	return cols
}

// planRule orders the body for the nested-loop join. With reorder set
// (the indexed evaluator), positive atoms are scheduled greedily
// most-bound-first: at every point the atom with the most ground
// argument positions runs next, ties broken by textual order, so each
// probe pins as many columns as possible. Without reorder (the -noindex
// escape hatch) positive atoms keep their textual order — the seed
// behavior. Comparisons and negated atoms are interleaved at the
// earliest point where their variables are bound in both modes.
func planRule(r *ast.Rule, reorder bool) (*rulePlan, error) {
	bound := map[string]bool{}
	var steps []planStep
	pending := make([]int, 0, len(r.Body))
	var posLeft []int
	for i, l := range r.Body {
		if l.IsPos() {
			posLeft = append(posLeft, i)
		} else {
			pending = append(pending, i)
		}
	}
	ready := func() []int {
		var out []int
		rest := pending[:0]
		for _, i := range pending {
			ok := true
			for _, v := range r.Body[i].Vars(nil) {
				if !bound[v] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, i)
			} else {
				rest = append(rest, i)
			}
		}
		pending = rest
		return out
	}
	for len(posLeft) > 0 {
		pick := 0
		if reorder {
			best := -1
			for idx, bi := range posLeft {
				if score := boundScore(r.Body[bi].Atom, bound); score > best {
					best, pick = score, idx
				}
			}
		}
		bi := posLeft[pick]
		posLeft = append(posLeft[:pick], posLeft[pick+1:]...)
		steps = append(steps, planStep{
			lit:       r.Body[bi],
			bodyIndex: bi,
			probeCols: probeColsFor(r.Body[bi].Atom, bound),
		})
		for _, v := range r.Body[bi].Vars(nil) {
			bound[v] = true
		}
		for _, j := range ready() {
			steps = append(steps, planStep{lit: r.Body[j], bodyIndex: j})
		}
	}
	// Ground comparisons/negations (no variables) schedule up front.
	if len(pending) > 0 {
		for _, j := range pending {
			for _, v := range r.Body[j].Vars(nil) {
				if !bound[v] {
					return nil, fmt.Errorf("eval: unsafe rule %s: variable %s never bound", r, v)
				}
			}
			steps = append(steps, planStep{lit: r.Body[j], bodyIndex: j})
		}
	}
	return &rulePlan{steps: steps}, nil
}

// joinLoop performs the nested-loop join over the plan. Variable
// bindings are written into s in place and undone on backtracking (the
// tuple side is always ground bottom-up, so bindings are constants and
// no chains arise).
func (ev *evaluator) joinLoop(plan *rulePlan, si int, s ast.Subst, deltaPos int, delta map[string]*relation.Relation, emit func(ast.Subst) error) error {
	if si == len(plan.steps) {
		return emit(s)
	}
	step := plan.steps[si]
	switch {
	case step.lit.IsComp():
		l := step.lit.Apply(s)
		v, ground := l.Comp.Ground()
		if !ground {
			return fmt.Errorf("eval: comparison %s not ground at evaluation time", l.Comp)
		}
		if !v {
			return nil
		}
		return ev.joinLoop(plan, si+1, s, deltaPos, delta, emit)
	case step.lit.IsNeg():
		l := step.lit.Apply(s)
		t, err := relation.TermsToTuple(l.Atom.Args)
		if err != nil {
			return fmt.Errorf("eval: negated subgoal %s not ground at evaluation time", l.Atom)
		}
		if ev.contains(l.Atom.Pred, t) {
			return nil
		}
		return ev.joinLoop(plan, si+1, s, deltaPos, delta, emit)
	default:
		if step.empty {
			return nil // stored arity disagrees with the atom: no match possible
		}
		// Resolve the atom's arguments against the bindings made by
		// earlier steps, once. Candidates arrive pre-matched on every
		// ground position (indexed probe or constant filter), so the loop
		// below only binds the free variables and checks variables
		// repeated within this atom.
		atom := step.lit.Atom.Apply(s)
		var trail []string
		for _, t := range ev.fetch(&step, atom, step.bodyIndex == deltaPos, delta) {
			ok := true
			n0 := len(trail)
			for i, arg := range atom.Args {
				if arg.IsConst() {
					continue // guaranteed equal by the probe / constant filter
				}
				// A repeated variable within this atom may have been
				// bound by an earlier column of the same tuple.
				if b, bound := s[arg.Var]; bound {
					if !b.Const.Equal(t[i]) {
						ok = false
						break
					}
					continue
				}
				s[arg.Var] = ast.C(t[i])
				trail = append(trail, arg.Var)
			}
			if ok {
				if err := ev.joinLoop(plan, si+1, s, deltaPos, delta, emit); err != nil {
					return err
				}
			}
			for len(trail) > n0 {
				delete(s, trail[len(trail)-1])
				trail = trail[:len(trail)-1]
			}
		}
		return nil
	}
}

// fetch returns the candidate tuples for one positive step: an indexed
// probe on the step's full bound-column signature by default, or the
// seed scan-and-filter under DisableIndexes. useDelta restricts an IDB
// predicate of the current stratum to the previous round's delta (delta
// relations build their own transient indexes, refreshed each semi-naive
// round because each round allocates fresh deltas).
func (ev *evaluator) fetch(step *planStep, atom ast.Atom, useDelta bool, delta map[string]*relation.Relation) []relation.Tuple {
	if ev.opts.DisableIndexes {
		return ev.scan(atom, useDelta, delta)
	}
	cols := step.probeCols
	var vals []ast.Value
	if len(cols) > 0 {
		vals = make([]ast.Value, len(cols))
		for i, c := range cols {
			vals[i] = atom.Args[c].Const
		}
	}
	if useDelta {
		if d, ok := delta[atom.Pred]; ok {
			if len(cols) == 0 {
				return d.Tuples()
			}
			return d.LookupCols(cols, vals)
		}
	}
	if rel, ok := ev.res.idb[atom.Pred]; ok {
		// IDB relations are not charged: they are derived scratch space.
		if len(cols) == 0 {
			return rel.Tuples()
		}
		return rel.LookupCols(cols, vals)
	}
	if len(cols) == 0 {
		return ev.db.Tuples(atom.Pred)
	}
	return ev.db.LookupCols(atom.Pred, cols, vals)
}

// contains checks membership in an IDB result or the EDB store; EDB
// probes are charged to the store's counters.
func (ev *evaluator) contains(pred string, t relation.Tuple) bool {
	if rel, ok := ev.res.idb[pred]; ok {
		return rel.Contains(t)
	}
	return ev.db.Probe(pred, t)
}

// scan returns candidate tuples for atom, preferring an indexed lookup on
// the first constant argument. useDelta restricts an IDB predicate of the
// current stratum to the previous round's delta.
func (ev *evaluator) scan(atom ast.Atom, useDelta bool, delta map[string]*relation.Relation) []relation.Tuple {
	if useDelta {
		if d, ok := delta[atom.Pred]; ok {
			return filterByConstants(d.Tuples(), atom)
		}
	}
	if rel, ok := ev.res.idb[atom.Pred]; ok {
		// IDB relations are not charged: they are derived scratch space.
		for i, a := range atom.Args {
			if a.IsConst() {
				return filterByConstants(rel.Lookup(i, a.Const), atom)
			}
		}
		return filterByConstants(rel.Tuples(), atom)
	}
	for i, a := range atom.Args {
		if a.IsConst() {
			return filterByConstants(ev.db.Lookup(atom.Pred, i, a.Const), atom)
		}
	}
	return filterByConstants(ev.db.Tuples(atom.Pred), atom)
}

// filterByConstants drops tuples that disagree with the atom's constant
// arguments (the unifier would reject them anyway; filtering early keeps
// the join loop tighter).
func filterByConstants(ts []relation.Tuple, atom ast.Atom) []relation.Tuple {
	hasConst := false
	for _, a := range atom.Args {
		if a.IsConst() {
			hasConst = true
			break
		}
	}
	if !hasConst {
		return ts
	}
	keep := func(t relation.Tuple) bool {
		// Tuple length always matches: planFor validated the relation's
		// arity against the atom once, at plan time.
		for i, a := range atom.Args {
			if a.IsConst() && !a.Const.Equal(t[i]) {
				return false
			}
		}
		return true
	}
	// Copy only from the first mismatch on: the common case where every
	// candidate survives returns the input slice unchanged.
	for j, t := range ts {
		if keep(t) {
			continue
		}
		out := append(ts[:0:0], ts[:j]...)
		for _, t := range ts[j+1:] {
			if keep(t) {
				out = append(out, t)
			}
		}
		return out
	}
	return ts
}

// Violations evaluates several constraint programs and returns the names
// (indexes) of those whose panic predicate is derived.
func Violations(constraints []*ast.Program, db *store.Store) ([]int, error) {
	var out []int
	for i, c := range constraints {
		bad, err := PanicHolds(c, db)
		if err != nil {
			return nil, fmt.Errorf("constraint %d: %w", i, err)
		}
		if bad {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out, nil
}
