package eval

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

// Result holds the derived (IDB) relations of one evaluation.
type Result struct {
	idb map[string]*relation.Relation
}

// Relation returns the derived relation for pred (nil when the predicate
// derived nothing and is unknown).
func (r *Result) Relation(pred string) *relation.Relation { return r.idb[pred] }

// Tuples returns the derived tuples for pred.
func (r *Result) Tuples(pred string) []relation.Tuple {
	rel := r.idb[pred]
	if rel == nil {
		return nil
	}
	return rel.Tuples()
}

// Holds reports whether the 0-ary predicate pred was derived.
func (r *Result) Holds(pred string) bool {
	rel := r.idb[pred]
	return rel != nil && rel.Len() > 0
}

// Options tune the evaluation strategy. The zero value is the fast
// default: bound-first join planning and multi-column indexed probes.
type Options struct {
	// DisableIndexes restores the pre-index evaluator for A/B comparison
	// (ccheck -noindex): body atoms are joined in textual order and
	// candidate tuples are fetched by scan-plus-filter (at best a
	// single-column lookup on the first constant argument) instead of a
	// hash probe on the full bound-column signature.
	DisableIndexes bool
	// Cache, when non-nil, memoizes compiled evaluations (pruning,
	// stratification, join plans, arity checks) across calls — see
	// PlanCache. Without a cache every call compiles afresh, which is
	// the -noplancache A/B arm.
	Cache *PlanCache
	// Probe, when non-nil, may intercept EDB reads (candidate fetches
	// and negated-subgoal membership probes) before they hit the store —
	// the shard-routing hook: a distributed coordinator serves probes on
	// hash-partitioned relations from the owning shard instead of a
	// local mirror. IDB reads are never routed.
	Probe ProbeRouter
}

// ProbeRouter intercepts EDB reads during evaluation. Implementations
// decide per relation whether to handle the read (handled=false falls
// through to the local store). A handled Probe must return exactly the
// tuples whose projection onto cols equals vals — the join loop trusts
// probe results to match every bound column and does not re-check them.
// cols may be empty, demanding the relation's full contents. Errors
// abort the evaluation and surface from Eval/GoalHolds.
type ProbeRouter interface {
	// Probe appends the matching tuples to dst and returns it.
	Probe(dst []relation.Tuple, rel string, cols []int, vals []ast.Value) ([]relation.Tuple, bool, error)
	// Contains reports membership of t in rel.
	Contains(rel string, t relation.Tuple) (bool, bool, error)
}

// Eval computes the stratified fixpoint of prog over the extensional
// database db with default options. The store is read (charging its
// access counters) but never written. Rules must be safe and the program
// stratifiable.
func Eval(prog *ast.Program, db *store.Store) (*Result, error) {
	return EvalWith(prog, db, Options{})
}

// EvalWith is Eval with explicit evaluation options.
func EvalWith(prog *ast.Program, db *store.Store, opts Options) (*Result, error) {
	c, err := compiledFor(prog, db, "", opts)
	if err != nil {
		return nil, err
	}
	ev, res := newEvaluator(c, db, opts)
	defer ev.release()
	for i := range c.strata {
		if err := ev.evalStratum(&c.strata[i]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// newEvaluator allocates evaluation state (empty IDB relations) for the
// compiled program and borrows pooled scratch buffers; callers must
// release() the evaluator when done.
func newEvaluator(c *compiled, db *store.Store, opts Options) (*evaluator, *Result) {
	res := &Result{idb: make(map[string]*relation.Relation, len(c.idbArity))}
	for pred, ar := range c.idbArity {
		res.idb[pred] = relation.New(pred, ar)
	}
	return &evaluator{comp: c, db: db, res: res, opts: opts, scr: scratchPool.Get().(*scratch)}, res
}

// PanicHolds evaluates the constraint program and reports whether panic
// is derived, i.e. whether the database VIOLATES the constraint.
func PanicHolds(prog *ast.Program, db *store.Store) (bool, error) {
	res, err := Eval(prog, db)
	if err != nil {
		return false, err
	}
	return res.Holds(ast.PanicPred), nil
}

// evaluator carries evaluation state for one Eval call. The compiled
// object it runs is shared and read-only; all mutable state (result
// relations, scratch buffers) is per-evaluator.
type evaluator struct {
	comp *compiled
	db   *store.Store
	res  *Result
	opts Options
	scr  *scratch
	// stopWhenNonEmpty, when set, aborts evaluation with errGoalDerived
	// as soon as the named predicate derives a tuple (GoalHolds).
	stopWhenNonEmpty string
}

// release returns the evaluator's scratch to the pool. The substitution
// may hold bindings when evaluation unwound through errGoalDerived, so
// it is cleared here rather than trusting the backtracking trail.
func (ev *evaluator) release() {
	if ev.scr != nil {
		clear(ev.scr.subst)
		scratchPool.Put(ev.scr)
		ev.scr = nil
	}
}

func (ev *evaluator) planFor(r *ast.Rule) (*rulePlan, error) {
	if p, ok := ev.comp.plans[r]; ok {
		return p, nil
	}
	// Unreachable in practice — compile() plans every rule of every
	// stratum — but fall back to a throwaway plan rather than panic.
	return planRule(r, !ev.opts.DisableIndexes)
}

// scratch holds the per-evaluation reusable buffers: one levelScratch
// per join depth plus the head-tuple buffer and the binding map. Pooled
// so the steady-state apply stream re-allocates none of it.
type scratch struct {
	subst  ast.Subst
	head   []ast.Value
	levels []levelScratch
}

// levelScratch is the per-join-depth scratch: resolved atom arguments,
// probe values (or the ground tuple of a negated subgoal), fetched
// candidate tuples, and the backtracking trail. Levels never alias —
// joinLoop recursion strictly increases the depth.
type levelScratch struct {
	args  []ast.Term
	vals  []ast.Value
	tups  []relation.Tuple
	trail []string
}

var scratchPool = sync.Pool{New: func() any { return &scratch{subst: ast.Subst{}} }}

// level returns the scratch for join depth i, growing the ladder on
// first use.
func (sc *scratch) level(i int) *levelScratch {
	for len(sc.levels) <= i {
		sc.levels = append(sc.levels, levelScratch{})
	}
	return &sc.levels[i]
}

// evalStratum computes the fixpoint of the (possibly mutually recursive)
// predicates in the stratum. Lower strata are complete; negation may
// refer only to them or to EDB relations. Stratum membership, rule
// lists, and the recursive flag come precomputed from compile().
func (ev *evaluator) evalStratum(sp *stratumPlan) error {
	if !sp.recursive {
		for _, r := range sp.rules {
			if err := ev.applyRule(r, nil, -1, nil, sp); err != nil {
				return err
			}
		}
		return nil
	}
	// Semi-naive iteration. delta holds the tuples new in the previous
	// round, per stratum predicate; the two delta generations ping-pong
	// via Reset instead of allocating fresh relations per round (Reset
	// keeps backing storage and built index signatures warm).
	delta := make(map[string]*relation.Relation, len(sp.preds))
	next := make(map[string]*relation.Relation, len(sp.preds))
	for _, p := range sp.preds {
		delta[p] = relation.New(p, ev.res.idb[p].Arity())
		next[p] = relation.New(p, ev.res.idb[p].Arity())
	}
	// Round 0: evaluate every rule with no delta restriction; everything
	// derived seeds the delta.
	for _, r := range sp.rules {
		if err := ev.applyRule(r, delta, -1, nil, sp); err != nil {
			return err
		}
	}
	for {
		for _, p := range sp.preds {
			next[p].Reset()
		}
		any := false
		for _, r := range sp.rules {
			// One pass per occurrence of a stratum predicate: occurrence i
			// reads the previous delta, occurrences before i read the
			// full current relation, and so do occurrences after i (the
			// standard semi-naive rewriting over-approximates slightly
			// by using full relations on both sides; it remains correct
			// and terminates because results are deduplicated).
			for bi, l := range r.Body {
				if l.IsComp() || l.IsNeg() || !sp.inLayer[l.Atom.Pred] {
					continue
				}
				if err := ev.applyRule(r, next, bi, delta, sp); err != nil {
					return err
				}
			}
		}
		for _, p := range sp.preds {
			if next[p].Len() > 0 {
				any = true
			}
		}
		if !any {
			return nil
		}
		delta, next = next, delta
	}
}

// applyRule evaluates rule r and inserts derived head tuples into the
// result. When deltaPos >= 0, the positive body literal at that index
// ranges over delta[pred] instead of the full relation. Newly derived
// tuples (not already present) are also added to newOut when non-nil.
func (ev *evaluator) applyRule(r *ast.Rule, newOut map[string]*relation.Relation, deltaPos int, delta map[string]*relation.Relation, sp *stratumPlan) error {
	plan, err := ev.planFor(r)
	if err != nil {
		return err
	}
	scr := ev.scr
	clear(scr.subst)
	emit := func(s ast.Subst) error {
		// Build the head tuple into the pooled buffer; Insert dedups
		// before cloning, so the buffer may be reused immediately.
		ht := scr.head[:0]
		for _, a := range r.Head.Args {
			if a.IsVar() {
				b, ok := s[a.Var]
				if !ok || !b.IsConst() {
					return fmt.Errorf("eval: derived non-ground head %s (unsafe rule?)", r.Head)
				}
				a = b
			}
			ht = append(ht, a.Const)
		}
		scr.head = ht
		if ev.res.idb[r.Head.Pred].Insert(relation.Tuple(ht)) {
			if newOut != nil {
				if d, ok := newOut[r.Head.Pred]; ok {
					d.Insert(relation.Tuple(ht))
				}
			}
			if r.Head.Pred == ev.stopWhenNonEmpty {
				return errGoalDerived
			}
		}
		return nil
	}
	return ev.joinLoop(plan, 0, scr.subst, deltaPos, delta, emit)
}

// rulePlan is an evaluation order for the body: positive atoms
// most-bound-first (or in original order under DisableIndexes), with
// each comparison and negated atom scheduled at the earliest point where
// its variables are bound. steps[i].bodyIndex remembers the literal's
// original position for delta bookkeeping.
type rulePlan struct {
	steps []planStep
}

type planStep struct {
	lit       ast.Literal
	bodyIndex int
	// probeCols are the argument positions of a positive atom that are
	// ground when the step runs (textual constants plus variables bound
	// by earlier steps) — the bound-column signature of the indexed
	// probe. Computed at plan time: the bound-variable set evolves
	// deterministically along the plan order.
	probeCols []int
	// empty marks a positive atom over a stored relation whose arity
	// disagrees with the atom: it can never match, so the step yields
	// nothing (set by planFor, which can see the database).
	empty bool
}

// boundScore counts the atom's argument positions ground under the given
// bound-variable set — the number of columns an indexed probe can pin.
func boundScore(a ast.Atom, bound map[string]bool) int {
	n := 0
	for _, t := range a.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Var]) {
			n++
		}
	}
	return n
}

// probeColsFor lists the atom's positions ground under bound, skipping
// repeated occurrences of a variable first bound within this same atom
// (those are checked tuple-by-tuple, not probed).
func probeColsFor(a ast.Atom, bound map[string]bool) []int {
	var cols []int
	for i, t := range a.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Var]) {
			cols = append(cols, i)
		}
	}
	return cols
}

// planRule orders the body for the nested-loop join. With reorder set
// (the indexed evaluator), positive atoms are scheduled greedily
// most-bound-first: at every point the atom with the most ground
// argument positions runs next, ties broken by textual order, so each
// probe pins as many columns as possible. Without reorder (the -noindex
// escape hatch) positive atoms keep their textual order — the seed
// behavior. Comparisons and negated atoms are interleaved at the
// earliest point where their variables are bound in both modes.
func planRule(r *ast.Rule, reorder bool) (*rulePlan, error) {
	bound := map[string]bool{}
	var steps []planStep
	pending := make([]int, 0, len(r.Body))
	var posLeft []int
	for i, l := range r.Body {
		if l.IsPos() {
			posLeft = append(posLeft, i)
		} else {
			pending = append(pending, i)
		}
	}
	ready := func() []int {
		var out []int
		rest := pending[:0]
		for _, i := range pending {
			ok := true
			for _, v := range r.Body[i].Vars(nil) {
				if !bound[v] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, i)
			} else {
				rest = append(rest, i)
			}
		}
		pending = rest
		return out
	}
	for len(posLeft) > 0 {
		pick := 0
		if reorder {
			best := -1
			for idx, bi := range posLeft {
				if score := boundScore(r.Body[bi].Atom, bound); score > best {
					best, pick = score, idx
				}
			}
		}
		bi := posLeft[pick]
		posLeft = append(posLeft[:pick], posLeft[pick+1:]...)
		steps = append(steps, planStep{
			lit:       r.Body[bi],
			bodyIndex: bi,
			probeCols: probeColsFor(r.Body[bi].Atom, bound),
		})
		for _, v := range r.Body[bi].Vars(nil) {
			bound[v] = true
		}
		for _, j := range ready() {
			steps = append(steps, planStep{lit: r.Body[j], bodyIndex: j})
		}
	}
	// Ground comparisons/negations (no variables) schedule up front.
	if len(pending) > 0 {
		for _, j := range pending {
			for _, v := range r.Body[j].Vars(nil) {
				if !bound[v] {
					return nil, fmt.Errorf("eval: unsafe rule %s: variable %s never bound", r, v)
				}
			}
			steps = append(steps, planStep{lit: r.Body[j], bodyIndex: j})
		}
	}
	return &rulePlan{steps: steps}, nil
}

// joinLoop performs the nested-loop join over the plan. Variable
// bindings are written into s in place and undone on backtracking (the
// tuple side is always ground bottom-up, so bindings are constants and
// no chains arise).
func (ev *evaluator) joinLoop(plan *rulePlan, si int, s ast.Subst, deltaPos int, delta map[string]*relation.Relation, emit func(ast.Subst) error) error {
	if si == len(plan.steps) {
		return emit(s)
	}
	step := &plan.steps[si]
	switch {
	case step.lit.IsComp():
		c := step.lit.Comp
		l, r := s.Resolve(c.Left), s.Resolve(c.Right)
		if !l.IsConst() || !r.IsConst() {
			return fmt.Errorf("eval: comparison %s not ground at evaluation time", c)
		}
		if !c.Op.Eval(l.Const, r.Const) {
			return nil
		}
		return ev.joinLoop(plan, si+1, s, deltaPos, delta, emit)
	case step.lit.IsNeg():
		lv := ev.scr.level(si)
		vals := lv.vals[:0]
		for _, a := range step.lit.Atom.Args {
			a = s.Resolve(a)
			if !a.IsConst() {
				return fmt.Errorf("eval: negated subgoal %s not ground at evaluation time", step.lit.Atom)
			}
			vals = append(vals, a.Const)
		}
		lv.vals = vals
		has, err := ev.contains(step.lit.Atom.Pred, relation.Tuple(vals))
		if err != nil {
			return err
		}
		if has {
			return nil
		}
		return ev.joinLoop(plan, si+1, s, deltaPos, delta, emit)
	default:
		if step.empty {
			return nil // stored arity disagrees with the atom: no match possible
		}
		// Resolve the atom's arguments against the bindings made by
		// earlier steps, once, into this level's scratch. Candidates
		// arrive pre-matched on every ground position (indexed probe or
		// constant filter), so the loop below only binds the free
		// variables and checks variables repeated within this atom.
		lv := ev.scr.level(si)
		args := lv.args[:0]
		for _, a := range step.lit.Atom.Args {
			args = append(args, s.Resolve(a))
		}
		lv.args = args
		trail := lv.trail[:0]
		cand, err := ev.fetch(lv, step, step.bodyIndex == deltaPos, delta)
		if err != nil {
			return err
		}
		for _, t := range cand {
			ok := true
			n0 := len(trail)
			for i, arg := range args {
				if arg.IsConst() {
					continue // guaranteed equal by the probe / constant filter
				}
				// A repeated variable within this atom may have been
				// bound by an earlier column of the same tuple.
				if b, bound := s[arg.Var]; bound {
					if !b.Const.Equal(t[i]) {
						ok = false
						break
					}
					continue
				}
				s[arg.Var] = ast.C(t[i])
				trail = append(trail, arg.Var)
			}
			if ok {
				if err := ev.joinLoop(plan, si+1, s, deltaPos, delta, emit); err != nil {
					lv.trail = trail
					return err
				}
			}
			for len(trail) > n0 {
				delete(s, trail[len(trail)-1])
				trail = trail[:len(trail)-1]
			}
		}
		lv.trail = trail
		return nil
	}
}

// fetch returns the candidate tuples for one positive step: an indexed
// probe on the step's full bound-column signature by default, or the
// seed scan-and-filter under DisableIndexes. useDelta restricts an IDB
// predicate of the current stratum to the previous round's delta (delta
// relations carry their own indexes: Reset clears the buckets but keeps
// the signatures, and Insert maintains them incrementally). The indexed
// paths append into the level's reusable buffers, so the steady state
// fetches without allocating.
func (ev *evaluator) fetch(lv *levelScratch, step *planStep, useDelta bool, delta map[string]*relation.Relation) ([]relation.Tuple, error) {
	pred := step.lit.Atom.Pred
	if ev.opts.DisableIndexes {
		return ev.scan(ast.Atom{Pred: pred, Args: lv.args}, useDelta, delta)
	}
	cols := step.probeCols
	vals := lv.vals[:0]
	for _, c := range cols {
		vals = append(vals, lv.args[c].Const)
	}
	lv.vals = vals
	dst := lv.tups[:0]
	switch {
	case useDelta && delta[pred] != nil:
		d := delta[pred]
		if len(cols) == 0 {
			dst = d.TuplesAppend(dst)
		} else {
			dst = d.LookupColsAppend(dst, cols, vals)
		}
	default:
		if rel, ok := ev.res.idb[pred]; ok {
			// IDB relations are not charged: they are derived scratch space.
			if len(cols) == 0 {
				dst = rel.TuplesAppend(dst)
			} else {
				dst = rel.LookupColsAppend(dst, cols, vals)
			}
		} else {
			if ev.opts.Probe != nil {
				out, handled, err := ev.opts.Probe.Probe(dst, pred, cols, vals)
				if err != nil {
					return nil, err
				}
				if handled {
					lv.tups = out
					return out, nil
				}
			}
			if len(cols) == 0 {
				dst = ev.db.TuplesAppend(dst, pred)
			} else {
				dst = ev.db.LookupColsAppend(dst, pred, cols, vals)
			}
		}
	}
	lv.tups = dst
	return dst, nil
}

// contains checks membership in an IDB result or the EDB store; EDB
// probes are charged to the store's counters (or routed, when a
// ProbeRouter claims the relation).
func (ev *evaluator) contains(pred string, t relation.Tuple) (bool, error) {
	if rel, ok := ev.res.idb[pred]; ok {
		return rel.Contains(t), nil
	}
	if ev.opts.Probe != nil {
		has, handled, err := ev.opts.Probe.Contains(pred, t)
		if err != nil {
			return false, err
		}
		if handled {
			return has, nil
		}
	}
	return ev.db.Probe(pred, t), nil
}

// scan returns candidate tuples for atom, preferring an indexed lookup on
// the first constant argument. useDelta restricts an IDB predicate of the
// current stratum to the previous round's delta.
func (ev *evaluator) scan(atom ast.Atom, useDelta bool, delta map[string]*relation.Relation) ([]relation.Tuple, error) {
	if useDelta {
		if d, ok := delta[atom.Pred]; ok {
			return filterByConstants(d.Tuples(), atom), nil
		}
	}
	if rel, ok := ev.res.idb[atom.Pred]; ok {
		// IDB relations are not charged: they are derived scratch space.
		for i, a := range atom.Args {
			if a.IsConst() {
				return filterByConstants(rel.Lookup(i, a.Const), atom), nil
			}
		}
		return filterByConstants(rel.Tuples(), atom), nil
	}
	if ev.opts.Probe != nil {
		// The unindexed path routes as a whole-relation read and filters
		// locally — the -noindex arm measures probe strategy, not routing.
		ts, handled, err := ev.opts.Probe.Probe(nil, atom.Pred, nil, nil)
		if err != nil {
			return nil, err
		}
		if handled {
			return filterByConstants(ts, atom), nil
		}
	}
	for i, a := range atom.Args {
		if a.IsConst() {
			return filterByConstants(ev.db.Lookup(atom.Pred, i, a.Const), atom), nil
		}
	}
	return filterByConstants(ev.db.Tuples(atom.Pred), atom), nil
}

// filterByConstants drops tuples that disagree with the atom's constant
// arguments (the unifier would reject them anyway; filtering early keeps
// the join loop tighter).
func filterByConstants(ts []relation.Tuple, atom ast.Atom) []relation.Tuple {
	hasConst := false
	for _, a := range atom.Args {
		if a.IsConst() {
			hasConst = true
			break
		}
	}
	if !hasConst {
		return ts
	}
	keep := func(t relation.Tuple) bool {
		// Tuple length always matches: planFor validated the relation's
		// arity against the atom once, at plan time.
		for i, a := range atom.Args {
			if a.IsConst() && !a.Const.Equal(t[i]) {
				return false
			}
		}
		return true
	}
	// Copy only from the first mismatch on: the common case where every
	// candidate survives returns the input slice unchanged.
	for j, t := range ts {
		if keep(t) {
			continue
		}
		out := append(ts[:0:0], ts[:j]...)
		for _, t := range ts[j+1:] {
			if keep(t) {
				out = append(out, t)
			}
		}
		return out
	}
	return ts
}

// Violations evaluates several constraint programs and returns the names
// (indexes) of those whose panic predicate is derived.
func Violations(constraints []*ast.Program, db *store.Store) ([]int, error) {
	var out []int
	for i, c := range constraints {
		bad, err := PanicHolds(c, db)
		if err != nil {
			return nil, fmt.Errorf("constraint %d: %w", i, err)
		}
		if bad {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out, nil
}
