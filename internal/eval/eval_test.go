package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func mkdb(t *testing.T, facts string) *store.Store {
	t.Helper()
	db := store.New()
	if facts != "" {
		if err := db.LoadFacts(parser.MustParseProgram(facts)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestStratifyBasic(t *testing.T) {
	prog := parser.MustParseProgram(`
		p(X) :- e(X).
		q(X) :- p(X) & not r(X).
		r(X) :- f(X).
		panic :- q(X).`)
	strata, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	level := map[string]int{}
	for i, layer := range strata {
		for _, p := range layer {
			level[p] = i
		}
	}
	if level["r"] >= level["q"] {
		t.Errorf("r (level %d) must be below q (level %d)", level["r"], level["q"])
	}
	if level["q"] > level["panic"] {
		t.Errorf("panic (level %d) must not be below q (level %d)", level["panic"], level["q"])
	}
}

func TestStratifyRejectsNegationInCycle(t *testing.T) {
	prog := parser.MustParseProgram(`
		win(X) :- move(X,Y) & not win(Y).`)
	if _, err := Stratify(prog); err == nil {
		t.Error("negation through recursion accepted")
	}
}

func TestEvalConjunctive(t *testing.T) {
	// Example 2.1: no employee in both sales and accounting.
	prog := parser.MustParseProgram("panic :- emp(E,sales) & emp(E,accounting).")
	db := mkdb(t, "emp(ann,sales). emp(bob,accounting).")
	bad, err := PanicHolds(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("constraint violated on satisfying database")
	}
	if _, err := db.Insert("emp", relation.Strs("ann", "accounting")); err != nil {
		t.Fatal(err)
	}
	bad, err = PanicHolds(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("violation not detected")
	}
}

func TestEvalNegationAndComparison(t *testing.T) {
	// Example 2.2: every employee with salary under 100 must be in dept.
	prog := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D) & S < 100.")
	db := mkdb(t, "emp(ann,toy,50). dept(toy).")
	if bad, _ := PanicHolds(prog, db); bad {
		t.Error("false violation")
	}
	if _, err := db.Insert("emp", relation.TupleOf(ast.Str("bob"), ast.Str("shoe"), ast.Int(50))); err != nil {
		t.Fatal(err)
	}
	if bad, _ := PanicHolds(prog, db); !bad {
		t.Error("missed violation: bob in missing dept with low salary")
	}
	// High salary employees are exempt.
	db2 := mkdb(t, "emp(eve,ghost,200). dept(toy).")
	if bad, _ := PanicHolds(prog, db2); bad {
		t.Error("high-salary employee should not trigger the dept check")
	}
}

func TestEvalUnionOfCQs(t *testing.T) {
	// Example 2.3: salary within the department's range.
	prog := parser.MustParseProgram(`
		panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.
		panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.`)
	db := mkdb(t, "emp(ann,toy,50). salRange(toy,40,60).")
	if bad, _ := PanicHolds(prog, db); bad {
		t.Error("in-range salary flagged")
	}
	if _, err := db.Insert("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(10))); err != nil {
		t.Fatal(err)
	}
	if bad, _ := PanicHolds(prog, db); !bad {
		t.Error("below-range salary missed")
	}
}

func TestEvalRecursiveBoss(t *testing.T) {
	// Example 2.4: nobody is his or her own boss, with transitive boss.
	prog := parser.MustParseProgram(`
		panic :- boss(E,E).
		boss(E,M) :- emp(E,D,S) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`)
	// ann works in toy managed by bob; bob works in shoe managed by carl;
	// carl works in ops managed by ann: a management cycle.
	db := mkdb(t, `
		emp(ann,toy,50). emp(bob,shoe,60). emp(carl,ops,70).
		manager(toy,bob). manager(shoe,carl). manager(ops,ann).`)
	bad, err := PanicHolds(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("management cycle not detected through recursive boss")
	}
	// Break the cycle.
	db.Delete("manager", relation.Strs("ops", "ann"))
	if bad, _ := PanicHolds(prog, db); bad {
		t.Error("acyclic management flagged")
	}
}

func TestEvalTransitiveClosureCompleteness(t *testing.T) {
	// Path over a 60-node chain: semi-naive must reach the far end.
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	db := store.New()
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := db.Insert("edge", relation.Ints(int64(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n + 1) / 2
	if got := res.Relation("reach").Len(); got != want {
		t.Errorf("reach has %d tuples, want %d", got, want)
	}
	if !res.Relation("reach").Contains(relation.Ints(0, n)) {
		t.Error("endpoint not reached")
	}
}

func TestEvalMutualRecursion(t *testing.T) {
	prog := parser.MustParseProgram(`
		even(X) :- zero(X).
		odd(Y) :- even(X) & succ(X,Y).
		even(Y) :- odd(X) & succ(X,Y).`)
	db := store.New()
	if _, err := db.Insert("zero", relation.Ints(0)); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if _, err := db.Insert("succ", relation.Ints(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i <= 20; i++ {
		inEven := res.Relation("even").Contains(relation.Ints(i))
		inOdd := res.Relation("odd").Contains(relation.Ints(i))
		if (i%2 == 0) != inEven || (i%2 == 1) != inOdd {
			t.Errorf("n=%d: even=%v odd=%v", i, inEven, inOdd)
		}
	}
}

func TestEvalFig61Intervals(t *testing.T) {
	// The Fig 6.1 program: merge overlapping intervals, then test
	// coverage of the inserted interval (4,8) given (3,6) and (5,10).
	prog := parser.MustParseProgram(`
		interval(X,Y) :- l(X,Y).
		interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W.
		ok :- interval(X,Y) & X <= 4 & 8 <= Y.`)
	db := mkdb(t, "l(3,6). l(5,10).")
	res, err := Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation("interval").Contains(relation.Ints(3, 10)) {
		t.Error("merged interval (3,10) not derived")
	}
	if !res.Holds("ok") {
		t.Error("coverage of [4,8] by [3,6] ∪ [5,10] not detected")
	}
	// With a gap, coverage must fail.
	db2 := mkdb(t, "l(3,6). l(7,10).")
	res2, err := Eval(prog, db2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Holds("ok") {
		t.Error("coverage claimed across the gap (6,7)")
	}
}

func TestEvalIDBNegation(t *testing.T) {
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).
		panic :- node(X) & node(Y) & not reach(X,Y) & X <> Y.`)
	db := mkdb(t, "node(1). node(2). node(3). edge(1,2). edge(2,3). edge(3,1).")
	if bad, _ := PanicHolds(prog, db); bad {
		t.Error("strongly connected graph flagged as unreachable")
	}
	db.Delete("edge", relation.Ints(3, 1))
	if bad, _ := PanicHolds(prog, db); !bad {
		t.Error("unreachable pair missed")
	}
}

func TestEvalConstantsInAtoms(t *testing.T) {
	prog := parser.MustParseProgram(`panic :- emp(E,sales) & emp(E,accounting).`)
	db := mkdb(t, "emp(ann,sales). emp(ann,accounting). emp(bob,toy).")
	bad, err := PanicHolds(prog, db)
	if err != nil || !bad {
		t.Errorf("constant-argument join failed: bad=%v err=%v", bad, err)
	}
}

func TestEvalRepeatedVariables(t *testing.T) {
	prog := parser.MustParseProgram("panic :- boss(E,E).")
	db := mkdb(t, "boss(ann,bob). boss(carl,carl).")
	if bad, _ := PanicHolds(prog, db); !bad {
		t.Error("diagonal tuple missed by repeated variable")
	}
	db2 := mkdb(t, "boss(ann,bob).")
	if bad, _ := PanicHolds(prog, db2); bad {
		t.Error("non-diagonal tuple matched repeated variable")
	}
}

func TestEvalEmptyEDB(t *testing.T) {
	prog := parser.MustParseProgram("panic :- r(X) & X > 0.")
	if bad, _ := PanicHolds(prog, store.New()); bad {
		t.Error("panic derived from empty database")
	}
}

func TestEvalChargesEDBReads(t *testing.T) {
	prog := parser.MustParseProgram("panic :- r(X) & s(X).")
	db := mkdb(t, "r(1). r(2). s(2).")
	db.ResetReads()
	if _, err := Eval(prog, db); err != nil {
		t.Fatal(err)
	}
	if db.TotalReads() == 0 {
		t.Error("evaluation charged no reads")
	}
}

func TestViolations(t *testing.T) {
	c1 := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D).")
	c2 := parser.MustParseProgram("panic :- emp(E,D,S) & S > 100.")
	db := mkdb(t, "emp(ann,ghost,200). dept(toy).")
	got, err := Violations([]*ast.Program{c1, c2}, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("Violations = %v, want both", got)
	}
}

func TestEvalLinearChainScaling(t *testing.T) {
	// Smoke test that semi-naive evaluation is not quadratic-in-rounds
	// blown up: a 300-node chain closure completes quickly.
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	db := store.New()
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := db.Insert("edge", relation.Ints(int64(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Eval(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Relation("reach").Len(), n*(n+1)/2; got != want {
		t.Errorf("reach = %d, want %d", got, want)
	}
}

func TestEvalDeterministic(t *testing.T) {
	prog := parser.MustParseProgram(`
		p(X,Y) :- e(X,Y).
		p(X,Y) :- p(X,Z) & e(Z,Y).`)
	db := store.New()
	for i := 0; i < 20; i++ {
		if _, err := db.Insert("e", relation.Ints(int64(i%5), int64((i*3)%7))); err != nil {
			t.Fatal(err)
		}
	}
	var first string
	for trial := 0; trial < 3; trial++ {
		res, err := Eval(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		s := fmt.Sprint(res.Relation("p").Len())
		if trial == 0 {
			first = s
		} else if s != first {
			t.Fatal("evaluation nondeterministic across runs")
		}
	}
}

// TestGoalHoldsAgainstEval cross-checks the pruned early-exit evaluation
// against the full evaluator on randomized databases and a spread of
// programs, including programs with rules irrelevant to the goal.
func TestGoalHoldsAgainstEval(t *testing.T) {
	programs := []string{
		"panic :- emp(E,D) & not dept(D).",
		// Irrelevant side computation that GoalHolds must skip.
		"huge(X,Y) :- edge(X,Y).\nhuge(X,Y) :- huge(X,Z) & huge(Z,Y).\npanic :- emp(E,D) & not dept(D).",
		"reach(X,Y) :- edge(X,Y).\nreach(X,Y) :- reach(X,Z) & edge(Z,Y).\npanic :- reach(X,X).",
	}
	rng := rand.New(rand.NewSource(55))
	for pi, src := range programs {
		prog := parser.MustParseProgram(src)
		for trial := 0; trial < 60; trial++ {
			db := store.New()
			for _, rel := range []string{"emp", "edge"} {
				for i := 0; i < rng.Intn(4); i++ {
					if _, err := db.Insert(rel, relation.Ints(int64(rng.Intn(3)), int64(rng.Intn(3)))); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < rng.Intn(3); i++ {
				if _, err := db.Insert("dept", relation.Ints(int64(rng.Intn(3)))); err != nil {
					t.Fatal(err)
				}
			}
			want, err := PanicHolds(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := GoalHolds(prog, db, ast.PanicPred)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("program %d trial %d: GoalHolds=%v PanicHolds=%v\n%s\n%s", pi, trial, got, want, prog, db)
			}
		}
	}
}

func TestGoalHoldsSkipsIrrelevantWork(t *testing.T) {
	// The irrelevant transitive closure over a long chain must not be
	// computed when the goal doesn't depend on it: compare reads.
	prog := parser.MustParseProgram(`
		huge(X,Y) :- edge(X,Y).
		huge(X,Y) :- huge(X,Z) & edge(Z,Y).
		panic :- emp(E,D) & not dept(D).`)
	db := store.New()
	for i := 0; i < 200; i++ {
		if _, err := db.Insert("edge", relation.Ints(int64(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("emp", relation.Ints(1, 2)); err != nil {
		t.Fatal(err)
	}
	db.ResetReads()
	if _, err := GoalHolds(prog, db, ast.PanicPred); err != nil {
		t.Fatal(err)
	}
	if got := db.Reads("edge"); got != 0 {
		t.Errorf("GoalHolds read %d edge tuples for an independent goal", got)
	}
}

func TestGoalHoldsNoRules(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X).")
	ok, err := GoalHolds(prog, store.New(), ast.PanicPred)
	if err != nil || ok {
		t.Errorf("GoalHolds with no goal rules: %v %v", ok, err)
	}
}
