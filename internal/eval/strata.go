// Package eval evaluates datalog programs with stratified negation and
// arithmetic comparison subgoals, bottom-up and semi-naively. It is the
// ground-truth engine of the repository: every partial-information test
// in the paper (subsumption, update rewriting, complete local tests) is
// validated against full evaluation by this package.
package eval

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// depEdge is an edge head -> bodyPred in the predicate dependency graph,
// marked negative when the body occurrence is negated.
type depEdge struct {
	from, to string
	negative bool
}

// Stratify splits the IDB predicates of prog into strata such that every
// positive dependency stays within or below a stratum and every negative
// dependency points strictly below. It returns the strata bottom-up, or
// an error when the program is not stratifiable (a negation inside a
// recursive cycle).
func Stratify(prog *ast.Program) ([][]string, error) {
	idb := prog.IDBPreds()
	var edges []depEdge
	adj := map[string][]string{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() {
				continue
			}
			if !idb[l.Atom.Pred] {
				continue
			}
			edges = append(edges, depEdge{from: r.Head.Pred, to: l.Atom.Pred, negative: l.IsNeg()})
			adj[r.Head.Pred] = append(adj[r.Head.Pred], l.Atom.Pred)
		}
	}
	// Strongly connected components of the dependency graph.
	var preds []string
	for p := range idb {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	comp := sccStrings(preds, adj)
	// A negative edge within one SCC means negation through recursion.
	for _, e := range edges {
		if e.negative && comp[e.from] == comp[e.to] {
			return nil, fmt.Errorf("eval: program is not stratifiable: %s depends negatively on %s within a recursive component", e.from, e.to)
		}
	}
	// Longest-path layering over the condensation: stratum(c) >=
	// stratum(dep) for positive edges, > for negative edges.
	ncomp := 0
	for _, c := range comp {
		if c+1 > ncomp {
			ncomp = c + 1
		}
	}
	stratum := make([]int, ncomp)
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			cf, ct := comp[e.from], comp[e.to]
			if cf == ct {
				continue
			}
			need := stratum[ct]
			if e.negative {
				need++
			}
			if stratum[cf] < need {
				stratum[cf] = need
				changed = true
				if stratum[cf] > len(preds) {
					return nil, fmt.Errorf("eval: internal error: stratum overflow")
				}
			}
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]string, maxS+1)
	for _, p := range preds {
		s := stratum[comp[p]]
		out[s] = append(out[s], p)
	}
	for _, layer := range out {
		sort.Strings(layer)
	}
	return out, nil
}

// sccStrings computes SCC ids for string nodes (iterative Tarjan).
func sccStrings(nodes []string, adj map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	comp := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next, ncomp := 0, 0

	type frame struct {
		v  string
		ei int
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		callStack := []frame{{v: root}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
