package eval

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/store"
)

// Compile-once evaluation. Every piece of per-call preparation the
// evaluator used to redo on each Eval/GoalHolds — goal pruning,
// validation, stratification, bound-first join planning, subgoal-arity
// checks against the database — is hoisted into a compiled object that
// depends only on (program, goal, index mode, store shape). A PlanCache
// memoizes compiled objects across the update stream, so the steady
// state of Checker.Apply runs ready-made plans: the per-update cost is
// the join itself, not re-deriving how to join.

// stratumPlan is one stratum with its evaluation bookkeeping
// precomputed: the rules deriving its predicates, whether the stratum is
// recursive (needs semi-naive iteration), and the membership set the
// semi-naive rewriting consults per body literal.
type stratumPlan struct {
	preds     []string
	rules     []*ast.Rule
	recursive bool
	inLayer   map[string]bool
}

// compiled is a ready-to-run evaluation: the (goal-pruned) program, its
// strata, and one join plan per rule with the subgoal arity checks
// already folded in. A compiled object is immutable after construction
// and safe to share across concurrent evaluations.
type compiled struct {
	prog *ast.Program
	// goal is the predicate GoalHolds stops on; empty for full Eval.
	goal string
	// noRules marks a goal with no deriving rules after pruning: the
	// goal is trivially underivable and nothing else is compiled.
	noRules bool
	strata  []stratumPlan
	// goalLevel is the stratum index of the goal predicate (-1 when no
	// goal): evaluation stops at the first derivation in that stratum.
	goalLevel int
	plans     map[*ast.Rule]*rulePlan
	// idbArity maps each derived predicate to its arity, for allocating
	// result relations without re-walking the program.
	idbArity map[string]int
}

// compile builds the ready-to-run evaluation for prog (pruned to goal
// when goal is non-empty) against the current shape of db. The database
// matters only through its shape — which relations exist, with which
// arities — never through its tuples, which is what makes compiled
// objects cacheable across the update stream.
func compile(prog *ast.Program, db *store.Store, goal string, opts Options) (*compiled, error) {
	c := &compiled{prog: prog, goal: goal, goalLevel: -1}
	if goal != "" {
		c.prog = pruneToGoal(prog, goal)
		if len(c.prog.RulesFor(goal)) == 0 {
			c.noRules = true
			return c, nil
		}
	}
	if err := c.prog.Validate(); err != nil {
		return nil, err
	}
	layers, err := Stratify(c.prog)
	if err != nil {
		return nil, err
	}
	arity := c.prog.Preds()
	idb := c.prog.IDBPreds()
	c.idbArity = make(map[string]int, len(idb))
	for p := range idb {
		c.idbArity[p] = arity[p]
	}
	c.plans = make(map[*ast.Rule]*rulePlan)
	for i, layer := range layers {
		sp := stratumPlan{preds: layer, inLayer: make(map[string]bool, len(layer))}
		for _, p := range layer {
			sp.inLayer[p] = true
			if p == goal {
				c.goalLevel = i
			}
			sp.rules = append(sp.rules, c.prog.RulesFor(p)...)
		}
		for _, r := range sp.rules {
			for _, l := range r.Body {
				if !l.IsComp() && sp.inLayer[l.Atom.Pred] {
					sp.recursive = true
				}
			}
			if _, ok := c.plans[r]; ok {
				continue
			}
			p, err := planRule(r, !opts.DisableIndexes)
			if err != nil {
				return nil, err
			}
			// Validate subgoal arities once, at compile time: a stored
			// relation whose arity disagrees with the atom can never match
			// it (Insert enforces uniform arity within a relation), so the
			// step is marked empty and the join loop needs no per-tuple
			// length check. IDB and delta relations are allocated from the
			// program's own arity map and cannot disagree. Relation
			// creation bumps the store's schema version, so a cached plan
			// never outlives the shape it validated against.
			for si := range p.steps {
				st := &p.steps[si]
				if !st.lit.IsPos() || idb[st.lit.Atom.Pred] {
					continue
				}
				if rel := db.Relation(st.lit.Atom.Pred); rel != nil && rel.Arity() != len(st.lit.Atom.Args) {
					st.empty = true
				}
			}
			c.plans[r] = p
		}
		c.strata = append(c.strata, sp)
	}
	return c, nil
}

// compiledFor resolves the compiled evaluation for the call, through the
// options' plan cache when one is attached and by direct compilation
// otherwise.
func compiledFor(prog *ast.Program, db *store.Store, goal string, opts Options) (*compiled, error) {
	if opts.Cache != nil {
		return opts.Cache.compiledFor(prog, db, goal, opts)
	}
	return compile(prog, db, goal, opts)
}

// planKey identifies a compiled evaluation: the program content
// fingerprint, the goal adornment, the index mode, and the store shape
// (identity + schema version). The store's identity must participate —
// compiled plans bake in arity checks against one particular database,
// and schema counters of distinct stores advance independently, so
// (fp, goal, schema) alone could alias two stores.
type planKey struct {
	fp      uint64
	goal    string
	noIndex bool
	storeID uint64
	schema  uint64
}

const (
	// planCacheCap bounds the compiled-plan map; at the cap the map is
	// reset wholesale (same policy as core's decision cache — entries
	// are recomputable, so eviction precision is not worth the
	// bookkeeping).
	planCacheCap = 4096
	// planFPCap bounds the program-pointer → fingerprint memo.
	planFPCap = 4096
)

// PlanCache memoizes compiled evaluations across calls. It is safe for
// concurrent use; core.Checker attaches one to its evaluation options so
// every phase-4 global check and admission check reuses plans across the
// update stream. Structural store changes (relation creation, Replace,
// EnsureIndex) advance the store's schema version and thereby miss the
// cache naturally; constraint-set changes must call Invalidate.
type PlanCache struct {
	mu sync.Mutex
	// fps memoizes program fingerprints by pointer identity: constraint
	// programs are parsed once and reused across the update stream, so
	// the (allocating) content hash is computed once per program, not
	// once per call.
	fps     map[*ast.Program]uint64
	entries map[planKey]*compiled
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewPlanCache creates an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{
		fps:     make(map[*ast.Program]uint64),
		entries: make(map[planKey]*compiled),
	}
}

// Stats returns the cumulative hit/miss counters and the current number
// of cached compiled evaluations.
func (pc *PlanCache) Stats() (hits, misses int64, entries int) {
	pc.mu.Lock()
	entries = len(pc.entries)
	pc.mu.Unlock()
	return pc.hits.Load(), pc.misses.Load(), entries
}

// ResetStats zeroes the hit/miss counters without dropping plans, so a
// warmed cache can report one run's rates in isolation (ccheck -repeat).
func (pc *PlanCache) ResetStats() {
	pc.hits.Store(0)
	pc.misses.Store(0)
}

// Invalidate drops every cached plan (the fingerprint memo survives: it
// keys on program identity, which outlives any store or constraint-set
// change). Call it when the constraint set changes.
func (pc *PlanCache) Invalidate() {
	pc.mu.Lock()
	pc.entries = make(map[planKey]*compiled)
	pc.mu.Unlock()
}

// fingerprintLocked returns the content fingerprint for prog, memoized
// by pointer. Caller holds pc.mu.
func (pc *PlanCache) fingerprintLocked(prog *ast.Program) uint64 {
	if fp, ok := pc.fps[prog]; ok {
		return fp
	}
	h := fnv.New64a()
	h.Write([]byte(prog.String()))
	fp := h.Sum64()
	if len(pc.fps) >= planFPCap {
		pc.fps = make(map[*ast.Program]uint64)
	}
	pc.fps[prog] = fp
	return fp
}

// compiledFor returns the cached compiled evaluation for the call,
// compiling and caching on miss. Compilation runs outside the lock —
// concurrent first calls may compile twice, but both results are
// identical and one simply wins the store.
func (pc *PlanCache) compiledFor(prog *ast.Program, db *store.Store, goal string, opts Options) (*compiled, error) {
	pc.mu.Lock()
	key := planKey{
		fp:      pc.fingerprintLocked(prog),
		goal:    goal,
		noIndex: opts.DisableIndexes,
		storeID: db.ID(),
		schema:  db.SchemaVersion(),
	}
	if e, ok := pc.entries[key]; ok {
		pc.mu.Unlock()
		pc.hits.Add(1)
		return e, nil
	}
	pc.mu.Unlock()
	e, err := compile(prog, db, goal, opts)
	if err != nil {
		return nil, err // compile errors are not cached
	}
	pc.misses.Add(1)
	pc.mu.Lock()
	if len(pc.entries) >= planCacheCap {
		pc.entries = make(map[planKey]*compiled)
	}
	pc.entries[key] = e
	pc.mu.Unlock()
	return e, nil
}
