package eval

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/residual"
	"repro/internal/store"
)

// naiveEval is a brute-force oracle: ground every rule over the active
// domain and iterate to fixpoint, stratum by stratum. Exponential in the
// number of variables — usable only on tiny instances, which is exactly
// what an oracle is for.
func naiveEval(t *testing.T, prog *ast.Program, db *store.Store) map[string]map[string]relation.Tuple {
	t.Helper()
	strata, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Active domain: constants in the database and the program.
	var adom []ast.Value
	seen := map[string]bool{}
	addV := func(v ast.Value) {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			adom = append(adom, v)
		}
	}
	for _, name := range db.Names() {
		for _, tu := range db.Tuples(name) {
			for _, v := range tu {
				addV(v)
			}
		}
	}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() {
				for _, tm := range []ast.Term{l.Comp.Left, l.Comp.Right} {
					if tm.IsConst() {
						addV(tm.Const)
					}
				}
				continue
			}
			for _, tm := range l.Atom.Args {
				if tm.IsConst() {
					addV(tm.Const)
				}
			}
		}
		for _, tm := range r.Head.Args {
			if tm.IsConst() {
				addV(tm.Const)
			}
		}
	}
	facts := map[string]map[string]relation.Tuple{}
	holds := func(pred string, tu relation.Tuple) bool {
		if m, ok := facts[pred]; ok {
			if _, ok := m[tu.Key()]; ok {
				return true
			}
		}
		return db.Contains(pred, tu)
	}
	add := func(pred string, tu relation.Tuple) bool {
		if holds(pred, tu) {
			return false
		}
		if facts[pred] == nil {
			facts[pred] = map[string]relation.Tuple{}
		}
		facts[pred][tu.Key()] = tu
		return true
	}
	ground := func(a ast.Atom, env map[string]ast.Value) relation.Tuple {
		tu := make(relation.Tuple, len(a.Args))
		for i, tm := range a.Args {
			if tm.IsVar() {
				tu[i] = env[tm.Var]
			} else {
				tu[i] = tm.Const
			}
		}
		return tu
	}
	for _, layer := range strata {
		inLayer := map[string]bool{}
		for _, p := range layer {
			inLayer[p] = true
		}
		for changed := true; changed; {
			changed = false
			for _, r := range prog.Rules {
				if !inLayer[r.Head.Pred] {
					continue
				}
				vars := r.Vars()
				env := map[string]ast.Value{}
				var rec func(i int)
				rec = func(i int) {
					if i == len(vars) {
						for _, l := range r.Body {
							switch {
							case l.IsComp():
								g := l.Comp.Apply(substOf(env))
								v, ok := g.Ground()
								if !ok || !v {
									return
								}
							case l.IsNeg():
								if holds(l.Atom.Pred, ground(l.Atom, env)) {
									return
								}
							default:
								if !holds(l.Atom.Pred, ground(l.Atom, env)) {
									return
								}
							}
						}
						if add(r.Head.Pred, ground(r.Head, env)) {
							changed = true
						}
						return
					}
					for _, v := range adom {
						env[vars[i]] = v
						rec(i + 1)
					}
				}
				rec(0)
			}
		}
	}
	return facts
}

func substOf(env map[string]ast.Value) ast.Subst {
	s := ast.Subst{}
	for v, val := range env {
		s[v] = ast.C(val)
	}
	return s
}

// TestEvalAgainstNaiveOracle cross-checks the semi-naive evaluator
// against brute-force grounding on randomized tiny databases across a
// spread of program shapes.
func TestEvalAgainstNaiveOracle(t *testing.T) {
	programs := []string{
		"p(X) :- e(X) & f(X).",
		"p(X) :- e(X).\np(X) :- f(X).",
		"p(X,Y) :- e(X,Y) & X < Y.",
		"p(X) :- e(X) & not f(X).",
		"reach(X,Y) :- edge(X,Y).\nreach(X,Y) :- reach(X,Z) & edge(Z,Y).",
		"odd(Y) :- even(X) & succ(X,Y).\neven(Y) :- odd(X) & succ(X,Y).\neven(X) :- zero(X).",
		"q(X) :- e(X) & not p(X).\np(X) :- f(X) & g(X).",
		"p(X) :- edge(1,X) & edge(X,Y) & f(Y).",
		"p(X) :- edge(X,X) & e(X).",
	}
	arity := map[string]int{"e": 1, "f": 1, "g": 1, "edge": 2, "succ": 2, "zero": 1}
	rng := rand.New(rand.NewSource(4))
	// One plan cache shared by every program and trial: compiled plans
	// must never leak results across the (program, store) combinations the
	// key distinguishes.
	cache := NewPlanCache()
	for pi, src := range programs {
		prog := parser.MustParseProgram(src)
		// Binary e for the comparison program.
		local := map[string]int{}
		for _, rel := range prog.EDBPreds() {
			a := arity[rel]
			if rel == "e" && pi == 2 {
				a = 2
			}
			local[rel] = a
		}
		for trial := 0; trial < 40; trial++ {
			db := store.New()
			for rel, ar := range local {
				for i := 0; i < rng.Intn(4); i++ {
					tu := make(relation.Tuple, ar)
					for j := range tu {
						tu[j] = ast.Int(int64(rng.Intn(3)))
					}
					if _, err := db.Insert(rel, tu); err != nil {
						t.Fatal(err)
					}
				}
			}
			// All three arms — indexed probes with bound-first planning,
			// the plain scan path, and the indexed path through the shared
			// plan cache — must agree with the oracle exactly, and
			// indexing must never read more store tuples than the scans it
			// replaces. Each arm gets its own clone so the read counters
			// are per-arm.
			dbIdx, dbScan, dbCached := db.Clone(), db.Clone(), db.Clone()
			resIdx, err := EvalWith(prog, dbIdx, Options{})
			if err != nil {
				t.Fatalf("program %d trial %d (indexed): %v", pi, trial, err)
			}
			resScan, err := EvalWith(prog, dbScan, Options{DisableIndexes: true})
			if err != nil {
				t.Fatalf("program %d trial %d (scan): %v", pi, trial, err)
			}
			resCached, err := EvalWith(prog, dbCached, Options{Cache: cache})
			if err != nil {
				t.Fatalf("program %d trial %d (cached): %v", pi, trial, err)
			}
			// A second evaluation on the same store hits the cached plan
			// and must reproduce the first answer.
			resCached2, err := EvalWith(prog, dbCached, Options{Cache: cache})
			if err != nil {
				t.Fatalf("program %d trial %d (cached, reuse): %v", pi, trial, err)
			}
			want := naiveEval(t, prog, db)
			for _, arm := range []struct {
				name string
				res  *Result
			}{{"indexed", resIdx}, {"scan", resScan}, {"cached", resCached}, {"cached-reuse", resCached2}} {
				for pred := range prog.IDBPreds() {
					got := arm.res.Tuples(pred)
					wantSet := want[pred]
					if len(got) != len(wantSet) {
						t.Fatalf("program %d trial %d (%s): %s has %d tuples, oracle %d\nprog:\n%s\ndb:\n%s",
							pi, trial, arm.name, pred, len(got), len(wantSet), prog, db)
					}
					for _, tu := range got {
						if _, ok := wantSet[tu.Key()]; !ok {
							t.Fatalf("program %d trial %d (%s): %s derived %v not in oracle", pi, trial, arm.name, pred, tu)
						}
					}
				}
			}
			if ri, rs := dbIdx.TotalReads(), dbScan.TotalReads(); ri > rs {
				t.Fatalf("program %d trial %d: indexed eval read %d store tuples, scan read %d\nprog:\n%s\ndb:\n%s",
					pi, trial, ri, rs, prog, db)
			}
		}
	}
	// Every trial re-evaluated once on an unchanged store, so the shared
	// cache must have served at least one hit per trial.
	if hits, misses, entries := cache.Stats(); hits == 0 || misses == 0 || entries == 0 {
		t.Fatalf("shared plan cache unused: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}

// TestResidualAgainstOracle cross-checks residual compilation against
// the full evaluator AND the brute-force oracle: for every randomized
// (constraint, database, update) with a constraint-satisfying pre-state,
// the compiled residual's verdict, the rendered residual program, the
// full constraint on the post-update store, and naive grounding must all
// agree. The constraint pool covers constant arguments (pinned
// positions), repeated variables (unification guards), negation, and
// comparisons; the update pool covers inserts and deletes.
func TestResidualAgainstOracle(t *testing.T) {
	constraints := []string{
		"panic :- e(X) & f(X).",
		"panic :- e(X) & not f(X).",
		"panic :- edge(X,X).",
		"panic :- edge(X,Y) & edge(Y,X) & X < Y.",
		"panic :- edge(1,X) & f(X).",
		"panic :- e(X) & X > 1.",
		"panic :- edge(X,Y) & f(Z) & X <= Z & Z <= Y.",
		"panic :- edge(X,2) & not e(X).",
	}
	arity := map[string]int{"e": 1, "f": 1, "edge": 2}
	rng := rand.New(rand.NewSource(9))
	rcache := residual.NewCache()
	checked := 0
	for pi, src := range constraints {
		prog := parser.MustParseProgram(src)
		rels := prog.EDBPreds()
		for trial := 0; trial < 120; trial++ {
			db := store.New()
			for _, rel := range rels {
				db.MustEnsure(rel, arity[rel])
				for i := 0; i < rng.Intn(4); i++ {
					tu := make(relation.Tuple, arity[rel])
					for j := range tu {
						tu[j] = ast.Int(int64(rng.Intn(3)))
					}
					if _, err := db.Insert(rel, tu); err != nil {
						t.Fatal(err)
					}
				}
			}
			// The residual argument assumes the constraint holds before the
			// update; drop pre-violating states.
			if pre, err := PanicHolds(prog, db.Clone()); err != nil || pre {
				if err != nil {
					t.Fatal(err)
				}
				continue
			}
			rel := rels[rng.Intn(len(rels))]
			tu := make(relation.Tuple, arity[rel])
			for j := range tu {
				tu[j] = ast.Int(int64(rng.Intn(3)))
			}
			u := store.Ins(rel, tu)
			if rng.Intn(3) == 0 {
				u = store.Del(rel, tu)
			}
			res, _, ok := rcache.For(prog, u, db, residual.Options{})
			if !ok {
				t.Fatalf("constraint %d not residual-eligible", pi)
			}
			// Each trial has its own store (the cache keys on store
			// identity), so the hit path is exercised by a repeat lookup.
			if again, hit, _ := rcache.For(prog, u, db, residual.Options{}); !hit || again != res {
				t.Fatalf("constraint %d trial %d: repeat lookup missed the pattern cache", pi, trial)
			}
			post := db.Clone()
			if err := u.Apply(post); err != nil {
				t.Fatal(err)
			}
			full, err := PanicHolds(prog, post.Clone())
			if err != nil {
				t.Fatal(err)
			}
			rendered, err := PanicHolds(res.Program(u.Tuple), post.Clone())
			if err != nil {
				t.Fatalf("constraint %d trial %d: rendered residual: %v\n%s", pi, trial, err, res.Program(u.Tuple))
			}
			naive := naiveEval(t, prog, post)
			_, oracle := naive[ast.PanicPred]
			got := res.Decide(post, u.Tuple)
			if got != full || got != oracle || rendered != full {
				t.Fatalf("constraint %d trial %d (%v): residual=%v rendered=%v eval=%v oracle=%v\nprog:\n%s\ndb:\n%s",
					pi, trial, u, got, rendered, full, oracle, prog, db)
			}
			checked++
		}
	}
	if checked < 200 {
		t.Fatalf("only %d trials survived the pre-state filter", checked)
	}
	// The shared residual cache must have served repeats of the bounded
	// pattern space from memory.
	if hits, _, compiled, _ := rcache.Stats(); hits == 0 || compiled == 0 {
		t.Fatalf("residual cache unused: hits=%d compiled=%d", hits, compiled)
	}
}
