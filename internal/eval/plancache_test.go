package eval

import (
	"sync"
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

// TestPlanCacheSchemaInvalidation pins the coherence contract: data-only
// updates reuse the cached plan, while every structural store change —
// relation creation, Replace, EnsureIndex — advances the schema version
// and forces a recompile.
func TestPlanCacheSchemaInvalidation(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X) & not f(X).")
	db := store.New()
	db.MustEnsure("e", 1)
	db.MustEnsure("f", 1)
	if _, err := db.Insert("e", relation.Ints(1)); err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	evalN := func(want int) {
		t.Helper()
		res, err := EvalWith(prog, db, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Tuples("p")); got != want {
			t.Fatalf("derived %d p-tuples, want %d", got, want)
		}
	}
	misses := func() int64 {
		_, m, _ := cache.Stats()
		return m
	}

	evalN(1)
	if m := misses(); m != 1 {
		t.Fatalf("first eval: misses = %d, want 1", m)
	}
	// Data-only change: same schema version, cached plan reused.
	if _, err := db.Insert("e", relation.Ints(2)); err != nil {
		t.Fatal(err)
	}
	evalN(2)
	if m := misses(); m != 1 {
		t.Fatalf("after data-only insert: misses = %d, want 1 (plan must be reused)", m)
	}
	// Replace bumps the schema version: the plan is recompiled and the
	// answer reflects the replaced contents.
	if err := db.Replace("f", 1, []relation.Tuple{relation.Ints(2)}); err != nil {
		t.Fatal(err)
	}
	evalN(1)
	if m := misses(); m != 2 {
		t.Fatalf("after Replace: misses = %d, want 2 (plan must be recompiled)", m)
	}
	// EnsureIndex bumps it too (a fresh compile may now pick the index).
	if err := db.EnsureIndex("e", 0); err != nil {
		t.Fatal(err)
	}
	evalN(1)
	if m := misses(); m != 3 {
		t.Fatalf("after EnsureIndex: misses = %d, want 3", m)
	}
	// Relation creation likewise: a new relation can flip a compiled
	// arity-mismatch mark.
	db.MustEnsure("g", 2)
	evalN(1)
	if m := misses(); m != 4 {
		t.Fatalf("after relation creation: misses = %d, want 4", m)
	}
	// Steady state again: one more eval is a pure hit.
	evalN(1)
	if m := misses(); m != 4 {
		t.Fatalf("steady state: misses = %d, want 4", m)
	}
}

// TestPlanCacheDistinctStores shares one cache across two stores whose
// shapes disagree: the plan compiled against one bakes in an
// arity-mismatch mark the other must not inherit. This is the aliasing
// the store identity in the cache key prevents — the schema counters of
// fresh stores start equal.
func TestPlanCacheDistinctStores(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X) & q(X).")
	cache := NewPlanCache()

	good := store.New()
	good.MustEnsure("e", 1)
	good.MustEnsure("q", 1)
	for _, rel := range []string{"e", "q"} {
		if _, err := good.Insert(rel, relation.Ints(7)); err != nil {
			t.Fatal(err)
		}
	}
	// Same schema version as good (both bumped twice), different shape:
	// q has arity 2, so the q(X) subgoal can never match stored tuples.
	bad := store.New()
	bad.MustEnsure("e", 1)
	bad.MustEnsure("q", 2)
	if _, err := bad.Insert("e", relation.Ints(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Insert("q", relation.Ints(7, 8)); err != nil {
		t.Fatal(err)
	}
	if good.SchemaVersion() != bad.SchemaVersion() {
		t.Fatalf("test setup drifted: schema versions %d vs %d should collide",
			good.SchemaVersion(), bad.SchemaVersion())
	}

	for i := 0; i < 2; i++ { // second round hits the cache
		resGood, err := EvalWith(prog, good, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(resGood.Tuples("p")); n != 1 {
			t.Fatalf("round %d: good store derived %d p-tuples, want 1", i, n)
		}
		resBad, err := EvalWith(prog, bad, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(resBad.Tuples("p")); n != 0 {
			t.Fatalf("round %d: arity-mismatched store derived %d p-tuples, want 0", i, n)
		}
	}
}

// TestPlanCacheGoalAndIndexModeKeys verifies the remaining key
// dimensions: the same program cached for full evaluation, for a goal
// check, and for the scan arm are three distinct entries that do not
// answer for each other.
func TestPlanCacheGoalAndIndexModeKeys(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X).\nq(X) :- p(X).")
	db := store.New()
	if _, err := db.Insert("e", relation.Ints(1)); err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	if _, err := EvalWith(prog, db, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if ok, err := GoalHoldsWith(prog, db, "q", Options{Cache: cache}); err != nil || !ok {
		t.Fatalf("GoalHolds(q) = %v, %v; want true", ok, err)
	}
	if _, err := EvalWith(prog, db, Options{Cache: cache, DisableIndexes: true}); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries := cache.Stats()
	if hits != 0 || misses != 3 || entries != 3 {
		t.Fatalf("hits=%d misses=%d entries=%d, want 0/3/3 (distinct keys per goal and index mode)",
			hits, misses, entries)
	}
	cache.Invalidate()
	if _, _, entries := cache.Stats(); entries != 0 {
		t.Fatalf("Invalidate left %d entries", entries)
	}
}

// TestPlanCacheConcurrentEval hammers one shared cache from parallel
// evaluators while a writer mutates the store — inserts, deletes, and
// schema-bumping Replace/EnsureIndex calls — so the hit, miss,
// invalidation and double-compile paths all race under -race.
func TestPlanCacheConcurrentEval(t *testing.T) {
	progs := []string{
		"p(X) :- e(X) & not f(X).",
		"p(X,Y) :- e(X) & e(Y) & X < Y.",
		"reach(X,Y) :- edge(X,Y).\nreach(X,Y) :- reach(X,Z) & edge(Z,Y).\np(X) :- reach(X,X).",
	}
	db := store.New()
	db.MustEnsure("e", 1)
	db.MustEnsure("f", 1)
	db.MustEnsure("edge", 2)
	cache := NewPlanCache()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prog := parser.MustParseProgram(progs[w%len(progs)])
			for i := 0; i < 40; i++ {
				if _, err := EvalWith(prog, db, Options{Cache: cache}); err != nil {
					t.Error(err)
					return
				}
				if _, err := GoalHoldsWith(prog, db, "p", Options{Cache: cache}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 40; i++ {
			if _, err := db.Insert("e", relation.Ints(i%5)); err != nil {
				t.Error(err)
				return
			}
			if _, err := db.Insert("edge", relation.Ints(i%5, (i+1)%5)); err != nil {
				t.Error(err)
				return
			}
			db.Delete("f", relation.Ints(i%3))
			switch i % 10 {
			case 3:
				if err := db.Replace("f", 1, []relation.Tuple{relation.Ints(i % 4)}); err != nil {
					t.Error(err)
					return
				}
			case 7:
				if err := db.EnsureIndex("edge", 0); err != nil {
					t.Error(err)
					return
				}
				cache.Invalidate()
			}
		}
	}()
	wg.Wait()
	if hits, misses, _ := cache.Stats(); hits+misses == 0 {
		t.Fatal("concurrent run never touched the cache")
	}
}
