package eval

import (
	"errors"

	"repro/internal/ast"
	"repro/internal/store"
)

// errGoalDerived unwinds the evaluation as soon as the goal is derived.
var errGoalDerived = errors.New("eval: goal derived")

// GoalHolds reports whether the goal predicate derives at least one
// tuple, evaluating only the predicates the goal transitively depends on
// and stopping at the first derivation. For constraint checking this is
// the global phase's question — "is panic derivable?" — and both
// optimizations are sound: unreachable predicates cannot contribute, and
// within the goal's stratum derivations only grow (negation refers to
// completed lower strata).
func GoalHolds(prog *ast.Program, db *store.Store, goal string) (bool, error) {
	return GoalHoldsWith(prog, db, goal, Options{})
}

// GoalHoldsWith is GoalHolds with explicit evaluation options. The
// pruning, validation, stratification and join planning all live in the
// compiled object, cached across calls when opts.Cache is set.
func GoalHoldsWith(prog *ast.Program, db *store.Store, goal string, opts Options) (bool, error) {
	c, err := compiledFor(prog, db, goal, opts)
	if err != nil {
		return false, err
	}
	if c.noRules {
		return false, nil // goal underivable: no rules at all
	}
	ev, result := newEvaluator(c, db, opts)
	defer ev.release()
	for i := range c.strata {
		if i != c.goalLevel {
			if err := ev.evalStratum(&c.strata[i]); err != nil {
				return false, err
			}
			continue
		}
		ev.stopWhenNonEmpty = goal
		err := ev.evalStratum(&c.strata[i])
		ev.stopWhenNonEmpty = ""
		if errors.Is(err, errGoalDerived) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		return result.Holds(goal), nil
	}
	return result.Holds(goal), nil
}

// pruneToGoal returns the subprogram of rules for predicates the goal
// transitively depends on.
func pruneToGoal(prog *ast.Program, goal string) *ast.Program {
	idb := prog.IDBPreds()
	keep := map[string]bool{}
	var visit func(p string)
	visit = func(p string) {
		if keep[p] {
			return
		}
		keep[p] = true
		for _, r := range prog.RulesFor(p) {
			for _, l := range r.Body {
				if !l.IsComp() && idb[l.Atom.Pred] {
					visit(l.Atom.Pred)
				}
			}
		}
	}
	visit(goal)
	out := &ast.Program{}
	for _, r := range prog.Rules {
		if keep[r.Head.Pred] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}
