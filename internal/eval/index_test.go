package eval

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

// TestArityMismatchDerivesNothing pins the plan-time arity check to the
// seed semantics: a body atom whose arity disagrees with the stored
// relation matches nothing — it is not an error — in both arms.
func TestArityMismatchDerivesNothing(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X,X).\nq(X) :- f(X).")
	db := store.New()
	if _, err := db.Insert("e", relation.Ints(1)); err != nil { // e stored with arity 1, queried with arity 2
		t.Fatal(err)
	}
	if _, err := db.Insert("f", relation.Ints(2)); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {DisableIndexes: true}} {
		res, err := EvalWith(prog, db.Clone(), opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if n := len(res.Tuples("p")); n != 0 {
			t.Errorf("opts %+v: arity-mismatched atom derived %d tuples", opts, n)
		}
		if n := len(res.Tuples("q")); n != 1 {
			t.Errorf("opts %+v: unaffected rule derived %d tuples, want 1", opts, n)
		}
	}
}

// TestIndexedProbesReadLess demonstrates the point of the index layer on
// a selective join: the first join column is deliberately unselective
// (50 tuples per X) while the full bound signature (X,Y) is unique, so a
// multi-column probe touches ~1 tuple where the scan arm — and the old
// single-column lookup — touches ~50.
func TestIndexedProbesReadLess(t *testing.T) {
	prog := parser.MustParseProgram("hit(X,Z) :- head(X,Y) & detail(X,Y,Z).")
	db := store.New()
	for i := int64(0); i < 1000; i++ {
		if _, err := db.Insert("head", relation.Ints(i%20, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Insert("detail", relation.Ints(i%20, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	dbIdx, dbScan := db.Clone(), db.Clone()
	resIdx, err := EvalWith(prog, dbIdx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resScan, err := EvalWith(prog, dbScan, Options{DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if ni, ns := len(resIdx.Tuples("hit")), len(resScan.Tuples("hit")); ni != 1000 || ns != 1000 {
		t.Fatalf("hit: indexed %d, scan %d, want 1000", ni, ns)
	}
	ri, rs := dbIdx.TotalReads(), dbScan.TotalReads()
	if ri*10 > rs {
		t.Errorf("indexed probes read %d tuples, scan read %d — expected >10x reduction", ri, rs)
	}
}

// TestBoundFirstReordering checks the planner moves a constant-bound
// atom ahead of a textual-first wide scan: with reordering, key(Y,7)
// binds Y before big is touched, so big is probed on its second column
// instead of enumerated.
func TestBoundFirstReordering(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- big(X,Y) & key(Y,7).")
	db := store.New()
	for i := int64(0); i < 500; i++ {
		if _, err := db.Insert("big", relation.Ints(i, i%100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("key", relation.Ints(3, 7)); err != nil {
		t.Fatal(err)
	}
	dbIdx, dbScan := db.Clone(), db.Clone()
	resIdx, err := EvalWith(prog, dbIdx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resScan, err := EvalWith(prog, dbScan, Options{DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if ni, ns := len(resIdx.Tuples("p")), len(resScan.Tuples("p")); ni != 5 || ns != 5 {
		t.Fatalf("p: indexed %d, scan %d, want 5", ni, ns)
	}
	// Indexed: 1 key probe + 5 big-bucket tuples. Scan: 500 big tuples,
	// each with a key lookup.
	if ri, rs := dbIdx.TotalReads(), dbScan.TotalReads(); ri*10 > rs {
		t.Errorf("bound-first plan read %d tuples, textual plan read %d — expected >10x reduction", ri, rs)
	}
}
