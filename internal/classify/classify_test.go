package classify

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// representatives maps each of the twelve Fig 2.1 classes to a program
// whose least class is exactly that class. These drive the F2.1
// experiment and the closure matrices of F4.1/F4.2.
func representatives() map[Class]string {
	return map[Class]string{
		{SingleCQ, false, false}: "panic :- emp(E,sales) & emp(E,accounting).",
		{SingleCQ, false, true}:  "panic :- emp(E,D,S) & S > 100.",
		{SingleCQ, true, false}:  "panic :- emp(E,D,S) & not dept(D).",
		{SingleCQ, true, true}:   "panic :- emp(E,D,S) & not dept(D) & S < 100.",
		{UnionCQ, false, false}: `panic :- emp(E,sales) & emp(E,accounting).
			panic :- emp(E,toy) & emp(E,accounting).`,
		{UnionCQ, false, true}: `panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.
			panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.`,
		{UnionCQ, true, false}: `bad(E) :- emp(E,D,S) & not dept(D).
			panic :- bad(E) & vip(E).`,
		{UnionCQ, true, true}: `dept1(D) :- dept(D).
			panic :- emp(E,D,S) & not dept1(D) & S < 100.`,
		{Recursive, false, false}: `panic :- boss(E,E).
			boss(E,M) :- emp(E,D) & manager(D,M).
			boss(E,F) :- boss(E,G) & boss(G,F).`,
		{Recursive, false, true}: `interval(X,Y) :- l(X,Y).
			interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W.
			panic :- interval(X,Y) & r(Z) & X <= Z & Z <= Y.`,
		{Recursive, true, false}: `reach(X,Y) :- edge(X,Y).
			reach(X,Y) :- reach(X,Z) & edge(Z,Y).
			panic :- node(X) & node(Y) & not reach(X,Y).`,
		{Recursive, true, true}: `reach(X,Y) :- edge(X,Y).
			reach(X,Y) :- reach(X,Z) & edge(Z,Y).
			panic :- node(X) & node(Y) & not reach(X,Y) & X < Y.`,
	}
}

func TestClassifyRepresentatives(t *testing.T) {
	for want, src := range representatives() {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			t.Errorf("parse representative for %v: %v", want, err)
			continue
		}
		if got := Classify(prog); got != want {
			t.Errorf("Classify(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestAllTwelveClasses(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("All() returned %d classes, want 12", len(all))
	}
	seen := map[Class]bool{}
	for _, c := range all {
		if seen[c] {
			t.Errorf("duplicate class %v", c)
		}
		seen[c] = true
	}
	reps := representatives()
	for _, c := range all {
		if _, ok := reps[c]; !ok {
			t.Errorf("no representative program for class %v", c)
		}
	}
}

func TestLatticeOrder(t *testing.T) {
	bottom := Class{SingleCQ, false, false}
	top := Class{Recursive, true, true}
	for _, c := range All() {
		if !bottom.LessEq(c) {
			t.Errorf("bottom not <= %v", c)
		}
		if !c.LessEq(top) {
			t.Errorf("%v not <= top", c)
		}
		if !c.LessEq(c) {
			t.Errorf("%v not reflexive", c)
		}
	}
	// Incomparable pair: negation-only vs arithmetic-only.
	a := Class{SingleCQ, true, false}
	b := Class{SingleCQ, false, true}
	if a.LessEq(b) || b.LessEq(a) {
		t.Error("negation-only and arithmetic-only CQ classes must be incomparable")
	}
	if j := a.Join(b); j != (Class{SingleCQ, true, true}) {
		t.Errorf("Join = %v", j)
	}
}

func TestLatticeTransitivity(t *testing.T) {
	all := All()
	for _, a := range all {
		for _, b := range all {
			for _, c := range all {
				if a.LessEq(b) && b.LessEq(c) && !a.LessEq(c) {
					t.Fatalf("transitivity fails: %v <= %v <= %v", a, b, c)
				}
			}
		}
	}
}

func TestClosurePredicates(t *testing.T) {
	// Fig 4.1 circles exactly the 8 non-single-CQ classes; Fig 4.2
	// circles the 6 with union/recursive shape and neg or arith.
	nIns, nDel := 0, 0
	for _, c := range All() {
		if InsertionClosed(c) {
			nIns++
			if c.Shape == SingleCQ {
				t.Errorf("single-CQ class %v marked insertion-closed", c)
			}
		}
		if DeletionClosed(c) {
			nDel++
			if !InsertionClosed(c) {
				t.Errorf("%v deletion-closed but not insertion-closed", c)
			}
			if !c.Negation && !c.Arithmetic {
				t.Errorf("featureless class %v marked deletion-closed", c)
			}
		}
	}
	if nIns != 8 {
		t.Errorf("insertion-closed classes = %d, want 8 (Fig 4.1)", nIns)
	}
	if nDel != 6 {
		t.Errorf("deletion-closed classes = %d, want 6 (Fig 4.2)", nDel)
	}
}

func TestClassifyMutualRecursion(t *testing.T) {
	prog := parser.MustParseProgram(`
		even(X) :- zero(X).
		even(X) :- succ(Y,X) & odd(Y).
		odd(X) :- succ(Y,X) & even(X).
		panic :- odd(X) & even(X).`)
	if got := Classify(prog); got.Shape != Recursive {
		t.Errorf("mutual recursion classified as %v", got)
	}
}

func TestClassifyIntermediatePredicateIsUnion(t *testing.T) {
	// One panic rule over an IDB predicate is not a single CQ even though
	// there is only one panic rule.
	prog := parser.MustParseProgram(`
		b(X) :- e(X) & f(X).
		panic :- b(X) & g(X).`)
	if got := Classify(prog); got.Shape != UnionCQ {
		t.Errorf("got %v, want union shape", got)
	}
}

func TestClassifySelfRecursiveSingleRule(t *testing.T) {
	prog := ast.NewProgram(ast.NewRule(
		ast.NewAtom("p", ast.V("X")),
		ast.Pos(ast.NewAtom("p", ast.V("X"))),
	))
	if got := Classify(prog); got.Shape != Recursive {
		t.Errorf("self-recursive rule classified as %v", got)
	}
}

func TestClassifyFactsOnly(t *testing.T) {
	prog := parser.MustParseProgram("dept(toy). dept(shoe).")
	c := Classify(prog)
	if c.Shape == Recursive || c.Negation || c.Arithmetic {
		t.Errorf("facts classified as %v", c)
	}
}
