package classify

import "repro/internal/ast"

// Polarity describes how a database relation can influence the panic
// predicate of a constraint program: positively (more tuples can only
// add panic derivations), negatively (more tuples can only remove them),
// both, or not at all.
type Polarity struct {
	Pos bool
	Neg bool
}

// String renders the polarity.
func (p Polarity) String() string {
	switch {
	case p.Pos && p.Neg:
		return "mixed"
	case p.Pos:
		return "positive"
	case p.Neg:
		return "negative"
	}
	return "none"
}

// Polarities computes, for every EDB relation of the constraint program,
// its polarity with respect to the goal predicate, by propagating
// through the rule graph: a body literal inherits its rule head's
// polarity, flipped under negation. Recursive programs converge because
// both flags grow monotonically.
//
// This is the classical monotonicity analysis behind Nicolas' [1982]
// simplification (which the paper builds on for Theorem 5.2): deleting
// from a purely positive relation, or inserting into a purely negative
// one, can never newly violate the constraint.
func Polarities(prog *ast.Program, goal string) map[string]Polarity {
	idb := prog.IDBPreds()
	// Polarity of IDB predicates w.r.t. the goal.
	ip := map[string]Polarity{goal: {Pos: true}}
	changed := true
	for changed {
		changed = false
		for _, r := range prog.Rules {
			hp, ok := ip[r.Head.Pred]
			if !ok {
				continue
			}
			for _, l := range r.Body {
				if l.IsComp() || !idb[l.Atom.Pred] {
					continue
				}
				bp := hp
				if l.IsNeg() {
					bp = Polarity{Pos: hp.Neg, Neg: hp.Pos}
				}
				old := ip[l.Atom.Pred]
				merged := Polarity{Pos: old.Pos || bp.Pos, Neg: old.Neg || bp.Neg}
				if merged != old {
					ip[l.Atom.Pred] = merged
					changed = true
				}
			}
		}
	}
	// Project onto EDB relations.
	out := map[string]Polarity{}
	for _, r := range prog.Rules {
		hp, ok := ip[r.Head.Pred]
		if !ok {
			continue
		}
		for _, l := range r.Body {
			if l.IsComp() || idb[l.Atom.Pred] {
				continue
			}
			bp := hp
			if l.IsNeg() {
				bp = Polarity{Pos: hp.Neg, Neg: hp.Pos}
			}
			old := out[l.Atom.Pred]
			out[l.Atom.Pred] = Polarity{Pos: old.Pos || bp.Pos, Neg: old.Neg || bp.Neg}
		}
	}
	return out
}

// UpdateMonotoneSafe reports whether an update of the given kind to rel
// provably cannot newly derive the goal, from polarity alone: an
// insertion into a purely negative relation or a deletion from a purely
// positive one. (A relation the program never mentions is trivially
// safe, with polarity "none".)
func UpdateMonotoneSafe(prog *ast.Program, goal, rel string, insert bool) bool {
	p := Polarities(prog, goal)[rel]
	if insert {
		return !p.Pos
	}
	return !p.Neg
}
