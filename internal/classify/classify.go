// Package classify implements the twelve-class lattice of constraint
// languages from Fig 2.1 of the paper. The classes are products of three
// features:
//
//   - Shape: a single conjunctive query, a union of CQs (equivalently,
//     nonrecursive datalog), or recursive datalog;
//   - Negation: whether negated subgoals are permitted;
//   - Arithmetic: whether arithmetic comparison subgoals are permitted.
//
// Classify assigns a Program the least class that can express it, and
// LessEq gives the lattice order used by the closure results of
// Theorems 4.2 and 4.3 (Figs 4.1 and 4.2).
package classify

import (
	"fmt"

	"repro/internal/ast"
)

// Shape is the recursion/union axis of Fig 2.1.
type Shape int

const (
	// SingleCQ is one conjunctive query: a single rule whose body uses
	// only database predicates.
	SingleCQ Shape = iota
	// UnionCQ is a finite union of CQs, equivalently a nonrecursive
	// datalog program (possibly with intermediate predicates).
	UnionCQ
	// Recursive is recursive datalog.
	Recursive
)

// String names the shape as in Fig 2.1.
func (s Shape) String() string {
	switch s {
	case SingleCQ:
		return "One CQ"
	case UnionCQ:
		return "Union of CQ's"
	case Recursive:
		return "Recursive Datalog"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Class is one of the twelve classes of Fig 2.1.
type Class struct {
	Shape      Shape
	Negation   bool // negated subgoals permitted
	Arithmetic bool // arithmetic comparisons permitted
}

// All enumerates the twelve classes in a fixed order: shapes innermost,
// then arithmetic, then negation, matching the figure's layout.
func All() []Class {
	var out []Class
	for _, neg := range []bool{false, true} {
		for _, arith := range []bool{false, true} {
			for _, sh := range []Shape{SingleCQ, UnionCQ, Recursive} {
				out = append(out, Class{Shape: sh, Negation: neg, Arithmetic: arith})
			}
		}
	}
	return out
}

// String renders the class, e.g. "Union of CQ's + negation".
func (c Class) String() string {
	s := c.Shape.String()
	if c.Negation {
		s += " + negation"
	}
	if c.Arithmetic {
		s += " + arithmetic"
	}
	return s
}

// LessEq reports whether c is a subclass of d in the Fig 2.1 lattice:
// every program expressible in c is expressible in d.
func (c Class) LessEq(d Class) bool {
	if c.Shape > d.Shape {
		return false
	}
	if c.Negation && !d.Negation {
		return false
	}
	if c.Arithmetic && !d.Arithmetic {
		return false
	}
	return true
}

// Join returns the least upper bound of c and d.
func (c Class) Join(d Class) Class {
	out := c
	if d.Shape > out.Shape {
		out.Shape = d.Shape
	}
	out.Negation = out.Negation || d.Negation
	out.Arithmetic = out.Arithmetic || d.Arithmetic
	return out
}

// Classify assigns prog the least class of Fig 2.1 that can express it
// syntactically:
//
//   - Recursive if the predicate dependency graph has a cycle through an
//     IDB predicate;
//   - SingleCQ if the program is one rule over database predicates
//     (after ignoring the goal head);
//   - UnionCQ otherwise (nonrecursive, possibly with intermediate
//     predicates);
//
// with the negation/arithmetic features set from the program text.
func Classify(prog *ast.Program) Class {
	c := Class{
		Negation:   prog.HasNegation(),
		Arithmetic: prog.HasComparison(),
	}
	switch {
	case isRecursive(prog):
		c.Shape = Recursive
	case isSingleCQ(prog):
		c.Shape = SingleCQ
	default:
		c.Shape = UnionCQ
	}
	return c
}

// isSingleCQ reports whether prog is one rule whose body mentions only
// EDB predicates.
func isSingleCQ(prog *ast.Program) bool {
	if len(prog.Rules) != 1 {
		return false
	}
	r := prog.Rules[0]
	for _, l := range r.Body {
		if l.IsComp() {
			continue
		}
		if l.Atom.Pred == r.Head.Pred {
			return false
		}
	}
	return true
}

// isRecursive reports whether the predicate dependency graph of prog has
// a cycle among IDB predicates.
func isRecursive(prog *ast.Program) bool {
	idb := prog.IDBPreds()
	adj := map[string][]string{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() {
				continue
			}
			if idb[l.Atom.Pred] {
				adj[r.Head.Pred] = append(adj[r.Head.Pred], l.Atom.Pred)
			}
		}
	}
	// DFS with colors to detect a cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(p string) bool
	visit = func(p string) bool {
		color[p] = gray
		for _, q := range adj[p] {
			switch color[q] {
			case gray:
				return true
			case white:
				if visit(q) {
					return true
				}
			}
		}
		color[p] = black
		return false
	}
	for p := range idb {
		if color[p] == white && visit(p) {
			return true
		}
	}
	return false
}

// InsertionClosed reports whether the class is preserved by the Section 4
// insertion rewriting (Theorem 4.2, Fig 4.1): the eight classes that
// permit multiple rules (union or recursive shape) are closed.
func InsertionClosed(c Class) bool { return c.Shape != SingleCQ }

// DeletionClosed reports whether the class is preserved by the Section 4
// deletion rewriting (Theorem 4.3, Fig 4.2): the six classes that permit
// multiple rules and at least one of negation or arithmetic are closed
// (deleting a tuple requires expressing "differs from the deleted tuple").
func DeletionClosed(c Class) bool {
	return c.Shape != SingleCQ && (c.Negation || c.Arithmetic)
}
