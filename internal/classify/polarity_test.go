package classify

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func TestPolaritiesReferential(t *testing.T) {
	// C1: panic :- emp(E,D,S) & not dept(D): emp is positive, dept
	// negative.
	prog := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D).")
	p := Polarities(prog, ast.PanicPred)
	if got := p["emp"]; !got.Pos || got.Neg {
		t.Errorf("emp polarity = %v", got)
	}
	if got := p["dept"]; got.Pos || !got.Neg {
		t.Errorf("dept polarity = %v", got)
	}
	// Inserting into dept is safe; deleting from dept is not; deleting
	// from emp is safe; inserting into emp is not.
	if !UpdateMonotoneSafe(prog, ast.PanicPred, "dept", true) {
		t.Error("+dept not monotone-safe")
	}
	if UpdateMonotoneSafe(prog, ast.PanicPred, "dept", false) {
		t.Error("-dept wrongly safe")
	}
	if !UpdateMonotoneSafe(prog, ast.PanicPred, "emp", false) {
		t.Error("-emp not monotone-safe")
	}
	if UpdateMonotoneSafe(prog, ast.PanicPred, "emp", true) {
		t.Error("+emp wrongly safe")
	}
}

func TestPolaritiesThroughIntermediate(t *testing.T) {
	// Negation of an intermediate flips the polarity of its body.
	prog := parser.MustParseProgram(`
		covered(E) :- ins(E,P) & policy(P).
		panic :- emp(E) & not covered(E).`)
	p := Polarities(prog, ast.PanicPred)
	if got := p["emp"]; !got.Pos || got.Neg {
		t.Errorf("emp = %v", got)
	}
	for _, rel := range []string{"ins", "policy"} {
		if got := p[rel]; got.Pos || !got.Neg {
			t.Errorf("%s = %v, want negative", rel, got)
		}
	}
}

func TestPolaritiesDoubleNegation(t *testing.T) {
	prog := parser.MustParseProgram(`
		bad(E) :- emp(E) & not dept(E).
		panic :- node(E) & not bad(E).`)
	p := Polarities(prog, ast.PanicPred)
	// dept sits under two negations: positive again.
	if got := p["dept"]; !got.Pos || got.Neg {
		t.Errorf("dept = %v, want positive", got)
	}
	if got := p["emp"]; got.Pos || !got.Neg {
		t.Errorf("emp = %v, want negative", got)
	}
}

func TestPolaritiesMixed(t *testing.T) {
	prog := parser.MustParseProgram(`
		panic :- r(X) & s(X).
		panic :- t(X) & not r(X).`)
	p := Polarities(prog, ast.PanicPred)
	if got := p["r"]; !got.Pos || !got.Neg {
		t.Errorf("r = %v, want mixed", got)
	}
	if UpdateMonotoneSafe(prog, ast.PanicPred, "r", true) ||
		UpdateMonotoneSafe(prog, ast.PanicPred, "r", false) {
		t.Error("mixed-polarity relation claimed safe")
	}
}

func TestPolaritiesRecursive(t *testing.T) {
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).
		panic :- node(X) & node(Y) & not reach(X,Y).`)
	p := Polarities(prog, ast.PanicPred)
	if got := p["edge"]; got.Pos || !got.Neg {
		t.Errorf("edge = %v, want negative", got)
	}
	if !UpdateMonotoneSafe(prog, ast.PanicPred, "edge", true) {
		t.Error("+edge should be monotone-safe for a reachability demand")
	}
}

// TestMonotoneSafeSoundness: whenever UpdateMonotoneSafe says yes, the
// update must never turn a satisfied constraint into a violated one, on
// randomized databases and updates.
func TestMonotoneSafeSoundness(t *testing.T) {
	progs := []*ast.Program{
		parser.MustParseProgram("panic :- emp(E,D) & not dept(D)."),
		parser.MustParseProgram("panic :- r(X) & s(X).\npanic :- t(X) & not r(X)."),
		parser.MustParseProgram(`
			covered(E) :- ins(E,P) & policy(P).
			panic :- emp(E,D) & not covered(E).`),
	}
	rels := map[string]int{"emp": 2, "dept": 1, "r": 1, "s": 1, "t": 1, "ins": 2, "policy": 1}
	rng := rand.New(rand.NewSource(8))
	for _, prog := range progs {
		for trial := 0; trial < 150; trial++ {
			db := store.New()
			for rel, ar := range rels {
				for i := 0; i < rng.Intn(3); i++ {
					tu := make(relation.Tuple, ar)
					for j := range tu {
						tu[j] = ast.Int(int64(rng.Intn(3)))
					}
					if _, err := db.Insert(rel, tu); err != nil {
						t.Fatal(err)
					}
				}
			}
			before, err := eval.PanicHolds(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			if before {
				continue
			}
			// Random update.
			var names []string
			for rel := range rels {
				names = append(names, rel)
			}
			rel := names[rng.Intn(len(names))]
			tu := make(relation.Tuple, rels[rel])
			for j := range tu {
				tu[j] = ast.Int(int64(rng.Intn(3)))
			}
			insert := rng.Intn(2) == 0
			if !UpdateMonotoneSafe(prog, ast.PanicPred, rel, insert) {
				continue
			}
			u := store.Update{Insert: insert, Relation: rel, Tuple: tu}
			if err := u.Apply(db); err != nil {
				t.Fatal(err)
			}
			after, err := eval.PanicHolds(prog, db)
			if err != nil {
				t.Fatal(err)
			}
			if after {
				t.Fatalf("monotone-safe update %v violated %s", u, prog)
			}
		}
	}
}
