package subsume

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/containment"
	"repro/internal/parser"
)

func prog(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestSubsumesPureCQ(t *testing.T) {
	// "Nobody in both sales and accounting" subsumes the more specific
	// "no vip in both sales and accounting"… in the violation order:
	// a violation of the specific one is a violation of the general one.
	specific := prog(t, "panic :- emp(E,sales) & emp(E,accounting) & vip(E).")
	general := prog(t, "panic :- emp(E,sales) & emp(E,accounting).")
	r, err := Subsumes(specific, []*ast.Program{general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes || !r.Complete {
		t.Errorf("specific ⊑ general: %+v", r)
	}
	r, err = Subsumes(general, []*ast.Program{specific})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == Yes {
		t.Errorf("general wrongly subsumed: %+v", r)
	}
	if !r.Complete {
		t.Errorf("pure CQ test should be complete: %+v", r)
	}
}

func TestSubsumesUnionSet(t *testing.T) {
	c := prog(t, "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low & S < 10.")
	set := []*ast.Program{prog(t, `
		panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.
		panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.`)}
	r, err := Subsumes(c, set)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes {
		t.Errorf("union subsumption missed: %+v", r)
	}
}

func TestSubsumesArithmeticUnionOnly(t *testing.T) {
	// Forbidden intervals as subsumption: a middle interval is subsumed
	// by two overlapping ones only jointly.
	c := prog(t, "panic :- r(Z) & 4 <= Z & Z <= 8.")
	left := prog(t, "panic :- r(Z) & 3 <= Z & Z <= 6.")
	right := prog(t, "panic :- r(Z) & 5 <= Z & Z <= 10.")
	r, err := Subsumes(c, []*ast.Program{left, right})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes || !r.Complete {
		t.Errorf("joint subsumption missed: %+v", r)
	}
	r, err = Subsumes(c, []*ast.Program{left})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == Yes {
		t.Errorf("single-member subsumption wrongly claimed: %+v", r)
	}
}

func TestSubsumesNegation(t *testing.T) {
	c := prog(t, "panic :- emp(E,D) & vip(E) & not dept(D).")
	general := prog(t, "panic :- emp(E,D) & not dept(D).")
	r, err := Subsumes(c, []*ast.Program{general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes || !r.Complete {
		t.Errorf("negation subsumption: %+v", r)
	}
	if r.Method != "negation-sat" {
		t.Errorf("unexpected method %q", r.Method)
	}
}

func TestSubsumesMixedSound(t *testing.T) {
	c := prog(t, "panic :- emp(E,D,S) & not dept(D) & S < 50.")
	general := prog(t, "panic :- emp(E,D,S) & not dept(D) & S < 100.")
	r, err := Subsumes(c, []*ast.Program{general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes {
		t.Errorf("mixed-language subsumption missed: %+v", r)
	}
	if r.Complete {
		t.Error("mixed-language test wrongly claims completeness")
	}
}

func TestSubsumesRecursiveFallback(t *testing.T) {
	c := prog(t, `
		panic :- boss(E,E) & vip(E).
		boss(E,M) :- emp(E,D) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`)
	general := prog(t, `
		panic :- boss(E,E).
		boss(E,M) :- emp(E,D) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`)
	r, err := Subsumes(c, []*ast.Program{general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes {
		t.Errorf("recursive sound subsumption missed: %+v", r)
	}
	if r.Complete {
		t.Error("recursive fallback must not claim completeness")
	}
}

func TestSubsumesExpandsIntermediates(t *testing.T) {
	c := prog(t, `
		bad(E) :- emp(E,sales) & emp(E,accounting).
		panic :- bad(E) & vip(E).`)
	general := prog(t, "panic :- emp(E,sales) & emp(E,accounting).")
	r, err := Subsumes(c, []*ast.Program{general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes || !r.Complete {
		t.Errorf("intermediate-predicate subsumption: %+v", r)
	}
}

func TestSubsumesRejectsNonConstraint(t *testing.T) {
	notC := prog(t, "q(X) :- p(X).")
	if _, err := Subsumes(notC, nil); err == nil {
		t.Error("non-constraint program accepted")
	}
}

func TestReduceContainmentToSubsumption(t *testing.T) {
	// Theorem 3.2: Q ⊑ R iff Q' ⊑ R' — verify on a positive and a
	// negative instance.
	q := parser.MustParseRule("h(X) :- e(X,Y) & e(Y,X).")
	r := parser.MustParseRule("h(A) :- e(A,B).")
	qp, err := ReduceContainmentToSubsumption(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ReduceContainmentToSubsumption(r)
	if err != nil {
		t.Fatal(err)
	}
	// Direct containment.
	direct, err := containment.ContainsCQ(q, r)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := containment.ContainsCQ(qp, rp)
	if err != nil {
		t.Fatal(err)
	}
	if direct != reduced || !direct {
		t.Errorf("reduction disagrees: direct=%v reduced=%v", direct, reduced)
	}
	// Negative direction.
	direct2, err := containment.ContainsCQ(r, q)
	if err != nil {
		t.Fatal(err)
	}
	reduced2, err := containment.ContainsCQ(rp, qp)
	if err != nil {
		t.Fatal(err)
	}
	if direct2 != reduced2 || direct2 {
		t.Errorf("negative reduction disagrees: direct=%v reduced=%v", direct2, reduced2)
	}
}

func TestReduceRenamesHeadPredicate(t *testing.T) {
	q := parser.MustParseRule("e(X,Z) :- e(X,Y) & e(Y,Z).")
	qp, err := ReduceContainmentToSubsumption(q)
	if err != nil {
		t.Fatal(err)
	}
	if qp.Body[0].Atom.Pred != "e$h" {
		t.Errorf("head predicate not renamed: %s", qp)
	}
}

// TestSubsumesRecursiveRewrittenNotClaimed is the regression test for a
// real bug: after the insertion rewriting, C' defines boss over emp$ins
// while C defines it over emp — the same predicate NAME denotes different
// relations, so the fallback mapping test must NOT treat them as equal
// and must answer Unknown (an insertion into manager CAN create a cycle).
func TestSubsumesRecursiveRewrittenNotClaimed(t *testing.T) {
	c := prog(t, `
		panic :- boss(E,E).
		boss(E,M) :- emp(E,D) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`)
	cPrime := prog(t, `
		panic :- boss(E,E).
		boss(E,M) :- emp(E,D) & manager1(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).
		manager1(U,V) :- manager(U,V).
		manager1(ops,ann).`)
	r, err := Subsumes(cPrime, []*ast.Program{c})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == Yes {
		t.Fatalf("rewritten recursive constraint wrongly subsumed: %+v", r)
	}
}

// TestSubsumesRecursiveSharedIntermediates: identical aux definitions let
// the mapping fallback certify a panic-rule strengthening that uniform
// containment alone cannot (the extra vip subgoal blocks the chase).
func TestSubsumesRecursiveSharedIntermediates(t *testing.T) {
	boss := `
		boss(E,M) :- emp(E,D) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`
	specific := prog(t, "panic :- boss(E,E) & vip(E)."+boss)
	general := prog(t, "panic :- boss(E,E)."+boss)
	r, err := Subsumes(specific, []*ast.Program{general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes {
		t.Fatalf("shared-intermediate subsumption missed: %+v", r)
	}
	if r.Complete {
		t.Error("fallback must not claim completeness")
	}
	// Reverse direction must stay Unknown.
	r, err = Subsumes(general, []*ast.Program{specific})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == Yes {
		t.Fatalf("reverse wrongly subsumed: %+v", r)
	}
}

// TestSubsumesRecursiveMultiSet: the uniform-containment shortcut needs a
// single subsuming program; with two recursive programs the shared-
// intermediate mapping fallback must still work.
func TestSubsumesRecursiveMultiSet(t *testing.T) {
	boss := `
		boss(E,M) :- emp(E,D) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`
	specific := prog(t, "panic :- boss(E,E) & vip(E)."+boss)
	general := prog(t, "panic :- boss(E,E)."+boss)
	other := prog(t, "panic :- boss(E,E) & contractor(E)."+boss)
	r, err := Subsumes(specific, []*ast.Program{other, general})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Yes {
		t.Fatalf("multi-set recursive subsumption missed: %+v", r)
	}
}

func TestVerdictString(t *testing.T) {
	if Yes.String() != "yes" || Unknown.String() != "don't know" {
		t.Errorf("verdict strings: %q %q", Yes, Unknown)
	}
}
