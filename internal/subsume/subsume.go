// Package subsume implements constraint subsumption, the Section 3 level
// of partial-information checking that uses only the constraints
// themselves: a set C = {C1,…,Cn} subsumes a constraint C when any
// violation of C implies a violation of some Ci, so C need never be
// checked while the Ci are maintained.
//
// By Theorem 3.1 subsumption is exactly program containment
// C ⊑ C1 ∪ … ∪ Cn of the constraint queries, so this package is a
// dispatcher over internal/containment choosing the right (complete when
// available, sound otherwise) procedure for the language class of the
// inputs, and also provides the Theorem 3.2 reduction from containment to
// subsumption used in tests and experiments.
package subsume

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/containment"
)

// Verdict is the outcome of a subsumption (or any partial-information)
// test: Yes is definite, Unknown means the test was inconclusive and more
// information must be consulted (Section 2, "Correct and Complete
// Tests").
type Verdict int

const (
	// Unknown means the test could not certify subsumption.
	Unknown Verdict = iota
	// Yes means subsumption definitely holds.
	Yes
)

func (v Verdict) String() string {
	if v == Yes {
		return "yes"
	}
	return "don't know"
}

// Result carries a verdict with the procedure that produced it and
// whether that procedure is complete for the inputs (a complete
// procedure's Unknown is a definite "no").
type Result struct {
	Verdict  Verdict
	Complete bool
	Method   string
}

// Subsumes decides whether the constraint set subsumes c. Every program
// must be a constraint query (goal panic). The method is chosen by
// language class:
//
//   - pure CQs / unions of CQs: Chandra–Merlin per-disjunct test
//     (complete);
//   - CQs with arithmetic in Section 5 normal form, or normalizable:
//     Theorem 5.1 union test (complete);
//   - CQs with negation, no arithmetic: SAT countermodel search
//     (complete);
//   - anything else (recursion, negation+arithmetic): the sound mapping
//     test (incomplete; Unknown is inconclusive).
//
// Nonrecursive programs are first expanded into unions of single rules.
func Subsumes(c *ast.Program, set []*ast.Program) (Result, error) {
	for _, p := range append([]*ast.Program{c}, set...) {
		if err := checkConstraint(p); err != nil {
			return Result{}, err
		}
	}
	left, err := expandConstraint(c)
	if err != nil {
		return soundFallback(c, set, err)
	}
	var union []*ast.Rule
	for _, s := range set {
		rs, err := expandConstraint(s)
		if err != nil {
			return soundFallback(c, set, err)
		}
		union = append(union, rs...)
	}
	// Every disjunct of the left side must be contained in the union.
	agg := Result{Verdict: Yes, Complete: true, Method: ""}
	for _, d := range left {
		r, err := ContainsRuleInUnion(d, union)
		if err != nil {
			return Result{}, err
		}
		if agg.Method == "" {
			agg.Method = r.Method
		} else if agg.Method != r.Method {
			agg.Method = "mixed"
		}
		agg.Complete = agg.Complete && r.Complete
		if r.Verdict != Yes {
			agg.Verdict = Unknown
			return agg, nil
		}
	}
	return agg, nil
}

// ContainsRuleInUnion dispatches the containment of one rule in a union
// of rules to the strongest available procedure for their language
// class. The rules need not be constraints: nontrivial heads are
// supported by every underlying test (the paper notes Theorem 5.1 holds
// for general CQs), which is what the view-maintenance application
// (internal/view) relies on.
func ContainsRuleInUnion(d *ast.Rule, union []*ast.Rule) (Result, error) {
	neg := d.HasNegation()
	arith := d.HasComparison()
	for _, u := range union {
		neg = neg || u.HasNegation()
		arith = arith || u.HasComparison()
	}
	switch {
	case !neg && !arith:
		ok, err := containment.ContainsCQUnion(d, union)
		if err != nil {
			return Result{}, err
		}
		return Result{Verdict: verdict(ok), Complete: true, Method: "chandra-merlin"}, nil
	case !neg:
		// Normalize into the Theorem 5.1 form (constants and repeated
		// variables become equality comparisons) and run the union test.
		nd, err := containment.NormalizeRule(d)
		if err == nil {
			nu := make([]*ast.Rule, 0, len(union))
			for _, u := range union {
				r, err2 := containment.NormalizeRule(u)
				if err2 != nil {
					err = err2
					break
				}
				nu = append(nu, r)
			}
			if err == nil {
				ok, err2 := containment.Theorem51Union(nd, nu)
				if err2 == nil {
					return Result{Verdict: verdict(ok), Complete: true, Method: "theorem-5.1"}, nil
				}
			}
		}
		// Unexpected shapes fall back to Klug's test, which tolerates
		// anything conjunctive.
		ok, err := containment.KlugUnion(d, union)
		if err != nil {
			return Result{}, err
		}
		return Result{Verdict: verdict(ok), Complete: true, Method: "klug"}, nil
	case !arith:
		ok, err := containment.ContainsWithNegationUnion(d, union)
		if err != nil {
			return Result{}, err
		}
		return Result{Verdict: verdict(ok), Complete: true, Method: "negation-sat"}, nil
	default:
		ok := containment.SoundContainsUnion(d, union)
		return Result{Verdict: verdict(ok), Complete: false, Method: "sound-mapping"}, nil
	}
}

func verdict(ok bool) Verdict {
	if ok {
		return Yes
	}
	return Unknown
}

// soundFallback is used when expansion fails (recursion or inexpressible
// negation): apply the sound mapping test directly on the panic rules.
//
// Treating an intermediate predicate like an ordinary database predicate
// in that test is sound only when both programs define it identically —
// otherwise "boss" on the left and "boss" on the right denote different
// relations. The fallback therefore demands that every intermediate
// predicate reachable from any panic rule has syntactically identical
// rule sets across all programs involved, and answers Unknown otherwise.
func soundFallback(c *ast.Program, set []*ast.Program, cause error) (Result, error) {
	// For pure recursive datalog, try uniform containment first (Sagiv
	// [1988]); it implies containment, so Yes is sound. It needs a single
	// subsuming program.
	if len(set) == 1 && !c.HasNegation() && !c.HasComparison() &&
		!set[0].HasNegation() && !set[0].HasComparison() {
		if ok, err := containment.UniformContains(c, set[0]); err == nil && ok {
			return Result{Verdict: Yes, Complete: false, Method: "uniform-containment"}, nil
		}
	}
	method := fmt.Sprintf("sound-mapping (fallback: %v)", cause)
	progs := append([]*ast.Program{c}, set...)
	if !sharedIntermediates(progs) {
		return Result{Verdict: Unknown, Complete: false, Method: method}, nil
	}
	var union []*ast.Rule
	for _, s := range set {
		union = append(union, s.RulesFor(ast.PanicPred)...)
	}
	for _, d := range c.RulesFor(ast.PanicPred) {
		if !containment.SoundContainsUnion(d, union) {
			return Result{Verdict: Unknown, Complete: false, Method: method}, nil
		}
	}
	return Result{Verdict: Yes, Complete: false, Method: method}, nil
}

// sharedIntermediates reports whether every non-panic intermediate
// predicate referenced (transitively) by some program's panic rules is
// defined by syntactically identical rule sets in every program that
// mentions or defines it.
func sharedIntermediates(progs []*ast.Program) bool {
	defs := map[string]string{} // pred -> canonical rule-set rendering
	for _, p := range progs {
		idb := p.IDBPreds()
		// Collect intermediate predicates reachable from panic.
		reach := map[string]bool{}
		var visit func(pred string)
		visit = func(pred string) {
			if reach[pred] {
				return
			}
			reach[pred] = true
			for _, r := range p.RulesFor(pred) {
				for _, l := range r.Body {
					if !l.IsComp() && idb[l.Atom.Pred] {
						visit(l.Atom.Pred)
					}
				}
			}
		}
		visit(ast.PanicPred)
		for pred := range reach {
			if pred == ast.PanicPred {
				continue
			}
			rendering := ""
			for _, r := range p.RulesFor(pred) {
				rendering += r.String() + "\n"
			}
			if prev, ok := defs[pred]; ok {
				if prev != rendering {
					return false
				}
			} else {
				defs[pred] = rendering
			}
		}
	}
	return true
}

// checkConstraint verifies the program is a constraint query: it has a
// 0-ary panic rule.
func checkConstraint(c *ast.Program) error {
	hasPanic := false
	for _, r := range c.Rules {
		if r.Head.Pred == ast.PanicPred {
			if r.Head.Arity() != 0 {
				return fmt.Errorf("subsume: %s must be 0-ary", ast.PanicPred)
			}
			hasPanic = true
		}
	}
	if !hasPanic {
		return fmt.Errorf("subsume: program has no %s rule", ast.PanicPred)
	}
	return nil
}

// expandConstraint expands a nonrecursive constraint program into its
// union of panic rules.
func expandConstraint(c *ast.Program) ([]*ast.Rule, error) {
	if cls := classify.Classify(c); cls.Shape == classify.SingleCQ {
		return []*ast.Rule{c.Rules[0]}, nil
	}
	return containment.Expand(c, ast.PanicPred)
}

// ReduceContainmentToSubsumption implements Theorem 3.2: given CQs
// Q: h :- B and R: h :- B', rename the head predicate when it occurs in
// the bodies and move the head into the body, producing the constraints
// Q': panic :- h & B and R': panic :- h & B'. Then Q ⊑ R iff Q' ⊑ R', so
// any containment question becomes a subsumption question.
func ReduceContainmentToSubsumption(q *ast.Rule) (*ast.Rule, error) {
	head := q.Head
	if head.Pred == ast.PanicPred {
		return nil, fmt.Errorf("subsume: query already a constraint")
	}
	renamed := head.Pred
	for _, l := range q.Body {
		if !l.IsComp() && l.Atom.Pred == head.Pred {
			renamed = head.Pred + "$h"
			break
		}
	}
	body := append([]ast.Literal{ast.Pos(ast.Atom{Pred: renamed, Args: head.Args})}, q.Body...)
	return &ast.Rule{Head: ast.NewAtom(ast.PanicPred), Body: body}, nil
}
