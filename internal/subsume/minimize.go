package subsume

import "repro/internal/ast"

// Redundant returns the indexes of constraints that are subsumed by the
// rest of the set — the paper's Section 3 payoff: a subsumed constraint
// never needs checking while the others are maintained. The scan is
// greedy left-to-right against the currently retained set, so the result
// depends on order but is always sound (every removed constraint is
// subsumed by the survivors).
func Redundant(set []*ast.Program) ([]int, error) {
	retained := append([]*ast.Program{}, set...)
	alive := make([]bool, len(set))
	for i := range alive {
		alive[i] = true
	}
	var out []int
	for i := range set {
		others := make([]*ast.Program, 0, len(set)-1)
		for j, p := range retained {
			if j != i && alive[j] {
				others = append(others, p)
			}
		}
		if len(others) == 0 {
			continue
		}
		res, err := Subsumes(set[i], others)
		if err != nil {
			return nil, err
		}
		if res.Verdict == Yes {
			alive[i] = false
			out = append(out, i)
		}
	}
	return out, nil
}

// Minimize returns the subset of constraints that must actually be
// checked: the input with the Redundant ones removed.
func Minimize(set []*ast.Program) ([]*ast.Program, error) {
	red, err := Redundant(set)
	if err != nil {
		return nil, err
	}
	drop := map[int]bool{}
	for _, i := range red {
		drop[i] = true
	}
	var out []*ast.Program
	for i, p := range set {
		if !drop[i] {
			out = append(out, p)
		}
	}
	return out, nil
}
