package subsume

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func TestRedundantSpecificVsGeneral(t *testing.T) {
	// The vip-specific constraint is subsumed by the general one.
	set := []*ast.Program{
		prog(t, "panic :- emp(E,sales) & emp(E,accounting) & vip(E)."),
		prog(t, "panic :- emp(E,sales) & emp(E,accounting)."),
	}
	red, err := Redundant(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 1 || red[0] != 0 {
		t.Errorf("Redundant = %v, want [0]", red)
	}
	min, err := Minimize(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 1 || min[0] != set[1] {
		t.Errorf("Minimize kept %d constraints", len(min))
	}
}

func TestRedundantIntervalUnion(t *testing.T) {
	// The middle interval constraint is jointly subsumed by its two
	// overlapping neighbours — a removal no pairwise check would find.
	set := []*ast.Program{
		prog(t, "panic :- r(Z) & 4 <= Z & Z <= 8."),
		prog(t, "panic :- r(Z) & 3 <= Z & Z <= 6."),
		prog(t, "panic :- r(Z) & 5 <= Z & Z <= 10."),
	}
	red, err := Redundant(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 1 || red[0] != 0 {
		t.Errorf("Redundant = %v, want [0]", red)
	}
}

func TestRedundantNothingToDrop(t *testing.T) {
	set := []*ast.Program{
		prog(t, "panic :- r(Z) & Z > 10."),
		prog(t, "panic :- s(W) & W < 0."),
	}
	red, err := Redundant(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 0 {
		t.Errorf("Redundant = %v, want none", red)
	}
}

// TestMinimizeSemanticsPreserved: on randomized databases, the minimized
// set is violated exactly when the full set is.
func TestMinimizeSemanticsPreserved(t *testing.T) {
	set := []*ast.Program{
		prog(t, "panic :- r(Z) & 4 <= Z & Z <= 8."),
		prog(t, "panic :- r(Z) & 3 <= Z & Z <= 6."),
		prog(t, "panic :- r(Z) & 5 <= Z & Z <= 10."),
		prog(t, "panic :- s(W) & W > 100."),
	}
	min, err := Minimize(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) >= len(set) {
		t.Fatalf("nothing minimized")
	}
	anyViolated := func(ps []*ast.Program, db *store.Store) bool {
		for _, p := range ps {
			bad, err := eval.PanicHolds(p, db)
			if err != nil {
				t.Fatal(err)
			}
			if bad {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		db := store.New()
		for i := 0; i < rng.Intn(4); i++ {
			if _, err := db.Insert("r", relation.Ints(int64(rng.Intn(14)))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < rng.Intn(2); i++ {
			if _, err := db.Insert("s", relation.Ints(int64(rng.Intn(200)))); err != nil {
				t.Fatal(err)
			}
		}
		if anyViolated(set, db) != anyViolated(min, db) {
			t.Fatalf("trial %d: minimized set disagrees on %s", trial, db)
		}
	}
}

func TestRedundantUsesParser(t *testing.T) {
	// Regression: facts-only helpers must keep working through the parse
	// path used by tests.
	p := parser.MustParseProgram("panic :- q(X).")
	if _, err := Redundant([]*ast.Program{p}); err != nil {
		t.Fatal(err)
	}
}
