// Package parser parses the paper's constraint-query syntax into the ast
// representation. The grammar follows the examples of the paper:
//
//	panic :- emp(E,D,S) & not dept(D) & S < 100.
//	boss(E,M) :- emp(E,D,S) & manager(D,M).
//	dept1(toy).
//
// Rules are terminated by '.'; subgoals are separated by '&' (',' is also
// accepted); 'not' negates an atom; comparison operators are
// < <= = <> >= >. Identifiers beginning with a capital letter are
// variables, others are symbolic constants or predicate names; numeric
// literals (integers and decimals, optionally signed) are numeric
// constants; double-quoted strings are symbolic constants. '%' and '//'
// start comments running to end of line.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF     tokenKind = iota
	tokIdent             // lower-case identifier: constant or predicate
	tokVar               // upper-case identifier: variable
	tokNumber            // numeric literal
	tokString            // quoted string
	tokImplies           // :-
	tokAmp               // & (or ,)
	tokLParen            // (
	tokRParen            // )
	tokDot               // .
	tokNot               // not
	tokLt                // <
	tokLe                // <=
	tokEq                // =
	tokNe                // <>
	tokGe                // >=
	tokGt                // >
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokImplies:
		return "':-'"
	case tokAmp:
		return "'&'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokDot:
		return "'.'"
	case tokNot:
		return "'not'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokEq:
		return "'='"
	case tokNe:
		return "'<>'"
	case tokGe:
		return "'>='"
	case tokGt:
		return "'>'"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("parser: line %d, col %d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '%':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b >= 0x80 // allow UTF-8 continuation into ident; classified by first rune
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || b >= '0' && b <= '9' || b == '\''
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// next scans one token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	b := lx.peekByte()
	switch {
	case b == '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case b == ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case b == '&' || b == ',':
		lx.advance()
		return token{tokAmp, string(b), line, col}, nil
	case b == ':':
		lx.advance()
		if lx.peekByte() != '-' {
			return token{}, lx.errf(line, col, "expected ':-'")
		}
		lx.advance()
		return token{tokImplies, ":-", line, col}, nil
	case b == '<':
		lx.advance()
		switch lx.peekByte() {
		case '=':
			lx.advance()
			return token{tokLe, "<=", line, col}, nil
		case '>':
			lx.advance()
			return token{tokNe, "<>", line, col}, nil
		}
		return token{tokLt, "<", line, col}, nil
	case b == '>':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokGe, ">=", line, col}, nil
		}
		return token{tokGt, ">", line, col}, nil
	case b == '=':
		lx.advance()
		return token{tokEq, "=", line, col}, nil
	case b == '!':
		lx.advance()
		if lx.peekByte() != '=' {
			return token{}, lx.errf(line, col, "expected '!='")
		}
		lx.advance()
		return token{tokNe, "<>", line, col}, nil
	case b == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf(line, col, "unterminated string")
			}
			c := lx.advance()
			if c == '"' {
				break
			}
			if c == '\\' && lx.pos < len(lx.src) {
				c = lx.advance()
			}
			sb.WriteByte(c)
		}
		return token{tokString, sb.String(), line, col}, nil
	case isDigit(b) || b == '-' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
		start := lx.pos
		if b == '-' {
			lx.advance()
		}
		for lx.pos < len(lx.src) && (isDigit(lx.peekByte()) || lx.peekByte() == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])) {
			lx.advance()
		}
		return token{tokNumber, lx.src[start:lx.pos], line, col}, nil
	case b == '.':
		lx.advance()
		return token{tokDot, ".", line, col}, nil
	case isIdentStart(b):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if text == "not" {
			return token{tokNot, text, line, col}, nil
		}
		r := []rune(text)[0]
		if unicode.IsUpper(r) || r == '_' {
			return token{tokVar, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	}
	return token{}, lx.errf(line, col, "unexpected character %q", string(b))
}
