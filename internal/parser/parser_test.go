package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestParsePaperExamples(t *testing.T) {
	// Every constraint from the paper's Section 2 examples must parse,
	// and re-printing must round-trip through the parser.
	srcs := []string{
		// Example 2.1
		"panic :- emp(E,sales) & emp(E,accounting).",
		// Example 2.2
		"panic :- emp(E,D,S) & not dept(D) & S < 100.",
		// Example 2.3
		`panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.
		 panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.`,
		// Example 2.4
		`panic :- boss(E,E).
		 boss(E,M) :- emp(E,D,S) & manager(D,M).
		 boss(E,F) :- boss(E,G) & boss(G,F).`,
		// Example 4.1 rewritten constraint C3
		`dept1(D) :- dept(D).
		 dept1(toy).
		 panic :- emp(E,D,S) & not dept1(D).`,
		// Example 4.2 deletion rewriting
		`emp1(E,D,S) :- emp(E,D,S) & E<>jones.
		 emp1(E,D,S) :- emp(E,D,S) & D<>shoe.
		 emp1(E,D,S) :- emp(E,D,S) & S<>50.`,
		// Fig 6.1: the paper's ok(A,B) rule is range-unrestricted (A and B
		// are bound by the query, the inserted tuple), so we parse its
		// instantiated form, which is what internal/icq generates.
		`interval(X,Y) :- l(X,Y).
		 interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W.
		 ok :- interval(X,Y) & X <= 4 & 8 <= Y.`,
	}
	for _, src := range srcs {
		// Note: arities must be consistent within one program; Example 2.1
		// uses emp/2 while 2.2 uses emp/3, so each parses separately.
		prog, err := ParseProgram(src)
		if err != nil {
			t.Errorf("ParseProgram(%q): %v", src, err)
			continue
		}
		printed := prog.String()
		prog2, err := ParseProgram(printed)
		if err != nil {
			t.Errorf("round-trip reparse of %q failed: %v", printed, err)
			continue
		}
		if prog2.String() != printed {
			t.Errorf("round-trip not fixed-point:\n%s\nvs\n%s", printed, prog2.String())
		}
	}
}

func TestParseConstraintHead(t *testing.T) {
	if _, err := ParseConstraint("panic :- r(X)."); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	if _, err := ParseConstraint("q(X) :- r(X)."); err == nil {
		t.Error("non-panic head accepted as constraint")
	}
	if _, err := ParseConstraint("panic(X) :- r(X)."); err == nil {
		t.Error("non-0-ary panic accepted as constraint")
	}
}

func TestParseTermKinds(t *testing.T) {
	r := MustParseRule(`panic :- p(X, toy, 42, -3, 4.5, "New York").`)
	args := r.Body[0].Atom.Args
	if !args[0].IsVar() || args[0].Var != "X" {
		t.Errorf("arg0 = %v, want var X", args[0])
	}
	if !args[1].Equal(ast.CStr("toy")) {
		t.Errorf("arg1 = %v, want toy", args[1])
	}
	if !args[2].Equal(ast.CInt(42)) {
		t.Errorf("arg2 = %v, want 42", args[2])
	}
	if !args[3].Equal(ast.CInt(-3)) {
		t.Errorf("arg3 = %v, want -3", args[3])
	}
	if !args[4].Equal(ast.C(ast.Rat(9, 2))) {
		t.Errorf("arg4 = %v, want 4.5", args[4])
	}
	if !args[5].Equal(ast.CStr("New York")) {
		t.Errorf("arg5 = %v, want \"New York\"", args[5])
	}
}

func TestParseComparisons(t *testing.T) {
	r := MustParseRule("panic :- p(A,B) & A < B & A <= B & A = B & A <> B & A >= B & A > B & A != B.")
	comps := r.Comparisons()
	want := []ast.CompOp{ast.Lt, ast.Le, ast.Eq, ast.Ne, ast.Ge, ast.Gt, ast.Ne}
	if len(comps) != len(want) {
		t.Fatalf("got %d comparisons, want %d", len(comps), len(want))
	}
	for i, c := range comps {
		if c.Op != want[i] {
			t.Errorf("comparison %d: op = %v, want %v", i, c.Op, want[i])
		}
	}
}

func TestParseConstantComparison(t *testing.T) {
	// Constants may appear on either side of a comparison.
	r := MustParseRule("panic :- emp(E,D,S) & D <> toy & 100 > S.")
	comps := r.Comparisons()
	if !comps[0].Right.Equal(ast.CStr("toy")) {
		t.Errorf("rhs = %v, want toy", comps[0].Right)
	}
	if !comps[1].Left.Equal(ast.CInt(100)) {
		t.Errorf("lhs = %v, want 100", comps[1].Left)
	}
}

func TestParseFacts(t *testing.T) {
	prog := MustParseProgram("dept(toy). dept(shoe). emp(jones, shoe, 50).")
	if len(prog.Rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(prog.Rules))
	}
	for _, r := range prog.Rules {
		if !r.IsFact() {
			t.Errorf("%s is not a fact", r)
		}
	}
}

func TestParseCommaSeparator(t *testing.T) {
	a := MustParseRule("panic :- p(X) & q(X).")
	b := MustParseRule("panic :- p(X), q(X).")
	if a.String() != b.String() {
		t.Errorf("comma and ampersand separators parse differently: %s vs %s", a, b)
	}
}

func TestParseComments(t *testing.T) {
	prog := MustParseProgram(`
		% referential integrity
		panic :- emp(E,D,S) & not dept(D). // C1
	`)
	if len(prog.Rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(prog.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"panic :- ",                      // missing body
		"panic :- p(X",                   // unterminated args
		"panic :- p(X) q(X).",            // missing separator
		"panic :- p(X) & .",              // empty literal
		"panic :- p(X) & X < .",          // missing rhs
		"panic :- not X < 3.",            // not applies to atoms only
		"panic :- p(X). panic :- p(X,Y)", // arity clash
		`panic :- "unterminated`,         // unterminated string
		"panic :- q(Y).",                 // unsafe: head ok but... actually safe; use neg
	}
	// Replace the last with a genuinely invalid one.
	bad[len(bad)-1] = "p(X) :- q(Y)." // unsafe head variable
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
}

func TestParseOmittedFinalPeriod(t *testing.T) {
	r, err := ParseRule("panic :- p(X)")
	if err != nil {
		t.Fatalf("rule without trailing period rejected: %v", err)
	}
	if len(r.Body) != 1 {
		t.Errorf("body length = %d", len(r.Body))
	}
}

func TestParseAtomHelper(t *testing.T) {
	a := MustParseAtom("emp(jones, shoe, 50)")
	if a.Pred != "emp" || a.Arity() != 3 {
		t.Fatalf("atom = %v", a)
	}
	if !a.Args[2].Equal(ast.CInt(50)) {
		t.Errorf("arg2 = %v", a.Args[2])
	}
	if _, err := ParseAtom("emp(a) extra"); err == nil {
		t.Error("trailing input accepted")
	}
}

func TestParseZeroAryBodyAtom(t *testing.T) {
	prog := MustParseProgram("alarm :- panic & p(X).\npanic :- p(X) & X > 3.")
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	if prog.Rules[0].Body[0].Atom.Pred != "panic" {
		t.Errorf("first body literal = %v", prog.Rules[0].Body[0])
	}
}

func TestParseLargeProgram(t *testing.T) {
	// The parser must handle programs with many rules without stack or
	// state issues.
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("panic :- r(X) & X > ")
		sb.WriteString(string(rune('0' + i%10)))
		sb.WriteString(".\n")
	}
	prog, err := ParseProgram(sb.String())
	if err != nil {
		t.Fatalf("large program: %v", err)
	}
	if len(prog.Rules) != 500 {
		t.Errorf("rules = %d, want 500", len(prog.Rules))
	}
}
