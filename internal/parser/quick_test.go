package parser

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// genRule draws a random safe rule over a small vocabulary.
type genRule struct{ r *ast.Rule }

func (genRule) Generate(rng *rand.Rand, _ int) reflect.Value {
	vars := []ast.Term{ast.V("X"), ast.V("Y"), ast.V("Z")}
	consts := []ast.Term{ast.CInt(0), ast.CInt(7), ast.CStr("toy"), ast.CStr("New York")}
	preds := []string{"p", "q", "r"}
	term := func() ast.Term {
		if rng.Intn(3) == 0 {
			return consts[rng.Intn(len(consts))]
		}
		return vars[rng.Intn(len(vars))]
	}
	// Positive atoms first (bind variables), then optional negation and
	// comparisons over bound variables only (safety).
	bound := map[string]bool{}
	var body []ast.Literal
	for i := 0; i < 1+rng.Intn(3); i++ {
		args := []ast.Term{term(), term()}
		for _, a := range args {
			if a.IsVar() {
				bound[a.Var] = true
			}
		}
		body = append(body, ast.Pos(ast.Atom{Pred: preds[rng.Intn(len(preds))], Args: args}))
	}
	var boundVars []ast.Term
	for v := range bound {
		boundVars = append(boundVars, ast.V(v))
	}
	boundTerm := func() ast.Term {
		if len(boundVars) == 0 || rng.Intn(3) == 0 {
			return consts[rng.Intn(len(consts))]
		}
		return boundVars[rng.Intn(len(boundVars))]
	}
	if rng.Intn(2) == 0 {
		body = append(body, ast.Neg(ast.NewAtom("s", boundTerm())))
	}
	if rng.Intn(2) == 0 {
		ops := []ast.CompOp{ast.Lt, ast.Le, ast.Eq, ast.Ne, ast.Ge, ast.Gt}
		body = append(body, ast.Cmp(ast.NewComparison(boundTerm(), ops[rng.Intn(len(ops))], boundTerm())))
	}
	// Head over bound variables/constants.
	head := ast.NewAtom("h", boundTerm())
	return reflect.ValueOf(genRule{&ast.Rule{Head: head, Body: body}})
}

// TestQuickRoundTrip: printing a random rule and reparsing it yields a
// syntactically identical rule.
func TestQuickRoundTrip(t *testing.T) {
	f := func(g genRule) bool {
		printed := g.r.String()
		back, err := ParseRule(printed)
		if err != nil {
			t.Logf("reparse of %q failed: %v", printed, err)
			return false
		}
		if !back.Equal(g.r) {
			t.Logf("round trip changed rule:\n in:  %s\n out: %s", g.r, back)
			return false
		}
		// Printing must be a fixed point.
		return back.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
