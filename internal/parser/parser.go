package parser

import (
	"fmt"
	"math/big"

	"repro/internal/ast"
)

// Parser is a recursive-descent parser over the token stream.
type parser struct {
	lx   *lexer
	tok  token
	next token
	err  error
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	var err error
	if p.tok, err = p.lx.next(); err != nil {
		return nil, err
	}
	if p.next, err = p.lx.next(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	p.tok = p.next
	var err error
	p.next, err = p.lx.next()
	return err
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("parser: line %d, col %d: expected %v, found %v %q",
			p.tok.line, p.tok.col, k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// ParseProgram parses a sequence of period-terminated rules (and facts)
// into a Program. It validates arities and rule safety.
func ParseProgram(src string) (*ast.Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	prog := &ast.Program{}
	for p.tok.kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseRule parses a single rule (the input must contain exactly one,
// with or without the trailing period at end of input).
func ParseRule(src string) (*ast.Rule, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	r, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("parser: line %d: trailing input after rule", p.tok.line)
	}
	if err := r.CheckSafe(); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseConstraint parses a single-rule constraint query: the head must be
// the 0-ary panic predicate.
func ParseConstraint(src string) (*ast.Rule, error) {
	r, err := ParseRule(src)
	if err != nil {
		return nil, err
	}
	if r.Head.Pred != ast.PanicPred || r.Head.Arity() != 0 {
		return nil, fmt.Errorf("parser: constraint head must be %s, got %s", ast.PanicPred, r.Head)
	}
	return r, nil
}

// ParseAtom parses a single ground or non-ground atom, e.g. "emp(jones,shoe,50)".
func ParseAtom(src string) (ast.Atom, error) {
	p, err := newParser(src)
	if err != nil {
		return ast.Atom{}, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
	}
	if p.tok.kind != tokEOF {
		return ast.Atom{}, fmt.Errorf("parser: trailing input after atom")
	}
	return a, nil
}

// parseRule parses: head [:- body] '.'
// A trailing period may be omitted only at end of input.
func (p *parser) parseRule() (*ast.Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	r := &ast.Rule{Head: head}
	if p.tok.kind == tokImplies {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			r.Body = append(r.Body, lit)
			if p.tok.kind != tokAmp {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	switch p.tok.kind {
	case tokDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tokEOF:
		// allow omission at end of input
	default:
		return nil, fmt.Errorf("parser: line %d, col %d: expected '.' or '&' after subgoal, found %v %q",
			p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
	return r, nil
}

// parseLiteral parses: 'not' atom | atom | term compop term
func (p *parser) parseLiteral() (ast.Literal, error) {
	if p.tok.kind == tokNot {
		if err := p.advance(); err != nil {
			return ast.Literal{}, err
		}
		a, err := p.parseAtom()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Neg(a), nil
	}
	// A literal starting with an identifier followed by '(' is an atom;
	// otherwise it must be a comparison (its left side may still be a
	// constant identifier, e.g. toy <> D).
	if p.tok.kind == tokIdent && p.next.kind == tokLParen {
		a, err := p.parseAtom()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Pos(a), nil
	}
	if p.tok.kind == tokIdent && !isCompKind(p.next.kind) {
		// 0-ary atom such as panic used as a subgoal.
		a, err := p.parseAtom()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Pos(a), nil
	}
	left, err := p.parseTerm()
	if err != nil {
		return ast.Literal{}, err
	}
	var op ast.CompOp
	switch p.tok.kind {
	case tokLt:
		op = ast.Lt
	case tokLe:
		op = ast.Le
	case tokEq:
		op = ast.Eq
	case tokNe:
		op = ast.Ne
	case tokGe:
		op = ast.Ge
	case tokGt:
		op = ast.Gt
	default:
		return ast.Literal{}, fmt.Errorf("parser: line %d, col %d: expected comparison operator, found %v %q",
			p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return ast.Literal{}, err
	}
	right, err := p.parseTerm()
	if err != nil {
		return ast.Literal{}, err
	}
	return ast.Cmp(ast.NewComparison(left, op, right)), nil
}

func isCompKind(k tokenKind) bool {
	switch k {
	case tokLt, tokLe, tokEq, tokNe, tokGe, tokGt:
		return true
	}
	return false
}

// parseAtom parses: pred ['(' term {',' term} ')']
func (p *parser) parseAtom() (ast.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: name.text}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokAmp && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return a, nil
}

// parseTerm parses a variable, numeric constant, string constant, or
// symbolic constant.
func (p *parser) parseTerm() (ast.Term, error) {
	t := p.tok
	switch t.kind {
	case tokVar:
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.V(t.text), nil
	case tokIdent:
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.CStr(t.text), nil
	case tokString:
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.CStr(t.text), nil
	case tokNumber:
		r, ok := new(big.Rat).SetString(t.text)
		if !ok {
			return ast.Term{}, fmt.Errorf("parser: line %d: invalid number %q", t.line, t.text)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.C(ast.Value{Kind: ast.NumberValue, Num: r}), nil
	}
	return ast.Term{}, fmt.Errorf("parser: line %d, col %d: expected term, found %v %q",
		t.line, t.col, t.kind, t.text)
}

// MustParseProgram is ParseProgram that panics on error; for tests,
// examples, and embedded fixtures.
func MustParseProgram(src string) *ast.Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// MustParseConstraint is ParseConstraint that panics on error.
func MustParseConstraint(src string) *ast.Rule {
	r, err := ParseConstraint(src)
	if err != nil {
		panic(err)
	}
	return r
}

// MustParseRule is ParseRule that panics on error.
func MustParseRule(src string) *ast.Rule {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	return r
}

// MustParseAtom is ParseAtom that panics on error.
func MustParseAtom(src string) ast.Atom {
	a, err := ParseAtom(src)
	if err != nil {
		panic(err)
	}
	return a
}
