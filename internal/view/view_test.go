package view

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func mkView(t *testing.T, goal, src string) *View {
	t.Helper()
	v, err := New(goal, parser.MustParseProgram(src))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestMaterialize(t *testing.T) {
	v := mkView(t, "rich", "rich(E) :- emp(E,D,S) & S > 100.")
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram("emp(ann,toy,50). emp(bob,toy,200).")); err != nil {
		t.Fatal(err)
	}
	got, err := v.Materialize(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(relation.Strs("bob")) {
		t.Errorf("Materialize = %v", got)
	}
}

func TestIrrelevantUnrelatedRelation(t *testing.T) {
	v := mkView(t, "rich", "rich(E) :- emp(E,D,S) & S > 100.")
	ok, err := Irrelevant(v, store.Ins("dept", relation.Strs("toy")))
	if err != nil || !ok {
		t.Errorf("update to unrelated relation not irrelevant: %v %v", ok, err)
	}
}

func TestIrrelevantBySelection(t *testing.T) {
	// Inserting a low-salary employee cannot change the rich view.
	v := mkView(t, "rich", "rich(E) :- emp(E,D,S) & S > 100.")
	ok, err := Irrelevant(v, store.Ins("emp", relation.TupleOf(
		ast.Str("carl"), ast.Str("toy"), ast.Int(50))))
	if err != nil || !ok {
		t.Errorf("low-salary insert not proved irrelevant: %v %v", ok, err)
	}
	// A high-salary one can.
	ok, err = Irrelevant(v, store.Ins("emp", relation.TupleOf(
		ast.Str("dina"), ast.Str("toy"), ast.Int(500))))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("relevant insert claimed irrelevant")
	}
}

func TestIrrelevantDeletion(t *testing.T) {
	v := mkView(t, "rich", "rich(E) :- emp(E,D,S) & S > 100.")
	// Deleting a low-salary tuple is irrelevant.
	ok, err := Irrelevant(v, store.Del("emp", relation.TupleOf(
		ast.Str("ann"), ast.Str("toy"), ast.Int(50))))
	if err != nil || !ok {
		t.Errorf("low-salary delete not proved irrelevant: %v %v", ok, err)
	}
	// Deleting a high-salary tuple is relevant.
	ok, err = Irrelevant(v, store.Del("emp", relation.TupleOf(
		ast.Str("bob"), ast.Str("toy"), ast.Int(200))))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("relevant delete claimed irrelevant")
	}
}

func TestIrrelevantSoundAgainstDelta(t *testing.T) {
	// Soundness: whenever Irrelevant says true, Delta must be empty on
	// randomized databases.
	v := mkView(t, "pair", "pair(E,F) :- emp(E,D,S) & emp(F,D,T) & S < T.")
	rng := rand.New(rand.NewSource(3))
	names := []string{"a", "b", "c"}
	depts := []string{"x", "y"}
	randUpdate := func() store.Update {
		tu := relation.TupleOf(
			ast.Str(names[rng.Intn(len(names))]),
			ast.Str(depts[rng.Intn(len(depts))]),
			ast.Int(int64(rng.Intn(5))))
		if rng.Intn(2) == 0 {
			return store.Ins("emp", tu)
		}
		return store.Del("emp", tu)
	}
	for trial := 0; trial < 60; trial++ {
		db := store.New()
		for i := 0; i < rng.Intn(5); i++ {
			if _, err := db.Insert("emp", relation.TupleOf(
				ast.Str(names[rng.Intn(len(names))]),
				ast.Str(depts[rng.Intn(len(depts))]),
				ast.Int(int64(rng.Intn(5))))); err != nil {
				t.Fatal(err)
			}
		}
		u := randUpdate()
		irr, err := Irrelevant(v, u)
		if err != nil {
			t.Fatal(err)
		}
		if !irr {
			continue
		}
		added, removed, err := Delta(v, db, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(added)+len(removed) != 0 {
			t.Fatalf("trial %d: update %v claimed irrelevant but delta = +%v -%v", trial, u, added, removed)
		}
	}
}

func TestDelta(t *testing.T) {
	v := mkView(t, "rich", "rich(E) :- emp(E,D,S) & S > 100.")
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram("emp(bob,toy,200).")); err != nil {
		t.Fatal(err)
	}
	added, removed, err := Delta(v, db, store.Ins("emp", relation.TupleOf(
		ast.Str("eve"), ast.Str("toy"), ast.Int(300))))
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || len(removed) != 0 || !added[0].Equal(relation.Strs("eve")) {
		t.Errorf("delta = +%v -%v", added, removed)
	}
	added, removed, err = Delta(v, db, store.Del("emp", relation.TupleOf(
		ast.Str("bob"), ast.Str("toy"), ast.Int(200))))
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 || len(removed) != 1 {
		t.Errorf("delta = +%v -%v", added, removed)
	}
	// Delta must not mutate the original store.
	if !db.Contains("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(200))) {
		t.Error("Delta mutated the store")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("missing", parser.MustParseProgram("v(X) :- e(X).")); err == nil {
		t.Error("missing goal accepted")
	}
}

func TestIrrelevantUnionView(t *testing.T) {
	v := mkView(t, "listed", `
		listed(E) :- emp(E,D,S) & S > 100.
		listed(E) :- vip(E).`)
	// Low-salary insert irrelevant even through the union.
	ok, err := Irrelevant(v, store.Ins("emp", relation.TupleOf(
		ast.Str("carl"), ast.Str("toy"), ast.Int(50))))
	if err != nil || !ok {
		t.Errorf("union view: %v %v", ok, err)
	}
	// vip insert relevant.
	ok, err = Irrelevant(v, store.Ins("vip", relation.Strs("zed")))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("vip insert claimed irrelevant")
	}
}
