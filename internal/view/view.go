// Package view implements the paper's third application (Section 2,
// "Applications"): view maintenance. A view is a datalog program
// defining a goal predicate; given an update, the central question —
// studied by Tompa and Blakeley [1988] and Blakeley, Coburn and Larson
// [1989] — is whether the update is *irrelevant*: provably unable to
// change the view's contents on any database.
//
// The machinery is exactly the paper's: rewrite the view for the update
// (Section 4) and decide equivalence of the rewritten and original view
// queries by mutual containment, dispatched to the same procedures used
// for constraint subsumption (Theorem 3.1/3.2 territory — for views the
// heads are nontrivial, which the containment tests support).
package view

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/containment"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/store"
	"repro/internal/subsume"
)

// View is a named query: a datalog program with a distinguished goal
// predicate.
type View struct {
	Goal string
	Prog *ast.Program
}

// New builds a view after validating the program and the goal.
func New(goal string, prog *ast.Program) (*View, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if len(prog.RulesFor(goal)) == 0 {
		return nil, fmt.Errorf("view: no rules for goal predicate %s", goal)
	}
	return &View{Goal: goal, Prog: prog}, nil
}

// Materialize evaluates the view over the database.
func (v *View) Materialize(db *store.Store) ([]relation.Tuple, error) {
	res, err := eval.Eval(v.Prog, db)
	if err != nil {
		return nil, err
	}
	return res.Tuples(v.Goal), nil
}

// Irrelevant reports whether the update provably cannot change the
// view's contents on any database (given nothing about the current
// state): the rewritten view V' (the view after the update, expressed
// over the pre-update database) must be equivalent to V. The result is
// conservative for language fragments without a complete containment
// procedure: false then means "possibly relevant".
func Irrelevant(v *View, u store.Update) (bool, error) {
	if !mentionsRel(v.Prog, u.Relation) {
		return true, nil
	}
	vPrime, err := rewrite.Rewrite(v.Prog, u)
	if err != nil {
		return false, err
	}
	fwd, err := containedIn(vPrime, v.Prog, v.Goal)
	if err != nil || !fwd {
		return false, err
	}
	return containedIn(v.Prog, vPrime, v.Goal)
}

// containedIn decides program containment for the goal predicate by
// expanding both programs into unions of single rules and dispatching
// each disjunct (conservatively false when expansion is impossible,
// e.g. recursion).
func containedIn(p, q *ast.Program, goal string) (bool, error) {
	left, err := containment.Expand(p, goal)
	if err != nil {
		return false, nil // recursion or inexpressible negation: conservative
	}
	right, err := containment.Expand(q, goal)
	if err != nil {
		return false, nil
	}
	for _, d := range left {
		r, err := subsume.ContainsRuleInUnion(d, right)
		if err != nil {
			return false, err
		}
		if r.Verdict != subsume.Yes {
			return false, nil
		}
	}
	return true, nil
}

func mentionsRel(prog *ast.Program, rel string) bool {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return true
			}
		}
	}
	return false
}

// Delta computes the exact change of the view caused by applying the
// update to db: the added and removed view tuples. It is the ground
// truth used to validate Irrelevant, and a useful primitive in its own
// right (differential view maintenance by recomputation).
func Delta(v *View, db *store.Store, u store.Update) (added, removed []relation.Tuple, err error) {
	before, err := v.Materialize(db)
	if err != nil {
		return nil, nil, err
	}
	after := db.Clone()
	if err := u.Apply(after); err != nil {
		return nil, nil, err
	}
	now, err := v.Materialize(after)
	if err != nil {
		return nil, nil, err
	}
	beforeSet := map[string]relation.Tuple{}
	for _, t := range before {
		beforeSet[t.Key()] = t
	}
	nowSet := map[string]relation.Tuple{}
	for _, t := range now {
		nowSet[t.Key()] = t
	}
	for k, t := range nowSet {
		if _, ok := beforeSet[k]; !ok {
			added = append(added, t)
		}
	}
	for k, t := range beforeSet {
		if _, ok := nowSet[k]; !ok {
			removed = append(removed, t)
		}
	}
	return added, removed, nil
}
