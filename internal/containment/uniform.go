package containment

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/store"
)

// UniformContains decides uniform containment P ⊑u Q for recursive
// datalog programs without negation or arithmetic: on every database —
// over the EDB *and* IDB predicates — the consequences of Q include the
// consequences of P. The paper points to this notion (Levy and Sagiv
// [1993] generalize Theorem 5.1 to it); the decision procedure is
// Sagiv's [1988] chase:
//
//	P ⊑u Q  iff  for every rule h :- B of P, freezing B's atoms into
//	facts (variables become fresh constants) and running Q to fixpoint
//	over those facts derives the frozen h.
//
// Uniform containment implies ordinary containment of the programs'
// goal-predicate semantics, so a positive answer is a sound certificate
// for constraint subsumption of recursive constraints; the converse
// fails in general (uniform containment is strictly stronger).
func UniformContains(p, q *ast.Program) (bool, error) {
	for _, prog := range []*ast.Program{p, q} {
		if prog.HasNegation() || prog.HasComparison() {
			return false, fmt.Errorf("containment: uniform containment requires pure datalog, got negation/arithmetic")
		}
		if err := prog.Validate(); err != nil {
			return false, err
		}
	}
	for _, r := range p.Rules {
		ok, err := uniformRuleCovered(r, q)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// uniformRuleCovered freezes one rule of P and asks whether Q rederives
// its head.
func uniformRuleCovered(r *ast.Rule, q *ast.Program) (bool, error) {
	frozen := ast.Subst{}
	for _, v := range r.Vars() {
		frozen[v] = ast.CStr("\x00frz$" + v)
	}
	db := store.New()
	for _, a := range r.PositiveAtoms() {
		ga := a.Apply(frozen)
		t, err := relation.TermsToTuple(ga.Args)
		if err != nil {
			return false, err
		}
		if _, err := db.Insert(ga.Pred, t); err != nil {
			return false, err
		}
	}
	head := r.Head.Apply(frozen)
	headT, err := relation.TermsToTuple(head.Args)
	if err != nil {
		return false, err
	}
	// Run Q over the frozen database. Q's IDB predicates may coincide
	// with frozen facts (that is the point of uniform containment): seed
	// the evaluation by treating the facts as extra rules of Q.
	qx := q.Clone()
	idb := q.IDBPreds()
	for _, name := range db.Names() {
		if !idb[name] {
			continue
		}
		// Facts for predicates Q also derives must become program facts,
		// or the evaluator would shadow them with the derived relation.
		for _, t := range db.Tuples(name) {
			qx.Rules = append(qx.Rules, ast.Fact(ast.Atom{Pred: name, Args: t.Terms()}))
		}
	}
	res, err := eval.Eval(qx, db)
	if err != nil {
		return false, err
	}
	if rel := res.Relation(head.Pred); rel != nil {
		return rel.Contains(headT), nil
	}
	// The head predicate is not derived by Q at all; the frozen head
	// could still be present as a frozen fact (h :- ... & h patterns).
	return db.Contains(head.Pred, headT), nil
}
