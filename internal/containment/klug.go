package containment

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ineq"
	"repro/internal/relation"
)

// Klug decides C1 ⊑ C2 for conjunctive queries with arithmetic
// comparisons by Klug's [1988] method, the comparator of the paper's
// Section 5 discussion: enumerate every total order (with ties) of C1's
// variables and the constants of both queries that is consistent with
// A(C1) and the fixed order on constants; for each, build the canonical
// database and require C2 to produce C1's head on it. Unlike Theorem 5.1
// it tolerates constants and repeated variables in ordinary subgoals, at
// the cost of enumerating orders: the worst case is an exponential number
// of canonical databases, each tested with an exponential-time CQ match
// (the trade-off the paper discusses).
func Klug(c1, c2 *ast.Rule) (bool, error) {
	return KlugUnion(c1, []*ast.Rule{c2})
}

// KlugUnion decides C1 ⊑ C2_1 ∪ … ∪ C2_n by Klug's method: every
// consistent canonical database of C1 must make some member fire.
func KlugUnion(c1 *ast.Rule, union []*ast.Rule) (bool, error) {
	for _, r := range append([]*ast.Rule{c1}, union...) {
		if r.HasNegation() {
			return false, fmt.Errorf("containment: Klug's test does not apply to negated subgoals in %s", r)
		}
	}
	// Elements to order: C1's variables plus every constant of C1 or the
	// union members (comparisons included).
	elems, consts := klugElements(c1, union)
	a1 := c1.Comparisons()
	contained := true
	enumerateOrderedPartitions(elems, consts, func(blocks [][]ast.Term) bool {
		// Build the linearization constraint set: equalities within each
		// block, strict order between consecutive blocks.
		lin := linearizationAtoms(blocks)
		// The canonical database exists only when A(C1) is consistent
		// with the linearization. Because the linearization totally
		// orders every term of A(C1), consistency is just evaluation.
		if !ineq.Satisfiable(append(append([]ast.Comparison{}, lin...), a1...)) {
			return true // skip inconsistent order
		}
		assign, err := assignBlocks(blocks)
		if err != nil {
			// Only the documented string-density corner can land here;
			// fail closed (report non-containment).
			contained = false
			return false
		}
		db := canonicalDB(c1, assign)
		head1 := groundAtom(c1.Head, assign)
		fired := false
		for _, c2 := range union {
			if cqFires(c2, db, head1) {
				fired = true
				break
			}
		}
		if !fired {
			contained = false
			return false // counterexample found; stop enumerating
		}
		return true
	})
	return contained, nil
}

// klugElements collects the terms to linearize: variables of c1 and
// constants of every rule.
func klugElements(c1 *ast.Rule, union []*ast.Rule) (elems []ast.Term, consts int) {
	seen := map[string]bool{}
	var vars, cs []ast.Term
	addConst := func(t ast.Term) {
		if t.IsConst() && !seen[t.Key()] {
			seen[t.Key()] = true
			cs = append(cs, t)
		}
	}
	for _, v := range c1.Vars() {
		vars = append(vars, ast.V(v))
	}
	for _, r := range append([]*ast.Rule{c1}, union...) {
		for _, t := range r.Head.Args {
			addConst(t)
		}
		for _, l := range r.Body {
			if l.IsComp() {
				addConst(l.Comp.Left)
				addConst(l.Comp.Right)
				continue
			}
			for _, t := range l.Atom.Args {
				addConst(t)
			}
		}
	}
	// Constants first (their relative order is fixed, which prunes the
	// enumeration early), then variables.
	sortTermsByConst(cs)
	return append(cs, vars...), len(cs)
}

func sortTermsByConst(ts []ast.Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Const.Compare(ts[j-1].Const) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// enumerateOrderedPartitions generates every ordered partition (total
// preorder) of elems. The first nconsts elements are constants in
// ascending order: they must occupy distinct blocks in that order, which
// the generator enforces by never merging two constants and never
// placing a later constant's block before an earlier one. The callback
// returns false to stop enumeration.
func enumerateOrderedPartitions(elems []ast.Term, nconsts int, yield func([][]ast.Term) bool) {
	// blocks is the current ordered partition; constBlock[i] = index of
	// the block holding constant i (they are inserted first, in order).
	var blocks [][]ast.Term
	for i := 0; i < nconsts; i++ {
		blocks = append(blocks, []ast.Term{elems[i]})
	}
	stopped := false
	var rec func(i int)
	rec = func(i int) {
		if stopped {
			return
		}
		if i == len(elems) {
			if !yield(blocks) {
				stopped = true
			}
			return
		}
		e := elems[i]
		// Join an existing block.
		for b := range blocks {
			blocks[b] = append(blocks[b], e)
			rec(i + 1)
			blocks[b] = blocks[b][:len(blocks[b])-1]
			if stopped {
				return
			}
		}
		// Or open a new block at any gap.
		for pos := 0; pos <= len(blocks); pos++ {
			blocks = append(blocks, nil)
			copy(blocks[pos+1:], blocks[pos:])
			blocks[pos] = []ast.Term{e}
			rec(i + 1)
			copy(blocks[pos:], blocks[pos+1:])
			blocks = blocks[:len(blocks)-1]
			if stopped {
				return
			}
		}
	}
	rec(nconsts)
}

// assignBlocks picks one constant per block, ascending across blocks:
// blocks containing a constant are fixed to it (the enumeration keeps
// constants in ascending order across blocks), and variable-only blocks
// receive a fresh value strictly between their neighbours' values via
// ineq.Between.
func assignBlocks(blocks [][]ast.Term) (map[string]ast.Value, error) {
	vals := make([]*ast.Value, len(blocks))
	for i, b := range blocks {
		for _, t := range b {
			if t.IsConst() {
				v := t.Const
				vals[i] = &v
				break
			}
		}
	}
	var prev *ast.Value
	for i := range blocks {
		if vals[i] == nil {
			var hi *ast.Value
			for j := i + 1; j < len(blocks); j++ {
				if vals[j] != nil {
					hi = vals[j]
					break
				}
			}
			v, err := ineq.Between(prev, hi)
			if err != nil {
				return nil, err
			}
			vals[i] = &v
		}
		prev = vals[i]
	}
	m := map[string]ast.Value{}
	for i, b := range blocks {
		for _, t := range b {
			if t.IsVar() {
				m[t.Var] = *vals[i]
			}
		}
	}
	return m, nil
}

// linearizationAtoms encodes an ordered partition as comparisons:
// equality within blocks, strictly-less between consecutive blocks.
func linearizationAtoms(blocks [][]ast.Term) []ast.Comparison {
	var out []ast.Comparison
	for _, b := range blocks {
		for i := 1; i < len(b); i++ {
			out = append(out, ast.NewComparison(b[0], ast.Eq, b[i]))
		}
	}
	for i := 1; i < len(blocks); i++ {
		out = append(out, ast.NewComparison(blocks[i-1][0], ast.Lt, blocks[i][0]))
	}
	return out
}

// canonicalDB builds the canonical database of c1 under the assignment:
// the ground images of its ordinary subgoals, grouped by predicate.
func canonicalDB(c1 *ast.Rule, assign map[string]ast.Value) map[string][]relation.Tuple {
	db := map[string][]relation.Tuple{}
	seen := map[string]bool{}
	for _, a := range c1.PositiveAtoms() {
		t := make(relation.Tuple, len(a.Args))
		for i, arg := range a.Args {
			if arg.IsVar() {
				t[i] = assign[arg.Var]
			} else {
				t[i] = arg.Const
			}
		}
		key := a.Pred + "/" + t.Key()
		if !seen[key] {
			seen[key] = true
			db[a.Pred] = append(db[a.Pred], t)
		}
	}
	return db
}

func groundAtom(a ast.Atom, assign map[string]ast.Value) relation.Tuple {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		if arg.IsVar() {
			t[i] = assign[arg.Var]
		} else {
			t[i] = arg.Const
		}
	}
	return t
}

// cqFires reports whether the CQ (with comparisons) produces wantHead on
// the given database, by backtracking match of its ordinary subgoals with
// eager comparison checking.
func cqFires(c *ast.Rule, db map[string][]relation.Tuple, wantHead relation.Tuple) bool {
	atoms := c.PositiveAtoms()
	comps := c.Comparisons()
	var rec func(i int, s ast.Subst) bool
	rec = func(i int, s ast.Subst) bool {
		if i == len(atoms) {
			for _, cmp := range comps {
				g := cmp.Apply(s)
				v, ground := g.Ground()
				if !ground || !v {
					return false
				}
			}
			head := c.Head.Apply(s)
			ht, err := relation.TermsToTuple(head.Args)
			if err != nil {
				return false
			}
			return ht.Equal(wantHead)
		}
		for _, t := range db[atoms[i].Pred] {
			if s2, ok := ast.Unify(atoms[i].Args, t.Terms(), s); ok {
				if rec(i+1, s2) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, ast.Subst{})
}
