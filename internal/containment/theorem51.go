package containment

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ineq"
)

// checkTheorem51Form verifies the Section 5 normal-form restrictions that
// Theorem 5.1 requires of both queries: no negated subgoals, no constants
// among ordinary subgoals, no variable occurring twice among ordinary
// subgoals (Example 5.2 shows the theorem fails without them; use
// ast.NormalizeCQC to rewrite first).
func checkTheorem51Form(r *ast.Rule) error {
	if r.HasNegation() {
		return fmt.Errorf("containment: Theorem 5.1 does not apply to negated subgoals in %s", r)
	}
	seen := map[string]bool{}
	for _, a := range r.PositiveAtoms() {
		for _, t := range a.Args {
			if t.IsConst() {
				return fmt.Errorf("containment: Theorem 5.1 requires no constants in ordinary subgoals (found %s in %s); normalize first", t, a)
			}
			if seen[t.Var] {
				return fmt.Errorf("containment: Theorem 5.1 requires no repeated variables in ordinary subgoals (found %s); normalize first", t.Var)
			}
			seen[t.Var] = true
		}
	}
	for _, c := range r.Comparisons() {
		for _, v := range c.Vars(nil) {
			if !seen[v] {
				return fmt.Errorf("containment: Theorem 5.1 requires comparison variables to occur in ordinary subgoals (found %s in %s)", v, c)
			}
		}
	}
	return nil
}

// NormalizeRule rewrites an arbitrary conjunctive rule (positive atoms
// plus comparisons, no negation) into the Theorem 5.1 normal form:
// constants and repeated variables in ordinary subgoals are replaced by
// fresh variables constrained with equality comparisons. Head arguments
// are left untouched (the theorem permits head variables to re-occur).
// The result is equivalent to the input, so Theorem51/Theorem51Union can
// decide containment for the full CQ-with-arithmetic class after
// normalization.
func NormalizeRule(r *ast.Rule) (*ast.Rule, error) {
	if r.HasNegation() {
		return nil, fmt.Errorf("containment: cannot normalize rule with negation: %s", r)
	}
	fresh := 0
	seen := map[string]bool{}
	// Head variables count as "seen in the head" but their first body
	// occurrence must remain intact so the containment mapping can bind
	// them; treat the first body occurrence as the canonical one.
	var body []ast.Literal
	var eqs []ast.Literal
	for _, l := range r.Body {
		if l.IsComp() {
			body = append(body, l)
			continue
		}
		args := make([]ast.Term, len(l.Atom.Args))
		for i, t := range l.Atom.Args {
			switch {
			case t.IsConst():
				v := ast.V(fmt.Sprintf("N%d#", fresh))
				fresh++
				args[i] = v
				eqs = append(eqs, ast.Cmp(ast.NewComparison(v, ast.Eq, t)))
			case seen[t.Var]:
				v := ast.V(fmt.Sprintf("N%d#", fresh))
				fresh++
				args[i] = v
				eqs = append(eqs, ast.Cmp(ast.NewComparison(v, ast.Eq, t)))
			default:
				seen[t.Var] = true
				args[i] = t
			}
		}
		body = append(body, ast.Pos(ast.Atom{Pred: l.Atom.Pred, Args: args}))
	}
	body = append(body, eqs...)
	out := &ast.Rule{Head: r.Head, Body: body}
	// Head variables must still occur in some ordinary subgoal (they do:
	// their first occurrence was kept); verify to fail loudly otherwise.
	if err := out.CheckSafe(); err != nil {
		return nil, err
	}
	return out, nil
}

// Theorem51 decides C1 ⊑ C2 for conjunctive queries with arithmetic
// comparisons in the Section 5 normal form, by the paper's Theorem 5.1:
// let H be the set of containment mappings from O(C2) to O(C1); then
// C1 ⊑ C2 iff H is nonempty and A(C1) logically implies
// ∨_{h∈H} h(A(C2)) — except that an unsatisfiable A(C1) makes C1 empty
// and hence contained in anything (the H-empty case in the paper's
// proof).
func Theorem51(c1, c2 *ast.Rule) (bool, error) {
	return Theorem51Union(c1, []*ast.Rule{c2})
}

// Theorem51Union decides C1 ⊑ C2_1 ∪ … ∪ C2_n by the union extension of
// Theorem 5.1: containment mappings are collected from every member of
// the union, and the implication's disjuncts range over all of them.
// This is what Example 5.3 (forbidden intervals) requires: a CQC can be
// contained in a union without being contained in any single member.
func Theorem51Union(c1 *ast.Rule, union []*ast.Rule) (bool, error) {
	if err := checkTheorem51Form(c1); err != nil {
		return false, err
	}
	a1 := c1.Comparisons()
	var disjuncts [][]ast.Comparison
	for _, c2 := range union {
		if err := checkTheorem51Form(c2); err != nil {
			return false, err
		}
		// Rename C2 apart so its variables cannot collide with C1's.
		c2r := c2.RenameApart("~")
		for _, h := range Mappings(c2r, c1) {
			a2 := c2r.Comparisons()
			mapped := make([]ast.Comparison, len(a2))
			for i, cmp := range a2 {
				mapped[i] = cmp.Apply(h)
			}
			disjuncts = append(disjuncts, mapped)
		}
	}
	// With no mappings at all, containment holds only when C1 can never
	// fire, i.e. A(C1) is unsatisfiable; ineq.Implies with an empty
	// disjunction returns exactly that.
	return ineq.Implies(a1, disjuncts), nil
}

// CountMappings returns the total number of containment mappings from
// the union members into c1 — |H| in the paper's complexity discussion.
// It is exported for the Theorem 5.1 vs Klug experiment, which sweeps the
// number of duplicate predicates (and hence |H|).
func CountMappings(c1 *ast.Rule, union []*ast.Rule) int {
	n := 0
	for _, c2 := range union {
		n += len(Mappings(c2.RenameApart("~"), c1))
	}
	return n
}
