package containment

import (
	"repro/internal/ast"
	"repro/internal/ineq"
)

// SoundContains is a sound but incomplete containment test for the full
// constraint language mix — negated subgoals and arithmetic comparisons
// together, where no complete procedure is implemented (the paper's
// complete results cover the pure fragments). It reports true only when
// C1 ⊑ C2 provably holds:
//
// there exist containment mappings h from the positive subgoals of C2
// into the positive subgoals of C1, sending the head to the head, such
// that every mapped negated subgoal of C2 occurs verbatim among C1's
// negated subgoals, and A(C1) implies the disjunction of the mapped
// A(C2) over all such h.
//
// A false answer means "unknown": the caller must escalate to a more
// expensive phase (the staged-checking discipline of Section 1).
func SoundContains(c1, c2 *ast.Rule) bool {
	return SoundContainsUnion(c1, []*ast.Rule{c2})
}

// SoundContainsUnion is SoundContains with a union of targets; mappings
// are collected from every member (the union extension of Theorem 5.1,
// restricted here to its sound direction).
func SoundContainsUnion(c1 *ast.Rule, union []*ast.Rule) bool {
	neg1 := c1.NegatedAtoms()
	var disjuncts [][]ast.Comparison
	for _, c2 := range union {
		c2r := c2.RenameApart("~")
		for _, h := range Mappings(c2r, c1) {
			if !negatedCovered(c2r, h, neg1) {
				continue
			}
			a2 := c2r.Comparisons()
			mapped := make([]ast.Comparison, len(a2))
			ok := true
			for i, cmp := range a2 {
				m := cmp.Apply(h)
				// Unmapped comparison variables (not occurring in any
				// positive subgoal) make the implication unsound to
				// state; skip such mappings.
				if m.Left.IsVar() && hasSuffix(m.Left.Var) || m.Right.IsVar() && hasSuffix(m.Right.Var) {
					ok = false
					break
				}
				mapped[i] = m
			}
			if ok {
				disjuncts = append(disjuncts, mapped)
			}
		}
	}
	return ineq.Implies(c1.Comparisons(), disjuncts)
}

func hasSuffix(v string) bool {
	return len(v) > 0 && v[len(v)-1] == '~'
}

// negatedCovered reports whether every negated subgoal of src, under h,
// occurs verbatim among dstNeg. If a negated subgoal has unmapped
// variables the mapping is rejected (conservative).
func negatedCovered(src *ast.Rule, h Mapping, dstNeg []ast.Atom) bool {
	for _, n := range src.NegatedAtoms() {
		mapped := n.Apply(h)
		for _, t := range mapped.Args {
			if t.IsVar() && hasSuffix(t.Var) {
				return false
			}
		}
		found := false
		for _, d := range dstNeg {
			if mapped.Equal(d) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
