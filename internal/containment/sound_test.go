package containment

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/store"
)

// TestSoundContainsNeverLies drives the incomplete mixed-language test
// over random rule pairs with negation AND arithmetic: whenever it claims
// C1 ⊑ C2, no random database may have C1 firing and C2 silent. This is
// the safety property the staged pipeline's update-only phase rests on.
func TestSoundContainsNeverLies(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	vars := []ast.Term{ast.V("X"), ast.V("Y"), ast.V("Z")}
	randRule := func() *ast.Rule {
		r := &ast.Rule{Head: ast.NewAtom(ast.PanicPred)}
		bound := map[string]bool{}
		for i := 0; i < 1+rng.Intn(2); i++ {
			a, b := vars[rng.Intn(3)], vars[rng.Intn(3)]
			bound[a.Var], bound[b.Var] = true, true
			r.Body = append(r.Body, ast.Pos(ast.NewAtom("e", a, b)))
		}
		var bv []ast.Term
		for v := range bound {
			bv = append(bv, ast.V(v))
		}
		pick := func() ast.Term { return bv[rng.Intn(len(bv))] }
		if rng.Intn(2) == 0 {
			r.Body = append(r.Body, ast.Neg(ast.NewAtom("f", pick())))
		}
		if rng.Intn(2) == 0 {
			ops := []ast.CompOp{ast.Lt, ast.Le, ast.Ne, ast.Gt, ast.Ge}
			rhs := pick()
			if rng.Intn(2) == 0 {
				rhs = ast.CInt(int64(rng.Intn(3)))
			}
			r.Body = append(r.Body, ast.Cmp(ast.NewComparison(pick(), ops[rng.Intn(len(ops))], rhs)))
		}
		return r
	}
	claims := 0
	for trial := 0; trial < 400; trial++ {
		c1, c2 := randRule(), randRule()
		if !SoundContains(c1, c2) {
			continue
		}
		claims++
		p1, p2 := ast.NewProgram(c1), ast.NewProgram(c2)
		for probe := 0; probe < 30; probe++ {
			db := store.New()
			db.MustEnsure("e", 2)
			db.MustEnsure("f", 1)
			for i := 0; i < rng.Intn(5); i++ {
				if _, err := db.Insert("e", relation.Ints(int64(rng.Intn(3)), int64(rng.Intn(3)))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < rng.Intn(3); i++ {
				if _, err := db.Insert("f", relation.Ints(int64(rng.Intn(3)))); err != nil {
					t.Fatal(err)
				}
			}
			fires1, err := eval.PanicHolds(p1, db)
			if err != nil {
				t.Fatal(err)
			}
			if !fires1 {
				continue
			}
			fires2, err := eval.PanicHolds(p2, db)
			if err != nil {
				t.Fatal(err)
			}
			if !fires2 {
				t.Fatalf("SoundContains lied:\nC1 = %s\nC2 = %s\ndb = %s", c1, c2, db)
			}
		}
	}
	if claims < 10 {
		t.Fatalf("only %d containment claims exercised; generator too restrictive", claims)
	}
}
