package containment

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/sat"
)

// ContainsWithNegation decides C1 ⊑ C2 for conjunctive queries with
// negated subgoals and no arithmetic comparisons (constants and repeated
// variables allowed; rules must be safe).
//
// The procedure searches for a countermodel. By the small-countermodel
// property underlying Levy and Sagiv [1993], if some database D has
// C1 firing and C2 silent, then so does the database D* obtained by
// restricting D to the values used by C1's firing instantiation together
// with the constants of both queries: C1 still fires (its positive
// subgoals survive, its negated subgoals were absent from the superset),
// and C2 stays silent (a C2 instantiation over D* would use only
// retained values, and its negated subgoals, being absent from D*, are
// absent from D — D* keeps every D-tuple over the retained values).
//
// So it suffices to enumerate the canonical assignments g of C1's
// variables — every partition of the variables, each block either a
// fresh value or one of the constants — and, for each, ask whether some
// set of extra tuples over the finite active domain yields a
// countermodel. That last question is an exact SAT instance: one boolean
// per possible tuple, forced true for g's positive image, forced false
// for g's negated image, and one blocking clause per potential C2
// instantiation.
func ContainsWithNegation(c1, c2 *ast.Rule) (bool, error) {
	return ContainsWithNegationUnion(c1, []*ast.Rule{c2})
}

// ContainsWithNegationUnion decides C1 ⊑ C2_1 ∪ … ∪ C2_n for CQs with
// negation: the countermodel must keep every member silent, adding each
// member's blocking clauses to the same SAT instance.
func ContainsWithNegationUnion(c1 *ast.Rule, union []*ast.Rule) (bool, error) {
	all := append([]*ast.Rule{c1}, union...)
	for _, r := range all {
		if r.HasComparison() {
			return false, fmt.Errorf("containment: ContainsWithNegation does not apply to arithmetic in %s", r)
		}
		if err := r.CheckSafe(); err != nil {
			return false, err
		}
	}
	// Collect the constants of all rules.
	constSet := map[string]ast.Value{}
	for _, r := range all {
		collectRuleConsts(r, constSet)
	}
	var consts []ast.Value
	for _, v := range constSet {
		consts = append(consts, v)
	}
	sortValues(consts)

	vars := c1.Vars()
	found := false
	enumerateAssignments(vars, consts, func(g map[string]ast.Value, domain []ast.Value) bool {
		if counterModelExists(c1, union, g, domain) {
			found = true
			return false
		}
		return true
	})
	return !found, nil
}

func collectRuleConsts(r *ast.Rule, consts map[string]ast.Value) {
	note := func(a ast.Atom) {
		for _, t := range a.Args {
			if t.IsConst() {
				consts[t.Const.Key()] = t.Const
			}
		}
	}
	note(r.Head)
	for _, l := range r.Body {
		if !l.IsComp() {
			note(l.Atom)
		}
	}
}

func sortValues(vs []ast.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Compare(vs[j-1]) < 0; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// enumerateAssignments yields every canonical assignment of vars: a set
// partition where each block maps to a distinct fresh symbol or to one of
// the constants. domain is the active domain (assigned values plus all
// constants). The callback returns false to stop.
func enumerateAssignments(vars []string, consts []ast.Value, yield func(map[string]ast.Value, []ast.Value) bool) {
	// Fresh values: symbolic constants outside any user vocabulary.
	fresh := make([]ast.Value, len(vars))
	for i := range fresh {
		fresh[i] = ast.Str(fmt.Sprintf("\x00fresh%d", i))
	}
	// blocks[i] = value index: 0..len(consts)-1 for constants,
	// len(consts)+k for fresh symbol k.
	stopped := false
	assign := map[string]ast.Value{}
	var blocks [][]int // indices into vars
	var rec func(i int)
	emit := func() {
		domain := append([]ast.Value{}, consts...)
		usedFresh := 0
		// Assign: each block either joins a constant or gets the next
		// fresh symbol. We enumerate that choice here.
		var choose func(bi int, usedConst map[int]bool)
		choose = func(bi int, usedConst map[int]bool) {
			if stopped {
				return
			}
			if bi == len(blocks) {
				dom := append([]ast.Value{}, domain...)
				for k := 0; k < usedFresh; k++ {
					dom = append(dom, fresh[k])
				}
				g := map[string]ast.Value{}
				for v, val := range assign {
					g[v] = val
				}
				if !yield(g, dom) {
					stopped = true
				}
				return
			}
			// Fresh choice.
			for _, vi := range blocks[bi] {
				assign[vars[vi]] = fresh[usedFresh]
			}
			usedFresh++
			choose(bi+1, usedConst)
			usedFresh--
			if stopped {
				return
			}
			// Constant choices.
			for ci := range consts {
				if usedConst[ci] {
					continue
				}
				usedConst[ci] = true
				for _, vi := range blocks[bi] {
					assign[vars[vi]] = consts[ci]
				}
				choose(bi+1, usedConst)
				usedConst[ci] = false
				if stopped {
					return
				}
			}
		}
		choose(0, map[int]bool{})
	}
	rec = func(i int) {
		if stopped {
			return
		}
		if i == len(vars) {
			emit()
			return
		}
		for b := range blocks {
			blocks[b] = append(blocks[b], i)
			rec(i + 1)
			blocks[b] = blocks[b][:len(blocks[b])-1]
			if stopped {
				return
			}
		}
		blocks = append(blocks, []int{i})
		rec(i + 1)
		blocks = blocks[:len(blocks)-1]
	}
	rec(0)
}

// counterModelExists builds and solves the SAT instance for one canonical
// assignment g: is there a database over domain in which C1 fires via g
// and no union member fires at all?
func counterModelExists(c1 *ast.Rule, union []*ast.Rule, g map[string]ast.Value, domain []ast.Value) bool {
	f := sat.NewFormula()
	tupleVar := map[string]sat.Lit{}
	varOf := func(pred string, t relation.Tuple) sat.Lit {
		k := pred + "/" + t.Key()
		if l, ok := tupleVar[k]; ok {
			return l
		}
		l := f.NewVar()
		tupleVar[k] = l
		return l
	}
	groundT := func(a ast.Atom, env map[string]ast.Value) (relation.Tuple, bool) {
		t := make(relation.Tuple, len(a.Args))
		for i, arg := range a.Args {
			if arg.IsVar() {
				v, ok := env[arg.Var]
				if !ok {
					return nil, false
				}
				t[i] = v
			} else {
				t[i] = arg.Const
			}
		}
		return t, true
	}
	// C1 fires via g: positives true, negatives false.
	for _, a := range c1.PositiveAtoms() {
		t, ok := groundT(a, g)
		if !ok {
			return false
		}
		f.AddUnit(varOf(a.Pred, t))
	}
	for _, a := range c1.NegatedAtoms() {
		t, ok := groundT(a, g)
		if !ok {
			return false
		}
		f.AddUnit(varOf(a.Pred, t).Neg())
	}
	// Head image of C1 under g (for non-0-ary goal predicates the
	// containment target must produce the same head tuple).
	head1, _ := groundT(c1.Head, g)
	// Blocking clauses: for every member and every instantiation of its
	// variables over the domain whose head matches head1, forbid firing.
	for _, c2 := range union {
		vars2 := c2.Vars()
		env := map[string]ast.Value{}
		var rec func(i int) bool // returns false when formula is already unsat-bound
		rec = func(i int) bool {
			if i == len(vars2) {
				h2, ok := groundT(c2.Head, env)
				if !ok || !h2.Equal(head1) {
					return true
				}
				var clause []sat.Lit
				for _, a := range c2.PositiveAtoms() {
					t, ok := groundT(a, env)
					if !ok {
						return true
					}
					clause = append(clause, varOf(a.Pred, t).Neg())
				}
				for _, a := range c2.NegatedAtoms() {
					t, ok := groundT(a, env)
					if !ok {
						return true
					}
					clause = append(clause, varOf(a.Pred, t))
				}
				f.AddClause(clause...)
				return true
			}
			for _, v := range domain {
				env[vars2[i]] = v
				if !rec(i + 1) {
					return false
				}
			}
			delete(env, vars2[i])
			return true
		}
		rec(0)
	}
	_, satisfiable := f.Solve()
	return satisfiable
}
