// Package containment implements query containment for the constraint
// classes of the paper:
//
//   - ContainsCQ / ContainsCQUnion: Chandra–Merlin homomorphism tests for
//     conjunctive queries and unions of CQs (complete without negation or
//     arithmetic; constants and repeated variables allowed).
//   - Theorem51 / Theorem51Union: the paper's Theorem 5.1 test for CQs
//     with arithmetic comparisons under the Section 5 normal form — all
//     containment mappings are collected and a single implication over
//     the comparisons is checked (internal/ineq).
//   - Klug / KlugUnion: Klug's [1988] linearization test, the comparator
//     the paper argues against: enumerate every total order of C1's terms
//     consistent with A(C1), build the canonical database, and require C2
//     to fire on each (complete for CQs with arithmetic, constants and
//     repeated variables allowed).
//   - ContainsWithNegation: complete containment for CQs with negated
//     subgoals (no arithmetic) via countermodel search over canonical
//     domains, encoded into SAT (internal/sat), following the
//     small-countermodel property behind Levy and Sagiv [1993].
//   - SoundContains: a sound but incomplete mapping-based test for the
//     full language mix (negation and arithmetic together), used as a
//     fast first phase.
//   - Expand: unfolding of nonrecursive programs into unions of single
//     rules, including the negated-intermediate shapes produced by the
//     Section 4 update rewritings.
package containment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/relation"
)

// Mapping is a containment mapping: a substitution on the source rule's
// variables whose application sends the source head to the target head
// and every source subgoal to some target subgoal.
type Mapping = ast.Subst

// Mappings returns every containment mapping from the ordinary (positive)
// subgoals of src into the ordinary subgoals of dst, consistent with
// mapping src's head to dst's head. Target terms are treated as frozen:
// src variables bind to dst terms, constants must match exactly. Mappings
// that differ only in subgoal choice but agree on all variables are
// deduplicated.
//
// Negated subgoals and comparisons of both rules are ignored here; the
// callers (Theorem 5.1, sound tests) handle them.
func Mappings(src, dst *ast.Rule) []Mapping {
	// Index dst subgoals by predicate.
	byPred := map[string][]ast.Atom{}
	for _, a := range dst.PositiveAtoms() {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}
	// One scratch mapping threads the whole search; bindings added by a
	// candidate are recorded on the trail and unwound on backtrack (the
	// eval.joinLoop idiom), so only the solutions themselves are cloned.
	h := Mapping{}
	var trail []string
	if !matchAtomTrail(src.Head, dst.Head, h, &trail) {
		return nil
	}
	srcAtoms, cands, ok := orderCandidates(src.PositiveAtoms(), byPred, h)
	if !ok {
		return nil // some subgoal has no compatible target: no mapping exists
	}
	var out []Mapping
	seen := map[string]bool{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(srcAtoms) {
			key := mappingKey(h)
			if !seen[key] {
				seen[key] = true
				out = append(out, h.Clone())
			}
			return
		}
		for _, target := range cands[i] {
			mark := len(trail)
			if matchAtomTrail(srcAtoms[i], target, h, &trail) {
				rec(i + 1)
			}
			for len(trail) > mark {
				delete(h, trail[len(trail)-1])
				trail = trail[:len(trail)-1]
			}
		}
	}
	rec(0)
	return out
}

// HasMapping reports whether at least one containment mapping exists; it
// short-circuits rather than enumerating.
func HasMapping(src, dst *ast.Rule) bool {
	byPred := map[string][]ast.Atom{}
	for _, a := range dst.PositiveAtoms() {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}
	h := Mapping{}
	var trail []string
	if !matchAtomTrail(src.Head, dst.Head, h, &trail) {
		return false
	}
	srcAtoms, cands, ok := orderCandidates(src.PositiveAtoms(), byPred, h)
	if !ok {
		return false
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(srcAtoms) {
			return true
		}
		for _, target := range cands[i] {
			mark := len(trail)
			if matchAtomTrail(srcAtoms[i], target, h, &trail) && rec(i+1) {
				return true
			}
			for len(trail) > mark {
				delete(h, trail[len(trail)-1])
				trail = trail[:len(trail)-1]
			}
		}
		return false
	}
	return rec(0)
}

// orderCandidates precomputes, for each positive src subgoal, the dst
// subgoals compatible with the head bindings already in h, and returns
// the subgoals reordered fewest-candidates-first (stable on ties) along
// with their candidate lists. Trying the most constrained subgoal first
// fails fast: a wrong early binding is discovered after the smallest
// candidate product, not after exhausting a wide one. A subgoal with no
// compatible candidate at all proves no mapping exists (ok is false), so
// callers skip the search entirely. h is used as scratch during the
// compatibility probes but left exactly as given.
func orderCandidates(srcAtoms []ast.Atom, byPred map[string][]ast.Atom, h Mapping) (atoms []ast.Atom, cands [][]ast.Atom, ok bool) {
	type entry struct {
		atom  ast.Atom
		cands []ast.Atom
	}
	entries := make([]entry, 0, len(srcAtoms))
	var scratch []string
	for _, a := range srcAtoms {
		var cs []ast.Atom
		for _, target := range byPred[a.Pred] {
			mark := len(scratch)
			if matchAtomTrail(a, target, h, &scratch) {
				cs = append(cs, target)
			}
			for len(scratch) > mark {
				delete(h, scratch[len(scratch)-1])
				scratch = scratch[:len(scratch)-1]
			}
		}
		if len(cs) == 0 {
			return nil, nil, false
		}
		entries = append(entries, entry{a, cs})
	}
	sort.SliceStable(entries, func(i, j int) bool { return len(entries[i].cands) < len(entries[j].cands) })
	atoms = make([]ast.Atom, len(entries))
	cands = make([][]ast.Atom, len(entries))
	for i, e := range entries {
		atoms[i] = e.atom
		cands[i] = e.cands
	}
	return atoms, cands, true
}

// matchAtomTrail extends h so that h(src) == dst, treating dst's terms as
// frozen constants. It mutates h, appending each variable it binds to
// trail, and reports success; on failure the partial bindings stay on the
// trail for the caller to unwind.
func matchAtomTrail(src, dst ast.Atom, h Mapping, trail *[]string) bool {
	if src.Pred != dst.Pred || len(src.Args) != len(dst.Args) {
		return false
	}
	for i, s := range src.Args {
		d := dst.Args[i]
		if s.IsConst() {
			if !d.IsConst() || !s.Const.Equal(d.Const) {
				return false
			}
			continue
		}
		if b, ok := h[s.Var]; ok {
			if !b.Equal(d) {
				return false
			}
			continue
		}
		h[s.Var] = d
		*trail = append(*trail, s.Var)
	}
	return true
}

// mappingKey canonicalizes a mapping for deduplication.
func mappingKey(h Mapping) string {
	type pair struct{ v, k string }
	pairs := make([]pair, 0, len(h))
	size := 0
	for v, t := range h {
		// Constant terms render through the intern pool's precomputed key
		// table (relation.ValueKey) instead of rebuilding the string; the
		// mapping search deduplicates after every full assignment, so this
		// sits on containment's hot path.
		k := t.Key()
		if t.IsConst() {
			k = "C" + relation.ValueKey(t.Const)
		}
		p := pair{v, k}
		pairs = append(pairs, p)
		size += len(p.v) + len(p.k) + 2
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	var sb strings.Builder
	sb.Grow(size)
	for _, p := range pairs {
		sb.WriteString(p.v)
		sb.WriteByte('=')
		sb.WriteString(p.k)
		sb.WriteByte(';')
	}
	return sb.String()
}

// ContainsCQ reports C1 ⊑ C2 for pure conjunctive queries (no negation,
// no arithmetic; constants and repeated variables allowed): by
// Chandra–Merlin, C1 ⊑ C2 iff a containment mapping sends C2 into C1.
func ContainsCQ(c1, c2 *ast.Rule) (bool, error) {
	for _, r := range []*ast.Rule{c1, c2} {
		if r.HasNegation() || r.HasComparison() {
			return false, fmt.Errorf("containment: ContainsCQ requires pure CQs, got %s", r)
		}
	}
	return HasMapping(c2, c1), nil
}

// ContainsCQUnion reports C ⊑ C1 ∪ … ∪ Cn for pure CQs. By Sagiv and
// Yannakakis [1981], without arithmetic this holds iff C is contained in
// some single member.
func ContainsCQUnion(c *ast.Rule, union []*ast.Rule) (bool, error) {
	for _, m := range union {
		ok, err := ContainsCQ(c, m)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
