// Package containment implements query containment for the constraint
// classes of the paper:
//
//   - ContainsCQ / ContainsCQUnion: Chandra–Merlin homomorphism tests for
//     conjunctive queries and unions of CQs (complete without negation or
//     arithmetic; constants and repeated variables allowed).
//   - Theorem51 / Theorem51Union: the paper's Theorem 5.1 test for CQs
//     with arithmetic comparisons under the Section 5 normal form — all
//     containment mappings are collected and a single implication over
//     the comparisons is checked (internal/ineq).
//   - Klug / KlugUnion: Klug's [1988] linearization test, the comparator
//     the paper argues against: enumerate every total order of C1's terms
//     consistent with A(C1), build the canonical database, and require C2
//     to fire on each (complete for CQs with arithmetic, constants and
//     repeated variables allowed).
//   - ContainsWithNegation: complete containment for CQs with negated
//     subgoals (no arithmetic) via countermodel search over canonical
//     domains, encoded into SAT (internal/sat), following the
//     small-countermodel property behind Levy and Sagiv [1993].
//   - SoundContains: a sound but incomplete mapping-based test for the
//     full language mix (negation and arithmetic together), used as a
//     fast first phase.
//   - Expand: unfolding of nonrecursive programs into unions of single
//     rules, including the negated-intermediate shapes produced by the
//     Section 4 update rewritings.
package containment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Mapping is a containment mapping: a substitution on the source rule's
// variables whose application sends the source head to the target head
// and every source subgoal to some target subgoal.
type Mapping = ast.Subst

// Mappings returns every containment mapping from the ordinary (positive)
// subgoals of src into the ordinary subgoals of dst, consistent with
// mapping src's head to dst's head. Target terms are treated as frozen:
// src variables bind to dst terms, constants must match exactly. Mappings
// that differ only in subgoal choice but agree on all variables are
// deduplicated.
//
// Negated subgoals and comparisons of both rules are ignored here; the
// callers (Theorem 5.1, sound tests) handle them.
func Mappings(src, dst *ast.Rule) []Mapping {
	// Index dst subgoals by predicate.
	byPred := map[string][]ast.Atom{}
	for _, a := range dst.PositiveAtoms() {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}
	seed := Mapping{}
	if !matchAtomFrozen(src.Head, dst.Head, seed) {
		return nil
	}
	srcAtoms := src.PositiveAtoms()
	var out []Mapping
	seen := map[string]bool{}
	var rec func(i int, h Mapping)
	rec = func(i int, h Mapping) {
		if i == len(srcAtoms) {
			key := mappingKey(h)
			if !seen[key] {
				seen[key] = true
				out = append(out, h.Clone())
			}
			return
		}
		for _, target := range byPred[srcAtoms[i].Pred] {
			h2 := h.Clone()
			if matchAtomFrozen(srcAtoms[i], target, h2) {
				rec(i+1, h2)
			}
		}
	}
	rec(0, seed)
	return out
}

// HasMapping reports whether at least one containment mapping exists; it
// short-circuits rather than enumerating.
func HasMapping(src, dst *ast.Rule) bool {
	byPred := map[string][]ast.Atom{}
	for _, a := range dst.PositiveAtoms() {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}
	seed := Mapping{}
	if !matchAtomFrozen(src.Head, dst.Head, seed) {
		return false
	}
	srcAtoms := src.PositiveAtoms()
	var rec func(i int, h Mapping) bool
	rec = func(i int, h Mapping) bool {
		if i == len(srcAtoms) {
			return true
		}
		for _, target := range byPred[srcAtoms[i].Pred] {
			h2 := h.Clone()
			if matchAtomFrozen(srcAtoms[i], target, h2) && rec(i+1, h2) {
				return true
			}
		}
		return false
	}
	return rec(0, seed)
}

// matchAtomFrozen extends h so that h(src) == dst, treating dst's terms
// as frozen constants. It mutates h and reports success.
func matchAtomFrozen(src, dst ast.Atom, h Mapping) bool {
	if src.Pred != dst.Pred || len(src.Args) != len(dst.Args) {
		return false
	}
	for i, s := range src.Args {
		d := dst.Args[i]
		if s.IsConst() {
			if !d.IsConst() || !s.Const.Equal(d.Const) {
				return false
			}
			continue
		}
		if b, ok := h[s.Var]; ok {
			if !b.Equal(d) {
				return false
			}
			continue
		}
		h[s.Var] = d
	}
	return true
}

// mappingKey canonicalizes a mapping for deduplication.
func mappingKey(h Mapping) string {
	keys := make([]string, 0, len(h))
	for v := range h {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, v := range keys {
		fmt.Fprintf(&sb, "%s=%s;", v, h[v].Key())
	}
	return sb.String()
}

// ContainsCQ reports C1 ⊑ C2 for pure conjunctive queries (no negation,
// no arithmetic; constants and repeated variables allowed): by
// Chandra–Merlin, C1 ⊑ C2 iff a containment mapping sends C2 into C1.
func ContainsCQ(c1, c2 *ast.Rule) (bool, error) {
	for _, r := range []*ast.Rule{c1, c2} {
		if r.HasNegation() || r.HasComparison() {
			return false, fmt.Errorf("containment: ContainsCQ requires pure CQs, got %s", r)
		}
	}
	return HasMapping(c2, c1), nil
}

// ContainsCQUnion reports C ⊑ C1 ∪ … ∪ Cn for pure CQs. By Sagiv and
// Yannakakis [1981], without arithmetic this holds iff C is contained in
// some single member.
func ContainsCQUnion(c *ast.Rule, union []*ast.Rule) (bool, error) {
	for _, m := range union {
		ok, err := ContainsCQ(c, m)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
