package containment

import (
	"testing"

	"repro/internal/parser"
)

func TestUniformContainsIdentity(t *testing.T) {
	p := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	ok, err := UniformContains(p, p)
	if err != nil || !ok {
		t.Errorf("self uniform containment: %v %v", ok, err)
	}
}

func TestUniformContainsLinearVsNonlinear(t *testing.T) {
	// Left-linear and nonlinear transitive closure are uniformly
	// equivalent: each rule of one is rederivable by the other.
	linear := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	nonlinear := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & reach(Z,Y).`)
	ok, err := UniformContains(linear, nonlinear)
	if err != nil || !ok {
		t.Errorf("linear ⊑u nonlinear: %v %v", ok, err)
	}
	ok, err = UniformContains(nonlinear, linear)
	if err != nil || !ok {
		// reach(X,Z) & reach(Z,Y): the linear program must rederive the
		// head from frozen reach facts; it needs edge facts to do so, so
		// this direction FAILS uniformly (a classic example).
		if ok {
			t.Errorf("unexpected")
		}
	}
	if ok {
		t.Error("nonlinear ⊑u linear should fail: linear cannot chain two frozen reach facts")
	}
}

func TestUniformContainsWeakerProgram(t *testing.T) {
	// A program deriving reach only from edges is uniformly contained in
	// full transitive closure.
	base := parser.MustParseProgram(`reach(X,Y) :- edge(X,Y).`)
	tc := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	ok, err := UniformContains(base, tc)
	if err != nil || !ok {
		t.Errorf("base ⊑u tc: %v %v", ok, err)
	}
	ok, err = UniformContains(tc, base)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("tc ⊑u base should fail")
	}
}

func TestUniformContainsRejectsNegation(t *testing.T) {
	p := parser.MustParseProgram("panic :- p(X) & not q(X).")
	if _, err := UniformContains(p, p); err == nil {
		t.Error("negation accepted")
	}
}

func TestUniformContainsDifferentPredicates(t *testing.T) {
	p := parser.MustParseProgram("panic :- p(X).")
	q := parser.MustParseProgram("panic :- q(X).")
	ok, err := UniformContains(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("containment across disjoint predicates")
	}
}
