package containment

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func mustC(t *testing.T, src string) *ast.Rule {
	t.Helper()
	r, err := ParseLooseRule(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r
}

// ParseLooseRule parses a rule without enforcing safety (containment
// fixtures sometimes use range-unrestricted comparisons deliberately).
func ParseLooseRule(src string) (*ast.Rule, error) {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return prog.Rules[0], nil
}

func TestMappingsBasic(t *testing.T) {
	// Example 5.1's two mappings from C2 = r(U,V) into
	// C1' = r(U,V) & r(S,T).
	c1 := mustC(t, "panic :- r(U,V) & r(S,T) & U = T & V = S.")
	c2 := mustC(t, "panic :- r(U,V) & U <= V.")
	ms := Mappings(c2.RenameApart("~"), c1)
	if len(ms) != 2 {
		t.Fatalf("got %d mappings, want 2", len(ms))
	}
}

func TestMappingsHeadConstraint(t *testing.T) {
	q1 := mustC(t, "q(X) :- e(X,Y).")
	q2 := mustC(t, "q(Y) :- e(X,Y).")
	// Mapping from q2 into q1 must send q2's head var Y to q1's X, but Y
	// appears in the second column of e, so no mapping exists.
	if got := Mappings(q2, q1); len(got) != 0 {
		t.Errorf("unexpected mappings: %v", got)
	}
	// Identity works.
	if got := Mappings(q1.Clone(), q1); len(got) != 1 {
		t.Errorf("identity mappings = %d, want 1", len(got))
	}
}

func TestMappingsConstants(t *testing.T) {
	src := mustC(t, "panic :- p(X, toy).")
	dst1 := mustC(t, "panic :- p(a, toy).")
	dst2 := mustC(t, "panic :- p(a, shoe).")
	if len(Mappings(src, dst1)) != 1 {
		t.Error("constant-compatible mapping missed")
	}
	if len(Mappings(src, dst2)) != 0 {
		t.Error("constant clash accepted")
	}
	// A source constant cannot map onto a target variable.
	dst3 := mustC(t, "panic :- p(a, D).")
	if len(Mappings(src, dst3)) != 0 {
		t.Error("constant mapped onto variable")
	}
}

func TestContainsCQ(t *testing.T) {
	cases := []struct {
		name   string
		c1, c2 string
		want   bool
	}{
		// More subgoals are more constrained: triangle ⊑ edge-exists.
		{"triangle in edge", "panic :- e(X,Y) & e(Y,Z) & e(Z,X).", "panic :- e(A,B).", true},
		{"edge not in triangle", "panic :- e(A,B).", "panic :- e(X,Y) & e(Y,Z) & e(Z,X).", false},
		{"self-loop in path2", "panic :- e(X,X).", "panic :- e(A,B) & e(B,C).", true},
		{"path2 not in self-loop", "panic :- e(A,B) & e(B,C).", "panic :- e(X,X).", false},
		{"different predicate", "panic :- p(X).", "panic :- q(X).", false},
		{"identical", "panic :- p(X,Y) & q(Y).", "panic :- p(X,Y) & q(Y).", true},
		{"constant specializes", "panic :- p(toy).", "panic :- p(X).", true},
		{"variable not in constant", "panic :- p(X).", "panic :- p(toy).", false},
	}
	for _, c := range cases {
		got, err := ContainsCQ(mustC(t, c.c1), mustC(t, c.c2))
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: ContainsCQ = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestContainsCQUnion(t *testing.T) {
	c := mustC(t, "panic :- p(toy).")
	union := []*ast.Rule{
		mustC(t, "panic :- p(shoe)."),
		mustC(t, "panic :- p(X)."),
	}
	ok, err := ContainsCQUnion(c, union)
	if err != nil || !ok {
		t.Errorf("union containment failed: %v %v", ok, err)
	}
	ok, err = ContainsCQUnion(c, union[:1])
	if err != nil || ok {
		t.Errorf("false union containment: %v %v", ok, err)
	}
}

func TestTheorem51Example51(t *testing.T) {
	// The paper's Example 5.1 (Ullman Ex 14.7): C1 ⊑ C2 holds but needs
	// BOTH containment mappings — the single-mapping test fails.
	c1 := mustC(t, "panic :- r(U,V) & r(S,T) & U = T & V = S.")
	c2 := mustC(t, "panic :- r(U,V) & U <= V.")
	ok, err := Theorem51(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Example 5.1 containment not detected")
	}
	// Sanity: the reverse containment does not hold.
	ok, err = Theorem51(c2, c1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reverse containment of Example 5.1 wrongly detected")
	}
}

func TestTheorem51RequiresNormalForm(t *testing.T) {
	// Example 5.2: repeated variables / constants break the theorem, so
	// the implementation must refuse them.
	c1 := mustC(t, "panic :- p(X,X).")
	c2 := mustC(t, "panic :- p(X,Y) & X = Y.")
	if _, err := Theorem51(c1, c2); err == nil {
		t.Error("repeated variable accepted without normalization")
	}
	c3 := mustC(t, "panic :- p(0,X).")
	if _, err := Theorem51(c3, c2); err == nil {
		t.Error("constant in ordinary subgoal accepted without normalization")
	}
}

func TestTheorem51AfterNormalization(t *testing.T) {
	// Example 5.2 resolved: normalize C1 into the Section 5 form first,
	// then Theorem 5.1 applies and detects the (obvious) equivalence.
	raw := mustC(t, "panic :- p(X,X) & r(W).")
	cqc, err := ast.NormalizeCQC(raw, "l")
	if err != nil {
		// The rule has no l subgoal; normalize manually instead.
		t.Skip("NormalizeCQC requires a local predicate; covered in reduction tests")
	}
	_ = cqc
}

func TestTheorem51UnionForbiddenIntervals(t *testing.T) {
	// Example 5.3: RED((4,8)) ⊑ RED((3,6)) ∪ RED((5,10)) although it is
	// contained in neither member alone.
	red48 := mustC(t, "panic :- r(Z) & 4 <= Z & Z <= 8.")
	red36 := mustC(t, "panic :- r(Z) & 3 <= Z & Z <= 6.")
	red510 := mustC(t, "panic :- r(Z) & 5 <= Z & Z <= 10.")
	ok, err := Theorem51Union(red48, []*ast.Rule{red36, red510})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("union containment of Example 5.3 not detected")
	}
	for _, single := range []*ast.Rule{red36, red510} {
		ok, err := Theorem51(red48, single)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("RED((4,8)) wrongly contained in single %s", single)
		}
	}
	// With a gap the union containment must fail.
	red710 := mustC(t, "panic :- r(Z) & 7 <= Z & Z <= 10.")
	ok, err = Theorem51Union(red48, []*ast.Rule{red36, red710})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("containment detected across the gap (6,7)")
	}
}

func TestTheorem51UnsatisfiablePremise(t *testing.T) {
	c1 := mustC(t, "panic :- r(Z) & Z < 3 & Z > 5.")
	c2 := mustC(t, "panic :- s(W).")
	ok, err := Theorem51(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("empty query must be contained in everything")
	}
}

func TestTheorem51NoMappingNoContainment(t *testing.T) {
	c1 := mustC(t, "panic :- r(Z) & Z > 0.")
	c2 := mustC(t, "panic :- s(W) & W > 0.")
	ok, err := Theorem51(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("containment across disjoint predicates")
	}
}

func TestKlugAgreesWithTheorem51(t *testing.T) {
	// On normal-form inputs, Klug's test and Theorem 5.1 must agree.
	pairs := []struct {
		c1, c2 string
	}{
		{"panic :- r(U,V) & r(S,T) & U = T & V = S.", "panic :- r(U,V) & U <= V."},
		{"panic :- r(Z) & 4 <= Z & Z <= 8.", "panic :- r(Z) & 3 <= Z & Z <= 6."},
		{"panic :- r(Z) & 4 <= Z & Z <= 5.", "panic :- r(Z) & 3 <= Z & Z <= 6."},
		{"panic :- r(X,Y) & X < Y.", "panic :- r(A,B) & A <= B."},
		{"panic :- r(X,Y) & X <= Y.", "panic :- r(A,B) & A < B."},
		{"panic :- r(X,Y).", "panic :- r(A,B)."},
	}
	for _, p := range pairs {
		c1, c2 := mustC(t, p.c1), mustC(t, p.c2)
		got51, err := Theorem51(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		gotK, err := Klug(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		if got51 != gotK {
			t.Errorf("disagreement on %q ⊑ %q: Theorem51=%v Klug=%v", p.c1, p.c2, got51, gotK)
		}
	}
}

func TestKlugHandlesConstantsAndRepeats(t *testing.T) {
	// Example 5.2's pairs — outside Theorem 5.1's normal form, but Klug's
	// test decides them (both are equivalences).
	c1 := mustC(t, "panic :- p(X,X).")
	c2 := mustC(t, "panic :- p(X,Y) & X = Y.")
	ok, err := Klug(c1, c2)
	if err != nil || !ok {
		t.Errorf("Klug p(X,X) ⊑ p(X,Y)&X=Y: %v %v", ok, err)
	}
	ok, err = Klug(c2, c1)
	if err != nil || !ok {
		t.Errorf("Klug reverse: %v %v", ok, err)
	}
	c3 := mustC(t, "panic :- p(0,X).")
	c4 := mustC(t, "panic :- p(Z,X) & Z = 0.")
	ok, err = Klug(c3, c4)
	if err != nil || !ok {
		t.Errorf("Klug constant case: %v %v", ok, err)
	}
	ok, err = Klug(c4, c3)
	if err != nil || !ok {
		t.Errorf("Klug constant case reverse: %v %v", ok, err)
	}
}

func TestKlugUnionForbiddenIntervals(t *testing.T) {
	red48 := mustC(t, "panic :- r(Z) & 4 <= Z & Z <= 8.")
	red36 := mustC(t, "panic :- r(Z) & 3 <= Z & Z <= 6.")
	red510 := mustC(t, "panic :- r(Z) & 5 <= Z & Z <= 10.")
	ok, err := KlugUnion(red48, []*ast.Rule{red36, red510})
	if err != nil || !ok {
		t.Errorf("Klug union: %v %v", ok, err)
	}
	red710 := mustC(t, "panic :- r(Z) & 7 <= Z & Z <= 10.")
	ok, err = KlugUnion(red48, []*ast.Rule{red36, red710})
	if err != nil || ok {
		t.Errorf("Klug union gap: %v %v", ok, err)
	}
}

func TestContainsWithNegation(t *testing.T) {
	cases := []struct {
		name   string
		c1, c2 string
		want   bool
	}{
		{"identity",
			"panic :- emp(E,D) & not dept(D).",
			"panic :- emp(E,D) & not dept(D).", true},
		{"more positives contained",
			"panic :- emp(E,D) & vip(E) & not dept(D).",
			"panic :- emp(E,D) & not dept(D).", true},
		{"fewer positives not contained",
			"panic :- emp(E,D) & not dept(D).",
			"panic :- emp(E,D) & vip(E) & not dept(D).", false},
		{"extra negation strengthens",
			"panic :- emp(E,D) & not dept(D) & not closed(D).",
			"panic :- emp(E,D) & not dept(D).", true},
		{"negation not implied",
			"panic :- emp(E,D) & not dept(D).",
			"panic :- emp(E,D) & not closed(D).", false},
		{"pure positive into negation-free", "panic :- p(X).", "panic :- p(X).", true},
		{"neg of used predicate",
			// C1 requires p(X) present and p(c) absent; C2 fires on any p.
			"panic :- p(X) & not q(X).",
			"panic :- p(Y).", true},
		{"reverse fails",
			"panic :- p(Y).",
			"panic :- p(X) & not q(X).", false},
	}
	for _, c := range cases {
		got, err := ContainsWithNegation(mustC(t, c.c1), mustC(t, c.c2))
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: ContainsWithNegation = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestContainsWithNegationConstants(t *testing.T) {
	// C1: employee in a department other than toy, with dept missing.
	// C2: employee with dept missing. C1 ⊑ C2.
	c1 := mustC(t, "panic :- emp(E,toy) & not dept(toy).")
	c2 := mustC(t, "panic :- emp(E,D) & not dept(D).")
	ok, err := ContainsWithNegation(c1, c2)
	if err != nil || !ok {
		t.Errorf("constant specialization: %v %v", ok, err)
	}
	// Reverse must fail: C2 can fire on shoe while C1 needs toy.
	ok, err = ContainsWithNegation(c2, c1)
	if err != nil || ok {
		t.Errorf("reverse constant: %v %v", ok, err)
	}
}

func TestContainsWithNegationAgainstPureCQ(t *testing.T) {
	// On negation-free inputs the SAT-based test must agree with the
	// Chandra–Merlin test.
	pairs := []struct {
		c1, c2 string
	}{
		{"panic :- e(X,Y) & e(Y,Z) & e(Z,X).", "panic :- e(A,B)."},
		{"panic :- e(A,B).", "panic :- e(X,Y) & e(Y,Z) & e(Z,X)."},
		{"panic :- e(X,X).", "panic :- e(A,B) & e(B,C)."},
		{"panic :- p(toy).", "panic :- p(X)."},
		{"panic :- p(X).", "panic :- p(toy)."},
	}
	for _, p := range pairs {
		c1, c2 := mustC(t, p.c1), mustC(t, p.c2)
		want, err := ContainsCQ(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ContainsWithNegation(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("disagreement on %q ⊑ %q: sat=%v cm=%v", p.c1, p.c2, got, want)
		}
	}
}

func TestExpandUnionOfCQs(t *testing.T) {
	prog := parser.MustParseProgram(`
		bad(E) :- emp(E,D,S) & lowpay(S).
		bad(E) :- emp(E,D,S) & nodept(D).
		panic :- bad(E) & vip(E).`)
	rules, err := Expand(prog, ast.PanicPred)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("expanded into %d rules, want 2", len(rules))
	}
	for _, r := range rules {
		if r.Head.Pred != ast.PanicPred {
			t.Errorf("wrong head: %s", r)
		}
		for _, l := range r.Body {
			if !l.IsComp() && prog.IDBPreds()[l.Atom.Pred] {
				t.Errorf("unexpanded intermediate in %s", r)
			}
		}
	}
}

func TestExpandExample41(t *testing.T) {
	// The paper's C3: after inserting toy into dept, the rewritten
	// constraint must expand to
	// panic :- emp(E,D,S) & not dept(D) & D <> toy.
	prog := parser.MustParseProgram(`
		dept1(D) :- dept(D).
		dept1(toy).
		panic :- emp(E,D,S) & not dept1(D).`)
	rules, err := Expand(prog, ast.PanicPred)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("expanded into %d rules, want 1: %v", len(rules), rules)
	}
	r := rules[0]
	if len(r.NegatedAtoms()) != 1 || r.NegatedAtoms()[0].Pred != "dept" {
		t.Errorf("expected not dept(D) in %s", r)
	}
	comps := r.Comparisons()
	if len(comps) != 1 || comps[0].Op != ast.Ne || !comps[0].Right.Equal(ast.CStr("toy")) {
		t.Errorf("expected D <> toy in %s", r)
	}
}

func TestExpandFactSplit(t *testing.T) {
	// Negating a binary fact splits into two disequality branches.
	prog := parser.MustParseProgram(`
		emp1(E,D) :- emp(E,D).
		emp1(jones,shoe).
		panic :- p(E,D) & not emp1(E,D).`)
	rules, err := Expand(prog, ast.PanicPred)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("expanded into %d rules, want 2: %v", len(rules), rules)
	}
}

func TestExpandSubstitutionPropagation(t *testing.T) {
	// Unifying dept1(D) with the fact dept1(toy) must bind D in the rest
	// of the body.
	prog := parser.MustParseProgram(`
		dept1(toy).
		dept1(D) :- dept(D).
		panic :- dept1(D) & emp(E,D).`)
	rules, err := Expand(prog, ast.PanicPred)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("expanded into %d rules: %v", len(rules), rules)
	}
	foundToy := false
	for _, r := range rules {
		for _, a := range r.PositiveAtoms() {
			if a.Pred == "emp" && a.Args[1].Equal(ast.CStr("toy")) {
				foundToy = true
			}
		}
	}
	if !foundToy {
		t.Errorf("fact binding not propagated: %v", rules)
	}
}

func TestExpandRejectsRecursion(t *testing.T) {
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).
		panic :- reach(X,X).`)
	if _, err := Expand(prog, ast.PanicPred); err == nil {
		t.Error("recursive program expanded")
	}
}

func TestSoundContainsMixed(t *testing.T) {
	// C3-expanded ⊑ C1 from Example 4.1: negation plus arithmetic.
	c3 := mustC(t, "panic :- emp(E,D,S) & not dept(D) & D <> toy.")
	c1 := mustC(t, "panic :- emp(E,D,S) & not dept(D).")
	if !SoundContains(c3, c1) {
		t.Error("Example 4.1 insertion check not certified by the sound test")
	}
	// And not the other way (sound test must not claim it).
	if SoundContains(c1, c3) {
		t.Error("sound test claimed a false containment")
	}
}

func TestSoundContainsRespectsComparisons(t *testing.T) {
	a := mustC(t, "panic :- emp(E,D,S) & S > 200.")
	b := mustC(t, "panic :- emp(E,D,S) & S > 100.")
	if !SoundContains(a, b) {
		t.Error("S>200 ⊑ S>100 missed")
	}
	if SoundContains(b, a) {
		t.Error("S>100 ⊑ S>200 claimed")
	}
}

func TestCountMappingsGrowth(t *testing.T) {
	// k copies of r(U,V) in C1 against one r subgoal in C2 gives k
	// mappings — the quantity the Theorem 5.1 vs Klug experiment sweeps.
	c2 := mustC(t, "panic :- r(A,B) & A <= B.")
	c1 := mustC(t, "panic :- r(U1,V1) & r(U2,V2) & r(U3,V3) & U1 < V1.")
	if got := CountMappings(c1, []*ast.Rule{c2}); got != 3 {
		t.Errorf("CountMappings = %d, want 3", got)
	}
}

// TestNormalizeRulePlusTheorem51AgainstKlug validates the dispatcher's
// normalization path: on random CQs with constants and repeated
// variables, NormalizeRule + Theorem 5.1 must agree with Klug's test.
func TestNormalizeRulePlusTheorem51AgainstKlug(t *testing.T) {
	rng := newTestRand(55)
	consts := []ast.Term{ast.CInt(0), ast.CInt(1), ast.CStr("a")}
	randRule := func(natoms int) *ast.Rule {
		vars := []ast.Term{ast.V("X"), ast.V("Y"), ast.V("Z")}
		term := func() ast.Term {
			if rng.Intn(4) == 0 {
				return consts[rng.Intn(len(consts))]
			}
			return vars[rng.Intn(len(vars))]
		}
		r := &ast.Rule{Head: ast.NewAtom(ast.PanicPred)}
		for i := 0; i < natoms; i++ {
			r.Body = append(r.Body, ast.Pos(ast.NewAtom("r", term(), term())))
		}
		if rng.Intn(2) == 0 {
			ops := []ast.CompOp{ast.Lt, ast.Le, ast.Ne}
			r.Body = append(r.Body, ast.Cmp(ast.NewComparison(term(), ops[rng.Intn(3)], term())))
		}
		return r
	}
	checked := 0
	for trial := 0; trial < 150; trial++ {
		c1 := randRule(1 + rng.Intn(2))
		c2 := randRule(1 + rng.Intn(2))
		if c1.CheckSafe() != nil || c2.CheckSafe() != nil {
			continue
		}
		n1, err1 := NormalizeRule(c1)
		n2, err2 := NormalizeRule(c2)
		if err1 != nil || err2 != nil {
			continue
		}
		got, err := Theorem51(n1, n2)
		if err != nil {
			continue // e.g. comparison-only variables after normalization
		}
		want, err := Klug(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		if got != want {
			t.Fatalf("trial %d: normalized Theorem51=%v Klug=%v\nC1=%s\nC2=%s\nN1=%s\nN2=%s",
				trial, got, want, c1, c2, n1, n2)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d instances checked; generator too restrictive", checked)
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestTheorem51NontrivialHeads exercises the paper's remark that Theorem
// 5.1 "also holds for general CQ's with arithmetic, i.e., if the heads
// are not 0-ary", cross-validated against Klug's test.
func TestTheorem51NontrivialHeads(t *testing.T) {
	pairs := []struct {
		c1, c2 string
		want   bool
	}{
		// Identity with arithmetic.
		{"q(X) :- r(X,Y) & X < Y.", "q(A) :- r(A,B) & A <= B.", true},
		{"q(X) :- r(X,Y) & X <= Y.", "q(A) :- r(A,B) & A < B.", false},
		// Head projection matters: returning the second column is not
		// contained in returning the first.
		{"q(Y) :- r(X,Y).", "q(A) :- r(A,B).", false},
		// Ex 5.1's shape lifted to unary heads: the head pins A to U, so
		// the second containment mapping is unavailable and — unlike the
		// 0-ary original — the containment FAILS (witness: r(5,3),r(3,5)
		// gives C1 q(5) but C2 only q(3)).
		{"q(U) :- r(U,V) & r(S,T) & U = T & V = S.", "q(A) :- r(A,B) & A <= B.", false},
	}
	for _, p := range pairs {
		c1, c2 := mustC(t, p.c1), mustC(t, p.c2)
		got, err := Theorem51(c1, c2)
		if err != nil {
			t.Fatalf("%q ⊑ %q: %v", p.c1, p.c2, err)
		}
		if got != p.want {
			t.Errorf("Theorem51 %q ⊑ %q = %v, want %v", p.c1, p.c2, got, p.want)
		}
		gotK, err := Klug(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		if gotK != got {
			t.Errorf("Klug disagrees on %q ⊑ %q: %v vs %v", p.c1, p.c2, gotK, got)
		}
	}
}

func TestMappingsCandidateOrdering(t *testing.T) {
	// One src subgoal is constant-incompatible with every dst subgoal of
	// its predicate: the candidate prefilter must prove "no mapping"
	// without entering the search, and agree with the brute-force answer.
	src := mustC(t, "panic :- r(X,Y) & s(X,toy).")
	dst := mustC(t, "panic :- r(A,B) & r(B,C) & s(A,shoe).")
	if ms := Mappings(src, dst); len(ms) != 0 {
		t.Errorf("constant-incompatible subgoal yielded %d mappings", len(ms))
	}
	if HasMapping(src, dst) {
		t.Error("HasMapping found a mapping past an empty candidate list")
	}
	// Fewest-candidates-first reordering must not change the solution
	// set: s(X,toy) has 1 candidate, r(X,Y) has 3 — the search starts at
	// s either way, but all mappings must still be enumerated.
	src2 := mustC(t, "panic :- r(X,Y) & s(X,toy).")
	dst2 := mustC(t, "panic :- r(A,B) & r(B,C) & r(C,C) & s(A,toy).")
	ms := Mappings(src2, dst2)
	if len(ms) != 1 {
		t.Fatalf("got %d mappings, want 1", len(ms))
	}
	if !HasMapping(src2, dst2) {
		t.Error("HasMapping missed the mapping")
	}
}
