package containment

import (
	"fmt"

	"repro/internal/ast"
)

// Expand unfolds a nonrecursive program into the equivalent union of
// single rules for the goal predicate (the UCQ expansion of Sagiv and
// Yannakakis [1981]), by SLD-style resolution of intermediate subgoals.
// Positive intermediate subgoals branch over their alternative rules,
// with unifier bindings propagated to the remaining goals. Negated
// intermediate subgoals are supported in the two shapes the Section 4
// update rewritings produce:
//
//   - not p(t̄) where p has a copy rule p(X̄) :- q(Ȳ) (body variables
//     all bound by the head) contributes not q applied to the unifier;
//   - a fact p(c̄) among p's rules contributes the negation of t̄ = c̄,
//     i.e. the disjunction ∨ᵢ tᵢ <> cᵢ, splitting the expansion into one
//     branch per component (this is how Example 4.1's constraint C3
//     becomes "panic :- emp(E,D,S) & not dept(D) & D <> toy").
//
// Any other negated intermediate shape is rejected: its expansion would
// need universal quantification, which leaves the UCQ language.
func Expand(prog *ast.Program, goal string) ([]*ast.Rule, error) {
	if cls := recursiveCheck(prog); cls != "" {
		return nil, fmt.Errorf("containment: cannot expand recursive program (cycle through %s)", cls)
	}
	idb := prog.IDBPreds()
	fresh := 0
	const maxUnfoldings = 100000
	unfoldings := 0

	// expandGoals resolves the goal list into fully expanded bodies over
	// EDB predicates and comparisons.
	var expandGoals func(goals []ast.Literal) ([][]ast.Literal, error)
	expandGoals = func(goals []ast.Literal) ([][]ast.Literal, error) {
		if unfoldings++; unfoldings > maxUnfoldings {
			return nil, fmt.Errorf("containment: expansion exceeds %d unfoldings", maxUnfoldings)
		}
		if len(goals) == 0 {
			return [][]ast.Literal{{}}, nil
		}
		g, rest := goals[0], goals[1:]
		prepend := func(front []ast.Literal, tails [][]ast.Literal) [][]ast.Literal {
			out := make([][]ast.Literal, len(tails))
			for i, t := range tails {
				out[i] = append(append([]ast.Literal{}, front...), t...)
			}
			return out
		}
		switch {
		case g.IsComp(), !idb[g.Atom.Pred]:
			tails, err := expandGoals(rest)
			if err != nil {
				return nil, err
			}
			return prepend([]ast.Literal{g}, tails), nil
		case g.IsPos():
			var out [][]ast.Literal
			for _, def := range prog.RulesFor(g.Atom.Pred) {
				fresh++
				d := def.RenameApart(fmt.Sprintf("@%d", fresh))
				s, ok := ast.Unify(d.Head.Args, g.Atom.Args, nil)
				if !ok {
					continue
				}
				newGoals := make([]ast.Literal, 0, len(d.Body)+len(rest))
				for _, l := range d.Body {
					newGoals = append(newGoals, l.Apply(s))
				}
				for _, l := range rest {
					newGoals = append(newGoals, l.Apply(s))
				}
				sub, err := expandGoals(newGoals)
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
			if out == nil {
				out = [][]ast.Literal{} // no matching rule: empty union
			}
			return out, nil
		default: // negated intermediate subgoal
			alts, err := negAlternatives(prog, g.Atom)
			if err != nil {
				return nil, err
			}
			var out [][]ast.Literal
			for _, alt := range alts {
				sub, err := expandGoals(append(append([]ast.Literal{}, alt...), rest...))
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
			if out == nil {
				out = [][]ast.Literal{}
			}
			return out, nil
		}
	}

	var out []*ast.Rule
	goalRules := prog.RulesFor(goal)
	if len(goalRules) == 0 {
		return nil, fmt.Errorf("containment: no rules for goal predicate %s", goal)
	}
	for _, r := range goalRules {
		bodies, err := expandGoals(r.Body)
		if err != nil {
			return nil, err
		}
		for _, b := range bodies {
			out = append(out, &ast.Rule{Head: r.Head, Body: b})
		}
	}
	return out, nil
}

// negAlternatives expands not p(t̄) for an intermediate predicate p into
// a disjunction of conjunctions (each inner slice is one conjunction):
// the negation of p's definition, i.e. the conjunction over p's rules of
// the negation of each rule's applicability, distributed into DNF.
func negAlternatives(prog *ast.Program, atom ast.Atom) ([][]ast.Literal, error) {
	// Each part is the DNF of the negation of one rule; the result is the
	// cartesian product (conjunction) of the parts.
	var parts [][][]ast.Literal
	for _, def := range prog.RulesFor(atom.Pred) {
		switch {
		case def.IsFact():
			if len(def.Head.Args) == 0 {
				// not p where p is unconditionally true: the whole
				// conjunction is false — no alternatives at all.
				return [][]ast.Literal{}, nil
			}
			var split [][]ast.Literal
			for i, c := range def.Head.Args {
				if c.IsVar() {
					return nil, fmt.Errorf("containment: cannot expand negation of non-ground fact %s", def)
				}
				split = append(split, []ast.Literal{
					ast.Cmp(ast.NewComparison(atom.Args[i], ast.Ne, c)),
				})
			}
			parts = append(parts, split)
		case len(def.Body) == 1 && def.Body[0].IsPos() && sameVarCopy(def):
			s, ok := ast.Unify(def.Head.Args, atom.Args, nil)
			if !ok {
				// The head cannot match t̄ at all (constant clash): this
				// rule never derives p(t̄); its negation is vacuous.
				parts = append(parts, [][]ast.Literal{{}})
				continue
			}
			q := def.Body[0].Atom.Apply(s)
			parts = append(parts, [][]ast.Literal{{ast.Neg(q)}})
		default:
			return nil, fmt.Errorf("containment: cannot expand negated intermediate subgoal not %s defined by %s", atom, def)
		}
	}
	alts := [][]ast.Literal{{}}
	for _, p := range parts {
		var next [][]ast.Literal
		for _, acc := range alts {
			for _, choice := range p {
				next = append(next, append(append([]ast.Literal{}, acc...), choice...))
			}
		}
		alts = next
	}
	return alts, nil
}

// sameVarCopy reports whether def is a copy rule p(X̄) :- q(Ȳ) in which
// every body variable appears in the head (so the unifier fully
// determines the body atom).
func sameVarCopy(def *ast.Rule) bool {
	headVars := map[string]bool{}
	for _, t := range def.Head.Args {
		if t.IsVar() {
			headVars[t.Var] = true
		}
	}
	for _, t := range def.Body[0].Atom.Args {
		if t.IsVar() && !headVars[t.Var] {
			return false
		}
	}
	return true
}

// recursiveCheck returns the name of a predicate on a dependency cycle,
// or "" when the program is nonrecursive.
func recursiveCheck(prog *ast.Program) string {
	idb := prog.IDBPreds()
	adj := map[string][]string{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && idb[l.Atom.Pred] {
				adj[r.Head.Pred] = append(adj[r.Head.Pred], l.Atom.Pred)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var bad string
	var visit func(p string) bool
	visit = func(p string) bool {
		color[p] = gray
		for _, q := range adj[p] {
			if color[q] == gray || color[q] == white && visit(q) {
				if bad == "" {
					bad = q
				}
				return true
			}
		}
		color[p] = black
		return false
	}
	for p := range idb {
		if color[p] == white && visit(p) {
			return bad
		}
	}
	return ""
}
