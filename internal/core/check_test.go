package core

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/store"
)

func TestCheckLeavesStoreUntouched(t *testing.T) {
	c := newChecker(t, "dept(toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	before := c.DB().Dump()

	// Admitted insert: decided yes, not kept.
	rep, err := c.Check(store.Ins("emp", relation.Strs("ann", "toy")))
	if err != nil || !rep.Applied {
		t.Fatalf("safe check: applied=%v err=%v", rep.Applied, err)
	}
	// Rejected insert: decided no.
	rep, err = c.Check(store.Ins("emp", relation.Strs("eve", "ghost")))
	if err != nil || rep.Applied {
		t.Fatalf("violating check: applied=%v err=%v", rep.Applied, err)
	}
	if vs := rep.Violations(); len(vs) != 1 || vs[0] != "ri" {
		t.Fatalf("violations = %v", vs)
	}
	// Delete of an existing tuple: restored after the trial.
	rep, err = c.Check(store.Del("dept", relation.Strs("toy")))
	if err != nil || !rep.Applied {
		t.Fatalf("delete check: applied=%v err=%v", rep.Applied, err)
	}
	// No-op shapes: duplicate insert and absent delete change nothing, so
	// the undo must not delete the pre-existing tuple or invent one.
	if rep, err = c.Check(store.Ins("dept", relation.Strs("toy"))); err != nil || !rep.Applied {
		t.Fatalf("duplicate-insert check: applied=%v err=%v", rep.Applied, err)
	}
	if rep, err = c.Check(store.Del("emp", relation.Strs("nobody", "toy"))); err != nil || !rep.Applied {
		t.Fatalf("absent-delete check: applied=%v err=%v", rep.Applied, err)
	}

	if after := c.DB().Dump(); after != before {
		t.Fatalf("Check mutated the store:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

func TestCheckThenApplyAgree(t *testing.T) {
	c := newChecker(t, "l(0,10).", Options{LocalRelations: []string{"l"}})
	if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	for _, u := range []store.Update{
		store.Ins("r", relation.Ints(100)),
		store.Ins("r", relation.Ints(5)),
		store.Del("r", relation.Ints(100)),
		store.Ins("l", relation.Ints(90, 110)),
	} {
		chk, err := c.Check(u)
		if err != nil {
			t.Fatalf("check %v: %v", u, err)
		}
		app, err := c.Apply(u)
		if err != nil {
			t.Fatalf("apply %v: %v", u, err)
		}
		if chk.Applied != app.Applied {
			t.Fatalf("%v: check said %v, apply said %v", u, chk.Applied, app.Applied)
		}
		if len(chk.Violations()) != len(app.Violations()) {
			t.Fatalf("%v: check violations %v, apply violations %v", u, chk.Violations(), app.Violations())
		}
	}
	// After checks + applies interleaved, any state Check trialed must be
	// fully unwound: +r(95) lands inside the applied l(90,110), so it must
	// be rejected, proving the interval survives the earlier trial undos.
	rep, err := c.Apply(store.Ins("r", relation.Ints(95)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("expected +r(95) to be rejected")
	}
}

func TestCheckCountsInStats(t *testing.T) {
	c := newChecker(t, "dept(toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if _, err := c.Check(store.Ins("emp", relation.Strs("ann", "toy"))); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Updates != 1 {
		t.Fatalf("stats updates = %d, want 1", st.Updates)
	}
}
