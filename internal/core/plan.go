package core

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/store"
)

// PlanReport is the outcome of a Plan: which constraints the read-only
// phases 1–3 already decide for an update, which ones would need the
// global phase, and which stored relations that phase would read.
type PlanReport struct {
	// Decided holds the phase-1/1.5/2/3 decisions (always Holds: a
	// violation can only surface in the global phase).
	Decided []Decision
	// Global names the constraints that need a global evaluation, in
	// registration order.
	Global []string
	// Relations is the sorted union of EDB relations (body predicates not
	// defined by the constraint programs themselves) mentioned by the
	// Global constraints — the data a global evaluation would consult.
	Relations []string
}

// Plan runs the read-only phases 1–3 for every constraint against the
// update without applying it: the store is not mutated and the checker's
// aggregate stats are untouched (decision-cache hit/miss counters still
// move, since Plan warms the same cache Apply uses). A networked
// coordinator uses Plan to learn, before committing to an update, which
// remote relations it must fetch for the global phase — an update whose
// plan has no Global constraints needs no remote data at all.
func (c *Checker) Plan(u store.Update) PlanReport {
	n := len(c.constraints)
	phases := make([]Phase, n)
	decided := make([]bool, n)
	runParallel(n, c.workers(), func(i int) {
		phases[i], decided[i] = c.stageOne(c.constraints[i], u, nil)
	})
	var pr PlanReport
	seen := map[string]bool{}
	for i, k := range c.constraints {
		if decided[i] {
			pr.Decided = append(pr.Decided, Decision{k.Name, phases[i], Holds})
			continue
		}
		pr.Global = append(pr.Global, k.Name)
		for _, rel := range edbRelations(k.Prog) {
			if !seen[rel] {
				seen[rel] = true
				pr.Relations = append(pr.Relations, rel)
			}
		}
	}
	sort.Strings(pr.Relations)
	return pr
}

// edbRelations returns the body predicates of prog that are not defined
// by any of prog's rule heads — the stored relations an evaluation reads
// (derived predicates are computed, not fetched).
func edbRelations(prog *ast.Program) []string {
	heads := map[string]bool{}
	for _, r := range prog.Rules {
		heads[r.Head.Pred] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() || heads[l.Atom.Pred] || seen[l.Atom.Pred] {
				continue
			}
			seen[l.Atom.Pred] = true
			out = append(out, l.Atom.Pred)
		}
	}
	return out
}
