package core

import "repro/internal/sched"

// Footprints returns the scheduler footprint index for the current
// constraint set: per update pattern (relation + polarity) it derives
// the relations a check may read, mirroring the checker's enabled
// phases (residual dispatch narrows reads to the harmful-occurrence
// disjunct bodies; without it the conservative set is every relation
// the constraint mentions). The index is memoized and dropped whenever
// the constraint set changes, so callers should fetch it per update or
// per batch rather than holding one across AddConstraint/
// RemoveConstraint. Safe for concurrent use.
func (c *Checker) Footprints() *sched.Index {
	c.fpMu.Lock()
	defer c.fpMu.Unlock()
	if c.fpIndex == nil {
		c.fpIndex = sched.NewIndex(c.progs, sched.IndexOptions{
			Residual: c.residuals != nil,
			Polarity: !c.opts.DisableUpdateOnly,
			Sharder:  c.opts.Sharder,
		})
	}
	return c.fpIndex
}

// ConcurrentApplySafe reports whether this checker admits concurrent
// Apply calls for non-conflicting updates (the internal/sched
// discipline). Incremental mode does not: its materializations are
// updated by unsynchronized notification on every apply, whatever the
// update's footprint.
func (c *Checker) ConcurrentApplySafe() bool {
	return !c.opts.Incremental
}
