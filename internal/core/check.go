package core

import (
	"fmt"

	"repro/internal/store"
)

// Check decides an update without leaving it applied: it runs the full
// staged pipeline (residual dispatch, phases 1–4, identical verdicts and
// Decisions to Apply) and then restores the store to its pre-check
// state. It is the decision-service "would this update be admitted?"
// primitive (internal/serve's POST /v1/check).
//
// Admitted updates are applied and then exactly undone — like
// ApplyBatch's rollback, the undo only fires when the update actually
// changed the store, so checking a duplicate insert or an absent delete
// never corrupts pre-existing tuples. Rejected updates are rolled back
// by Apply itself. Either way the report reads as Apply's would: Applied
// true means the update would be admitted, not that it stayed applied.
//
// Check shares Apply's serialization contract (one mutating call at a
// time) and its statistics: a checked update counts in Stats().Updates
// and its decisions in ByPhase, so a check-heavy service still reports a
// faithful phase distribution.
func (c *Checker) Check(u store.Update) (Report, error) {
	changes := c.db.Contains(u.Relation, u.Tuple) != u.Insert
	rep, err := c.Apply(u)
	if err != nil || !rep.Applied {
		return rep, err
	}
	if !changes {
		return rep, nil
	}
	var inv store.Update
	if u.Insert {
		c.db.Delete(u.Relation, u.Tuple)
		inv = store.Del(u.Relation, u.Tuple)
	} else {
		if _, err := c.db.Insert(u.Relation, u.Tuple); err != nil {
			return rep, fmt.Errorf("core: check undo failed: %w", err)
		}
		inv = store.Ins(u.Relation, u.Tuple)
	}
	// Incremental materializations tracked the trial application; they
	// must track the undo too, or they go stale relative to the store.
	if err := c.notifyMats(inv, true); err != nil {
		return rep, fmt.Errorf("core: check undo notification failed: %w", err)
	}
	return rep, nil
}
