package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestPlanCacheInvalidatedOnConstraintChange pins the refreshSet
// contract: plans accumulate across Apply calls and are dropped — not
// merely orphaned — whenever the constraint set changes.
func TestPlanCacheInvalidatedOnConstraintChange(t *testing.T) {
	c := newChecker(t, "l(30,60). r(40).",
		Options{DisableUpdateOnly: true, DisableLocalData: true, DisableResidual: true})
	if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & Y < X."); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(store.Ins("r", relation.Ints(41))); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.PlanEntries == 0 {
		t.Fatalf("no plans cached after a global-phase Apply: %+v", s)
	}
	if err := c.AddConstraintSource("fi2", "panic :- r(Z) & Z > 10000."); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.PlanEntries != 0 {
		t.Fatalf("AddConstraint left %d cached plans", s.PlanEntries)
	}
	if _, err := c.Apply(store.Ins("r", relation.Ints(42))); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.PlanEntries == 0 {
		t.Fatal("cache did not repopulate after Apply")
	}
	if !c.RemoveConstraint("fi2") {
		t.Fatal("RemoveConstraint(fi2) found nothing")
	}
	if s := c.Stats(); s.PlanEntries != 0 {
		t.Fatalf("RemoveConstraint left %d cached plans", s.PlanEntries)
	}
}

// TestPlanCacheDisabled is the -noplancache escape hatch: no plan
// counters may move.
func TestPlanCacheDisabled(t *testing.T) {
	c := newChecker(t, "l(30,60). r(40).",
		Options{DisablePlanCache: true, DisableUpdateOnly: true, DisableLocalData: true, DisableResidual: true})
	if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & Y < X."); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(store.Ins("r", relation.Ints(41))); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.PlanHits != 0 || s.PlanMisses != 0 || s.PlanEntries != 0 {
		t.Fatalf("disabled plan cache has activity: %+v", s)
	}
}

// applyPlanStream drives one randomized interval stream through a
// checker with the given options and returns the per-update
// applied/violated outcomes.
func applyPlanStream(t *testing.T, opts Options) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	db := store.New()
	for _, tu := range workload.Intervals(rng, 20, 20, 200) {
		if _, err := db.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	opts.LocalRelations = []string{"l"}
	c := New(db, opts)
	for i, src := range []string{
		"panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.",
		"panic :- l(X,Y) & Y < X.",
		"panic :- r(Z) & Z < 0.",
		"panic :- l(X,Y) & s(Z) & Y < Z & Z < X.",
	} {
		if err := c.AddConstraintSource(fmt.Sprintf("k%d", i), src); err != nil {
			t.Fatal(err)
		}
	}
	var out []string
	for i := 0; i < 30; i++ {
		var u store.Update
		switch i % 3 {
		case 0:
			u = store.Ins("l", relation.Ints(rng.Int63n(100), 200+rng.Int63n(100)))
		case 1:
			u = store.Ins("r", relation.Ints(300+rng.Int63n(50)))
		default:
			u = store.Ins("r", relation.Ints(rng.Int63n(250)))
		}
		rep, err := c.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		v := rep.Violations()
		sort.Strings(v)
		out = append(out, fmt.Sprintf("applied=%v violations=%v", rep.Applied, v))
	}
	return out
}

// TestApplyParallelPlanCacheAgrees runs the same stream through the
// parallel dispatch pipeline with the plan cache enabled (many
// constraint goroutines sharing one cache per Apply — the configuration
// the CI race job exercises) and through the serial no-cache pipeline;
// every update must get the identical verdict.
func TestApplyParallelPlanCacheAgrees(t *testing.T) {
	cached := applyPlanStream(t, Options{Workers: 8, DisableResidual: true,
		DisableUpdateOnly: true, DisableLocalData: true, DisableCache: true})
	plain := applyPlanStream(t, Options{Workers: 1, DisablePlanCache: true, DisableResidual: true,
		DisableUpdateOnly: true, DisableLocalData: true, DisableCache: true})
	if len(cached) != len(plain) {
		t.Fatalf("stream lengths differ: %d vs %d", len(cached), len(plain))
	}
	for i := range cached {
		if cached[i] != plain[i] {
			t.Fatalf("update %d: cached arm %q, no-cache arm %q", i, cached[i], plain[i])
		}
	}
}
