package core

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/store"
)

func TestApplyBatchCommit(t *testing.T) {
	c := newChecker(t, "dept(toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	br, err := c.ApplyBatch([]store.Update{
		store.Ins("dept", relation.Strs("shoe")),
		store.Ins("emp", relation.Strs("ann", "shoe")),
		store.Ins("emp", relation.Strs("bob", "toy")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !br.Applied || br.FailedAt != -1 || len(br.Reports) != 3 {
		t.Fatalf("batch report = %+v", br)
	}
	if !c.DB().Contains("emp", relation.Strs("ann", "shoe")) {
		t.Error("batch not applied")
	}
}

func TestApplyBatchAtomicRollback(t *testing.T) {
	c := newChecker(t, "dept(toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	br, err := c.ApplyBatch([]store.Update{
		store.Ins("dept", relation.Strs("shoe")),        // fine
		store.Ins("emp", relation.Strs("ann", "shoe")),  // fine
		store.Ins("emp", relation.Strs("eve", "ghost")), // violates
		store.Ins("dept", relation.Strs("never")),       // must not run
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied || br.FailedAt != 2 {
		t.Fatalf("batch report = %+v", br)
	}
	// Everything rolled back, including the earlier successful updates.
	for _, gone := range []struct {
		rel string
		tu  relation.Tuple
	}{
		{"dept", relation.Strs("shoe")},
		{"emp", relation.Strs("ann", "shoe")},
		{"emp", relation.Strs("eve", "ghost")},
		{"dept", relation.Strs("never")},
	} {
		if c.DB().Contains(gone.rel, gone.tu) {
			t.Errorf("%s%v survived the rollback", gone.rel, gone.tu)
		}
	}
	if !c.DB().Contains("dept", relation.Strs("toy")) {
		t.Error("pre-batch state damaged")
	}
	if bad, _ := c.CheckAll(); len(bad) != 0 {
		t.Errorf("constraints violated after rollback: %v", bad)
	}
}

func TestApplyBatchDuplicateInside(t *testing.T) {
	// A tuple inserted twice within one batch must survive rollback
	// decisions correctly: rolling back deletes it once, and a
	// pre-existing tuple re-inserted in the batch must NOT be deleted.
	c := newChecker(t, "dept(toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	br, err := c.ApplyBatch([]store.Update{
		store.Ins("dept", relation.Strs("toy")),         // duplicate of pre-existing
		store.Ins("emp", relation.Strs("eve", "ghost")), // violates
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied {
		t.Fatal("violating batch applied")
	}
	if !c.DB().Contains("dept", relation.Strs("toy")) {
		t.Error("pre-existing tuple deleted by rollback of duplicate insert")
	}
}

func TestApplyBatchDeleteRollback(t *testing.T) {
	c := newChecker(t, "dept(toy). dept(shoe). emp(ann,toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	br, err := c.ApplyBatch([]store.Update{
		store.Del("dept", relation.Strs("shoe")), // fine (no shoe employees)
		store.Del("dept", relation.Strs("toy")),  // violates (ann)
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied || br.FailedAt != 1 {
		t.Fatalf("batch report = %+v", br)
	}
	if !c.DB().Contains("dept", relation.Strs("shoe")) {
		t.Error("first deletion not rolled back")
	}
	if !c.DB().Contains("dept", relation.Strs("toy")) {
		t.Error("violating deletion not rolled back")
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	c := newChecker(t, "", Options{})
	br, err := c.ApplyBatch(nil)
	if err != nil || !br.Applied || len(br.Reports) != 0 {
		t.Errorf("empty batch: %+v %v", br, err)
	}
}

func TestApplyBatchPolarityPhaseUsed(t *testing.T) {
	c := newChecker(t, "dept(toy).", Options{DisableResidual: true})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	br, err := c.ApplyBatch([]store.Update{
		store.Ins("dept", relation.Strs("a")),
		store.Ins("dept", relation.Strs("b")),
	})
	if err != nil || !br.Applied {
		t.Fatalf("%+v %v", br, err)
	}
	for _, rep := range br.Reports {
		for _, d := range rep.Decisions {
			if d.Phase != PhasePolarity {
				t.Errorf("dept insert decided by %v, want polarity", d.Phase)
			}
		}
	}
}
