package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// employeeChecker builds a checker over a standard employee database with
// the paper's running constraints, added in sorted name order.
func employeeChecker(t *testing.T, seed int64, opts Options) *Checker {
	t.Helper()
	db := store.New()
	if err := workload.EmployeeDB(rand.New(rand.NewSource(seed)), db, 5, 60); err != nil {
		t.Fatal(err)
	}
	c := New(db, opts)
	addEmployeeConstraints(t, c)
	return c
}

func addEmployeeConstraints(t *testing.T, c *Checker) {
	t.Helper()
	cons := workload.StandardEmployeeConstraints()
	names := make([]string, 0, len(cons))
	for n := range cons {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := c.AddConstraintSource(n, cons[n]); err != nil {
			t.Fatal(err)
		}
	}
}

// matSnapshot renders every materialized relation of every constraint,
// sorted, so two snapshots compare byte-for-byte.
func matSnapshot(c *Checker) string {
	var sb strings.Builder
	for _, k := range c.constraints {
		if k.mat == nil {
			continue
		}
		preds := make([]string, 0, len(k.Prog.Preds()))
		for p := range k.Prog.Preds() {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		for _, p := range preds {
			keys := []string{}
			for _, tu := range k.mat.Tuples(p) {
				keys = append(keys, tu.Key())
			}
			sort.Strings(keys)
			fmt.Fprintf(&sb, "%s/%s: %s\n", k.Name, p, strings.Join(keys, " "))
		}
	}
	return sb.String()
}

// A batch whose later update is violated must leave the store and every
// incremental materialization byte-identical to the pre-batch snapshot.
func TestBatchRollbackIncrementalByteIdentical(t *testing.T) {
	c := employeeChecker(t, 7, Options{Incremental: true})
	// A constraint with an intermediate predicate, so the materialization
	// holds derived relations beyond panic itself.
	if err := c.AddConstraintSource("derived",
		`overpaid(E,D) :- emp(E,D,S) & S > 1000.
		 panic :- overpaid(E,D) & dept(D).`); err != nil {
		t.Fatal(err)
	}
	preDump := c.DB().Dump()
	preMats := matSnapshot(c)

	br, err := c.ApplyBatch([]store.Update{
		store.Ins("dept", relation.Strs("annex")),
		store.Ins("emp", relation.TupleOf(ast.Str("newhire"), ast.Str("dept00"), ast.Int(20))),
		store.Del("emp", relation.TupleOf(ast.Str("e0"), ast.Str("dept00"), ast.Int(10))),
		// Violating: ghost department fails the referential constraint.
		store.Ins("emp", relation.TupleOf(ast.Str("ghostly"), ast.Str("ghost"), ast.Int(20))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied || br.FailedAt != 3 {
		t.Fatalf("batch applied=%v failedAt=%d, want rejected at 3", br.Applied, br.FailedAt)
	}
	if got := c.DB().Dump(); got != preDump {
		t.Errorf("store not restored:\npre:\n%s\npost:\n%s", preDump, got)
	}
	if got := matSnapshot(c); got != preMats {
		t.Errorf("materializations not restored:\npre:\n%s\npost:\n%s", preMats, got)
	}
}

// Concurrent readers may scan, probe and index-lookup the store while
// Apply streams updates through the parallel pipeline (run under -race).
func TestConcurrentApplyReaders(t *testing.T) {
	c := employeeChecker(t, 11, Options{})
	db := c.DB()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				db.Tuples("emp")
				db.Lookup("emp", 1, ast.Str("dept00"))
				db.Contains("dept", relation.Strs("dept01"))
				db.Probe("salRange", relation.TupleOf(ast.Str("dept00"), ast.Int(10), ast.Int(60)))
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(23))
	for _, u := range workload.EmployeeUpdates(rng, 150, 5, 0.2) {
		if _, err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// The parallel cached pipeline must produce identical reports, stats and
// final stores to the serial uncached one on randomized update streams.
func TestParallelCacheCrossCheck(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		serial := employeeChecker(t, seed, Options{Workers: 1, DisableCache: true})
		par := employeeChecker(t, seed, Options{Workers: runtime.GOMAXPROCS(0)})
		rng := rand.New(rand.NewSource(seed * 100))
		updates := workload.EmployeeUpdates(rng, 120, 5, 0.25)
		// Mix in deletions so the deletion-side cache is exercised too.
		updates = append(updates,
			store.Del("emp", relation.TupleOf(ast.Str("e1"), ast.Str("dept01"), ast.Int(20))),
			store.Del("dept", relation.Strs("dept04")),
		)
		for _, u := range updates {
			rs, err1 := serial.Apply(u)
			rp, err2 := par.Apply(u)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d %v: error mismatch %v vs %v", seed, u, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !reflect.DeepEqual(rs, rp) {
				t.Fatalf("seed %d %v: report mismatch\nserial:   %+v\nparallel: %+v", seed, u, rs, rp)
			}
		}
		ss, sp := serial.Stats(), par.Stats()
		if !reflect.DeepEqual(ss.ByPhase, sp.ByPhase) || ss.Rejected != sp.Rejected {
			t.Errorf("seed %d: stats mismatch\nserial:   %+v\nparallel: %+v", seed, ss, sp)
		}
		if serial.DB().Dump() != par.DB().Dump() {
			t.Errorf("seed %d: final stores differ", seed)
		}
		if ss.CacheHits != 0 || ss.CacheMisses != 0 {
			t.Errorf("seed %d: DisableCache checker touched the cache: %+v", seed, ss)
		}
	}
}

// Repeated-relation streams must hit the decision cache on the vast
// majority of dispatches (acceptance bar: >50%).
func TestCacheHitRateRepeatedStream(t *testing.T) {
	// The decision cache backs the staged pipeline; residual dispatch
	// bypasses it, so measure the cache with residuals off.
	c := employeeChecker(t, 31, Options{DisableResidual: true})
	rng := rand.New(rand.NewSource(31))
	for _, u := range workload.EmployeeUpdates(rng, 100, 5, 0.1) {
		if _, err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.CacheHits+s.CacheMisses == 0 {
		t.Fatal("cache never consulted")
	}
	if rate := s.CacheHitRate(); rate <= 0.5 {
		t.Errorf("cache hit rate %.2f (hits=%d misses=%d), want >0.5", rate, s.CacheHits, s.CacheMisses)
	}
}

// Cache invalidation: adding or removing a constraint must drop cached
// decisions so later updates see the new set.
func TestCacheInvalidationOnSetChange(t *testing.T) {
	c := employeeChecker(t, 41, Options{})
	mark := func(name string) store.Update {
		return store.Ins("proj", relation.Strs(name))
	}
	// Warm the cache: with no constraint over proj, the insert is decided
	// as unaffected for every constraint.
	if rep, err := c.Apply(mark("nobody")); err != nil || !rep.Applied {
		t.Fatalf("warmup insert rejected: %+v %v", rep, err)
	}
	// A new constraint forbidding employees on the proj list must reject
	// the same shape of insert even though the old set's decisions were
	// cached (e0 exists in the employee database).
	if err := c.AddConstraintSource("noproj", "panic :- emp(E,D,S) & proj(E)."); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Apply(mark("e0"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Error("insert violating the newly added constraint was applied")
	}
	if !c.RemoveConstraint("noproj") {
		t.Fatal("RemoveConstraint failed")
	}
	if rep, err := c.Apply(mark("e0")); err != nil || !rep.Applied {
		t.Errorf("insert after constraint removal rejected: %+v %v", rep, err)
	}
}
