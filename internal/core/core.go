// Package core is the public facade of the library: a Checker manages a
// set of constraints over a database and applies updates through the
// paper's staged partial-information discipline, consulting as little
// information as each update requires:
//
//  1. Unaffected — the constraint does not mention the updated relation.
//  2. Update-only (Section 4) — rewrite the constraint for the update and
//     test subsumption by the constraints known to hold; no data touched.
//  3. Local data (Sections 5–6) — for conjunctive constraints over a
//     designated local relation, run the complete local test (interval
//     coverage for ICQs, Theorem 5.2 reductions otherwise); only local
//     data touched.
//  4. Global — fall back to full evaluation over all relations.
//
// Each Apply reports, per constraint, which phase decided and with what
// verdict; violating updates are rolled back.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/eval"
	"repro/internal/icq"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/residual"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/subsume"
)

// Phase identifies which level of information decided a constraint.
type Phase int

const (
	// PhaseUnaffected: the update cannot touch the constraint.
	PhaseUnaffected Phase = iota
	// PhasePolarity: monotonicity (Nicolas [1982]) certified it — the
	// update touches the constraint only with the harmless polarity
	// (deleting from a purely positive relation, inserting into a purely
	// negative one).
	PhasePolarity
	// PhaseUpdateOnly: Section 4 rewriting + subsumption certified it.
	PhaseUpdateOnly
	// PhaseLocalData: a Section 5/6 complete local test certified it.
	PhaseLocalData
	// PhaseGlobal: full evaluation was required.
	PhaseGlobal
	// PhaseResidual: a compiled residual check (update-pattern partial
	// evaluation, internal/residual) decided the constraint in place of
	// the phase pipeline. Residuals run against the post-update store,
	// like the global phase, but touch only the data the specialized
	// disjuncts mention — often a single indexed probe.
	PhaseResidual
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseUnaffected:
		return "unaffected"
	case PhasePolarity:
		return "polarity"
	case PhaseUpdateOnly:
		return "update-only"
	case PhaseLocalData:
		return "local-data"
	case PhaseGlobal:
		return "global"
	case PhaseResidual:
		return "residual"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Verdict is the per-constraint outcome of an update.
type Verdict int

const (
	// Holds: the constraint provably still holds.
	Holds Verdict = iota
	// Violated: the update would violate the constraint (it was rolled
	// back).
	Violated
)

func (v Verdict) String() string {
	if v == Violated {
		return "VIOLATED"
	}
	return "holds"
}

// Constraint is a managed constraint with its prepared artifacts.
type Constraint struct {
	Name string
	Prog *ast.Program

	// cqc is non-nil when the constraint is a single conjunctive rule
	// with exactly one subgoal over a local relation (normalized to the
	// Section 5 form); analysis additionally when it is a canonical ICQ.
	cqc      *ast.CQC
	analysis *icq.Analysis
	// mat maintains the constraint's evaluation when Options.Incremental
	// is set.
	mat *incremental.Materialized
}

// Decision records how one constraint was dispatched for one update.
type Decision struct {
	Constraint string
	Phase      Phase
	Verdict    Verdict
}

// Report is the outcome of one Apply.
type Report struct {
	Update    store.Update
	Decisions []Decision
	// Applied is false when some constraint was violated and the update
	// was rolled back.
	Applied bool
}

// Violations lists the violated constraints' names.
func (r Report) Violations() []string {
	var out []string
	for _, d := range r.Decisions {
		if d.Verdict == Violated {
			out = append(out, d.Constraint)
		}
	}
	return out
}

// Stats aggregates phase usage across updates.
type Stats struct {
	Updates   int
	ByPhase   map[Phase]int
	Rejected  int
	Decisions int
	// CacheHits/CacheMisses count decision-cache lookups over the
	// checker's lifetime (a miss builds the entry; see decisionCache).
	CacheHits   int64
	CacheMisses int64
	// PlanHits/PlanMisses/PlanEntries report the evaluation plan cache
	// (eval.PlanCache): hits reuse a compiled stratification + join plan,
	// misses compile one. Zero when Options.DisablePlanCache is set.
	PlanHits    int64
	PlanMisses  int64
	PlanEntries int
	// ResidualHits/ResidualMisses/ResidualCompiled/ResidualEntries report
	// the residual cache (residual.Cache): hits dispatch a ready-made
	// residual check, misses either compile one or fall back to the full
	// pipeline (ineligible patterns), compiled counts compilations. All
	// zero when Options.DisableResidual is set.
	ResidualHits     int64
	ResidualMisses   int64
	ResidualCompiled int64
	ResidualEntries  int
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Options configure a Checker.
type Options struct {
	// LocalRelations are the relations resident at the checking site;
	// complete local tests may read them freely. Nil means every
	// relation is local (a centralized database).
	LocalRelations []string
	// DisableUpdateOnly skips phase 2 (for ablation experiments).
	DisableUpdateOnly bool
	// DisableLocalData skips phase 3 (for ablation experiments).
	DisableLocalData bool
	// Incremental maintains a materialized evaluation of every
	// constraint (DRed, internal/incremental), so the global phase
	// answers from the materialization instead of re-evaluating.
	Incremental bool
	// Workers bounds the goroutines dispatching constraints through the
	// read-only phases 1–3 and the phase-4 evaluations. 0 (the default)
	// means runtime.GOMAXPROCS(0); 1 recovers the serial pipeline.
	Workers int
	// DisableCache bypasses the phase-decision cache, re-deriving every
	// phase-1/1.5/2 verdict per update (the pre-cache behavior; used as
	// the oracle in cross-check tests and for ablation experiments).
	DisableCache bool
	// DisableIndexes makes every global evaluation run the pre-index
	// nested-loop join (textual atom order, scan-and-filter) instead of
	// bound-first planning with hash-index probes — the A/B escape hatch
	// behind ccheck -noindex.
	DisableIndexes bool
	// DisablePlanCache makes every global evaluation re-derive its goal
	// pruning, stratification and join plan from scratch instead of
	// reusing compiled plans across the update stream — the A/B escape
	// hatch behind ccheck -noplancache.
	DisablePlanCache bool
	// DisableResidual turns off residual dispatch: every constraint runs
	// the full phase pipeline for every update — the A/B escape hatch
	// behind ccheck -noresidual, and the right setting for experiments
	// that measure the paper's phase distribution itself.
	DisableResidual bool
	// Tracer receives the per-update decision trace: one event per phase
	// attempt per constraint, bracketed by update-begin/update-end. Nil
	// or disabled tracers keep Apply on the uninstrumented path.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the checker's counters and the
	// Apply latency histogram (metric names in DESIGN.md).
	Metrics *obs.Registry
	// Sharder, when non-nil, refines the checker's footprints (see
	// Footprints) to shard granularity: updates landing on different
	// shards of one hash-partitioned relation may be applied
	// concurrently. Set by the netdist coordinator from its placement.
	Sharder sched.Sharder
	// ProbeRouter, when non-nil, intercepts EDB reads during global
	// evaluation — the netdist coordinator routes probes on sharded
	// relations to the owning shard instead of a local mirror.
	ProbeRouter eval.ProbeRouter
}

// Checker manages constraints over a store.
//
// Concurrency contract: the constraint-set mutators (AddConstraint,
// RemoveConstraint) require exclusive access. Apply/Check/ApplyBatch may
// run concurrently with each other only for updates whose footprints
// (Footprints) do not conflict, and only when ConcurrentApplySafe
// reports true — internal/sched enforces exactly this discipline, and
// under it every concurrent schedule is equivalent to some sequential
// one. The stats and trace counters are internally synchronized; while
// an Apply is in flight other goroutines may freely read the store (the
// read-only stages run before the mutation, the global evaluations
// after).
type Checker struct {
	db          *store.Store
	opts        Options
	local       map[string]bool // nil: everything local
	constraints []*Constraint

	// statsMu guards stats: concurrent appliers bump the counters from
	// worker goroutines.
	statsMu sync.Mutex
	stats   Stats

	cache *decisionCache
	// progs is the shared {all constraints} slice handed to the phase-2
	// subsumption test (set identity: order and the inclusion of the
	// rewritten constraint itself do not change the verdict), rebuilt by
	// refreshSet instead of per constraint per update.
	progs []*ast.Program
	fp    uint64 // fingerprint of the current constraint set

	// planCache memoizes compiled evaluations (stratification + join
	// plans) for the global phase; nil under Options.DisablePlanCache.
	planCache *eval.PlanCache

	// residuals memoizes compiled residual checks per update pattern;
	// nil under Options.DisableResidual. Apply consults it ahead of the
	// phase pipeline and falls back for ineligible patterns.
	residuals *residual.Cache

	// fpIndex memoizes the update-pattern footprints the scheduler keys
	// on, built lazily by Footprints and dropped when the constraint set
	// changes.
	fpMu    sync.Mutex
	fpIndex *sched.Index

	// traceSeq numbers emitted trace events; met holds the registry
	// handles (nil when Options.Metrics is nil). See trace.go.
	traceSeq atomic.Uint64
	met      *checkerMetrics
}

// New creates a Checker over db.
func New(db *store.Store, opts Options) *Checker {
	c := &Checker{db: db, opts: opts, stats: Stats{ByPhase: map[Phase]int{}}, cache: newDecisionCache()}
	if !opts.DisablePlanCache {
		c.planCache = eval.NewPlanCache()
	}
	if !opts.DisableResidual {
		c.residuals = residual.NewCache()
	}
	if opts.Metrics != nil {
		c.met = newCheckerMetrics(opts.Metrics)
	}
	if opts.LocalRelations != nil {
		c.local = map[string]bool{}
		for _, n := range opts.LocalRelations {
			c.local[n] = true
		}
	}
	return c
}

// DB returns the underlying store.
func (c *Checker) DB() *store.Store { return c.db }

// Stats returns aggregate phase statistics. The ByPhase map is a copy:
// mutating it does not touch the checker's live counters.
func (c *Checker) Stats() Stats {
	c.statsMu.Lock()
	s := c.stats
	s.ByPhase = make(map[Phase]int, len(c.stats.ByPhase))
	for p, n := range c.stats.ByPhase {
		s.ByPhase[p] = n
	}
	c.statsMu.Unlock()
	s.CacheHits = c.cache.hits.Load()
	s.CacheMisses = c.cache.misses.Load()
	if c.planCache != nil {
		s.PlanHits, s.PlanMisses, s.PlanEntries = c.planCache.Stats()
	}
	if c.residuals != nil {
		s.ResidualHits, s.ResidualMisses, s.ResidualCompiled, s.ResidualEntries = c.residuals.Stats()
	}
	return s
}

// ResetStats zeroes every aggregate counter — the per-phase decision
// counts and the decision/plan/residual cache counters — without
// touching the caches' contents, so a warmed checker can report one
// run's statistics in isolation (ccheck -repeat resets between runs).
func (c *Checker) ResetStats() {
	c.statsMu.Lock()
	c.stats = Stats{ByPhase: map[Phase]int{}}
	c.statsMu.Unlock()
	c.cache.resetStats()
	if c.planCache != nil {
		c.planCache.ResetStats()
	}
	if c.residuals != nil {
		c.residuals.ResetStats()
	}
}

// refreshSet rebuilds the shared constraint-program slice and the set
// fingerprint after the constraint set changed, and drops every cached
// decision (the fingerprint in the cache key would make stale entries
// unreachable anyway; invalidating also reclaims their memory).
func (c *Checker) refreshSet() {
	c.progs = make([]*ast.Program, len(c.constraints))
	h := fnv.New64a()
	for i, k := range c.constraints {
		c.progs[i] = k.Prog
		h.Write([]byte(k.Name))
		h.Write([]byte{0})
		h.Write([]byte(k.Prog.String()))
		h.Write([]byte{0})
	}
	c.fp = h.Sum64()
	c.fpMu.Lock()
	c.fpIndex = nil // footprints derive from the constraint set
	c.fpMu.Unlock()
	c.cache.invalidate()
	if c.planCache != nil {
		// Compiled plans key on program identity; a removed constraint's
		// plans would merely linger, but invalidating reclaims them and
		// keeps the add/remove semantics symmetric with the decision cache.
		c.planCache.Invalidate()
	}
	if c.residuals != nil {
		// Residual shapes key on program pointer identity, which a future
		// constraint could reuse after a removal — invalidation is a
		// correctness requirement here, not just memory hygiene.
		c.residuals.Invalidate()
	}
}

// Constraints returns the managed constraints' names in order.
func (c *Checker) Constraints() []string {
	var out []string
	for _, k := range c.constraints {
		out = append(out, k.Name)
	}
	return out
}

// AddConstraintSource parses and adds a constraint program.
func (c *Checker) AddConstraintSource(name, src string) error {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return err
	}
	return c.AddConstraint(name, prog)
}

// AddConstraint adds a constraint program (goal predicate panic). The
// database must currently satisfy it: the staged tests all assume
// constraints held before each update.
func (c *Checker) AddConstraint(name string, prog *ast.Program) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	goal := prog.RulesFor(ast.PanicPred)
	if len(goal) == 0 {
		return fmt.Errorf("core: constraint %s has no %s rule", name, ast.PanicPred)
	}
	for _, k := range c.constraints {
		if k.Name == name {
			return fmt.Errorf("core: duplicate constraint name %q", name)
		}
	}
	bad, err := eval.GoalHoldsWith(prog, c.db, ast.PanicPred, c.evalOpts())
	if err != nil {
		return err
	}
	if bad {
		return fmt.Errorf("core: constraint %s is already violated by the current database", name)
	}
	k := &Constraint{Name: name, Prog: prog}
	c.prepare(k)
	if c.opts.Incremental {
		m, err := incremental.Materialize(prog, c.db)
		if err != nil {
			return err
		}
		k.mat = m
	}
	c.constraints = append(c.constraints, k)
	c.refreshSet()
	return nil
}

// prepare derives the CQC/ICQ artifacts when the constraint has the
// right shape: a single positive conjunctive rule with exactly one
// subgoal over a local relation and every other ordinary subgoal over
// non-local relations.
func (c *Checker) prepare(k *Constraint) {
	if len(k.Prog.Rules) != 1 {
		return
	}
	r := k.Prog.Rules[0]
	if r.HasNegation() {
		return
	}
	localPred := ""
	remoteOK := true
	for _, a := range r.PositiveAtoms() {
		if c.isLocal(a.Pred) {
			if localPred != "" {
				remoteOK = false // two local subgoals: not the CQC shape
				break
			}
			localPred = a.Pred
		}
	}
	if !remoteOK || localPred == "" {
		return
	}
	cqc, err := ast.NormalizeCQC(r, localPred)
	if err != nil {
		return
	}
	k.cqc = cqc
	if a, err := icq.Analyze(cqc); err == nil {
		k.analysis = a
	}
}

// evalOpts translates the checker options into evaluation options for
// the global phase (constraint admission and CheckAll included).
func (c *Checker) evalOpts() eval.Options {
	return eval.Options{DisableIndexes: c.opts.DisableIndexes, Cache: c.planCache, Probe: c.opts.ProbeRouter}
}

// residualOpts translates the checker options into residual compilation
// options, so a residual check answers exactly like the evaluation arm
// it replaces.
func (c *Checker) residualOpts() residual.Options {
	return residual.Options{DisableIndexes: c.opts.DisableIndexes}
}

// isLocal reports whether the relation is resident at the checking site.
func (c *Checker) isLocal(rel string) bool {
	if c.local == nil {
		return true
	}
	return c.local[rel]
}

// mentions reports whether the constraint references the relation.
func mentions(prog *ast.Program, rel string) bool {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return true
			}
		}
	}
	return false
}

// stageOne runs the read-only phases 1–3 for one constraint: it touches
// no Checker state besides the (internally synchronized) decision cache
// and store reads, so the parallel dispatch may run it for every
// constraint concurrently. It returns the deciding phase, or decided
// false when the constraint needs a global evaluation. With tr non-nil
// it appends one trace event per phase attempt (the tracing path; nil
// keeps the hot path free of clock reads and allocations).
func (c *Checker) stageOne(k *Constraint, u store.Update, tr *[]obs.Event) (Phase, bool) {
	var e *cacheEntry
	entryCache := "" // cache status of the entry-level phases 1/1.5
	if !c.opts.DisableCache {
		var hit bool
		e, hit = c.cache.entry(cacheKey{k.Name, c.fp, u.Relation, u.Insert}, k.Prog)
		if tr != nil {
			entryCache = obs.CacheMiss
			if hit {
				entryCache = obs.CacheHit
			}
		}
	} else if tr != nil {
		entryCache = obs.CacheOff
	}
	// Phase 1: unaffected.
	start := traceStart(tr)
	var unaffected bool
	if e != nil {
		unaffected = !e.mentions
	} else {
		unaffected = !mentions(k.Prog, u.Relation)
	}
	phaseAttempt(tr, k.Name, PhaseUnaffected, unaffected, entryCache, start)
	if unaffected {
		return PhaseUnaffected, true
	}
	if !c.opts.DisableUpdateOnly {
		// Phase 1.5: polarity (monotonicity). Uses only the constraint
		// text and the update's direction.
		start = traceStart(tr)
		pol := false
		if e != nil {
			pol = e.polarity
		} else {
			pol = classify.UpdateMonotoneSafe(k.Prog, ast.PanicPred, u.Relation, u.Insert)
		}
		phaseAttempt(tr, k.Name, PhasePolarity, pol, entryCache, start)
		if pol {
			return PhasePolarity, true
		}
		// Phase 2: constraints + update only (Section 4 rewriting +
		// subsumption). The verdict depends on the tuple only through its
		// verdict-relevant positions, so the cache memoizes it per
		// projected tuple key.
		start = traceStart(tr)
		certified := false
		phase2Cache := obs.CacheOff
		if e != nil {
			key := e.projKey(u.Tuple)
			var known bool
			certified, known = e.phase2Get(key)
			phase2Cache = obs.CacheHit
			if !known {
				phase2Cache = obs.CacheMiss
				res, err := rewrite.UpdateSafeAmong(k.Prog, c.progs, u)
				certified = err == nil && res.Verdict == subsume.Yes
				e.phase2Put(key, certified)
			}
		} else {
			res, err := rewrite.UpdateSafeAmong(k.Prog, c.progs, u)
			certified = err == nil && res.Verdict == subsume.Yes
		}
		phaseAttempt(tr, k.Name, PhaseUpdateOnly, certified, phase2Cache, start)
		if certified {
			return PhaseUpdateOnly, true
		}
	}
	// Phase 3: local data.
	if !c.opts.DisableLocalData && u.Insert && k.cqc != nil && k.cqc.LocalPred == u.Relation {
		start = traceStart(tr)
		ok, err := c.localTest(k, u.Tuple)
		phaseAttempt(tr, k.Name, PhaseLocalData, err == nil && ok, "", start)
		if err == nil && ok {
			return PhaseLocalData, true
		}
	}
	return PhaseGlobal, false
}

// Apply pushes one update through the staged pipeline. On any violation
// the update is rolled back and the report's Applied is false.
func (c *Checker) Apply(u store.Update) (Report, error) {
	rep := Report{Update: u, Applied: true}
	c.statsMu.Lock()
	c.stats.Updates++
	c.statsMu.Unlock()
	var applyStart time.Time
	if c.met != nil {
		c.met.updates.Inc()
		applyStart = time.Now()
	}
	tracing := c.tracing()
	uStr := ""
	var probes0 int64
	if tracing {
		uStr = u.String()
		probes0 = relation.IndexProbes()
		c.emit(uStr, obs.Event{Kind: obs.KindUpdateBegin, Constraints: len(c.constraints)})
	}
	n := len(c.constraints)
	phases := make([]Phase, n)
	decided := make([]bool, n)
	var traces [][]obs.Event
	if tracing {
		traces = make([][]obs.Event, n)
	}
	// Residual dispatch runs ahead of the phase pipeline: a cacheable
	// (constraint, update pattern) pair resolves to a compiled residual
	// check — evaluated after the mutation, like the global phase — and
	// skips phases 1–3 entirely. Ineligible patterns fall through to
	// stageOne unchanged.
	var resFor []*residual.Residual
	var resCache []string
	if c.residuals != nil {
		resFor = make([]*residual.Residual, n)
		resCache = make([]string, n)
	}
	runParallel(n, c.workers(), func(i int) {
		if c.residuals != nil {
			res, hit, ok := c.residuals.For(c.constraints[i].Prog, u, c.db, c.residualOpts())
			if ok {
				resFor[i] = res
				resCache[i] = obs.CacheMiss
				if hit {
					resCache[i] = obs.CacheHit
				}
				return
			}
		}
		var tr *[]obs.Event
		if tracing {
			tr = &traces[i]
		}
		phases[i], decided[i] = c.stageOne(c.constraints[i], u, tr)
	})
	// Aggregate in constraint order on this goroutine, so reports, stats
	// and trace-event order are identical whatever the pool width.
	type globalCheck struct {
		k *Constraint
		// res, when non-nil, decides the constraint by residual check
		// instead of a full evaluation; cache is its trace status.
		res   *residual.Residual
		cache string
	}
	needGlobal := make([]globalCheck, 0, n)
	c.statsMu.Lock()
	c.stats.Decisions += n
	c.statsMu.Unlock()
	for i, k := range c.constraints {
		if tracing {
			for _, e := range traces[i] {
				c.emit(uStr, e)
			}
		}
		if resFor != nil && resFor[i] != nil {
			needGlobal = append(needGlobal, globalCheck{k: k, res: resFor[i], cache: resCache[i]})
			continue
		}
		if decided[i] {
			rep.Decisions = append(rep.Decisions, Decision{k.Name, phases[i], Holds})
			c.bumpPhase(phases[i])
			continue
		}
		needGlobal = append(needGlobal, globalCheck{k: k})
	}
	// Apply the update (recording whether it actually changed the store,
	// so a rollback never corrupts pre-existing tuples).
	var changed bool
	if u.Insert {
		ch, err := c.db.Insert(u.Relation, u.Tuple)
		if err != nil {
			if tracing {
				c.emit(uStr, obs.Event{Kind: obs.KindUpdateEnd, Err: err.Error()})
			}
			return rep, err
		}
		changed = ch
	} else {
		changed = c.db.Delete(u.Relation, u.Tuple)
	}
	if err := c.notifyMats(u, changed); err != nil {
		if tracing {
			c.emit(uStr, obs.Event{Kind: obs.KindUpdateEnd, Err: err.Error()})
		}
		return rep, err
	}
	rollback := func() {
		if !changed {
			return
		}
		var inv store.Update
		if u.Insert {
			c.db.Delete(u.Relation, u.Tuple)
			inv = store.Del(u.Relation, u.Tuple)
		} else {
			if _, err := c.db.Insert(u.Relation, u.Tuple); err != nil {
				panic(fmt.Sprintf("core: rollback failed: %v", err))
			}
			inv = store.Ins(u.Relation, u.Tuple)
		}
		if err := c.notifyMats(inv, true); err != nil {
			panic(fmt.Sprintf("core: rollback notification failed: %v", err))
		}
	}
	// Phase 4: evaluate the undecided constraints on the updated store —
	// compiled residual checks and full evaluations alike (both read the
	// post-update state; an always-safe or always-violating residual is
	// simply a check that returns without touching data). The evaluations
	// only read, so they run concurrently; the verdicts are then processed
	// in constraint order to keep reports, stats and the first-error
	// semantics identical to the serial pipeline.
	type evalOutcome struct {
		bad bool
		err error
		dur time.Duration
	}
	outcomes := make([]evalOutcome, len(needGlobal))
	runParallel(len(needGlobal), c.workers(), func(i int) {
		g := needGlobal[i]
		var start time.Time
		if tracing {
			start = time.Now()
		}
		switch {
		case g.res != nil:
			outcomes[i].bad = g.res.Decide(c.db, u.Tuple)
		case g.k.mat != nil:
			outcomes[i].bad = g.k.mat.Holds(ast.PanicPred)
		default:
			outcomes[i].bad, outcomes[i].err = eval.GoalHoldsWith(g.k.Prog, c.db, ast.PanicPred, c.evalOpts())
		}
		if tracing {
			outcomes[i].dur = time.Since(start)
		}
	})
	violated := false
	for i, g := range needGlobal {
		if err := outcomes[i].err; err != nil {
			rollback()
			if tracing {
				c.emit(uStr, obs.Event{Kind: obs.KindUpdateEnd, Err: err.Error()})
			}
			return rep, err
		}
		v := Holds
		if outcomes[i].bad {
			v = Violated
			violated = true
		}
		phase := PhaseGlobal
		if g.res != nil {
			phase = PhaseResidual
		}
		if tracing {
			e := obs.Event{
				Kind:       obs.KindPhase,
				Constraint: g.k.Name,
				Phase:      phase.String(),
				Decided:    true,
				Verdict:    v.String(),
				Duration:   outcomes[i].dur,
			}
			if g.res != nil {
				e.Cache = g.cache
			} else {
				e.Relations = c.remoteRelations(g.k)
			}
			c.emit(uStr, e)
		}
		rep.Decisions = append(rep.Decisions, Decision{g.k.Name, phase, v})
		c.bumpPhase(phase)
	}
	if violated {
		rollback()
		rep.Applied = false
		c.statsMu.Lock()
		c.stats.Rejected++
		c.statsMu.Unlock()
		if c.met != nil {
			c.met.rejected.Inc()
		}
	}
	sort.SliceStable(rep.Decisions, func(i, j int) bool { return rep.Decisions[i].Constraint < rep.Decisions[j].Constraint })
	if tracing {
		// The probe delta is process-wide, so concurrent appliers blur it;
		// under the decision server's single mutation worker it is exact.
		c.emit(uStr, obs.Event{
			Kind: obs.KindUpdateEnd, Applied: rep.Applied, Rejected: rep.Violations(),
			IndexProbes: relation.IndexProbes() - probes0,
		})
	}
	if c.met != nil {
		c.met.applySeconds.Observe(time.Since(applyStart).Seconds())
		c.met.sampleIndexCounters()
		c.met.samplePlanCounters(c.planCache)
		c.met.sampleResidualCounters(c.residuals)
	}
	return rep, nil
}

// bumpPhase counts one decision in the stats and, when a registry is
// attached, in the cc_checker_decisions_total family.
func (c *Checker) bumpPhase(p Phase) {
	c.statsMu.Lock()
	c.stats.ByPhase[p]++
	c.statsMu.Unlock()
	if c.met != nil {
		c.met.decisions.With(p.String()).Inc()
	}
}

// notifyMats propagates an applied update into every materialization in
// incremental mode: decided constraints included (their panic stays
// underivable, but their intermediate relations must not go stale).
func (c *Checker) notifyMats(u store.Update, changed bool) error {
	if !c.opts.Incremental {
		return nil
	}
	for _, k := range c.constraints {
		if k.mat != nil {
			if err := k.mat.NotifyApplied(u, changed); err != nil {
				return err
			}
		}
	}
	return nil
}

// localTest runs the complete local test for an insertion into the
// constraint's local relation: interval coverage for canonical ICQs, the
// Theorem 5.2 reduction containment otherwise. It reads only the local
// relation.
func (c *Checker) localTest(k *Constraint, t relation.Tuple) (bool, error) {
	L := c.db.Tuples(k.cqc.LocalPred)
	if k.analysis != nil {
		return k.analysis.CertifyInsert(t, L)
	}
	return reduction.LocalTest(k.cqc, t, L)
}

// CheckAll fully evaluates every constraint and returns the names of the
// violated ones (normally empty: Apply never admits a violating update).
func (c *Checker) CheckAll() ([]string, error) {
	var out []string
	for _, k := range c.constraints {
		bad, err := eval.GoalHoldsWith(k.Prog, c.db, ast.PanicPred, c.evalOpts())
		if err != nil {
			return nil, err
		}
		if bad {
			out = append(out, k.Name)
		}
	}
	return out, nil
}

// RedundantConstraints returns the names of managed constraints that are
// subsumed by the rest of the set (Section 3): they can never be violated
// while the others hold, so checking them is wasted work. The checker
// keeps them registered — dropping them is the caller's decision.
func (c *Checker) RedundantConstraints() ([]string, error) {
	progs := make([]*ast.Program, len(c.constraints))
	for i, k := range c.constraints {
		progs[i] = k.Prog
	}
	idx, err := subsume.Redundant(progs)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, i := range idx {
		out = append(out, c.constraints[i].Name)
	}
	return out, nil
}

// RemoveConstraint unregisters a constraint by name.
func (c *Checker) RemoveConstraint(name string) bool {
	for i, k := range c.constraints {
		if k.Name == name {
			c.constraints = append(c.constraints[:i], c.constraints[i+1:]...)
			c.refreshSet()
			return true
		}
	}
	return false
}
