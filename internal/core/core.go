// Package core is the public facade of the library: a Checker manages a
// set of constraints over a database and applies updates through the
// paper's staged partial-information discipline, consulting as little
// information as each update requires:
//
//  1. Unaffected — the constraint does not mention the updated relation.
//  2. Update-only (Section 4) — rewrite the constraint for the update and
//     test subsumption by the constraints known to hold; no data touched.
//  3. Local data (Sections 5–6) — for conjunctive constraints over a
//     designated local relation, run the complete local test (interval
//     coverage for ICQs, Theorem 5.2 reductions otherwise); only local
//     data touched.
//  4. Global — fall back to full evaluation over all relations.
//
// Each Apply reports, per constraint, which phase decided and with what
// verdict; violating updates are rolled back.
package core

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/eval"
	"repro/internal/icq"
	"repro/internal/incremental"
	"repro/internal/parser"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/store"
	"repro/internal/subsume"
)

// Phase identifies which level of information decided a constraint.
type Phase int

const (
	// PhaseUnaffected: the update cannot touch the constraint.
	PhaseUnaffected Phase = iota
	// PhasePolarity: monotonicity (Nicolas [1982]) certified it — the
	// update touches the constraint only with the harmless polarity
	// (deleting from a purely positive relation, inserting into a purely
	// negative one).
	PhasePolarity
	// PhaseUpdateOnly: Section 4 rewriting + subsumption certified it.
	PhaseUpdateOnly
	// PhaseLocalData: a Section 5/6 complete local test certified it.
	PhaseLocalData
	// PhaseGlobal: full evaluation was required.
	PhaseGlobal
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseUnaffected:
		return "unaffected"
	case PhasePolarity:
		return "polarity"
	case PhaseUpdateOnly:
		return "update-only"
	case PhaseLocalData:
		return "local-data"
	case PhaseGlobal:
		return "global"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Verdict is the per-constraint outcome of an update.
type Verdict int

const (
	// Holds: the constraint provably still holds.
	Holds Verdict = iota
	// Violated: the update would violate the constraint (it was rolled
	// back).
	Violated
)

func (v Verdict) String() string {
	if v == Violated {
		return "VIOLATED"
	}
	return "holds"
}

// Constraint is a managed constraint with its prepared artifacts.
type Constraint struct {
	Name string
	Prog *ast.Program

	// cqc is non-nil when the constraint is a single conjunctive rule
	// with exactly one subgoal over a local relation (normalized to the
	// Section 5 form); analysis additionally when it is a canonical ICQ.
	cqc      *ast.CQC
	analysis *icq.Analysis
	// mat maintains the constraint's evaluation when Options.Incremental
	// is set.
	mat *incremental.Materialized
}

// Decision records how one constraint was dispatched for one update.
type Decision struct {
	Constraint string
	Phase      Phase
	Verdict    Verdict
}

// Report is the outcome of one Apply.
type Report struct {
	Update    store.Update
	Decisions []Decision
	// Applied is false when some constraint was violated and the update
	// was rolled back.
	Applied bool
}

// Violations lists the violated constraints' names.
func (r Report) Violations() []string {
	var out []string
	for _, d := range r.Decisions {
		if d.Verdict == Violated {
			out = append(out, d.Constraint)
		}
	}
	return out
}

// Stats aggregates phase usage across updates.
type Stats struct {
	Updates   int
	ByPhase   map[Phase]int
	Rejected  int
	Decisions int
}

// Options configure a Checker.
type Options struct {
	// LocalRelations are the relations resident at the checking site;
	// complete local tests may read them freely. Nil means every
	// relation is local (a centralized database).
	LocalRelations []string
	// DisableUpdateOnly skips phase 2 (for ablation experiments).
	DisableUpdateOnly bool
	// DisableLocalData skips phase 3 (for ablation experiments).
	DisableLocalData bool
	// Incremental maintains a materialized evaluation of every
	// constraint (DRed, internal/incremental), so the global phase
	// answers from the materialization instead of re-evaluating.
	Incremental bool
}

// Checker manages constraints over a store.
type Checker struct {
	db          *store.Store
	opts        Options
	local       map[string]bool // nil: everything local
	constraints []*Constraint
	stats       Stats
}

// New creates a Checker over db.
func New(db *store.Store, opts Options) *Checker {
	c := &Checker{db: db, opts: opts, stats: Stats{ByPhase: map[Phase]int{}}}
	if opts.LocalRelations != nil {
		c.local = map[string]bool{}
		for _, n := range opts.LocalRelations {
			c.local[n] = true
		}
	}
	return c
}

// DB returns the underlying store.
func (c *Checker) DB() *store.Store { return c.db }

// Stats returns aggregate phase statistics.
func (c *Checker) Stats() Stats { return c.stats }

// Constraints returns the managed constraints' names in order.
func (c *Checker) Constraints() []string {
	var out []string
	for _, k := range c.constraints {
		out = append(out, k.Name)
	}
	return out
}

// AddConstraintSource parses and adds a constraint program.
func (c *Checker) AddConstraintSource(name, src string) error {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return err
	}
	return c.AddConstraint(name, prog)
}

// AddConstraint adds a constraint program (goal predicate panic). The
// database must currently satisfy it: the staged tests all assume
// constraints held before each update.
func (c *Checker) AddConstraint(name string, prog *ast.Program) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	goal := prog.RulesFor(ast.PanicPred)
	if len(goal) == 0 {
		return fmt.Errorf("core: constraint %s has no %s rule", name, ast.PanicPred)
	}
	for _, k := range c.constraints {
		if k.Name == name {
			return fmt.Errorf("core: duplicate constraint name %q", name)
		}
	}
	bad, err := eval.GoalHolds(prog, c.db, ast.PanicPred)
	if err != nil {
		return err
	}
	if bad {
		return fmt.Errorf("core: constraint %s is already violated by the current database", name)
	}
	k := &Constraint{Name: name, Prog: prog}
	c.prepare(k)
	if c.opts.Incremental {
		m, err := incremental.Materialize(prog, c.db)
		if err != nil {
			return err
		}
		k.mat = m
	}
	c.constraints = append(c.constraints, k)
	return nil
}

// prepare derives the CQC/ICQ artifacts when the constraint has the
// right shape: a single positive conjunctive rule with exactly one
// subgoal over a local relation and every other ordinary subgoal over
// non-local relations.
func (c *Checker) prepare(k *Constraint) {
	if len(k.Prog.Rules) != 1 {
		return
	}
	r := k.Prog.Rules[0]
	if r.HasNegation() {
		return
	}
	localPred := ""
	remoteOK := true
	for _, a := range r.PositiveAtoms() {
		if c.isLocal(a.Pred) {
			if localPred != "" {
				remoteOK = false // two local subgoals: not the CQC shape
				break
			}
			localPred = a.Pred
		}
	}
	if !remoteOK || localPred == "" {
		return
	}
	cqc, err := ast.NormalizeCQC(r, localPred)
	if err != nil {
		return
	}
	k.cqc = cqc
	if a, err := icq.Analyze(cqc); err == nil {
		k.analysis = a
	}
}

// isLocal reports whether the relation is resident at the checking site.
func (c *Checker) isLocal(rel string) bool {
	if c.local == nil {
		return true
	}
	return c.local[rel]
}

// mentions reports whether the constraint references the relation.
func mentions(prog *ast.Program, rel string) bool {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return true
			}
		}
	}
	return false
}

// Apply pushes one update through the staged pipeline. On any violation
// the update is rolled back and the report's Applied is false.
func (c *Checker) Apply(u store.Update) (Report, error) {
	rep := Report{Update: u, Applied: true}
	c.stats.Updates++
	needGlobal := make([]*Constraint, 0, len(c.constraints))
	others := make([]*ast.Program, 0, len(c.constraints))
	for _, k := range c.constraints {
		others = append(others, k.Prog)
	}
	for i, k := range c.constraints {
		c.stats.Decisions++
		// Phase 1: unaffected.
		if !mentions(k.Prog, u.Relation) {
			rep.Decisions = append(rep.Decisions, Decision{k.Name, PhaseUnaffected, Holds})
			c.stats.ByPhase[PhaseUnaffected]++
			continue
		}
		// Phase 1.5: polarity (monotonicity). Free: uses only the
		// constraint text and the update's direction.
		if !c.opts.DisableUpdateOnly &&
			classify.UpdateMonotoneSafe(k.Prog, ast.PanicPred, u.Relation, u.Insert) {
			rep.Decisions = append(rep.Decisions, Decision{k.Name, PhasePolarity, Holds})
			c.stats.ByPhase[PhasePolarity]++
			continue
		}
		// Phase 2: constraints + update only.
		if !c.opts.DisableUpdateOnly {
			rest := append(append([]*ast.Program{}, others[:i]...), others[i+1:]...)
			res, err := rewrite.UpdateSafe(k.Prog, rest, u)
			if err == nil && res.Verdict == subsume.Yes {
				rep.Decisions = append(rep.Decisions, Decision{k.Name, PhaseUpdateOnly, Holds})
				c.stats.ByPhase[PhaseUpdateOnly]++
				continue
			}
		}
		// Phase 3: local data.
		if !c.opts.DisableLocalData && u.Insert && k.cqc != nil && k.cqc.LocalPred == u.Relation {
			ok, err := c.localTest(k, u.Tuple)
			if err == nil && ok {
				rep.Decisions = append(rep.Decisions, Decision{k.Name, PhaseLocalData, Holds})
				c.stats.ByPhase[PhaseLocalData]++
				continue
			}
		}
		needGlobal = append(needGlobal, k)
	}
	// Apply the update (recording whether it actually changed the store,
	// so a rollback never corrupts pre-existing tuples).
	var changed bool
	if u.Insert {
		ch, err := c.db.Insert(u.Relation, u.Tuple)
		if err != nil {
			return rep, err
		}
		changed = ch
	} else {
		changed = c.db.Delete(u.Relation, u.Tuple)
	}
	// Incremental mode: every materialization tracks the store, decided
	// constraints included (their panic stays underivable, but their
	// intermediate relations must not go stale).
	notifyAll := func(nu store.Update, ch bool) error {
		if !c.opts.Incremental {
			return nil
		}
		for _, k := range c.constraints {
			if k.mat != nil {
				if err := k.mat.NotifyApplied(nu, ch); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := notifyAll(u, changed); err != nil {
		return rep, err
	}
	rollback := func() {
		if !changed {
			return
		}
		var inv store.Update
		if u.Insert {
			c.db.Delete(u.Relation, u.Tuple)
			inv = store.Del(u.Relation, u.Tuple)
		} else {
			if _, err := c.db.Insert(u.Relation, u.Tuple); err != nil {
				panic(fmt.Sprintf("core: rollback failed: %v", err))
			}
			inv = store.Ins(u.Relation, u.Tuple)
		}
		if err := notifyAll(inv, true); err != nil {
			panic(fmt.Sprintf("core: rollback notification failed: %v", err))
		}
	}
	// Phase 4: evaluate the undecided constraints on the updated store.
	violated := false
	for _, k := range needGlobal {
		var bad bool
		var err error
		if k.mat != nil {
			bad = k.mat.Holds(ast.PanicPred)
		} else {
			bad, err = eval.GoalHolds(k.Prog, c.db, ast.PanicPred)
		}
		if err != nil {
			rollback()
			return rep, err
		}
		v := Holds
		if bad {
			v = Violated
			violated = true
		}
		rep.Decisions = append(rep.Decisions, Decision{k.Name, PhaseGlobal, v})
		c.stats.ByPhase[PhaseGlobal]++
	}
	if violated {
		rollback()
		rep.Applied = false
		c.stats.Rejected++
	}
	sort.SliceStable(rep.Decisions, func(i, j int) bool { return rep.Decisions[i].Constraint < rep.Decisions[j].Constraint })
	return rep, nil
}

// localTest runs the complete local test for an insertion into the
// constraint's local relation: interval coverage for canonical ICQs, the
// Theorem 5.2 reduction containment otherwise. It reads only the local
// relation.
func (c *Checker) localTest(k *Constraint, t relation.Tuple) (bool, error) {
	L := c.db.Tuples(k.cqc.LocalPred)
	if k.analysis != nil {
		return k.analysis.CertifyInsert(t, L)
	}
	return reduction.LocalTest(k.cqc, t, L)
}

// CheckAll fully evaluates every constraint and returns the names of the
// violated ones (normally empty: Apply never admits a violating update).
func (c *Checker) CheckAll() ([]string, error) {
	var out []string
	for _, k := range c.constraints {
		bad, err := eval.GoalHolds(k.Prog, c.db, ast.PanicPred)
		if err != nil {
			return nil, err
		}
		if bad {
			out = append(out, k.Name)
		}
	}
	return out, nil
}

// RedundantConstraints returns the names of managed constraints that are
// subsumed by the rest of the set (Section 3): they can never be violated
// while the others hold, so checking them is wasted work. The checker
// keeps them registered — dropping them is the caller's decision.
func (c *Checker) RedundantConstraints() ([]string, error) {
	progs := make([]*ast.Program, len(c.constraints))
	for i, k := range c.constraints {
		progs[i] = k.Prog
	}
	idx, err := subsume.Redundant(progs)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, i := range idx {
		out = append(out, c.constraints[i].Name)
	}
	return out, nil
}

// RemoveConstraint unregisters a constraint by name.
func (c *Checker) RemoveConstraint(name string) bool {
	for i, k := range c.constraints {
		if k.Name == name {
			c.constraints = append(c.constraints[:i], c.constraints[i+1:]...)
			return true
		}
	}
	return false
}
