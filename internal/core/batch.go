package core

import (
	"fmt"

	"repro/internal/store"
)

// BatchReport is the outcome of one ApplyBatch.
type BatchReport struct {
	Reports []Report
	// Applied is false when some update violated a constraint; the whole
	// batch was then rolled back.
	Applied bool
	// FailedAt is the index of the violating update when Applied is
	// false (-1 otherwise).
	FailedAt int
}

// ApplyBatch applies the updates as one atomic transaction: each update
// runs through the staged pipeline in order (each Apply fanning its
// per-constraint work across the Options.Workers pool), and if any is
// rejected the whole batch is undone and FailedAt reports the offender.
// The staged tests remain valid within the batch because each successful
// Apply leaves every constraint satisfied (the inductive invariant the
// paper's tests assume).
func (c *Checker) ApplyBatch(updates []store.Update) (BatchReport, error) {
	br := BatchReport{Applied: true, FailedAt: -1}
	// Record inverse operations of the updates that actually changed the
	// store, for rollback in reverse order.
	type undo struct {
		u       store.Update
		changed bool
	}
	var undos []undo
	rollback := func() error {
		for i := len(undos) - 1; i >= 0; i-- {
			if !undos[i].changed {
				continue
			}
			u := undos[i].u
			var inv store.Update
			if u.Insert {
				c.db.Delete(u.Relation, u.Tuple)
				inv = store.Del(u.Relation, u.Tuple)
			} else {
				if _, err := c.db.Insert(u.Relation, u.Tuple); err != nil {
					return fmt.Errorf("core: batch rollback failed: %w", err)
				}
				inv = store.Ins(u.Relation, u.Tuple)
			}
			// Incremental materializations must track the rollback too, or
			// they go stale relative to the restored store.
			if err := c.notifyMats(inv, true); err != nil {
				return fmt.Errorf("core: batch rollback notification failed: %w", err)
			}
		}
		return nil
	}
	for i, u := range updates {
		// Determine whether this update will change the store (before
		// Apply mutates it), so rollback is exact even with duplicate
		// updates inside one batch.
		changes := c.db.Contains(u.Relation, u.Tuple) != u.Insert
		rep, err := c.Apply(u)
		if err != nil {
			if rbErr := rollback(); rbErr != nil {
				return br, rbErr
			}
			return br, err
		}
		br.Reports = append(br.Reports, rep)
		if !rep.Applied {
			br.Applied = false
			br.FailedAt = i
			if err := rollback(); err != nil {
				return br, err
			}
			return br, nil
		}
		undos = append(undos, undo{u: u, changed: changes})
	}
	return br, nil
}
