package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

func planChecker(t *testing.T) *Checker {
	t.Helper()
	// Plan previews the staged pipeline and is residual-unaware, so these
	// tests compare it against an Apply that runs the same pipeline.
	c := newChecker(t, "dept(toy). emp(ann,toy,50).", Options{LocalRelations: []string{"emp"}, DisableResidual: true})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D,S) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraintSource("cap", "panic :- emp(E,D,S) & S > 100."); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlanDecidedWithoutGlobal(t *testing.T) {
	c := planChecker(t)
	// Inserting a department is harmless for both constraints: phases 1–2
	// decide everything, so no relation would be fetched.
	pr := c.Plan(store.Ins("dept", relation.Strs("shoe")))
	if len(pr.Global) != 0 || len(pr.Relations) != 0 {
		t.Fatalf("plan needs global for +dept(shoe): %+v", pr)
	}
	if len(pr.Decided) != 2 {
		t.Fatalf("decided %d constraints, want 2: %+v", len(pr.Decided), pr)
	}
	for _, d := range pr.Decided {
		if d.Verdict != Holds || d.Phase == PhaseGlobal {
			t.Errorf("decision %+v", d)
		}
	}
}

func TestPlanGlobalRelations(t *testing.T) {
	c := planChecker(t)
	// A high-salary hire into an existing department: the referential
	// constraint can be certified from dept alone only by the global
	// phase in this configuration (dept is remote), and the salary cap
	// cannot be certified at all without evaluation.
	pr := c.Plan(store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(500))))
	if len(pr.Global) == 0 {
		t.Fatalf("expected global constraints: %+v", pr)
	}
	want := []string{"dept", "emp"}
	if !reflect.DeepEqual(pr.Relations, want) {
		t.Errorf("relations = %v, want %v", pr.Relations, want)
	}
}

func TestPlanIsReadOnly(t *testing.T) {
	c := planChecker(t)
	before := c.Stats()
	dump := c.DB().Dump()
	pr := c.Plan(store.Ins("emp", relation.TupleOf(ast.Str("x"), ast.Str("ghost"), ast.Int(500))))
	if len(pr.Global) == 0 {
		t.Fatalf("expected a global plan: %+v", pr)
	}
	if got := c.DB().Dump(); got != dump {
		t.Errorf("Plan mutated the store:\n%s", got)
	}
	after := c.Stats()
	if after.Updates != before.Updates || after.Decisions != before.Decisions || after.Rejected != before.Rejected {
		t.Errorf("Plan moved aggregate stats: before %+v after %+v", before, after)
	}
}

func TestPlanMatchesApply(t *testing.T) {
	c := planChecker(t)
	updates := []store.Update{
		store.Ins("dept", relation.Strs("shoe")),
		store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("shoe"), ast.Int(60))),
		store.Ins("emp", relation.TupleOf(ast.Str("zed"), ast.Str("toy"), ast.Int(900))),
		store.Del("emp", relation.TupleOf(ast.Str("ann"), ast.Str("toy"), ast.Int(50))),
	}
	for _, u := range updates {
		pr := c.Plan(u)
		rep, err := c.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		// Every planned early decision appears verbatim in the report, and
		// every planned-global constraint was decided by the global phase.
		byName := map[string]Decision{}
		for _, d := range rep.Decisions {
			byName[d.Constraint] = d
		}
		for _, d := range pr.Decided {
			if got := byName[d.Constraint]; got != d {
				t.Errorf("%v: planned %+v, applied %+v", u, d, got)
			}
		}
		for _, name := range pr.Global {
			if got := byName[name]; got.Phase != PhaseGlobal {
				t.Errorf("%v: planned global for %s, applied %+v", u, name, got)
			}
		}
	}
}

func TestEdbRelationsExcludesDerived(t *testing.T) {
	c := newChecker(t, "mgr(a,b).", Options{})
	src := `boss(E,M) :- mgr(E,M).
boss(E,M) :- mgr(E,X) & boss(X,M).
panic :- boss(E,E).`
	if err := c.AddConstraintSource("cycle", src); err != nil {
		t.Fatal(err)
	}
	pr := c.Plan(store.Ins("mgr", relation.Strs("b", "a")))
	if len(pr.Global) != 1 {
		t.Fatalf("plan = %+v", pr)
	}
	if want := []string{"mgr"}; !reflect.DeepEqual(pr.Relations, want) {
		t.Errorf("relations = %v, want %v (derived boss excluded)", pr.Relations, want)
	}
}

func TestStatsByPhaseIsACopy(t *testing.T) {
	c := planChecker(t)
	if _, err := c.Apply(store.Ins("dept", relation.Strs("shoe"))); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	for p := range st.ByPhase {
		st.ByPhase[p] += 1000
	}
	st2 := c.Stats()
	for p, n := range st2.ByPhase {
		if n >= 1000 {
			t.Fatalf("Stats leaked the live ByPhase map: %v=%d", p, n)
		}
	}
	_ = fmt.Sprint(st2)
}
