package core

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func newChecker(t *testing.T, facts string, opts Options) *Checker {
	t.Helper()
	db := store.New()
	if facts != "" {
		if err := db.LoadFacts(parser.MustParseProgram(facts)); err != nil {
			t.Fatal(err)
		}
	}
	return New(db, opts)
}

func TestAddConstraintValidation(t *testing.T) {
	c := newChecker(t, "emp(ann,ghost,50).", Options{})
	if err := c.AddConstraintSource("notc", "q(X) :- p(X)."); err == nil {
		t.Error("non-constraint accepted")
	}
	// A constraint the database already violates must be rejected.
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D,S) & not dept(D)."); err == nil {
		t.Error("already-violated constraint accepted")
	}
	c2 := newChecker(t, "emp(ann,toy,50). dept(toy).", Options{})
	if err := c2.AddConstraintSource("ri", "panic :- emp(E,D,S) & not dept(D)."); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	if err := c2.AddConstraintSource("ri", "panic :- emp(E,D,S) & S > 100."); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestApplyPhases(t *testing.T) {
	// Phase-distribution assertions: residual dispatch would otherwise
	// decide every eligible pattern ahead of the staged pipeline.
	c := newChecker(t, "emp(ann,toy,50). dept(toy).", Options{DisableResidual: true})
	for name, src := range map[string]string{
		"ri":  "panic :- emp(E,D,S) & not dept(D).",
		"cap": "panic :- emp(E,D,S) & S > 100.",
	} {
		if err := c.AddConstraintSource(name, src); err != nil {
			t.Fatal(err)
		}
	}
	// Inserting a department: ri certified update-only, cap unaffected.
	rep, err := c.Apply(store.Ins("dept", relation.Strs("shoe")))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("benign update rejected")
	}
	phases := map[string]Phase{}
	for _, d := range rep.Decisions {
		phases[d.Constraint] = d.Phase
	}
	if phases["cap"] != PhaseUnaffected {
		t.Errorf("cap decided by %v, want unaffected", phases["cap"])
	}
	// Inserting into dept — a purely negative relation for ri — is now
	// certified by the polarity phase, cheaper than rewrite+subsumption.
	if phases["ri"] != PhasePolarity {
		t.Errorf("ri decided by %v, want polarity", phases["ri"])
	}
	// Inserting a low-paid employee in an existing dept: cap certified
	// update-only; ri needs the data (global here, since dept is not a
	// designated local CQC relation for ri's shape — ri has negation).
	rep, err = c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60))))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("valid employee rejected")
	}
	// Inserting an employee of a ghost department must be rejected and
	// rolled back.
	rep, err = c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("ghost"), ast.Int(60))))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating update applied")
	}
	if got := rep.Violations(); len(got) != 1 || got[0] != "ri" {
		t.Errorf("Violations = %v", got)
	}
	if c.DB().Contains("emp", relation.TupleOf(ast.Str("eve"), ast.Str("ghost"), ast.Int(60))) {
		t.Error("rolled-back tuple still present")
	}
	if bad, _ := c.CheckAll(); len(bad) != 0 {
		t.Errorf("CheckAll after rollback: %v", bad)
	}
}

func TestApplyLocalDataPhase(t *testing.T) {
	// Forbidden intervals with l local and r remote: covered insertions
	// are certified from local data without touching r.
	db := store.New()
	for _, tu := range []relation.Tuple{relation.Ints(3, 6), relation.Ints(5, 10)} {
		if _, err := db.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("r", relation.Ints(100)); err != nil {
		t.Fatal(err)
	}
	c := New(db, Options{LocalRelations: []string{"l"}, DisableResidual: true})
	if err := c.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	db.ResetReads()
	rep, err := c.Apply(store.Ins("l", relation.Ints(4, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("covered insertion rejected")
	}
	if rep.Decisions[0].Phase != PhaseLocalData {
		t.Errorf("phase = %v, want local-data", rep.Decisions[0].Phase)
	}
	if got := db.Reads("r"); got != 0 {
		t.Errorf("local-data phase read %d remote tuples", got)
	}
	// An uncovered insertion that would violate (r holds 100): global
	// phase catches it.
	rep, err = c.Apply(store.Ins("l", relation.Ints(90, 110)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating interval applied")
	}
	if rep.Decisions[0].Phase != PhaseGlobal {
		t.Errorf("phase = %v, want global", rep.Decisions[0].Phase)
	}
	// An uncovered insertion that happens not to violate (no remote point
	// in it): global phase admits it.
	rep, err = c.Apply(store.Ins("l", relation.Ints(40, 50)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("harmless uncovered interval rejected")
	}
}

func TestApplyDeleteRollbackRestores(t *testing.T) {
	// Deleting a department can violate referential integrity; the
	// rollback must restore the deleted tuple.
	c := newChecker(t, "emp(ann,toy,50). dept(toy).", Options{})
	if err := c.AddConstraintSource("ri", "panic :- emp(E,D,S) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Apply(store.Del("dept", relation.Strs("toy")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating deletion applied")
	}
	if !c.DB().Contains("dept", relation.Strs("toy")) {
		t.Error("rollback did not restore the deleted tuple")
	}
}

func TestApplyNoChangeUpdateNotCorrupted(t *testing.T) {
	// Re-inserting an existing tuple that leads to a violation must not
	// delete the pre-existing tuple on rollback.
	db := store.New()
	if _, err := db.Insert("l", relation.Ints(1, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", relation.Ints(3)); err != nil {
		t.Fatal(err)
	}
	c := New(db, Options{LocalRelations: []string{"l"}})
	// The database violates fi already — AddConstraint refuses. Use an
	// empty-constraint setup instead: constraint over s, then force a
	// duplicate insert.
	if err := c.AddConstraintSource("dup", "panic :- l(X,Y) & s(X) & X > 100."); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Apply(store.Ins("l", relation.Ints(1, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("benign duplicate insert rejected")
	}
	if !c.DB().Contains("l", relation.Ints(1, 5)) {
		t.Error("duplicate insert corrupted the store")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := newChecker(t, "dept(toy).", Options{DisableResidual: true})
	if err := c.AddConstraintSource("cap", "panic :- emp(E,D,S) & S > 100."); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Apply(store.Ins("dept", relation.Strs("d"+string(rune('a'+i))))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Updates != 5 || st.ByPhase[PhaseUnaffected] != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPipelineAgainstOracle drives randomized updates through the full
// pipeline and checks its accept/reject decisions against the oracle
// (direct evaluation), and that the store always satisfies every
// constraint.
func TestPipelineAgainstOracle(t *testing.T) {
	db := store.New()
	if _, err := db.Insert("dept", relation.Strs("toy")); err != nil {
		t.Fatal(err)
	}
	c := New(db, Options{LocalRelations: []string{"emp", "dept"}})
	for name, src := range map[string]string{
		"ri":       "panic :- emp(E,D,S) & not dept(D).",
		"cap":      "panic :- emp(E,D,S) & S > 100.",
		"disjoint": "panic :- emp(E,sales,S) & emp(E,accounting,S).",
	} {
		if err := c.AddConstraintSource(name, src); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(31))
	names := []string{"ann", "bob", "carl"}
	depts := []string{"toy", "shoe", "sales", "accounting"}
	for i := 0; i < 120; i++ {
		var u store.Update
		switch rng.Intn(3) {
		case 0:
			u = store.Ins("emp", relation.TupleOf(
				ast.Str(names[rng.Intn(len(names))]),
				ast.Str(depts[rng.Intn(len(depts))]),
				ast.Int(int64(rng.Intn(150)))))
		case 1:
			u = store.Ins("dept", relation.Strs(depts[rng.Intn(len(depts))]))
		default:
			u = store.Del("dept", relation.Strs(depts[rng.Intn(len(depts))]))
		}
		rep, err := c.Apply(u)
		if err != nil {
			t.Fatalf("update %v: %v", u, err)
		}
		bad, err := c.CheckAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) != 0 {
			t.Fatalf("after update %v (applied=%v): violated %v", u, rep.Applied, bad)
		}
	}
}

func TestRedundantConstraints(t *testing.T) {
	c := newChecker(t, "", Options{})
	for name, src := range map[string]string{
		"mid":   "panic :- r(Z) & 4 <= Z & Z <= 8.",
		"left":  "panic :- r(Z) & 3 <= Z & Z <= 6.",
		"right": "panic :- r(Z) & 5 <= Z & Z <= 10.",
	} {
		if err := c.AddConstraintSource(name, src); err != nil {
			t.Fatal(err)
		}
	}
	red, err := c.RedundantConstraints()
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 1 || red[0] != "mid" {
		t.Errorf("RedundantConstraints = %v, want [mid]", red)
	}
	if !c.RemoveConstraint("mid") {
		t.Error("RemoveConstraint failed")
	}
	if c.RemoveConstraint("mid") {
		t.Error("double remove succeeded")
	}
	if got := c.Constraints(); len(got) != 2 {
		t.Errorf("constraints after removal: %v", got)
	}
}

// TestIncrementalModeMatchesRecompute drives the same random stream
// through an incremental checker and a recomputing one; every decision
// and the final state must agree.
func TestIncrementalModeMatchesRecompute(t *testing.T) {
	mk := func(incremental bool) *Checker {
		db := store.New()
		if _, err := db.Insert("dept", relation.Strs("toy")); err != nil {
			t.Fatal(err)
		}
		c := New(db, Options{Incremental: incremental})
		for name, src := range map[string]string{
			"ri":   "panic :- emp(E,D,S) & not dept(D).",
			"cap":  "panic :- emp(E,D,S) & S > 100.",
			"boss": "panic :- boss(E,E).\nboss(E,M) :- emp(E,D,S) & manager(D,M).\nboss(E,F) :- boss(E,G) & boss(G,F).",
		} {
			if err := c.AddConstraintSource(name, src); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	a, b := mk(true), mk(false)
	rng := rand.New(rand.NewSource(77))
	names := []string{"ann", "bob", "carl"}
	depts := []string{"toy", "shoe"}
	for step := 0; step < 80; step++ {
		var u store.Update
		switch rng.Intn(4) {
		case 0:
			u = store.Ins("dept", relation.Strs(depts[rng.Intn(2)]))
		case 1:
			u = store.Ins("manager", relation.TupleOf(
				ast.Str(depts[rng.Intn(2)]), ast.Str(names[rng.Intn(3)])))
		case 2:
			u = store.Del("manager", relation.TupleOf(
				ast.Str(depts[rng.Intn(2)]), ast.Str(names[rng.Intn(3)])))
		default:
			u = store.Ins("emp", relation.TupleOf(
				ast.Str(names[rng.Intn(3)]), ast.Str(depts[rng.Intn(2)]), ast.Int(int64(rng.Intn(150)))))
		}
		ra, err := a.Apply(u)
		if err != nil {
			t.Fatalf("incremental step %d: %v", step, err)
		}
		rb, err := b.Apply(u)
		if err != nil {
			t.Fatalf("recompute step %d: %v", step, err)
		}
		if ra.Applied != rb.Applied {
			t.Fatalf("step %d (%v): incremental applied=%v recompute=%v", step, u, ra.Applied, rb.Applied)
		}
		if badA, _ := a.CheckAll(); len(badA) != 0 {
			t.Fatalf("step %d: incremental checker left violations %v", step, badA)
		}
	}
	// Final stores identical.
	for _, rel := range a.DB().Names() {
		ra, rb := a.DB().Relation(rel), b.DB().Relation(rel)
		if rb == nil || !ra.Equal(rb) {
			t.Errorf("relation %s diverged", rel)
		}
	}
}
