package core

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/relation"
)

// decisionCache memoizes the update-independent parts of the staged
// pipeline. The paper's phases 1, 1.5 and (partially) 2 depend only on
// the constraint text, the constraint set, the updated relation and the
// update direction — not on the concrete tuple — yet the serial pipeline
// re-derived them for every update. The cache is keyed by (constraint
// name, constraint-set fingerprint, relation, direction); entries are
// dropped whenever the constraint set changes (AddConstraint /
// RemoveConstraint), and the fingerprint in the key makes any stale entry
// unreachable even if one survived.
//
// Phase-2 verdicts are additionally keyed by the tuple's projection onto
// its verdict-relevant positions (see relevantInsertPositions), so one
// cached rewrite+subsumption run covers every tuple that agrees on those
// positions — the whole relation when none are relevant.
//
// The cache is safe for concurrent use by the parallel dispatch workers.
type decisionCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// cacheKey identifies one memoized dispatch context.
type cacheKey struct {
	constraint string
	fp         uint64 // fingerprint of the whole constraint set
	relation   string
	insert     bool
}

func newDecisionCache() *decisionCache {
	return &decisionCache{entries: map[cacheKey]*cacheEntry{}}
}

// invalidate drops every entry; hit/miss counters describe the checker's
// lifetime and are kept.
func (dc *decisionCache) invalidate() {
	dc.mu.Lock()
	dc.entries = map[cacheKey]*cacheEntry{}
	dc.mu.Unlock()
}

// resetStats zeroes the hit/miss counters without dropping entries
// (Checker.ResetStats: each -repeat run reports its own rates).
func (dc *decisionCache) resetStats() {
	dc.hits.Store(0)
	dc.misses.Store(0)
}

// entry returns the memoized record for key, creating it on first use,
// and reports whether the lookup hit (the decision trace records it).
// Creation computes the phase-1 mention check, the phase-1.5 polarity
// verdict and the relevant-position mask once; every later update to the
// same (relation, direction) reuses them.
func (dc *decisionCache) entry(key cacheKey, prog *ast.Program) (*cacheEntry, bool) {
	dc.mu.Lock()
	e, ok := dc.entries[key]
	dc.mu.Unlock()
	if ok {
		dc.hits.Add(1)
		return e, true
	}
	dc.misses.Add(1)
	e = buildCacheEntry(prog, key.relation, key.insert)
	dc.mu.Lock()
	if prev, ok := dc.entries[key]; ok {
		e = prev // a concurrent worker won the build race
	} else {
		dc.entries[key] = e
	}
	dc.mu.Unlock()
	return e, false
}

// phase2CacheCap bounds the per-entry concrete-verdict memo; streams of
// never-repeating tuples reset it instead of growing without bound.
const phase2CacheCap = 4096

// cacheEntry memoizes the dispatch decisions for one (constraint, set,
// relation, direction) context.
type cacheEntry struct {
	mentions    bool   // phase 1: constraint mentions the relation
	polarity    bool   // phase 1.5: monotone-safe in this direction
	allRelevant bool   // phase 2 key needs the full tuple
	relevant    []bool // else: positions that can influence the verdict

	mu     sync.Mutex
	phase2 map[string]bool // projected-tuple key -> phase-2 certified
}

func buildCacheEntry(prog *ast.Program, rel string, insert bool) *cacheEntry {
	e := &cacheEntry{
		mentions: mentions(prog, rel),
		polarity: classify.UpdateMonotoneSafe(prog, ast.PanicPred, rel, insert),
		phase2:   map[string]bool{},
	}
	if !insert {
		// Both deletion rewritings (Theorem 4.3) splice every component
		// of the deleted tuple into the rewritten constraint (the
		// per-component <>-split), so every position can influence the
		// verdict.
		e.allRelevant = true
		return e
	}
	e.relevant, e.allRelevant = relevantInsertPositions(prog, rel)
	return e
}

// relevantInsertPositions computes which components of a tuple inserted
// into rel can influence the Section 4 rewrite+subsumption verdict for
// prog. The insertion rewriting (Theorem 4.2) introduces the new tuple
// only as the auxiliary fact rel$ins(t); expanding the rewritten program
// unifies that fact with the occurrences of rel, so component t[p] can
// reach a subsumption question only through an occurrence whose argument
// at position p is a constant (unification succeeds or fails depending on
// t[p]) or a variable with another occurrence in its rule (the binding
// propagates t[p] into the rest of the body). An argument that is always
// a once-occurring variable absorbs t[p] and vanishes, so the verdict is
// identical for every value of that component and the position can be
// projected out of the memo key.
func relevantInsertPositions(prog *ast.Program, rel string) (relevant []bool, all bool) {
	for _, r := range prog.Rules {
		if r.Head.Pred == rel {
			// The constraint (re)defines the updated relation: the
			// rewriting renames the head too and the analysis above no
			// longer applies. Be conservative.
			return nil, true
		}
		counts := map[string]int{}
		bump := func(t ast.Term) {
			if t.IsVar() {
				counts[t.Var]++
			}
		}
		for _, a := range r.Head.Args {
			bump(a)
		}
		for _, l := range r.Body {
			if l.IsComp() {
				bump(l.Comp.Left)
				bump(l.Comp.Right)
				continue
			}
			for _, a := range l.Atom.Args {
				bump(a)
			}
		}
		for _, l := range r.Body {
			if l.IsComp() || l.Atom.Pred != rel {
				continue
			}
			for p, a := range l.Atom.Args {
				for len(relevant) <= p {
					relevant = append(relevant, false)
				}
				if a.IsConst() || counts[a.Var] > 1 {
					relevant[p] = true
				}
			}
		}
	}
	return relevant, false
}

// projKey projects the tuple onto the entry's verdict-relevant positions.
// Tuples agreeing on those positions share one phase-2 verdict.
func (e *cacheEntry) projKey(t relation.Tuple) string {
	if e.allRelevant {
		return t.Key()
	}
	// The arity prefix keeps tuples of different lengths apart even when
	// they agree on (or lack) every relevant position: an arity-mismatch
	// update fails the rewriting rather than being certified, and must not
	// share a memo slot with a well-formed one.
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(len(t)))
	sb.WriteByte(';')
	for p, rel := range e.relevant {
		if !rel || p >= len(t) {
			continue
		}
		k := t[p].Key()
		sb.WriteString(strconv.Itoa(p))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
		sb.WriteByte('|')
	}
	return sb.String()
}

// phase2Get returns the memoized phase-2 verdict for the projected key.
func (e *cacheEntry) phase2Get(key string) (certified, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	certified, ok = e.phase2[key]
	return certified, ok
}

// phase2Put memoizes a phase-2 verdict, resetting the memo at capacity.
func (e *cacheEntry) phase2Put(key string, certified bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.phase2) >= phase2CacheCap {
		e.phase2 = map[string]bool{}
	}
	e.phase2[key] = certified
}
