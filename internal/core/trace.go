package core

import (
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/residual"
)

// This file is the checker's observability seam: the decision-trace
// emission behind Options.Tracer and the metric handles behind
// Options.Metrics. Both are strictly optional — with a nil (or disabled)
// tracer and a nil registry, Apply takes the exact pre-instrumentation
// path: no clock reads, no event construction, no atomic bumps beyond
// the existing stats.

// tracing reports whether Apply should build trace events.
func (c *Checker) tracing() bool {
	return c.opts.Tracer != nil && c.opts.Tracer.Enabled()
}

// emit stamps the update string and the checker-wide sequence number on
// the event and hands it to the tracer. The sequence counter is atomic:
// with a single applier it is strictly increasing within and across
// updates; concurrent appliers (internal/sched) get unique, globally
// ordered numbers, though events of overlapping updates interleave.
func (c *Checker) emit(update string, e obs.Event) {
	e.Seq = c.traceSeq.Add(1)
	e.Update = update
	c.opts.Tracer.Emit(e)
}

// traceStart returns the attempt clock when tracing, the zero time
// otherwise (so the untraced path never reads the clock).
func traceStart(tr *[]obs.Event) time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// phaseAttempt appends one phase-attempt event to the constraint's local
// trace. Attempts in phases 1–3 can only decide "holds": a violation is
// observable solely in the global phase.
func phaseAttempt(tr *[]obs.Event, constraint string, p Phase, decided bool, cache string, start time.Time) {
	if tr == nil {
		return
	}
	e := obs.Event{
		Kind:       obs.KindPhase,
		Constraint: constraint,
		Phase:      p.String(),
		Decided:    decided,
		Cache:      cache,
		Duration:   time.Since(start),
	}
	if decided {
		e.Verdict = Holds.String()
	}
	*tr = append(*tr, e)
}

// remoteRelations lists the non-local EDB relations a global evaluation
// of the constraint consults — the "why did this update go remote" part
// of the trace.
func (c *Checker) remoteRelations(k *Constraint) []string {
	var out []string
	for _, rel := range edbRelations(k.Prog) {
		if !c.isLocal(rel) {
			out = append(out, rel)
		}
	}
	return out
}

// checkerMetrics holds the registry handles the checker bumps per
// update. Metric names are documented in DESIGN.md ("Observability").
type checkerMetrics struct {
	updates      *obs.Counter
	rejected     *obs.Counter
	decisions    *obs.CounterVec // phase
	applySeconds *obs.Histogram
	indexBuilds  *obs.Gauge
	indexProbes  *obs.Gauge
	planHits     *obs.Gauge
	planMisses   *obs.Gauge
	internSize   *obs.Gauge
	residHits    *obs.Gauge
	residMisses  *obs.Gauge
	residBuilt   *obs.Gauge
}

// newCheckerMetrics registers the checker's metric families on reg.
func newCheckerMetrics(reg *obs.Registry) *checkerMetrics {
	return &checkerMetrics{
		updates:      reg.Counter("cc_checker_updates_total", "updates pushed through the staged pipeline"),
		rejected:     reg.Counter("cc_checker_rejected_total", "updates rolled back on a violation"),
		decisions:    reg.CounterVec("cc_checker_decisions_total", "per-constraint decisions by deciding phase", "phase"),
		applySeconds: reg.Histogram("cc_checker_apply_seconds", "wall clock per Apply", nil),
		indexBuilds:  reg.Gauge("cc_index_builds", "process-wide hash-index builds (relation layer)"),
		indexProbes:  reg.Gauge("cc_index_probes", "process-wide hash-index probes (relation layer)"),
		planHits:     reg.Gauge("cc_plan_cache_hits", "compiled evaluation plans reused from the plan cache"),
		planMisses:   reg.Gauge("cc_plan_cache_misses", "compiled evaluation plans built on a cache miss"),
		internSize:   reg.Gauge("cc_intern_size", "distinct constants in the process-wide intern pool"),
		residHits:    reg.Gauge("cc_residual_hits", "compiled residual checks served from the pattern cache"),
		residMisses:  reg.Gauge("cc_residual_misses", "residual lookups not served from the cache (fresh compilations plus pipeline fallbacks)"),
		residBuilt:   reg.Gauge("cc_residual_compiled", "residual compilations performed"),
	}
}

// sampleIndexCounters mirrors the relation layer's process-wide index
// accounting into the registry; called once per Apply.
func (m *checkerMetrics) sampleIndexCounters() {
	m.indexBuilds.Set(relation.IndexBuilds())
	m.indexProbes.Set(relation.IndexProbes())
}

// samplePlanCounters mirrors the plan-cache counters and the intern-pool
// size into the registry; called once per Apply. pc may be nil
// (Options.DisablePlanCache), in which case the plan gauges stay zero.
func (m *checkerMetrics) samplePlanCounters(pc *eval.PlanCache) {
	if pc != nil {
		hits, misses, _ := pc.Stats()
		m.planHits.Set(hits)
		m.planMisses.Set(misses)
	}
	m.internSize.Set(relation.InternSize())
}

// sampleResidualCounters mirrors the residual cache's counters into the
// registry; called once per Apply. rc may be nil
// (Options.DisableResidual), leaving the gauges at zero.
func (m *checkerMetrics) sampleResidualCounters(rc *residual.Cache) {
	if rc == nil {
		return
	}
	hits, misses, compiled, _ := rc.Stats()
	m.residHits.Set(hits)
	m.residMisses.Set(misses)
	m.residBuilt.Set(compiled)
}
