package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the configured pool width: Options.Workers when
// positive, else one worker per available CPU.
func (c *Checker) workers() int {
	if c.opts.Workers > 0 {
		return c.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel executes fn(i) for i in [0,n) on at most w goroutines.
// Indexes are handed out by an atomic counter, so fast tasks steal work
// from slow ones; with w<=1 (or a single task) it degrades to the plain
// serial loop, keeping the workers=1 configuration byte-for-byte
// equivalent to the pre-pool pipeline.
func runParallel(n, w int, fn func(int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
