package core

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// TestResidualTraceEvents pins the trace shape of residual dispatch: one
// decided phase event per constraint, phase "residual", carrying the
// pattern-cache status (miss on first sight, hit on repeats) and the
// verdict — the :explain surface ccshell renders.
func TestResidualTraceEvents(t *testing.T) {
	buf := obs.NewBufferTracer(8)
	c := newChecker(t, "emp(ann,toy,50). dept(toy).", Options{Tracer: buf})
	for _, k := range []struct{ name, src string }{
		{"ri", "panic :- emp(E,D,S) & not dept(D)."},
		{"cap", "panic :- emp(E,D,S) & S > 100."},
	} {
		if err := c.AddConstraintSource(k.name, k.src); err != nil {
			t.Fatal(err)
		}
	}
	find := func(ev []obs.Event, constraint string) obs.Event {
		t.Helper()
		for _, e := range ev {
			if e.Kind == obs.KindPhase && e.Constraint == constraint {
				return e
			}
		}
		t.Fatalf("no phase event for %s in %v", constraint, ev)
		return obs.Event{}
	}

	// Cold pattern: both constraints decided by a freshly compiled
	// residual.
	if _, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60)))); err != nil {
		t.Fatal(err)
	}
	ev := buf.Last()
	for _, name := range []string{"ri", "cap"} {
		e := find(ev, name)
		if e.Phase != "residual" || !e.Decided || e.Verdict != "holds" || e.Cache != obs.CacheMiss {
			t.Errorf("cold %s event = %+v, want decided residual holds/miss", name, e)
		}
	}

	// Warm pattern: same relation and polarity, different tuple — served
	// from the pattern cache.
	if _, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("cid"), ast.Str("toy"), ast.Int(70)))); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ri", "cap"} {
		if e := find(buf.Last(), name); e.Cache != obs.CacheHit {
			t.Errorf("warm %s cache = %q, want hit", name, e.Cache)
		}
	}

	// A violation carries the VIOLATED verdict and the rejection bracket.
	rep, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("toy"), ast.Int(500))))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating update applied")
	}
	ev = buf.Last()
	if e := find(ev, "cap"); e.Verdict != "VIOLATED" {
		t.Errorf("violating cap event = %+v", e)
	}
	end := ev[len(ev)-1]
	if end.Kind != obs.KindUpdateEnd || end.Applied || len(end.Rejected) != 1 || end.Rejected[0] != "cap" {
		t.Errorf("end event = %+v, want rejected [cap]", end)
	}
}

// TestResidualMetrics: the cc_residual_* gauges mirror the cache
// counters and residual decisions land in the decisions_total family.
func TestResidualMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	// emp exists up front so the first Apply does not bump the schema
	// version (which would cost one extra compilation).
	c := newChecker(t, "dept(toy). emp(x,toy,1).", Options{Metrics: reg})
	if err := c.AddConstraintSource("cap", "panic :- emp(E,D,S) & S > 100."); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if _, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("e"), ast.Str("toy"), ast.Int(i)))); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`cc_checker_decisions_total{phase="residual"} 3`,
		"cc_residual_hits 2",
		"cc_residual_misses 1",
		"cc_residual_compiled 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
