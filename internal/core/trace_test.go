package core

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// traceChecker builds the standard tracing fixture: three constraints
// whose deciding phases span the whole pipeline, with l the only
// partially-remote constraint (r lives elsewhere).
func traceChecker(t *testing.T, tracer obs.Tracer, reg *obs.Registry) *Checker {
	t.Helper()
	c := newChecker(t,
		"emp(ann,toy,50). dept(toy). l(3,6). l(5,10). r(100).",
		Options{
			LocalRelations: []string{"l", "emp", "dept"},
			Tracer:         tracer,
			Metrics:        reg,
			// These tests pin the staged pipeline's event stream; the
			// residual trace has its own test in residual_trace_test.go.
			DisableResidual: true,
		})
	for _, k := range []struct{ name, src string }{
		{"ri", "panic :- emp(E,D,S) & not dept(D)."},
		{"cap", "panic :- emp(E,D,S) & S > 100."},
		{"fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."},
	} {
		if err := c.AddConstraintSource(k.name, k.src); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// attempts extracts the (constraint, phase, decided) triples of the
// phase events in emission order.
func attempts(events []obs.Event) []string {
	var out []string
	for _, e := range events {
		if e.Kind != obs.KindPhase {
			continue
		}
		s := e.Constraint + "/" + e.Phase
		if e.Decided {
			s += "!"
		}
		out = append(out, s)
	}
	return out
}

func TestTraceCoversAllPhases(t *testing.T) {
	buf := obs.NewBufferTracer(8)
	c := traceChecker(t, buf, nil)

	apply := func(u store.Update) []obs.Event {
		t.Helper()
		rep, err := c.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Applied {
			t.Fatalf("update %v rejected", u)
		}
		return buf.Last()
	}

	// Insert into dept: ri decided by polarity, the others unaffected.
	ev := apply(store.Ins("dept", relation.Strs("shoe")))
	want := []string{"ri/unaffected", "ri/polarity!", "cap/unaffected!", "fi/unaffected!"}
	if got := attempts(ev); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("dept-insert attempts = %v, want %v", got, want)
	}

	// Insert a low-paid employee: cap certified update-only, ri needs the
	// global phase (negation), fi unaffected. The global event trails the
	// stage-one attempts of every constraint.
	ev = apply(store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60))))
	want = []string{
		"ri/unaffected", "ri/polarity", "ri/update-only",
		"cap/unaffected", "cap/polarity", "cap/update-only!",
		"fi/unaffected!",
		"ri/global!",
	}
	if got := attempts(ev); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("emp-insert attempts = %v, want %v", got, want)
	}
	// The global event names the phase's verdict; stage-one attempts never
	// carry VIOLATED.
	last := ev[len(ev)-2]
	if last.Phase != "global" || last.Verdict != "holds" {
		t.Errorf("global event = %+v", last)
	}

	// Covered interval insertion: fi decided from local data alone, after
	// the cheaper phases fail.
	ev = apply(store.Ins("l", relation.Ints(4, 8)))
	want = []string{
		"ri/unaffected!", "cap/unaffected!",
		"fi/unaffected", "fi/polarity", "fi/update-only", "fi/local-data!",
	}
	if got := attempts(ev); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("l-insert attempts = %v, want %v", got, want)
	}
}

func TestTraceBracketsAndSequence(t *testing.T) {
	buf := obs.NewBufferTracer(8)
	c := traceChecker(t, buf, nil)
	for _, u := range []store.Update{
		store.Ins("dept", relation.Strs("shoe")),
		store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60))),
	} {
		if _, err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	all := buf.All()
	if all[0].Kind != obs.KindUpdateBegin || all[0].Constraints != 3 {
		t.Errorf("first event = %+v, want update-begin over 3 constraints", all[0])
	}
	var seq uint64
	begins, ends := 0, 0
	for _, e := range all {
		if e.Seq <= seq {
			t.Fatalf("sequence not strictly increasing at %+v", e)
		}
		seq = e.Seq
		switch e.Kind {
		case obs.KindUpdateBegin:
			begins++
		case obs.KindUpdateEnd:
			ends++
			if !e.Applied {
				t.Errorf("benign update traced as rejected: %+v", e)
			}
		case obs.KindPhase:
			if e.Constraint == "" || e.Phase == "" {
				t.Errorf("phase event missing identity: %+v", e)
			}
		}
	}
	if begins != 2 || ends != 2 {
		t.Errorf("got %d begins / %d ends, want 2 / 2", begins, ends)
	}
	if u := all[0].Update; u != "+dept(shoe)" {
		t.Errorf("update rendered %q", u)
	}
}

func TestTraceCacheTransitions(t *testing.T) {
	buf := obs.NewBufferTracer(8)
	c := traceChecker(t, buf, nil)

	find := func(ev []obs.Event, constraint, phase string) obs.Event {
		t.Helper()
		for _, e := range ev {
			if e.Kind == obs.KindPhase && e.Constraint == constraint && e.Phase == phase {
				return e
			}
		}
		t.Fatalf("no %s/%s event in %v", constraint, phase, attempts(ev))
		return obs.Event{}
	}

	// First employee insert: decision-cache entry and phase-2 memo are
	// both cold.
	if _, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60)))); err != nil {
		t.Fatal(err)
	}
	ev := buf.Last()
	if e := find(ev, "cap", "unaffected"); e.Cache != obs.CacheMiss {
		t.Errorf("cold entry cache = %q, want miss", e.Cache)
	}
	if e := find(ev, "cap", "update-only"); e.Cache != obs.CacheMiss {
		t.Errorf("cold phase-2 cache = %q, want miss", e.Cache)
	}

	// A second insert agreeing on the verdict-relevant position (the
	// salary) hits both layers.
	if _, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("cid"), ast.Str("toy"), ast.Int(60)))); err != nil {
		t.Fatal(err)
	}
	ev = buf.Last()
	if e := find(ev, "cap", "unaffected"); e.Cache != obs.CacheHit {
		t.Errorf("warm entry cache = %q, want hit", e.Cache)
	}
	if e := find(ev, "cap", "update-only"); e.Cache != obs.CacheHit {
		t.Errorf("warm phase-2 cache = %q, want hit", e.Cache)
	}

	// With the cache disabled the events say so instead of guessing.
	c2 := traceChecker(t, buf, nil)
	c2.opts.DisableCache = true
	if _, err := c2.Apply(store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60)))); err != nil {
		t.Fatal(err)
	}
	if e := find(buf.Last(), "cap", "unaffected"); e.Cache != obs.CacheOff {
		t.Errorf("disabled cache = %q, want off", e.Cache)
	}
}

func TestTraceRejectedUpdate(t *testing.T) {
	buf := obs.NewBufferTracer(8)
	c := traceChecker(t, buf, nil)
	rep, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("toy"), ast.Int(200))))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating update applied")
	}
	ev := buf.Last()
	end := ev[len(ev)-1]
	if end.Kind != obs.KindUpdateEnd || end.Applied || len(end.Rejected) != 1 || end.Rejected[0] != "cap" {
		t.Errorf("end event = %+v, want rejected [cap]", end)
	}
	var sawViolation bool
	for _, e := range ev {
		if e.Kind == obs.KindPhase && e.Constraint == "cap" && e.Phase == "global" {
			sawViolation = e.Decided && e.Verdict == "VIOLATED"
		}
	}
	if !sawViolation {
		t.Errorf("no VIOLATED global event for cap in %v", attempts(ev))
	}
}

func TestTraceRemoteRelations(t *testing.T) {
	buf := obs.NewBufferTracer(8)
	c := traceChecker(t, buf, nil)
	// Uncovered but harmless interval: fi reaches the global phase, whose
	// event lists the remote relation the evaluation consulted.
	rep, err := c.Apply(store.Ins("l", relation.Ints(40, 50)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatal("harmless interval rejected")
	}
	for _, e := range buf.Last() {
		if e.Kind == obs.KindPhase && e.Constraint == "fi" && e.Phase == "global" {
			if len(e.Relations) != 1 || e.Relations[0] != "r" {
				t.Errorf("remote relations = %v, want [r]", e.Relations)
			}
			return
		}
	}
	t.Fatal("no global event for fi")
}

func TestCheckerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := traceChecker(t, nil, reg)
	if _, err := c.Apply(store.Ins("dept", relation.Strs("shoe"))); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("toy"), ast.Int(200)))); err != nil || rep.Applied {
		t.Fatalf("rep=%+v err=%v, want clean rejection", rep, err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"cc_checker_updates_total 2",
		"cc_checker_rejected_total 1",
		`cc_checker_decisions_total{phase="unaffected"} 3`,
		`cc_checker_decisions_total{phase="polarity"} 1`,
		`cc_checker_decisions_total{phase="global"} 2`,
		"cc_checker_apply_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The registry and the checker's own stats must agree.
	s := c.Stats()
	if s.Updates != 2 || s.Rejected != 1 || s.ByPhase[PhaseGlobal] != 2 {
		t.Errorf("stats diverged from metrics: %+v", s)
	}
}
