package core

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// residualPair builds two checkers over identical stores and constraint
// sets: one with residual dispatch (the default), one forced onto the
// staged pipeline.
func residualPair(t *testing.T, seed int64) (res, pipe *Checker) {
	t.Helper()
	mk := func(disable bool) *Checker {
		rng := rand.New(rand.NewSource(seed))
		db := store.New()
		if err := workload.EmployeeDB(rng, db, 4, 25); err != nil {
			t.Fatal(err)
		}
		c := New(db, Options{LocalRelations: []string{"emp", "dept"}, DisableResidual: disable})
		for name, src := range workload.StandardEmployeeConstraints() {
			if err := c.AddConstraintSource(name, src); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return mk(false), mk(true)
}

// TestResidualMatchesPipeline drives the same randomized employee stream
// through residual dispatch and the staged pipeline; every verdict and
// the final stores must agree — the A/B contract of ccheck -noresidual.
func TestResidualMatchesPipeline(t *testing.T) {
	for _, seed := range []int64{3, 19, 57} {
		res, pipe := residualPair(t, seed)
		rng := rand.New(rand.NewSource(seed + 100))
		residualDecisions := 0
		for _, u := range workload.EmployeeUpdates(rng, 120, 4, 0.25) {
			ra, err := res.Apply(u)
			if err != nil {
				t.Fatalf("seed %d, residual arm %v: %v", seed, u, err)
			}
			rb, err := pipe.Apply(u)
			if err != nil {
				t.Fatalf("seed %d, pipeline arm %v: %v", seed, u, err)
			}
			if ra.Applied != rb.Applied {
				t.Fatalf("seed %d %v: residual applied=%v pipeline=%v", seed, u, ra.Applied, rb.Applied)
			}
			va, vb := ra.Violations(), rb.Violations()
			if len(va) != len(vb) {
				t.Fatalf("seed %d %v: violations %v vs %v", seed, u, va, vb)
			}
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("seed %d %v: violations %v vs %v", seed, u, va, vb)
				}
			}
			for _, d := range ra.Decisions {
				if d.Phase == PhaseResidual {
					residualDecisions++
				}
			}
		}
		if residualDecisions == 0 {
			t.Errorf("seed %d: residual dispatch never engaged", seed)
		}
		if rs, ps := res.Stats(), pipe.Stats(); rs.ByPhase[PhaseResidual] == 0 || ps.ByPhase[PhaseResidual] != 0 {
			t.Errorf("seed %d: phase mix wrong: residual arm %v, pipeline arm %v", seed, rs.ByPhase, ps.ByPhase)
		}
		for _, rel := range res.DB().Names() {
			ra, rb := res.DB().Relation(rel), pipe.DB().Relation(rel)
			if rb == nil || !ra.Equal(rb) {
				t.Errorf("seed %d: relation %s diverged", seed, rel)
			}
		}
	}
}

// TestResidualStatsAndInvalidate pins the counter plumbing: a repeated
// pattern hits the cache, constraint-set changes flush it, and
// ResetStats zeroes every counter family without dropping entries.
func TestResidualStatsAndInvalidate(t *testing.T) {
	// emp exists up front: the first Apply would otherwise create the
	// relation, bump the schema version, and force one extra compile.
	c := newChecker(t, "dept(toy). emp(x,toy,1).", Options{})
	if err := c.AddConstraintSource("cap", "panic :- emp(E,D,S) & S > 100."); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if rep, err := c.Apply(store.Ins("emp", relation.TupleOf(ast.Str("e"), ast.Str("toy"), ast.Int(i)))); err != nil || !rep.Applied {
			t.Fatalf("benign insert %d: %+v %v", i, rep, err)
		}
	}
	st := c.Stats()
	if st.ByPhase[PhaseResidual] != 6 {
		t.Fatalf("phase mix %v, want 6 residual decisions", st.ByPhase)
	}
	if st.ResidualCompiled != 1 || st.ResidualHits != 5 || st.ResidualEntries != 1 {
		t.Errorf("residual counters %+v, want compiled=1 hits=5 entries=1", st)
	}
	// AddConstraint flushes the pattern cache (program pointers may be
	// reused) — entries drop, counters keep the lifetime totals.
	if err := c.AddConstraintSource("cap2", "panic :- emp(E,D,S) & S > 1000."); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.ResidualEntries != 0 {
		t.Errorf("AddConstraint left %d cached residuals", st.ResidualEntries)
	}
	c.ResetStats()
	st = c.Stats()
	if st.Updates != 0 || st.ResidualHits != 0 || st.ResidualMisses != 0 || st.ResidualCompiled != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
	if st.PlanHits != 0 || st.PlanMisses != 0 || st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("ResetStats left cache counters %+v", st)
	}
}

// TestResidualRejectsAndRollsBack: a violating update caught by the
// residual phase must roll back exactly like a global-phase rejection.
func TestResidualRejectsAndRollsBack(t *testing.T) {
	c := newChecker(t, "emp(ann,toy,50). dept(toy).", Options{})
	for name, src := range map[string]string{
		"ri":  "panic :- emp(E,D,S) & not dept(D).",
		"cap": "panic :- emp(E,D,S) & S > 100.",
	} {
		if err := c.AddConstraintSource(name, src); err != nil {
			t.Fatal(err)
		}
	}
	over := relation.TupleOf(ast.Str("eve"), ast.Str("toy"), ast.Int(900))
	rep, err := c.Apply(store.Ins("emp", over))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatal("violating update applied")
	}
	if got := rep.Violations(); len(got) != 1 || got[0] != "cap" {
		t.Fatalf("violations = %v", got)
	}
	for _, d := range rep.Decisions {
		if d.Constraint == "cap" && d.Phase != PhaseResidual {
			t.Errorf("cap decided by %v, want residual", d.Phase)
		}
	}
	if c.DB().Contains("emp", over) {
		t.Error("rolled-back tuple still present")
	}
	if bad, _ := c.CheckAll(); len(bad) != 0 {
		t.Errorf("CheckAll after rollback: %v", bad)
	}
}
