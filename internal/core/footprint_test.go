package core

import (
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/store"
)

func TestFootprintsFollowConstraintSet(t *testing.T) {
	db := store.New()
	c := New(db, Options{})
	if !c.ConcurrentApplySafe() {
		t.Fatal("default checker should admit concurrent applies")
	}
	if err := c.AddConstraintSource("fi", `panic :- l(X, Y) & r(Z) & X <= Z & Z <= Y.`); err != nil {
		t.Fatal(err)
	}
	ix := c.Footprints()
	f := ix.Update(store.Ins("l", relation.Ints(1, 5)))
	if !reflect.DeepEqual(f.Reads, []sched.Read{{Relation: "r", Shard: sched.WholeRelation}}) {
		t.Fatalf("residual-eligible insert reads = %v, want [r]", f.Reads)
	}

	// Adding a constraint must invalidate the memoized index: the new
	// index sees the wider read set.
	if err := c.AddConstraintSource("excl", `panic :- l(X, Y) & s(X).`); err != nil {
		t.Fatal(err)
	}
	ix2 := c.Footprints()
	if ix2 == ix {
		t.Fatal("Footprints index not invalidated by AddConstraint")
	}
	f2 := ix2.Update(store.Ins("l", relation.Ints(1, 5)))
	if !reflect.DeepEqual(f2.Reads, []sched.Read{{Relation: "r", Shard: sched.WholeRelation}, {Relation: "s", Shard: sched.WholeRelation}}) {
		t.Fatalf("reads after new constraint = %v, want [r s]", f2.Reads)
	}
}

func TestConcurrentApplySafeIncremental(t *testing.T) {
	c := New(store.New(), Options{Incremental: true})
	if c.ConcurrentApplySafe() {
		t.Fatal("incremental mode must refuse concurrent applies: materialization notification is unsynchronized")
	}
}
