package active

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func TestSimpleFiring(t *testing.T) {
	db := store.New()
	e := NewEngine(db)
	// When an employee is in a missing department, record an alert.
	if err := e.AddRule("missing-dept",
		"panic :- emp(E,D) & not dept(D).",
		InsertAction(store.Ins("alert", relation.Strs("missing-dept")))); err != nil {
		t.Fatal(err)
	}
	fired, err := e.Apply(store.Ins("emp", relation.Strs("ann", "ghost")))
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "missing-dept" {
		t.Fatalf("fired = %v", fired)
	}
	if !db.Contains("alert", relation.Strs("missing-dept")) {
		t.Error("action not applied")
	}
}

func TestTriggeringFilterSkipsIrrelevant(t *testing.T) {
	db := store.New()
	e := NewEngine(db)
	if err := e.AddRule("high-salary",
		"panic :- emp(E,D,S) & S > 100.", nil); err != nil {
		t.Fatal(err)
	}
	// Updates to an unrelated relation never evaluate the condition.
	if _, err := e.Apply(store.Ins("dept", relation.Strs("toy"))); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RuleEvaluations; got != 0 {
		t.Errorf("unrelated update evaluated the condition %d times", got)
	}
	// A low-salary hire is provably independent (the Section 4 filter).
	if _, err := e.Apply(store.Ins("emp", relation.TupleOf(
		relation.Strs("bob")[0], relation.Strs("toy")[0], relation.Ints(50)[0]))); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RuleEvaluations; got != 0 {
		t.Errorf("independent update evaluated the condition %d times", got)
	}
	// A high-salary hire passes the filter and fires.
	fired, err := e.Apply(store.Ins("emp", relation.TupleOf(
		relation.Strs("eve")[0], relation.Strs("toy")[0], relation.Ints(500)[0])))
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Errorf("fired = %v", fired)
	}
	if got := e.Stats().RuleEvaluations; got != 1 {
		t.Errorf("RuleEvaluations = %d, want 1", got)
	}
}

func TestCascade(t *testing.T) {
	db := store.New()
	e := NewEngine(db)
	// r1: a raw event produces a stage1 fact; r2: stage1 produces stage2.
	if err := e.AddRule("r1", "panic :- raw(X).",
		InsertAction(store.Ins("stage1", relation.Ints(1)))); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule("r2", "panic :- stage1(X).",
		InsertAction(store.Ins("stage2", relation.Ints(2)))); err != nil {
		t.Fatal(err)
	}
	fired, err := e.Apply(store.Ins("raw", relation.Ints(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) < 2 {
		t.Fatalf("cascade fired = %v", fired)
	}
	if !db.Contains("stage2", relation.Ints(2)) {
		t.Error("cascaded action missing")
	}
}

func TestNonQuiescentCascadeBounded(t *testing.T) {
	db := store.New()
	e := NewEngine(db)
	e.MaxRounds = 5
	// A rule that keeps feeding itself with fresh tuples would loop
	// forever; the engine must stop and report.
	n := int64(0)
	if err := e.AddRule("loop", "panic :- ping(X).",
		func(*store.Store) ([]store.Update, error) {
			n++
			return []store.Update{store.Ins("ping", relation.Ints(n))}, nil
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(store.Ins("ping", relation.Ints(-1))); err == nil {
		t.Error("non-quiescent cascade not reported")
	}
}

func TestDeletionQuiesces(t *testing.T) {
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram("emp(ann,ghost).")); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	// Deleting the offending tuple cures the condition: one firing, then
	// quiescence.
	if err := e.AddRule("cure", "panic :- emp(E,D) & not dept(D).",
		func(s *store.Store) ([]store.Update, error) {
			return []store.Update{store.Del("emp", relation.Strs("ann", "ghost"))}, nil
		}); err != nil {
		t.Fatal(err)
	}
	fired, err := e.Apply(store.Ins("emp", relation.Strs("bob", "ghost")))
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) == 0 {
		t.Fatal("rule never fired")
	}
	// The cure deletes ann; bob remains offending — the rule fires again
	// but its action targets ann only, so the database stays offending
	// and the cascade... the second firing's deletion is a no-op, no new
	// updates, so the engine quiesces despite the condition still holding
	// (condition-holds ≠ livelock: rules fire per update round).
	if db.Contains("emp", relation.Strs("ann", "ghost")) {
		t.Error("cure did not delete")
	}
}

func TestAddRuleValidation(t *testing.T) {
	e := NewEngine(store.New())
	if err := e.AddRule("bad", "q(X) :- p(X).", nil); err == nil {
		t.Error("condition without panic accepted")
	}
	if err := e.AddRule("syntax", "panic :- ", nil); err == nil {
		t.Error("syntax error accepted")
	}
}
