// Package active implements the paper's second application (Section 2,
// "Applications"): active databases, where rules of the form "if C holds,
// then perform action A" are viewed as constraints panic :- C whose panic
// derivation triggers A. Unlike ordinary constraint maintenance, the
// conditions cannot be assumed to hold (i.e. be unviolated) before an
// action fires — actions are what cause updates in the first place — so
// the engine uses the partial-information machinery differently: the
// Section 4 rewriting serves as a *triggering filter* that discards
// updates provably irrelevant to a rule's condition, and full evaluation
// runs only for the rules that survive.
package active

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/rewrite"
	"repro/internal/store"
	"repro/internal/subsume"
)

// Action is the consequence of a fired rule: updates to apply, computed
// from the bindings that made the condition true. For 0-ary conditions
// the bindings slice is empty.
type Action func(db *store.Store) ([]store.Update, error)

// Rule is a production rule: when Condition (a constraint program with
// goal panic) holds, Action fires.
type Rule struct {
	Name      string
	Condition *ast.Program
	Action    Action
}

// Engine manages production rules over a store.
type Engine struct {
	db    *store.Store
	rules []*Rule
	// MaxRounds bounds cascaded firing (active rules may trigger each
	// other; the paper notes that unlike constraint maintenance no
	// quiescence assumption is available).
	MaxRounds int
	stats     Stats
}

// Stats counts triggering-filter effectiveness.
type Stats struct {
	UpdatesSeen     int
	RuleEvaluations int // conditions evaluated in full
	FilteredOut     int // (rule, update) pairs discarded by the filter
	Firings         int
	Rounds          int
}

// NewEngine creates an engine over db.
func NewEngine(db *store.Store) *Engine {
	return &Engine{db: db, MaxRounds: 64}
}

// Stats returns the accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// AddRule registers a production rule; the condition must be a valid
// constraint program.
func (e *Engine) AddRule(name, conditionSrc string, action Action) error {
	prog, err := parser.ParseProgram(conditionSrc)
	if err != nil {
		return err
	}
	if len(prog.RulesFor(ast.PanicPred)) == 0 {
		return fmt.Errorf("active: rule %s condition has no %s rule", name, ast.PanicPred)
	}
	if err := prog.Validate(); err != nil {
		return err
	}
	e.rules = append(e.rules, &Rule{Name: name, Condition: prog, Action: action})
	return nil
}

// relevant reports whether the update could possibly change the rule's
// condition from false to true. It is the active-database use of the
// Section 4 machinery: rewrite the condition for the update and check
// that the rewritten condition is contained in the original AND vice
// versa — equivalence means the update cannot affect the condition at
// all ("query independent of update", Elkan [1990]). Because conditions
// cannot be assumed unviolated beforehand, one-sided subsumption is not
// enough here; only full independence filters.
func relevant(r *Rule, u store.Update) bool {
	if !mentions(r.Condition, u.Relation) {
		return false
	}
	cPrime, err := rewrite.Rewrite(r.Condition, u)
	if err != nil {
		return true // cannot decide: stay conservative
	}
	fwd, err1 := subsume.Subsumes(cPrime, []*ast.Program{r.Condition})
	bwd, err2 := subsume.Subsumes(r.Condition, []*ast.Program{cPrime})
	if err1 != nil || err2 != nil {
		return true
	}
	independent := fwd.Verdict == subsume.Yes && bwd.Verdict == subsume.Yes
	return !independent
}

func mentions(prog *ast.Program, rel string) bool {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return true
			}
		}
	}
	return false
}

// Apply applies the update, then runs rule processing to quiescence (or
// MaxRounds): in each round, every rule whose condition might have been
// affected by the pending updates is evaluated, and the actions of the
// rules whose conditions hold fire, producing further updates. It
// returns the names of the rules fired, in firing order.
func (e *Engine) Apply(u store.Update) ([]string, error) {
	e.stats.UpdatesSeen++
	changed, err := e.applyChanged(u)
	if err != nil {
		return nil, err
	}
	var pending []store.Update
	if changed {
		pending = append(pending, u)
	}
	var fired []string
	for round := 0; round < e.MaxRounds && len(pending) > 0; round++ {
		e.stats.Rounds++
		// Which rules survive the triggering filter for any pending update?
		candidates := map[*Rule]bool{}
		for _, r := range e.rules {
			for _, pu := range pending {
				if relevant(r, pu) {
					candidates[r] = true
					break
				}
				e.stats.FilteredOut++
			}
		}
		pending = nil
		for _, r := range e.rules {
			if !candidates[r] {
				continue
			}
			e.stats.RuleEvaluations++
			holds, err := eval.PanicHolds(r.Condition, e.db)
			if err != nil {
				return fired, err
			}
			if !holds {
				continue
			}
			e.stats.Firings++
			fired = append(fired, r.Name)
			if r.Action == nil {
				continue
			}
			updates, err := r.Action(e.db)
			if err != nil {
				return fired, fmt.Errorf("active: rule %s action: %w", r.Name, err)
			}
			for _, au := range updates {
				// Only updates that actually change the store propagate:
				// a no-op action must not re-trigger the cascade.
				ch, err := e.applyChanged(au)
				if err != nil {
					return fired, err
				}
				if ch {
					pending = append(pending, au)
				}
			}
		}
	}
	if len(pending) > 0 {
		return fired, fmt.Errorf("active: rule cascade did not quiesce within %d rounds", e.MaxRounds)
	}
	return fired, nil
}

// applyChanged applies u and reports whether the store changed.
func (e *Engine) applyChanged(u store.Update) (bool, error) {
	if u.Insert {
		return e.db.Insert(u.Relation, u.Tuple)
	}
	return e.db.Delete(u.Relation, u.Tuple), nil
}

// InsertAction returns an Action inserting fixed tuples.
func InsertAction(updates ...store.Update) Action {
	return func(*store.Store) ([]store.Update, error) { return updates, nil }
}
