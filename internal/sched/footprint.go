// Package sched schedules constraint-checked updates for concurrent
// apply. The paper's locality result — most updates are decided from a
// small footprint of the database — has a scheduling corollary: two
// updates whose footprints are disjoint commute, so they may be checked
// and applied in parallel without changing any verdict or the final
// store state. This package computes those footprints symbolically from
// the constraint set (the same update-pattern analysis internal/residual
// compiles from) and runs a conflict-aware worker pool that dispatches
// independent updates concurrently while serializing conflicting ones in
// admission order. The result is serializable in admission order:
// verdicts and final state are identical to a single worker applying the
// same stream sequentially.
package sched

import (
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/relation"
	"repro/internal/residual"
	"repro/internal/store"
)

// WholeRelation is the shard id meaning "the whole relation": an
// unsharded relation, or a read that may range over every shard.
const WholeRelation = -1

// Sharder resolves hash-partitioned relations for footprint refinement.
// netdist.Placement implements it; a nil Sharder (the default) treats
// every relation as whole, which recovers the relation-granular
// footprints of the unsharded deployment exactly.
type Sharder interface {
	// ShardKey returns the shard-key column of rel and ok=true when rel
	// is hash-partitioned across more than one shard; ok=false for whole
	// relations.
	ShardKey(rel string) (col int, ok bool)
	// ShardOf returns the shard index owning the given key value. Only
	// called for relations ShardKey reported sharded.
	ShardOf(rel string, key ast.Value) int
}

// Write is one tuple-level write: the relation plus the tuple's interned
// projection fingerprint, plus the shard the tuple lands on
// (WholeRelation when the relation is unsharded). Two writes to the same
// relation with different fingerprints are disjoint under set semantics
// (insert/delete of different tuples commute); same-fingerprint writes
// conflict because insert-then-delete and delete-then-insert diverge.
type Write struct {
	Relation string
	FP       uint64
	Shard    int
}

// Read is one read claim: a relation plus the shard the read is confined
// to, or WholeRelation when the read may range over every shard. Reads
// of different shards of one relation do not conflict with writes to the
// others, which is what lets same-relation updates on different shards
// pipeline.
type Read struct {
	Relation string
	Shard    int
}

// Footprint is the read/write set of one scheduled task. Reads are
// relation- or shard-granular — the data an update's check may consult;
// finer (tuple-level) refinement of reads is unsound because a residual
// probe ranges over its whole key group. Writes are tuple-level. A
// Barrier footprint conflicts with everything (used for batches that
// must see a quiescent store, stats snapshots, and unknown update
// patterns).
type Footprint struct {
	Barrier bool
	Writes  []Write
	Reads   []Read
}

// Union merges o into f (set semantics); used to footprint atomic
// batches as a single task.
func (f Footprint) Union(o Footprint) Footprint {
	out := Footprint{Barrier: f.Barrier || o.Barrier}
	seenW := map[Write]bool{}
	for _, w := range append(append([]Write{}, f.Writes...), o.Writes...) {
		if !seenW[w] {
			seenW[w] = true
			out.Writes = append(out.Writes, w)
		}
	}
	seenR := map[Read]bool{}
	for _, r := range append(append([]Read{}, f.Reads...), o.Reads...) {
		if !seenR[r] {
			seenR[r] = true
			out.Reads = append(out.Reads, r)
		}
	}
	sortReads(out.Reads)
	return out
}

func sortReads(rs []Read) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Relation != rs[j].Relation {
			return rs[i].Relation < rs[j].Relation
		}
		return rs[i].Shard < rs[j].Shard
	})
}

// Barrier returns a footprint that conflicts with every other task.
func Barrier() Footprint { return Footprint{Barrier: true} }

// shardsOverlap reports whether two shard claims can touch the same
// data: either side claiming the whole relation overlaps everything.
func shardsOverlap(a, b int) bool {
	return a == WholeRelation || b == WholeRelation || a == b
}

// Conflicts reports whether the two footprints may not be reordered:
// either is a barrier, they write the same tuple of the same relation
// (WW), or one writes a shard of a relation the other reads (RW/WR).
// Read/read overlap is not a conflict, and neither is a write to one
// shard against a read confined to a different shard of the same
// relation.
func (f Footprint) Conflicts(o Footprint) bool {
	if f.Barrier || o.Barrier {
		return true
	}
	for _, w := range f.Writes {
		for _, x := range o.Writes {
			if w.Relation == x.Relation && w.FP == x.FP {
				return true
			}
		}
		for _, r := range o.Reads {
			if w.Relation == r.Relation && shardsOverlap(w.Shard, r.Shard) {
				return true
			}
		}
	}
	for _, w := range o.Writes {
		for _, r := range f.Reads {
			if w.Relation == r.Relation && shardsOverlap(w.Shard, r.Shard) {
				return true
			}
		}
	}
	return false
}

// IndexOptions mirror the backing checker's A/B switches, because the
// read set of an update is exactly the data the checker's enabled phases
// may consult for it.
type IndexOptions struct {
	// Residual: the checker dispatches eligible update patterns to
	// compiled residuals, which read only the harmful-occurrence
	// disjunct bodies. Off, every undecided pattern may reach phase 3 /
	// global evaluation, which read every stored relation the constraint
	// mentions (including the updated one).
	Residual bool
	// Polarity: phase 1.5 is enabled (core.Options.DisableUpdateOnly
	// unset), so monotone-safe patterns are decided without reading any
	// data.
	Polarity bool
	// Sharder, when non-nil, refines footprints to shard granularity:
	// writes carry the written tuple's shard, and residual reads whose
	// probe key is pinned by the update tuple are confined to the owning
	// shard. Nil keeps relation-granular footprints.
	Sharder Sharder
}

// readKind classifies one symbolic read claim of an update pattern.
type readKind int

const (
	// readWhole: the read may range over the whole relation.
	readWhole readKind = iota
	// readKeyAt: a residual probe whose shard-key value is the update
	// tuple's keyPos-th component.
	readKeyAt
	// readKeyConst: a residual probe whose shard-key value is a constant
	// baked into the constraint.
	readKeyConst
)

// readSpec is one symbolic read of an update pattern, derived once per
// (relation, polarity) and instantiated per concrete tuple. Keyed specs
// come only from the residual analysis: the harmful occurrence binds the
// probed literal's shard-key argument to a fixed tuple position (or a
// constant), exactly mirroring residual.Compile's substitution, so the
// instantiated shard covers every probe the residual VM will issue for
// the tuple. general marks the conservative phase-3/global fallback
// claim, which an evaluation-level probe router serves rather than the
// residual VM — the distinction is what lets a coordinator skip mirror
// refreshes for router-served relations (see ReadPlan).
type readSpec struct {
	rel     string
	kind    readKind
	keyPos  int       // readKeyAt: position in the update tuple
	keyVal  ast.Value // readKeyConst: the baked constant
	occAr   int       // keyed specs: occurrence arity; applies only to tuples of this arity
	general bool      // whole specs: true when from the non-residual fallback
}

// Index derives and memoizes footprints per update pattern (relation +
// polarity) for a fixed constraint set. Safe for concurrent use. A
// checker whose constraint set changes must discard its index (see
// core.Checker.Footprints).
type Index struct {
	progs []*ast.Program
	opts  IndexOptions

	mu   sync.RWMutex
	memo map[patKey][]readSpec
}

type patKey struct {
	rel    string
	insert bool
}

// NewIndex builds a footprint index over the constraint programs.
func NewIndex(progs []*ast.Program, opts IndexOptions) *Index {
	return &Index{progs: progs, opts: opts, memo: map[patKey][]readSpec{}}
}

// Update footprints a single update: one tuple-level write plus the
// union over all constraints of the data the update's check may read,
// instantiated to shard granularity when a Sharder is attached.
func (ix *Index) Update(u store.Update) Footprint {
	w := Write{Relation: u.Relation, FP: u.Tuple.Fingerprint(), Shard: WholeRelation}
	if sh := ix.opts.Sharder; sh != nil {
		if kc, ok := sh.ShardKey(u.Relation); ok && kc < len(u.Tuple) {
			w.Shard = sh.ShardOf(u.Relation, u.Tuple[kc])
		}
	}
	return Footprint{
		Writes: []Write{w},
		Reads:  ix.readsFor(u),
	}
}

// Batch footprints a set of updates checked and applied as one atomic
// task.
func (ix *Index) Batch(us []store.Update) Footprint {
	var f Footprint
	for _, u := range us {
		f = f.Union(ix.Update(u))
	}
	return f
}

// ReadPlan classifies how one update's check reads each relation, for a
// coordinator deciding what to refresh before the check. Only relations
// some spec claims appear; the three views may overlap (one constraint
// probes by key while another scans).
type ReadPlan struct {
	// Keys maps a relation to the exact shard-key values the residual
	// path probes it with — set only when a Sharder is attached and the
	// relation is sharded. A refresh that ships just those key groups
	// makes the local mirror exactly as fresh as the residual VM needs.
	Keys map[string][]ast.Value
	// Mirror marks relations the residual path may range over wholly:
	// the local mirror must be refreshed in full before the check.
	Mirror map[string]bool
	// Eval marks relations claimed only through phase-3/global
	// evaluation, which an evaluation-level probe router can serve
	// remotely at probe time — no mirror refresh required for them.
	Eval map[string]bool
}

// ReadPlan instantiates the update pattern's symbolic read specs against
// the concrete tuple.
func (ix *Index) ReadPlan(u store.Update) ReadPlan {
	rp := ReadPlan{Keys: map[string][]ast.Value{}, Mirror: map[string]bool{}, Eval: map[string]bool{}}
	seenKey := map[string]map[string]bool{}
	for _, sp := range ix.specsFor(u.Relation, u.Insert) {
		switch sp.kind {
		case readWhole:
			if sp.general {
				rp.Eval[sp.rel] = true
			} else {
				rp.Mirror[sp.rel] = true
			}
		default:
			if sp.occAr != len(u.Tuple) {
				continue // no disjunct matches this tuple: the probe never runs
			}
			v := sp.keyVal
			if sp.kind == readKeyAt {
				v = u.Tuple[sp.keyPos]
			}
			k := relation.ValueKey(v)
			if seenKey[sp.rel] == nil {
				seenKey[sp.rel] = map[string]bool{}
			}
			if !seenKey[sp.rel][k] {
				seenKey[sp.rel][k] = true
				rp.Keys[sp.rel] = append(rp.Keys[sp.rel], v)
			}
		}
	}
	// A whole residual read supersedes the keyed view: the refresh must
	// cover everything anyway.
	for rel := range rp.Mirror {
		delete(rp.Keys, rel)
	}
	return rp
}

// readsFor instantiates the pattern's specs into shard-granular read
// claims for the concrete tuple.
func (ix *Index) readsFor(u store.Update) []Read {
	specs := ix.specsFor(u.Relation, u.Insert)
	if len(specs) == 0 {
		return nil
	}
	sh := ix.opts.Sharder
	seen := map[Read]bool{}
	var out []Read
	add := func(r Read) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, sp := range specs {
		if sp.kind == readWhole || sh == nil {
			add(Read{Relation: sp.rel, Shard: WholeRelation})
			continue
		}
		if _, ok := sh.ShardKey(sp.rel); !ok {
			add(Read{Relation: sp.rel, Shard: WholeRelation})
			continue
		}
		if sp.occAr != len(u.Tuple) {
			continue // no disjunct matches this tuple: the probe never runs
		}
		v := sp.keyVal
		if sp.kind == readKeyAt {
			v = u.Tuple[sp.keyPos]
		}
		add(Read{Relation: sp.rel, Shard: sh.ShardOf(sp.rel, v)})
	}
	sortReads(out)
	return out
}

func (ix *Index) specsFor(rel string, insert bool) []readSpec {
	k := patKey{rel, insert}
	ix.mu.RLock()
	specs, ok := ix.memo[k]
	ix.mu.RUnlock()
	if ok {
		return specs
	}
	specs = []readSpec{}
	for _, prog := range ix.progs {
		specs = progSpecs(prog, rel, insert, ix.opts, specs)
	}
	ix.mu.Lock()
	ix.memo[k] = specs
	ix.mu.Unlock()
	return specs
}

// progSpecs accumulates the symbolic reads a check of the (rel, insert)
// pattern against prog may perform, mirroring the checker's phase
// ladder:
//
//   - phase 1: a constraint that never mentions rel is unaffected — no
//     reads;
//   - phase 1.5: a monotone-safe pattern is certified from polarity
//     alone — no reads;
//   - residual dispatch: an eligible pattern reads only the other
//     literals of each harmful-occurrence disjunct (Nicolas' residual —
//     the body minus the occurrence unified with the update). When the
//     probed literal's shard-key argument is a variable the occurrence
//     pins to a tuple position (or a baked constant), the read is keyed;
//     otherwise it ranges over the whole relation;
//   - otherwise the pattern may fall through to phase 3 or global
//     evaluation, which read every stored relation in the constraint
//     (conservatively including rel itself: phase 3 scans the local
//     relation and global evaluation re-derives panic from all of them).
func progSpecs(prog *ast.Program, rel string, insert bool, opts IndexOptions, specs []readSpec) []readSpec {
	if !mentionsRel(prog, rel) {
		return specs
	}
	if opts.Polarity && classify.UpdateMonotoneSafe(prog, ast.PanicPred, rel, insert) {
		return specs
	}
	if opts.Residual {
		if sh := residual.DeriveShape(prog, rel, insert); sh.Eligible {
			if sh.Arity < 0 {
				return specs // no harmful occurrence: trivially safe, no reads
			}
			for _, r := range prog.Rules {
				for oi, l := range r.Body {
					if !harmfulOccurrence(l, rel, insert) {
						continue
					}
					// sigma maps occurrence variables to tuple positions,
					// first binding wins — exactly residual.Compile's
					// substitution, so a keyed spec's position names the
					// same value the VM will probe with.
					sigma := map[string]int{}
					for i, a := range l.Atom.Args {
						if a.IsVar() {
							if _, bound := sigma[a.Var]; !bound {
								sigma[a.Var] = i
							}
						}
					}
					for bi, m := range r.Body {
						if bi == oi || m.IsComp() {
							continue
						}
						specs = append(specs, literalSpec(m, sigma, len(l.Atom.Args), opts.Sharder))
					}
				}
			}
			return specs
		}
	}
	for _, e := range edbPreds(prog) {
		specs = append(specs, readSpec{rel: e, kind: readWhole, general: true})
	}
	return specs
}

// literalSpec derives the read claim of one non-occurrence body literal
// of a residual disjunct: keyed when the literal's shard-key argument is
// pinned (a constant, or an occurrence variable), whole otherwise — a
// key flowing in from a join register ranges over data the update does
// not determine.
func literalSpec(m ast.Literal, sigma map[string]int, occAr int, sh Sharder) readSpec {
	sp := readSpec{rel: m.Atom.Pred, kind: readWhole}
	if sh == nil {
		return sp
	}
	kc, ok := sh.ShardKey(m.Atom.Pred)
	if !ok || kc >= len(m.Atom.Args) {
		return sp
	}
	switch a := m.Atom.Args[kc]; {
	case a.IsConst():
		return readSpec{rel: sp.rel, kind: readKeyConst, keyVal: relation.Canonical(a.Const), occAr: occAr}
	case a.IsVar():
		if pos, bound := sigma[a.Var]; bound {
			return readSpec{rel: sp.rel, kind: readKeyAt, keyPos: pos, occAr: occAr}
		}
	}
	return sp
}

// mentionsRel reports whether any body literal of prog names rel
// (phase 1's test).
func mentionsRel(prog *ast.Program, rel string) bool {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return true
			}
		}
	}
	return false
}

// harmfulOccurrence mirrors residual compilation: positive occurrences
// for inserts, negated ones for deletes.
func harmfulOccurrence(l ast.Literal, rel string, insert bool) bool {
	if l.IsComp() || l.Atom.Pred != rel {
		return false
	}
	if insert {
		return l.IsPos()
	}
	return l.IsNeg()
}

// edbPreds returns the body predicates not defined by any rule head —
// the stored relations the constraint evaluates over.
func edbPreds(prog *ast.Program) []string {
	heads := map[string]bool{}
	for _, r := range prog.Rules {
		heads[r.Head.Pred] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() || heads[l.Atom.Pred] || seen[l.Atom.Pred] {
				continue
			}
			seen[l.Atom.Pred] = true
			out = append(out, l.Atom.Pred)
		}
	}
	return out
}
