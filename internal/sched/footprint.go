// Package sched schedules constraint-checked updates for concurrent
// apply. The paper's locality result — most updates are decided from a
// small footprint of the database — has a scheduling corollary: two
// updates whose footprints are disjoint commute, so they may be checked
// and applied in parallel without changing any verdict or the final
// store state. This package computes those footprints symbolically from
// the constraint set (the same update-pattern analysis internal/residual
// compiles from) and runs a conflict-aware worker pool that dispatches
// independent updates concurrently while serializing conflicting ones in
// admission order. The result is serializable in admission order:
// verdicts and final state are identical to a single worker applying the
// same stream sequentially.
package sched

import (
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/residual"
	"repro/internal/store"
)

// Write is one tuple-level write: the relation plus the tuple's interned
// projection fingerprint. Two writes to the same relation with different
// fingerprints are disjoint under set semantics (insert/delete of
// different tuples commute); same-fingerprint writes conflict because
// insert-then-delete and delete-then-insert diverge.
type Write struct {
	Relation string
	FP       uint64
}

// Footprint is the read/write set of one scheduled task. Reads are
// whole relations — the constraint bodies an update's check may consult;
// tuple-level refinement of reads is unsound because a residual probe
// ranges over the whole read relation. Writes are tuple-level. A Barrier
// footprint conflicts with everything (used for batches that must see a
// quiescent store, stats snapshots, and unknown update patterns).
type Footprint struct {
	Barrier bool
	Writes  []Write
	Reads   []string
}

// Union merges o into f (set semantics); used to footprint atomic
// batches as a single task.
func (f Footprint) Union(o Footprint) Footprint {
	out := Footprint{Barrier: f.Barrier || o.Barrier}
	seenW := map[Write]bool{}
	for _, w := range append(append([]Write{}, f.Writes...), o.Writes...) {
		if !seenW[w] {
			seenW[w] = true
			out.Writes = append(out.Writes, w)
		}
	}
	seenR := map[string]bool{}
	for _, r := range append(append([]string{}, f.Reads...), o.Reads...) {
		if !seenR[r] {
			seenR[r] = true
			out.Reads = append(out.Reads, r)
		}
	}
	sort.Strings(out.Reads)
	return out
}

// Barrier returns a footprint that conflicts with every other task.
func Barrier() Footprint { return Footprint{Barrier: true} }

// Conflicts reports whether the two footprints may not be reordered:
// either is a barrier, they write the same tuple of the same relation
// (WW), or one writes a relation the other reads (RW/WR). Read/read
// overlap is not a conflict.
func (f Footprint) Conflicts(o Footprint) bool {
	if f.Barrier || o.Barrier {
		return true
	}
	for _, w := range f.Writes {
		for _, x := range o.Writes {
			if w == x {
				return true
			}
		}
		for _, r := range o.Reads {
			if w.Relation == r {
				return true
			}
		}
	}
	for _, w := range o.Writes {
		for _, r := range f.Reads {
			if w.Relation == r {
				return true
			}
		}
	}
	return false
}

// IndexOptions mirror the backing checker's A/B switches, because the
// read set of an update is exactly the data the checker's enabled phases
// may consult for it.
type IndexOptions struct {
	// Residual: the checker dispatches eligible update patterns to
	// compiled residuals, which read only the harmful-occurrence
	// disjunct bodies. Off, every undecided pattern may reach phase 3 /
	// global evaluation, which read every stored relation the constraint
	// mentions (including the updated one).
	Residual bool
	// Polarity: phase 1.5 is enabled (core.Options.DisableUpdateOnly
	// unset), so monotone-safe patterns are decided without reading any
	// data.
	Polarity bool
}

// Index derives and memoizes footprints per update pattern (relation +
// polarity) for a fixed constraint set. Safe for concurrent use. A
// checker whose constraint set changes must discard its index (see
// core.Checker.Footprints).
type Index struct {
	progs []*ast.Program
	opts  IndexOptions

	mu   sync.RWMutex
	memo map[patKey][]string
}

type patKey struct {
	rel    string
	insert bool
}

// NewIndex builds a footprint index over the constraint programs.
func NewIndex(progs []*ast.Program, opts IndexOptions) *Index {
	return &Index{progs: progs, opts: opts, memo: map[patKey][]string{}}
}

// Update footprints a single update: one tuple-level write plus the
// union over all constraints of the relations the update's check may
// read.
func (ix *Index) Update(u store.Update) Footprint {
	return Footprint{
		Writes: []Write{{Relation: u.Relation, FP: u.Tuple.Fingerprint()}},
		Reads:  ix.readsFor(u.Relation, u.Insert),
	}
}

// Batch footprints a set of updates checked and applied as one atomic
// task.
func (ix *Index) Batch(us []store.Update) Footprint {
	var f Footprint
	for _, u := range us {
		f = f.Union(ix.Update(u))
	}
	return f
}

func (ix *Index) readsFor(rel string, insert bool) []string {
	k := patKey{rel, insert}
	ix.mu.RLock()
	reads, ok := ix.memo[k]
	ix.mu.RUnlock()
	if ok {
		return reads
	}
	set := map[string]bool{}
	for _, prog := range ix.progs {
		progReads(prog, rel, insert, ix.opts, set)
	}
	reads = make([]string, 0, len(set))
	for r := range set {
		reads = append(reads, r)
	}
	sort.Strings(reads)
	ix.mu.Lock()
	ix.memo[k] = reads
	ix.mu.Unlock()
	return reads
}

// progReads accumulates into set the relations a check of the (rel,
// insert) pattern against prog may read, mirroring the checker's phase
// ladder:
//
//   - phase 1: a constraint that never mentions rel is unaffected — no
//     reads;
//   - phase 1.5: a monotone-safe pattern is certified from polarity
//     alone — no reads;
//   - residual dispatch: an eligible pattern reads only the other
//     literals of each harmful-occurrence disjunct (Nicolas' residual —
//     the body minus the occurrence unified with the update);
//   - otherwise the pattern may fall through to phase 3 or global
//     evaluation, which read every stored relation in the constraint
//     (conservatively including rel itself: phase 3 scans the local
//     relation and global evaluation re-derives panic from all of them).
func progReads(prog *ast.Program, rel string, insert bool, opts IndexOptions, set map[string]bool) {
	if !mentionsRel(prog, rel) {
		return
	}
	if opts.Polarity && classify.UpdateMonotoneSafe(prog, ast.PanicPred, rel, insert) {
		return
	}
	if opts.Residual {
		if sh := residual.DeriveShape(prog, rel, insert); sh.Eligible {
			if sh.Arity < 0 {
				return // no harmful occurrence: trivially safe, no reads
			}
			for _, r := range prog.Rules {
				for oi, l := range r.Body {
					if !harmfulOccurrence(l, rel, insert) {
						continue
					}
					for bi, m := range r.Body {
						if bi != oi && !m.IsComp() {
							set[m.Atom.Pred] = true
						}
					}
				}
			}
			return
		}
	}
	for _, e := range edbPreds(prog) {
		set[e] = true
	}
}

// mentionsRel reports whether any body literal of prog names rel
// (phase 1's test).
func mentionsRel(prog *ast.Program, rel string) bool {
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return true
			}
		}
	}
	return false
}

// harmfulOccurrence mirrors residual compilation: positive occurrences
// for inserts, negated ones for deletes.
func harmfulOccurrence(l ast.Literal, rel string, insert bool) bool {
	if l.IsComp() || l.Atom.Pred != rel {
		return false
	}
	if insert {
		return l.IsPos()
	}
	return l.IsNeg()
}

// edbPreds returns the body predicates not defined by any rule head —
// the stored relations the constraint evaluates over.
func edbPreds(prog *ast.Program) []string {
	heads := map[string]bool{}
	for _, r := range prog.Rules {
		heads[r.Head.Pred] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() || heads[l.Atom.Pred] || seen[l.Atom.Pred] {
				continue
			}
			seen[l.Atom.Pred] = true
			out = append(out, l.Atom.Pred)
		}
	}
	return out
}
