package sched

import (
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func fpOf(writes []Write, reads ...string) Footprint {
	return Footprint{Writes: writes, Reads: reads}
}

func TestFootprintConflicts(t *testing.T) {
	wX1 := []Write{{Relation: "x", FP: 1}}
	wX2 := []Write{{Relation: "x", FP: 2}}
	wY1 := []Write{{Relation: "y", FP: 1}}
	cases := []struct {
		name string
		a, b Footprint
		want bool
	}{
		{"ww same tuple", fpOf(wX1), fpOf(wX1), true},
		{"ww same relation different tuple", fpOf(wX1), fpOf(wX2), false},
		{"ww different relations", fpOf(wX1), fpOf(wY1), false},
		{"rw writer vs reader", fpOf(wX1), fpOf(wY1, "x"), true},
		{"wr reader vs writer", fpOf(wY1, "x"), fpOf(wX2), true},
		{"read read overlap", fpOf(wX1, "z"), fpOf(wY1, "z"), false},
		{"barrier vs anything", Barrier(), fpOf(wX1), true},
		{"anything vs barrier", fpOf(wY1), Barrier(), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Conflicts(c.b); got != c.want {
				t.Fatalf("Conflicts(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
			if got := c.b.Conflicts(c.a); got != c.want {
				t.Fatalf("Conflicts is not symmetric on (%v, %v)", c.a, c.b)
			}
		})
	}
}

func TestFootprintUnion(t *testing.T) {
	a := fpOf([]Write{{"x", 1}}, "r")
	b := fpOf([]Write{{"x", 1}, {"y", 2}}, "r", "s")
	u := a.Union(b)
	if len(u.Writes) != 2 {
		t.Fatalf("union writes = %v, want deduped 2", u.Writes)
	}
	if !reflect.DeepEqual(u.Reads, []string{"r", "s"}) {
		t.Fatalf("union reads = %v, want [r s]", u.Reads)
	}
	if !a.Union(Barrier()).Barrier {
		t.Fatal("union with barrier lost the barrier")
	}
}

// The interval-point exclusion constraint D1 drives most benchmarks:
// inserting into l must re-check against r and vice versa, while
// deletions are monotone-safe.
const fiSrc = `panic :- l(X, Y) & r(Z) & X <= Z & Z <= Y.`

func TestIndexResidualReads(t *testing.T) {
	prog := parser.MustParseProgram(fiSrc)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})

	cases := []struct {
		rel    string
		insert bool
		want   []string
	}{
		{"l", true, []string{"r"}}, // residual disjunct body
		{"r", true, []string{"l"}},
		{"l", false, nil}, // monotone-safe: deletes cannot violate
		{"r", false, nil},
		{"unrelated", true, nil}, // phase 1: not mentioned
	}
	for _, c := range cases {
		got := ix.readsFor(c.rel, c.insert)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("readsFor(%s, insert=%v) = %v, want %v", c.rel, c.insert, got, c.want)
		}
	}
}

func TestIndexConservativeWithoutResidual(t *testing.T) {
	prog := parser.MustParseProgram(fiSrc)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: false, Polarity: true})
	got := ix.readsFor("l", true)
	if !reflect.DeepEqual(got, []string{"l", "r"}) {
		t.Fatalf("conservative reads = %v, want every EDB relation [l r]", got)
	}
	// Phase 1.5 still certifies deletions without reading anything.
	if got := ix.readsFor("l", false); len(got) != 0 {
		t.Fatalf("monotone-safe delete reads = %v, want none", got)
	}
}

func TestIndexIDBFallsBackToConservative(t *testing.T) {
	// A helper predicate makes the constraint residual-ineligible, so
	// even with residual dispatch on the read set must cover every EDB
	// relation (the pipeline may reach phase 3 / global evaluation).
	prog := parser.MustParseProgram(`
		covered(Z) :- l(Z, Y) & Z <= Y.
		panic :- r(Z) & covered(Z).
	`)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	got := ix.readsFor("r", true)
	if !reflect.DeepEqual(got, []string{"l", "r"}) {
		t.Fatalf("IDB constraint reads = %v, want [l r]", got)
	}
}

func TestIndexSecondOccurrenceKeepsOwnRelation(t *testing.T) {
	// Overlapping-interval constraint: inserting into l must re-check
	// against the *other* l tuples, so l stays in its own read set.
	prog := parser.MustParseProgram(`panic :- l(X, Y) & l(U, V) & X < U & U < Y.`)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	got := ix.readsFor("l", true)
	if !reflect.DeepEqual(got, []string{"l"}) {
		t.Fatalf("self-join reads = %v, want [l]", got)
	}
}

func TestIndexUpdateFootprint(t *testing.T) {
	prog := parser.MustParseProgram(fiSrc)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	tup := relation.Ints(1, 5)
	f := ix.Update(store.Ins("l", tup))
	if len(f.Writes) != 1 || f.Writes[0].Relation != "l" || f.Writes[0].FP != tup.Fingerprint() {
		t.Fatalf("update writes = %v, want l@%d", f.Writes, tup.Fingerprint())
	}
	if !reflect.DeepEqual(f.Reads, []string{"r"}) {
		t.Fatalf("update reads = %v, want [r]", f.Reads)
	}

	// Two inserts of distinct tuples into l are independent; an insert
	// into r conflicts with both.
	g := ix.Update(store.Ins("l", relation.Ints(7, 9)))
	if f.Conflicts(g) {
		t.Fatal("distinct l inserts should not conflict")
	}
	h := ix.Update(store.Ins("r", relation.Ints(3)))
	if !f.Conflicts(h) || !g.Conflicts(h) {
		t.Fatal("r insert must conflict with l inserts (RW on both sides)")
	}
}
