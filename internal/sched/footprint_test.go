package sched

import (
	"hash/fnv"
	"reflect"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func fpOf(writes []Write, reads ...Read) Footprint {
	return Footprint{Writes: writes, Reads: reads}
}

func rd(rel string) Read { return Read{Relation: rel, Shard: WholeRelation} }

func TestFootprintConflicts(t *testing.T) {
	wX1 := []Write{{Relation: "x", FP: 1, Shard: WholeRelation}}
	wX2 := []Write{{Relation: "x", FP: 2, Shard: WholeRelation}}
	wY1 := []Write{{Relation: "y", FP: 1, Shard: WholeRelation}}
	wXs0 := []Write{{Relation: "x", FP: 3, Shard: 0}}
	wXs1 := []Write{{Relation: "x", FP: 4, Shard: 1}}
	cases := []struct {
		name string
		a, b Footprint
		want bool
	}{
		{"ww same tuple", fpOf(wX1), fpOf(wX1), true},
		{"ww same relation different tuple", fpOf(wX1), fpOf(wX2), false},
		{"ww different relations", fpOf(wX1), fpOf(wY1), false},
		{"rw writer vs reader", fpOf(wX1), fpOf(wY1, rd("x")), true},
		{"wr reader vs writer", fpOf(wY1, rd("x")), fpOf(wX2), true},
		{"read read overlap", fpOf(wX1, rd("z")), fpOf(wY1, rd("z")), false},
		{"barrier vs anything", Barrier(), fpOf(wX1), true},
		{"anything vs barrier", fpOf(wY1), Barrier(), true},
		{"shard write vs other-shard read", fpOf(wXs0), fpOf(wY1, Read{"x", 1}), false},
		{"shard write vs same-shard read", fpOf(wXs0), fpOf(wY1, Read{"x", 0}), true},
		{"shard write vs whole read", fpOf(wXs1), fpOf(wY1, rd("x")), true},
		{"whole write vs shard read", fpOf(wX1), fpOf(wY1, Read{"x", 1}), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Conflicts(c.b); got != c.want {
				t.Fatalf("Conflicts(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
			if got := c.b.Conflicts(c.a); got != c.want {
				t.Fatalf("Conflicts is not symmetric on (%v, %v)", c.a, c.b)
			}
		})
	}
}

func TestFootprintUnion(t *testing.T) {
	a := fpOf([]Write{{"x", 1, WholeRelation}}, rd("r"))
	b := fpOf([]Write{{"x", 1, WholeRelation}, {"y", 2, WholeRelation}}, rd("r"), rd("s"))
	u := a.Union(b)
	if len(u.Writes) != 2 {
		t.Fatalf("union writes = %v, want deduped 2", u.Writes)
	}
	if !reflect.DeepEqual(u.Reads, []Read{rd("r"), rd("s")}) {
		t.Fatalf("union reads = %v, want [r s]", u.Reads)
	}
	if !a.Union(Barrier()).Barrier {
		t.Fatal("union with barrier lost the barrier")
	}
}

// The interval-point exclusion constraint D1 drives most benchmarks:
// inserting into l must re-check against r and vice versa, while
// deletions are monotone-safe.
const fiSrc = `panic :- l(X, Y) & r(Z) & X <= Z & Z <= Y.`

func relNames(rs []Read) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.Relation)
	}
	return out
}

func TestIndexResidualReads(t *testing.T) {
	prog := parser.MustParseProgram(fiSrc)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})

	cases := []struct {
		rel    string
		insert bool
		want   []string
	}{
		{"l", true, []string{"r"}}, // residual disjunct body
		{"r", true, []string{"l"}},
		{"l", false, nil}, // monotone-safe: deletes cannot violate
		{"r", false, nil},
		{"unrelated", true, nil}, // phase 1: not mentioned
	}
	for _, c := range cases {
		tup := relation.Ints(1, 2)
		if c.rel == "r" {
			tup = relation.Ints(1)
		}
		got := relNames(ix.readsFor(store.Update{Relation: c.rel, Insert: c.insert, Tuple: tup}))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("readsFor(%s, insert=%v) = %v, want %v", c.rel, c.insert, got, c.want)
		}
	}
}

func TestIndexConservativeWithoutResidual(t *testing.T) {
	prog := parser.MustParseProgram(fiSrc)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: false, Polarity: true})
	got := relNames(ix.readsFor(store.Ins("l", relation.Ints(1, 2))))
	if !reflect.DeepEqual(got, []string{"l", "r"}) {
		t.Fatalf("conservative reads = %v, want every EDB relation [l r]", got)
	}
	// Phase 1.5 still certifies deletions without reading anything.
	if got := ix.readsFor(store.Del("l", relation.Ints(1, 2))); len(got) != 0 {
		t.Fatalf("monotone-safe delete reads = %v, want none", got)
	}
}

func TestIndexIDBFallsBackToConservative(t *testing.T) {
	// A helper predicate makes the constraint residual-ineligible, so
	// even with residual dispatch on the read set must cover every EDB
	// relation (the pipeline may reach phase 3 / global evaluation).
	prog := parser.MustParseProgram(`
		covered(Z) :- l(Z, Y) & Z <= Y.
		panic :- r(Z) & covered(Z).
	`)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	got := relNames(ix.readsFor(store.Ins("r", relation.Ints(1))))
	if !reflect.DeepEqual(got, []string{"l", "r"}) {
		t.Fatalf("IDB constraint reads = %v, want [l r]", got)
	}
}

func TestIndexSecondOccurrenceKeepsOwnRelation(t *testing.T) {
	// Overlapping-interval constraint: inserting into l must re-check
	// against the *other* l tuples, so l stays in its own read set.
	prog := parser.MustParseProgram(`panic :- l(X, Y) & l(U, V) & X < U & U < Y.`)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	got := relNames(ix.readsFor(store.Ins("l", relation.Ints(1, 2))))
	if !reflect.DeepEqual(got, []string{"l"}) {
		t.Fatalf("self-join reads = %v, want [l]", got)
	}
}

func TestIndexUpdateFootprint(t *testing.T) {
	prog := parser.MustParseProgram(fiSrc)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	tup := relation.Ints(1, 5)
	f := ix.Update(store.Ins("l", tup))
	if len(f.Writes) != 1 || f.Writes[0].Relation != "l" || f.Writes[0].FP != tup.Fingerprint() {
		t.Fatalf("update writes = %v, want l@%d", f.Writes, tup.Fingerprint())
	}
	if f.Writes[0].Shard != WholeRelation {
		t.Fatalf("unsharded write shard = %d, want WholeRelation", f.Writes[0].Shard)
	}
	if !reflect.DeepEqual(f.Reads, []Read{rd("r")}) {
		t.Fatalf("update reads = %v, want [r]", f.Reads)
	}

	// Two inserts of distinct tuples into l are independent; an insert
	// into r conflicts with both.
	g := ix.Update(store.Ins("l", relation.Ints(7, 9)))
	if f.Conflicts(g) {
		t.Fatal("distinct l inserts should not conflict")
	}
	h := ix.Update(store.Ins("r", relation.Ints(3)))
	if !f.Conflicts(h) || !g.Conflicts(h) {
		t.Fatal("r insert must conflict with l inserts (RW on both sides)")
	}
}

// hashSharder hash-partitions the named relations on a key column —
// the same FNV-over-canonical-key scheme netdist.Placement uses.
type hashSharder struct {
	rels map[string]int // relation -> key column
	n    int
}

func (s hashSharder) ShardKey(rel string) (int, bool) {
	col, ok := s.rels[rel]
	return col, ok
}

func (s hashSharder) ShardOf(rel string, key ast.Value) int {
	h := fnv.New32a()
	h.Write([]byte(relation.ValueKey(key)))
	return int(h.Sum32() % uint32(s.n))
}

// keyOnShard finds an integer key the sharder maps to the wanted shard.
func keyOnShard(t *testing.T, s hashSharder, rel string, want int, avoid ...int64) int64 {
	t.Helper()
next:
	for k := int64(0); k < 10_000; k++ {
		for _, a := range avoid {
			if k == a {
				continue next
			}
		}
		if s.ShardOf(rel, relation.Ints(k)[0]) == want {
			return k
		}
	}
	t.Fatal("no key found for shard")
	return 0
}

// TestIndexShardedFootprints pins the per-shard refinement: a self-join
// on the shard key makes an insert read only its own key's shard, so
// inserts into different shards of one relation are independent while
// same-shard writes still conflict.
func TestIndexShardedFootprints(t *testing.T) {
	prog := parser.MustParseProgram(`panic :- d(K, V) & d(K, W) & V < W.`)
	sh := hashSharder{rels: map[string]int{"d": 0}, n: 4}
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true, Sharder: sh})

	k0 := keyOnShard(t, sh, "d", 0)
	k1 := keyOnShard(t, sh, "d", 1)
	k0b := keyOnShard(t, sh, "d", 0, k0)

	a := ix.Update(store.Ins("d", relation.Ints(k0, 1)))
	if a.Writes[0].Shard != 0 {
		t.Fatalf("write shard = %d, want 0", a.Writes[0].Shard)
	}
	if !reflect.DeepEqual(a.Reads, []Read{{"d", 0}}) {
		t.Fatalf("key-bound self-join reads = %v, want [{d 0}]", a.Reads)
	}
	b := ix.Update(store.Ins("d", relation.Ints(k1, 2)))
	if a.Conflicts(b) {
		t.Fatal("inserts into different shards of d must not conflict")
	}
	c := ix.Update(store.Ins("d", relation.Ints(k0b, 3)))
	if !a.Conflicts(c) {
		t.Fatal("inserts into the same shard of d must conflict (RW on the shard)")
	}

	// Without a sharder the same pattern reads the whole relation and
	// every pair conflicts — the unsharded baseline.
	ixWhole := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true})
	aw := ixWhole.Update(store.Ins("d", relation.Ints(k0, 1)))
	bw := ixWhole.Update(store.Ins("d", relation.Ints(k1, 2)))
	if !aw.Conflicts(bw) {
		t.Fatal("whole-relation inserts into d must conflict")
	}
}

// TestShardedSchedulerOverlap runs the refinement through the real
// scheduler: two inserts into different shards of one relation overlap
// in time, while same-shard inserts serialize in admission order.
func TestShardedSchedulerOverlap(t *testing.T) {
	prog := parser.MustParseProgram(`panic :- d(K, V) & d(K, W) & V < W.`)
	sh := hashSharder{rels: map[string]int{"d": 0}, n: 4}
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true, Sharder: sh})
	k0 := keyOnShard(t, sh, "d", 0)
	k1 := keyOnShard(t, sh, "d", 1)
	k0b := keyOnShard(t, sh, "d", 0, k0)

	s := New(Options{Workers: 2})
	second := make(chan struct{})
	done := make(chan struct{})
	s.Submit(ix.Update(store.Ins("d", relation.Ints(k0, 1))), func(Info) {
		select {
		case <-second:
		case <-time.After(5 * time.Second):
			t.Error("different-shard insert was serialized behind the first")
		}
		close(done)
	})
	s.Submit(ix.Update(store.Ins("d", relation.Ints(k1, 2))), func(Info) {
		close(second)
	})
	<-done
	s.Close()

	// Same shard: admission order, strictly serialized.
	s2 := New(Options{Workers: 2})
	var order []string
	release := make(chan struct{})
	s2.Submit(ix.Update(store.Ins("d", relation.Ints(k0, 1))), func(Info) {
		<-release
		order = append(order, "first")
	})
	s2.Submit(ix.Update(store.Ins("d", relation.Ints(k0b, 2))), func(Info) {
		order = append(order, "second")
	})
	close(release)
	s2.Close()
	if !reflect.DeepEqual(order, []string{"first", "second"}) {
		t.Fatalf("same-shard inserts ran as %v, want [first second]", order)
	}
}

// TestIndexReadPlan pins the coordinator-facing classification: keyed
// residual probes surface their exact key values, unkeyed residual
// reads demand a whole-mirror refresh, and residual-ineligible patterns
// fall to the evaluation router.
func TestIndexReadPlan(t *testing.T) {
	sh := hashSharder{rels: map[string]int{"dept": 0}, n: 4}

	// Key-bound: the occurrence pins D, so dept is probed with exactly
	// the inserted tuple's second component.
	prog := parser.MustParseProgram(`panic :- emp(E, D) & not dept(D).`)
	ix := NewIndex([]*ast.Program{prog}, IndexOptions{Residual: true, Polarity: true, Sharder: sh})
	rp := ix.ReadPlan(store.Ins("emp", relation.Ints(1, 42)))
	if len(rp.Keys["dept"]) != 1 || !rp.Keys["dept"][0].Equal(relation.Ints(42)[0]) {
		t.Fatalf("keys = %v, want [42]", rp.Keys["dept"])
	}
	if rp.Mirror["dept"] || rp.Eval["dept"] {
		t.Fatalf("key-bound read misclassified: %+v", rp)
	}

	// Unkeyed residual read: r's key column is not pinned by the l
	// occurrence, so the whole mirror must be refreshed.
	prog2 := parser.MustParseProgram(fiSrc)
	sh2 := hashSharder{rels: map[string]int{"r": 0}, n: 4}
	ix2 := NewIndex([]*ast.Program{prog2}, IndexOptions{Residual: true, Polarity: true, Sharder: sh2})
	rp2 := ix2.ReadPlan(store.Ins("l", relation.Ints(1, 5)))
	if !rp2.Mirror["r"] || len(rp2.Keys["r"]) != 0 {
		t.Fatalf("unkeyed residual read misclassified: %+v", rp2)
	}

	// Residual-ineligible (IDB helper): evaluation reads, router-served.
	prog3 := parser.MustParseProgram(`
		covered(Z) :- l(Z, Y) & Z <= Y.
		panic :- r(Z) & covered(Z).
	`)
	ix3 := NewIndex([]*ast.Program{prog3}, IndexOptions{Residual: true, Polarity: true, Sharder: sh2})
	rp3 := ix3.ReadPlan(store.Ins("r", relation.Ints(1)))
	if !rp3.Eval["r"] || !rp3.Eval["l"] || rp3.Mirror["r"] {
		t.Fatalf("general read misclassified: %+v", rp3)
	}
}
