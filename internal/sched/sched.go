package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure a Scheduler.
type Options struct {
	// Workers is the apply-pool width; <= 0 means GOMAXPROCS.
	Workers int
	// Metrics receives scheduler counters; nil disables instrumentation.
	Metrics *Metrics
}

// Info is handed to a task when it is dispatched.
type Info struct {
	// Wait is the time the task spent admitted but not running (conflict
	// stalls plus ready-queue wait under saturation).
	Wait time.Duration
	// Conflicts is the number of in-flight tasks the task had to wait
	// for at admission (0 for an immediately dispatchable task).
	Conflicts int
}

// Stats is a point-in-time snapshot of scheduler accounting.
type Stats struct {
	// Workers is the pool width.
	Workers int
	// Tasks counts submissions.
	Tasks int64
	// ConflictStalls counts submissions that had to wait for at least
	// one conflicting in-flight task.
	ConflictStalls int64
	// Inflight is the number of admitted, not yet finished tasks.
	Inflight int
}

// node is one admitted task in the dependency graph. Edges always point
// from an earlier admission to a later one, so the graph is acyclic and
// the pool cannot deadlock.
type node struct {
	run       func(Info)
	fp        Footprint
	enqueued  time.Time
	deps      int     // unfinished earlier conflicting tasks
	conflicts int     // deps at admission (deps drains to 0 before dispatch)
	waiters   []*node // later tasks waiting on this one
	done      bool
}

// Scheduler dispatches submitted tasks across a worker pool such that
// conflicting tasks (per Footprint.Conflicts) run serially in admission
// order while independent tasks run concurrently. Submit is safe for
// concurrent use, and the execution order it guarantees — every pair of
// conflicting tasks runs in admission order — makes any concurrent
// schedule equivalent to the sequential one.
type Scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight []*node // admission order; done nodes compacted on submit
	ready    []*node // FIFO dispatch queue
	pending  int     // admitted, not yet finished
	closed   bool

	workers        int
	busy           atomic.Int64
	tasks          atomic.Int64
	conflictStalls atomic.Int64

	met *Metrics
	wg  sync.WaitGroup
}

// New starts a scheduler with its worker pool.
func New(opts Options) *Scheduler {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{workers: w, met: opts.Metrics}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(w)
	for i := 0; i < w; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the pool width.
func (s *Scheduler) Workers() int { return s.workers }

// Submit admits a task with the given footprint. The task runs as soon
// as every earlier-admitted conflicting task has finished; independent
// tasks run concurrently. Submit after Close panics.
func (s *Scheduler) Submit(fp Footprint, run func(Info)) {
	n := &node{run: run, fp: fp}
	scan := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("sched: Submit after Close")
	}
	live := s.inflight[:0]
	for _, m := range s.inflight {
		if m.done {
			continue
		}
		live = append(live, m)
		if m.fp.Conflicts(fp) {
			m.waiters = append(m.waiters, n)
			n.deps++
		}
	}
	s.inflight = append(live, n)
	s.pending++
	n.enqueued = time.Now()
	n.conflicts = n.deps
	if n.deps == 0 {
		s.ready = append(s.ready, n)
	}
	s.mu.Unlock()
	s.tasks.Add(1)
	if n.conflicts > 0 {
		s.conflictStalls.Add(1)
	}
	if s.met != nil {
		s.met.observeSubmit(n.enqueued.Sub(scan), n.conflicts > 0)
		s.met.Inflight.Add(1)
	}
	s.cond.Broadcast()
}

// worker dispatches ready tasks until Close drains the scheduler.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		// After Close, a worker may only exit once no task can become
		// ready anymore: pending covers running tasks and their waiters
		// alike, and every completion broadcasts.
		for len(s.ready) == 0 && !(s.closed && s.pending == 0) {
			s.cond.Wait()
		}
		if len(s.ready) == 0 {
			s.mu.Unlock()
			return
		}
		n := s.ready[0]
		s.ready = s.ready[1:]
		s.mu.Unlock()

		s.busy.Add(1)
		if s.met != nil {
			s.met.WorkersBusy.Add(1)
		}
		wait := time.Since(n.enqueued)
		if s.met != nil {
			s.met.Wait.Observe(wait.Seconds())
		}
		n.run(Info{Wait: wait, Conflicts: n.conflicts})
		s.busy.Add(-1)
		if s.met != nil {
			s.met.WorkersBusy.Add(-1)
			s.met.Inflight.Add(-1)
		}
		s.complete(n)
	}
}

// complete retires a finished task: its waiters lose a dependency and
// become ready when their last one clears.
func (s *Scheduler) complete(n *node) {
	s.mu.Lock()
	n.done = true
	s.pending--
	for _, w := range n.waiters {
		w.deps--
		if w.deps == 0 {
			s.ready = append(s.ready, w)
		}
	}
	n.waiters = nil
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Drain blocks until every task admitted so far has finished. Tasks may
// be submitted concurrently with Drain; it returns once the scheduler is
// momentarily empty.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for s.pending > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close drains the scheduler and stops the worker pool. No Submit may
// follow.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	inflight := s.pending
	s.mu.Unlock()
	return Stats{
		Workers:        s.workers,
		Tasks:          s.tasks.Load(),
		ConflictStalls: s.conflictStalls.Load(),
		Inflight:       inflight,
	}
}
