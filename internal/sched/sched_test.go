package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestAdmissionOrder is the directed conflict test: two conflicting
// tasks must run in admission order even when the first is slow and the
// pool has idle workers that could run the second.
func TestAdmissionOrder(t *testing.T) {
	s := New(Options{Workers: 4})
	defer s.Close()

	var order []string
	var mu sync.Mutex
	stamp := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}

	w := Footprint{Writes: []Write{{Relation: "x", FP: 42}}}
	s.Submit(w, func(Info) {
		time.Sleep(30 * time.Millisecond)
		stamp("insert")
	})
	s.Submit(w, func(info Info) {
		if info.Conflicts == 0 {
			t.Error("second writer of the same tuple should report a conflict stall")
		}
		stamp("delete")
	})
	s.Drain()

	if len(order) != 2 || order[0] != "insert" || order[1] != "delete" {
		t.Fatalf("conflicting tasks ran as %v, want [insert delete]", order)
	}
	st := s.Stats()
	if st.Tasks != 2 || st.ConflictStalls != 1 {
		t.Fatalf("stats = %+v, want 2 tasks, 1 stall", st)
	}
}

// TestIndependentTasksOverlap proves independent tasks really run
// concurrently: the first task blocks until the second one starts, which
// can only happen with overlapping execution.
func TestIndependentTasksOverlap(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	second := make(chan struct{})
	done := make(chan struct{})
	s.Submit(Footprint{Writes: []Write{{"x", 1, WholeRelation}}, Reads: []Read{{"r", WholeRelation}}}, func(Info) {
		select {
		case <-second:
		case <-time.After(5 * time.Second):
			t.Error("independent task was serialized behind the first")
		}
		close(done)
	})
	s.Submit(Footprint{Writes: []Write{{"x", 2, WholeRelation}}, Reads: []Read{{"r", WholeRelation}}}, func(Info) {
		close(second)
	})
	<-done
	s.Drain()
}

// TestRandomizedSerializability hammers the scheduler with tasks over a
// small footprint space and asserts the core guarantee: every pair of
// conflicting tasks executes in admission order (the earlier one
// finishes before the later one starts).
func TestRandomizedSerializability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rels := []string{"a", "b", "c"}

	for _, workers := range []int{2, 4, 8} {
		s := New(Options{Workers: workers})

		const n = 400
		fps := make([]Footprint, n)
		starts := make([]int64, n)
		ends := make([]int64, n)
		var seq atomic.Int64

		for i := 0; i < n; i++ {
			var f Footprint
			switch rng.Intn(10) {
			case 0:
				f = Barrier()
			default:
				f = Footprint{
					Writes: []Write{{Relation: rels[rng.Intn(len(rels))], FP: uint64(rng.Intn(4)), Shard: rng.Intn(3) - 1}},
				}
				if rng.Intn(2) == 0 {
					f.Reads = []Read{{Relation: rels[rng.Intn(len(rels))], Shard: rng.Intn(3) - 1}}
				}
			}
			fps[i] = f
			i := i
			s.Submit(f, func(Info) {
				starts[i] = seq.Add(1)
				if i%7 == 0 {
					time.Sleep(time.Millisecond)
				}
				ends[i] = seq.Add(1)
			})
		}
		s.Close()

		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !fps[i].Conflicts(fps[j]) {
					continue
				}
				if ends[i] > starts[j] {
					t.Fatalf("workers=%d: conflicting tasks %d and %d overlapped or ran out of order (end[%d]=%d, start[%d]=%d)",
						workers, i, j, i, ends[i], j, starts[j])
				}
			}
		}
	}
}

// TestConcurrentSubmitters exercises Submit from many goroutines under
// the race detector.
func TestConcurrentSubmitters(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Workers: 4, Metrics: NewMetrics(reg, "test")})

	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := Footprint{Writes: []Write{{Relation: "x", FP: uint64(g*1000 + i)}}}
				s.Submit(f, func(Info) { ran.Add(1) })
			}
		}(g)
	}
	wg.Wait()
	s.Drain()
	if ran.Load() != 400 {
		t.Fatalf("ran %d tasks, want 400", ran.Load())
	}
	st := s.Stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight after drain = %d, want 0", st.Inflight)
	}
	s.Close()
	if got := st.Tasks; got != 400 {
		t.Fatalf("stats tasks = %d, want 400", got)
	}
}

// TestDrainWaitsForStalledChains: Drain must wait for tasks that are
// admitted but still blocked behind a conflicting predecessor.
func TestDrainWaitsForStalledChains(t *testing.T) {
	s := New(Options{Workers: 4})
	defer s.Close()

	var done atomic.Int64
	w := Footprint{Writes: []Write{{"x", 7, WholeRelation}}}
	for i := 0; i < 5; i++ {
		s.Submit(w, func(Info) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
		})
	}
	s.Drain()
	if done.Load() != 5 {
		t.Fatalf("Drain returned with %d/5 tasks finished", done.Load())
	}
}
