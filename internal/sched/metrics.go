package sched

import (
	"time"

	"repro/internal/obs"
)

// Metrics are the cc_sched_* instrument handles for one scheduler. The
// families are shared across layers (serve, netdist) and distinguished
// by the layer label, so building two Metrics on one registry is fine.
type Metrics struct {
	// Tasks counts submitted tasks (cc_sched_tasks_total).
	Tasks *obs.Counter
	// ConflictStalls counts tasks admitted behind at least one
	// conflicting in-flight task (cc_sched_conflict_stalls_total).
	ConflictStalls *obs.Counter
	// Inflight gauges admitted-but-unfinished tasks (cc_sched_inflight).
	Inflight *obs.Gauge
	// WorkersBusy gauges workers currently running a task
	// (cc_sched_workers_busy).
	WorkersBusy *obs.Gauge
	// Wait distributes admission-to-dispatch delay in seconds
	// (cc_sched_wait_seconds).
	Wait *obs.Histogram
	// Footprint distributes the conflict-scan time of Submit in seconds
	// (cc_sched_footprint_seconds).
	Footprint *obs.Histogram
}

// footprintBuckets: the conflict scan is a memory-bound walk over the
// in-flight set — microseconds, not milliseconds.
var footprintBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 1e-3,
}

// NewMetrics registers (or fetches) the cc_sched_* families on reg and
// returns the handles for the given layer label ("serve", "netdist").
// Nil reg returns nil, which disables instrumentation.
func NewMetrics(reg *obs.Registry, layer string) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Tasks: reg.CounterVec("cc_sched_tasks_total",
			"Tasks submitted to the conflict-aware apply scheduler.", "layer").With(layer),
		ConflictStalls: reg.CounterVec("cc_sched_conflict_stalls_total",
			"Tasks admitted behind at least one conflicting in-flight task.", "layer").With(layer),
		Inflight: reg.GaugeVec("cc_sched_inflight",
			"Admitted, not yet finished scheduler tasks.", "layer").With(layer),
		WorkersBusy: reg.GaugeVec("cc_sched_workers_busy",
			"Apply workers currently running a task.", "layer").With(layer),
		Wait: reg.HistogramVec("cc_sched_wait_seconds",
			"Admission-to-dispatch delay per task.", nil, "layer").With(layer),
		Footprint: reg.HistogramVec("cc_sched_footprint_seconds",
			"Footprint conflict-scan time per submission.", footprintBuckets, "layer").With(layer),
	}
}

// observeSubmit records one submission's conflict-scan cost and stall
// status.
func (m *Metrics) observeSubmit(scan time.Duration, stalled bool) {
	m.Tasks.Inc()
	m.Footprint.Observe(scan.Seconds())
	if stalled {
		m.ConflictStalls.Inc()
	}
}
