package incremental

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

// checkAgainstOracle compares every IDB relation of the materialization
// against a fresh full evaluation.
func checkAgainstOracle(t *testing.T, m *Materialized, prog *ast.Program, db *store.Store, ctx string) {
	t.Helper()
	res, err := eval.Eval(prog, db)
	if err != nil {
		t.Fatalf("%s: oracle eval: %v", ctx, err)
	}
	for pred := range prog.IDBPreds() {
		want := tupleSet(res.Tuples(pred))
		got := tupleSet(m.Tuples(pred))
		if len(want) != len(got) {
			t.Fatalf("%s: %s has %d tuples, oracle %d\n got:  %v\n want: %v",
				ctx, pred, len(got), len(want), got, want)
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("%s: %s missing %s", ctx, pred, k)
			}
		}
	}
}

func tupleSet(ts []relation.Tuple) map[string]bool {
	out := map[string]bool{}
	for _, t := range ts {
		out[t.Key()] = true
	}
	return out
}

func TestIncrementalTransitiveClosure(t *testing.T) {
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	db := store.New()
	for i := int64(0); i < 5; i++ {
		if _, err := db.Insert("edge", relation.Ints(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Materialize(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "initial")
	// Deleting a middle edge splits the chain.
	if err := m.Apply(store.Del("edge", relation.Ints(2, 3))); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "after split")
	if m.idb["reach"].Contains(relation.Ints(0, 5)) {
		t.Error("stale path across deleted edge")
	}
	// Reconnect with a shortcut.
	if err := m.Apply(store.Ins("edge", relation.Ints(1, 4))); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "after shortcut")
	if !m.idb["reach"].Contains(relation.Ints(0, 5)) {
		t.Error("shortcut path not derived")
	}
}

func TestIncrementalRederivation(t *testing.T) {
	// Two parallel edges: deleting one must rederive paths through the
	// other (the classic DRed over-delete/rederive case).
	prog := parser.MustParseProgram(`
		reach(X,Y) :- edge(X,Y).
		reach(X,Y) :- reach(X,Z) & edge(Z,Y).`)
	db := store.New()
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := db.Insert("edge", relation.Ints(e[0], e[1])); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Materialize(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(store.Del("edge", relation.Ints(0, 2))); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "after delete of shortcut")
	if !m.idb["reach"].Contains(relation.Ints(0, 2)) {
		t.Error("reach(0,2) lost although derivable via (0,1),(1,2)")
	}
}

func TestIncrementalStratifiedNegation(t *testing.T) {
	prog := parser.MustParseProgram(`
		covered(E) :- ins(E,P) & policy(P).
		panic :- emp(E) & not covered(E).`)
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram("emp(ann). ins(ann,p1). policy(p1).")); err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if m.Holds(ast.PanicPred) {
		t.Fatal("covered employee flagged")
	}
	// Deleting the policy uncovers ann: panic must appear through the
	// negation (a deletion causing an insertion).
	if err := m.Apply(store.Del("policy", relation.Strs("p1"))); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "after policy delete")
	if !m.Holds(ast.PanicPred) {
		t.Error("panic not derived after policy deletion")
	}
	// Re-adding the policy covers ann again: panic must retract (an
	// insertion causing a deletion).
	if err := m.Apply(store.Ins("policy", relation.Strs("p1"))); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "after policy reinsert")
	if m.Holds(ast.PanicPred) {
		t.Error("panic not retracted after policy reinsertion")
	}
}

func TestIncrementalComparisons(t *testing.T) {
	prog := parser.MustParseProgram("panic :- emp(E,S) & S > 100.")
	db := store.New()
	m, err := Materialize(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(store.Ins("emp", relation.TupleOf(ast.Str("a"), ast.Int(50)))); err != nil {
		t.Fatal(err)
	}
	if m.Holds(ast.PanicPred) {
		t.Error("low salary fired")
	}
	if err := m.Apply(store.Ins("emp", relation.TupleOf(ast.Str("b"), ast.Int(500)))); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(ast.PanicPred) {
		t.Error("high salary missed")
	}
	if err := m.Apply(store.Del("emp", relation.TupleOf(ast.Str("b"), ast.Int(500)))); err != nil {
		t.Fatal(err)
	}
	if m.Holds(ast.PanicPred) {
		t.Error("panic not retracted")
	}
}

func TestIncrementalNoOpUpdates(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X).")
	db := store.New()
	if _, err := db.Insert("e", relation.Ints(1)); err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate insert and absent delete are no-ops.
	if err := m.Apply(store.Ins("e", relation.Ints(1))); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(store.Del("e", relation.Ints(9))); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, m, prog, db, "after no-ops")
}

func TestIncrementalRejectsIDBUpdate(t *testing.T) {
	prog := parser.MustParseProgram("p(X) :- e(X).")
	db := store.New()
	m, err := Materialize(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(store.Ins("p", relation.Ints(1))); err == nil {
		t.Error("update to derived predicate accepted")
	}
}

// TestIncrementalRandomizedOracle drives random update streams through
// several programs, checking every state against full re-evaluation.
func TestIncrementalRandomizedOracle(t *testing.T) {
	programs := []string{
		// Nonrecursive with join.
		"panic :- emp(E,D) & not dept(D).",
		// Union.
		"p(X) :- e(X) & f(X).\np(X) :- g(X).",
		// Recursion.
		"reach(X,Y) :- edge(X,Y).\nreach(X,Y) :- reach(X,Z) & edge(Z,Y).",
		// Recursion below negation.
		"reach(X,Y) :- edge(X,Y).\nreach(X,Y) :- reach(X,Z) & edge(Z,Y).\npanic :- node(X) & node(Y) & not reach(X,Y) & X <> Y.",
		// Comparisons and a diamond of intermediates.
		"lo(E) :- emp(E,S) & S < 50.\nhi(E) :- emp(E,S) & S > 100.\npanic :- lo(E) & hi(E).",
	}
	rels := map[string]int{
		"emp": 2, "dept": 1, "e": 1, "f": 1, "g": 1,
		"edge": 2, "node": 1,
	}
	rng := rand.New(rand.NewSource(99))
	for pi, src := range programs {
		prog := parser.MustParseProgram(src)
		used := map[string]int{}
		for _, rel := range prog.EDBPreds() {
			used[rel] = rels[rel]
		}
		db := store.New()
		m, err := Materialize(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for rel := range used {
			names = append(names, rel)
		}
		sort.Strings(names)
		for step := 0; step < 120; step++ {
			rel := names[rng.Intn(len(names))]
			tu := make(relation.Tuple, used[rel])
			for j := range tu {
				tu[j] = ast.Int(int64(rng.Intn(4)))
			}
			u := store.Update{Insert: rng.Intn(3) > 0, Relation: rel, Tuple: tu}
			if err := m.Apply(u); err != nil {
				t.Fatalf("program %d step %d: %v", pi, step, err)
			}
			checkAgainstOracle(t, m, prog, db, fmt.Sprintf("program %d step %d (%v)", pi, step, u))
		}
	}
}
