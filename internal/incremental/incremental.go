// Package incremental maintains materialized datalog evaluations under
// updates using the delete-and-rederive (DRed) discipline, the classical
// algorithm behind the view- and constraint-maintenance applications the
// paper sketches in Section 2 and Gupta's [1994] thesis develops. The
// global phase of the checking pipeline can use it to re-answer "does
// panic hold?" after each update without re-evaluating from scratch.
//
// For each stratum, an update is processed in three phases:
//
//  1. Over-delete: derivations that used a deleted fact (or, through a
//     negated subgoal, an inserted one) are deleted transitively.
//  2. Rederive: over-deleted tuples with an alternative derivation in
//     the remaining state are put back.
//  3. Insert: new derivations from inserted facts (or, through negation,
//     deleted ones) are added semi-naively.
//
// Deltas propagate stratum by stratum, so stratified negation is handled
// exactly. Correctness is validated in the tests against full
// re-evaluation on randomized update streams.
package incremental

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/store"
)

// Materialized is a maintained evaluation of one program over a store.
// The store remains owned by the caller, but all updates to it must flow
// through Apply, or the materialization goes stale (Rebuild recovers).
type Materialized struct {
	prog   *ast.Program
	db     *store.Store
	strata [][]string
	level  map[string]int // IDB pred -> stratum index
	idb    map[string]*relation.Relation
	arity  map[string]int
}

// Materialize evaluates prog over db and starts maintaining the result.
func Materialize(prog *ast.Program, db *store.Store) (*Materialized, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	strata, err := eval.Stratify(prog)
	if err != nil {
		return nil, err
	}
	m := &Materialized{
		prog:   prog,
		db:     db,
		strata: strata,
		level:  map[string]int{},
		arity:  prog.Preds(),
	}
	for i, layer := range strata {
		for _, p := range layer {
			m.level[p] = i
		}
	}
	return m, m.Rebuild()
}

// Rebuild recomputes the materialization from scratch.
func (m *Materialized) Rebuild() error {
	res, err := eval.Eval(m.prog, m.db)
	if err != nil {
		return err
	}
	m.idb = map[string]*relation.Relation{}
	for pred := range m.prog.IDBPreds() {
		rel := relation.New(pred, m.arity[pred])
		for _, t := range res.Tuples(pred) {
			rel.Insert(t)
		}
		m.idb[pred] = rel
	}
	return nil
}

// Holds reports whether the 0-ary predicate is derived.
func (m *Materialized) Holds(pred string) bool {
	r := m.idb[pred]
	return r != nil && r.Len() > 0
}

// Tuples returns the maintained tuples of an IDB predicate.
func (m *Materialized) Tuples(pred string) []relation.Tuple {
	r := m.idb[pred]
	if r == nil {
		return nil
	}
	return r.Tuples()
}

// delta tracks per-predicate insertions and deletions flowing between
// strata.
type delta struct {
	ins map[string][]relation.Tuple
	del map[string][]relation.Tuple
}

func newDelta() *delta {
	return &delta{ins: map[string][]relation.Tuple{}, del: map[string][]relation.Tuple{}}
}

func (d *delta) empty() bool { return len(d.ins) == 0 && len(d.del) == 0 }

// Apply performs the update on the store and maintains the IDB. The
// update is applied even when it changes nothing (idempotently).
func (m *Materialized) Apply(u store.Update) error {
	var changed bool
	if u.Insert {
		ch, err := m.db.Insert(u.Relation, u.Tuple)
		if err != nil {
			return err
		}
		changed = ch
	} else {
		changed = m.db.Delete(u.Relation, u.Tuple)
	}
	return m.NotifyApplied(u, changed)
}

// NotifyApplied propagates an update that the caller has ALREADY applied
// to the (possibly shared) store; changed reports whether the store
// actually changed. This is the entry point when several
// materializations maintain programs over one store: apply the update
// once, then notify each.
func (m *Materialized) NotifyApplied(u store.Update, changed bool) error {
	if !changed {
		return nil
	}
	if _, isIDB := m.level[u.Relation]; isIDB {
		return fmt.Errorf("incremental: cannot update derived predicate %s", u.Relation)
	}
	d := newDelta()
	if u.Insert {
		d.ins[u.Relation] = []relation.Tuple{u.Tuple.Clone()}
	} else {
		d.del[u.Relation] = []relation.Tuple{u.Tuple.Clone()}
	}
	return m.propagate(d)
}

// propagate runs DRed stratum by stratum, extending d with the IDB
// deltas it computes.
func (m *Materialized) propagate(d *delta) error {
	for si, layer := range m.strata {
		if err := m.dredStratum(si, layer, d); err != nil {
			return err
		}
	}
	return nil
}

// dredStratum updates one stratum's relations given the accumulated
// deltas of the EDB and lower strata, appending this stratum's own
// deltas to d. The stratum relations are manipulated through overlays,
// so the work per update is proportional to the delta, not to the
// materialization.
func (m *Materialized) dredStratum(si int, layer []string, d *delta) error {
	_ = si
	var rules []*ast.Rule
	for _, p := range layer {
		rules = append(rules, m.prog.RulesFor(p)...)
	}
	// Skip strata whose rules cannot be affected.
	affected := false
	for _, r := range rules {
		for _, l := range r.Body {
			if l.IsComp() {
				continue
			}
			p := l.Atom.Pred
			if len(d.ins[p]) > 0 || len(d.del[p]) > 0 {
				affected = true
			}
		}
	}
	if !affected {
		return nil
	}

	oldSrc := &stateView{m: m, d: d, old: true}
	overlays := map[string]*overlayRel{}
	for _, p := range layer {
		overlays[p] = newOverlay(m.idb[p])
	}
	newSrc := &stateView{m: m, d: d, old: false, overlay: overlays}

	// ---- Phase 1: over-delete ---------------------------------------
	// D accumulates candidate deletions for this stratum's predicates;
	// joins run against the OLD state.
	D := map[string]*relation.Relation{}
	for _, p := range layer {
		D[p] = relation.New(p, m.arity[p])
	}
	pending := map[string][]relation.Tuple{}
	seed := func(p string, ts []relation.Tuple) {
		if len(ts) > 0 {
			pending[p] = append(pending[p], ts...)
		}
	}
	for p, ts := range d.del {
		seed(p, ts)
	}
	for p, ts := range d.ins {
		// Insertions matter to phase 1 only through negated literals;
		// tag them with a distinct key handled below.
		seed("+"+p, ts)
	}
	for len(pending) > 0 {
		work := pending
		pending = map[string][]relation.Tuple{}
		for key, ts := range work {
			insKey := key[0] == '+'
			pred := key
			if insKey {
				pred = key[1:]
			}
			for _, r := range rules {
				for bi, l := range r.Body {
					if l.IsComp() || l.Atom.Pred != pred {
						continue
					}
					// A derivation dies when a positive premise was
					// deleted, or a negated premise became true.
					if (l.IsPos() && insKey) || (l.IsNeg() && !insKey) {
						continue
					}
					heads, err := m.joinRule(r, bi, ts, oldSrc)
					if err != nil {
						return err
					}
					for _, h := range heads {
						p := r.Head.Pred
						if m.idb[p].Contains(h) && D[p].Insert(h) {
							pending[p] = append(pending[p], h)
						}
					}
				}
			}
		}
	}
	for _, p := range layer {
		D[p].Each(func(t relation.Tuple) bool {
			overlays[p].remove(t)
			return true
		})
	}

	// ---- Phase 2: rederive --------------------------------------------
	// Over-deleted tuples with an alternative derivation in the new
	// (tentative) state come back. A rederivation can enable others, so
	// iterate to fixpoint over the shrinking candidate set.
	candidates := map[string][]relation.Tuple{}
	for _, p := range layer {
		candidates[p] = D[p].Tuples()
	}
	for changed := true; changed; {
		changed = false
		for _, p := range layer {
			remaining := candidates[p][:0]
			for _, t := range candidates[p] {
				ok, err := m.derivable(p, t, newSrc)
				if err != nil {
					return err
				}
				if ok {
					overlays[p].add(t)
					changed = true
				} else {
					remaining = append(remaining, t)
				}
			}
			candidates[p] = remaining
		}
	}

	// ---- Phase 3: insert ------------------------------------------------
	insPending := map[string][]relation.Tuple{}
	seedIns := func(p string, ts []relation.Tuple, viaNeg bool) {
		key := p
		if viaNeg {
			key = "-" + p
		}
		if len(ts) > 0 {
			insPending[key] = append(insPending[key], ts...)
		}
	}
	for p, ts := range d.ins {
		seedIns(p, ts, false)
	}
	for p, ts := range d.del {
		seedIns(p, ts, true)
	}
	for len(insPending) > 0 {
		work := insPending
		insPending = map[string][]relation.Tuple{}
		for key, ts := range work {
			negKey := key[0] == '-'
			pred := key
			if negKey {
				pred = key[1:]
			}
			for _, r := range rules {
				for bi, l := range r.Body {
					if l.IsComp() || l.Atom.Pred != pred {
						continue
					}
					// A new derivation arises when a positive premise was
					// inserted, or a negated premise became false.
					if (l.IsPos() && negKey) || (l.IsNeg() && !negKey) {
						continue
					}
					heads, err := m.joinRule(r, bi, ts, newSrc)
					if err != nil {
						return err
					}
					for _, h := range heads {
						p := r.Head.Pred
						if overlays[p].add(h) {
							insPending[p] = append(insPending[p], h)
						}
					}
				}
			}
		}
	}

	// Commit: install the deltas into the base relations in place.
	for _, p := range layer {
		removed, added := overlays[p].commit()
		if len(added) > 0 {
			d.ins[p] = append(d.ins[p], added...)
		}
		if len(removed) > 0 {
			d.del[p] = append(d.del[p], removed...)
		}
	}
	return nil
}

// derivable reports whether some rule for pred derives t against src.
func (m *Materialized) derivable(pred string, t relation.Tuple, src *stateView) (bool, error) {
	for _, r := range m.prog.RulesFor(pred) {
		s, ok := ast.Unify(r.Head.Args, t.Terms(), nil)
		if !ok {
			continue
		}
		found, err := m.ruleFires(r.Apply(s), src)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// ruleFires reports whether the (partially instantiated) rule body has a
// satisfying assignment against src.
func (m *Materialized) ruleFires(r *ast.Rule, src *stateView) (bool, error) {
	heads, err := m.joinRule(r, -1, nil, src)
	if err != nil {
		return false, err
	}
	return len(heads) > 0, nil
}

// joinRule evaluates the rule with body literal deltaPos ranging over the
// given tuples (deltaPos == -1 for a plain evaluation) and every other
// literal against src. It returns the derived ground head tuples.
func (m *Materialized) joinRule(r *ast.Rule, deltaPos int, deltaTuples []relation.Tuple, src *stateView) ([]relation.Tuple, error) {
	var out []relation.Tuple
	var rec func(bi int, s ast.Subst) error
	// Evaluate positive atoms first in order, deferring comparisons and
	// negations until their variables are bound — reuse a simple
	// two-pass scheme: positives in order with delta substitution, then
	// everything else.
	var order []int
	if deltaPos >= 0 {
		// The delta literal binds first: for a negated delta literal the
		// delta tuples are the only source of bindings.
		order = append(order, deltaPos)
	}
	for i, l := range r.Body {
		if i != deltaPos && l.IsPos() {
			order = append(order, i)
		}
	}
	for i, l := range r.Body {
		if i != deltaPos && !l.IsPos() {
			order = append(order, i)
		}
	}
	rec = func(oi int, s ast.Subst) error {
		if oi == len(order) {
			head := r.Head.Apply(s)
			t, err := relation.TermsToTuple(head.Args)
			if err != nil {
				return fmt.Errorf("incremental: non-ground head %s", head)
			}
			out = append(out, t)
			return nil
		}
		bi := order[oi]
		l := r.Body[bi].Apply(s)
		if bi == deltaPos && !l.IsComp() {
			// Bind against the delta tuples; the literal's own old/new
			// membership is implied by the delta's construction (only
			// actually-changed tuples are recorded), so no extra check.
			for _, t := range deltaTuples {
				if len(t) != l.Atom.Arity() {
					continue
				}
				if s2, ok := ast.Unify(l.Atom.Args, t.Terms(), s); ok {
					if err := rec(oi+1, s2); err != nil {
						return err
					}
				}
			}
			return nil
		}
		switch {
		case l.IsComp():
			v, ground := l.Comp.Ground()
			if !ground {
				return fmt.Errorf("incremental: comparison %s not ground", l.Comp)
			}
			if !v {
				return nil
			}
			return rec(oi+1, s)
		case l.IsNeg():
			t, err := relation.TermsToTuple(l.Atom.Args)
			if err != nil {
				return fmt.Errorf("incremental: negated subgoal %s not ground", l.Atom)
			}
			if src.contains(l.Atom.Pred, t) {
				return nil
			}
			return rec(oi+1, s)
		default:
			var candidates []relation.Tuple
			indexed := false
			for ci, arg := range l.Atom.Args {
				if arg.IsConst() {
					candidates = src.lookup(l.Atom.Pred, ci, arg.Const)
					indexed = true
					break
				}
			}
			if !indexed {
				candidates = src.tuples(l.Atom.Pred)
			}
			for _, t := range candidates {
				if len(t) != l.Atom.Arity() {
					continue
				}
				if s2, ok := ast.Unify(l.Atom.Args, t.Terms(), s); ok {
					if err := rec(oi+1, s2); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	if err := rec(0, ast.Subst{}); err != nil {
		return nil, err
	}
	return out, nil
}
