package incremental

import (
	"repro/internal/ast"
	"repro/internal/relation"
)

// stateView resolves predicate contents in either the pre-update (old)
// or post-update (new) state. The store and committed IDB relations
// always hold the NEW values; the old view un-applies the recorded
// deltas. The new view additionally consults the overlay, which carries
// the current stratum's tentative relations during DRed.
type stateView struct {
	m       *Materialized
	d       *delta
	old     bool
	overlay map[string]*overlayRel
}

// curOverlay returns the current-stratum overlay for pred in the new
// view, if any.
func (v *stateView) curOverlay(pred string) *overlayRel {
	if v.old || v.overlay == nil {
		return nil
	}
	return v.overlay[pred]
}

func (v *stateView) baseRelation(pred string) *relation.Relation {
	if r, ok := v.m.idb[pred]; ok {
		return r
	}
	return v.m.db.Relation(pred)
}

// tuples returns the predicate's contents in the selected state.
func (v *stateView) tuples(pred string) []relation.Tuple {
	if o := v.curOverlay(pred); o != nil {
		return o.tuples()
	}
	base := v.baseRelation(pred)
	var cur []relation.Tuple
	if base != nil {
		cur = base.Tuples()
	}
	if !v.old {
		return cur
	}
	// Old view: remove what the update inserted, restore what it deleted.
	ins := map[string]bool{}
	for _, t := range v.d.ins[pred] {
		ins[t.Key()] = true
	}
	out := make([]relation.Tuple, 0, len(cur))
	for _, t := range cur {
		if !ins[t.Key()] {
			out = append(out, t)
		}
	}
	seen := map[string]bool{}
	for _, t := range out {
		seen[t.Key()] = true
	}
	for _, t := range v.d.del[pred] {
		if !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	return out
}

// contains reports membership in the selected state.
func (v *stateView) contains(pred string, t relation.Tuple) bool {
	if o := v.curOverlay(pred); o != nil {
		return o.contains(t)
	}
	base := v.baseRelation(pred)
	in := base != nil && base.Contains(t)
	if !v.old {
		return in
	}
	if in {
		// Present now: it was present before unless the update inserted it.
		for _, x := range v.d.ins[pred] {
			if x.Equal(t) {
				return false
			}
		}
		return true
	}
	// Absent now: it was present before iff the update deleted it.
	for _, x := range v.d.del[pred] {
		if x.Equal(t) {
			return true
		}
	}
	return false
}

// lookup returns the predicate's tuples whose column col equals val in
// the selected state, using the base relation's hash index.
func (v *stateView) lookup(pred string, col int, val ast.Value) []relation.Tuple {
	if o := v.curOverlay(pred); o != nil {
		return o.lookup(col, val)
	}
	base := v.baseRelation(pred)
	var cur []relation.Tuple
	if base != nil && col < base.Arity() {
		cur = base.Lookup(col, val)
	}
	if !v.old {
		return cur
	}
	ins := map[string]bool{}
	for _, t := range v.d.ins[pred] {
		ins[t.Key()] = true
	}
	out := make([]relation.Tuple, 0, len(cur))
	seen := map[string]bool{}
	for _, t := range cur {
		if !ins[t.Key()] {
			out = append(out, t)
			seen[t.Key()] = true
		}
	}
	for _, t := range v.d.del[pred] {
		if col < len(t) && t[col].Equal(val) && !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	return out
}
