package incremental

import (
	"repro/internal/ast"
	"repro/internal/relation"
)

// overlayRel represents a stratum relation mid-update without copying
// it: the committed base plus a deletion set and an insertion set. A
// tuple is present when it is in ins, or in base and not in del;
// (re-)inserting a deleted tuple adds it to ins, which dominates del.
// All operations cost O(|delta|), never O(|base|).
type overlayRel struct {
	base *relation.Relation
	del  *relation.Relation
	ins  *relation.Relation
}

func newOverlay(base *relation.Relation) *overlayRel {
	return &overlayRel{
		base: base,
		del:  relation.New(base.Name()+"-", base.Arity()),
		ins:  relation.New(base.Name()+"+", base.Arity()),
	}
}

func (o *overlayRel) contains(t relation.Tuple) bool {
	if o.ins.Contains(t) {
		return true
	}
	return o.base.Contains(t) && !o.del.Contains(t)
}

// remove marks t deleted; it reports whether the visible contents
// changed.
func (o *overlayRel) remove(t relation.Tuple) bool {
	if !o.contains(t) {
		return false
	}
	o.ins.Delete(t)
	if o.base.Contains(t) {
		o.del.Insert(t)
	}
	return true
}

// add makes t present; it reports whether the visible contents changed.
func (o *overlayRel) add(t relation.Tuple) bool {
	if o.contains(t) {
		return false
	}
	o.ins.Insert(t)
	return true
}

func (o *overlayRel) tuples() []relation.Tuple {
	out := make([]relation.Tuple, 0, o.base.Len()+o.ins.Len())
	o.base.Each(func(t relation.Tuple) bool {
		if !o.del.Contains(t) {
			out = append(out, t)
		}
		return true
	})
	o.ins.Each(func(t relation.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func (o *overlayRel) lookup(col int, val ast.Value) []relation.Tuple {
	var out []relation.Tuple
	for _, t := range o.base.Lookup(col, val) {
		if !o.del.Contains(t) {
			out = append(out, t)
		}
	}
	out = append(out, o.ins.Lookup(col, val)...)
	return out
}

// commit applies the overlay to the base in place and returns the net
// deltas (tuples actually removed and added).
func (o *overlayRel) commit() (removed, added []relation.Tuple) {
	o.del.Each(func(t relation.Tuple) bool {
		// ins dominates del; a tuple in both stayed present.
		if !o.ins.Contains(t) {
			removed = append(removed, t)
		}
		return true
	})
	for _, t := range removed {
		o.base.Delete(t)
	}
	o.ins.Each(func(t relation.Tuple) bool {
		if o.base.Insert(t) {
			added = append(added, t)
		}
		return true
	})
	return removed, added
}
