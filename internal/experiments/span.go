package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// ExpSpanOverhead measures the cost of the distributed-tracing span
// layer on the D1 interval workload. Four arms run the same update
// stream:
//
//   - none: no tracer at all (the pre-span baseline).
//   - bridge-idle: the span bridge is installed as the checker's tracer
//     but no span is ever active — the every-request state of a server
//     whose sampling rate is 0, and the arm the ≤2% acceptance bound in
//     ISSUE 8 applies to.
//   - sampled: every update runs under a root span with the bridge
//     active, so each phase event becomes a recorded child span.
//   - sampled+store: as sampled, and the finished traces land in a
//     tail-sampling TraceStore (retention bookkeeping included).
//
// The claim: idle costs one pointer check per hook (within noise of
// none), and even full sampling stays a small constant per update.
func ExpSpanOverhead(density, updates, rounds int, seed int64) (Table, error) {
	t := Table{
		Title:   "Span overhead — D1 interval workload, per-update cost by tracing arm",
		Columns: []string{"arm", "updates", "traces", "total time", "time/update", "vs baseline"},
	}
	arms := []string{"none", "bridge-idle", "sampled", "sampled+store"}
	var baseline time.Duration
	for _, arm := range arms {
		var total time.Duration
		var traces int
		for round := 0; round < rounds; round++ {
			rng := rand.New(rand.NewSource(seed))
			db := store.New()
			for _, tu := range workload.Intervals(rng, density, 20, 200) {
				if _, err := db.Insert("l", tu); err != nil {
					return t, err
				}
			}
			for i := int64(0); i < 50; i++ {
				if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
					return t, err
				}
			}
			var spans *obs.SpanTracer
			var bridge *obs.SpanBridge
			opts := core.Options{LocalRelations: []string{"l"}}
			if arm != "none" {
				var spanStore *obs.TraceStore
				if arm == "sampled+store" {
					spanStore = obs.NewTraceStore(updates)
				}
				spans = obs.NewSpanTracer("exp", spanStore, 1)
				bridge = obs.NewSpanBridge(spans)
				opts.Tracer = bridge
			}
			chk := core.New(db, opts)
			if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
				return t, err
			}
			stream := workload.IntervalInserts(rng, updates, 10, 200, "l")
			start := time.Now()
			for _, u := range stream {
				var sp *obs.Span
				if arm == "sampled" || arm == "sampled+store" {
					sp = spans.StartRoot("exp.apply", obs.SpanContext{})
					bridge.SetActive(sp)
				}
				_, err := chk.Apply(u)
				if sp != nil {
					bridge.SetActive(nil)
					sp.End()
				}
				if err != nil {
					return t, err
				}
			}
			total += time.Since(start)
			if st := spans.Store(); st != nil {
				traces += st.Len()
			}
		}
		if arm == "none" {
			baseline = total
		}
		ratio := "—"
		if baseline > 0 && arm != "none" {
			ratio = fmt.Sprintf("%+.1f%%", 100*(float64(total)/float64(baseline)-1))
		}
		n := updates * rounds
		t.Rows = append(t.Rows, []string{
			arm, fmt.Sprint(n), fmt.Sprint(traces),
			total.String(), (total / time.Duration(n)).String(), ratio,
		})
	}
	t.Notes = append(t.Notes,
		"bridge-idle = SpanBridge installed, no active span: the per-request state when sampling says no (the ≤2% bound applies here)",
		"sampled = a root span per update, phase events recorded as child spans; +store adds tail-sampling retention bookkeeping",
		"single-run wall clocks are noisy — BenchmarkSpanOverhead is the statistically sound version of this table")
	return t, nil
}
