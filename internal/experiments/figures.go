package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/eval"
	"repro/internal/icq"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/store"
)

// ClassRepresentatives maps each of the twelve Fig 2.1 classes to a
// constraint program whose least class is exactly that class. The same
// fixtures drive the F2.1 table and the F4.1/F4.2 closure matrices.
func ClassRepresentatives() map[classify.Class]string {
	return map[classify.Class]string{
		{Shape: classify.SingleCQ}:                                    "panic :- dept(D) & boom(D).",
		{Shape: classify.SingleCQ, Arithmetic: true}:                  "panic :- dept(D) & boom(D) & D > 0.",
		{Shape: classify.SingleCQ, Negation: true}:                    "panic :- boom(D) & not dept(D).",
		{Shape: classify.SingleCQ, Negation: true, Arithmetic: true}:  "panic :- boom(D) & not dept(D) & D > 0.",
		{Shape: classify.UnionCQ}:                                     "panic :- dept(D) & boom(D).\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Arithmetic: true}:                   "panic :- dept(D) & boom(D) & D > 0.\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Negation: true}:                     "panic :- boom(D) & not dept(D).\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Negation: true, Arithmetic: true}:   "panic :- boom(D) & not dept(D) & D > 0.\npanic :- dept(D) & bang(D).",
		{Shape: classify.Recursive}:                                   "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D).",
		{Shape: classify.Recursive, Arithmetic: true}:                 "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & D > 0.",
		{Shape: classify.Recursive, Negation: true}:                   "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & not bang(D).",
		{Shape: classify.Recursive, Negation: true, Arithmetic: true}: "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & not bang(D) & D > 0.",
	}
}

// Fig21 regenerates Fig 2.1: the twelve classes, a representative
// constraint for each, and the classifier's verdict.
func Fig21() Table {
	t := Table{
		Title:   "Fig 2.1 — Classes of logical languages (12 classes)",
		Columns: []string{"class", "representative", "classified-as", "ok"},
	}
	reps := ClassRepresentatives()
	for _, cls := range classify.All() {
		src := reps[cls]
		prog := parser.MustParseProgram(src)
		got := classify.Classify(prog)
		ok := "yes"
		if got != cls {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{cls.String(), firstLine(src), got.String(), ok})
	}
	t.Notes = append(t.Notes, "lattice order: One CQ < Union of CQ's < Recursive Datalog; features add independently")
	return t
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " …"
		}
	}
	return s
}

// Fig41 regenerates Fig 4.1: which classes are preserved by the
// insertion rewriting of Theorem 4.2, verified constructively (rewrite a
// representative and classify the result) and semantically (C' on the
// old database agrees with C on the updated database over randomized
// databases).
func Fig41() Table {
	t := Table{
		Title:   "Fig 4.1 — Classes preserved under insertion (Theorem 4.2)",
		Columns: []string{"class", "rewritten-class", "preserved", "paper-circled", "agree", "semantics"},
	}
	reps := ClassRepresentatives()
	for _, cls := range classify.All() {
		prog := parser.MustParseProgram(reps[cls])
		cp, err := rewrite.Insert(prog, "dept", relation.Ints(7))
		if err != nil {
			t.Rows = append(t.Rows, []string{cls.String(), "error: " + err.Error(), "", "", "", ""})
			continue
		}
		after := classify.Classify(cp)
		preserved := after.LessEq(cls)
		want := classify.InsertionClosed(cls)
		sem := verifyRewrite(prog, cp, store.Ins("dept", relation.Ints(7)))
		t.Rows = append(t.Rows, []string{
			cls.String(), after.String(), yn(preserved), yn(want), yn(preserved == want), sem,
		})
	}
	t.Notes = append(t.Notes, "the 8 classes permitting multiple rules (union/recursive shapes) are closed")
	return t
}

// Fig42 regenerates Fig 4.2 for deletions (Theorem 4.3), choosing the
// encoding matching the class features as the paper's proof does.
func Fig42() Table {
	t := Table{
		Title:   "Fig 4.2 — Classes preserved under deletion (Theorem 4.3)",
		Columns: []string{"class", "encoding", "rewritten-class", "preserved", "paper-circled", "agree", "semantics"},
	}
	reps := ClassRepresentatives()
	for _, cls := range classify.All() {
		prog := parser.MustParseProgram(reps[cls])
		var cp *ast.Program
		var err error
		enc := "<>-split"
		if cls.Negation && !cls.Arithmetic {
			enc = "negated-subgoal"
			cp, err = rewrite.DeleteNeg(prog, "dept", relation.Ints(7))
		} else {
			cp, err = rewrite.DeleteArith(prog, "dept", relation.Ints(7))
		}
		if err != nil {
			t.Rows = append(t.Rows, []string{cls.String(), enc, "error: " + err.Error(), "", "", "", ""})
			continue
		}
		after := classify.Classify(cp)
		preserved := after.LessEq(cls)
		want := classify.DeletionClosed(cls)
		sem := verifyRewrite(prog, cp, store.Del("dept", relation.Ints(7)))
		t.Rows = append(t.Rows, []string{
			cls.String(), enc, after.String(), yn(preserved), yn(want), yn(preserved == want), sem,
		})
	}
	t.Notes = append(t.Notes, "the 6 classes with multiple rules AND a way to say \"differs from t\" (negation or arithmetic) are closed")
	return t
}

// verifyRewrite checks semantic equivalence of C' (pre-update) and C
// (post-update) on randomized small databases.
func verifyRewrite(c, cPrime *ast.Program, u store.Update) string {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		before := store.New()
		for _, rel := range []string{"dept", "boom", "bang"} {
			for i := 0; i < rng.Intn(4); i++ {
				if _, err := before.Insert(rel, relation.Ints(int64(rng.Intn(10)))); err != nil {
					return "err"
				}
			}
		}
		after := before.Clone()
		if err := u.Apply(after); err != nil {
			return "err"
		}
		got, err1 := eval.PanicHolds(cPrime, before)
		want, err2 := eval.PanicHolds(c, after)
		if err1 != nil || err2 != nil {
			return "err"
		}
		if got != want {
			return "MISMATCH"
		}
	}
	return "verified(40)"
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Fig61Program returns the generalized Fig 6.1 recursive datalog program
// for the forbidden-intervals constraint, plus the paper's own three-rule
// rendering for comparison.
func Fig61Program() (generated string, paper string, err error) {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		return "", "", err
	}
	a, err := icq.Analyze(cqc)
	if err != nil {
		return "", "", err
	}
	prog, err := a.GenerateProgram()
	if err != nil {
		return "", "", err
	}
	icq.AddCoverageQuery(prog, icq.IntervalCC(ast.Int(4), ast.Int(8)))
	paper = `interval(X,Y) :- l(X,Y).
interval(X,Y) :- interval(X,W) & interval(Z,Y) & Z <= W.
ok(A,B)       :- interval(X,Y) & X <= A & B <= Y.`
	return prog.String(), paper, nil
}

// Fig61Demo runs Example 5.3 / Fig 6.1 end to end through both the
// datalog and the direct implementations.
func Fig61Demo() (Table, error) {
	t := Table{
		Title:   "Fig 6.1 — forbidden intervals, L = {(3,6),(5,10)}",
		Columns: []string{"inserted", "forbidden-interval", "datalog-test", "direct-test", "agree"},
	}
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		return t, err
	}
	a, err := icq.Analyze(cqc)
	if err != nil {
		return t, err
	}
	L := []relation.Tuple{relation.Ints(3, 6), relation.Ints(5, 10)}
	db := store.New()
	for _, tu := range L {
		if _, err := db.Insert("l", tu); err != nil {
			return t, err
		}
	}
	for _, ins := range []relation.Tuple{
		relation.Ints(4, 8), relation.Ints(3, 10), relation.Ints(2, 8),
		relation.Ints(4, 12), relation.Ints(11, 12), relation.Ints(9, 2),
	} {
		ivs, err := a.IntervalsFor(ins)
		if err != nil {
			return t, err
		}
		ivStr := "(empty)"
		if len(ivs) == 1 {
			ivStr = ivs[0].String()
		}
		dl, err := a.CertifyInsertDatalog(ins, db)
		if err != nil {
			return t, err
		}
		dr, err := a.CertifyInsert(ins, L)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			ins.String(), ivStr, certStr(dl), certStr(dr), yn(dl == dr),
		})
	}
	return t, nil
}

func certStr(ok bool) string {
	if ok {
		return "safe"
	}
	return "must check remote"
}

var _ = fmt.Sprintf
