package experiments

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/serve/sdk"
	"repro/internal/store"
	"repro/internal/workload"
)

// ExpServe measures what each serving layer costs on the D1 interval
// workload: the same randomized check/apply stream is decided by direct
// core.Checker calls, by the in-process SDK (queue + admission + the
// decision machinery, no socket) and by the HTTP SDK against a loopback
// listener (adds JSON encode/decode and a real round trip). All three
// arms must produce identical verdict counts — the serving layers add
// latency, never decisions.
func ExpServe(density, updates, rounds int, seed int64) (Table, error) {
	t := Table{
		Title:   "Decision service — D1 interval workload, direct checker vs in-process SDK vs loopback HTTP",
		Columns: []string{"arm", "ops", "total time", "time/op", "vs direct", "admitted", "rejected"},
	}
	type armResult struct {
		total              time.Duration
		admitted, rejected int64
	}
	arms := []string{"direct", "sdk-inproc", "sdk-http"}
	results := make(map[string]*armResult)
	for _, arm := range arms {
		results[arm] = &armResult{}
	}

	for round := 0; round < rounds; round++ {
		// One identical stream per round, replayed on each arm.
		rng := rand.New(rand.NewSource(seed + int64(round)))
		type op struct {
			u     store.Update
			apply bool
		}
		stream := make([]op, 0, updates)
		for i := 0; i < updates; i++ {
			var u store.Update
			if rng.Intn(2) == 0 {
				lo := rng.Int63n(400)
				u = store.Ins("l", relation.Ints(lo, lo+1+rng.Int63n(20)))
			} else {
				u = store.Ins("r", relation.Ints(rng.Int63n(400)))
			}
			stream = append(stream, op{u: u, apply: rng.Intn(2) == 0})
		}

		for _, arm := range arms {
			chk, err := serveFixture(density, seed)
			if err != nil {
				return t, err
			}
			res := results[arm]
			var client *sdk.SDK
			var cleanup func()
			switch arm {
			case "direct":
			case "sdk-inproc":
				client, err = sdk.New(sdk.Config{Checker: chk, ClientID: "exp"})
				if err != nil {
					return t, err
				}
				cleanup = client.Close
			case "sdk-http":
				srv := serve.New(chk, serve.Config{})
				ts := httptest.NewServer(srv.Handler("", nil, nil))
				client, err = sdk.New(sdk.Config{URL: ts.URL, HTTPClient: ts.Client(), ClientID: "exp"})
				if err != nil {
					ts.Close()
					srv.Close()
					return t, err
				}
				cleanup = func() { ts.Close(); srv.Close() }
			}
			start := time.Now()
			for _, o := range stream {
				var ok bool
				switch {
				case client == nil && o.apply:
					rep, err := chk.Apply(o.u)
					if err != nil {
						return t, err
					}
					ok = rep.Applied
				case client == nil:
					rep, err := chk.Check(o.u)
					if err != nil {
						return t, err
					}
					ok = rep.Applied
				case o.apply:
					d, err := client.Apply(o.u)
					if err != nil {
						return t, err
					}
					ok = d.OK()
				default:
					d, err := client.Check(o.u)
					if err != nil {
						return t, err
					}
					ok = d.OK()
				}
				if ok {
					res.admitted++
				} else {
					res.rejected++
				}
			}
			res.total += time.Since(start)
			if cleanup != nil {
				cleanup()
			}
		}
	}

	direct := results["direct"]
	n := int64(updates * rounds)
	for _, arm := range arms {
		res := results[arm]
		if res.admitted != direct.admitted || res.rejected != direct.rejected {
			return t, fmt.Errorf("experiments: %s verdicts diverged: %d/%d admitted/rejected, direct %d/%d",
				arm, res.admitted, res.rejected, direct.admitted, direct.rejected)
		}
		ratio := "—"
		if arm != "direct" && direct.total > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(res.total)/float64(direct.total))
		}
		t.Rows = append(t.Rows, []string{
			arm, fmt.Sprint(n), res.total.String(), (res.total / time.Duration(n)).String(), ratio,
			fmt.Sprint(res.admitted), fmt.Sprint(res.rejected),
		})
	}
	t.Notes = append(t.Notes,
		"all arms run the identical randomized check/apply stream and must agree on every verdict — the table errors out otherwise",
		"sdk-inproc isolates the queue/admission cost; sdk-http adds JSON codec plus a loopback HTTP round trip per decision",
		"sustained-load percentiles (10k streams) come from cmd/ccload — BENCH_serve.json; this table is the single-stream overhead view")
	return t, nil
}

// serveFixture seeds the D1 store and checker the serving arms share.
func serveFixture(density int, seed int64) (*core.Checker, error) {
	rng := rand.New(rand.NewSource(seed))
	db := store.New()
	for _, tu := range workload.Intervals(rng, density, 20, 200) {
		if _, err := db.Insert("l", tu); err != nil {
			return nil, err
		}
	}
	for i := int64(0); i < 50; i++ {
		if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
			return nil, err
		}
	}
	chk := core.New(db, core.Options{LocalRelations: []string{"l"}})
	if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		return nil, err
	}
	return chk, nil
}
