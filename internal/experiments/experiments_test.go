package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig21AllAgree(t *testing.T) {
	tab := Fig21()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "yes" {
			t.Errorf("class %q misclassified as %q", row[0], row[2])
		}
	}
	if !strings.Contains(tab.Render(), "Fig 2.1") {
		t.Error("render missing title")
	}
}

func TestFig41MatchesPaper(t *testing.T) {
	tab := Fig41()
	circled := 0
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Errorf("closure disagreement for %q: preserved=%q circled=%q", row[0], row[2], row[3])
		}
		if row[3] == "yes" {
			circled++
		}
		if row[5] != "verified(40)" {
			t.Errorf("semantics not verified for %q: %q", row[0], row[5])
		}
	}
	if circled != 8 {
		t.Errorf("circled classes = %d, want 8", circled)
	}
}

func TestFig42MatchesPaper(t *testing.T) {
	tab := Fig42()
	circled := 0
	for _, row := range tab.Rows {
		if row[5] != "yes" {
			t.Errorf("closure disagreement for %q", row[0])
		}
		if row[4] == "yes" {
			circled++
		}
		if row[6] != "verified(40)" {
			t.Errorf("semantics not verified for %q: %q", row[0], row[6])
		}
	}
	if circled != 6 {
		t.Errorf("circled classes = %d, want 6", circled)
	}
}

func TestFig61(t *testing.T) {
	gen, paper, err := Fig61Program()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gen, "iv$cc") || !strings.Contains(paper, "interval") {
		t.Error("programs look wrong")
	}
	demo, err := Fig61Demo()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range demo.Rows {
		if row[4] != "yes" {
			t.Errorf("datalog/direct disagreement on %s", row[0])
		}
	}
	// The canonical (4,8) row must be safe; (2,8) must not.
	verdicts := map[string]string{}
	for _, row := range demo.Rows {
		verdicts[row[0]] = row[2]
	}
	if verdicts["(4,8)"] != "safe" {
		t.Errorf("(4,8) verdict = %q", verdicts["(4,8)"])
	}
	if verdicts["(2,8)"] == "safe" {
		t.Error("(2,8) wrongly safe")
	}
}

func TestExpTheorem51VsKlug(t *testing.T) {
	tab := ExpTheorem51VsKlug([]int{1, 2, 3})
	for _, row := range tab.Rows {
		if row[6] != "yes" {
			t.Errorf("k=%s: deciders disagree: %v", row[0], row)
		}
		if row[2] != "yes" {
			t.Errorf("k=%s: self-containment not detected", row[0])
		}
	}
}

func TestExpTheorem51VsKlugRandomNoDisagreements(t *testing.T) {
	tab := ExpTheorem51VsKlugRandom(150, 17)
	if tab.Rows[0][2] != "0" {
		t.Errorf("disagreements = %s", tab.Rows[0][2])
	}
}

func TestExpLocalTestMonotoneInDensity(t *testing.T) {
	tab, err := ExpLocalTest([]int{5, 200}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// More local coverage must certify at least as many inserts.
	small, large := tab.Rows[0][2], tab.Rows[1][2]
	if small > large && len(small) >= len(large) {
		t.Errorf("certification not monotone: |L|=5 → %s, |L|=200 → %s", small, large)
	}
}

func TestExpRACompile(t *testing.T) {
	tab, err := ExpRACompile([]int{10, 1000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Error("compiled expression must not depend on the data")
	}
}

func TestExpIntervalAblationAgrees(t *testing.T) {
	tab, err := ExpIntervalAblation([]int{5, 20}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Errorf("|L|=%s: the three implementations disagree", row[0])
		}
	}
}

func TestExpSubsumption(t *testing.T) {
	tab := ExpSubsumption([]int{1, 2, 3})
	for _, row := range tab.Rows {
		if row[1] != "yes" {
			t.Errorf("k=%s: self-subsumption failed: %v", row[0], row)
		}
	}
}

func TestExpDistributedStagedBeatsNaive(t *testing.T) {
	tab, err := ExpDistributed([]int{150}, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	var staged, naive []string
	for _, row := range tab.Rows {
		switch row[1] {
		case "staged":
			staged = row
		case "naive":
			naive = row
		}
	}
	if staged == nil || naive == nil {
		t.Fatal("missing strategy rows")
	}
	if staged[5] >= naive[5] && len(staged[5]) >= len(naive[5]) {
		t.Errorf("staged cost %s not below naive cost %s", staged[5], naive[5])
	}
}

func TestExpExample41(t *testing.T) {
	tab, err := ExpExample41()
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: +dept(toy) against C1 must be certified ("yes").
	if !strings.HasPrefix(tab.Rows[0][2], "yes") {
		t.Errorf("+dept(toy) vs C1: %q", tab.Rows[0][2])
	}
	// High-salary insert against C2 must NOT be certified.
	if strings.HasPrefix(tab.Rows[3][2], "yes") {
		t.Errorf("violating insert certified: %q", tab.Rows[3][2])
	}
	// Deleting an employee cannot violate C1.
	if !strings.HasPrefix(tab.Rows[4][2], "yes") {
		t.Errorf("-emp vs C1: %q", tab.Rows[4][2])
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "T",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"xxxxx", "y"}},
		Notes:   []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"T\n=", "a", "bbbb", "xxxxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestExpNetDistributedAgreesWithModel: the wire run must reach the
// same verdicts as the cost-model run and measure exactly the predicted
// number of round trips.
func TestExpNetDistributedAgreesWithModel(t *testing.T) {
	tab, err := ExpNetDistributed([]int{10, 150}, 40, time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[7] != "yes" {
			t.Errorf("density %s: wire run disagrees with model: %v", row[0], row)
		}
		if row[2] != row[3] {
			t.Errorf("density %s: predicted %s trips, measured %s", row[0], row[2], row[3])
		}
		if row[5] != "50" {
			t.Errorf("density %s: sync tuples = %s, want 50", row[0], row[5])
		}
	}
}

// TestExpResidualCounters pins the pattern-cache accounting of the
// residual A/B: the stream amortizes onto one compilation per update
// shape (+l, +r) and everything else hits; the noresidual arm never
// touches the residual machinery. Wall clocks are not asserted — the
// speedup claim lives in BenchmarkApplyResidual.
func TestExpResidualCounters(t *testing.T) {
	tab, err := ExpResidual(20, 30, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	find := func(arm string) []string {
		t.Helper()
		for _, row := range tab.Rows {
			if row[0] == arm {
				return row
			}
		}
		t.Fatalf("no %s row in %v", arm, tab.Rows)
		return nil
	}
	// Columns: arm, updates, total, per-update, ratio, hits, compiled, entries.
	off := find("noresidual")
	if off[5] != "0" || off[6] != "0" || off[7] != "0" {
		t.Errorf("noresidual arm touched the residual cache: %v", off)
	}
	on := find("residual")
	if on[1] != "30" || on[5] != "28" || on[6] != "2" || on[7] != "2" {
		t.Errorf("residual counters = updates:%s hits:%s compiled:%s entries:%s, want 30/28/2/2",
			on[1], on[5], on[6], on[7])
	}
}
