package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// ExpResidual is the residual-dispatch A/B on the D1 interval workload:
// the residual arm compiles each update pattern once into a specialized
// residual program and decides every later update of that pattern with
// the pattern VM, the noresidual arm (ccheck -noresidual) runs the full
// staged pipeline, which for this workload means the phase-4 global
// evaluation on every update. Both arms see the same stream and must
// return identical verdicts; the table also reports the pattern-cache
// counters, which show the whole stream amortizing onto two
// compilations (insert-l and insert-r).
func ExpResidual(density, updates, rounds int, seed int64) (Table, error) {
	t := Table{
		Title:   "Residual compilation — D1 interval workload, residual dispatch vs -noresidual",
		Columns: []string{"arm", "updates", "total time", "time/update", "vs noresidual", "resid hits", "resid compiled", "resid entries"},
	}
	arms := []struct {
		name    string
		disable bool
	}{
		{"noresidual", true},
		{"residual", false},
	}
	var baseline time.Duration
	for _, arm := range arms {
		var total time.Duration
		var hits, compiled int64
		var entries int
		for round := 0; round < rounds; round++ {
			rng := rand.New(rand.NewSource(seed))
			db := store.New()
			for _, tu := range workload.Intervals(rng, density, 20, 200) {
				if _, err := db.Insert("l", tu); err != nil {
					return t, err
				}
			}
			for i := int64(0); i < 50; i++ {
				if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
					return t, err
				}
			}
			chk := core.New(db, core.Options{
				LocalRelations:  []string{"l"},
				DisableResidual: arm.disable,
			})
			if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
				return t, err
			}
			var stream []store.Update
			for k, u := range workload.IntervalInserts(rng, updates/2, 10, 200, "l") {
				stream = append(stream, u,
					store.Ins("r", relation.Ints(20000+int64(k))))
			}
			start := time.Now()
			for _, u := range stream {
				if _, err := chk.Apply(u); err != nil {
					return t, err
				}
			}
			total += time.Since(start)
			st := chk.Stats()
			hits += st.ResidualHits
			compiled += st.ResidualCompiled
			entries = st.ResidualEntries
		}
		if arm.name == "noresidual" {
			baseline = total
		}
		ratio := "—"
		if baseline > 0 && arm.name != "noresidual" {
			ratio = fmt.Sprintf("%+.1f%%", 100*(float64(total)/float64(baseline)-1))
		}
		n := (updates / 2) * 2 * rounds
		t.Rows = append(t.Rows, []string{
			arm.name, fmt.Sprint(n), total.String(), (total / time.Duration(n)).String(), ratio,
			fmt.Sprint(hits), fmt.Sprint(compiled), fmt.Sprint(entries),
		})
	}
	t.Notes = append(t.Notes,
		"the constraint spans a local and a remote relation, so the noresidual arm cannot certify locally and pays the global evaluation on every update",
		"residual entries stay at 2 — one compiled pattern per update shape (+l, +r) serves the whole stream",
		"single-run wall clocks are noisy — BenchmarkApplyResidual (BENCH_residual.json) is the statistically sound version, including allocs/op")
	return t, nil
}
