package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// ExpTraceOverhead measures the cost of the decision-trace hooks on the
// D1 interval workload: the same update stream runs with no tracer, with
// obs.Disabled (the hooks fire but Enabled() says no — the ccheck
// default when -trace is off), and with a live buffering tracer. The
// claim in ISSUE/EXPERIMENTS: the disabled arm stays within noise of the
// no-tracer baseline, so instrumentation can ship always-compiled-in.
func ExpTraceOverhead(density, updates, rounds int, seed int64) (Table, error) {
	t := Table{
		Title:   "Tracing overhead — D1 interval workload, per-update cost by tracer arm",
		Columns: []string{"arm", "updates", "events", "total time", "time/update", "vs baseline"},
	}
	arms := []struct {
		name   string
		tracer func() obs.Tracer
	}{
		{"none", func() obs.Tracer { return nil }},
		{"disabled", func() obs.Tracer { return obs.Disabled }},
		{"buffer", func() obs.Tracer { return obs.NewBufferTracer(updates) }},
	}
	var baseline time.Duration
	for _, arm := range arms {
		var total time.Duration
		var events int
		for round := 0; round < rounds; round++ {
			rng := rand.New(rand.NewSource(seed))
			db := store.New()
			for _, tu := range workload.Intervals(rng, density, 20, 200) {
				if _, err := db.Insert("l", tu); err != nil {
					return t, err
				}
			}
			for i := int64(0); i < 50; i++ {
				if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
					return t, err
				}
			}
			tr := arm.tracer()
			chk := core.New(db, core.Options{LocalRelations: []string{"l"}, Tracer: tr})
			if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
				return t, err
			}
			stream := workload.IntervalInserts(rng, updates, 10, 200, "l")
			start := time.Now()
			for _, u := range stream {
				if _, err := chk.Apply(u); err != nil {
					return t, err
				}
			}
			total += time.Since(start)
			if buf, ok := tr.(*obs.BufferTracer); ok {
				events += len(buf.All())
			}
		}
		if arm.name == "none" {
			baseline = total
		}
		ratio := "—"
		if baseline > 0 && arm.name != "none" {
			ratio = fmt.Sprintf("%+.1f%%", 100*(float64(total)/float64(baseline)-1))
		}
		n := updates * rounds
		t.Rows = append(t.Rows, []string{
			arm.name, fmt.Sprint(n), fmt.Sprint(events),
			total.String(), (total / time.Duration(n)).String(), ratio,
		})
	}
	t.Notes = append(t.Notes,
		"none = Options.Tracer nil; disabled = obs.Disabled (hooks present, Enabled()==false); buffer = live ring tracer",
		"single-run wall clocks are noisy — BenchmarkTraceOverhead is the statistically sound version of this table")
	return t, nil
}
