package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/ast"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/icq"
	"repro/internal/parser"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/store"
	"repro/internal/subsume"
	"repro/internal/workload"
)

// ExpTheorem51VsKlug compares the paper's all-mappings implication test
// (Theorem 5.1) against Klug's order-enumeration test on self-containment
// of chain CQCs with k duplicate r-predicates: |H| grows like k!, the
// number of linear orders like the ordered Bell numbers. The paper's
// prediction: both are exponential in the worst case, but Theorem 5.1's
// single implication wins when duplicate predicates are few.
func ExpTheorem51VsKlug(ks []int) Table {
	t := Table{
		Title:   "Theorem 5.1 vs Klug [1988] — chain CQC self-containment, k duplicate predicates",
		Columns: []string{"k", "mappings |H|", "thm5.1", "thm5.1 time", "klug", "klug time", "agree"},
	}
	for _, k := range ks {
		c1 := workload.ChainCQC(k)
		c2 := workload.ChainCQC(k)
		nH := containment.CountMappings(c1, []*ast.Rule{c2})

		start := time.Now()
		got51, err := containment.Theorem51(c1, c2)
		d51 := time.Since(start)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), "", "err", err.Error(), "", "", ""})
			continue
		}
		// Klug's enumeration over 2k variables grows with the ordered Bell
		// numbers (k=4 already means ~5.5e5 orders of 8 elements); skip it
		// beyond k=3 — the divergence is the point of the comparison.
		if k > 3 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), fmt.Sprint(nH),
				yn(got51), d51.String(), "—", "skipped (order blowup)", "—",
			})
			continue
		}
		start = time.Now()
		gotK, err := containment.Klug(c1, c2)
		dK := time.Since(start)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), "", "", "", "err", err.Error(), ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(nH),
			yn(got51), d51.String(), yn(gotK), dK.String(), yn(got51 == gotK),
		})
	}
	t.Notes = append(t.Notes,
		"Klug enumerates every total order of C1's 2k variables; Theorem 5.1 checks one implication over |H| disjuncts")
	return t
}

// ExpTheorem51VsKlugRandom cross-validates the two deciders on random
// normal-form CQC pairs and reports agreement plus aggregate timing.
func ExpTheorem51VsKlugRandom(trials int, seed int64) Table {
	t := Table{
		Title:   "Theorem 5.1 vs Klug — randomized cross-validation",
		Columns: []string{"trials", "containments", "disagreements", "thm5.1 total", "klug total"},
	}
	rng := rand.New(rand.NewSource(seed))
	var d51, dK time.Duration
	contained, disagree := 0, 0
	for i := 0; i < trials; i++ {
		c1 := workload.RandomCQC(rng, []string{"r", "s"}, 2, 1+rng.Intn(2), 1+rng.Intn(3))
		c2 := workload.RandomCQC(rng, []string{"r", "s"}, 2, 1+rng.Intn(2), 1+rng.Intn(2))
		start := time.Now()
		got51, err1 := containment.Theorem51(c1, c2)
		d51 += time.Since(start)
		start = time.Now()
		gotK, err2 := containment.Klug(c1, c2)
		dK += time.Since(start)
		if err1 != nil || err2 != nil {
			continue
		}
		if got51 {
			contained++
		}
		if got51 != gotK {
			disagree++
		}
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(trials), fmt.Sprint(contained), fmt.Sprint(disagree), d51.String(), dK.String(),
	})
	return t
}

// ExpLocalTest measures the Theorem 5.2 complete local test on the
// forbidden-interval family: verdict quality (certified fraction vs the
// stream's true safety) across local-coverage densities.
func ExpLocalTest(sizes []int, seed int64) (Table, error) {
	t := Table{
		Title:   "Theorem 5.2 — complete local test, forbidden intervals",
		Columns: []string{"|L|", "inserts", "certified", "certified%", "avg time/insert"},
	}
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		return t, err
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		L := workload.Intervals(rng, n, 20, 200)
		inserts := workload.Intervals(rng, 50, 10, 200)
		certified := 0
		start := time.Now()
		for _, ins := range inserts {
			ok, err := reduction.LocalTest(cqc, ins, L)
			if err != nil {
				return t, err
			}
			if ok {
				certified++
			}
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(inserts)), fmt.Sprint(certified),
			fmt.Sprintf("%.0f%%", 100*float64(certified)/float64(len(inserts))),
			(el / time.Duration(len(inserts))).String(),
		})
	}
	t.Notes = append(t.Notes, "denser local coverage certifies more inserts without touching remote data")
	return t, nil
}

// ExpRACompile demonstrates Theorem 5.3's data independence: compile time
// for the RA complete local test does not grow with |L|, while evaluation
// scales linearly.
func ExpRACompile(sizes []int, seed int64) (Table, error) {
	t := Table{
		Title:   "Theorem 5.3 — relational-algebra complete local test (arithmetic-free)",
		Columns: []string{"|L|", "compile time", "eval time", "expression"},
	}
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Y,W) & s(W,X).")
	rng := rand.New(rand.NewSource(seed))
	for _, n := range sizes {
		db := store.New()
		for i := 0; i < n; i++ {
			if _, err := db.Insert("l", relation.Ints(rng.Int63n(50), rng.Int63n(50))); err != nil {
				return t, err
			}
		}
		ins := relation.Ints(3, 4)
		start := time.Now()
		expr, err := reduction.CompileRA(rule, "l", ins)
		if err != nil {
			return t, err
		}
		compile := time.Since(start)
		start = time.Now()
		if _, err := expr.Eval(db); err != nil {
			return t, err
		}
		evalT := time.Since(start)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), compile.String(), evalT.String(), expr.String()})
	}
	t.Notes = append(t.Notes, "compile cost is exponential only in the constraint, independent of the data (Theorem 5.3)")
	return t, nil
}

// ExpIntervalAblation compares the three complete-local-test
// implementations for ICQs — the paper's nonlinear Fig 6.1 recursive
// datalog program, the engineered linear-merge variant, and the direct
// sort-and-sweep — across |L|.
func ExpIntervalAblation(sizes []int, seed int64) (Table, error) {
	t := Table{
		Title:   "Theorem 6.1 ablation — Fig 6.1 datalog (nonlinear) vs linear merge vs direct sweep",
		Columns: []string{"|L|", "nonlinear time", "linear time", "direct time", "agree"},
	}
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		return t, err
	}
	a, err := icq.Analyze(cqc)
	if err != nil {
		return t, err
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		L := workload.Intervals(rng, n, 20, 100)
		db := store.New()
		for _, tu := range L {
			if _, err := db.Insert("l", tu); err != nil {
				return t, err
			}
		}
		inserts := workload.Intervals(rng, 10, 10, 100)
		agree := true
		var dNonlinear, dLinear, dDirect time.Duration
		for _, ins := range inserts {
			start := time.Now()
			gotN, err := a.CertifyInsertDatalog(ins, db)
			dNonlinear += time.Since(start)
			if err != nil {
				return t, err
			}
			start = time.Now()
			gotL, err := a.CertifyInsertDatalogLinear(ins, db)
			dLinear += time.Since(start)
			if err != nil {
				return t, err
			}
			start = time.Now()
			gotS, err := a.CertifyInsert(ins, L)
			dDirect += time.Since(start)
			if err != nil {
				return t, err
			}
			if gotN != gotS || gotL != gotS {
				agree = false
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dNonlinear.String(), dLinear.String(), dDirect.String(), yn(agree),
		})
	}
	t.Notes = append(t.Notes,
		"the nonlinear fixpoint joins derived x derived intervals; the linear variant joins derived x basis; the sweep is O(|L| log |L|)")
	return t, nil
}

// ExpSubsumption measures Section 3 subsumption (Theorem 3.1 via
// containment) as query size grows — the NP-complete core whose
// "constraints tend to be short" escape hatch the paper leans on.
func ExpSubsumption(sizes []int) Table {
	t := Table{
		Title:   "Section 3 — constraint subsumption cost vs constraint size",
		Columns: []string{"subgoals", "subsumed", "time"},
	}
	for _, k := range sizes {
		c := ast.NewProgram(workload.ChainCQC(k))
		set := []*ast.Program{ast.NewProgram(workload.ChainCQC(k))}
		start := time.Now()
		res, err := subsume.Subsumes(c, set)
		el := time.Since(start)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), "err: " + err.Error(), ""})
			continue
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), res.Verdict.String(), el.String()})
	}
	return t
}

// ExpDistributed is the headline experiment (D1): fraction of updates
// decided without remote access, and total remote cost, as the local
// coverage density varies — with the staged pipeline versus the naive
// always-evaluate strategy.
func ExpDistributed(densities []int, updates int, seed int64) (Table, error) {
	t := Table{
		Title:   "D1 — distributed maintenance: local coverage density vs remote cost",
		Columns: []string{"|L|", "strategy", "decided-locally", "remote-trips", "remote-tuples", "cost", "workers", "cache-hit%"},
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, n := range densities {
		for _, strategy := range []string{"staged", "naive"} {
			for _, workers := range workerCounts {
				rng := rand.New(rand.NewSource(seed))
				db := store.New()
				for _, tu := range workload.Intervals(rng, n, 20, 200) {
					if _, err := db.Insert("l", tu); err != nil {
						return t, err
					}
				}
				// Remote points safely outside the interval spread.
				for i := int64(0); i < 50; i++ {
					if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
						return t, err
					}
				}
				// Both arms measure the staged pipeline's locality; the
				// residual arm is measured separately by ExpResidual.
				opts := core.Options{LocalRelations: []string{"l"}, Workers: workers, DisableResidual: true}
				if strategy == "naive" {
					opts.DisableUpdateOnly = true
					opts.DisableLocalData = true
				}
				sys := dist.NewWithOptions(db, opts, dist.DefaultCost)
				if err := sys.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
					return t, err
				}
				db.ResetReads()
				for _, u := range workload.IntervalInserts(rng, updates, 10, 200, "l") {
					if _, err := sys.Apply(u); err != nil {
						return t, err
					}
				}
				st := sys.Stats()
				cst := sys.Checker.Stats()
				t.Rows = append(t.Rows, []string{
					fmt.Sprint(n), strategy,
					fmt.Sprintf("%d/%d", st.DecidedLocally, st.Updates),
					fmt.Sprint(st.RemoteTrips), fmt.Sprint(st.RemoteTuples),
					fmt.Sprintf("%.0f", st.Cost),
					fmt.Sprint(workers),
					fmt.Sprintf("%.0f%%", 100*cst.CacheHitRate()),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"staged = unaffected → update-only → complete local test → global; naive = always evaluate globally",
		"denser local data certifies more inserts locally; the naive strategy pays one remote trip per update",
		"verdicts and costs are identical across worker counts; cache-hit% is the decision-cache rate over the stream")
	return t, nil
}

// ExpExample41 reproduces the Section 4 worked example: inserting toy
// into dept is certified from constraints+update alone.
func ExpExample41() (Table, error) {
	t := Table{
		Title:   "Example 4.1 — query-independence of updates (Section 4)",
		Columns: []string{"update", "constraint", "certified-by-rewrite+subsumption"},
	}
	c1 := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D).")
	c2 := parser.MustParseProgram("panic :- emp(E,D,S) & S > 100.")
	cases := []struct {
		u store.Update
		c *ast.Program
		n string
	}{
		{store.Ins("dept", relation.Strs("toy")), c1, "C1 (referential)"},
		{store.Ins("dept", relation.Strs("toy")), c2, "C2 (salary cap)"},
		{store.Ins("emp", relation.TupleOf(ast.Str("x"), ast.Str("toy"), ast.Int(50))), c2, "C2 (salary cap)"},
		{store.Ins("emp", relation.TupleOf(ast.Str("x"), ast.Str("toy"), ast.Int(500))), c2, "C2 (salary cap)"},
		{store.Del("emp", relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))), c1, "C1 (referential)"},
	}
	for _, cse := range cases {
		res, err := rewrite.UpdateSafe(cse.c, []*ast.Program{c1, c2}, cse.u)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{cse.u.String(), cse.n, res.Verdict.String() + " (" + res.Method + ")"})
	}
	return t, nil
}
