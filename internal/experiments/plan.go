package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// ExpPlanCache is the compile-once A/B on the D1 interval workload with
// every update forced through the phase-4 global evaluation: the
// compiled arm reuses one cached plan per (constraint, store shape)
// across the stream, the noplancache arm re-derives validation,
// stratification and join order on every evaluation (ccheck
// -noplancache). Both arms share the process-wide intern pool, so the
// delta isolates plan reuse alone; the allocation story is in
// BENCH_plan.json.
func ExpPlanCache(density, updates, rounds int, seed int64) (Table, error) {
	t := Table{
		Title:   "Plan cache — D1 interval workload, all updates global, compiled vs -noplancache",
		Columns: []string{"arm", "updates", "total time", "time/update", "vs noplancache", "plan hits", "plan misses", "plan entries"},
	}
	arms := []struct {
		name    string
		disable bool
	}{
		{"noplancache", true},
		{"compiled", false},
	}
	var baseline time.Duration
	for _, arm := range arms {
		var total time.Duration
		var hits, misses int64
		var entries int
		for round := 0; round < rounds; round++ {
			rng := rand.New(rand.NewSource(seed))
			db := store.New()
			for _, tu := range workload.Intervals(rng, density, 20, 200) {
				if _, err := db.Insert("l", tu); err != nil {
					return t, err
				}
			}
			for i := int64(0); i < 50; i++ {
				if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
					return t, err
				}
			}
			chk := core.New(db, core.Options{
				LocalRelations:    []string{"l"},
				DisablePlanCache:  arm.disable,
				DisableUpdateOnly: true,
				DisableLocalData:  true,
				// Measure the plan cache through the global phase;
				// residual dispatch would bypass it entirely.
				DisableResidual: true,
			})
			if err := chk.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
				return t, err
			}
			var stream []store.Update
			for k, u := range workload.IntervalInserts(rng, updates/2, 10, 200, "l") {
				stream = append(stream, u,
					store.Ins("r", relation.Ints(20000+int64(k))))
			}
			start := time.Now()
			for _, u := range stream {
				if _, err := chk.Apply(u); err != nil {
					return t, err
				}
			}
			total += time.Since(start)
			st := chk.Stats()
			hits += st.PlanHits
			misses += st.PlanMisses
			entries = st.PlanEntries
		}
		if arm.name == "noplancache" {
			baseline = total
		}
		ratio := "—"
		if baseline > 0 && arm.name != "noplancache" {
			ratio = fmt.Sprintf("%+.1f%%", 100*(float64(total)/float64(baseline)-1))
		}
		n := (updates / 2) * 2 * rounds
		t.Rows = append(t.Rows, []string{
			arm.name, fmt.Sprint(n), total.String(), (total / time.Duration(n)).String(), ratio,
			fmt.Sprint(hits), fmt.Sprint(misses), fmt.Sprint(entries),
		})
	}
	t.Notes = append(t.Notes,
		"early phases disabled so every update pays the global evaluation the cache targets",
		fmt.Sprintf("intern pool holds %d values process-wide after the run", relation.InternSize()),
		"single-run wall clocks are noisy — BenchmarkApplyCompiled (BENCH_plan.json) is the statistically sound version, including allocs/op")
	return t, nil
}
