package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/netdist"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

// ExpNetDistributed (D-net) replays the D1 workload over the real wire:
// the remote relation r lives behind a netdist site reached through the
// loopback transport with injected latency, while an identical
// dist.System run predicts the cost from its model. The table puts the
// model's predicted round trips next to the coordinator's measured
// trips, wire tuples, and wall-clock network time — the check that the
// cost model the paper's argument rests on matches what a networked
// deployment actually pays.
func ExpNetDistributed(densities []int, updates int, latency time.Duration, seed int64) (Table, error) {
	t := Table{
		Title:   "D-net — D1 workload over the wire (loopback transport, injected latency " + latency.String() + ")",
		Columns: []string{"|L|", "decided-locally", "trips (model)", "trips (measured)", "wire tuples", "sync tuples", "net time", "agree"},
	}
	const constraint = "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."
	for _, n := range densities {
		rng := rand.New(rand.NewSource(seed))
		L := workload.Intervals(rng, n, 20, 200)
		stream := workload.IntervalInserts(rand.New(rand.NewSource(seed+1)), updates, 10, 200, "l")

		// Arm 1: one store holding everything; remote cost is modeled.
		full := store.New()
		remote := store.New()
		local := store.New()
		for _, tu := range L {
			for _, db := range []*store.Store{full, local} {
				if _, err := db.Insert("l", tu); err != nil {
					return t, err
				}
			}
		}
		for i := int64(0); i < 50; i++ {
			for _, db := range []*store.Store{full, remote} {
				if _, err := db.Insert("r", relation.Ints(10000+i)); err != nil {
					return t, err
				}
			}
		}
		sys := dist.NewWithOptions(full, core.Options{LocalRelations: []string{"l"}, DisableResidual: true}, dist.DefaultCost)
		if err := sys.Checker.AddConstraintSource("fi", constraint); err != nil {
			return t, err
		}

		// Arm 2: r behind a loopback site with injected latency.
		lb := netdist.NewLoopback()
		lb.AddSite("siteR", netdist.NewServer(remote, []string{"r"}))
		lb.SetLatency("siteR", latency)
		co, err := netdist.New(local, []netdist.SiteSpec{{Site: "siteR", Relations: []string{"r"}}}, lb,
			netdist.Options{Checker: core.Options{LocalRelations: []string{"l"}, DisableResidual: true}})
		if err != nil {
			return t, err
		}
		if err := co.Checker.AddConstraintSource("fi", constraint); err != nil {
			return t, err
		}

		agree := true
		for _, u := range stream {
			want, err := sys.Apply(u)
			if err != nil {
				return t, err
			}
			got, err := co.Apply(u)
			if err != nil {
				return t, err
			}
			if want.Applied != got.Applied || len(want.Decisions) != len(got.Decisions) {
				agree = false
			}
		}
		mst := sys.Stats()
		nst := co.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%d/%d", nst.DecidedLocally, nst.Updates),
			fmt.Sprint(mst.RemoteTrips), fmt.Sprint(nst.RoundTrips),
			fmt.Sprint(nst.WireTuples), fmt.Sprint(nst.SyncTuples),
			nst.NetTime.Round(time.Millisecond).String(),
			yn(agree && mst.RemoteTrips == nst.RoundTrips),
		})
	}
	t.Notes = append(t.Notes,
		"trips (model) is dist.System's cost-model prediction; trips (measured) counts frames the coordinator actually sent after the initial sync",
		"every request/response crosses the frame codec, so wire tuples are what TCP would carry; sync tuples is the one-time mirror bootstrap",
		"net time is wall clock spent inside transport round trips, dominated by the injected per-request latency")
	return t, nil
}
