// Package experiments regenerates every figure and experiment of the
// paper as printable tables: the Fig 2.1 language lattice, the Fig
// 4.1/4.2 closure matrices, the Fig 6.1 interval program, the Theorem
// 5.1 vs Klug comparison, the Theorem 5.2/5.3 complete local tests, and
// the distributed remote-access experiment motivating the whole paper.
// cmd/ccrepro prints them; the repository benchmarks measure the same
// code paths.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render draws the table with aligned columns.
func (t Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}
