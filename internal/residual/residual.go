// Package residual partially evaluates a constraint against the symbolic
// form of an update — relation, polarity, and the argument shape of the
// harmful occurrences — into a compiled residual test that runs on the
// hot path in place of the full staged pipeline.
//
// The construction is the simplified integrity checking of Nicolas
// [1982] as systematized by Lloyd/Topor and Martinenghi, specialized to
// this repository's flat constraints (every rule head is the 0-ary goal
// panic, every body atom a stored relation). Under the standing
// invariant that all constraints hold before each update, a post-update
// panic derivation must use the update somewhere:
//
//   - inserting t into R can create new derivations only through the
//     positive occurrences of R: for each occurrence, unify its argument
//     vector with t (σ = mgu) and the residual disjunct is σ(body minus
//     that occurrence), evaluated on the post-update database;
//   - deleting t from R can create new derivations only through the
//     negated occurrences of R (a literal not R(…) can only become true
//     by the deletion): σ as above, and the newly-true literal is
//     dropped from σ(body).
//
// The union of disjuncts over all rules × harmful occurrences is exact:
// panic is derivable after the update iff some disjunct is derivable.
// Occurrences whose constants clash with the tuple contribute nothing
// and fold away at compile time; comparisons ground under σ constant-
// fold; disjuncts whose comparison sets are unsatisfiable (internal/
// ineq) are pruned. What remains reduces to one of three outcomes:
// always safe (no disjuncts survive), always violating (a disjunct has
// an empty body), or a residual goal — typically one indexed probe plus
// a few comparisons.
//
// To make residuals cacheable across an update stream whose tuples vary,
// compilation is parameterized: tuple positions where no harmful
// occurrence carries a constant become runtime parameters ($i = t[i]),
// so one compiled residual serves every tuple of the pattern. Positions
// where some occurrence is a constant are pinned — the concrete value is
// baked in (enabling the compile-time folding above) and participates in
// the cache key.
package residual

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ineq"
	"repro/internal/relation"
	"repro/internal/store"
)

// Options tune residual compilation; they mirror the evaluator's A/B
// switches so a residual answers exactly like the pipeline arm it
// replaces.
type Options struct {
	// DisableIndexes makes residual joins keep textual atom order and
	// fetch candidates by scan-and-filter instead of bound-first hash
	// probes (the ccheck -noindex discipline).
	DisableIndexes bool
}

// Outcome classifies a compiled residual.
type Outcome int

const (
	// AlwaysSafe: no disjunct survived compilation — the update pattern
	// cannot create a panic derivation, whatever the database holds.
	AlwaysSafe Outcome = iota
	// AlwaysViolating: some disjunct reduced to the empty body — the
	// update itself completes a panic derivation, whatever the database
	// holds (given that the constraint held before).
	AlwaysViolating
	// ResidualGoal: a non-trivial residual remains and must be evaluated
	// against the post-update database.
	ResidualGoal
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case AlwaysSafe:
		return "always-safe"
	case AlwaysViolating:
		return "always-violating"
	case ResidualGoal:
		return "residual-goal"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Shape is the compile-relevant skeleton of a (constraint, relation,
// polarity) pattern: whether the pair is residual-eligible at all, and
// which tuple positions are pinned (carry a constant in some harmful
// occurrence, so their concrete value participates in compilation and
// the cache key).
type Shape struct {
	Eligible bool
	// Arity is the widest harmful-occurrence arity (-1 when the
	// constraint has no harmful occurrence of the relation, in which
	// case any tuple is trivially safe).
	Arity int
	// Pinned[i] reports that some harmful occurrence has a constant at
	// position i; len(Pinned) == max(Arity, 0).
	Pinned []bool
}

// DeriveShape analyzes prog for updates of the given polarity on rel.
// Eligibility requires the flat constraint form the correctness argument
// rests on: every rule head is panic and no body atom mentions panic.
// Negation and comparisons are fine; helper (IDB) predicates are not —
// those constraints fall back to the full pipeline.
func DeriveShape(prog *ast.Program, rel string, insert bool) Shape {
	if rel == ast.PanicPred {
		return Shape{}
	}
	for _, r := range prog.Rules {
		if r.Head.Pred != ast.PanicPred {
			return Shape{}
		}
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == ast.PanicPred {
				return Shape{}
			}
		}
	}
	sh := Shape{Eligible: true, Arity: -1}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !harmful(l, rel, insert) {
				continue
			}
			if n := len(l.Atom.Args); n > sh.Arity {
				sh.Arity = n
			}
		}
	}
	if sh.Arity < 0 {
		return sh
	}
	sh.Pinned = make([]bool, sh.Arity)
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !harmful(l, rel, insert) {
				continue
			}
			for i, a := range l.Atom.Args {
				if a.IsConst() {
					sh.Pinned[i] = true
				}
			}
		}
	}
	return sh
}

// harmful reports whether the literal is an occurrence of rel through
// which the update polarity can create new panic derivations: positive
// occurrences for inserts, negated ones for deletes.
func harmful(l ast.Literal, rel string, insert bool) bool {
	if l.IsComp() || l.Atom.Pred != rel {
		return false
	}
	if insert {
		return l.IsPos()
	}
	return l.IsNeg()
}

// sterm is a symbolic term during compilation: a constant, a reference
// to an update-tuple position (parameter), or a still-free rule variable.
type sterm struct {
	kind skind
	val  ast.Value // stConst
	pos  int       // stParam: tuple position
	name string    // stVar
}

type skind uint8

const (
	stConst skind = iota
	stParam
	stVar
)

// slit is a symbolic body literal after σ: a comparison or an atom over
// sterms. Unification guards (parameter-parameter or parameter-constant
// equalities induced by repeated variables and pinned clashes) are
// represented as Eq comparisons.
type slit struct {
	comp bool
	op   ast.CompOp
	l, r sterm
	neg  bool
	pred string
	args []sterm
}

// Residual is a compiled residual test for one (constraint, pattern,
// pinned values) triple. It is immutable after compilation and safe for
// concurrent Decide calls.
type Residual struct {
	outcome Outcome
	noIndex bool
	// disjuncts in rule/occurrence order; empty unless ResidualGoal.
	disjuncts []*disjunct
	maxRegs   int
}

// Outcome reports the compile-time classification.
func (r *Residual) Outcome() Outcome { return r.outcome }

// Disjuncts reports how many residual disjuncts survived compilation.
func (r *Residual) Disjuncts() int { return len(r.disjuncts) }

// Compile partially evaluates prog against the update pattern
// (rel, insert polarity, tuple t) under shape sh. Positions pinned by sh
// bake t's value in; the rest become parameters, so the result may be
// reused for any tuple agreeing with t on the pinned positions. The
// database contributes only its shape (relation arities), never tuples.
func Compile(prog *ast.Program, rel string, insert bool, t relation.Tuple, sh Shape, db *store.Store, opts Options) *Residual {
	res := &Residual{noIndex: opts.DisableIndexes}
	for _, rule := range prog.Rules {
		for oi, l := range rule.Body {
			if !harmful(l, rel, insert) || len(l.Atom.Args) != len(t) {
				continue
			}
			body, ok := specialize(rule, oi, t, sh)
			if !ok {
				continue // constant clash or unsatisfiable comparisons
			}
			d := plan(body, db, opts)
			if d == nil {
				continue // a dead atom made the disjunct underivable
			}
			if len(d.steps) == 0 {
				// The update alone completes a derivation: nothing left to
				// check at runtime and no other disjunct can change that.
				return &Residual{outcome: AlwaysViolating, noIndex: opts.DisableIndexes}
			}
			res.disjuncts = append(res.disjuncts, d)
			if d.regs > res.maxRegs {
				res.maxRegs = d.regs
			}
		}
	}
	if len(res.disjuncts) > 0 {
		res.outcome = ResidualGoal
	}
	return res
}

// specialize builds the symbolic body of the disjunct for one harmful
// occurrence: σ(body minus the occurrence) plus unification guards, with
// ground comparisons folded and the ineq-unsatisfiable conjunctions
// pruned. ok is false when the disjunct folds away entirely.
func specialize(rule *ast.Rule, oi int, t relation.Tuple, sh Shape) ([]slit, bool) {
	occ := rule.Body[oi].Atom
	sigma := make(map[string]sterm)
	var guards []slit
	for i, a := range occ.Args {
		// The tuple side: pinned positions are the concrete value, the
		// rest the runtime parameter $i.
		tv := sterm{kind: stParam, pos: i}
		if sh.Pinned[i] {
			tv = sterm{kind: stConst, val: t[i]}
		}
		if a.IsConst() {
			// Pinned by construction, so tv is a constant: decide now.
			if !a.Const.Equal(tv.val) {
				return nil, false
			}
			continue
		}
		prev, bound := sigma[a.Var]
		if !bound {
			sigma[a.Var] = tv
			continue
		}
		// Repeated variable in the occurrence: both bindings must agree.
		if prev.kind == stConst && tv.kind == stConst {
			if !prev.val.Equal(tv.val) {
				return nil, false
			}
			continue
		}
		guards = append(guards, slit{comp: true, op: ast.Eq, l: prev, r: tv})
	}
	body := guards
	for bi, l := range rule.Body {
		if bi == oi {
			continue
		}
		if l.IsComp() {
			s := slit{comp: true, op: l.Comp.Op, l: applySigma(l.Comp.Left, sigma), r: applySigma(l.Comp.Right, sigma)}
			if s.l.kind == stConst && s.r.kind == stConst {
				if !s.op.Eval(s.l.val, s.r.val) {
					return nil, false
				}
				continue // true: drop the folded literal
			}
			body = append(body, s)
			continue
		}
		args := make([]sterm, len(l.Atom.Args))
		for i, a := range l.Atom.Args {
			args[i] = applySigma(a, sigma)
		}
		body = append(body, slit{neg: l.IsNeg(), pred: l.Atom.Pred, args: args})
	}
	if !satisfiable(body) {
		return nil, false
	}
	return body, true
}

// applySigma maps one rule term into the symbolic domain.
func applySigma(a ast.Term, sigma map[string]sterm) sterm {
	if a.IsConst() {
		return sterm{kind: stConst, val: a.Const}
	}
	if b, ok := sigma[a.Var]; ok {
		return b
	}
	return sterm{kind: stVar, name: a.Var}
}

// satisfiable asks internal/ineq whether the disjunct's comparison
// conjunction (guards included) admits any assignment, treating
// parameters as fresh variables P$i — a namespace user programs cannot
// produce. An unsatisfiable conjunction makes the disjunct underivable
// for every tuple of the pattern.
func satisfiable(body []slit) bool {
	var conj []ast.Comparison
	for _, l := range body {
		if !l.comp {
			continue
		}
		conj = append(conj, ast.NewComparison(symTerm(l.l), l.op, symTerm(l.r)))
	}
	if len(conj) == 0 {
		return true
	}
	return ineq.Satisfiable(conj)
}

// symTerm renders an sterm for the ineq solver.
func symTerm(s sterm) ast.Term {
	switch s.kind {
	case stConst:
		return ast.C(s.val)
	case stParam:
		return ast.V(fmt.Sprintf("P$%d", s.pos))
	}
	return ast.V(s.name)
}

// Program renders the residual as a plain constraint program for the
// concrete tuple t — parameters substituted, registers as fresh R$n
// variables — suitable for cross-checking against the full evaluator or
// shipping to a subquery server. An AlwaysViolating residual renders as
// the fact panic; AlwaysSafe as a program with no panic rule.
func (r *Residual) Program(t relation.Tuple) *ast.Program {
	prog := ast.NewProgram()
	if r.outcome == AlwaysViolating {
		prog.Rules = append(prog.Rules, ast.Fact(ast.Atom{Pred: ast.PanicPred}))
		return prog
	}
	for _, d := range r.disjuncts {
		rule := &ast.Rule{Head: ast.Atom{Pred: ast.PanicPred}}
		for i := range d.steps {
			rule.Body = append(rule.Body, d.steps[i].literal(t))
		}
		prog.Rules = append(prog.Rules, rule)
	}
	return prog
}

// literal renders one compiled step back into AST form under tuple t.
func (s *step) literal(t relation.Tuple) ast.Literal {
	term := func(a arg) ast.Term {
		switch a.kind {
		case argConst:
			return ast.C(a.val)
		case argParam:
			return ast.C(t[a.idx])
		}
		return ast.V(fmt.Sprintf("R$%d", a.idx))
	}
	if s.kind == stepComp {
		return ast.Cmp(ast.NewComparison(term(s.l), s.op, term(s.r)))
	}
	args := make([]ast.Term, len(s.args))
	for i, a := range s.args {
		args[i] = term(a)
	}
	atom := ast.Atom{Pred: s.pred, Args: args}
	if s.kind == stepNeg {
		return ast.Neg(atom)
	}
	return ast.Pos(atom)
}
