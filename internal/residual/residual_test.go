package residual

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func prog(t *testing.T, src string) *ast.Program {
	t.Helper()
	return parser.MustParseProgram(src)
}

func TestDeriveShapeEligibility(t *testing.T) {
	for _, tc := range []struct {
		src      string
		rel      string
		insert   bool
		eligible bool
		arity    int
		pinned   []bool
	}{
		// Flat constraint, positive occurrence of the inserted relation.
		{"panic :- emp(E,D) & not dept(D).", "emp", true, true, 2, []bool{false, false}},
		// Deleting dept is harmful through the negated occurrence.
		{"panic :- emp(E,D) & not dept(D).", "dept", false, true, 1, []bool{false}},
		// Inserting dept has no harmful occurrence: any tuple is safe.
		{"panic :- emp(E,D) & not dept(D).", "dept", true, true, -1, nil},
		// A constant in a harmful occurrence pins the position.
		{"panic :- emp(E,sales,S) & emp(E,accounting,S).", "emp", true, true, 3, []bool{false, true, false}},
		// Helper (IDB) predicates disqualify the whole constraint.
		{"panic :- boss(E,E).\nboss(E,M) :- mgr(E,M).", "mgr", true, false, 0, nil},
		// Updates to the goal predicate itself are never eligible.
		{"panic :- p(X).", "panic", true, false, 0, nil},
	} {
		sh := DeriveShape(prog(t, tc.src), tc.rel, tc.insert)
		if sh.Eligible != tc.eligible {
			t.Errorf("%q %s insert=%v: eligible=%v, want %v", tc.src, tc.rel, tc.insert, sh.Eligible, tc.eligible)
			continue
		}
		if !sh.Eligible {
			continue
		}
		if sh.Arity != tc.arity {
			t.Errorf("%q %s: arity=%d, want %d", tc.src, tc.rel, sh.Arity, tc.arity)
		}
		if len(sh.Pinned) != len(tc.pinned) {
			t.Errorf("%q %s: pinned=%v, want %v", tc.src, tc.rel, sh.Pinned, tc.pinned)
			continue
		}
		for i := range tc.pinned {
			if sh.Pinned[i] != tc.pinned[i] {
				t.Errorf("%q %s: pinned=%v, want %v", tc.src, tc.rel, sh.Pinned, tc.pinned)
				break
			}
		}
	}
}

// compileFor derives the shape and compiles in one step, failing the test
// on an ineligible pattern.
func compileFor(t *testing.T, src, rel string, insert bool, tu relation.Tuple, db *store.Store) *Residual {
	t.Helper()
	p := prog(t, src)
	sh := DeriveShape(p, rel, insert)
	if !sh.Eligible {
		t.Fatalf("%q not residual-eligible for %s", src, rel)
	}
	return Compile(p, rel, insert, tu, sh, db, Options{})
}

func TestCompileOutcomes(t *testing.T) {
	db := store.New()
	// The update alone completes the derivation.
	r := compileFor(t, "panic :- p(X).", "p", true, relation.Strs("a"), db)
	if r.Outcome() != AlwaysViolating {
		t.Errorf("bare occurrence: outcome %v, want always-violating", r.Outcome())
	}
	if !r.Decide(db, relation.Strs("a")) {
		t.Error("always-violating residual decided safe")
	}
	// No harmful occurrence: always safe.
	r = compileFor(t, "panic :- emp(E,D) & not dept(D).", "dept", true, relation.Strs("toy"), db)
	if r.Outcome() != AlwaysSafe {
		t.Errorf("benign insert: outcome %v, want always-safe", r.Outcome())
	}
	if r.Decide(db, relation.Strs("toy")) {
		t.Error("always-safe residual decided violating")
	}
	// A pinned constant clashing with the tuple folds the disjunct away.
	r = compileFor(t, "panic :- p(a) & q(X).", "p", true, relation.Strs("b"), db)
	if r.Outcome() != AlwaysSafe {
		t.Errorf("constant clash: outcome %v, want always-safe", r.Outcome())
	}
	// The matching pinned value leaves the rest of the body as residual.
	r = compileFor(t, "panic :- p(a) & q(X).", "p", true, relation.Strs("a"), db)
	if r.Outcome() != ResidualGoal || r.Disjuncts() != 1 {
		t.Errorf("pinned match: outcome %v disjuncts %d, want residual-goal/1", r.Outcome(), r.Disjuncts())
	}
	// An ineq-unsatisfiable comparison set prunes at compile time: the
	// surviving conjunction X < 3 & X > 5 over the parameter is empty.
	r = compileFor(t, "panic :- p(X) & X < 3 & X > 5.", "p", true, relation.Ints(4), db)
	if r.Outcome() != AlwaysSafe {
		t.Errorf("unsatisfiable comparisons: outcome %v, want always-safe", r.Outcome())
	}
	// A ground-false comparison after pinning folds the disjunct.
	r = compileFor(t, "panic :- p(7,X) & q(X).", "p", true, relation.Ints(7, 1), db)
	if r.Outcome() != ResidualGoal {
		t.Errorf("pinned fold: outcome %v, want residual-goal", r.Outcome())
	}
	// Arity mismatch between tuple and every occurrence: trivially safe.
	r = compileFor(t, "panic :- p(X,Y) & q(X).", "p", true, relation.Ints(1), db)
	if r.Outcome() != AlwaysSafe {
		t.Errorf("arity mismatch: outcome %v, want always-safe", r.Outcome())
	}
}

func TestRepeatedVariableGuard(t *testing.T) {
	// panic :- p(X,X): neither position is pinned, so one compiled
	// residual serves every binary tuple; the repeated variable becomes a
	// parameter-parameter equality guard.
	db := store.New()
	r := compileFor(t, "panic :- p(X,X).", "p", true, relation.Strs("a", "a"), db)
	if r.Outcome() != ResidualGoal {
		t.Fatalf("outcome %v, want residual-goal", r.Outcome())
	}
	if !r.Decide(db, relation.Strs("c", "c")) {
		t.Error("p(c,c) not flagged")
	}
	if r.Decide(db, relation.Strs("a", "b")) {
		t.Error("p(a,b) flagged")
	}
}

func TestDecideDeleteNegatedOccurrence(t *testing.T) {
	// Referential integrity: deleting a department is harmful through the
	// negated occurrence; the residual asks whether any employee still
	// references it on the post-update database.
	db := store.New()
	for _, f := range [][]string{{"ann", "toy"}, {"bob", "shoe"}} {
		if _, err := db.Insert("emp", relation.Strs(f...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []string{"toy", "shoe"} {
		if _, err := db.Insert("dept", relation.Strs(d)); err != nil {
			t.Fatal(err)
		}
	}
	r := compileFor(t, "panic :- emp(E,D) & not dept(D).", "dept", false, relation.Strs("toy"), db)
	if r.Outcome() != ResidualGoal {
		t.Fatalf("outcome %v, want residual-goal", r.Outcome())
	}
	// Residuals evaluate post-update: delete first, then decide.
	del := store.Del("dept", relation.Strs("toy"))
	if err := del.Apply(db); err != nil {
		t.Fatal(err)
	}
	if !r.Decide(db, relation.Strs("toy")) {
		t.Error("deleting referenced dept not flagged")
	}
	// The same compiled residual (no pinned positions) serves shoe after
	// bob is gone: safe.
	if !db.Delete("emp", relation.Strs("bob", "shoe")) {
		t.Fatal("fixture delete failed")
	}
	if err := store.Del("dept", relation.Strs("shoe")).Apply(db); err != nil {
		t.Fatal(err)
	}
	if r.Decide(db, relation.Strs("shoe")) {
		t.Error("deleting unreferenced dept flagged")
	}
}

// TestDecideMatchesEval drives randomized interval streams through the
// compiled residual and the full evaluator on identical post-update
// stores; the residual's verdict must equal "panic derivable".
func TestDecideMatchesEval(t *testing.T) {
	const src = "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."
	p := prog(t, src)
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		db := store.New()
		for i := 0; i < 3; i++ {
			lo := rng.Int63n(50)
			if _, err := db.Insert("l", relation.Ints(lo, lo+rng.Int63n(30))); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Insert("r", relation.Ints(rng.Int63n(120))); err != nil {
				t.Fatal(err)
			}
		}
		// The simplified-checking argument rests on the standing invariant
		// that the constraint holds before the update; discard pre-states
		// that already violate it.
		if pre, err := eval.PanicHolds(p, db.Clone()); err != nil {
			t.Fatal(err)
		} else if pre {
			continue
		}
		checked++
		var u store.Update
		if rng.Intn(2) == 0 {
			lo := rng.Int63n(80)
			u = store.Ins("l", relation.Ints(lo, lo+rng.Int63n(40)))
		} else {
			u = store.Ins("r", relation.Ints(rng.Int63n(120)))
		}
		sh := DeriveShape(p, u.Relation, u.Insert)
		if !sh.Eligible {
			t.Fatal("interval pattern ineligible")
		}
		for _, opts := range []Options{{}, {DisableIndexes: true}} {
			res := Compile(p, u.Relation, u.Insert, u.Tuple, sh, db, opts)
			post := db.Clone()
			if err := u.Apply(post); err != nil {
				t.Fatal(err)
			}
			want, err := eval.PanicHolds(p, post.Clone())
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Decide(post, u.Tuple); got != want {
				t.Fatalf("trial %d opts %+v: residual=%v eval=%v for %v on\n%s",
					trial, opts, got, want, u, db)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d trials survived the pre-state filter", checked)
	}
}

// TestProgramRendering checks that the rendered residual program agrees
// with Decide when run through the full evaluator — the cross-check the
// subquery path and the oracle tests rely on.
func TestProgramRendering(t *testing.T) {
	db := store.New()
	for _, tu := range [][]int64{{3, 6}, {5, 10}} {
		if _, err := db.Insert("l", relation.Ints(tu[0], tu[1])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("r", relation.Ints(100)); err != nil {
		t.Fatal(err)
	}
	r := compileFor(t, "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.", "l", true, relation.Ints(90, 110), db)
	for _, tc := range []struct {
		tu   relation.Tuple
		want bool
	}{
		{relation.Ints(90, 110), true},
		{relation.Ints(40, 50), false},
	} {
		post := db.Clone()
		if _, err := post.Insert("l", tc.tu); err != nil {
			t.Fatal(err)
		}
		if got := r.Decide(post, tc.tu); got != tc.want {
			t.Fatalf("Decide(%v) = %v, want %v", tc.tu, got, tc.want)
		}
		holds, err := eval.PanicHolds(r.Program(tc.tu), post)
		if err != nil {
			t.Fatal(err)
		}
		if holds != tc.want {
			t.Errorf("rendered program for %v evaluates to %v, want %v:\n%s",
				tc.tu, holds, tc.want, r.Program(tc.tu))
		}
	}
	// AlwaysViolating renders as the bare panic fact.
	av := compileFor(t, "panic :- p(X).", "p", true, relation.Strs("a"), db)
	if holds, err := eval.PanicHolds(av.Program(relation.Strs("a")), db.Clone()); err != nil || !holds {
		t.Errorf("always-violating program: holds=%v err=%v", holds, err)
	}
	// AlwaysSafe renders as a program with no panic derivation.
	as := compileFor(t, "panic :- emp(E,D) & not dept(D).", "dept", true, relation.Strs("x"), db)
	if holds, err := eval.PanicHolds(as.Program(relation.Strs("x")), db.Clone()); err != nil || holds {
		t.Errorf("always-safe program: holds=%v err=%v", holds, err)
	}
}
