package residual

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

const (
	// cacheCap bounds the compiled-residual map; at the cap it is reset
	// wholesale (entries are recomputable — the policy of the decision
	// and plan caches).
	cacheCap = 4096
	// shapeCap bounds the pattern-shape memo.
	shapeCap = 4096
)

// shapeKey identifies a pattern shape. Constraint programs are parsed
// once and held by pointer for their registered lifetime, so pointer
// identity is the cheapest sound program key; Invalidate clears the memo
// whenever the constraint set changes.
type shapeKey struct {
	prog   *ast.Program
	rel    string
	insert bool
}

// entryKey identifies a compiled residual: the shape plus the pinned
// values baked into the compilation, the index mode, and the store shape
// the arity folds were validated against.
type entryKey struct {
	shapeKey
	noIndex bool
	pinned  string
	storeID uint64
	schema  uint64
}

// Cache memoizes residual compilations per update pattern. It is safe
// for concurrent use; core.Checker consults it for every constraint of
// every update, so both levels — shape analysis and compiled residuals —
// are memoized. Structural store changes miss naturally through the
// schema version; constraint-set changes must call Invalidate.
type Cache struct {
	mu      sync.Mutex
	shapes  map[shapeKey]Shape
	entries map[entryKey]*Residual

	hits     atomic.Int64
	misses   atomic.Int64
	compiled atomic.Int64
}

// NewCache creates an empty residual cache.
func NewCache() *Cache {
	return &Cache{
		shapes:  make(map[shapeKey]Shape),
		entries: make(map[entryKey]*Residual),
	}
}

// For returns the compiled residual serving prog under the update, or
// ok=false when the pattern is not residual-eligible and the caller must
// fall back to the full pipeline. hit distinguishes a served entry from
// a fresh compilation; ineligible lookups count as misses (they measure
// the fallback rate).
func (c *Cache) For(prog *ast.Program, u store.Update, db *store.Store, opts Options) (res *Residual, hit, ok bool) {
	sk := shapeKey{prog: prog, rel: u.Relation, insert: u.Insert}
	c.mu.Lock()
	sh, known := c.shapes[sk]
	if !known {
		sh = DeriveShape(prog, u.Relation, u.Insert)
		if len(c.shapes) >= shapeCap {
			c.shapes = make(map[shapeKey]Shape)
		}
		c.shapes[sk] = sh
	}
	if !sh.Eligible {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false, false
	}
	key := entryKey{
		shapeKey: sk,
		noIndex:  opts.DisableIndexes,
		pinned:   pinnedKey(sh, u.Tuple),
		storeID:  db.ID(),
		schema:   db.SchemaVersion(),
	}
	if e, found := c.entries[key]; found {
		c.mu.Unlock()
		c.hits.Add(1)
		return e, true, true
	}
	c.mu.Unlock()
	// Compile outside the lock: concurrent first lookups may compile the
	// same pattern twice, but the results are identical and one wins the
	// store — the plan cache's tolerance.
	res = Compile(prog, u.Relation, u.Insert, u.Tuple, sh, db, opts)
	c.misses.Add(1)
	c.compiled.Add(1)
	c.mu.Lock()
	if len(c.entries) >= cacheCap {
		c.entries = make(map[entryKey]*Residual)
	}
	c.entries[key] = res
	c.mu.Unlock()
	return res, false, true
}

// pinnedKey encodes the tuple's values at the shape's pinned positions —
// the part of the tuple the compilation depends on. Tuples shorter than
// the shape arity (they unify with no occurrence and compile to
// always-safe) key on their actual positions only.
func pinnedKey(sh Shape, t relation.Tuple) string {
	if sh.Arity <= 0 {
		return ""
	}
	var sb strings.Builder
	for i, pin := range sh.Pinned {
		if !pin || i >= len(t) {
			continue
		}
		sb.WriteString(t[i].Key())
		sb.WriteByte(0)
	}
	return sb.String()
}

// Stats returns the cumulative counters and the current number of cached
// compiled residuals.
func (c *Cache) Stats() (hits, misses, compiled int64, entries int) {
	c.mu.Lock()
	entries = len(c.entries)
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.compiled.Load(), entries
}

// ResetStats zeroes the hit/miss/compiled counters without touching the
// cached residuals (ccheck -repeat resets between runs so each run's
// statistics stand alone).
func (c *Cache) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.compiled.Store(0)
}

// Invalidate drops every memoized shape and compiled residual. Call it
// whenever the constraint set changes — program pointers may be reused
// and shapes do not carry the set fingerprint.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.shapes = make(map[shapeKey]Shape)
	c.entries = make(map[entryKey]*Residual)
	c.mu.Unlock()
}
