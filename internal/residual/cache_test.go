package residual

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func TestCachePatternReuse(t *testing.T) {
	c := NewCache()
	p := parser.MustParseProgram("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	db := store.New()
	if _, err := db.Insert("r", relation.Ints(100)); err != nil {
		t.Fatal(err)
	}
	// First tuple of the pattern compiles; every later tuple hits the same
	// entry because no position is pinned.
	r1, hit, ok := c.For(p, store.Ins("l", relation.Ints(1, 2)), db, Options{})
	if !ok || hit || r1 == nil {
		t.Fatalf("first lookup: hit=%v ok=%v", hit, ok)
	}
	r2, hit, ok := c.For(p, store.Ins("l", relation.Ints(90, 110)), db, Options{})
	if !ok || !hit || r2 != r1 {
		t.Fatalf("second lookup: hit=%v ok=%v same=%v", hit, ok, r2 == r1)
	}
	// A different polarity is its own pattern.
	if _, hit, ok = c.For(p, store.Del("l", relation.Ints(1, 2)), db, Options{}); !ok || hit {
		t.Fatalf("delete pattern: hit=%v ok=%v", hit, ok)
	}
	// Index mode participates in the key.
	if _, hit, ok = c.For(p, store.Ins("l", relation.Ints(1, 2)), db, Options{DisableIndexes: true}); !ok || hit {
		t.Fatalf("noindex arm: hit=%v ok=%v", hit, ok)
	}
	hits, misses, compiled, entries := c.Stats()
	if hits != 1 || misses != 3 || compiled != 3 || entries != 3 {
		t.Errorf("stats = %d/%d/%d/%d, want 1/3/3/3", hits, misses, compiled, entries)
	}
}

func TestCachePinnedValuesSplitEntries(t *testing.T) {
	c := NewCache()
	p := parser.MustParseProgram("panic :- emp(E,sales,S) & emp(E,accounting,S).")
	db := store.New()
	ins := func(dept string) store.Update {
		return store.Ins("emp", relation.Strs("ann", dept, "50"))
	}
	// sales matches the pinned constant of one occurrence; toy matches
	// neither. Distinct pinned projections, distinct compilations.
	if _, hit, ok := c.For(p, ins("sales"), db, Options{}); !ok || hit {
		t.Fatalf("sales: hit=%v ok=%v", hit, ok)
	}
	if _, hit, ok := c.For(p, ins("toy"), db, Options{}); !ok || hit {
		t.Fatalf("toy first: hit=%v ok=%v", hit, ok)
	}
	if _, hit, ok := c.For(p, ins("toy"), db, Options{}); !ok || !hit {
		t.Fatalf("toy repeat: hit=%v ok=%v", hit, ok)
	}
	// Unpinned positions do not split: a different name hits sales' entry.
	if _, hit, ok := c.For(p, store.Ins("emp", relation.Strs("bob", "sales", "90")), db, Options{}); !ok || !hit {
		t.Fatalf("sales other name: hit=%v ok=%v", hit, ok)
	}
}

func TestCacheIneligibleCountsAsMiss(t *testing.T) {
	c := NewCache()
	p := parser.MustParseProgram("panic :- boss(E,E).\nboss(E,M) :- mgr(E,M).")
	db := store.New()
	for i := 0; i < 3; i++ {
		if res, hit, ok := c.For(p, store.Ins("mgr", relation.Strs("a", "b")), db, Options{}); ok || hit || res != nil {
			t.Fatalf("IDB constraint served a residual: %v %v %v", res, hit, ok)
		}
	}
	hits, misses, compiled, entries := c.Stats()
	if hits != 0 || misses != 3 || compiled != 0 || entries != 0 {
		t.Errorf("stats = %d/%d/%d/%d, want 0/3/0/0", hits, misses, compiled, entries)
	}
}

func TestCacheInvalidateAndResetStats(t *testing.T) {
	c := NewCache()
	p := parser.MustParseProgram("panic :- p(X) & q(X).")
	db := store.New()
	u := store.Ins("p", relation.Strs("a"))
	if _, _, ok := c.For(p, u, db, Options{}); !ok {
		t.Fatal("pattern ineligible")
	}
	if _, hit, _ := c.For(p, u, db, Options{}); !hit {
		t.Fatal("warm lookup missed")
	}
	c.Invalidate()
	if _, hit, _ := c.For(p, u, db, Options{}); hit {
		t.Error("lookup hit after Invalidate")
	}
	c.ResetStats()
	if hits, misses, compiled, entries := c.Stats(); hits != 0 || misses != 0 || compiled != 0 || entries != 1 {
		t.Errorf("after ResetStats: %d/%d/%d/%d, want 0/0/0/1 (entries survive)", hits, misses, compiled, entries)
	}
}

func TestCacheSchemaVersionMiss(t *testing.T) {
	c := NewCache()
	p := parser.MustParseProgram("panic :- p(X) & q(X).")
	db := store.New()
	u := store.Ins("p", relation.Strs("a"))
	if _, _, ok := c.For(p, u, db, Options{}); !ok {
		t.Fatal("pattern ineligible")
	}
	// Creating a relation bumps the schema version: the compiled arity
	// folds may be stale, so the next lookup must recompile.
	if _, err := db.Ensure("q", 1); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.For(p, u, db, Options{}); hit {
		t.Error("lookup hit across a schema change")
	}
}

// TestCacheConcurrentAccess exercises the cache and the shared compiled
// residuals from many goroutines; run under -race this is the
// concurrency contract of core's parallel dispatch.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	parsed := []*ast.Program{
		parser.MustParseProgram("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."),
		parser.MustParseProgram("panic :- p(X,X)."),
		parser.MustParseProgram("panic :- emp(E,D) & not dept(D)."),
	}
	db := store.New()
	if _, err := db.Insert("r", relation.Ints(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("emp", relation.Strs("ann", "toy")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					u := store.Ins("l", relation.Ints(int64(i%7), int64(40+i%9)))
					if res, _, ok := c.For(parsed[0], u, db, Options{}); ok {
						res.Decide(db, u.Tuple)
					}
				case 1:
					u := store.Ins("p", relation.Strs(fmt.Sprint(w), fmt.Sprint(i%2*w)))
					if res, _, ok := c.For(parsed[1], u, db, Options{}); ok {
						res.Decide(db, u.Tuple)
					}
				default:
					u := store.Del("dept", relation.Strs("toy"))
					if res, _, ok := c.For(parsed[2], u, db, Options{}); ok {
						res.Decide(db, u.Tuple)
					}
				}
				if i%50 == 0 && w == 0 {
					c.ResetStats()
				}
			}
		}(w)
	}
	wg.Wait()
	if hits, misses, _, _ := c.Stats(); hits+misses == 0 {
		t.Error("cache never consulted")
	}
}
