package residual

import (
	"sync"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
)

// The residual VM. A disjunct is a straight-line plan of steps —
// comparisons (unification guards included), negated-atom probes, and
// positive-atom joins — over three argument kinds: compile-time
// constants, update-tuple positions (parameters), and registers holding
// values bound by earlier join steps. Because the plan order is fixed at
// compile time, register boundness is static: every column of every
// atom is classified once as probe / check / bind / repeat-check, and
// the runtime needs no substitution map, no trail, and no per-decision
// allocation beyond a pooled scratch.

type argKind uint8

const (
	argConst argKind = iota
	argParam         // update-tuple position idx
	argReg           // register idx
)

type arg struct {
	kind argKind
	val  ast.Value
	idx  int
}

type stepKind uint8

const (
	stepComp stepKind = iota
	stepPos
	stepNeg
)

// step is one VM instruction. For stepPos, the column classification is
// precomputed: probeCols/probeArgs form the indexed lookup signature
// (empty under DisableIndexes — candidates then arrive by scan and every
// bound column moves to checkCols), bindCols load fresh registers, and
// repCols verify registers first bound at an earlier column of this same
// atom.
type step struct {
	kind stepKind
	// stepComp
	op   ast.CompOp
	l, r arg
	// stepPos / stepNeg
	pred      string
	args      []arg
	probeCols []int
	probeArgs []arg
	checkCols []int
	checkArgs []arg
	bindCols  []int
	bindRegs  []int
	repCols   []int
	repRegs   []int
}

// disjunct is one compiled residual disjunct: its plan and how many
// registers the plan uses.
type disjunct struct {
	steps []step
	regs  int
}

// plan orders the symbolic body into a disjunct: comparisons and
// negations at the earliest point their variables are bound, positive
// atoms greedily most-bound-first (textual order under DisableIndexes),
// mirroring the main evaluator's join planning. It returns nil when a
// positive atom over an existing relation of disagreeing arity makes the
// disjunct underivable; negated atoms in that situation are vacuously
// true and are dropped instead.
func plan(body []slit, db *store.Store, opts Options) *disjunct {
	d := &disjunct{}
	regOf := map[string]int{}
	bound := map[string]bool{}
	reg := func(name string) int {
		if i, ok := regOf[name]; ok {
			return i
		}
		i := len(regOf)
		regOf[name] = i
		return i
	}
	mkArg := func(s sterm) arg {
		switch s.kind {
		case stConst:
			return arg{kind: argConst, val: s.val}
		case stParam:
			return arg{kind: argParam, idx: s.pos}
		}
		return arg{kind: argReg, idx: reg(s.name)}
	}
	litReady := func(l slit) bool {
		if l.comp {
			return (l.l.kind != stVar || bound[l.l.name]) && (l.r.kind != stVar || bound[l.r.name])
		}
		for _, a := range l.args {
			if a.kind == stVar && !bound[a.name] {
				return false
			}
		}
		return true
	}
	emit := func(l slit) bool {
		if l.comp {
			d.steps = append(d.steps, step{kind: stepComp, op: l.op, l: mkArg(l.l), r: mkArg(l.r)})
			return true
		}
		st := step{kind: stepNeg, pred: l.pred}
		if !l.neg {
			st.kind = stepPos
		}
		if rel := db.Relation(l.pred); rel != nil && rel.Arity() != len(l.args) {
			// The stored relation can never match the atom (Insert enforces
			// uniform arity): a positive atom kills the disjunct, a negated
			// one is vacuously true. The cache keys on the store's schema
			// version, so this fold never outlives the shape it saw.
			return l.neg
		}
		inAtom := map[string]int{}
		for i, a := range l.args {
			st.args = append(st.args, mkArg(a))
			switch {
			case a.kind != stVar || bound[a.name]:
				if l.neg || opts.DisableIndexes {
					st.checkCols = append(st.checkCols, i)
					st.checkArgs = append(st.checkArgs, st.args[i])
				} else {
					st.probeCols = append(st.probeCols, i)
					st.probeArgs = append(st.probeArgs, st.args[i])
				}
			default:
				if r, seen := inAtom[a.name]; seen {
					st.repCols = append(st.repCols, i)
					st.repRegs = append(st.repRegs, r)
				} else {
					r := reg(a.name)
					inAtom[a.name] = r
					st.bindCols = append(st.bindCols, i)
					st.bindRegs = append(st.bindRegs, r)
				}
			}
		}
		for name := range inAtom {
			bound[name] = true
		}
		d.steps = append(d.steps, st)
		return true
	}
	var pending, positives []slit
	for _, l := range body {
		if l.comp || l.neg {
			pending = append(pending, l)
		} else {
			positives = append(positives, l)
		}
	}
	flushReady := func() bool {
		rest := pending[:0]
		for _, l := range pending {
			if litReady(l) {
				if !emit(l) {
					return false
				}
			} else {
				rest = append(rest, l)
			}
		}
		pending = rest
		return true
	}
	if !flushReady() {
		return nil // only vacuous negations drop; emit never fails here
	}
	for len(positives) > 0 {
		pick := 0
		if !opts.DisableIndexes {
			best := -1
			for idx, l := range positives {
				score := 0
				for _, a := range l.args {
					if a.kind != stVar || bound[a.name] {
						score++
					}
				}
				if score > best {
					best, pick = score, idx
				}
			}
		}
		l := positives[pick]
		positives = append(positives[:pick], positives[pick+1:]...)
		if !emit(l) {
			return nil // dead positive atom: disjunct underivable
		}
		if !flushReady() {
			return nil
		}
	}
	// Safe rules bind every comparison/negation variable through positive
	// atoms, so nothing remains pending by construction; a leftover would
	// mean an unsafe source rule, which constraint admission rejects.
	if len(pending) > 0 {
		return nil
	}
	d.regs = len(regOf)
	return d
}

// scratch is the pooled per-Decide state: the register file and one
// candidate buffer per join depth.
type scratch struct {
	regs   []ast.Value
	levels []levelScratch
}

type levelScratch struct {
	vals []ast.Value
	tups []relation.Tuple
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func (sc *scratch) level(i int) *levelScratch {
	for len(sc.levels) <= i {
		sc.levels = append(sc.levels, levelScratch{})
	}
	return &sc.levels[i]
}

// Decide evaluates the residual for the concrete update tuple t against
// the (post-update) database and reports whether panic is derivable —
// i.e. whether the update violates the constraint. It is safe for
// concurrent use; t must agree with the compiled pattern on the pinned
// positions (the cache guarantees this).
func (r *Residual) Decide(db *store.Store, t relation.Tuple) bool {
	switch r.outcome {
	case AlwaysSafe:
		return false
	case AlwaysViolating:
		return true
	}
	sc := scratchPool.Get().(*scratch)
	if cap(sc.regs) < r.maxRegs {
		sc.regs = make([]ast.Value, r.maxRegs)
	}
	sc.regs = sc.regs[:cap(sc.regs)]
	violated := false
	for _, d := range r.disjuncts {
		if r.run(d, 0, db, t, sc) {
			violated = true
			break
		}
	}
	scratchPool.Put(sc)
	return violated
}

// value resolves an argument against the update tuple and register file.
func value(a arg, t relation.Tuple, regs []ast.Value) ast.Value {
	switch a.kind {
	case argConst:
		return a.val
	case argParam:
		return t[a.idx]
	}
	return regs[a.idx]
}

// run executes the plan from step si; true means the disjunct derived.
func (r *Residual) run(d *disjunct, si int, db *store.Store, t relation.Tuple, sc *scratch) bool {
	if si == len(d.steps) {
		return true
	}
	st := &d.steps[si]
	switch st.kind {
	case stepComp:
		return st.op.Eval(value(st.l, t, sc.regs), value(st.r, t, sc.regs)) &&
			r.run(d, si+1, db, t, sc)
	case stepNeg:
		lv := sc.level(si)
		vals := lv.vals[:0]
		for _, a := range st.args {
			vals = append(vals, value(a, t, sc.regs))
		}
		lv.vals = vals
		return !db.Probe(st.pred, relation.Tuple(vals)) && r.run(d, si+1, db, t, sc)
	}
	lv := sc.level(si)
	var cands []relation.Tuple
	if len(st.probeCols) > 0 {
		vals := lv.vals[:0]
		for _, a := range st.probeArgs {
			vals = append(vals, value(a, t, sc.regs))
		}
		lv.vals = vals
		cands = db.LookupColsAppend(lv.tups[:0], st.pred, st.probeCols, vals)
	} else {
		cands = db.TuplesAppend(lv.tups[:0], st.pred)
	}
	lv.tups = cands
	for _, tu := range cands {
		if len(tu) != len(st.args) {
			continue // relation unseen at compile time with another arity
		}
		ok := true
		for j, ci := range st.checkCols {
			if !value(st.checkArgs[j], t, sc.regs).Equal(tu[ci]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j, ci := range st.bindCols {
			sc.regs[st.bindRegs[j]] = tu[ci]
		}
		for j, ci := range st.repCols {
			if !sc.regs[st.repRegs[j]].Equal(tu[ci]) {
				ok = false
				break
			}
		}
		if ok && r.run(d, si+1, db, t, sc) {
			return true
		}
	}
	return false
}
