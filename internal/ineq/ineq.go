// Package ineq decides satisfiability and implication for conjunctions of
// arithmetic comparison subgoals (<, <=, =, <>, >=, >) over variables and
// constants, the reasoning engine behind Theorem 5.1 of the paper.
//
// The comparison domain is the dense total order on constants defined by
// ast.Value.Compare: rationals first (numerically), then strings
// (lexicographically). Density is the standard assumption under which
// this procedure is complete; it holds exactly for the rational
// subdomain, and we treat the string subdomain as dense as well (adjacent
// strings — where no third string lies strictly between — do not arise in
// the paper's workloads).
//
// Satisfiability of a conjunction is decided by the classical
// constraint-graph method: equalities are merged with union-find,
// order atoms become edges (strict or non-strict) on the merged nodes,
// distinct constants are ordered among themselves, and the conjunction is
// satisfiable iff no strongly connected component of the <=-graph
// contains a strict edge, no component contains two distinct constants,
// and no <>-pair falls inside one component.
//
// Implication A => (B1 ∨ … ∨ Bm), with each Bi a conjunction, is decided
// by refutation with case-splitting: A ∧ ¬B1 ∧ … ∧ ¬Bm is unsatisfiable
// iff every way of choosing one negated atom from each ¬Bi is
// unsatisfiable together with A. The search prunes any branch whose
// partial conjunction is already unsatisfiable, which is what makes the
// paper's approach fast when queries have few repeated predicates
// (Section 5, "Comparison With Klug's Approach").
package ineq

import (
	"sort"

	"repro/internal/ast"
)

// Satisfiable reports whether the conjunction of comparisons has a model
// over the dense constant order.
func Satisfiable(conj []ast.Comparison) bool {
	g := newGraph(conj)
	if g == nil {
		return false
	}
	return g.consistent()
}

// Implies reports whether every model of premise satisfies at least one
// of the disjunct conjunctions. With no disjuncts it reports true only
// when the premise itself is unsatisfiable (an empty disjunction is
// false).
func Implies(premise []ast.Comparison, disjuncts [][]ast.Comparison) bool {
	// A => ∨Bi  iff  A ∧ ∧i(¬Bi) is unsatisfiable.
	clauses := make([][]ast.Comparison, 0, len(disjuncts))
	for _, b := range disjuncts {
		clause := make([]ast.Comparison, len(b))
		for i, c := range b {
			clause[i] = c.Negate()
		}
		clauses = append(clauses, clause)
	}
	// Smaller clauses first: fewer branches near the root.
	sort.SliceStable(clauses, func(i, j int) bool { return len(clauses[i]) < len(clauses[j]) })
	conj := make([]ast.Comparison, len(premise), len(premise)+len(clauses))
	copy(conj, premise)
	return refute(conj, clauses)
}

// Equivalent reports whether two conjunctions have exactly the same
// models.
func Equivalent(a, b []ast.Comparison) bool {
	return Implies(a, [][]ast.Comparison{b}) && Implies(b, [][]ast.Comparison{a})
}

// refute reports whether conj ∧ ∧clauses is unsatisfiable, where each
// clause is a disjunction of comparisons. The search is DPLL-style over
// theory atoms: at each node it filters every clause to its branches
// consistent with the current conjunction — an all-inconsistent clause
// refutes immediately, a single-branch clause is committed without
// branching (unit propagation), and otherwise the clause with the fewest
// consistent branches is split. This keeps the common constraint-checking
// cases (few duplicate predicates, hence few genuinely distinct mappings)
// near-linear, as the paper's complexity discussion anticipates.
func refute(conj []ast.Comparison, clauses [][]ast.Comparison) bool {
	if !Satisfiable(conj) {
		return true
	}
	live := clauses
	for {
		if len(live) == 0 {
			return false
		}
		best := -1
		var bestBranches []ast.Comparison
		next := make([][]ast.Comparison, 0, len(live))
		unit := false
		for _, clause := range live {
			branches := clause[:0:0]
			for _, atom := range clause {
				if Satisfiable(append(conj, atom)) {
					branches = append(branches, atom)
				}
			}
			switch len(branches) {
			case 0:
				return true // clause unsatisfiable under conj
			case 1:
				conj = append(conj, branches[0])
				unit = true
			default:
				next = append(next, branches)
				if best == -1 || len(branches) < len(bestBranches) {
					best = len(next) - 1
					bestBranches = branches
				}
			}
		}
		live = next
		if unit {
			// Unit commitments may have shrunk other clauses; rescan.
			if !Satisfiable(conj) {
				return true
			}
			continue
		}
		if len(live) == 0 {
			return false
		}
		rest := make([][]ast.Comparison, 0, len(live)-1)
		rest = append(rest, live[:best]...)
		rest = append(rest, live[best+1:]...)
		for _, atom := range bestBranches {
			if !refute(append(append([]ast.Comparison{}, conj...), atom), rest) {
				return false
			}
		}
		return true
	}
}

// graph is the constraint graph of one conjunction.
type graph struct {
	nodes  []ast.Term     // representative term per node id
	ids    map[string]int // term key -> node id
	parent []int          // union-find over node ids
	lt     [][2]int       // strict edges u < v
	le     [][2]int       // non-strict edges u <= v
	ne     [][2]int       // disequalities
	consts []int          // node ids that are constants
	bad    bool           // immediate contradiction found
}

// newGraph builds the graph; it returns nil when an immediate
// contradiction (two distinct constants equated) is found.
func newGraph(conj []ast.Comparison) *graph {
	g := &graph{ids: map[string]int{}}
	for _, c := range conj {
		l, r := g.node(c.Left), g.node(c.Right)
		switch c.Op {
		case ast.Eq:
			g.union(l, r)
		case ast.Lt:
			g.lt = append(g.lt, [2]int{l, r})
		case ast.Le:
			g.le = append(g.le, [2]int{l, r})
		case ast.Gt:
			g.lt = append(g.lt, [2]int{r, l})
		case ast.Ge:
			g.le = append(g.le, [2]int{r, l})
		case ast.Ne:
			g.ne = append(g.ne, [2]int{l, r})
		}
	}
	// Order the constants among themselves: adjacent strict edges suffice
	// by transitivity.
	sort.Slice(g.consts, func(i, j int) bool {
		return g.nodes[g.consts[i]].Const.Compare(g.nodes[g.consts[j]].Const) < 0
	})
	for i := 1; i < len(g.consts); i++ {
		g.lt = append(g.lt, [2]int{g.consts[i-1], g.consts[i]})
	}
	// Merging two distinct constants is already a contradiction.
	if g.bad {
		return nil
	}
	return g
}

func (g *graph) node(t ast.Term) int {
	k := t.Key()
	if id, ok := g.ids[k]; ok {
		return id
	}
	id := len(g.nodes)
	g.nodes = append(g.nodes, t)
	g.ids[k] = id
	g.parent = append(g.parent, id)
	if t.IsConst() {
		g.consts = append(g.consts, id)
	}
	return id
}

func (g *graph) find(x int) int {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]]
		x = g.parent[x]
	}
	return x
}

func (g *graph) union(x, y int) {
	rx, ry := g.find(x), g.find(y)
	if rx == ry {
		return
	}
	// Keep a constant as the representative when present, and reject
	// merging two distinct constants.
	cx, cy := g.nodes[rx].IsConst(), g.nodes[ry].IsConst()
	switch {
	case cx && cy:
		if !g.nodes[rx].Const.Equal(g.nodes[ry].Const) {
			g.bad = true
		}
		g.parent[ry] = rx
	case cy:
		g.parent[rx] = ry
	default:
		g.parent[ry] = rx
	}
}

// consistent runs the SCC check described in the package comment.
func (g *graph) consistent() bool {
	n := len(g.nodes)
	adj := make([][]int, n)
	type edge struct {
		u, v   int
		strict bool
	}
	var edges []edge
	addEdge := func(u, v int, strict bool) {
		u, v = g.find(u), g.find(v)
		if u == v {
			if strict {
				g.bad = true
			}
			return
		}
		adj[u] = append(adj[u], v)
		edges = append(edges, edge{u, v, strict})
	}
	for _, e := range g.lt {
		addEdge(e[0], e[1], true)
	}
	for _, e := range g.le {
		addEdge(e[0], e[1], false)
	}
	if g.bad {
		return false
	}
	comp := sccs(n, adj)
	for _, e := range edges {
		if e.strict && comp[e.u] == comp[e.v] {
			return false
		}
	}
	// Two distinct constants in one component would have a strict edge
	// between them (directly or via the adjacent chain), so they are
	// already rejected above. Check the explicit disequalities.
	for _, p := range g.ne {
		u, v := g.find(p[0]), g.find(p[1])
		if u == v || comp[u] == comp[v] {
			return false
		}
	}
	return true
}

// sccs computes strongly connected components (iterative Tarjan) and
// returns a component id per node.
func sccs(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	ncomp := 0

	type frame struct {
		v  int
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
