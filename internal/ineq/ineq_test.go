package ineq

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func cmp(l ast.Term, op ast.CompOp, r ast.Term) ast.Comparison {
	return ast.NewComparison(l, op, r)
}

var (
	x = ast.V("X")
	y = ast.V("Y")
	z = ast.V("Z")
	w = ast.V("W")
)

func TestSatisfiableBasics(t *testing.T) {
	cases := []struct {
		name string
		conj []ast.Comparison
		want bool
	}{
		{"empty", nil, true},
		{"x<y", []ast.Comparison{cmp(x, ast.Lt, y)}, true},
		{"x<y,y<x", []ast.Comparison{cmp(x, ast.Lt, y), cmp(y, ast.Lt, x)}, false},
		{"x<=y,y<=x", []ast.Comparison{cmp(x, ast.Le, y), cmp(y, ast.Le, x)}, true},
		{"x<=y,y<=x,x<>y", []ast.Comparison{cmp(x, ast.Le, y), cmp(y, ast.Le, x), cmp(x, ast.Ne, y)}, false},
		{"x<x", []ast.Comparison{cmp(x, ast.Lt, x)}, false},
		{"x<>x", []ast.Comparison{cmp(x, ast.Ne, x)}, false},
		{"x=y,y=z,x<>z", []ast.Comparison{cmp(x, ast.Eq, y), cmp(y, ast.Eq, z), cmp(x, ast.Ne, z)}, false},
		{"consts 3<5", []ast.Comparison{cmp(ast.CInt(3), ast.Lt, ast.CInt(5))}, true},
		{"consts 5<3", []ast.Comparison{cmp(ast.CInt(5), ast.Lt, ast.CInt(3))}, false},
		{"x=3,x=5", []ast.Comparison{cmp(x, ast.Eq, ast.CInt(3)), cmp(x, ast.Eq, ast.CInt(5))}, false},
		{"3<x<5 dense", []ast.Comparison{cmp(ast.CInt(3), ast.Lt, x), cmp(x, ast.Lt, ast.CInt(5))}, true},
		{"3<x<4 dense", []ast.Comparison{cmp(ast.CInt(3), ast.Lt, x), cmp(x, ast.Lt, ast.CInt(4))}, true},
		{"x<=3,x>=3,x=3ok", []ast.Comparison{cmp(x, ast.Le, ast.CInt(3)), cmp(x, ast.Ge, ast.CInt(3)), cmp(x, ast.Eq, ast.CInt(3))}, true},
		{"x<=3,x>=3,x<>3", []ast.Comparison{cmp(x, ast.Le, ast.CInt(3)), cmp(x, ast.Ge, ast.CInt(3)), cmp(x, ast.Ne, ast.CInt(3))}, false},
		{"strings toy<shoe false", []ast.Comparison{cmp(ast.CStr("toy"), ast.Lt, ast.CStr("shoe"))}, false},
		{"strings shoe<toy", []ast.Comparison{cmp(ast.CStr("shoe"), ast.Lt, ast.CStr("toy"))}, true},
		{"number<string", []ast.Comparison{cmp(ast.CInt(1000), ast.Lt, ast.CStr("a"))}, true},
		{"string<number", []ast.Comparison{cmp(ast.CStr("a"), ast.Lt, ast.CInt(1000))}, false},
		{"x>y,y>z,z>x", []ast.Comparison{cmp(x, ast.Gt, y), cmp(y, ast.Gt, z), cmp(z, ast.Gt, x)}, false},
		{"eq chain to distinct consts", []ast.Comparison{cmp(x, ast.Eq, ast.CStr("a")), cmp(y, ast.Eq, x), cmp(y, ast.Eq, ast.CStr("b"))}, false},
		{"le cycle collapses then ne const", []ast.Comparison{cmp(x, ast.Le, y), cmp(y, ast.Le, x), cmp(x, ast.Eq, ast.CInt(7)), cmp(y, ast.Ne, ast.CInt(7))}, false},
	}
	for _, c := range cases {
		if got := Satisfiable(c.conj); got != c.want {
			t.Errorf("%s: Satisfiable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestImpliesBasics(t *testing.T) {
	d := func(cs ...ast.Comparison) []ast.Comparison { return cs }
	cases := []struct {
		name      string
		premise   []ast.Comparison
		disjuncts [][]ast.Comparison
		want      bool
	}{
		{"x<y => x<=y", d(cmp(x, ast.Lt, y)), [][]ast.Comparison{d(cmp(x, ast.Le, y))}, true},
		{"x<=y !=> x<y", d(cmp(x, ast.Le, y)), [][]ast.Comparison{d(cmp(x, ast.Lt, y))}, false},
		{"x<=y => x<y or x=y", d(cmp(x, ast.Le, y)), [][]ast.Comparison{d(cmp(x, ast.Lt, y)), d(cmp(x, ast.Eq, y))}, true},
		// The paper's Example 5.1: U=T ∧ V=S  =>  U<=V ∨ S<=T.
		{"example 5.1", d(cmp(ast.V("U"), ast.Eq, ast.V("T")), cmp(ast.V("V"), ast.Eq, ast.V("S"))),
			[][]ast.Comparison{
				d(cmp(ast.V("U"), ast.Le, ast.V("V"))),
				d(cmp(ast.V("S"), ast.Le, ast.V("T"))),
			}, true},
		// Neither disjunct alone suffices in Example 5.1.
		{"example 5.1 first only", d(cmp(ast.V("U"), ast.Eq, ast.V("T")), cmp(ast.V("V"), ast.Eq, ast.V("S"))),
			[][]ast.Comparison{d(cmp(ast.V("U"), ast.Le, ast.V("V")))}, false},
		// Forbidden intervals (Example 5.3): 4<=Z<=8 => 3<=Z<=6 ∨ 5<=Z<=10.
		{"example 5.3", d(cmp(ast.CInt(4), ast.Le, z), cmp(z, ast.Le, ast.CInt(8))),
			[][]ast.Comparison{
				d(cmp(ast.CInt(3), ast.Le, z), cmp(z, ast.Le, ast.CInt(6))),
				d(cmp(ast.CInt(5), ast.Le, z), cmp(z, ast.Le, ast.CInt(10))),
			}, true},
		// With a gap: 4<=Z<=8 !=> 3<=Z<=6 ∨ 7<=Z<=10 (Z=6.5 escapes).
		{"example 5.3 gap", d(cmp(ast.CInt(4), ast.Le, z), cmp(z, ast.Le, ast.CInt(8))),
			[][]ast.Comparison{
				d(cmp(ast.CInt(3), ast.Le, z), cmp(z, ast.Le, ast.CInt(6))),
				d(cmp(ast.CInt(7), ast.Le, z), cmp(z, ast.Le, ast.CInt(10))),
			}, false},
		{"false premise implies anything", d(cmp(x, ast.Lt, x)), nil, true},
		{"empty disjunction unprovable", d(cmp(x, ast.Lt, y)), nil, false},
		{"tautology premise empty conj disjunct", nil, [][]ast.Comparison{nil}, true},
	}
	for _, c := range cases {
		if got := Implies(c.premise, c.disjuncts); got != c.want {
			t.Errorf("%s: Implies = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := []ast.Comparison{cmp(x, ast.Le, y), cmp(y, ast.Le, x)}
	b := []ast.Comparison{cmp(x, ast.Eq, y)}
	if !Equivalent(a, b) {
		t.Error("x<=y ∧ y<=x should be equivalent to x=y")
	}
	c := []ast.Comparison{cmp(x, ast.Lt, y)}
	if Equivalent(a, c) {
		t.Error("x=y must not be equivalent to x<y")
	}
}

func TestModelWitness(t *testing.T) {
	conjs := [][]ast.Comparison{
		{cmp(x, ast.Lt, y), cmp(y, ast.Lt, z)},
		{cmp(x, ast.Le, y), cmp(y, ast.Le, x)},
		{cmp(ast.CInt(3), ast.Lt, x), cmp(x, ast.Lt, ast.CInt(4))},
		{cmp(x, ast.Eq, ast.CStr("toy")), cmp(y, ast.Gt, x)},
		{cmp(x, ast.Ne, y), cmp(x, ast.Le, y)},
		{cmp(x, ast.Ge, ast.CInt(10)), cmp(y, ast.Le, ast.CInt(-10)), cmp(z, ast.Gt, x), cmp(w, ast.Lt, y)},
	}
	for i, conj := range conjs {
		m, ok, err := Model(conj)
		if err != nil {
			t.Errorf("case %d: Model error: %v", i, err)
			continue
		}
		if !ok {
			t.Errorf("case %d: satisfiable conjunction reported unsat", i)
			continue
		}
		for _, c := range conj {
			lv, rv := termValue(m, c.Left), termValue(m, c.Right)
			if !c.Op.Eval(lv, rv) {
				t.Errorf("case %d: model %v violates %s", i, m, c)
			}
		}
	}
}

func TestModelUnsat(t *testing.T) {
	_, ok, err := Model([]ast.Comparison{cmp(x, ast.Lt, x)})
	if err != nil || ok {
		t.Errorf("Model(x<x) = ok=%v err=%v, want unsat", ok, err)
	}
}

// randomConj draws a conjunction over up to nv variables and small
// integer constants.
func randomConj(rng *rand.Rand, n, nv int) []ast.Comparison {
	vars := []ast.Term{x, y, z, w}[:nv]
	term := func() ast.Term {
		if rng.Intn(3) == 0 {
			return ast.CInt(int64(rng.Intn(5)))
		}
		return vars[rng.Intn(len(vars))]
	}
	ops := []ast.CompOp{ast.Lt, ast.Le, ast.Eq, ast.Ne, ast.Ge, ast.Gt}
	conj := make([]ast.Comparison, n)
	for i := range conj {
		conj[i] = cmp(term(), ops[rng.Intn(len(ops))], term())
	}
	return conj
}

// evalConj evaluates a conjunction under a full assignment.
func evalConj(conj []ast.Comparison, m map[string]ast.Value) bool {
	for _, c := range conj {
		if !c.Op.Eval(termValue(m, c.Left), termValue(m, c.Right)) {
			return false
		}
	}
	return true
}

// TestSatisfiableAgainstBruteForce cross-checks the graph procedure
// against exhaustive search over a small grid: if any grid assignment
// satisfies the conjunction the procedure must say sat, and whenever the
// procedure says sat, Model must produce a verified witness.
func TestSatisfiableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	grid := []ast.Value{ast.Int(0), ast.Int(1), ast.Int(2), ast.Int(3), ast.Int(4), ast.Rat(1, 2), ast.Rat(5, 2)}
	names := []string{"X", "Y", "Z"}
	for trial := 0; trial < 2000; trial++ {
		conj := randomConj(rng, 1+rng.Intn(5), 3)
		got := Satisfiable(conj)
		// Brute-force over the grid (grid sat implies sat; the converse
		// does not hold because the domain is dense).
		bruteSat := false
		var rec func(i int, m map[string]ast.Value)
		m := map[string]ast.Value{}
		rec = func(i int, m map[string]ast.Value) {
			if bruteSat {
				return
			}
			if i == len(names) {
				if evalConj(conj, m) {
					bruteSat = true
				}
				return
			}
			for _, v := range grid {
				m[names[i]] = v
				rec(i+1, m)
			}
		}
		rec(0, m)
		if bruteSat && !got {
			t.Fatalf("trial %d: grid-satisfiable conjunction %v reported unsat", trial, conj)
		}
		if got {
			wm, ok, err := Model(conj)
			if err != nil || !ok {
				t.Fatalf("trial %d: sat conjunction %v but Model failed (ok=%v err=%v)", trial, conj, ok, err)
			}
			if !evalConj(conj, wm) {
				t.Fatalf("trial %d: model %v violates %v", trial, wm, conj)
			}
		}
	}
}

// TestImpliesAgainstModels validates Implies both ways on random inputs:
// when Implies says yes, every grid model of the premise must satisfy a
// disjunct; when it says no, there must exist a dense-domain model of the
// premise falsifying all disjuncts (we verify via Model on the combined
// refutation branch indirectly by sampling grid countermodels only in the
// "yes" direction, and trust + spot-check the "no" direction).
func TestImpliesAgainstModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := []ast.Value{ast.Int(0), ast.Int(1), ast.Int(2), ast.Rat(3, 2)}
	names := []string{"X", "Y"}
	for trial := 0; trial < 1000; trial++ {
		premise := randomConj(rng, 1+rng.Intn(3), 2)
		nd := 1 + rng.Intn(3)
		disjuncts := make([][]ast.Comparison, nd)
		for i := range disjuncts {
			disjuncts[i] = randomConj(rng, 1+rng.Intn(2), 2)
		}
		got := Implies(premise, disjuncts)
		if got {
			// Every grid model of the premise satisfies some disjunct.
			var rec func(i int, m map[string]ast.Value) bool
			m := map[string]ast.Value{}
			rec = func(i int, m map[string]ast.Value) bool {
				if i == len(names) {
					if !evalConj(premise, m) {
						return true
					}
					for _, d := range disjuncts {
						if evalConj(d, m) {
							return true
						}
					}
					return false
				}
				for _, v := range grid {
					m[names[i]] = v
					if !rec(i+1, m) {
						return false
					}
				}
				return true
			}
			if !rec(0, m) {
				t.Fatalf("trial %d: Implies=true but grid countermodel exists\npremise %v\ndisjuncts %v", trial, premise, disjuncts)
			}
		}
	}
}

func TestBetween(t *testing.T) {
	three, five := ast.Int(3), ast.Int(5)
	v, err := Between(&three, &five)
	if err != nil || !(three.Compare(v) < 0 && v.Compare(five) < 0) {
		t.Errorf("Between(3,5) = %v, %v", v, err)
	}
	v, err = Between(nil, &three)
	if err != nil || v.Compare(three) >= 0 {
		t.Errorf("Between(nil,3) = %v, %v", v, err)
	}
	v, err = Between(&five, nil)
	if err != nil || v.Compare(five) <= 0 {
		t.Errorf("Between(5,nil) = %v, %v", v, err)
	}
	a, b := ast.Str("a"), ast.Str("b")
	v, err = Between(&a, &b)
	if err != nil || !(a.Compare(v) < 0 && v.Compare(b) < 0) {
		t.Errorf("Between(a,b) = %v, %v", v, err)
	}
	if _, err = Between(&five, &three); err == nil {
		t.Error("Between(5,3) should fail")
	}
	num, str := ast.Int(7), ast.Str("q")
	v, err = Between(&num, &str)
	if err != nil || !(num.Compare(v) < 0 && v.Compare(str) < 0) {
		t.Errorf("Between(7,q) = %v, %v", v, err)
	}
}

// TestImpliesDNFAgreesWithImplies cross-validates the ablation baseline
// against the DPLL-style decision on random instances.
func TestImpliesDNFAgreesWithImplies(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 800; trial++ {
		premise := randomConj(rng, 1+rng.Intn(3), 3)
		nd := rng.Intn(4)
		disjuncts := make([][]ast.Comparison, nd)
		for i := range disjuncts {
			disjuncts[i] = randomConj(rng, 1+rng.Intn(3), 3)
		}
		a := Implies(premise, disjuncts)
		b := ImpliesDNF(premise, disjuncts)
		if a != b {
			t.Fatalf("trial %d: Implies=%v ImpliesDNF=%v\npremise %v\ndisjuncts %v", trial, a, b, premise, disjuncts)
		}
	}
}

func TestImpliesDNFTautologyDisjunct(t *testing.T) {
	// An empty conjunction among the disjuncts is "true": implication holds.
	if !ImpliesDNF([]ast.Comparison{cmp(x, ast.Lt, y)}, [][]ast.Comparison{nil}) {
		t.Error("tautological disjunct not detected")
	}
	if !Implies([]ast.Comparison{cmp(x, ast.Lt, y)}, [][]ast.Comparison{nil}) {
		t.Error("Implies disagrees on tautological disjunct")
	}
}
