package ineq

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/ast"
)

// Model constructs a witness assignment for a satisfiable conjunction:
// a map from variable names to constants that makes every comparison
// true. It returns ok=false when the conjunction is unsatisfiable.
//
// The construction collapses each strongly connected component of the
// constraint graph to one point, orders the components consistently with
// all edges and with the fixed order on constants, and then picks a
// constant for every component inside its (lower, upper) window using
// Between. An error is returned only in the pathological case where the
// string subdomain is not dense enough to supply a value (see the package
// comment); this cannot happen for purely numeric constraints.
func Model(conj []ast.Comparison) (m map[string]ast.Value, ok bool, err error) {
	g := newGraph(conj)
	if g == nil {
		return nil, false, nil
	}
	if !g.consistent() {
		return nil, false, nil
	}
	n := len(g.nodes)
	// Rebuild the component structure (consistent already validated it).
	adj := make([][]int, n)
	for _, e := range g.lt {
		u, v := g.find(e[0]), g.find(e[1])
		adj[u] = append(adj[u], v)
	}
	for _, e := range g.le {
		u, v := g.find(e[0]), g.find(e[1])
		if u != v {
			adj[u] = append(adj[u], v)
		}
	}
	comp := sccs(n, adj)
	ncomp := 0
	for i := 0; i < n; i++ {
		if comp[i]+1 > ncomp {
			ncomp = comp[i] + 1
		}
	}
	// Fixed values: components containing a constant.
	fixed := make([]*ast.Value, ncomp)
	for _, id := range g.consts {
		rep := g.find(id)
		v := g.nodes[id].Const
		fixed[comp[rep]] = &v
	}
	// Component DAG edges. All edges are treated as strict between
	// distinct components: assigning strictly increasing values satisfies
	// both <= and < and every <>.
	cadj := make(map[int][]int)
	indeg := make([]int, ncomp)
	seen := map[[2]int]bool{}
	addC := func(u, v int) {
		cu, cv := comp[g.find(u)], comp[g.find(v)]
		if cu == cv || seen[[2]int{cu, cv}] {
			return
		}
		seen[[2]int{cu, cv}] = true
		cadj[cu] = append(cadj[cu], cv)
		indeg[cv]++
	}
	for _, e := range g.lt {
		addC(e[0], e[1])
	}
	for _, e := range g.le {
		addC(e[0], e[1])
	}
	order, okT := topo(ncomp, cadj, indeg)
	if !okT {
		return nil, false, fmt.Errorf("ineq: internal error: component DAG has a cycle")
	}
	// Upper bounds propagate backwards from fixed components; lower
	// bounds forward. A component's value must lie strictly between its
	// predecessors' and successors' values unless fixed.
	vals := make([]*ast.Value, ncomp)
	upper := make([]*ast.Value, ncomp)
	for i := len(order) - 1; i >= 0; i-- {
		c := order[i]
		var ub *ast.Value
		for _, d := range cadj[c] {
			var dv *ast.Value
			if vals[d] != nil {
				dv = vals[d]
			} else {
				dv = upper[d]
			}
			if dv != nil && (ub == nil || dv.Compare(*ub) < 0) {
				ub = dv
			}
		}
		upper[c] = ub
		if fixed[c] != nil {
			vals[c] = fixed[c]
			upper[c] = fixed[c]
		}
	}
	// Forward pass: assign values. Every component receives a value
	// distinct from all previously assigned ones (fixed constants
	// included), so that <>-pairs between order-incomparable components
	// are satisfied.
	used := map[string]bool{}
	for _, v := range fixed {
		if v != nil {
			used[v.Key()] = true
		}
	}
	lower := make([]*ast.Value, ncomp)
	for _, c := range order {
		if vals[c] == nil {
			lo := lower[c]
			var v ast.Value
			for {
				var e error
				v, e = Between(lo, upper[c])
				if e != nil {
					return nil, false, e
				}
				if !used[v.Key()] {
					break
				}
				// Collision with an incomparable component's value: move
				// strictly upward inside the window and retry. Each retry
				// passes a strictly larger lower bound, and used is
				// finite, so this terminates.
				lv := v
				lo = &lv
			}
			used[v.Key()] = true
			vals[c] = &v
		}
		// Propagate the assigned value as a lower bound to successors
		// (fixed components propagate too).
		for _, d := range cadj[c] {
			if lower[d] == nil || vals[c].Compare(*lower[d]) > 0 {
				lower[d] = vals[c]
			}
		}
	}
	// Defensive final verification: the constructed assignment must make
	// every comparison true.
	m = map[string]ast.Value{}
	for i := 0; i < n; i++ {
		if g.nodes[i].IsVar() {
			m[g.nodes[i].Var] = *vals[comp[g.find(i)]]
		}
	}
	for _, c := range conj {
		lv, rv := termValue(m, c.Left), termValue(m, c.Right)
		if !c.Op.Eval(lv, rv) {
			return nil, false, fmt.Errorf("ineq: internal error: constructed model violates %s", c)
		}
	}
	return m, true, nil
}

func termValue(m map[string]ast.Value, t ast.Term) ast.Value {
	if t.IsVar() {
		return m[t.Var]
	}
	return t.Const
}

// topo returns a topological order of the component DAG.
func topo(n int, adj map[int][]int, indegIn []int) ([]int, bool) {
	indeg := make([]int, n)
	copy(indeg, indegIn)
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		// Deterministic: pop the smallest id.
		sort.Ints(queue)
		c := queue[0]
		queue = queue[1:]
		order = append(order, c)
		for _, d := range adj[c] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	return order, len(order) == n
}

// Between returns a constant strictly between lo and hi in the global
// order; either bound may be nil for an open end. It fails only when the
// window is empty or the string subdomain cannot supply a value (see the
// package comment on density).
func Between(lo, hi *ast.Value) (ast.Value, error) {
	switch {
	case lo == nil && hi == nil:
		return ast.Int(0), nil
	case lo == nil:
		// Anything below hi: numbers extend downward without bound.
		if hi.Kind == ast.NumberValue {
			below := new(big.Rat).Sub(hi.Num, big.NewRat(1, 1))
			return ast.Value{Kind: ast.NumberValue, Num: below}, nil
		}
		return ast.Int(0), nil // numbers precede all strings
	case hi == nil:
		if lo.Kind == ast.NumberValue {
			above := new(big.Rat).Add(lo.Num, big.NewRat(1, 1))
			return ast.Value{Kind: ast.NumberValue, Num: above}, nil
		}
		return ast.Str(lo.Str + "z"), nil // s < s+"z"
	}
	if lo.Compare(*hi) >= 0 {
		return ast.Value{}, fmt.Errorf("ineq: empty window (%s, %s)", lo, hi)
	}
	if lo.Kind == ast.NumberValue && hi.Kind == ast.NumberValue {
		mid := new(big.Rat).Add(lo.Num, hi.Num)
		mid.Mul(mid, big.NewRat(1, 2))
		return ast.Value{Kind: ast.NumberValue, Num: mid}, nil
	}
	if lo.Kind == ast.NumberValue && hi.Kind == ast.StringValue {
		above := new(big.Rat).Add(lo.Num, big.NewRat(1, 1))
		return ast.Value{Kind: ast.NumberValue, Num: above}, nil
	}
	// Both strings (string < number cannot reach here since numbers
	// precede strings and lo < hi).
	cand := ast.Str(lo.Str + "\x01")
	if cand.Compare(*hi) < 0 {
		return cand, nil
	}
	return ast.Value{}, fmt.Errorf("ineq: no string strictly between %q and %q", lo.Str, hi.Str)
}
