package ineq

import "repro/internal/ast"

// Simplify returns an equivalent conjunction with redundant comparisons
// removed: an atom is dropped when the remaining atoms already imply it.
// For unsatisfiable input it returns the canonical contradiction 0 < 0.
// The greedy single-pass scan is quadratic in the number of atoms times
// the cost of an implication check; reductions and generated tests use
// it to keep printed constraints readable.
func Simplify(conj []ast.Comparison) []ast.Comparison {
	if !Satisfiable(conj) {
		zero := ast.CInt(0)
		return []ast.Comparison{ast.NewComparison(zero, ast.Lt, zero)}
	}
	out := append([]ast.Comparison{}, conj...)
	for i := 0; i < len(out); {
		rest := make([]ast.Comparison, 0, len(out)-1)
		rest = append(rest, out[:i]...)
		rest = append(rest, out[i+1:]...)
		if Implies(rest, [][]ast.Comparison{{out[i]}}) {
			out = rest
			continue // re-examine index i (now a different atom)
		}
		i++
	}
	return out
}
