package ineq

import "repro/internal/ast"

// ImpliesDNF decides the same implication as Implies by the textbook
// route: distribute ¬B1 ∧ … ∧ ¬Bm into full disjunctive normal form and
// test each conjunct for satisfiability. It exists as the ablation
// baseline for the DPLL-style Implies — the DNF has ∏|Bi| conjuncts, so
// this blows up exactly where the lazy splitter prunes (see the
// BenchmarkImplies* pair). Semantics are identical.
func ImpliesDNF(premise []ast.Comparison, disjuncts [][]ast.Comparison) bool {
	// A => ∨Bi iff A ∧ ∧¬Bi unsat. ¬Bi = ∨ negated atoms; the product of
	// choices enumerates the DNF.
	choice := make([]int, len(disjuncts))
	for {
		conj := make([]ast.Comparison, 0, len(premise)+len(disjuncts))
		conj = append(conj, premise...)
		for i, b := range disjuncts {
			if len(b) == 0 {
				// ¬(empty conjunction) is false: the whole branch (and
				// every branch, since this clause is in every product)
				// is unsatisfiable — the implication holds trivially.
				return true
			}
			conj = append(conj, b[choice[i]].Negate())
		}
		if Satisfiable(conj) {
			return false
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(disjuncts[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return true
		}
	}
}
