package ineq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// genConj draws a random conjunction of comparisons over X,Y,Z and small
// integers.
type genConj []ast.Comparison

func (genConj) Generate(rng *rand.Rand, _ int) reflect.Value {
	vars := []ast.Term{ast.V("X"), ast.V("Y"), ast.V("Z")}
	term := func() ast.Term {
		if rng.Intn(3) == 0 {
			return ast.CInt(int64(rng.Intn(4)))
		}
		return vars[rng.Intn(len(vars))]
	}
	ops := []ast.CompOp{ast.Lt, ast.Le, ast.Eq, ast.Ne, ast.Ge, ast.Gt}
	conj := make(genConj, 1+rng.Intn(4))
	for i := range conj {
		conj[i] = ast.NewComparison(term(), ops[rng.Intn(len(ops))], term())
	}
	return reflect.ValueOf(conj)
}

func TestQuickSatisfiableAntiMonotone(t *testing.T) {
	// Adding atoms never makes an unsatisfiable conjunction satisfiable.
	f := func(a genConj, b genConj) bool {
		if Satisfiable([]ast.Comparison(a)) {
			return true
		}
		return !Satisfiable(append(append([]ast.Comparison{}, a...), b...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickImpliesReflexive(t *testing.T) {
	// A ⇒ A always.
	f := func(a genConj) bool {
		return Implies([]ast.Comparison(a), [][]ast.Comparison{a})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickImpliesWeakening(t *testing.T) {
	// (A ∧ B) ⇒ A.
	f := func(a genConj, b genConj) bool {
		strong := append(append([]ast.Comparison{}, a...), b...)
		return Implies(strong, [][]ast.Comparison{a})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickImpliesDisjunctMonotone(t *testing.T) {
	// Adding a disjunct never breaks an implication.
	f := func(a genConj, b genConj, c genConj) bool {
		if Implies(a, [][]ast.Comparison{b}) {
			return Implies(a, [][]ast.Comparison{b, c})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickModelMatchesSatisfiable(t *testing.T) {
	// Model succeeds exactly when Satisfiable says so (over the integer
	// constants used by the generator; the string-density corner cannot
	// arise), and its witness verifies.
	f := func(a genConj) bool {
		sat := Satisfiable([]ast.Comparison(a))
		m, ok, err := Model([]ast.Comparison(a))
		if err != nil || ok != sat {
			return false
		}
		if !ok {
			return true
		}
		return evalConj([]ast.Comparison(a), m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalentReflexiveSymmetric(t *testing.T) {
	f := func(a genConj, b genConj) bool {
		if !Equivalent(a, a) {
			return false
		}
		return Equivalent(a, b) == Equivalent(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyEquivalent(t *testing.T) {
	// Simplify never changes the models, and never grows the input.
	f := func(a genConj) bool {
		s := Simplify([]ast.Comparison(a))
		if len(s) > len(a) && Satisfiable(a) {
			return false
		}
		return Equivalent(a, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyExamples(t *testing.T) {
	X, Y := ast.V("X"), ast.V("Y")
	// X<Y ∧ X<=Y simplifies to just X<Y.
	got := Simplify([]ast.Comparison{
		ast.NewComparison(X, ast.Lt, Y),
		ast.NewComparison(X, ast.Le, Y),
	})
	if len(got) != 1 || got[0].Op != ast.Lt {
		t.Errorf("Simplify = %v", got)
	}
	// Unsatisfiable input collapses to the canonical contradiction.
	got = Simplify([]ast.Comparison{
		ast.NewComparison(X, ast.Lt, Y),
		ast.NewComparison(Y, ast.Lt, X),
	})
	if len(got) != 1 || Satisfiable(got) {
		t.Errorf("contradiction form = %v", got)
	}
	// Chains: X<Y ∧ Y<3 ∧ X<3 drops the implied X<3.
	got = Simplify([]ast.Comparison{
		ast.NewComparison(X, ast.Lt, Y),
		ast.NewComparison(Y, ast.Lt, ast.CInt(3)),
		ast.NewComparison(X, ast.Lt, ast.CInt(3)),
	})
	if len(got) != 2 {
		t.Errorf("chain simplify = %v", got)
	}
}
