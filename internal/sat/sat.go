// Package sat is a small CNF satisfiability solver (DPLL with unit
// propagation and pure-literal elimination). It is the search backend for
// containment of conjunctive queries with negated subgoals
// (internal/containment): a countermodel for Q1 ⊑ Q2 is a truth
// assignment to "tuple ∈ database" variables satisfying clauses that say
// Q1 fires and Q2 does not.
package sat

import "fmt"

// Lit is a literal: a 1-based variable index, negative for negation.
type Lit int

// Var returns the variable index of l.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula under construction.
type Formula struct {
	nvars   int
	clauses []Clause
	unsat   bool // an empty clause was added
}

// NewFormula creates an empty formula.
func NewFormula() *Formula { return &Formula{} }

// NewVar allocates a fresh variable and returns its positive literal.
func (f *Formula) NewVar() Lit {
	f.nvars++
	return Lit(f.nvars)
}

// NumVars returns the number of allocated variables.
func (f *Formula) NumVars() int { return f.nvars }

// NumClauses returns the number of clauses added.
func (f *Formula) NumClauses() int { return len(f.clauses) }

// AddClause appends a clause; an empty clause makes the formula
// unsatisfiable. Literals must reference allocated variables.
func (f *Formula) AddClause(lits ...Lit) {
	if len(lits) == 0 {
		f.unsat = true
		return
	}
	for _, l := range lits {
		if l == 0 || l.Var() > f.nvars {
			panic(fmt.Sprintf("sat: literal %d references unallocated variable", l))
		}
	}
	c := make(Clause, len(lits))
	copy(c, lits)
	f.clauses = append(f.clauses, c)
}

// AddUnit fixes a literal true.
func (f *Formula) AddUnit(l Lit) { f.AddClause(l) }

// Solve searches for a satisfying assignment. It returns the assignment
// indexed by variable (entry 0 unused) when satisfiable.
func (f *Formula) Solve() (assignment []bool, ok bool) {
	if f.unsat {
		return nil, false
	}
	s := &solver{
		assign:  make([]int8, f.nvars+1),
		clauses: f.clauses,
	}
	if !s.dpll() {
		return nil, false
	}
	out := make([]bool, f.nvars+1)
	for i := 1; i <= f.nvars; i++ {
		out[i] = s.assign[i] == 1
	}
	return out, true
}

type solver struct {
	assign  []int8 // 0 unassigned, 1 true, -1 false
	clauses []Clause
	trail   []int // variables assigned, for backtracking
}

func (s *solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if l < 0 {
		return -v
	}
	return v
}

func (s *solver) set(l Lit) {
	v := l.Var()
	if l > 0 {
		s.assign[v] = 1
	} else {
		s.assign[v] = -1
	}
	s.trail = append(s.trail, v)
}

// propagate runs unit propagation; it reports false on conflict.
func (s *solver) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, c := range s.clauses {
			var unassigned Lit
			nUnassigned := 0
			satisfied := false
			for _, l := range c {
				switch s.value(l) {
				case 1:
					satisfied = true
				case 0:
					nUnassigned++
					unassigned = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch nUnassigned {
			case 0:
				return false // conflict
			case 1:
				s.set(unassigned)
				changed = true
			}
		}
	}
	return true
}

func (s *solver) dpll() bool {
	mark := len(s.trail)
	if !s.propagate() {
		s.undo(mark)
		return false
	}
	// Pick the first unassigned variable of the first unsatisfied clause
	// (a cheap but effective activity heuristic).
	var branch Lit
	for _, c := range s.clauses {
		satisfied := false
		for _, l := range c {
			if s.value(l) == 1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c {
			if s.value(l) == 0 {
				branch = l
				break
			}
		}
		if branch != 0 {
			break
		}
	}
	if branch == 0 {
		return true // every clause satisfied
	}
	for _, l := range []Lit{branch, branch.Neg()} {
		sub := len(s.trail)
		s.set(l)
		if s.dpll() {
			return true
		}
		s.undo(sub)
	}
	s.undo(mark)
	return false
}

func (s *solver) undo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[v] = 0
	}
}
