package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	f := NewFormula()
	a := f.NewVar()
	f.AddUnit(a)
	m, ok := f.Solve()
	if !ok || !m[a.Var()] {
		t.Fatalf("unit clause: ok=%v m=%v", ok, m)
	}
}

func TestContradiction(t *testing.T) {
	f := NewFormula()
	a := f.NewVar()
	f.AddUnit(a)
	f.AddUnit(a.Neg())
	if _, ok := f.Solve(); ok {
		t.Error("a ∧ ¬a satisfiable")
	}
}

func TestEmptyClause(t *testing.T) {
	f := NewFormula()
	f.NewVar()
	f.AddClause()
	if _, ok := f.Solve(); ok {
		t.Error("empty clause satisfiable")
	}
}

func TestEmptyFormula(t *testing.T) {
	f := NewFormula()
	if _, ok := f.Solve(); !ok {
		t.Error("empty formula unsatisfiable")
	}
}

func TestImplicationChain(t *testing.T) {
	// a, a->b, b->c, c->d forces all true.
	f := NewFormula()
	vs := []Lit{f.NewVar(), f.NewVar(), f.NewVar(), f.NewVar()}
	f.AddUnit(vs[0])
	for i := 0; i+1 < len(vs); i++ {
		f.AddClause(vs[i].Neg(), vs[i+1])
	}
	m, ok := f.Solve()
	if !ok {
		t.Fatal("chain unsatisfiable")
	}
	for _, v := range vs {
		if !m[v.Var()] {
			t.Errorf("var %d not forced true", v)
		}
	}
}

func TestPigeonhole32(t *testing.T) {
	// 3 pigeons, 2 holes: unsatisfiable.
	f := NewFormula()
	x := make([][]Lit, 3)
	for p := range x {
		x[p] = []Lit{f.NewVar(), f.NewVar()}
		f.AddClause(x[p][0], x[p][1]) // each pigeon somewhere
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				f.AddClause(x[p1][h].Neg(), x[p2][h].Neg())
			}
		}
	}
	if _, ok := f.Solve(); ok {
		t.Error("PHP(3,2) satisfiable")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 4-cycle is 2-colorable; verify the model is a proper coloring.
	f := NewFormula()
	n := 4
	color := make([]Lit, n) // true = color A, false = color B
	for i := range color {
		color[i] = f.NewVar()
	}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for _, e := range edges {
		f.AddClause(color[e[0]], color[e[1]])
		f.AddClause(color[e[0]].Neg(), color[e[1]].Neg())
	}
	m, ok := f.Solve()
	if !ok {
		t.Fatal("4-cycle not 2-colored")
	}
	for _, e := range edges {
		if m[color[e[0]].Var()] == m[color[e[1]].Var()] {
			t.Errorf("edge %v monochromatic", e)
		}
	}
	// Odd cycle is not 2-colorable.
	f2 := NewFormula()
	c2 := []Lit{f2.NewVar(), f2.NewVar(), f2.NewVar()}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		f2.AddClause(c2[e[0]], c2[e[1]])
		f2.AddClause(c2[e[0]].Neg(), c2[e[1]].Neg())
	}
	if _, ok := f2.Solve(); ok {
		t.Error("triangle 2-colored")
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the solver on random small
// formulas against exhaustive enumeration.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8) // up to 9 variables
		m := 1 + rng.Intn(4*n)
		f := NewFormula()
		vars := make([]Lit, n)
		for i := range vars {
			vars[i] = f.NewVar()
		}
		clauses := make([][]Lit, m)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				l := vars[rng.Intn(n)]
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				c[j] = l
			}
			clauses[i] = c
			f.AddClause(c...)
		}
		model, got := f.Solve()
		// Brute force.
		want := false
		for mask := 0; mask < 1<<n && !want; mask++ {
			sat := true
			for _, c := range clauses {
				cs := false
				for _, l := range c {
					val := mask>>(l.Var()-1)&1 == 1
					if l < 0 {
						val = !val
					}
					if val {
						cs = true
						break
					}
				}
				if !cs {
					sat = false
					break
				}
			}
			if sat {
				want = true
			}
		}
		if got != want {
			t.Fatalf("trial %d: Solve=%v brute=%v (n=%d, clauses=%v)", trial, got, want, n, clauses)
		}
		if got {
			// Verify the returned model.
			for _, c := range clauses {
				cs := false
				for _, l := range c {
					val := model[l.Var()]
					if l < 0 {
						val = !val
					}
					if val {
						cs = true
						break
					}
				}
				if !cs {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, c)
				}
			}
		}
	}
}
