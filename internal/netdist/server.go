package netdist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/store"
)

// ServerStats is per-request accounting on the site side, mirroring the
// store's read counters at request granularity: what the site was asked,
// and how many tuples it shipped, per relation.
type ServerStats struct {
	// Requests counts frames handled per request type.
	Requests map[string]int64
	// TuplesSent counts tuples shipped per relation (Scan + Fetch).
	TuplesSent map[string]int64
	// Errors counts requests answered with OK=false.
	Errors int64
}

// Server answers the wire protocol for one site: a store plus the set of
// relations this site owns. It is safe for concurrent use — the store is
// internally synchronized and the stats sit behind a mutex — so one
// Server may back many connections (TCP) or callers (loopback).
type Server struct {
	db     *store.Store
	served map[string]bool // nil: every relation in db

	mu    sync.Mutex
	stats ServerStats
	// met is set once by Instrument before serving; nil keeps Handle on
	// the uninstrumented path.
	met *serverMetrics
	// spans is set once by InstrumentSpans before serving: traced
	// requests are then also retained in the site's own trace store (and
	// carry its service name). Even without it, a request with a sampled
	// Trace context gets its span echoed back to the coordinator.
	spans *obs.SpanTracer
	// evalOpts configure OpEval subquery evaluation; the zero value is
	// the indexed default. Set once by SetEvalOptions before serving.
	evalOpts eval.Options
	// role gates destructive maintenance ops: only "replica" accepts
	// OpReplace (a leader's contents are the source of truth and must
	// never be bulk-overwritten by a resync aimed at the wrong site).
	role string
}

// SetRole declares the site's role ("leader" is the default; "replica"
// additionally accepts OpReplace resyncs). Call before serving.
func (s *Server) SetRole(role string) { s.role = role }

// InstrumentSpans attaches a span tracer: traced requests land in its
// store as single-span traces for the site's own /debug/traces, named
// with its service. Call before serving.
func (s *Server) InstrumentSpans(t *obs.SpanTracer) { s.spans = t }

// SetEvalOptions configures how OpEval subqueries are evaluated
// (ccsited -noindex routes through here). Call before serving: the
// options are read without synchronization by request handlers.
func (s *Server) SetEvalOptions(o eval.Options) { s.evalOpts = o }

// NewServer builds a server for db. With a non-empty relations list only
// those relations are visible; otherwise every relation in db is served.
func NewServer(db *store.Store, relations []string) *Server {
	s := &Server{db: db, stats: ServerStats{Requests: map[string]int64{}, TuplesSent: map[string]int64{}}}
	if len(relations) > 0 {
		s.served = map[string]bool{}
		for _, r := range relations {
			s.served[r] = true
		}
	}
	return s
}

// Stats returns a deep copy of the accounting counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ServerStats{
		Requests:   make(map[string]int64, len(s.stats.Requests)),
		TuplesSent: make(map[string]int64, len(s.stats.TuplesSent)),
		Errors:     s.stats.Errors,
	}
	for k, v := range s.stats.Requests {
		out.Requests[k] = v
	}
	for k, v := range s.stats.TuplesSent {
		out.TuplesSent[k] = v
	}
	return out
}

// serves reports whether the relation is visible through this server.
func (s *Server) serves(rel string) bool {
	if s.served == nil {
		return true
	}
	return s.served[rel]
}

// ServedRelations returns the sorted served relation names with their
// arities (relations restricted by NewServer but absent from the store
// are reported with arity 0 until first use).
func (s *Server) ServedRelations() map[string]int {
	out := map[string]int{}
	if s.served != nil {
		for name := range s.served {
			out[name] = 0
		}
	}
	for _, name := range s.db.Names() {
		if s.serves(name) {
			out[name] = s.db.Relation(name).Arity()
		}
	}
	return out
}

// Handle answers one request. It never panics on malformed input: every
// failure comes back as OK=false with the reason in Err.
func (s *Server) Handle(req *Request) *Response {
	var start time.Time
	if s.met != nil || req.Trace != "" {
		start = time.Now()
	}
	s.mu.Lock()
	s.stats.Requests[req.Type]++
	s.mu.Unlock()
	resp := s.handle(req)
	resp.ID = req.ID
	if !resp.OK {
		s.mu.Lock()
		s.stats.Errors++
		s.mu.Unlock()
	}
	if req.Trace != "" {
		s.traceRequest(req, resp, start)
	}
	if s.met != nil {
		s.met.observe(req, resp, time.Since(start))
	}
	return resp
}

// traceRequest records the site's side of a traced RPC as a child span
// of the coordinator's context and echoes it in the response, so the
// coordinator's trace tree includes real site-side time (wire cost =
// rpc-span duration − site-span duration).
func (s *Server) traceRequest(req *Request, resp *Response, start time.Time) {
	parent, err := obs.ParseTraceparent(req.Trace)
	if err != nil || !parent.Sampled {
		return
	}
	service := s.spans.Service()
	if service == "" {
		service = "site"
	}
	sd := obs.SpanData{
		TraceID:  parent.TraceID,
		SpanID:   obs.NewSpanID(),
		Parent:   parent.SpanID,
		Name:     "site." + req.Type,
		Service:  service,
		Start:    start,
		Duration: time.Since(start),
	}
	if req.Relation != "" {
		sd.Attrs = map[string]string{"relation": req.Relation}
	}
	if !resp.OK {
		sd.Err = resp.Err
	}
	s.spans.Store().AddComplete(sd)
	resp.Spans = append(resp.Spans, EncodeSpan(sd))
}

func (s *Server) handle(req *Request) *Response {
	fail := func(format string, args ...any) *Response {
		return &Response{Err: fmt.Sprintf(format, args...)}
	}
	switch req.Type {
	case OpScan:
		if !s.serves(req.Relation) {
			return fail("relation %q not served", req.Relation)
		}
		ts := s.db.Tuples(req.Relation)
		s.mu.Lock()
		s.stats.TuplesSent[req.Relation] += int64(len(ts))
		s.mu.Unlock()
		arity := 0
		if r := s.db.Relation(req.Relation); r != nil {
			arity = r.Arity()
		}
		return &Response{OK: true, Tuples: EncodeTuples(ts), Arity: arity}

	case OpFetch:
		if !s.serves(req.Relation) {
			return fail("relation %q not served", req.Relation)
		}
		r := s.db.Relation(req.Relation)
		if r == nil {
			return &Response{OK: true}
		}
		if req.Col < 0 || req.Col >= r.Arity() {
			return fail("column %d out of range for %s/%d", req.Col, req.Relation, r.Arity())
		}
		v, err := DecodeValue(req.Value)
		if err != nil {
			return fail("%v", err)
		}
		ts := s.db.Lookup(req.Relation, req.Col, v)
		s.mu.Lock()
		s.stats.TuplesSent[req.Relation] += int64(len(ts))
		s.mu.Unlock()
		return &Response{OK: true, Tuples: EncodeTuples(ts), Arity: r.Arity()}

	case OpEval:
		prog, err := parser.ParseProgram(req.Program)
		if err != nil {
			return fail("program: %v", err)
		}
		// The subquery may only read served relations: sites do not leak
		// relations they were told not to serve.
		for _, rel := range edbPreds(prog) {
			if !s.serves(rel) {
				return fail("relation %q not served", rel)
			}
		}
		holds, err := eval.GoalHoldsWith(prog, s.db, req.Goal, s.evalOpts)
		if err != nil {
			return fail("eval: %v", err)
		}
		return &Response{OK: true, Holds: holds}

	case OpApply:
		if !s.serves(req.Relation) {
			return fail("relation %q not served", req.Relation)
		}
		t, err := DecodeTuple(req.Tuple)
		if err != nil {
			return fail("%v", err)
		}
		if req.Insert {
			changed, err := s.db.Insert(req.Relation, t)
			if err != nil {
				return fail("%v", err)
			}
			return &Response{OK: true, Changed: changed}
		}
		return &Response{OK: true, Changed: s.db.Delete(req.Relation, t)}

	case OpReplace:
		if s.role != "replica" {
			return fail("replace refused: site role is %q, not replica", s.role)
		}
		if !s.serves(req.Relation) {
			return fail("relation %q not served", req.Relation)
		}
		ts, err := DecodeTuples(req.Tuples)
		if err != nil {
			return fail("%v", err)
		}
		arity := req.Arity
		if arity == 0 && len(ts) == 0 {
			// Empty image of a relation the leader has never materialized:
			// clear whatever we hold (or nothing, if we hold nothing).
			if r := s.db.Relation(req.Relation); r != nil {
				arity = r.Arity()
			} else {
				return &Response{OK: true}
			}
		}
		if err := s.db.Replace(req.Relation, arity, ts); err != nil {
			return fail("%v", err)
		}
		return &Response{OK: true, Changed: true}

	case OpReads:
		reads := map[string]int64{}
		for _, name := range s.db.Names() {
			if s.serves(name) {
				reads[name] = s.db.Reads(name)
			}
		}
		return &Response{OK: true, Reads: reads}

	case OpPing:
		return &Response{OK: true, Relations: s.ServedRelations()}
	}
	return fail("unknown request type %q", req.Type)
}

// edbPreds returns the body predicates of prog not defined by its own
// rule heads — the stored relations an evaluation would read.
func edbPreds(prog *ast.Program) []string {
	heads := map[string]bool{}
	for _, r := range prog.Rules {
		heads[r.Head.Pred] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.IsComp() || heads[l.Atom.Pred] || seen[l.Atom.Pred] {
				continue
			}
			seen[l.Atom.Pred] = true
			out = append(out, l.Atom.Pred)
		}
	}
	return out
}

// Serve accepts connections on l and answers frames until l is closed;
// it then returns nil. Each connection gets its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Closed listener: normal shutdown.
			return nil
		}
		go s.ServeConn(conn)
	}
}

// ServeConn answers frames on one connection until EOF or error.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			// EOF, partial frame or junk: drop the connection.
			return
		}
		if err := WriteFrame(conn, s.Handle(&req)); err != nil {
			return
		}
	}
}
