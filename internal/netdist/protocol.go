// Package netdist is the networked multi-site runtime: it turns the
// in-process cost model of internal/dist into a deployment that actually
// crosses sockets. A site daemon (cmd/ccsited) serves one site's
// relations from a store.Store behind a small wire protocol; a
// Coordinator runs the staged checker against a local mirror and fetches
// remote tuples over the wire only when an update's plan needs the
// global phase — so the paper's "complete local tests avoid remote
// round trips" claim is measured in real requests, not simulated cost
// units.
//
// The wire protocol is deliberately minimal and stdlib-only:
// length-prefixed JSON frames over TCP. Each frame is a 4-byte
// big-endian payload length followed by one JSON-encoded Request or
// Response. A connection carries one request at a time (the client pools
// connections instead of multiplexing), so responses need no reordering;
// the echoed ID is a sanity check.
package netdist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/relation"
)

// MaxFrame bounds a frame payload (16 MiB): a malicious or corrupt
// length prefix must not make a peer allocate unbounded memory.
const MaxFrame = 16 << 20

// Request types. Scan/Fetch/Eval are the read operations the coordinator
// issues during the global phase; Apply propagates writes to the owning
// site; Reads and Ping are accounting and discovery.
const (
	// OpScan returns every tuple of a served relation.
	OpScan = "scan"
	// OpFetch returns the tuples of a served relation whose column Col
	// equals Value (the indexed lookup).
	OpFetch = "fetch"
	// OpEval evaluates a datalog subquery (Program source, Goal
	// predicate) against the site's store and returns whether the goal is
	// derivable. It lets a coordinator push a residual test to the data
	// instead of shipping the data to the test.
	OpEval = "eval"
	// OpApply applies one insert/delete to a served relation.
	OpApply = "apply"
	// OpReads returns the site's per-relation cumulative read counters
	// (the server-side mirror of store.Reads).
	OpReads = "reads"
	// OpReplace swaps a served relation's full contents (replica resync).
	// Only sites running in the replica role accept it.
	OpReplace = "replace"
	// OpPing returns the served relation names and arities.
	OpPing = "ping"
)

// Request is one client→site frame.
type Request struct {
	ID   uint64 `json:"id"`
	Type string `json:"type"`
	// Relation names the target relation (Scan, Fetch, Apply).
	Relation string `json:"relation,omitempty"`
	// Col and Value select Fetch's indexed lookup.
	Col   int    `json:"col,omitempty"`
	Value string `json:"value,omitempty"`
	// Program and Goal carry Eval's subquery.
	Program string `json:"program,omitempty"`
	Goal    string `json:"goal,omitempty"`
	// Insert and Tuple carry Apply's update (Tuple is EncodeTuple'd).
	Insert bool     `json:"insert,omitempty"`
	Tuple  []string `json:"tuple,omitempty"`
	// Tuples and Arity carry Replace's full relation image.
	Tuples [][]string `json:"tuples,omitempty"`
	Arity  int        `json:"arity,omitempty"`
	// Trace, when non-empty, is the W3C traceparent of the coordinator's
	// RPC span: the site records its handling as a child span and echoes
	// it back in Response.Spans. Old peers ignore the field (and old
	// requests simply omit it), so the protocol stays wire-compatible.
	Trace string `json:"trace,omitempty"`
}

// Response is one site→client frame.
type Response struct {
	ID uint64 `json:"id"`
	OK bool   `json:"ok"`
	// Err is the server-side failure when OK is false.
	Err string `json:"err,omitempty"`
	// Tuples and Arity answer Scan/Fetch.
	Tuples [][]string `json:"tuples,omitempty"`
	Arity  int        `json:"arity,omitempty"`
	// Holds answers Eval.
	Holds bool `json:"holds,omitempty"`
	// Changed answers Apply.
	Changed bool `json:"changed,omitempty"`
	// Reads answers Reads.
	Reads map[string]int64 `json:"reads,omitempty"`
	// Relations answers Ping: served relation name → arity.
	Relations map[string]int `json:"relations,omitempty"`
	// Spans carries the site-side spans of a traced request back to the
	// coordinator (set only when Request.Trace was), so the coordinator's
	// trace store holds the complete cross-process tree without a
	// separate collection pipeline.
	Spans []WireSpan `json:"spans,omitempty"`
}

// WireSpan is a completed span in wire form. Only durations are
// compared across processes during attribution, so clock skew between
// coordinator and site distorts nothing but the rendering order.
type WireSpan struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Service  string            `json:"service"`
	StartNS  int64             `json:"start_unix_nano"`
	Duration int64             `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      string            `json:"err,omitempty"`
}

// EncodeSpan renders one span for the wire.
func EncodeSpan(sd obs.SpanData) WireSpan {
	ws := WireSpan{
		TraceID:  sd.TraceID.String(),
		SpanID:   sd.SpanID.String(),
		Name:     sd.Name,
		Service:  sd.Service,
		StartNS:  sd.Start.UnixNano(),
		Duration: int64(sd.Duration),
		Attrs:    sd.Attrs,
		Err:      sd.Err,
	}
	if !sd.Parent.IsZero() {
		ws.Parent = sd.Parent.String()
	}
	return ws
}

// DecodeSpan parses EncodeSpan's output; malformed ids fail.
func DecodeSpan(ws WireSpan) (obs.SpanData, error) {
	tid, err := obs.ParseTraceID(ws.TraceID)
	if err != nil {
		return obs.SpanData{}, err
	}
	sid, err := obs.ParseSpanID(ws.SpanID)
	if err != nil {
		return obs.SpanData{}, err
	}
	sd := obs.SpanData{
		TraceID:  tid,
		SpanID:   sid,
		Name:     ws.Name,
		Service:  ws.Service,
		Start:    time.Unix(0, ws.StartNS),
		Duration: time.Duration(ws.Duration),
		Attrs:    ws.Attrs,
		Err:      ws.Err,
	}
	if ws.Parent != "" {
		pid, err := obs.ParseSpanID(ws.Parent)
		if err != nil {
			return obs.SpanData{}, err
		}
		sd.Parent = pid
	}
	return sd, nil
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("netdist: frame of %d bytes exceeds MaxFrame", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("netdist: frame of %d bytes exceeds MaxFrame", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// roundTripJSON pushes v through the frame codec into out — the
// loopback transport uses it so in-process requests see exactly the
// bytes TCP would carry.
func roundTripJSON(v, out any) error {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, v); err != nil {
		return err
	}
	return ReadFrame(&buf, out)
}

// reencode returns a frame-codec round-tripped copy of req.
func reencode(req *Request) (*Request, error) {
	var out Request
	if err := roundTripJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EncodeValue renders a constant for the wire using the store's
// canonical key syntax: "#<rational>" for numbers (exact — no float
// round-trip loss), "$<text>" for symbols. The rendering comes from the
// intern pool's precomputed key table (byte-identical to v.Key()), so
// re-encoding the same constant across mirror refreshes reuses one
// string for the process lifetime. Interning stays strictly
// process-local: only the canonical text crosses the wire.
func EncodeValue(v ast.Value) string { return relation.ValueKey(v) }

// DecodeValue parses EncodeValue's output. The result is funneled
// through the intern pool (relation.Canonical), so duplicated remote
// constants share one backing value and arrive pre-interned for
// fingerprinting — the exact-rational semantics are untouched, since
// Canonical returns a value equal to its argument.
func DecodeValue(s string) (ast.Value, error) {
	if strings.HasPrefix(s, "$") {
		return relation.Canonical(ast.Str(s[1:])), nil
	}
	if strings.HasPrefix(s, "#") {
		r := new(big.Rat)
		if _, ok := r.SetString(s[1:]); !ok {
			return ast.Value{}, fmt.Errorf("netdist: bad numeric value %q", s)
		}
		return relation.Canonical(ast.Value{Kind: ast.NumberValue, Num: r}), nil
	}
	return ast.Value{}, fmt.Errorf("netdist: bad value encoding %q", s)
}

// EncodeTuple renders a tuple for the wire.
func EncodeTuple(t relation.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeTuple parses EncodeTuple's output.
func DecodeTuple(ss []string) (relation.Tuple, error) {
	t := make(relation.Tuple, len(ss))
	for i, s := range ss {
		v, err := DecodeValue(s)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

// EncodeTuples renders a tuple slice for the wire.
func EncodeTuples(ts []relation.Tuple) [][]string {
	out := make([][]string, len(ts))
	for i, t := range ts {
		out[i] = EncodeTuple(t)
	}
	return out
}

// DecodeTuples parses EncodeTuples's output.
func DecodeTuples(tss [][]string) ([]relation.Tuple, error) {
	out := make([]relation.Tuple, len(tss))
	for i, ss := range tss {
		t, err := DecodeTuple(ss)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// RemoteError is a semantic failure reported by a site (unknown
// relation, bad request): the request reached the site and was answered,
// so it is not retried and does not mark the site unavailable.
type RemoteError struct {
	Site string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netdist: site %s: %s", e.Site, e.Msg)
}

// ErrSiteUnavailable marks an update that could not be decided because a
// site it needed was unreachable after every retry. It is a sentinel for
// errors.Is; the concrete error is a *SiteError carrying the site and
// the last transport failure.
var ErrSiteUnavailable = errors.New("netdist: site unavailable")

// SiteError wraps the last transport failure for one site. It matches
// ErrSiteUnavailable under errors.Is.
type SiteError struct {
	Site string
	Err  error
}

func (e *SiteError) Error() string {
	return fmt.Sprintf("netdist: site %s unavailable: %v", e.Site, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *SiteError) Unwrap() error { return e.Err }

// Is matches the ErrSiteUnavailable sentinel.
func (e *SiteError) Is(target error) bool { return target == ErrSiteUnavailable }
